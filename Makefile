# Convenience wrappers around scripts/ci.sh, which mirrors the GitHub
# Actions workflows. `make ci` runs everything CI runs.

.PHONY: build lint vet test cover bench fuzz ci

build:
	sh scripts/ci.sh build

lint:
	sh scripts/ci.sh lint

vet:
	sh scripts/ci.sh analyze

test:
	sh scripts/ci.sh test

cover:
	sh scripts/ci.sh cover

bench:
	sh scripts/ci.sh bench

fuzz:
	sh scripts/ci.sh fuzz

ci:
	sh scripts/ci.sh all
