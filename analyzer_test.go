package spatialkeyword

import (
	"strings"
	"testing"
)

// TestStemmingEngine: with Stemming on, query keywords match every
// inflection of the indexed words.
func TestStemmingEngine(t *testing.T) {
	eng := newEngine(t, Config{Stemming: true, SignatureBytes: 16})
	rows := []struct {
		pt   []float64
		text string
	}{
		{[]float64{1, 1}, "charter boats fishing trips daily"},
		{[]float64{2, 2}, "the fisherman fished here"},
		{[]float64{3, 3}, "fish market fresh catches"},
		{[]float64{50, 50}, "bicycle rentals and repairs"},
	}
	for _, r := range rows {
		if _, err := eng.Add(r.pt, r.text); err != nil {
			t.Fatal(err)
		}
	}
	// "fishing", "fished", "fish" all stem to "fish": any inflection as a
	// query keyword hits all three waterfront shops.
	for _, kw := range []string{"fishing", "fished", "fish"} {
		results, err := eng.TopK(10, []float64{0, 0}, kw)
		if err != nil {
			t.Fatal(err)
		}
		if len(results) != 3 {
			t.Errorf("keyword %q matched %d objects, want 3", kw, len(results))
		}
	}
	// The bike shop stays unmatched.
	results, err := eng.TopK(10, []float64{0, 0}, "fishing", "bicycle")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Errorf("conjunction across shops matched %d", len(results))
	}
	// Without stemming, "fished" only matches the literal occurrence.
	plain := newEngine(t, Config{SignatureBytes: 16})
	for _, r := range rows {
		if _, err := plain.Add(r.pt, r.text); err != nil {
			t.Fatal(err)
		}
	}
	results, err = plain.TopK(10, []float64{0, 0}, "fished")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Errorf("plain engine: %d matches for 'fished', want 1", len(results))
	}
}

func TestStopwordEngine(t *testing.T) {
	eng := newEngine(t, Config{RemoveStopwords: true, SignatureBytes: 16})
	if _, err := eng.Add([]float64{1, 1}, "the house on the hill"); err != nil {
		t.Fatal(err)
	}
	// Stopword keywords dissolve; remaining terms must still match.
	results, err := eng.TopK(5, []float64{0, 0}, "the", "house")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Errorf("got %d results", len(results))
	}
	// A query of only stopwords behaves like no keywords (pure NN).
	results, err = eng.TopK(1, []float64{0, 0}, "the", "on")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Errorf("stopword-only query: %d results", len(results))
	}
}

func TestStemmingRankedQueries(t *testing.T) {
	eng := newEngine(t, Config{Stemming: true, SignatureBytes: 16})
	if _, err := eng.Add([]float64{1, 1}, "running trails maps"); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Add([]float64{2, 2}, "runners club weekly runs"); err != nil {
		t.Fatal(err)
	}
	results, err := eng.TopKRanked(5, []float64{0, 0}, "run")
	if err != nil {
		t.Fatal(err)
	}
	// "running" and "runs" stem to "run"; both objects must rank. ("runners"
	// stems to "runner", which is fine — "runs" carries the second object.)
	if len(results) != 2 {
		t.Fatalf("ranked stemming: %d results, want 2", len(results))
	}
	for _, r := range results {
		if r.IRScore <= 0 {
			t.Errorf("zero relevance for %q", r.Object.Text)
		}
	}
}

func TestStemmingDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewDurableEngine(Config{Stemming: true, RemoveStopwords: true, SignatureBytes: 16}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Add([]float64{1, 1}, "the fishing boats are leaving"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(); err != nil {
		t.Fatal(err)
	}
	eng.Close()
	re, err := OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// The analyzer config must round-trip through the manifest: a stemmed
	// query still matches.
	results, err := re.TopK(1, []float64{0, 0}, "fished")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !strings.Contains(results[0].Object.Text, "fishing") {
		t.Errorf("stemmed query after reopen: %v", results)
	}
}
