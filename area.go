package spatialkeyword

import (
	"fmt"
	"time"

	"spatialkeyword/internal/geo"
)

// validateArea checks the corner points and returns the query rectangle.
func (e *Engine) validateArea(lo, hi []float64) (geo.Rect, error) {
	if len(lo) != e.dim || len(hi) != e.dim {
		return geo.Rect{}, fmt.Errorf("spatialkeyword: area corners have %d/%d dimensions, engine uses %d",
			len(lo), len(hi), e.dim)
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return geo.Rect{}, fmt.Errorf("spatialkeyword: inverted area on axis %d (%g > %g)", i, lo[i], hi[i])
		}
	}
	return geo.NewRect(geo.NewPoint(lo...), geo.NewPoint(hi...)), nil
}

// TopKArea returns the k objects containing every keyword that are nearest
// to the query rectangle — zero distance for objects inside it. This is the
// query-area variant the paper notes for the incremental NN algorithm ("an
// area could be used instead" of the point).
func (e *Engine) TopKArea(k int, lo, hi []float64, keywords ...string) ([]Result, error) {
	if err := e.Flush(); err != nil {
		return nil, err
	}
	area, err := e.validateArea(lo, hi)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	stop := e.MeterIOStats()
	it := e.tree.SearchArea(area, keywords)
	var out []Result
	var iterErr error
	for len(out) < k {
		r, ok, err := it.Next()
		if err != nil {
			iterErr = err
			break
		}
		if !ok {
			break
		}
		if e.deleted[uint64(r.Object.ID)] {
			continue
		}
		out = append(out, Result{
			Object: Object{ID: uint64(r.Object.ID), Point: r.Object.Point, Text: r.Object.Text},
			Dist:   r.Dist,
		})
	}
	st := it.Stats()
	io := stop()
	qs := queryStatsOf(st.NodesLoaded, st.ObjectsLoaded, st.FalsePositives,
		st.EntriesPruned, st.NodesEnqueued, st.ObjectsEnqueued)
	qs.BlocksRandom = io.Random()
	qs.BlocksSequential = io.Sequential()
	e.record("area", k, len(keywords), len(out), qs, time.Since(start), iterErr)
	if iterErr != nil {
		return nil, iterErr
	}
	return out, nil
}

// WithinArea returns every object inside the rectangle whose text contains
// all the keywords — the boolean range query ("all pizza places on this map
// view"), ordered by object ID.
func (e *Engine) WithinArea(lo, hi []float64, keywords ...string) ([]Result, error) {
	if err := e.Flush(); err != nil {
		return nil, err
	}
	area, err := e.validateArea(lo, hi)
	if err != nil {
		return nil, err
	}
	results, _, err := e.tree.WithinArea(area, keywords)
	if err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(results))
	for _, r := range results {
		if e.deleted[uint64(r.Object.ID)] {
			continue
		}
		out = append(out, Result{
			Object: Object{ID: uint64(r.Object.ID), Point: r.Object.Point, Text: r.Object.Text},
		})
	}
	return out, nil
}
