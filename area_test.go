package spatialkeyword

import (
	"strings"
	"testing"
)

func TestEngineTopKArea(t *testing.T) {
	e := newEngine(t, Config{SignatureBytes: 16})
	addFigure1(t, e)
	// An area over East Asia: Hotels C (35.5, 139.4) and D (39.5, 116.2)
	// are inside; the nearest pool outside is elsewhere.
	results, err := e.TopKArea(3, []float64{30, 100}, []float64{45, 145}, "pool")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	// The two in-area hotels come first at distance zero.
	inArea := map[string]bool{}
	for _, r := range results[:2] {
		if r.Dist != 0 {
			t.Errorf("in-area hotel at dist %g", r.Dist)
		}
		inArea[firstWord(r.Object.Text, 2)] = true
	}
	if !inArea["Hotel C"] || !inArea["Hotel D"] {
		t.Errorf("in-area hotels = %v", inArea)
	}
	if results[2].Dist <= 0 {
		t.Error("third result should be outside the area")
	}
}

func TestEngineWithinArea(t *testing.T) {
	e := newEngine(t, Config{SignatureBytes: 16})
	addFigure1(t, e)
	results, err := e.WithinArea([]float64{30, 100}, []float64{45, 145}, "pool")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results, want 2 (Hotels C and D)", len(results))
	}
	// Deleting one shrinks the answer.
	if err := e.Delete(results[0].Object.ID); err != nil {
		t.Fatal(err)
	}
	results, err = e.WithinArea([]float64{30, 100}, []float64{45, 145}, "pool")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Errorf("after delete: %d results", len(results))
	}
	// Empty keyword list: everything in the area.
	all, err := e.WithinArea([]float64{-90, -180}, []float64{90, 180})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Errorf("world query: %d results, want 7 live hotels", len(all))
	}
}

func TestEngineAreaValidation(t *testing.T) {
	e := newEngine(t, Config{})
	if _, err := e.TopKArea(1, []float64{0}, []float64{1, 1}, "x"); err == nil {
		t.Error("bad lo dimension accepted")
	}
	if _, err := e.WithinArea([]float64{5, 5}, []float64{1, 1}, "x"); err == nil {
		t.Error("inverted area accepted")
	}
}

func firstWord(s string, n int) string {
	f := strings.Fields(s)
	if len(f) > n {
		f = f[:n]
	}
	return strings.Join(f, " ")
}
