// Benchmarks regenerating the paper's evaluation, one per table and figure.
// Each benchmark prepares a scaled environment once (cached across
// benchmarks) and then measures query work per operation, reporting the
// evaluation's metrics — random/sequential disk blocks and object accesses
// per query — via b.ReportMetric. Run the full evaluation with:
//
//	go test -bench=. -benchmem
//
// The full-size datasets (Table 1 scale) are available through cmd/skbench
// with -scale 1; benchmarks default to a laptop-friendly scale.
package spatialkeyword_test

import (
	"fmt"
	"sync"
	"testing"

	"spatialkeyword/internal/bench"
	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/storage"
)

// benchScale keeps benchmark dataset sizes laptop-friendly while preserving
// the figures' shapes. Hotels documents are ~350 words, so it gets a
// smaller object count than Restaurants, like the paper's originals.
const (
	hotelsScale      = 0.01 // 1,293 objects × ~350 words
	restaurantsScale = 0.01 // 4,562 objects × ~14 words
)

var (
	envMu    sync.Mutex
	envCache = map[string]*bench.Env{}
)

// sharedEnv builds (once) and returns the environment for a dataset at its
// paper-default signature length.
func sharedEnv(b *testing.B, name string) *bench.Env {
	b.Helper()
	envMu.Lock()
	defer envMu.Unlock()
	if e, ok := envCache[name]; ok {
		return e
	}
	var cfg bench.BuildConfig
	switch name {
	case "hotels":
		cfg = bench.BuildConfig{Spec: dataset.Hotels(hotelsScale), SigBytes: 189}
	case "restaurants":
		cfg = bench.BuildConfig{Spec: dataset.Restaurants(restaurantsScale), SigBytes: 8}
	default:
		b.Fatalf("unknown dataset %q", name)
	}
	e, err := bench.BuildEnv(cfg)
	if err != nil {
		b.Fatal(err)
	}
	envCache[name] = e
	return e
}

// runWorkload measures one (method, workload) cell: queries cycled b.N
// times, disk blocks and object accesses reported per query.
func runWorkload(b *testing.B, e *bench.Env, m bench.Method, queries []bench.Query) {
	b.Helper()
	var random, sequential, objects, results uint64
	disks := []storage.Device{e.ObjDisk}
	switch m {
	case bench.MethodRTree:
		disks = append(disks, e.RTreeDisk)
	case bench.MethodIIO:
		disks = append(disks, e.IIODisk)
	case bench.MethodIR2:
		disks = append(disks, e.IR2Disk)
	case bench.MethodMIR2:
		disks = append(disks, e.MIR2Disk)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := queries[i%len(queries)]
		for _, d := range disks {
			d.ResetStats()
		}
		n, objs, err := e.RunQuery(m, q)
		if err != nil {
			b.Fatal(err)
		}
		results += uint64(n)
		objects += uint64(objs)
		for _, d := range disks {
			s := d.Stats()
			random += s.Random()
			sequential += s.Sequential()
		}
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(random)/n, "randBlk/op")
	b.ReportMetric(float64(sequential)/n, "seqBlk/op")
	b.ReportMetric(float64(objects)/n, "objAcc/op")
	b.ReportMetric(float64(results)/n, "results/op")
}

// varyK runs the Figure 9/12 sweep for one dataset.
func varyK(b *testing.B, name string) {
	e := sharedEnv(b, name)
	for _, k := range []int{1, 10, 50} {
		queries, err := e.MakeQueries(16, k, 2, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range bench.AllMethods {
			b.Run(fmt.Sprintf("k=%d/%s", k, m), func(b *testing.B) {
				runWorkload(b, e, m, queries)
			})
		}
	}
}

// BenchmarkFig09VaryKHotels reproduces Figure 9: Hotels, 2 keywords,
// signature 189 B, sweeping k.
func BenchmarkFig09VaryKHotels(b *testing.B) { varyK(b, "hotels") }

// BenchmarkFig12VaryKRestaurants reproduces Figure 12: Restaurants,
// 2 keywords, signature 8 B, sweeping k.
func BenchmarkFig12VaryKRestaurants(b *testing.B) { varyK(b, "restaurants") }

// varyKeywords runs the Figure 10/13 sweep for one dataset.
func varyKeywords(b *testing.B, name string) {
	e := sharedEnv(b, name)
	for _, m := range []int{1, 2, 4} {
		queries, err := e.MakeQueries(16, 10, m, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, method := range bench.AllMethods {
			b.Run(fmt.Sprintf("m=%d/%s", m, method), func(b *testing.B) {
				runWorkload(b, e, method, queries)
			})
		}
	}
}

// BenchmarkFig10VaryKeywordsHotels reproduces Figure 10: Hotels, k=10,
// sweeping the number of query keywords.
func BenchmarkFig10VaryKeywordsHotels(b *testing.B) { varyKeywords(b, "hotels") }

// BenchmarkFig13VaryKeywordsRestaurants reproduces Figure 13: Restaurants,
// k=10, sweeping the number of query keywords.
func BenchmarkFig13VaryKeywordsRestaurants(b *testing.B) { varyKeywords(b, "restaurants") }

// varySigLen runs the Figure 11/14 sweep: IR²/MIR² rebuilt per signature
// length (reported as size metrics), object accesses as the headline metric.
func varySigLen(b *testing.B, name string, lengths []int) {
	base := sharedEnv(b, name)
	queries, err := base.MakeQueries(16, 10, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, length := range lengths {
		envMu.Lock()
		key := fmt.Sprintf("%s/sig=%d", name, length)
		e, ok := envCache[key]
		if !ok {
			var cfg bench.BuildConfig
			if name == "hotels" {
				cfg = bench.BuildConfig{Spec: dataset.Hotels(hotelsScale), SigBytes: length}
			} else {
				cfg = bench.BuildConfig{Spec: dataset.Restaurants(restaurantsScale), SigBytes: length}
			}
			cfg.Methods = []bench.Method{bench.MethodIR2, bench.MethodMIR2}
			e, err = bench.BuildEnv(cfg)
			if err != nil {
				envMu.Unlock()
				b.Fatal(err)
			}
			envCache[key] = e
		}
		envMu.Unlock()
		for _, m := range []bench.Method{bench.MethodIR2, bench.MethodMIR2} {
			b.Run(fmt.Sprintf("sig=%dB/%s", length, m), func(b *testing.B) {
				runWorkload(b, e, m, queries)
				if m == bench.MethodIR2 {
					b.ReportMetric(e.IR2.SizeMB(), "treeMB")
				} else {
					b.ReportMetric(e.MIR2.SizeMB(), "treeMB")
				}
			})
		}
	}
}

// BenchmarkFig11VarySigLenHotels reproduces Figure 11: Hotels, k=10,
// 2 keywords, sweeping the signature length.
func BenchmarkFig11VarySigLenHotels(b *testing.B) {
	varySigLen(b, "hotels", []int{64, 189, 384})
}

// BenchmarkFig14VarySigLenRestaurants reproduces Figure 14: Restaurants,
// k=10, 2 keywords, sweeping the signature length.
func BenchmarkFig14VarySigLenRestaurants(b *testing.B) {
	varySigLen(b, "restaurants", []int{2, 8, 32})
}

// BenchmarkTable2IndexSizes reproduces Table 2: the on-disk sizes of all
// four structures over both datasets, reported as metrics of a build run.
func BenchmarkTable2IndexSizes(b *testing.B) {
	for _, name := range []string{"hotels", "restaurants"} {
		b.Run(name, func(b *testing.B) {
			e := sharedEnv(b, name)
			for i := 0; i < b.N; i++ {
				// Sizes are static after the cached build; the benchmark
				// exists to surface them in -bench output.
			}
			b.ReportMetric(e.IIO.SizeMB(), "iioMB")
			b.ReportMetric(e.RTree.SizeMB(), "rtreeMB")
			b.ReportMetric(e.IR2.SizeMB(), "ir2MB")
			b.ReportMetric(e.MIR2.SizeMB(), "mir2MB")
			b.ReportMetric(float64(e.Stats.Objects), "objects")
		})
	}
}

// BenchmarkMaintenanceInsert quantifies the paper's Section 4 maintenance
// claim (E-X1): per-insert cost for the R-Tree, IR²-Tree, and the expensive
// MIR²-Tree. Environments are private per method: inserts mutate them.
func BenchmarkMaintenanceInsert(b *testing.B) {
	for _, m := range []bench.Method{bench.MethodRTree, bench.MethodIR2, bench.MethodMIR2} {
		b.Run(m.String(), func(b *testing.B) {
			e, err := bench.BuildEnv(bench.BuildConfig{
				Spec:     dataset.Restaurants(0.002),
				SigBytes: 8,
				Methods:  []bench.Method{m},
			})
			if err != nil {
				b.Fatal(err)
			}
			// Pre-append the objects to insert so appends are not timed.
			type pending struct {
				id  uint64
				ptr uint64
			}
			objs := make([]pending, b.N)
			for i := range objs {
				src, err := e.Store.GetByID(0)
				if err != nil {
					b.Fatal(err)
				}
				id, ptr, _ := e.Store.Append(src.Point, src.Text)
				objs[i] = pending{uint64(id), uint64(ptr)}
			}
			if err := e.Store.Sync(); err != nil {
				b.Fatal(err)
			}
			var random uint64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				obj, err := e.Store.GetByID(objstore.ID(objs[i].id))
				if err != nil {
					b.Fatal(err)
				}
				for _, d := range []storage.Device{e.ObjDisk, e.RTreeDisk, e.IR2Disk, e.MIR2Disk} {
					if d != nil {
						d.ResetStats()
					}
				}
				switch m {
				case bench.MethodRTree:
					err = e.RTree.Insert(obj, objstore.Ptr(objs[i].ptr))
				case bench.MethodIR2:
					err = e.IR2.Insert(obj, objstore.Ptr(objs[i].ptr))
				case bench.MethodMIR2:
					err = e.MIR2.Insert(obj, objstore.Ptr(objs[i].ptr))
				}
				if err != nil {
					b.Fatal(err)
				}
				for _, d := range []storage.Device{e.ObjDisk, e.RTreeDisk, e.IR2Disk, e.MIR2Disk} {
					if d != nil {
						random += d.Stats().Random()
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(random)/float64(b.N), "randBlk/op")
		})
	}
}

// BenchmarkSelectivitySweep covers the Section 6.B discussion (E-X2):
// method cost across keyword document frequencies, from the most common
// word to the rare tail.
func BenchmarkSelectivitySweep(b *testing.B) {
	e := sharedEnv(b, "restaurants")
	vocab := e.Stats.VocabUsed
	for _, rank := range []int{0, vocab / 10, vocab - 2} {
		kw := e.KeywordsAtRank(rank, 1)
		queries := make([]bench.Query, 8)
		for i := range queries {
			obj, err := e.Store.GetByID(0)
			if err != nil {
				b.Fatal(err)
			}
			queries[i] = bench.Query{K: 10, P: obj.Point, Keywords: kw}
		}
		df := e.Stats.DocFreq[kw[0]]
		for _, m := range bench.AllMethods {
			b.Run(fmt.Sprintf("df=%d/%s", df, m), func(b *testing.B) {
				runWorkload(b, e, m, queries)
			})
		}
	}
}
