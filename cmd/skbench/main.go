// Command skbench regenerates the paper's evaluation (Section 6): every
// figure and table, as aligned text tables, over synthetic datasets matched
// to the paper's Table 1 statistics.
//
// Usage:
//
//	skbench [flags]
//
//	-dataset     hotels | restaurants | both (default both)
//	-experiment  all | table1 | vary-k | vary-keywords | vary-siglen |
//	             selectivity | table2 | maintenance | ingest | repl |
//	             fence-churn | hotpath | skql | ablate-cache |
//	             ablate-capacity | ablate-build | ablate-split | parallel
//	             (default all; "all" covers the paper experiments; ingest,
//	             repl, fence-churn, hotpath, skql, the ablations, and the
//	             sharded-throughput experiment run only when named; a
//	             comma-separated list runs several, e.g.
//	             -experiment vary-k,ingest,fence-churn)
//	-scale       dataset scale factor in (0,1]; 1 = full Table 1 sizes
//	             (default 0.02 — laptop-friendly)
//	-queries     queries per measured cell (default 20)
//	-sig         leaf signature length in bytes (default: paper's 189 for
//	             hotels, 8 for restaurants)
//	-capacity    R-Tree node capacity (default 0 = derive ~102 from 4 KB)
//	-seed        workload seed (default 1)
//	-json        also write the raw measurements (per-cell averages plus a
//	             per-query modeled-disk-time histogram) as
//	             BENCH_<experiment>.json
//	-out         directory for the -json report (default .)
//	-baseline    baseline report to compare against; exits non-zero when a
//	             cell's modeled disk time regresses beyond -regress
//	-regress     allowed relative disk-time growth vs -baseline (default 0.2)
//
// Block counts — and therefore modeled disk time — are seed-deterministic,
// so the -baseline comparison is exact across hosts: CI uses it to catch
// I/O regressions without trusting runner wall clocks.
//
// Example:
//
//	go run ./cmd/skbench -dataset restaurants -experiment vary-k -scale 0.05
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spatialkeyword/internal/bench"
	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/storage"
)

type config struct {
	dataset    string
	experiment string
	scale      float64
	queries    int
	sig        int
	capacity   int
	seed       int64
	csvOut     bool
	jsonOut    bool
	outDir     string
	baseline   string
	regress    float64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.dataset, "dataset", "both", "hotels, restaurants, or both")
	flag.StringVar(&cfg.experiment, "experiment", "all", "which experiment to run")
	flag.Float64Var(&cfg.scale, "scale", 0.02, "dataset scale in (0,1]")
	flag.IntVar(&cfg.queries, "queries", 20, "queries per measured cell")
	flag.IntVar(&cfg.sig, "sig", 0, "leaf signature bytes (0 = paper default per dataset)")
	flag.IntVar(&cfg.capacity, "capacity", 0, "node capacity override (0 = derive from block size)")
	flag.Int64Var(&cfg.seed, "seed", 1, "workload seed")
	flag.BoolVar(&cfg.csvOut, "csv", false, "emit CSV instead of aligned text")
	flag.BoolVar(&cfg.jsonOut, "json", false, "also write BENCH_<experiment>.json with raw measurements")
	flag.StringVar(&cfg.outDir, "out", ".", "directory for the -json report")
	flag.StringVar(&cfg.baseline, "baseline", "", "baseline report to compare modeled disk time against")
	flag.Float64Var(&cfg.regress, "regress", 0.2, "allowed relative disk-time growth vs -baseline")
	flag.Parse()

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "skbench:", err)
		os.Exit(1)
	}
}

// experimentPlan captures the paper's sweep values per dataset.
type experimentPlan struct {
	spec       dataset.Spec
	sigBytes   int
	ks         []int
	keywords   []int
	sigLens    []int
	fixedK     int
	fixedWords int
}

func plans(cfg config) []experimentPlan {
	var out []experimentPlan
	if cfg.dataset == "hotels" || cfg.dataset == "both" {
		p := experimentPlan{
			spec:       dataset.Hotels(cfg.scale),
			sigBytes:   189, // paper's Hotels signature length
			ks:         []int{1, 5, 10, 20, 50},
			keywords:   []int{1, 2, 3, 4, 5},
			sigLens:    []int{64, 128, 189, 256, 384},
			fixedK:     10,
			fixedWords: 2,
		}
		if cfg.sig != 0 {
			p.sigBytes = cfg.sig
		}
		out = append(out, p)
	}
	if cfg.dataset == "restaurants" || cfg.dataset == "both" {
		p := experimentPlan{
			spec:       dataset.Restaurants(cfg.scale),
			sigBytes:   8, // paper's Restaurants signature length
			ks:         []int{1, 5, 10, 20, 50},
			keywords:   []int{1, 2, 3, 4, 5},
			sigLens:    []int{2, 4, 8, 16, 32},
			fixedK:     10,
			fixedWords: 2,
		}
		if cfg.sig != 0 {
			p.sigBytes = cfg.sig
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		fmt.Fprintf(os.Stderr, "skbench: unknown dataset %q\n", cfg.dataset)
		os.Exit(2)
	}
	return out
}

func run(cfg config) error {
	cm := storage.DefaultCostModel()
	wanted := make(map[string]bool)
	for _, name := range strings.Split(cfg.experiment, ",") {
		wanted[strings.TrimSpace(name)] = true
	}
	want := func(name string) bool { return wanted["all"] || wanted[name] }
	// The opt-in experiments (ablations, parallel, ingest) run only when
	// named explicitly — "all" covers just the paper experiments.
	named := func(name string) bool { return wanted[name] }
	var tables []*bench.Table
	render := func(t *bench.Table) error {
		tables = append(tables, t)
		if cfg.csvOut {
			fmt.Printf("# %s\n", t.Title)
			return t.WriteCSV(os.Stdout)
		}
		return t.Render(os.Stdout)
	}

	// Only the paper experiments share the per-dataset environments; the
	// ablations rebuild their own, and parallel/ingest need none.
	needEnv := false
	for _, name := range []string{"vary-k", "vary-keywords", "vary-siglen",
		"selectivity", "table1", "table2", "maintenance"} {
		needEnv = needEnv || want(name)
	}
	var envs []*bench.Env
	for _, p := range plans(cfg) {
		if !needEnv {
			break // the named experiments build their own environments below
		}
		fmt.Printf("building %s environment (scale %g: %d objects, sig %dB)...\n",
			p.spec.Name, cfg.scale, p.spec.NumObjects, p.sigBytes)
		start := time.Now()
		env, err := bench.BuildEnv(bench.BuildConfig{
			Spec:       p.spec,
			SigBytes:   p.sigBytes,
			MaxEntries: cfg.capacity,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  built in %v (tree height %d, %d nodes)\n",
			time.Since(start).Round(time.Millisecond),
			env.IR2.RTree().Height(), env.IR2.RTree().NumNodes())
		envs = append(envs, env)

		if want("vary-k") {
			t, err := bench.VaryK(env, p.ks, p.fixedWords, cfg.queries, cfg.seed, cm)
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
		}
		if want("vary-keywords") {
			t, err := bench.VaryKeywords(env, p.keywords, p.fixedK, cfg.queries, cfg.seed, cm)
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
		}
		if want("vary-siglen") {
			t, err := bench.VarySigLen(env, p.sigLens, p.fixedK, p.fixedWords, cfg.queries, cfg.seed, cm)
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
		}
		if want("selectivity") {
			vocab := env.Stats.VocabUsed
			ranks := []int{0, vocab / 100, vocab / 10, vocab / 2, vocab - 2}
			t, err := bench.Selectivity(env, ranks, p.fixedK, 1, cfg.queries, cfg.seed, cm)
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
		}
	}

	if want("table1") {
		if err := render(bench.Table1(envs...)); err != nil {
			return err
		}
	}
	if want("table2") {
		if err := render(bench.Table2(envs...)); err != nil {
			return err
		}
	}
	if want("maintenance") {
		// Runs last: it mutates the trees.
		for _, env := range envs {
			t, err := bench.Maintenance(env, 20, cfg.seed, cm)
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
		}
	}

	// Ingest durability: checkpoint-per-op vs WAL group commit. Dataset-
	// independent (its workload is generated from the seed alone) and fully
	// deterministic, so it feeds the same baseline gate as vary-k.
	if named("ingest") {
		t, err := bench.IngestDurability(200, []int{1, 8, 32}, cfg.seed, cm)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}

	// Replication catch-up: snapshot re-bootstrap vs log shipping at varying
	// lag. Like ingest, dataset-independent and fully deterministic, so it
	// feeds the same baseline gate.
	if named("repl") {
		t, err := bench.ReplCatchup(400, []int{16, 64, 400}, 8, cfg.seed, cm)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}

	// Standing-query churn: the WAL mutation path with 1k/10k registered
	// fences evaluated per mutation. Disk cells are deterministic and gated;
	// the pruning-funnel ratios are the expect notes.
	if named("fence-churn") {
		t, err := bench.FenceChurn(300, []int{1000, 10000}, 8, cfg.seed, cm)
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}

	// Read hot path: legacy vs packed steady-state traversal on warm caches.
	// Disk cells are deterministic (verify-on-hit keeps accounting identical
	// across arms) and gated; allocs/op and wall p50/p99 are appended,
	// ungated columns.
	if named("hotpath") {
		for _, p := range plans(cfg) {
			base := bench.BuildConfig{Spec: p.spec, SigBytes: p.sigBytes, MaxEntries: cfg.capacity}
			t, err := bench.HotPath(base, p.fixedK, p.fixedWords, cfg.queries, cfg.seed, cm)
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
		}
	}

	// SKQL planner routing (E-X11): rare vs common keyword workloads under
	// the cost-based planner and each forced physical path.
	if named("skql") {
		for _, p := range plans(cfg) {
			t, err := bench.SKQL(p.spec, p.sigBytes, p.fixedK, cfg.queries, cfg.seed, cm)
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
		}
	}

	// Extension ablations, run only when explicitly named (they rebuild
	// their own environments).
	for _, p := range plans(cfg) {
		base := bench.BuildConfig{Spec: p.spec, SigBytes: p.sigBytes, MaxEntries: cfg.capacity}
		var t *bench.Table
		var err error
		switch {
		case named("ablate-cache"):
			t, err = bench.CacheAblation(base, []int{0, 256, 1024, 8192}, p.fixedK, p.fixedWords, cfg.queries, cfg.seed, cm)
		case named("ablate-capacity"):
			t, err = bench.CapacityAblation(base, []int{8, 32, 0, 256}, p.fixedK, p.fixedWords, cfg.queries, cfg.seed, cm)
		case named("ablate-build"):
			t, err = bench.BulkBuildAblation(base, p.fixedK, p.fixedWords, cfg.queries, cfg.seed, cm)
		case named("ablate-split"):
			t, err = bench.SplitAblation(base, p.fixedK, p.fixedWords, cfg.queries, cfg.seed, cm)
		default:
			continue
		}
		if err != nil {
			return err
		}
		if err := render(t); err != nil {
			return err
		}
	}

	// Scale-out extension: sharded-engine throughput, run only when named
	// (wall-clock measurement, so it wants a quiet machine).
	if named("parallel") {
		for _, p := range plans(cfg) {
			t, err := bench.ParallelThroughput(p.spec, p.sigBytes,
				[]int{1, 2, 4, 8}, []int{1, 4, 16}, cfg.queries, cfg.seed)
			if err != nil {
				return err
			}
			if err := render(t); err != nil {
				return err
			}
			// Disk-time complement: same cost model as the paper figures,
			// one device per shard, so the numbers are host-independent.
			d, err := bench.ShardedDiskScaling(p.spec, p.sigBytes,
				[]int{1, 2, 4, 8}, 4*cfg.queries, cfg.seed, storage.DefaultCostModel())
			if err != nil {
				return err
			}
			if err := render(d); err != nil {
				return err
			}
		}
	}
	return report(cfg, tables)
}

// report writes the -json file and runs the -baseline comparison.
func report(cfg config, tables []*bench.Table) error {
	if !cfg.jsonOut && cfg.baseline == "" {
		return nil
	}
	rep := bench.NewReport(cfg.experiment, tables...)
	if cfg.jsonOut {
		path := filepath.Join(cfg.outDir, "BENCH_"+cfg.experiment+".json")
		if err := rep.WriteFile(path); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", path)
	}
	if cfg.baseline != "" {
		base, err := bench.ReadReportFile(cfg.baseline)
		if err != nil {
			return err
		}
		regs := bench.Compare(base, rep, cfg.regress)
		for _, m := range regs {
			fmt.Fprintln(os.Stderr, "skbench: "+m)
		}
		if len(regs) > 0 {
			return fmt.Errorf("%d benchmark regression(s) vs %s", len(regs), cfg.baseline)
		}
		fmt.Printf("no disk-time regressions vs %s\n", cfg.baseline)
	}
	return nil
}
