package main

import "testing"

func TestPlansPerDataset(t *testing.T) {
	both := plans(config{dataset: "both", scale: 0.01})
	if len(both) != 2 {
		t.Fatalf("both: %d plans", len(both))
	}
	if both[0].spec.Name != "hotels" || both[1].spec.Name != "restaurants" {
		t.Errorf("plan order: %s, %s", both[0].spec.Name, both[1].spec.Name)
	}
	// Paper defaults per dataset.
	if both[0].sigBytes != 189 || both[1].sigBytes != 8 {
		t.Errorf("sig defaults: %d, %d", both[0].sigBytes, both[1].sigBytes)
	}
	if both[0].fixedK != 10 || both[0].fixedWords != 2 {
		t.Errorf("fixed params: k=%d m=%d", both[0].fixedK, both[0].fixedWords)
	}
	// Sweeps match the paper's x-axes.
	if len(both[0].ks) != 5 || both[0].ks[0] != 1 || both[0].ks[4] != 50 {
		t.Errorf("k sweep: %v", both[0].ks)
	}
	if len(both[0].sigLens) != 5 || both[0].sigLens[2] != 189 {
		t.Errorf("hotels sig sweep: %v", both[0].sigLens)
	}
	if len(both[1].sigLens) != 5 || both[1].sigLens[2] != 8 {
		t.Errorf("restaurants sig sweep: %v", both[1].sigLens)
	}

	// Single-dataset selection and sig override.
	hotels := plans(config{dataset: "hotels", scale: 0.01, sig: 64})
	if len(hotels) != 1 || hotels[0].sigBytes != 64 {
		t.Errorf("override: %+v", hotels)
	}
	// Scale propagates to the spec.
	small := plans(config{dataset: "restaurants", scale: 0.001})
	if small[0].spec.NumObjects >= 4563 {
		t.Errorf("scale not applied: %d objects", small[0].spec.NumObjects)
	}
}
