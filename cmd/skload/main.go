// Command skload generates a synthetic dataset (the paper's Hotels or
// Restaurants stand-in), optionally writes it as a tab-separated file, and
// prints its Table 1 statistics plus the sizes of all four index structures
// built over it (Table 2).
//
// Usage:
//
//	skload [flags]
//
//	-dataset   hotels | restaurants (default restaurants)
//	-scale     scale factor in (0,1] (default 0.01)
//	-sig       leaf signature bytes (default: paper's value per dataset)
//	-out       optional path to write the dataset as TSV (lat, lon, text)
//	-indexes   also build all four index structures and print Table 2
//
// Example:
//
//	go run ./cmd/skload -dataset hotels -scale 0.01 -out /tmp/hotels.tsv -indexes
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"spatialkeyword/internal/bench"
	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/storage"
)

func main() {
	var (
		ds      = flag.String("dataset", "restaurants", "hotels or restaurants")
		scale   = flag.Float64("scale", 0.01, "scale factor in (0,1]")
		sig     = flag.Int("sig", 0, "leaf signature bytes (0 = paper default)")
		out     = flag.String("out", "", "write dataset as TSV to this path")
		indexes = flag.Bool("indexes", false, "build all indexes and print Table 2")
	)
	flag.Parse()
	if err := run(*ds, *scale, *sig, *out, *indexes); err != nil {
		fmt.Fprintln(os.Stderr, "skload:", err)
		os.Exit(1)
	}
}

func run(ds string, scale float64, sig int, out string, indexes bool) error {
	var spec dataset.Spec
	switch ds {
	case "hotels":
		spec = dataset.Hotels(scale)
		if sig == 0 {
			sig = 189
		}
	case "restaurants":
		spec = dataset.Restaurants(scale)
		if sig == 0 {
			sig = 8
		}
	default:
		return fmt.Errorf("unknown dataset %q", ds)
	}

	if indexes {
		start := time.Now()
		env, err := bench.BuildEnv(bench.BuildConfig{Spec: spec, SigBytes: sig})
		if err != nil {
			return err
		}
		fmt.Printf("generated + indexed %d objects in %v\n",
			env.Stats.Objects, time.Since(start).Round(time.Millisecond))
		if err := bench.Table1(env).Render(os.Stdout); err != nil {
			return err
		}
		if err := bench.Table2(env).Render(os.Stdout); err != nil {
			return err
		}
		if out != "" {
			return writeTSV(out, env.Store)
		}
		return nil
	}

	store := objstore.New(storage.NewDisk(storage.DefaultBlockSize))
	start := time.Now()
	stats, err := dataset.Generate(spec, store)
	if err != nil {
		return err
	}
	fmt.Printf("generated %d objects in %v\n", stats.Objects, time.Since(start).Round(time.Millisecond))
	fmt.Printf("  avg unique words/object: %.1f (target %d)\n", stats.AvgUniqueWords, spec.AvgUniqueWords)
	fmt.Printf("  vocabulary used:         %d (drawn from %d)\n", stats.VocabUsed, spec.VocabSize)
	fmt.Printf("  object file:             %.1f MB, %.2f blocks/object\n", stats.SizeMB, stats.AvgBlocksPerObj)
	if out != "" {
		return writeTSV(out, store)
	}
	return nil
}

func writeTSV(path string, store *objstore.Store) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	err = store.Scan(func(o objstore.Object, _ objstore.Ptr) error {
		for i, c := range o.Point {
			if i > 0 {
				if _, err := w.WriteString("\t"); err != nil {
					return err
				}
			}
			if _, err := w.WriteString(strconv.FormatFloat(c, 'g', -1, 64)); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintf(w, "\t%s\n", o.Text)
		return err
	})
	if err != nil {
		return err
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
