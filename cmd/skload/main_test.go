package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/storage"
)

func TestWriteTSVRoundTrip(t *testing.T) {
	store := objstore.New(storage.NewDisk(4096))
	spec := dataset.Restaurants(0.0005)
	if _, err := dataset.Generate(spec, store); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "out.tsv")
	if err := writeTSV(path, store); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != store.NumObjects() {
		t.Fatalf("wrote %d lines, want %d", len(lines), store.NumObjects())
	}
	for i, line := range lines {
		if strings.Count(line, "\t") != 2 {
			t.Fatalf("line %d has %d tabs: %q", i, strings.Count(line, "\t"), line)
		}
	}
}

func TestRunGeneratesAndReports(t *testing.T) {
	// run prints to stdout; just verify it succeeds for both datasets and
	// fails for unknown ones.
	if err := run("restaurants", 0.0005, 8, "", false); err != nil {
		t.Fatal(err)
	}
	if err := run("hotels", 0.001, 64, "", false); err != nil {
		t.Fatal(err)
	}
	if err := run("diners", 0.01, 8, "", false); err == nil {
		t.Error("unknown dataset accepted")
	}
	// With indexes and an output file.
	out := filepath.Join(t.TempDir(), "r.tsv")
	if err := run("restaurants", 0.0005, 8, out, true); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Errorf("output file missing: %v", err)
	}
}
