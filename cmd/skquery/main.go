// Command skquery answers top-k spatial keyword queries over a TSV dataset
// (as written by skload) or a freshly generated synthetic dataset, from the
// command line or an interactive prompt.
//
// Usage:
//
//	skquery [flags] [keyword ...]
//
//	-input     TSV file with "lat<TAB>lon<TAB>text" rows (from skload -out)
//	-generate  hotels | restaurants — generate instead of loading
//	-scale     scale for -generate (default 0.005)
//	-sig       leaf signature bytes (default 64)
//	-point     query point "lat,lon" (default "0,0")
//	-k         number of results (default 5)
//	-ranked    use the general ranked query instead of distance-first
//	-trace     print the traversal trace (paper Example 1/3 style)
//	-i         interactive mode: read "lat lon k keyword..." lines from stdin
//	-ql        SKQL mode: the arguments form one declarative statement
//	           (quote it), planned by the cost-based router; with -i, read
//	           one statement per stdin line instead. EXPLAIN / EXPLAIN
//	           ANALYZE print the plan with estimated vs actual block reads.
//
// Examples:
//
//	go run ./cmd/skquery -generate restaurants -point 5000,5000 -k 3 pizza
//	go run ./cmd/skload -dataset hotels -scale 0.005 -out /tmp/h.tsv
//	go run ./cmd/skquery -input /tmp/h.tsv -i
//	go run ./cmd/skquery -generate restaurants -ql \
//	  'EXPLAIN ANALYZE SELECT TOP 3 NEAR (5000, 5000) MATCH pizza AND NOT vegan'
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/skql"
	"spatialkeyword/internal/storage"
)

func main() {
	var (
		input       = flag.String("input", "", "TSV dataset (lat, lon, text)")
		generate    = flag.String("generate", "", "generate hotels or restaurants")
		scale       = flag.Float64("scale", 0.005, "scale for -generate")
		sig         = flag.Int("sig", 64, "leaf signature bytes")
		point       = flag.String("point", "0,0", "query point lat,lon")
		k           = flag.Int("k", 5, "number of results")
		ranked      = flag.Bool("ranked", false, "general ranked query")
		trace       = flag.Bool("trace", false, "print the index traversal trace (distance-first only)")
		interactive = flag.Bool("i", false, "interactive mode")
		ql          = flag.Bool("ql", false, "SKQL mode: arguments (or each -i line) form one declarative statement")
	)
	flag.Parse()
	if err := run(*input, *generate, *scale, *sig, *point, *k, *ranked, *trace, *interactive, *ql, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "skquery:", err)
		os.Exit(1)
	}
}

func run(input, generate string, scale float64, sig int, pointStr string, k int, ranked, trace, interactive, ql bool, keywords []string) error {
	eng, err := spatialkeyword.NewEngine(spatialkeyword.Config{SignatureBytes: sig})
	if err != nil {
		return err
	}

	start := time.Now()
	var loaded int
	switch {
	case input != "":
		loaded, err = loadTSV(eng, input)
	case generate != "":
		loaded, err = loadGenerated(eng, generate, scale)
	default:
		return fmt.Errorf("provide -input or -generate")
	}
	if err != nil {
		return err
	}
	fmt.Printf("indexed %d objects in %v\n", loaded, time.Since(start).Round(time.Millisecond))

	if ql {
		cat := skql.NewCatalog(eng)
		if interactive {
			return replSKQL(cat)
		}
		if len(keywords) == 0 {
			return fmt.Errorf("-ql needs a statement, e.g. 'SELECT TOP 5 NEAR (0, 0) MATCH pizza'")
		}
		return runSKQL(os.Stdout, cat, strings.Join(keywords, " "))
	}
	if interactive {
		return repl(eng, ranked)
	}
	p, err := parsePoint(pointStr)
	if err != nil {
		return err
	}
	if trace {
		return explain(eng, p, k, keywords)
	}
	return query(eng, p, k, keywords, ranked)
}

// explain runs the query with tracing and prints each traversal step.
func explain(eng *spatialkeyword.Engine, p []float64, k int, keywords []string) error {
	results, trace, err := eng.Explain(k, p, keywords...)
	if err != nil {
		return err
	}
	for _, line := range trace {
		fmt.Println(line)
	}
	fmt.Printf("\n%d results:\n", len(results))
	for i, r := range results {
		fmt.Printf("%2d. dist=%.1f  #%d %s\n", i+1, r.Dist, r.Object.ID, snippet(r.Object.Text))
	}
	return nil
}

func loadTSV(eng *spatialkeyword.Engine, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		parts := strings.SplitN(sc.Text(), "\t", 3)
		if len(parts) != 3 {
			return n, fmt.Errorf("line %d: want lat<TAB>lon<TAB>text", n+1)
		}
		lat, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return n, fmt.Errorf("line %d: bad lat: %w", n+1, err)
		}
		lon, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return n, fmt.Errorf("line %d: bad lon: %w", n+1, err)
		}
		if _, err := eng.Add([]float64{lat, lon}, parts[2]); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

func loadGenerated(eng *spatialkeyword.Engine, name string, scale float64) (int, error) {
	var spec dataset.Spec
	switch name {
	case "hotels":
		spec = dataset.Hotels(scale)
	case "restaurants":
		spec = dataset.Restaurants(scale)
	default:
		return 0, fmt.Errorf("unknown dataset %q", name)
	}
	store := objstore.New(storage.NewDisk(storage.DefaultBlockSize))
	if _, err := dataset.Generate(spec, store); err != nil {
		return 0, err
	}
	n := 0
	err := store.Scan(func(o objstore.Object, _ objstore.Ptr) error {
		_, err := eng.Add(o.Point, o.Text)
		n++
		return err
	})
	return n, err
}

func parsePoint(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 2 {
		return nil, fmt.Errorf("point %q: want lat,lon", s)
	}
	p := make([]float64, 2)
	for i, part := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("point %q: %w", s, err)
		}
		p[i] = v
	}
	return p, nil
}

func query(eng *spatialkeyword.Engine, p []float64, k int, keywords []string, ranked bool) error {
	start := time.Now()
	if ranked {
		results, err := eng.TopKRanked(k, p, keywords...)
		if err != nil {
			return err
		}
		fmt.Printf("%d ranked results in %v:\n", len(results), time.Since(start).Round(time.Microsecond))
		for i, r := range results {
			fmt.Printf("%2d. score=%.4f dist=%.1f ir=%.3f  #%d %s\n",
				i+1, r.Score, r.Dist, r.IRScore, r.Object.ID, snippet(r.Object.Text))
		}
		return nil
	}
	results, stats, err := eng.TopKWithStats(k, p, keywords...)
	if err != nil {
		return err
	}
	fmt.Printf("%d results in %v (nodes=%d objects=%d falsePos=%d io=%d+%d):\n",
		len(results), time.Since(start).Round(time.Microsecond),
		stats.NodesLoaded, stats.ObjectsLoaded, stats.FalsePositives,
		stats.BlocksRandom, stats.BlocksSequential)
	for i, r := range results {
		fmt.Printf("%2d. dist=%.1f  #%d %s\n", i+1, r.Dist, r.Object.ID, snippet(r.Object.Text))
	}
	return nil
}

func snippet(s string) string {
	if len(s) > 72 {
		return s[:69] + "..."
	}
	return s
}

// runSKQL executes one SKQL statement and prints the answer (and, for
// EXPLAIN forms, the plan report).
func runSKQL(w io.Writer, cat *skql.Catalog, src string) error {
	q, err := skql.Parse(src)
	if err != nil {
		return err
	}
	start := time.Now()
	rs, err := cat.Run(q)
	if err != nil {
		return err
	}
	elapsed := time.Since(start).Round(time.Microsecond)
	for _, line := range rs.Explain {
		fmt.Fprintln(w, line)
	}
	if q.Explain && !q.Analyze {
		return nil // plan only, nothing executed
	}
	if len(rs.Explain) > 0 {
		fmt.Fprintln(w)
	}
	switch rs.Proj {
	case skql.ProjCount:
		fmt.Fprintf(w, "count: %d (%v)\n", rs.Count, elapsed)
	case skql.ProjRanked:
		fmt.Fprintf(w, "%d ranked results in %v:\n", len(rs.Ranked), elapsed)
		for i, r := range rs.Ranked {
			fmt.Fprintf(w, "%2d. score=%.4f dist=%.1f ir=%.3f  #%d %s\n",
				i+1, r.Score, r.Dist, r.IRScore, r.Object.ID, snippet(r.Object.Text))
		}
	default:
		fmt.Fprintf(w, "%d results in %v:\n", len(rs.Results), elapsed)
		for i, r := range rs.Results {
			fmt.Fprintf(w, "%2d. dist=%.1f  #%d %s\n", i+1, r.Dist, r.Object.ID, snippet(r.Object.Text))
		}
	}
	return nil
}

// replSKQL reads one SKQL statement per line.
func replSKQL(cat *skql.Catalog) error {
	fmt.Println(`enter SKQL statements, e.g. SELECT TOP 5 NEAR (0, 0) MATCH pizza   (ctrl-D to exit)`)
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("skql> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := runSKQL(os.Stdout, cat, line); err != nil {
			fmt.Println("error:", err)
		}
	}
}

func repl(eng *spatialkeyword.Engine, ranked bool) error {
	fmt.Println("enter queries as: lat lon k keyword [keyword ...]   (ctrl-D to exit)")
	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			fmt.Println()
			return sc.Err()
		}
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 {
			fmt.Println("need: lat lon k keyword...")
			continue
		}
		lat, err1 := strconv.ParseFloat(fields[0], 64)
		lon, err2 := strconv.ParseFloat(fields[1], 64)
		k, err3 := strconv.Atoi(fields[2])
		if err1 != nil || err2 != nil || err3 != nil {
			fmt.Println("need: lat lon k keyword...")
			continue
		}
		if err := query(eng, []float64{lat, lon}, k, fields[3:], ranked); err != nil {
			fmt.Println("error:", err)
		}
	}
}
