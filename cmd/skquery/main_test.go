package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spatialkeyword"
	"spatialkeyword/internal/skql"
)

func TestParsePoint(t *testing.T) {
	tests := []struct {
		in   string
		want []float64
		ok   bool
	}{
		{"1,2", []float64{1, 2}, true},
		{" 30.5 , 100.0 ", []float64{30.5, 100}, true},
		{"-33.2,-70.4", []float64{-33.2, -70.4}, true},
		{"1", nil, false},
		{"1,2,3", nil, false},
		{"x,y", nil, false},
		{"", nil, false},
	}
	for _, tt := range tests {
		got, err := parsePoint(tt.in)
		if (err == nil) != tt.ok {
			t.Errorf("parsePoint(%q) err = %v", tt.in, err)
			continue
		}
		if !tt.ok {
			continue
		}
		if got[0] != tt.want[0] || got[1] != tt.want[1] {
			t.Errorf("parsePoint(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestLoadTSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "data.tsv")
	content := "25.4\t-80.1\tHotel A spa internet\n47.3\t-122.2\tHotel B pool\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	eng, err := spatialkeyword.NewEngine(spatialkeyword.Config{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := loadTSV(eng, path)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("loaded %d rows", n)
	}
	results, err := eng.TopK(1, []float64{25, -80}, "spa")
	if err != nil || len(results) != 1 {
		t.Errorf("query after load: %v %v", results, err)
	}
}

func TestLoadTSVBadRows(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string]string{
		"missing-field.tsv": "1\t2\n",
		"bad-lat.tsv":       "x\t2\ttext\n",
		"bad-lon.tsv":       "1\ty\ttext\n",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		eng, err := spatialkeyword.NewEngine(spatialkeyword.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := loadTSV(eng, path); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLoadGenerated(t *testing.T) {
	eng, err := spatialkeyword.NewEngine(spatialkeyword.Config{})
	if err != nil {
		t.Fatal(err)
	}
	n, err := loadGenerated(eng, "restaurants", 0.0005)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Error("nothing generated")
	}
	if _, err := loadGenerated(eng, "nosuch", 0.1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestSnippet(t *testing.T) {
	if got := snippet("short"); got != "short" {
		t.Errorf("snippet = %q", got)
	}
	long := make([]byte, 100)
	for i := range long {
		long[i] = 'a'
	}
	if got := snippet(string(long)); len(got) != 72 || got[69:] != "..." {
		t.Errorf("snippet length = %d, tail %q", len(got), got[69:])
	}
}

func TestRunSKQL(t *testing.T) {
	eng, err := spatialkeyword.NewEngine(spatialkeyword.Config{SignatureBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{"pizza pasta wine", "pizza vegan salad", "sushi ramen"}
	for i, text := range texts {
		if _, err := eng.Add([]float64{float64(i), float64(i)}, text); err != nil {
			t.Fatal(err)
		}
	}
	cat := skql.NewCatalog(eng)

	var buf strings.Builder
	if err := runSKQL(&buf, cat, `SELECT TOP 2 NEAR (0, 0) MATCH pizza AND NOT vegan`); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "1 results in") || !strings.Contains(out, "#0 pizza pasta wine") {
		t.Fatalf("unexpected output:\n%s", out)
	}

	buf.Reset()
	if err := runSKQL(&buf, cat, `EXPLAIN ANALYZE SELECT COUNT WITHIN rect(0, 0, 5, 5) MATCH pizza`); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	for _, want := range []string{"est:    blocks=", "actual: blocks=", "count: 2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}

	if err := runSKQL(&buf, cat, `SELECT garbage`); err == nil {
		t.Fatal("expected parse error")
	}
}
