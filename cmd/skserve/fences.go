package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/fence"
	"spatialkeyword/internal/geo"
)

// Standing queries ("geofences"). The server owns a fence.Registry fed by
// the backend's mutation observer: every applied Add/Delete — local write
// or replicated apply — is evaluated against the registered fences, and
// matching changes stream to subscribers. Fences are server-local state
// (they are not part of the replicated dataset): a replica accepts fence
// registrations even though object writes answer 403, and a leader and a
// replica holding the same fences emit the same events as the stream
// drains.
//
//	POST   /fences              register; body: {"region":{"lo":[..],"hi":[..]}}
//	                            or {"center":[..],"radius":R}, plus optional
//	                            "keywords":[..], "k":N, "threshold":D → fence info
//	GET    /fences              list registered fences
//	GET    /fences/{id}         one fence's info
//	DELETE /fences/{id}         remove (closes all event streams)
//	GET    /fences/{id}/events  live events: SSE when the client accepts
//	                            text/event-stream, long-poll JSON otherwise
//	                            (?since=SEQ&wait=DUR&max=N)

// mutationObservable is the optional backend extension feeding the fence
// registry; all three backends (locked single engine, sharded engine,
// replication follower) implement it with global object IDs.
type mutationObservable interface {
	SetMutationObserver(func(spatialkeyword.MutationEvent))
}

// SetMutationObserver forwards the observer through the serving lock's
// engine. The observer itself runs on mutation paths that already hold
// the write lock.
func (l *lockedEngine) SetMutationObserver(fn func(spatialkeyword.MutationEvent)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.eng.SetMutationObserver(fn)
}

// attachFences wires a fence registry to the backend's mutation stream.
// Called from newServer before the server accepts traffic.
func (s *server) attachFences() {
	mo, ok := s.eng.(mutationObservable)
	if !ok {
		return
	}
	reg := fence.NewRegistry(fence.Options{Metrics: fence.NewMetrics(s.reg)})
	mo.SetMutationObserver(func(ev spatialkeyword.MutationEvent) {
		reg.Apply(fence.Mutation{
			Delete: ev.Delete,
			ID:     ev.ID,
			Point:  geo.NewPoint(ev.Point...),
			Text:   ev.Text,
		})
	})
	s.fences = reg
}

// fenceRequest is the POST /fences payload.
type fenceRequest struct {
	Region    *fenceRect `json:"region,omitempty"`
	Center    []float64  `json:"center,omitempty"`
	Radius    float64    `json:"radius,omitempty"`
	Keywords  []string   `json:"keywords,omitempty"`
	K         int        `json:"k,omitempty"`
	Threshold float64    `json:"threshold,omitempty"`
}

type fenceRect struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

// fenceInfo is the JSON shape of one registered fence.
type fenceInfo struct {
	ID          uint64     `json:"id"`
	Region      *fenceRect `json:"region,omitempty"`
	Center      []float64  `json:"center,omitempty"`
	Radius      float64    `json:"radius,omitempty"`
	Keywords    []string   `json:"keywords,omitempty"`
	K           int        `json:"k,omitempty"`
	Threshold   float64    `json:"threshold,omitempty"`
	Members     int        `json:"members"`
	Seq         uint64     `json:"seq"`
	Subscribers int        `json:"subscribers"`
	Dropped     uint64     `json:"dropped"`
}

func infoJSON(in fence.Info) fenceInfo {
	out := fenceInfo{
		ID:          in.ID,
		Keywords:    in.Query.Keywords,
		K:           in.Query.K,
		Threshold:   in.Query.Threshold,
		Members:     in.Members,
		Seq:         in.Seq,
		Subscribers: in.Subscribers,
		Dropped:     in.Dropped,
	}
	if in.Query.Center != nil {
		out.Center = in.Query.Center
		out.Radius = in.Query.Radius
	} else {
		out.Region = &fenceRect{Lo: in.Query.Region.Lo, Hi: in.Query.Region.Hi}
	}
	return out
}

func (s *server) handleFenceAdd(w http.ResponseWriter, r *http.Request) {
	var req fenceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad json: %w", err))
		return
	}
	q := fence.Query{
		Keywords:  req.Keywords,
		K:         req.K,
		Threshold: req.Threshold,
	}
	if req.Region != nil {
		q.Region = geo.Rect{Lo: req.Region.Lo, Hi: req.Region.Hi}
	}
	if req.Center != nil {
		q.Center = req.Center
		q.Radius = req.Radius
	}
	id, err := s.fences.Add(q)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	info, _ := s.fences.Get(id)
	writeJSON(w, http.StatusCreated, infoJSON(info))
}

func (s *server) handleFenceList(w http.ResponseWriter, r *http.Request) {
	infos := s.fences.List()
	out := make([]fenceInfo, len(infos))
	for i, in := range infos {
		out[i] = infoJSON(in)
	}
	writeJSON(w, http.StatusOK, map[string]any{"fences": out})
}

func (s *server) fenceID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad fence id: %w", err))
		return 0, false
	}
	return id, true
}

func (s *server) handleFenceGet(w http.ResponseWriter, r *http.Request) {
	id, ok := s.fenceID(w, r)
	if !ok {
		return
	}
	info, ok := s.fences.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, fence.ErrNoFence)
		return
	}
	writeJSON(w, http.StatusOK, infoJSON(info))
}

func (s *server) handleFenceDelete(w http.ResponseWriter, r *http.Request) {
	id, ok := s.fenceID(w, r)
	if !ok {
		return
	}
	if err := s.fences.Remove(id); err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleFenceEvents serves a fence's event stream. Clients accepting
// text/event-stream get Server-Sent Events: one message per fence event,
// the fence sequence as the SSE id (so EventSource reconnects resume via
// Last-Event-ID), and a "lagged" event first when the requested resume
// point has already left the history ring. Everyone else gets a long
// poll: the request returns as soon as events after ?since exist (or
// ?wait expires), as {"events":[...],"lagged":bool}.
func (s *server) handleFenceEvents(w http.ResponseWriter, r *http.Request) {
	id, ok := s.fenceID(w, r)
	if !ok {
		return
	}
	since := uint64(0)
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad since: %w", err))
			return
		}
		since = n
	}
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.fenceSSE(w, r, id, since)
		return
	}
	s.fenceLongPoll(w, r, id, since)
}

// fenceSSE streams events until the client disconnects or the fence is
// removed. The subscription is taken before the history replay, so no
// event between replay and live tail can be lost — duplicates from that
// overlap are suppressed by sequence number.
func (s *server) fenceSSE(w http.ResponseWriter, r *http.Request, id, since uint64) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			since = n
		}
	}
	sub, err := s.fences.Subscribe(id, 0)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	defer sub.Close()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, lagged, err := s.fences.EventsSince(id, since, 0)
	if err != nil {
		return // fence vanished between Subscribe and here
	}
	if lagged {
		fmt.Fprintf(w, "event: lagged\ndata: {\"since\":%d}\n\n", since)
	}
	last := since
	for _, ev := range replay {
		writeSSEEvent(w, ev)
		last = ev.Seq
	}
	flusher.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case ev, ok := <-sub.C:
			if !ok {
				return // fence removed
			}
			if ev.Seq <= last {
				continue // already replayed from history
			}
			last = ev.Seq
			writeSSEEvent(w, ev)
			flusher.Flush()
		}
	}
}

func writeSSEEvent(w http.ResponseWriter, ev fence.Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, data)
}

// fencePollResponse is the long-poll JSON payload.
type fencePollResponse struct {
	Events []fence.Event `json:"events"`
	Lagged bool          `json:"lagged"`
}

func (s *server) fenceLongPoll(w http.ResponseWriter, r *http.Request, id, since uint64) {
	q := r.URL.Query()
	wait := 25 * time.Second
	if v := q.Get("wait"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d < 0 || d > 5*time.Minute {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad wait %q", v))
			return
		}
		wait = d
	}
	max := 0
	if v := q.Get("max"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, fmt.Errorf("bad max %q", v))
			return
		}
		max = n
	}
	// Subscribe before the history check so an event landing between the
	// two cannot be missed; the subscription is only used as a wakeup.
	sub, err := s.fences.Subscribe(id, 1)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	defer sub.Close()
	evs, lagged, err := s.fences.EventsSince(id, since, max)
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	if len(evs) == 0 && wait > 0 {
		timer := time.NewTimer(wait)
		defer timer.Stop()
		select {
		case <-r.Context().Done():
			return
		case <-timer.C:
		case _, ok := <-sub.C:
			if !ok { // fence removed while waiting
				httpError(w, http.StatusNotFound, fence.ErrNoFence)
				return
			}
			evs, lagged, err = s.fences.EventsSince(id, since, max)
			if err != nil {
				httpError(w, http.StatusNotFound, err)
				return
			}
		}
	}
	if evs == nil {
		evs = []fence.Event{}
	}
	writeJSON(w, http.StatusOK, fencePollResponse{Events: evs, Lagged: lagged})
}
