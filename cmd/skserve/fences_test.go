package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"spatialkeyword/internal/fence"
)

// fenceLeakCheck fails the test if goroutines started during it (SSE
// streams, long polls) outlive it.
func fenceLeakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

func registerFence(t *testing.T, ts *httptest.Server, body any) fenceInfo {
	t.Helper()
	resp := post(t, ts.URL+"/fences", body)
	if resp.StatusCode != http.StatusCreated {
		defer resp.Body.Close()
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("register fence: status %d: %s", resp.StatusCode, msg)
	}
	return decode[fenceInfo](t, resp)
}

func TestFenceLifecycle(t *testing.T) {
	fenceLeakCheck(t)
	_, ts := newTestServer(t, "")

	// No fences yet.
	resp, err := http.Get(ts.URL + "/fences")
	if err != nil {
		t.Fatal(err)
	}
	list := decode[map[string][]fenceInfo](t, resp)
	if len(list["fences"]) != 0 {
		t.Fatalf("fresh server lists %d fences", len(list["fences"]))
	}

	info := registerFence(t, ts, fenceRequest{
		Region:   &fenceRect{Lo: []float64{0, 0}, Hi: []float64{10, 10}},
		Keywords: []string{"pool"},
	})
	if info.ID == 0 || info.Region == nil || info.Members != 0 {
		t.Fatalf("fence info %+v", info)
	}

	// An object inside the region with the keyword enters; long-poll sees it.
	resp = post(t, ts.URL+"/objects", addRequest{Point: []float64{5, 5}, Text: "hotel pool wifi"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("add status %d", resp.StatusCode)
	}
	obj := decode[map[string]uint64](t, resp)

	resp, err = http.Get(fmt.Sprintf("%s/fences/%d/events?wait=0", ts.URL, info.ID))
	if err != nil {
		t.Fatal(err)
	}
	poll := decode[fencePollResponse](t, resp)
	if len(poll.Events) != 1 || poll.Events[0].Kind != fence.Enter || poll.Events[0].Object != obj["id"] {
		t.Fatalf("poll events %+v", poll.Events)
	}

	// An object outside the region produces nothing.
	post(t, ts.URL+"/objects", addRequest{Point: []float64{50, 50}, Text: "pool"}).Body.Close()
	// A matching delete produces a leave; resume from the enter's seq.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/objects/%d", ts.URL, obj["id"]), nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(fmt.Sprintf("%s/fences/%d/events?since=%d&wait=0", ts.URL, info.ID, poll.Events[0].Seq))
	if err != nil {
		t.Fatal(err)
	}
	poll = decode[fencePollResponse](t, resp)
	if len(poll.Events) != 1 || poll.Events[0].Kind != fence.Leave || poll.Events[0].Object != obj["id"] {
		t.Fatalf("after delete: events %+v", poll.Events)
	}

	// GET one fence; Seq advanced by the two events.
	resp, err = http.Get(fmt.Sprintf("%s/fences/%d", ts.URL, info.ID))
	if err != nil {
		t.Fatal(err)
	}
	got := decode[fenceInfo](t, resp)
	if got.Seq != 2 || got.Members != 0 {
		t.Fatalf("fence after churn: %+v", got)
	}

	// Remove it; further reads 404.
	req, _ = http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/fences/%d", ts.URL, info.ID), nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete fence status %d", resp.StatusCode)
	}
	resp, err = http.Get(fmt.Sprintf("%s/fences/%d", ts.URL, info.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get removed fence status %d", resp.StatusCode)
	}
}

func TestFenceValidation(t *testing.T) {
	fenceLeakCheck(t)
	_, ts := newTestServer(t, "")
	for name, body := range map[string]any{
		"no shape":       fenceRequest{Keywords: []string{"x"}},
		"inverted":       fenceRequest{Region: &fenceRect{Lo: []float64{5, 5}, Hi: []float64{0, 0}}},
		"zero radius":    fenceRequest{Center: []float64{1, 2}},
		"bad dims":       fenceRequest{Center: []float64{1, 2, 3}, Radius: 4},
		"negative k":     fenceRequest{Center: []float64{1, 2}, Radius: 4, K: -1},
		"not json":       "}{",
		"both shapes":    fenceRequest{Region: &fenceRect{Lo: []float64{0, 0}, Hi: []float64{1, 1}}, Center: []float64{0, 0}, Radius: 1},
		"threshold only": fenceRequest{Region: &fenceRect{Lo: []float64{0, 0}, Hi: []float64{1, 1}}, Threshold: -2},
	} {
		resp := post(t, ts.URL+"/fences", body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	// Unknown fence id paths.
	for _, url := range []string{"/fences/999", "/fences/999/events?wait=0", "/fences/nope"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound && resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d", url, resp.StatusCode)
		}
	}
}

// sseFrame is one parsed Server-Sent Events message.
type sseFrame struct {
	id    string
	event string
	data  string
}

// readSSE parses the next SSE frame off the stream.
func readSSE(t *testing.T, br *bufio.Reader) sseFrame {
	t.Helper()
	var f sseFrame
	for {
		line, err := br.ReadString('\n')
		if err != nil {
			t.Fatalf("sse read: %v (frame so far %+v)", err, f)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if f.data != "" || f.event != "" {
				return f
			}
		case strings.HasPrefix(line, "id: "):
			f.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			f.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			f.data = strings.TrimPrefix(line, "data: ")
		}
	}
}

func sseConnect(t *testing.T, ctx context.Context, url, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("sse status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("sse content type %q", ct)
	}
	return resp
}

// TestFenceSSE covers the streaming path end to end: history replay on
// connect, live tail, Last-Event-ID resume, and stream close when the
// fence is removed.
func TestFenceSSE(t *testing.T) {
	fenceLeakCheck(t)
	_, ts := newTestServer(t, "")
	info := registerFence(t, ts, fenceRequest{
		Center: []float64{10, 10}, Radius: 5, Keywords: []string{"espresso"},
	})
	eventsURL := fmt.Sprintf("%s/fences/%d/events", ts.URL, info.ID)

	// One event already in history before the client connects.
	resp := post(t, ts.URL+"/objects", addRequest{Point: []float64{11, 11}, Text: "espresso bar"})
	first := decode[map[string]uint64](t, resp)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream := sseConnect(t, ctx, eventsURL, "")
	defer stream.Body.Close()
	br := bufio.NewReader(stream.Body)

	f := readSSE(t, br)
	if f.event != "enter" || f.id != "1" || !strings.Contains(f.data, fmt.Sprintf(`"object":%d`, first["id"])) {
		t.Fatalf("replayed frame %+v", f)
	}

	// A live mutation shows up on the open stream.
	resp = post(t, ts.URL+"/objects", addRequest{Point: []float64{9, 9}, Text: "espresso cart"})
	second := decode[map[string]uint64](t, resp)
	f = readSSE(t, br)
	if f.event != "enter" || !strings.Contains(f.data, fmt.Sprintf(`"object":%d`, second["id"])) {
		t.Fatalf("live frame %+v", f)
	}

	// Drop the connection mid-stream: the handler must notice and return
	// (the leak check and the httptest server Close would hang otherwise).
	cancel()
	stream.Body.Close()

	// Reconnect with Last-Event-ID = 1: only the second event replays.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	stream2 := sseConnect(t, ctx2, eventsURL, "1")
	br = bufio.NewReader(stream2.Body)
	f = readSSE(t, br)
	if f.id != "2" || !strings.Contains(f.data, fmt.Sprintf(`"object":%d`, second["id"])) {
		t.Fatalf("resume frame %+v", f)
	}

	// Removing the fence ends the stream from the server side.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/fences/%d", ts.URL, info.ID), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if _, err := io.ReadAll(stream2.Body); err != nil {
		t.Fatalf("stream after fence removal: %v", err)
	}
	stream2.Body.Close()
}

// TestFenceLongPollWakeup verifies a parked long poll returns as soon as a
// matching mutation lands, not after the full wait.
func TestFenceLongPollWakeup(t *testing.T) {
	fenceLeakCheck(t)
	_, ts := newTestServer(t, "")
	info := registerFence(t, ts, fenceRequest{
		Region: &fenceRect{Lo: []float64{0, 0}, Hi: []float64{1, 1}},
	})

	type pollResult struct {
		poll fencePollResponse
		err  error
	}
	done := make(chan pollResult, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/fences/%d/events?wait=30s", ts.URL, info.ID))
		if err != nil {
			done <- pollResult{err: err}
			return
		}
		defer resp.Body.Close()
		var pr pollResult
		pr.err = json.NewDecoder(resp.Body).Decode(&pr.poll)
		done <- pr
	}()

	time.Sleep(50 * time.Millisecond) // let the poll park
	post(t, ts.URL+"/objects", addRequest{Point: []float64{0.5, 0.5}, Text: "anything"}).Body.Close()

	select {
	case pr := <-done:
		if pr.err != nil {
			t.Fatal(pr.err)
		}
		if len(pr.poll.Events) != 1 || pr.poll.Events[0].Kind != fence.Enter {
			t.Fatalf("woken poll events %+v", pr.poll.Events)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long poll did not wake on mutation")
	}

	// An empty wait returns immediately even with nothing new.
	start := time.Now()
	resp, err := http.Get(fmt.Sprintf("%s/fences/%d/events?since=1&wait=0", ts.URL, info.ID))
	if err != nil {
		t.Fatal(err)
	}
	poll := decode[fencePollResponse](t, resp)
	if len(poll.Events) != 0 || time.Since(start) > 2*time.Second {
		t.Fatalf("wait=0 poll: %d events in %v", len(poll.Events), time.Since(start))
	}
}

// TestFenceShardedBackend proves fences see mutations through the sharded
// engine with global object IDs.
func TestFenceShardedBackend(t *testing.T) {
	fenceLeakCheck(t)
	_, ts := newShardedTestServer(t, "", 4)
	info := registerFence(t, ts, fenceRequest{
		Region: &fenceRect{Lo: []float64{-90, -180}, Hi: []float64{90, 180}},
	})
	ids := seedHotels(t, ts)
	resp, err := http.Get(fmt.Sprintf("%s/fences/%d/events?wait=0", ts.URL, info.ID))
	if err != nil {
		t.Fatal(err)
	}
	poll := decode[fencePollResponse](t, resp)
	if len(poll.Events) != len(ids) {
		t.Fatalf("got %d events for %d adds", len(poll.Events), len(ids))
	}
	seen := map[uint64]bool{}
	for _, ev := range poll.Events {
		if ev.Kind != fence.Enter {
			t.Fatalf("event %+v", ev)
		}
		seen[ev.Object] = true
	}
	for _, id := range ids {
		if !seen[id] {
			t.Fatalf("global id %d missing from fence events (got %v)", id, seen)
		}
	}
	// Deleting by global ID produces a leave for the same global ID.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/objects/%d", ts.URL, ids[1]), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	resp, err = http.Get(fmt.Sprintf("%s/fences/%d/events?since=%d&wait=0", ts.URL, info.ID, len(ids)))
	if err != nil {
		t.Fatal(err)
	}
	poll = decode[fencePollResponse](t, resp)
	if len(poll.Events) != 1 || poll.Events[0].Kind != fence.Leave || poll.Events[0].Object != ids[1] {
		t.Fatalf("sharded delete events %+v", poll.Events)
	}
}

// TestFenceMetricsExposed checks the sk_fence_* families reach /metrics.
func TestFenceMetricsExposed(t *testing.T) {
	fenceLeakCheck(t)
	_, ts := newTestServer(t, "")
	registerFence(t, ts, fenceRequest{Region: &fenceRect{Lo: []float64{0, 0}, Hi: []float64{1, 1}}})
	post(t, ts.URL+"/objects", addRequest{Point: []float64{0.5, 0.5}, Text: "x"}).Body.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"sk_fence_registered 1",
		`sk_fence_events_total{kind="enter"} 1`,
		"sk_fence_eval_seconds",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestFenceReplicaMirrorsLeader registers the same fence on a leader and
// its read replica and checks the replica's event stream converges to the
// leader's as replication drains — fences are server-local, but the
// mutation stream feeding them is the same.
func TestFenceReplicaMirrorsLeader(t *testing.T) {
	fenceLeakCheck(t)
	_, leaderTS := newLeaderTestServer(t, t.TempDir())
	srv, replicaTS := newReplicaTestServer(t, t.TempDir(), leaderTS.URL, "eventual")

	q := fenceRequest{
		Region:   &fenceRect{Lo: []float64{0, 0}, Hi: []float64{20, 20}},
		Keywords: []string{"taco"},
	}
	lf := registerFence(t, leaderTS, q)
	rf := registerFence(t, replicaTS, q) // replicas accept fences despite 403 on writes

	post(t, leaderTS.URL+"/objects", addRequest{Point: []float64{5, 5}, Text: "taco stand"}).Body.Close()
	post(t, leaderTS.URL+"/objects", addRequest{Point: []float64{50, 50}, Text: "taco truck"}).Body.Close()
	resp := post(t, leaderTS.URL+"/objects", addRequest{Point: []float64{6, 6}, Text: "taqueria taco bar"})
	in := decode[map[string]uint64](t, resp)
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/objects/%d", leaderTS.URL, in["id"]), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()

	if err := srv.follower.WaitFor(srv.leaderToken(t, leaderTS), 10*time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	events := func(ts *httptest.Server, id uint64) []fence.Event {
		resp, err := http.Get(fmt.Sprintf("%s/fences/%d/events?wait=0", ts.URL, id))
		if err != nil {
			t.Fatal(err)
		}
		return decode[fencePollResponse](t, resp).Events
	}
	lev, rev := events(leaderTS, lf.ID), events(replicaTS, rf.ID)
	if len(lev) != 3 { // enter, enter, leave
		t.Fatalf("leader events %+v", lev)
	}
	if len(lev) != len(rev) {
		t.Fatalf("leader %d events, replica %d", len(lev), len(rev))
	}
	for i := range lev {
		l, r := lev[i], rev[i]
		l.Fence, r.Fence = 0, 0 // fence ids are local to each registry
		if l != r {
			t.Fatalf("event %d: leader %+v, replica %+v", i, lev[i], rev[i])
		}
	}
}
