// Command skserve exposes a spatial keyword search engine over HTTP — the
// paper's motivating "online yellow pages" as a running service. It serves
// a JSON API backed by the IR²-Tree engine — or, with -shards, by a
// spatially sharded pool of engines answering queries with a parallel
// fan-out/merge — optionally durable on disk. SIGINT/SIGTERM drain in-flight
// requests and checkpoint a durable engine before exiting.
//
// Usage:
//
//	skserve [flags]
//
//	-addr       listen address (default :8080)
//	-dir        backing directory; empty = in-memory, existing manifest = reopen
//	-sig        leaf signature bytes (default 64)
//	-shards     number of spatial shards (default 1 = single engine)
//	-wal        write-ahead log: every acknowledged mutation is durable
//	            before the HTTP response (requires -dir; reopening an
//	            existing directory keeps whatever the manifest recorded)
//	-wal-fsync  WAL group-commit window — concurrent mutations share one
//	            fsync (default 2ms; 0 syncs every append individually)
//	-pprof      also mount net/http/pprof under /debug/pprof/
//	-slowquery  log queries slower than this to stderr as JSON lines
//	            (default 50ms; 0 disables)
//	-replica-of leader base URL: serve as a read-only replica of that
//	            skserve instance, bootstrapping and tailing its WAL into
//	            -dir (requires -dir; mutations answer 403)
//	-read-mode  replica read consistency: "eventual" (default) serves
//	            whatever has been applied; "ryw" honors the
//	            X-SK-Repl-Position request header (as stamped on leader
//	            write responses) by waiting until the replica has caught
//	            up to that position — read-your-writes
//	-ryw-timeout how long a ryw read waits before answering 504 (default 2s)
//
// A WAL-enabled leader additionally serves the replication protocol under
// /repl (see internal/repl): replicas bootstrap from its snapshots and
// long-poll its log. Leader write responses carry X-SK-Repl-Position.
//
// API:
//
//	POST   /objects          {"point":[lat,lon],"text":"..."} → {"id":N}
//	GET    /objects/{id}     → the stored object
//	DELETE /objects/{id}     → removes it from the index
//	GET    /search?lat=..&lon=..&k=5&q=internet,pool
//	                         → distance-first top-k (AND semantics)
//	GET    /ranked?lat=..&lon=..&k=5&q=internet,pool
//	                         → general ranked top-k (soft semantics)
//	POST   /query            {"query":"SELECT TOP 5 NEAR (25.77, -80.19) MATCH cafe AND wifi"}
//	                         or the structured JSON query form → cost-routed
//	                         SKQL execution; EXPLAIN / EXPLAIN ANALYZE return
//	                         the plan (with estimated vs actual block reads)
//	GET    /stats            → engine, per-shard, and request statistics
//	GET    /metrics          → Prometheus text exposition (query latency
//	                           histograms, traversal counters, per-shard I/O)
//	GET    /debug/vars       → the same metrics as expvar-style JSON
//	GET    /healthz          → liveness probe; sharded backends report
//	                           degraded status and per-shard health, WAL
//	                           backends their durability state
//	POST   /save             → checkpoint a durable engine
//	POST   /fences           register a standing query (geofence); every
//	                           applied mutation is evaluated against it
//	GET    /fences           list fences; GET/DELETE /fences/{id} manage one
//	GET    /fences/{id}/events
//	                         → live enter/leave/update events: Server-Sent
//	                           Events for Accept: text/event-stream clients
//	                           (resumable via Last-Event-ID), long-poll JSON
//	                           otherwise (?since=SEQ&wait=DUR&max=N)
//
// Example session:
//
//	skserve -dir /tmp/yp -shards 4 &
//	curl -s -XPOST localhost:8080/objects \
//	  -d '{"point":[25.77,-80.19],"text":"cuban cafe espresso wifi"}'
//	curl -s 'localhost:8080/search?lat=25.78&lon=-80.18&k=3&q=espresso'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/fence"
	"spatialkeyword/internal/obs"
	"spatialkeyword/internal/repl"
	"spatialkeyword/internal/shard"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		dir       = flag.String("dir", "", "backing directory (empty = in-memory)")
		sig       = flag.Int("sig", 64, "leaf signature bytes")
		shards    = flag.Int("shards", 1, "number of spatial shards")
		walEnable = flag.Bool("wal", false, "write-ahead log: acknowledged mutations are durable (requires -dir)")
		walFsync  = flag.Duration("wal-fsync", 2*time.Millisecond,
			"WAL group-commit window; concurrent mutations share one fsync (0 = sync every append)")
		enablePprof = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		slowQuery   = flag.Duration("slowquery", 50*time.Millisecond,
			"log queries slower than this to stderr as JSON lines (0 disables)")
		replicaOf = flag.String("replica-of", "",
			"leader base URL: serve as a read-only replica of that instance (requires -dir)")
		readMode = flag.String("read-mode", "eventual",
			`replica read consistency: "eventual" or "ryw" (honor X-SK-Repl-Position)`)
		rywTimeout = flag.Duration("ryw-timeout", 2*time.Second,
			"how long a ryw read waits for the requested position before answering 504")
	)
	flag.Parse()

	if *walEnable && *dir == "" {
		fmt.Fprintln(os.Stderr, "skserve: -wal requires -dir (an in-memory engine has nothing to make durable)")
		os.Exit(1)
	}
	if *replicaOf != "" && *dir == "" {
		fmt.Fprintln(os.Stderr, "skserve: -replica-of requires -dir (the replica is a durable copy)")
		os.Exit(1)
	}
	if *readMode != "eventual" && *readMode != "ryw" {
		fmt.Fprintf(os.Stderr, "skserve: unknown -read-mode %q (want eventual or ryw)\n", *readMode)
		os.Exit(1)
	}
	reg := obs.NewRegistry()
	var (
		eng    engine
		leader *repl.Leader
		err    error
	)
	if *replicaOf != "" {
		eng, err = repl.OpenFollower(*dir, *replicaOf, repl.Options{Registry: reg})
	} else {
		cfg := spatialkeyword.Config{SignatureBytes: *sig, WAL: *walEnable, WALSyncWindow: *walFsync}
		eng, err = openOrCreate(*dir, cfg, *shards)
		if err == nil {
			leader = attachLeader(eng, *dir)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "skserve:", err)
		os.Exit(1)
	}
	srv := newServer(eng, *dir != "" && *replicaOf == "", serverOptions{
		pprof:      *enablePprof,
		slowQuery:  *slowQuery,
		slowLogTo:  os.Stderr,
		registry:   reg,
		leader:     leader,
		readMode:   *readMode,
		rywTimeout: *rywTimeout,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Printf("skserve listening on %s (role=%s, durable=%v, shards=%d, wal=%v)",
		*addr, srv.role(), *dir != "", srv.numShards(), srv.wal != nil)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("skserve: signal received, draining requests")
		sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(sctx); err != nil {
			log.Printf("skserve: shutdown: %v", err)
		}
		if err := srv.checkpoint(); err != nil {
			log.Fatalf("skserve: checkpoint: %v", err)
		}
		log.Printf("skserve: bye")
	}
}

// engine is the backend contract the HTTP layer serves: satisfied by a
// single *spatialkeyword.Engine (wrapped in lockedEngine for write
// exclusion) and by *shard.ShardedEngine, which synchronizes internally.
type engine interface {
	Add(point []float64, text string) (uint64, error)
	Get(id uint64) (spatialkeyword.Object, error)
	Delete(id uint64) error
	TopKWithStats(k int, point []float64, keywords ...string) ([]spatialkeyword.Result, spatialkeyword.QueryStats, error)
	TopKRanked(k int, point []float64, keywords ...string) ([]spatialkeyword.RankedResult, error)
	Stats() spatialkeyword.Stats
	Save() error
	Close() error
}

// sharded is the optional extension exposing per-shard statistics.
type sharded interface {
	NumShards() int
	ShardStats() []spatialkeyword.Stats
}

// openOrCreate reopens an existing durable engine (single or sharded,
// detected from the directory layout), creates a new durable one, or builds
// an in-memory engine. shards > 1 selects the sharded backend with a hash
// partitioner — the service accepts arbitrary points, so there is no dataset
// MBR to grid over.
func openOrCreate(dir string, cfg spatialkeyword.Config, shards int) (engine, error) {
	if shards < 1 {
		return nil, fmt.Errorf("need at least 1 shard, got %d", shards)
	}
	opts := shard.Options{Shards: shards}
	if dir == "" {
		if shards > 1 {
			return shard.New(cfg, opts)
		}
		eng, err := spatialkeyword.NewEngine(cfg)
		if err != nil {
			return nil, err
		}
		return &lockedEngine{eng: eng}, nil
	}
	if shard.IsShardedDir(dir) {
		return shard.Open(dir)
	}
	if eng, err := spatialkeyword.OpenEngine(dir); err == nil {
		return &lockedEngine{eng: eng}, nil
	}
	if shards > 1 {
		return shard.NewDurable(cfg, dir, opts)
	}
	eng, err := spatialkeyword.NewDurableEngine(cfg, dir)
	if err != nil {
		return nil, err
	}
	return &lockedEngine{eng: eng}, nil
}

// attachLeader mounts a replication leader over a WAL-enabled durable
// backend (nil otherwise). Called before the server accepts traffic, so the
// ship-buffer hooks are installed ahead of the first mutation.
func attachLeader(eng engine, dir string) *repl.Leader {
	if dir == "" {
		return nil
	}
	wr, ok := eng.(walReporter)
	if !ok || !wr.WALInfo().Enabled {
		return nil
	}
	l := repl.NewLeader(dir)
	switch b := eng.(type) {
	case *lockedEngine:
		l.AttachEngine(b.eng)
	case *shard.ShardedEngine:
		l.AttachSharded(b)
	default:
		return nil
	}
	return l
}

// lockedEngine adapts a single Engine to the backend contract. The engine
// permits concurrent readers but writers need exclusion, so a RWMutex
// mediates: queries take the read lock, mutations the write lock. Mutations
// flush before releasing it, keeping queries read-only.
type lockedEngine struct {
	mu  sync.RWMutex
	eng *spatialkeyword.Engine
}

func (l *lockedEngine) Add(point []float64, text string) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	id, err := l.eng.Add(point, text)
	if err == nil {
		err = l.eng.Flush()
	}
	return id, err
}

func (l *lockedEngine) Get(id uint64) (spatialkeyword.Object, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.Get(id)
}

func (l *lockedEngine) Delete(id uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eng.Delete(id)
}

func (l *lockedEngine) TopKWithStats(k int, point []float64, keywords ...string) ([]spatialkeyword.Result, spatialkeyword.QueryStats, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.TopKWithStats(k, point, keywords...)
}

func (l *lockedEngine) TopKRanked(k int, point []float64, keywords ...string) ([]spatialkeyword.RankedResult, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.TopKRanked(k, point, keywords...)
}

// SetMetricsSink installs the sink on the wrapped engine. Called once at
// startup, before the server accepts requests.
func (l *lockedEngine) SetMetricsSink(sink obs.Sink) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.eng.SetMetricsSink(sink)
}

func (l *lockedEngine) Stats() spatialkeyword.Stats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.Stats()
}

func (l *lockedEngine) WALInfo() spatialkeyword.WALInfo {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.WALInfo()
}

// SetWALObserver installs WAL metrics hooks on the wrapped engine. Called
// once at startup, before the server accepts requests.
func (l *lockedEngine) SetWALObserver(onAppend func(), onFsync func(time.Duration)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.eng.SetWALObserver(onAppend, onFsync)
}

func (l *lockedEngine) NodeCacheStats() spatialkeyword.NodeCacheStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.NodeCacheStats()
}

func (l *lockedEngine) DurabilityStats() spatialkeyword.DurabilityStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.DurabilityStats()
}

func (l *lockedEngine) Save() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eng.Save()
}

func (l *lockedEngine) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eng.Close()
}

// metricsSinkSetter is the optional backend extension for installing a
// per-query metrics sink; both backends implement it.
type metricsSinkSetter interface {
	SetMetricsSink(sink obs.Sink)
}

// healthReporter is the optional backend extension for degraded-mode
// serving: the sharded engine takes a faulted shard out of rotation and
// keeps answering from the rest, and this surface reports that state.
type healthReporter interface {
	Degraded() bool
	Health() []shard.ShardHealth
	SetHealthMetrics(errs *obs.Counter, unhealthy *obs.Gauge)
}

// nodeCacheReporter is the optional backend extension for the decoded-node
// cache on the read hot path; both backends implement it (the sharded
// engine sums its per-shard caches). The server snapshots the counters into
// gauges on every /metrics and /debug/vars scrape.
type nodeCacheReporter interface {
	NodeCacheStats() spatialkeyword.NodeCacheStats
}

// walReporter is the optional backend extension for write-ahead-log
// durability: both backends implement it (the sharded engine aggregates
// its per-shard logs), and the server uses it to export WAL metrics and
// the /healthz durability block.
type walReporter interface {
	WALInfo() spatialkeyword.WALInfo
	SetWALObserver(onAppend func(), onFsync func(time.Duration))
}

// durabilityReporter and shardDurabilityReporter give /healthz a
// generation/sequence durability block. Both durable backends implement one
// of them.
type durabilityReporter interface {
	DurabilityStats() spatialkeyword.DurabilityStats
}

type shardDurabilityReporter interface {
	ShardDurability() []spatialkeyword.DurabilityStats
}

// serverOptions configures the observability surface and the replication
// role.
type serverOptions struct {
	pprof      bool          // mount net/http/pprof under /debug/pprof/
	slowQuery  time.Duration // slow-query log threshold; 0 disables
	slowLogTo  io.Writer     // slow-query destination (tests override)
	registry   *obs.Registry // pre-built metrics registry (nil = fresh one)
	leader     *repl.Leader  // non-nil: serve the /repl protocol
	readMode   string        // replica read consistency: "eventual" or "ryw"
	rywTimeout time.Duration // ryw position-wait bound; 0 = 2s
}

// server wraps a backend engine with the JSON API. Request counters and
// per-query metrics live in one obs.Registry, exposed by /metrics
// (Prometheus text) and /debug/vars (JSON); /stats keeps serving the
// per-endpoint totals it always had, now read from the same counters.
type server struct {
	eng      engine
	durable  bool
	opts     serverOptions
	reg      *obs.Registry
	reqs     map[string]*obs.Counter
	slow     *obs.SlowLog
	wal      walReporter     // non-nil when the backend has a live WAL
	leader   *repl.Leader    // non-nil when serving the replication protocol
	follower *repl.Follower  // non-nil when the backend is a read replica
	fences   *fence.Registry // non-nil when the backend exposes mutation events

	// Node-cache export (optional backend extension): the counters live in
	// the engine, so every scrape snapshots them into these gauges.
	ncache                             nodeCacheReporter
	ncacheHits, ncacheMisses           *obs.Gauge
	ncacheEvictions, ncacheInvalidates *obs.Gauge

	// SKQL front-end (optional backend extension): catalog plus the
	// sk_skql_* metrics family. Non-nil when the backend exposes the
	// full read surface.
	skql *skqlServer
}

// endpoints names every route for the request counter family.
var endpoints = []string{"add", "get", "delete", "search", "ranked", "query", "stats", "metrics", "vars", "healthz", "save",
	"fence-add", "fence-list", "fence-get", "fence-delete", "fence-events"}

func newServer(eng engine, durable bool, opts serverOptions) *server {
	reg := opts.registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if opts.rywTimeout <= 0 {
		opts.rywTimeout = 2 * time.Second
	}
	s := &server{
		eng:     eng,
		durable: durable,
		opts:    opts,
		reg:     reg,
		reqs:    make(map[string]*obs.Counter, len(endpoints)),
		leader:  opts.leader,
	}
	if f, ok := eng.(*repl.Follower); ok {
		s.follower = f
	}
	for _, ep := range endpoints {
		s.reqs[ep] = s.reg.Counter("sk_http_requests_total",
			"HTTP requests served, by endpoint.", obs.L("endpoint", ep))
	}
	sinks := []obs.Sink{obs.NewQueryRecorder(s.reg)}
	if opts.slowQuery > 0 {
		w := opts.slowLogTo
		if w == nil {
			w = os.Stderr
		}
		s.slow = obs.NewSlowLog(w, opts.slowQuery)
		sinks = append(sinks, s.slow)
	}
	if ms, ok := eng.(metricsSinkSetter); ok {
		ms.SetMetricsSink(obs.MultiSink(sinks...))
	}
	if hr, ok := eng.(healthReporter); ok {
		hr.SetHealthMetrics(
			s.reg.Counter("sk_shard_errors_total",
				"Storage faults that degraded a shard."),
			s.reg.Gauge("sk_shards_unhealthy",
				"Shards currently marked unhealthy and out of rotation."),
		)
	}
	if nr, ok := eng.(nodeCacheReporter); ok {
		s.ncache = nr
		s.ncacheHits = s.reg.Gauge("sk_nodecache_hits",
			"Decoded-node cache hits: warm node expansions served without re-decoding.")
		s.ncacheMisses = s.reg.Gauge("sk_nodecache_misses",
			"Decoded-node cache misses: nodes decoded from their block image.")
		s.ncacheEvictions = s.reg.Gauge("sk_nodecache_evictions",
			"Decoded nodes evicted by the cache's CLOCK policy.")
		s.ncacheInvalidates = s.reg.Gauge("sk_nodecache_invalidations",
			"Decoded nodes dropped because the mutation path rewrote or freed them.")
	}
	if wr, ok := eng.(walReporter); ok {
		if wi := wr.WALInfo(); wi.Enabled {
			s.wal = wr
			appends := s.reg.Counter("sk_wal_appends_total",
				"Mutations appended to the write-ahead log.")
			fsyncs := s.reg.Histogram("sk_wal_fsync_seconds",
				"WAL group-commit sync latency.", obs.LatencyBuckets())
			replayed := s.reg.Counter("sk_wal_replayed_records_total",
				"WAL records replayed on top of the snapshot at open.")
			torn := s.reg.Counter("sk_wal_torn_tail_total",
				"Torn WAL tails truncated during recovery.")
			replayed.Add(wi.ReplayedRecords)
			torn.Add(wi.TornTails)
			wr.SetWALObserver(
				func() { appends.Inc() },
				func(d time.Duration) { fsyncs.Observe(d.Seconds()) },
			)
		}
	}
	s.attachFences()
	s.attachSKQL()
	return s
}

// requestSnapshot reads the per-endpoint totals for /stats.
func (s *server) requestSnapshot() map[string]uint64 {
	out := make(map[string]uint64, len(s.reqs))
	for ep, c := range s.reqs {
		out[ep] = c.Value()
	}
	return out
}

// role names the server's replication role for logs and /healthz.
func (s *server) role() string {
	if s.follower != nil {
		return "replica"
	}
	return "primary"
}

// numShards reports the backend's shard count (1 for a single engine).
func (s *server) numShards() int {
	if sh, ok := s.eng.(sharded); ok {
		return sh.NumShards()
	}
	return 1
}

// checkpoint persists a durable backend and releases its files — the
// graceful-shutdown tail after the HTTP server has drained.
func (s *server) checkpoint() error {
	if s.durable {
		if err := s.eng.Save(); err != nil {
			s.eng.Close() //nolint:errcheck // best-effort release; the save error is the headline
			return err
		}
	}
	return s.eng.Close()
}

// routes builds the HTTP mux. Every handler bumps its endpoint counter.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	counted := func(endpoint string, h http.HandlerFunc) http.HandlerFunc {
		c := s.reqs[endpoint]
		return func(w http.ResponseWriter, r *http.Request) {
			c.Inc()
			h(w, r)
		}
	}
	mux.HandleFunc("POST /objects", counted("add", s.handleAdd))
	mux.HandleFunc("GET /objects/{id}", counted("get", s.handleGet))
	mux.HandleFunc("DELETE /objects/{id}", counted("delete", s.handleDelete))
	mux.HandleFunc("GET /search", counted("search", s.handleSearch))
	mux.HandleFunc("GET /ranked", counted("ranked", s.handleRanked))
	if s.skql != nil {
		mux.HandleFunc("POST /query", counted("query", s.handleQuery))
	}
	mux.HandleFunc("GET /stats", counted("stats", s.handleStats))
	mux.HandleFunc("GET /metrics", counted("metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/vars", counted("vars", s.handleVars))
	mux.HandleFunc("GET /healthz", counted("healthz", s.handleHealthz))
	mux.HandleFunc("POST /save", counted("save", s.handleSave))
	if s.fences != nil {
		mux.HandleFunc("POST /fences", counted("fence-add", s.handleFenceAdd))
		mux.HandleFunc("GET /fences", counted("fence-list", s.handleFenceList))
		mux.HandleFunc("GET /fences/{id}", counted("fence-get", s.handleFenceGet))
		mux.HandleFunc("DELETE /fences/{id}", counted("fence-delete", s.handleFenceDelete))
		mux.HandleFunc("GET /fences/{id}/events", counted("fence-events", s.handleFenceEvents))
	}
	if s.leader != nil {
		mux.Handle("/repl/", s.leader.Handler())
	}
	if s.opts.pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.refreshNodeCache()
	s.reg.WritePrometheus(w) //nolint:errcheck // best effort to a client
}

// handleVars serves the registry as expvar-style JSON.
func (s *server) handleVars(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.refreshNodeCache()
	s.reg.WriteJSON(w) //nolint:errcheck // best effort to a client
}

// refreshNodeCache snapshots the backend's node-cache counters into the
// exported gauges. No-op when the backend doesn't report them.
func (s *server) refreshNodeCache() {
	if s.ncache == nil {
		return
	}
	st := s.ncache.NodeCacheStats()
	s.ncacheHits.Set(int64(st.Hits))
	s.ncacheMisses.Set(int64(st.Misses))
	s.ncacheEvictions.Set(int64(st.Evictions))
	s.ncacheInvalidates.Set(int64(st.Invalidations))
}

// addRequest is the POST /objects payload.
type addRequest struct {
	Point []float64 `json:"point"`
	Text  string    `json:"text"`
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req addRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad json: %w", err))
		return
	}
	id, err := s.eng.Add(req.Point, req.Text)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, repl.ErrReadOnlyReplica) {
			status = http.StatusForbidden
		}
		httpError(w, status, err)
		return
	}
	s.stampPosition(w)
	writeJSON(w, http.StatusCreated, map[string]uint64{"id": id})
}

// stampPosition adds the leader's replication position to a write response:
// a client that read this token can demand read-your-writes from a replica
// by echoing it as the X-SK-Repl-Position request header.
func (s *server) stampPosition(w http.ResponseWriter) {
	if s.leader != nil {
		w.Header().Set(repl.HeaderPosition, s.leader.PositionToken())
	}
}

// awaitReadPosition implements the replica's "ryw" read mode: when the
// request carries a position token, the read blocks until the replica has
// applied at least that much of the leader's log. Reports whether the
// caller may proceed (on timeout it has already answered 504).
func (s *server) awaitReadPosition(w http.ResponseWriter, r *http.Request) bool {
	if s.follower == nil || s.opts.readMode != "ryw" {
		return true
	}
	tok := r.Header.Get(repl.HeaderPosition)
	if tok == "" {
		return true
	}
	if err := s.follower.WaitFor(tok, s.opts.rywTimeout); err != nil {
		httpError(w, http.StatusGatewayTimeout, err)
		return false
	}
	return true
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	if !s.awaitReadPosition(w, r) {
		return
	}
	obj, err := s.eng.Get(id)
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, obj)
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	if err := s.eng.Delete(id); err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	s.stampPosition(w)
	w.WriteHeader(http.StatusNoContent)
}

// parseQuery extracts the shared search parameters.
func parseQuery(r *http.Request) (point []float64, k int, keywords []string, err error) {
	q := r.URL.Query()
	lat, err := strconv.ParseFloat(q.Get("lat"), 64)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("bad lat: %w", err)
	}
	lon, err := strconv.ParseFloat(q.Get("lon"), 64)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("bad lon: %w", err)
	}
	k = 10
	if kv := q.Get("k"); kv != "" {
		k, err = strconv.Atoi(kv)
		if err != nil || k < 1 || k > 1000 {
			return nil, 0, nil, fmt.Errorf("bad k %q", kv)
		}
	}
	for _, w := range strings.Split(q.Get("q"), ",") {
		if w = strings.TrimSpace(w); w != "" {
			keywords = append(keywords, w)
		}
	}
	return []float64{lat, lon}, k, keywords, nil
}

// searchResponse is the GET /search payload.
type searchResponse struct {
	Results []spatialkeyword.Result    `json:"results"`
	Stats   *spatialkeyword.QueryStats `json:"stats,omitempty"`
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	point, k, keywords, err := parseQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !s.awaitReadPosition(w, r) {
		return
	}
	results, stats, err := s.eng.TopKWithStats(k, point, keywords...)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if results == nil {
		results = []spatialkeyword.Result{}
	}
	writeJSON(w, http.StatusOK, searchResponse{Results: results, Stats: &stats})
}

func (s *server) handleRanked(w http.ResponseWriter, r *http.Request) {
	point, k, keywords, err := parseQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !s.awaitReadPosition(w, r) {
		return
	}
	results, err := s.eng.TopKRanked(k, point, keywords...)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if results == nil {
		results = []spatialkeyword.RankedResult{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

// statsResponse is the GET /stats payload: engine-wide statistics, the
// per-shard breakdown for a sharded backend, and per-endpoint request
// counters.
type statsResponse struct {
	Engine   spatialkeyword.Stats   `json:"engine"`
	Shards   []spatialkeyword.Stats `json:"shards,omitempty"`
	Requests map[string]uint64      `json:"requests"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{Engine: s.eng.Stats(), Requests: s.requestSnapshot()}
	if sh, ok := s.eng.(sharded); ok {
		resp.Shards = sh.ShardStats()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"status":  "ok",
		"durable": s.durable,
		"shards":  s.numShards(),
		"objects": s.eng.Stats().Objects,
		"role":    s.role(),
	}
	if s.follower != nil {
		st := s.follower.Status()
		resp["replication"] = st
		if !st.Connected {
			resp["status"] = "degraded"
		}
	} else if s.leader != nil {
		resp["replication"] = map[string]any{"position": s.leader.PositionToken()}
	}
	if s.durable {
		if dr, ok := s.eng.(durabilityReporter); ok {
			resp["durability"] = dr.DurabilityStats()
		} else if sdr, ok := s.eng.(shardDurabilityReporter); ok {
			resp["durability"] = sdr.ShardDurability()
		}
	}
	if hr, ok := s.eng.(healthReporter); ok {
		if hr.Degraded() {
			resp["status"] = "degraded"
		}
		resp["shard_health"] = hr.Health()
	}
	if s.wal != nil {
		wi := s.wal.WALInfo()
		walState := map[string]any{
			"enabled":          true,
			"replayed_records": wi.ReplayedRecords,
			"torn_tails":       wi.TornTails,
			"appends":          wi.Appends,
			"fsyncs":           wi.Fsyncs,
		}
		if wi.Broken != nil {
			walState["broken"] = wi.Broken.Error()
			resp["status"] = "degraded"
		}
		resp["wal"] = walState
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *server) handleSave(w http.ResponseWriter, r *http.Request) {
	if s.follower != nil {
		// Replica checkpoints are leader-driven (the follower rotates when
		// the leader's stream does).
		httpError(w, http.StatusForbidden, repl.ErrReadOnlyReplica)
		return
	}
	if !s.durable {
		httpError(w, http.StatusConflict, spatialkeyword.ErrNotDurable)
		return
	}
	if err := s.eng.Save(); err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, spatialkeyword.ErrUnknownID):
		return http.StatusNotFound
	case errors.Is(err, spatialkeyword.ErrDeleted):
		return http.StatusGone
	case errors.Is(err, repl.ErrReadOnlyReplica):
		return http.StatusForbidden
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best effort to a client
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
