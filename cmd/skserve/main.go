// Command skserve exposes a spatial keyword search engine over HTTP — the
// paper's motivating "online yellow pages" as a running service. It serves
// a JSON API backed by the IR²-Tree engine, optionally durable on disk.
//
// Usage:
//
//	skserve [flags]
//
//	-addr  listen address (default :8080)
//	-dir   backing directory; empty = in-memory, existing manifest = reopen
//	-sig   leaf signature bytes (default 64)
//
// API:
//
//	POST   /objects          {"point":[lat,lon],"text":"..."} → {"id":N}
//	GET    /objects/{id}     → the stored object
//	DELETE /objects/{id}     → removes it from the index
//	GET    /search?lat=..&lon=..&k=5&q=internet,pool
//	                         → distance-first top-k (AND semantics)
//	GET    /ranked?lat=..&lon=..&k=5&q=internet,pool
//	                         → general ranked top-k (soft semantics)
//	GET    /stats            → engine statistics
//	POST   /save             → checkpoint a durable engine
//
// Example session:
//
//	skserve -dir /tmp/yp &
//	curl -s -XPOST localhost:8080/objects \
//	  -d '{"point":[25.77,-80.19],"text":"cuban cafe espresso wifi"}'
//	curl -s 'localhost:8080/search?lat=25.78&lon=-80.18&k=3&q=espresso'
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"

	"spatialkeyword"
)

func main() {
	var (
		addr = flag.String("addr", ":8080", "listen address")
		dir  = flag.String("dir", "", "backing directory (empty = in-memory)")
		sig  = flag.Int("sig", 64, "leaf signature bytes")
	)
	flag.Parse()

	eng, err := openOrCreate(*dir, spatialkeyword.Config{SignatureBytes: *sig})
	if err != nil {
		fmt.Fprintln(os.Stderr, "skserve:", err)
		os.Exit(1)
	}
	srv := newServer(eng, *dir != "")
	log.Printf("skserve listening on %s (durable=%v)", *addr, *dir != "")
	log.Fatal(http.ListenAndServe(*addr, srv.routes()))
}

// openOrCreate reopens an existing durable engine, creates a new durable
// one, or builds an in-memory engine.
func openOrCreate(dir string, cfg spatialkeyword.Config) (*spatialkeyword.Engine, error) {
	if dir == "" {
		return spatialkeyword.NewEngine(cfg)
	}
	if eng, err := spatialkeyword.OpenEngine(dir); err == nil {
		return eng, nil
	}
	return spatialkeyword.NewDurableEngine(cfg, dir)
}

// server wraps the engine with the JSON API. The engine permits concurrent
// readers but writers need exclusion, so a RWMutex mediates: queries take
// the read lock, mutations the write lock. (Queries may flush pending adds,
// so they also need the write lock when anything is pending — the server
// simply flushes inside every mutation to keep queries read-only.)
type server struct {
	mu      sync.RWMutex
	eng     *spatialkeyword.Engine
	durable bool
}

func newServer(eng *spatialkeyword.Engine, durable bool) *server {
	return &server{eng: eng, durable: durable}
}

// routes builds the HTTP mux.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /objects", s.handleAdd)
	mux.HandleFunc("GET /objects/{id}", s.handleGet)
	mux.HandleFunc("DELETE /objects/{id}", s.handleDelete)
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /ranked", s.handleRanked)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("POST /save", s.handleSave)
	return mux
}

// addRequest is the POST /objects payload.
type addRequest struct {
	Point []float64 `json:"point"`
	Text  string    `json:"text"`
}

func (s *server) handleAdd(w http.ResponseWriter, r *http.Request) {
	var req addRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad json: %w", err))
		return
	}
	s.mu.Lock()
	id, err := s.eng.Add(req.Point, req.Text)
	if err == nil {
		err = s.eng.Flush()
	}
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]uint64{"id": id})
}

func (s *server) handleGet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	s.mu.RLock()
	obj, err := s.eng.Get(id)
	s.mu.RUnlock()
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, obj)
}

func (s *server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("bad id: %w", err))
		return
	}
	s.mu.Lock()
	err = s.eng.Delete(id)
	s.mu.Unlock()
	if err != nil {
		httpError(w, statusFor(err), err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// parseQuery extracts the shared search parameters.
func parseQuery(r *http.Request) (point []float64, k int, keywords []string, err error) {
	q := r.URL.Query()
	lat, err := strconv.ParseFloat(q.Get("lat"), 64)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("bad lat: %w", err)
	}
	lon, err := strconv.ParseFloat(q.Get("lon"), 64)
	if err != nil {
		return nil, 0, nil, fmt.Errorf("bad lon: %w", err)
	}
	k = 10
	if kv := q.Get("k"); kv != "" {
		k, err = strconv.Atoi(kv)
		if err != nil || k < 1 || k > 1000 {
			return nil, 0, nil, fmt.Errorf("bad k %q", kv)
		}
	}
	for _, w := range strings.Split(q.Get("q"), ",") {
		if w = strings.TrimSpace(w); w != "" {
			keywords = append(keywords, w)
		}
	}
	return []float64{lat, lon}, k, keywords, nil
}

// searchResponse is the GET /search payload.
type searchResponse struct {
	Results []spatialkeyword.Result    `json:"results"`
	Stats   *spatialkeyword.QueryStats `json:"stats,omitempty"`
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	point, k, keywords, err := parseQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	results, stats, err := s.eng.TopKWithStats(k, point, keywords...)
	s.mu.RUnlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if results == nil {
		results = []spatialkeyword.Result{}
	}
	writeJSON(w, http.StatusOK, searchResponse{Results: results, Stats: &stats})
}

func (s *server) handleRanked(w http.ResponseWriter, r *http.Request) {
	point, k, keywords, err := parseQuery(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	s.mu.RLock()
	results, err := s.eng.TopKRanked(k, point, keywords...)
	s.mu.RUnlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if results == nil {
		results = []spatialkeyword.RankedResult{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": results})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	st := s.eng.Stats()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, st)
}

func (s *server) handleSave(w http.ResponseWriter, r *http.Request) {
	if !s.durable {
		httpError(w, http.StatusConflict, spatialkeyword.ErrNotDurable)
		return
	}
	s.mu.Lock()
	err := s.eng.Save()
	s.mu.Unlock()
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, spatialkeyword.ErrUnknownID):
		return http.StatusNotFound
	case errors.Is(err, spatialkeyword.ErrDeleted):
		return http.StatusGone
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v) //nolint:errcheck // best effort to a client
}

func httpError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
