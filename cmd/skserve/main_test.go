package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"spatialkeyword"
)

func newTestServer(t *testing.T, durableDir string) (*server, *httptest.Server) {
	return newShardedTestServer(t, durableDir, 1)
}

func newShardedTestServer(t *testing.T, durableDir string, shards int) (*server, *httptest.Server) {
	t.Helper()
	eng, err := openOrCreate(durableDir, spatialkeyword.Config{SignatureBytes: 16}, shards)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(eng, durableDir != "", serverOptions{})
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func seedHotels(t *testing.T, ts *httptest.Server) []uint64 {
	t.Helper()
	rows := []struct {
		pt   []float64
		text string
	}{
		{[]float64{25.4, -80.1}, "Hotel A tennis court gift shop spa Internet"},
		{[]float64{47.3, -122.2}, "Hotel B wireless Internet pool golf course"},
		{[]float64{-33.2, -70.4}, "Hotel G Internet airport transportation pool"},
	}
	var ids []uint64
	for _, r := range rows {
		resp := post(t, ts.URL+"/objects", addRequest{Point: r.pt, Text: r.text})
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("add status %d", resp.StatusCode)
		}
		out := decode[map[string]uint64](t, resp)
		ids = append(ids, out["id"])
	}
	return ids
}

func TestAddSearchLifecycle(t *testing.T) {
	_, ts := newTestServer(t, "")
	ids := seedHotels(t, ts)
	if fmt.Sprint(ids) != "[0 1 2]" {
		t.Errorf("ids = %v", ids)
	}

	resp, err := http.Get(ts.URL + "/search?lat=30.5&lon=100&k=2&q=internet,pool")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("search status %d", resp.StatusCode)
	}
	out := decode[searchResponse](t, resp)
	if len(out.Results) != 2 {
		t.Fatalf("results = %d", len(out.Results))
	}
	if !strings.Contains(out.Results[0].Object.Text, "Hotel G") {
		t.Errorf("first = %q", out.Results[0].Object.Text)
	}
	if out.Stats == nil || out.Stats.ObjectsLoaded == 0 {
		t.Errorf("stats missing: %+v", out.Stats)
	}

	// GET one object.
	resp, err = http.Get(ts.URL + "/objects/1")
	if err != nil {
		t.Fatal(err)
	}
	obj := decode[spatialkeyword.Object](t, resp)
	if !strings.Contains(obj.Text, "Hotel B") {
		t.Errorf("get = %+v", obj)
	}

	// DELETE it and search again.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/objects/1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete status %d", dresp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/search?lat=30.5&lon=100&k=5&q=internet,pool")
	if err != nil {
		t.Fatal(err)
	}
	out = decode[searchResponse](t, resp)
	if len(out.Results) != 1 {
		t.Errorf("after delete: %d results", len(out.Results))
	}

	// Deleted object is 410, unknown is 404.
	for _, tc := range []struct {
		path string
		want int
	}{{"/objects/1", http.StatusGone}, {"/objects/99", http.StatusNotFound}} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("GET %s = %d, want %d", tc.path, resp.StatusCode, tc.want)
		}
	}
}

func TestRankedEndpoint(t *testing.T) {
	_, ts := newTestServer(t, "")
	seedHotels(t, ts)
	resp, err := http.Get(ts.URL + "/ranked?lat=30.5&lon=100&k=5&q=internet,pool")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string][]spatialkeyword.RankedResult](t, resp)
	results := out["results"]
	if len(results) != 3 {
		t.Fatalf("ranked results = %d, want 3 (disjunctive)", len(results))
	}
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Error("ranked order violated")
		}
	}
}

func TestStatsAndValidation(t *testing.T) {
	_, ts := newTestServer(t, "")
	seedHotels(t, ts)
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[statsResponse](t, resp)
	if st.Engine.Objects != 3 {
		t.Errorf("stats = %+v", st)
	}
	if st.Requests["add"] != 3 || st.Requests["stats"] != 1 {
		t.Errorf("request counters = %v", st.Requests)
	}
	if len(st.Shards) != 0 {
		t.Errorf("single engine reported shard stats: %+v", st.Shards)
	}
	// Bad inputs.
	for _, path := range []string{
		"/search?lat=x&lon=1&q=a",
		"/search?lat=1&lon=1&k=0&q=a",
		"/search?lat=1&lon=1&k=9999&q=a",
		"/objects/notanumber",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, resp.StatusCode)
		}
	}
	// Bad JSON body.
	resp2, err := http.Post(ts.URL+"/objects", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json = %d", resp2.StatusCode)
	}
	// Wrong dimension point.
	resp3 := post(t, ts.URL+"/objects", addRequest{Point: []float64{1, 2, 3}, Text: "x"})
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Errorf("3-d point = %d", resp3.StatusCode)
	}
}

func TestSaveEndpointDurable(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, dir)
	seedHotels(t, ts)
	resp, err := http.Post(ts.URL+"/save", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("save status %d", resp.StatusCode)
	}
	ts.Close()
	if err := s.eng.Close(); err != nil {
		t.Fatal(err)
	}

	// A new server over the same dir must see the data.
	_, ts2 := newTestServer(t, dir)
	resp, err = http.Get(ts2.URL + "/search?lat=30.5&lon=100&k=5&q=internet")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[searchResponse](t, resp)
	if len(out.Results) != 3 {
		t.Errorf("after reopen: %d results", len(out.Results))
	}
}

func TestSaveEndpointMemoryEngine(t *testing.T) {
	_, ts := newTestServer(t, "")
	resp, err := http.Post(ts.URL+"/save", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("save on memory engine = %d, want 409", resp.StatusCode)
	}
}

func TestConcurrentHTTPTraffic(t *testing.T) {
	_, ts := newTestServer(t, "")
	seedHotels(t, ts)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if w%2 == 0 {
					resp, err := http.Get(ts.URL + "/search?lat=0&lon=0&k=3&q=internet")
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				} else {
					resp := post(t, ts.URL+"/objects", addRequest{
						Point: []float64{float64(w), float64(i)},
						Text:  fmt.Sprintf("concurrent place %d-%d internet", w, i),
					})
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[statsResponse](t, resp)
	if st.Engine.Objects != 3+4*20 {
		t.Errorf("objects = %d, want %d", st.Engine.Objects, 3+4*20)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, "")
	seedHotels(t, ts)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	out := decode[map[string]any](t, resp)
	if out["status"] != "ok" || out["objects"] != float64(3) || out["shards"] != float64(1) {
		t.Errorf("healthz = %v", out)
	}
}

// TestShardedBackend runs the whole HTTP surface against a ShardedEngine
// backend: same API, global IDs, per-shard stats in /stats.
func TestShardedBackend(t *testing.T) {
	_, ts := newShardedTestServer(t, "", 3)
	ids := seedHotels(t, ts)
	if fmt.Sprint(ids) != "[0 1 2]" {
		t.Errorf("sharded ids = %v", ids)
	}

	resp, err := http.Get(ts.URL + "/search?lat=30.5&lon=100&k=2&q=internet,pool")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[searchResponse](t, resp)
	if len(out.Results) != 2 || !strings.Contains(out.Results[0].Object.Text, "Hotel G") {
		t.Fatalf("sharded search = %+v", out.Results)
	}

	resp, err = http.Get(ts.URL + "/ranked?lat=30.5&lon=100&k=5&q=internet,pool")
	if err != nil {
		t.Fatal(err)
	}
	ranked := decode[map[string][]spatialkeyword.RankedResult](t, resp)["results"]
	if len(ranked) != 3 {
		t.Fatalf("sharded ranked = %d results", len(ranked))
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/objects/2", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("sharded delete status %d", dresp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/objects/2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("deleted object status %d, want 410", resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decode[statsResponse](t, resp)
	if st.Engine.Objects != 2 {
		t.Errorf("sharded stats objects = %d", st.Engine.Objects)
	}
	if len(st.Shards) != 3 {
		t.Errorf("shard stats entries = %d, want 3", len(st.Shards))
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if h := decode[map[string]any](t, resp); h["shards"] != float64(3) {
		t.Errorf("healthz shards = %v", h["shards"])
	}
}

// TestShardedDurableReopen checks the directory-layout detection: a dir
// written by the sharded backend reopens sharded regardless of -shards.
func TestShardedDurableReopen(t *testing.T) {
	dir := t.TempDir()
	s, ts := newShardedTestServer(t, dir, 2)
	seedHotels(t, ts)
	resp, err := http.Post(ts.URL+"/save", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("sharded save status %d", resp.StatusCode)
	}
	ts.Close()
	if err := s.eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with shards=1: the layout wins, the engine comes back sharded.
	s2, ts2 := newShardedTestServer(t, dir, 1)
	if s2.numShards() != 2 {
		t.Fatalf("reopened shards = %d, want 2", s2.numShards())
	}
	resp, err = http.Get(ts2.URL + "/search?lat=30.5&lon=100&k=5&q=internet")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[searchResponse](t, resp)
	if len(out.Results) != 3 {
		t.Errorf("after sharded reopen: %d results", len(out.Results))
	}
}

// TestCheckpoint exercises the graceful-shutdown tail directly: a durable
// server persists on checkpoint, an in-memory one just closes.
func TestCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, ts := newShardedTestServer(t, dir, 2)
	seedHotels(t, ts)
	ts.Close()
	if err := s.checkpoint(); err != nil {
		t.Fatal(err)
	}
	s2, _ := newShardedTestServer(t, dir, 2)
	if got := s2.eng.Stats().Objects; got != 3 {
		t.Errorf("objects after checkpointed restart = %d, want 3", got)
	}

	mem, tsm := newTestServer(t, "")
	tsm.Close()
	if err := mem.checkpoint(); err != nil {
		t.Errorf("in-memory checkpoint = %v", err)
	}
}

func TestOpenOrCreateRejectsBadShards(t *testing.T) {
	if _, err := openOrCreate("", spatialkeyword.Config{}, 0); err == nil {
		t.Error("0 shards should fail")
	}
}
