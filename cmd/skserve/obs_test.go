package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialkeyword"
)

// newObsTestServer builds a server with explicit observability options.
func newObsTestServer(t *testing.T, shards int, opts serverOptions) (*server, *httptest.Server) {
	t.Helper()
	eng, err := openOrCreate("", spatialkeyword.Config{SignatureBytes: 16}, shards)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(eng, false, opts)
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.eng.Close() })
	return s, ts
}

// promSample matches one Prometheus text-format sample line.
var promSample = regexp.MustCompile(
	`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[a-zA-Z0-9_]+="(?:[^"\\]|\\.)*"(?:,[a-zA-Z0-9_]+="(?:[^"\\]|\\.)*")*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// scrapeProm fetches /metrics and parses it strictly: every line must be a
// HELP/TYPE comment or a well-formed sample, and every sample's base family
// must have a preceding TYPE. Returns family→type and series line→present.
func scrapeProm(t *testing.T, url string) (types map[string]string, series map[string]bool) {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	types = make(map[string]string)
	series = make(map[string]bool)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("bad TYPE line %q", line)
			}
			types[fields[2]] = fields[3]
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("bad sample line %q", line)
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(m[1], "_bucket"), "_sum"), "_count")
		if _, ok := types[m[1]]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("sample %q has no TYPE header", line)
			}
		}
		series[m[1]+m[2]] = true
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return types, series
}

// hasSeries reports whether any scraped series line starts with prefix.
func hasSeries(series map[string]bool, prefix string) bool {
	for s := range series {
		if strings.HasPrefix(s, prefix) {
			return true
		}
	}
	return false
}

// TestMetricsEndpoint drives queries through a sharded backend and checks
// the Prometheus exposition: parseable, typed, and carrying the latency
// histogram, per-shard I/O counters, signature counters, and HTTP request
// counters the design promises.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newObsTestServer(t, 2, serverOptions{})
	seedHotels(t, ts)
	for _, path := range []string{
		"/search?lat=30.5&lon=100&k=2&q=internet,pool",
		"/search?lat=25.0&lon=-80.0&k=1&q=spa",
		"/ranked?lat=30.5&lon=100&k=2&q=internet,pool",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}

	types, series := scrapeProm(t, ts.URL)
	if types["sk_query_latency_seconds"] != "histogram" {
		t.Fatalf("sk_query_latency_seconds type = %q", types["sk_query_latency_seconds"])
	}
	for _, want := range []string{
		`sk_query_latency_seconds_bucket{op="topk",le="+Inf"}`,
		`sk_query_latency_seconds_count{op="ranked"}`,
		`sk_queries_total{op="topk"}`,
		`sk_io_blocks_total{kind="random",shard="0"}`,
		`sk_io_blocks_total{kind="sequential",shard="1"}`,
		`sk_io_blocks_total{kind="random",shard="all"}`,
		`sk_query_sig_false_positives_total{shard="all"}`,
		`sk_query_entries_pruned_total{shard="0"}`,
		`sk_http_requests_total{endpoint="search"}`,
	} {
		if !series[want] {
			t.Errorf("missing series %s", want)
		}
	}
	if !hasSeries(series, "sk_query_nodes_expanded_total") {
		t.Error("missing nodes-expanded family")
	}

	// /debug/vars renders the same registry as JSON.
	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vars map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	for _, want := range []string{"sk_http_requests_total", "sk_query_latency_seconds", "sk_io_blocks_total"} {
		if _, ok := vars[want]; !ok {
			t.Errorf("/debug/vars missing %s", want)
		}
	}
}

// TestSlowQueryLog sets a zero-distance threshold so every query is slow,
// and checks the log emits one parseable JSON line per query.
func TestSlowQueryLog(t *testing.T) {
	var buf syncBuffer
	_, ts := newObsTestServer(t, 1, serverOptions{slowQuery: time.Nanosecond, slowLogTo: &buf})
	seedHotels(t, ts)
	resp, err := http.Get(ts.URL + "/search?lat=30.5&lon=100&k=2&q=internet,pool")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("slow log lines = %d (%q)", len(lines), buf.String())
	}
	var entry map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("slow log not JSON: %v (%q)", err, lines[0])
	}
	if entry["op"] != "topk" {
		t.Errorf("slow log op = %v", entry["op"])
	}
	if _, ok := entry["latency_ms"]; !ok {
		t.Error("slow log missing latency_ms")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestPprofMount checks the -pprof flag mounts the profile index and that
// it stays unmounted by default.
func TestPprofMount(t *testing.T) {
	_, off := newObsTestServer(t, 1, serverOptions{})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof off: status %d", resp.StatusCode)
	}

	_, on := newObsTestServer(t, 1, serverOptions{pprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof on: status %d", resp.StatusCode)
	}
}

// TestConcurrentMetricsScrape hammers queries, writes, /stats, and /metrics
// together; run under -race this checks the whole observability path is
// synchronization-clean.
func TestConcurrentMetricsScrape(t *testing.T) {
	_, ts := newObsTestServer(t, 2, serverOptions{slowQuery: time.Nanosecond, slowLogTo: &syncBuffer{}})
	seedHotels(t, ts)
	paths := []string{
		"/search?lat=30.5&lon=100&k=2&q=internet",
		"/ranked?lat=30.5&lon=100&k=2&q=pool",
		"/stats",
		"/metrics",
		"/debug/vars",
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		for _, path := range paths {
			wg.Add(1)
			go func(path string) {
				defer wg.Done()
				for j := 0; j < 5; j++ {
					resp, err := http.Get(ts.URL + path)
					if err != nil {
						t.Error(err)
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("%s status %d", path, resp.StatusCode)
						return
					}
				}
			}(path)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := post(t, ts.URL+"/objects", addRequest{
				Point: []float64{float64(i), float64(-i)},
				Text:  "motel parking wifi",
			})
			resp.Body.Close()
		}(i)
	}
	wg.Wait()

	_, series := scrapeProm(t, ts.URL)
	if !hasSeries(series, "sk_queries_total") {
		t.Error("no query totals after traffic")
	}
}
