// POST /query: the SKQL declarative front-end over HTTP. The body is
// either {"query": "SELECT ..."} carrying SKQL text or the structured
// JSON query form itself (a "select" key marks it). Plans are built by
// internal/skql's cost-based router over the same backend the rest of
// the API serves, so replicas answer queries (with read-your-writes
// honored in ryw mode) and EXPLAIN ANALYZE reports real block reads.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/obs"
	"spatialkeyword/internal/skql"
)

// maxQueryBody bounds the request body; SKQL statements are small.
const maxQueryBody = 1 << 20

// skqlServer is the per-server SKQL state: the catalog over the
// backend plus the sk_skql_* metrics family.
type skqlServer struct {
	cat   *skql.Catalog
	parse *obs.Histogram // sk_skql_parse_seconds
	plan  *obs.Histogram // sk_skql_plan_seconds
	exec  *obs.Histogram // sk_skql_exec_seconds
	plans map[skql.Path]*obs.Counter
	errs  *obs.Counter
}

// attachSKQL mounts the SKQL catalog when the backend exposes the full
// read surface (all three backends do: lockedEngine below, the sharded
// engine, and the replication follower).
func (s *server) attachSKQL() {
	t, ok := s.eng.(skql.Target)
	if !ok {
		return
	}
	q := &skqlServer{
		cat: skql.NewCatalog(t),
		parse: s.reg.Histogram("sk_skql_parse_seconds",
			"SKQL statement parse latency.", obs.LatencyBuckets()),
		plan: s.reg.Histogram("sk_skql_plan_seconds",
			"SKQL logical-to-physical planning latency.", obs.LatencyBuckets()),
		exec: s.reg.Histogram("sk_skql_exec_seconds",
			"SKQL plan execution latency.", obs.LatencyBuckets()),
		plans: make(map[skql.Path]*obs.Counter),
		errs: s.reg.Counter("sk_skql_errors_total",
			"SKQL statements rejected at parse, plan, or execution time."),
	}
	for _, p := range []skql.Path{skql.PathIR2, skql.PathIIO, skql.PathRTree, skql.PathRanked} {
		q.plans[p] = s.reg.Counter("sk_skql_plans_total",
			"Physical operators planned, by access path.", obs.L("path", p.String()))
	}
	s.skql = q
}

// queryResponse is the POST /query payload.
type queryResponse struct {
	// Query is the canonical form of the parsed statement.
	Query string `json:"query"`
	// Results holds TOP and ALL answers, Ranked the RANKED answers.
	Results []spatialkeyword.Result       `json:"results,omitempty"`
	Ranked  []spatialkeyword.RankedResult `json:"ranked,omitempty"`
	// Count is the number of answers (the whole answer for COUNT).
	Count int `json:"count"`
	// Explain carries the EXPLAIN / EXPLAIN ANALYZE report lines.
	Explain []string `json:"explain,omitempty"`
}

// parseQueryBody accepts the two statement encodings.
func parseQueryBody(body []byte) (*skql.Query, error) {
	var wrapper struct {
		Query string `json:"query"`
	}
	trimmed := bytes.TrimSpace(body)
	if len(trimmed) == 0 {
		return nil, fmt.Errorf("empty body")
	}
	if err := json.Unmarshal(trimmed, &wrapper); err == nil && wrapper.Query != "" {
		return skql.Parse(wrapper.Query)
	}
	return skql.ParseJSON(trimmed)
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxQueryBody))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	sq := s.skql

	start := time.Now()
	q, err := parseQueryBody(body)
	sq.parse.Observe(time.Since(start).Seconds())
	if err != nil {
		sq.errs.Inc()
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !s.awaitReadPosition(w, r) {
		return
	}

	start = time.Now()
	plan, err := sq.cat.BuildPlan(q)
	sq.plan.Observe(time.Since(start).Seconds())
	if err != nil {
		sq.errs.Inc()
		httpError(w, http.StatusBadRequest, err)
		return
	}
	for i := range plan.Ops {
		if ctr := sq.plans[plan.Ops[i].Path]; ctr != nil {
			ctr.Inc()
		}
	}

	start = time.Now()
	rs, err := sq.cat.RunPlan(plan)
	sq.exec.Observe(time.Since(start).Seconds())
	if err != nil {
		sq.errs.Inc()
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Query:   q.String(),
		Results: rs.Results,
		Ranked:  rs.Ranked,
		Count:   rs.Count,
		Explain: rs.Explain,
	})
}

// The skql.Target read surface on the lock-wrapped engine: queries
// take the read lock like every other read path.

func (l *lockedEngine) TopKArea(k int, lo, hi []float64, keywords ...string) ([]spatialkeyword.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.TopKArea(k, lo, hi, keywords...)
}

func (l *lockedEngine) WithinArea(lo, hi []float64, keywords ...string) ([]spatialkeyword.Result, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.WithinArea(lo, hi, keywords...)
}

func (l *lockedEngine) NumObjects() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.NumObjects()
}

// Scan holds the read lock for the whole pass; the sidecar index build
// is the only caller and runs rarely (on growth).
func (l *lockedEngine) Scan(fn func(spatialkeyword.Object) error) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.Scan(fn)
}

func (l *lockedEngine) IsDeleted(id uint64) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.IsDeleted(id)
}

func (l *lockedEngine) Corpus() spatialkeyword.CorpusStats {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.Corpus()
}

func (l *lockedEngine) MeterIO() func() (random, sequential uint64) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.eng.MeterIO()
}

// Flush indexes buffered adds under the write lock (it mutates the
// tree); the planner calls it at plan time so deferred indexing I/O
// stays out of the per-operator meters.
func (l *lockedEngine) Flush() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.eng.Flush()
}
