package main

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func postQuery(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestQueryEndpointText(t *testing.T) {
	_, ts := newTestServer(t, "")
	seedHotels(t, ts)

	resp := postQuery(t, ts.URL, `{"query": "SELECT TOP 2 NEAR (25.4, -80.1) MATCH internet AND pool"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[queryResponse](t, resp)
	if out.Query != `SELECT TOP 2 NEAR (25.4, -80.1) MATCH "internet" AND "pool"` {
		t.Fatalf("canonical query = %q", out.Query)
	}
	if out.Count != 2 || len(out.Results) != 2 {
		t.Fatalf("count=%d results=%d", out.Count, len(out.Results))
	}
	// Both matches carry internet AND pool; the nearer one is B.
	if out.Results[0].Object.ID != 1 || out.Results[1].Object.ID != 2 {
		t.Fatalf("result IDs = %d, %d", out.Results[0].Object.ID, out.Results[1].Object.ID)
	}
}

func TestQueryEndpointJSONForm(t *testing.T) {
	_, ts := newTestServer(t, "")
	seedHotels(t, ts)

	resp := postQuery(t, ts.URL, `{"select":"count","within":[-90,-180,90,0],"match":{"term":"internet"}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[queryResponse](t, resp)
	// Hotels A (25.4,-80.1), B (47.3,-122.2), G (-33.2,-70.4) all have
	// longitude < 0, so all three are inside the rect.
	if out.Count != 3 {
		t.Fatalf("count = %d, want 3", out.Count)
	}
}

func TestQueryEndpointExplainAnalyze(t *testing.T) {
	_, ts := newTestServer(t, "")
	seedHotels(t, ts)

	resp := postQuery(t, ts.URL, `{"query": "EXPLAIN ANALYZE SELECT TOP 1 NEAR (25.4, -80.1) MATCH internet"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[queryResponse](t, resp)
	if len(out.Results) != 1 {
		t.Fatalf("EXPLAIN ANALYZE should also answer, got %d results", len(out.Results))
	}
	joined := strings.Join(out.Explain, "\n")
	for _, want := range []string{"plan: top 1", "est:    blocks=", "actual: blocks="} {
		if !strings.Contains(joined, want) {
			t.Fatalf("explain output missing %q:\n%s", want, joined)
		}
	}
}

func TestQueryEndpointSharded(t *testing.T) {
	_, ts := newShardedTestServer(t, "", 3)
	seedHotels(t, ts)

	resp := postQuery(t, ts.URL, `{"query": "SELECT TOP 3 NEAR (25.4, -80.1) MATCH internet"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	out := decode[queryResponse](t, resp)
	if out.Count != 3 {
		t.Fatalf("count = %d, want 3", out.Count)
	}
}

func TestQueryEndpointErrors(t *testing.T) {
	_, ts := newTestServer(t, "")
	seedHotels(t, ts)

	cases := []struct {
		body    string
		wantSub string
	}{
		{`{"query": "SELECT nonsense"}`, "expected TOP"},
		{`{"select":"top","near":[1,2]}`, "k must be"},
		{`{"query": "SELECT RANKED 5 NEAR (1, 1) MATCH a USING iio"}`, "drop USING"},
		{``, "empty body"},
	}
	for _, tc := range cases {
		resp := postQuery(t, ts.URL, tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", tc.body, resp.StatusCode)
		}
		msg, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(msg), tc.wantSub) {
			t.Fatalf("body %q: error %q, want substring %q", tc.body, msg, tc.wantSub)
		}
	}
}

// TestQueryEndpointReplica checks the SKQL front-end serves reads from
// a replication follower, the same answers the leader gives.
func TestQueryEndpointReplica(t *testing.T) {
	_, leaderTS := newLeaderTestServer(t, t.TempDir())
	seedHotels(t, leaderTS)
	srv, replicaTS := newReplicaTestServer(t, t.TempDir(), leaderTS.URL, "eventual")
	tok := srv.leaderToken(t, leaderTS)
	if err := srv.follower.WaitFor(tok, 10e9); err != nil {
		t.Fatalf("replica catch-up: %v", err)
	}

	body := `{"query": "SELECT TOP 2 NEAR (25.4, -80.1) MATCH internet AND pool"}`
	want := decode[queryResponse](t, postQuery(t, leaderTS.URL, body))
	got := decode[queryResponse](t, postQuery(t, replicaTS.URL, body))
	if len(got.Results) != len(want.Results) {
		t.Fatalf("replica %d results, leader %d", len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		if got.Results[i].Object.ID != want.Results[i].Object.ID || got.Results[i].Dist != want.Results[i].Dist {
			t.Fatalf("result %d: replica %+v, leader %+v", i, got.Results[i], want.Results[i])
		}
	}
}

func TestQueryMetricsExported(t *testing.T) {
	_, ts := newTestServer(t, "")
	seedHotels(t, ts)
	postQuery(t, ts.URL, `{"query": "SELECT TOP 2 NEAR (25.4, -80.1) MATCH internet"}`).Body.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	text, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"sk_skql_parse_seconds", "sk_skql_plan_seconds", "sk_skql_exec_seconds",
		`sk_skql_plans_total{path=`,
		`sk_http_requests_total{endpoint="query"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
