package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/obs"
	"spatialkeyword/internal/repl"
)

// newLeaderTestServer starts a WAL-enabled durable skserve with the
// replication protocol mounted.
func newLeaderTestServer(t *testing.T, dir string) (*server, *httptest.Server) {
	t.Helper()
	eng, err := openOrCreate(dir, spatialkeyword.Config{SignatureBytes: 16, WAL: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(eng, true, serverOptions{leader: attachLeader(eng, dir)})
	if s.leader == nil {
		t.Fatal("WAL leader did not attach replication")
	}
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

// newReplicaTestServer starts a read replica of leaderURL.
func newReplicaTestServer(t *testing.T, dir, leaderURL, readMode string) (*server, *httptest.Server) {
	t.Helper()
	reg := obs.NewRegistry()
	f, err := repl.OpenFollower(dir, leaderURL, repl.Options{
		Registry:      reg,
		PollWait:      50 * time.Millisecond,
		RetryInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(f, false, serverOptions{registry: reg, readMode: readMode, rywTimeout: 5 * time.Second})
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { f.Close() }) //nolint:errcheck // test teardown
	return s, ts
}

func TestReplicaServesLeaderWrites(t *testing.T) {
	_, leaderTS := newLeaderTestServer(t, t.TempDir())
	seedHotels(t, leaderTS)

	srv, replicaTS := newReplicaTestServer(t, t.TempDir(), leaderTS.URL, "eventual")
	if srv.role() != "replica" {
		t.Fatalf("role = %q, want replica", srv.role())
	}
	if err := srv.follower.WaitFor(srv.leaderToken(t, leaderTS), 10*time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}

	resp, err := http.Get(replicaTS.URL + "/search?lat=25.5&lon=-80.0&k=2&q=internet")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[searchResponse](t, resp)
	if len(out.Results) != 2 {
		t.Fatalf("replica returned %d results, want 2", len(out.Results))
	}

	// The replica refuses writes with 403.
	addResp := post(t, replicaTS.URL+"/objects", addRequest{Point: []float64{1, 2}, Text: "nope"})
	addResp.Body.Close() //nolint:errcheck // status is the assertion
	if addResp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica add status %d, want 403", addResp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, replicaTS.URL+"/objects/0", nil)
	delResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delResp.Body.Close() //nolint:errcheck // status is the assertion
	if delResp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica delete status %d, want 403", delResp.StatusCode)
	}
	saveResp := post(t, replicaTS.URL+"/save", struct{}{})
	saveResp.Body.Close() //nolint:errcheck // status is the assertion
	if saveResp.StatusCode != http.StatusForbidden {
		t.Fatalf("replica save status %d, want 403", saveResp.StatusCode)
	}
}

// leaderToken fetches the leader's current position by doing a no-op write
// probe of /healthz — the token is in the replication block, but the
// simplest authoritative source is the leader object itself.
func (s *server) leaderToken(t *testing.T, leaderTS *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(leaderTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp)
	replBlock, ok := out["replication"].(map[string]any)
	if !ok {
		t.Fatalf("leader /healthz has no replication block: %v", out)
	}
	tok, ok := replBlock["position"].(string)
	if !ok {
		t.Fatalf("leader /healthz replication block has no position: %v", replBlock)
	}
	return tok
}

func TestReplicaReadYourWrites(t *testing.T) {
	_, leaderTS := newLeaderTestServer(t, t.TempDir())
	_, replicaTS := newReplicaTestServer(t, t.TempDir(), leaderTS.URL, "ryw")

	// Every write's position token, echoed on the replica read, must make
	// the written object visible there.
	for i := 0; i < 10; i++ {
		resp := post(t, leaderTS.URL+"/objects", addRequest{
			Point: []float64{float64(i), 1},
			Text:  "ryw probe espresso",
		})
		tok := resp.Header.Get(repl.HeaderPosition)
		out := decode[map[string]uint64](t, resp)
		if tok == "" {
			t.Fatal("leader write response missing position header")
		}
		req, _ := http.NewRequest(http.MethodGet,
			replicaTS.URL+"/objects/"+strconv.FormatUint(out["id"], 10), nil)
		req.Header.Set(repl.HeaderPosition, tok)
		getResp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		obj := decode[spatialkeyword.Object](t, getResp)
		if getResp.StatusCode != http.StatusOK || obj.ID != out["id"] {
			t.Fatalf("ryw read %d: status %d, object %+v", i, getResp.StatusCode, obj)
		}
	}
}

func TestHealthzReplicationBlocks(t *testing.T) {
	_, leaderTS := newLeaderTestServer(t, t.TempDir())
	seedHotels(t, leaderTS)

	resp, err := http.Get(leaderTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	out := decode[map[string]any](t, resp)
	if out["role"] != "primary" {
		t.Fatalf("leader role %v", out["role"])
	}
	dur, ok := out["durability"].(map[string]any)
	if !ok {
		t.Fatalf("leader /healthz has no durability block: %v", out)
	}
	if dur["enabled"] != true || dur["durable_seq"].(float64) != 3 {
		t.Fatalf("leader durability block %v", dur)
	}

	srv, replicaTS := newReplicaTestServer(t, t.TempDir(), leaderTS.URL, "eventual")
	if err := srv.follower.WaitFor(srv.leaderToken(t, leaderTS), 10*time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, err = http.Get(replicaTS.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	out = decode[map[string]any](t, resp)
	if out["role"] != "replica" {
		t.Fatalf("replica role %v", out["role"])
	}
	replBlock, ok := out["replication"].(map[string]any)
	if !ok {
		t.Fatalf("replica /healthz has no replication block: %v", out)
	}
	if replBlock["connected"] != true || replBlock["lag_records"].(float64) != 0 {
		t.Fatalf("replica replication block %v", replBlock)
	}

	// The replica's /metrics exposes the five sk_repl_* series.
	resp, err = http.Get(replicaTS.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck // read-only body
	text := string(body)
	for _, m := range []string{
		"sk_repl_lag_seconds", "sk_repl_lag_records",
		"sk_repl_snapshots_total", "sk_repl_resyncs_total",
		"sk_repl_follower_connected",
	} {
		if !strings.Contains(text, "\n"+m) {
			t.Fatalf("replica /metrics missing %s:\n%s", m, text)
		}
	}
}
