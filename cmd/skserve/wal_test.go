package main

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"spatialkeyword"
)

// newWALTestServer builds a durable server with the write-ahead log on
// (window 0: every append syncs individually, so counters are exact).
func newWALTestServer(t *testing.T, dir string, shards int) (*server, *httptest.Server) {
	t.Helper()
	cfg := spatialkeyword.Config{SignatureBytes: 16, WAL: true}
	eng, err := openOrCreate(dir, cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(eng, true, serverOptions{})
	ts := httptest.NewServer(s.routes())
	t.Cleanup(ts.Close)
	return s, ts
}

// healthzWAL fetches /healthz and returns the response and its wal block.
func healthzWAL(t *testing.T, ts *httptest.Server) (map[string]any, map[string]any) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	body := decode[map[string]any](t, resp)
	walState, _ := body["wal"].(map[string]any)
	return body, walState
}

// TestWALServerRecoversWithoutSave is the service-level durability check:
// mutations acknowledged over HTTP survive an unclean shutdown (no Save),
// and the reopened server reports the replay in /healthz.
func TestWALServerRecoversWithoutSave(t *testing.T) {
	for _, shards := range []int{1, 3} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			dir := t.TempDir()
			s, ts := newWALTestServer(t, dir, shards)
			ids := seedHotels(t, ts)

			body, walState := healthzWAL(t, ts)
			if body["status"] != "ok" {
				t.Fatalf("healthz status %v", body["status"])
			}
			if walState == nil || walState["enabled"] != true {
				t.Fatalf("healthz wal block missing or disabled: %v", walState)
			}
			if got := walState["appends"].(float64); got != float64(len(ids)) {
				t.Fatalf("healthz wal appends = %v, want %d", got, len(ids))
			}

			// Unclean shutdown: close without Save. Everything acknowledged
			// must come back from the log.
			ts.Close()
			if err := s.eng.Close(); err != nil {
				t.Fatal(err)
			}
			s2, ts2 := newWALTestServer(t, dir, shards)
			defer s2.eng.Close() //nolint:errcheck
			_, walState = healthzWAL(t, ts2)
			if got := walState["replayed_records"].(float64); got != float64(len(ids)) {
				t.Fatalf("replayed %v records after unclean shutdown, want %d", got, len(ids))
			}
			resp, err := http.Get(ts2.URL + "/search?lat=30.5&lon=100&k=10&q=internet")
			if err != nil {
				t.Fatal(err)
			}
			out := decode[searchResponse](t, resp)
			if len(out.Results) != len(ids) {
				t.Fatalf("search after recovery found %d, want %d", len(out.Results), len(ids))
			}
		})
	}
}

// TestWALServerMetrics: the WAL metric families are registered, seeded from
// the recovery counters, and driven by the live observer hooks.
func TestWALServerMetrics(t *testing.T) {
	dir := t.TempDir()
	s, ts := newWALTestServer(t, dir, 1)
	seedHotels(t, ts)

	types, _ := scrapeProm(t, ts.URL)
	if types["sk_wal_appends_total"] != "counter" {
		t.Fatalf("sk_wal_appends_total type %q", types["sk_wal_appends_total"])
	}
	if types["sk_wal_fsync_seconds"] != "histogram" {
		t.Fatalf("sk_wal_fsync_seconds type %q", types["sk_wal_fsync_seconds"])
	}
	text := promRaw(t, ts)
	for _, want := range []string{
		"sk_wal_appends_total 3",
		"sk_wal_replayed_records_total 0",
		"sk_wal_torn_tail_total 0",
		"sk_wal_fsync_seconds_count 3",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Fatalf("missing metric sample %q in:\n%s", want, text)
		}
	}

	// Reopen uncleanly: the replay counter is seeded from recovery.
	ts.Close()
	if err := s.eng.Close(); err != nil {
		t.Fatal(err)
	}
	_, ts2 := newWALTestServer(t, dir, 1)
	if text := promRaw(t, ts2); !strings.Contains(text, "sk_wal_replayed_records_total 3\n") {
		t.Fatalf("replay counter not seeded from recovery:\n%s", text)
	}
}

// promRaw fetches /metrics as raw exposition text for value assertions.
func promRaw(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestNonWALServerHasNoWALSurface: without -wal neither /healthz nor
// /metrics grow WAL entries.
func TestNonWALServerHasNoWALSurface(t *testing.T) {
	_, ts := newTestServer(t, t.TempDir())
	seedHotels(t, ts)
	body, walState := healthzWAL(t, ts)
	if walState != nil {
		t.Fatalf("non-WAL server reported wal state %v", walState)
	}
	if body["status"] != "ok" {
		t.Fatalf("healthz status %v", body["status"])
	}
	types, _ := scrapeProm(t, ts.URL)
	if _, ok := types["sk_wal_appends_total"]; ok {
		t.Fatal("non-WAL server registered WAL metrics")
	}
}
