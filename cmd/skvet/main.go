// Command skvet runs the project's static-analysis suite: custom passes
// (internal/analysis) that machine-check the correctness invariants the
// engine's earlier PRs established by convention — storage error
// provenance, no I/O under shard/core mutexes, deterministic modeled
// disk time, no panics in library code, canonical obs metric
// registration, zero-allocation //skvet:hotpath functions (compiler
// escape/inlining diagnostics), an acyclic whole-program lock-order
// graph, and provable goroutine termination paths.
//
// Usage:
//
//	skvet [-json] [-passes erroprov,nopanic] [-list] [-ignores] [packages...]
//
// Package patterns are directories relative to the working directory,
// with ./... meaning the whole subtree (testdata and hidden directories
// are skipped). The default pattern is ./... . skvet exits 0 when clean,
// 1 on findings, and 2 on usage or load errors. Findings print as
//
//	file:line:col: [pass] message
//
// or, with -json, as a JSON array of {pass, file, line, col, message}
// objects for machine consumption. Suppress an individual finding with a
// //skvet:ignore <pass> comment on the same line or the line above;
// -ignores prints an audit of every such directive with its pass list
// and justification.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/token"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"spatialkeyword/internal/analysis"
)

func main() {
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "skvet:", err)
		os.Exit(2)
	}
	os.Exit(run(os.Args[1:], wd, os.Stdout, os.Stderr))
}

// jsonDiagnostic is the machine-readable finding shape.
type jsonDiagnostic struct {
	Pass    string `json:"pass"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// run is the testable entry point: args are the command-line arguments
// (no program name), dir is the working directory patterns resolve
// against. Returns the process exit code.
func run(args []string, dir string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("skvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	passNames := fs.String("passes", "", "comma-separated subset of passes to run (default all)")
	list := fs.Bool("list", false, "list the available passes and exit")
	ignores := fs.Bool("ignores", false, "audit: list every skvet:ignore directive with its passes and reason")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	passes := analysis.AllPasses()
	if *list {
		for _, p := range passes {
			fmt.Fprintf(stdout, "%-12s %s\n", p.Name(), p.Doc())
		}
		return 0
	}
	if *passNames != "" {
		selected, err := selectPasses(passes, *passNames)
		if err != nil {
			fmt.Fprintln(stderr, "skvet:", err)
			return 2
		}
		passes = selected
	}

	root, modPath, err := findModule(dir)
	if err != nil {
		fmt.Fprintln(stderr, "skvet:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(root, dir, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "skvet:", err)
		return 2
	}

	fset := token.NewFileSet()
	loader := analysis.NewLoader(fset)
	loader.AddModule(modPath, root)

	var pkgs []*analysis.Package
	for _, d := range dirs {
		rel, err := filepath.Rel(root, d)
		if err != nil {
			fmt.Fprintln(stderr, "skvet:", err)
			return 2
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.Load(importPath)
		if errors.Is(err, analysis.ErrNoGoFiles) {
			continue
		}
		if err != nil {
			fmt.Fprintln(stderr, "skvet:", err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })

	prog := &analysis.Program{Fset: fset, Pkgs: pkgs}

	if *ignores {
		return listIgnores(prog, dir, *jsonOut, stdout, stderr)
	}

	diags := analysis.Run(prog, passes)

	if *jsonOut {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				Pass:    d.Pass,
				File:    relativeTo(dir, d.Pos.Filename),
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "skvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n",
				relativeTo(dir, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Pass, d.Message)
		}
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// jsonIgnore is the machine-readable directive shape for -ignores.
type jsonIgnore struct {
	File   string   `json:"file"`
	Line   int      `json:"line"`
	Passes []string `json:"passes"`
	Reason string   `json:"reason"`
}

// listIgnores prints the skvet:ignore audit: every directive in the
// analyzed packages, with the passes it names and its justification.
// Directives with no reason are part of the listing — the audit exists so
// they stand out. Exits 0; malformed directives are the suite's job to
// flag, not the audit's.
func listIgnores(prog *analysis.Program, dir string, jsonOut bool, stdout, stderr io.Writer) int {
	dirs := analysis.Directives(prog)
	if jsonOut {
		out := make([]jsonIgnore, 0, len(dirs))
		for _, d := range dirs {
			out = append(out, jsonIgnore{
				File:   relativeTo(dir, d.Pos.Filename),
				Line:   d.Pos.Line,
				Passes: d.Passes,
				Reason: d.Reason,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(stderr, "skvet:", err)
			return 2
		}
		return 0
	}
	for _, d := range dirs {
		passList := strings.Join(d.Passes, ",")
		if passList == "" {
			passList = "(missing pass list)"
		}
		reason := d.Reason
		if reason == "" {
			reason = "(no reason given)"
		}
		fmt.Fprintf(stdout, "%s:%d: %s — %s\n", relativeTo(dir, d.Pos.Filename), d.Pos.Line, passList, reason)
	}
	return 0
}

// selectPasses filters the suite down to the named passes.
func selectPasses(all []analysis.Pass, names string) ([]analysis.Pass, error) {
	byName := make(map[string]analysis.Pass, len(all))
	for _, p := range all {
		byName[p.Name()] = p
	}
	var out []analysis.Pass
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		p, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown pass %q (run skvet -list)", name)
		}
		out = append(out, p)
	}
	return out, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mod := parseModulePath(string(data))
			if mod == "" {
				return "", "", fmt.Errorf("no module line in %s", filepath.Join(d, "go.mod"))
			}
			return d, mod, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// parseModulePath extracts the module path from go.mod content.
func parseModulePath(gomod string) string {
	for _, line := range strings.Split(gomod, "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// expandPatterns resolves package patterns to candidate directories.
// "dir/..." walks the subtree; a plain path names one directory. Walks
// skip testdata, hidden, and underscore-prefixed directories, matching
// the go tool's convention.
func expandPatterns(root, dir string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, p := range patterns {
		recursive := false
		if p == "..." || strings.HasSuffix(p, "/...") {
			recursive = true
			p = strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
			if p == "" {
				p = "."
			}
		}
		base := p
		if !filepath.IsAbs(base) {
			base = filepath.Join(dir, base)
		}
		base = filepath.Clean(base)
		if rel, err := filepath.Rel(root, base); err != nil || rel == ".." || strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return nil, fmt.Errorf("pattern %q is outside the module rooted at %s", p, root)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return fs.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

// relativeTo renders path relative to dir when possible, for compact
// clickable output.
func relativeTo(dir, path string) string {
	rel, err := filepath.Rel(dir, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return rel
}
