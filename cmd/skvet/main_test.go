package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// repoRoot locates the module root (two levels up from this package).
func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// writeTempModule lays out a throwaway module with one library package
// containing a nopanic finding and returns the module root.
func writeTempModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"lib/lib.go": `package lib

// Boom always panics.
func Boom() {
	panic("boom")
}
`,
	}
	for name, content := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestCleanRepo is the acceptance gate: the suite must be quiet on the
// repository itself, with genuine findings fixed and deliberate
// exceptions annotated.
func TestCleanRepo(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, repoRoot(t), &stdout, &stderr)
	if code != 0 {
		t.Errorf("skvet on the repo exited %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

func TestFindingsExitOne(t *testing.T) {
	dir := writeTempModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"./..."}, dir, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "lib.go:5:2: [nopanic]") {
		t.Errorf("output missing the expected finding:\n%s", out)
	}
}

func TestJSONOutput(t *testing.T) {
	dir := writeTempModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-json", "./..."}, dir, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstderr: %s", code, stderr.String())
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 1 {
		t.Fatalf("got %d findings, want 1: %+v", len(diags), diags)
	}
	d := diags[0]
	if d.Pass != "nopanic" || d.File != filepath.Join("lib", "lib.go") || d.Line != 5 {
		t.Errorf("unexpected finding: %+v", d)
	}
}

func TestPassSelection(t *testing.T) {
	dir := writeTempModule(t)
	var stdout, stderr bytes.Buffer
	// With nopanic deselected the temp module is clean.
	code := run([]string{"-passes", "erroprov,lockio", "./..."}, dir, &stdout, &stderr)
	if code != 0 {
		t.Errorf("exit = %d, want 0 with nopanic deselected\n%s", code, stdout.String())
	}
	code = run([]string{"-passes", "nosuchpass", "./..."}, dir, &stdout, &stderr)
	if code != 2 {
		t.Errorf("exit = %d, want 2 for an unknown pass", code)
	}
	if !strings.Contains(stderr.String(), "nosuchpass") {
		t.Errorf("stderr should name the unknown pass: %s", stderr.String())
	}
}

func TestListPasses(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, t.TempDir(), &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d", code)
	}
	for _, name := range []string{"erroprov", "lockio", "determinism", "nopanic", "obsreg", "hotalloc", "lockorder", "goroleak"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing pass %q:\n%s", name, stdout.String())
		}
	}
}

// TestIgnoresAudit exercises the -ignores listing: every directive in the
// analyzed packages appears with its pass list and reason, in both text
// and JSON form, and the audit itself always exits 0.
func TestIgnoresAudit(t *testing.T) {
	dir := writeTempModule(t)
	path := filepath.Join(dir, "lib", "lib.go")
	src := `package lib

// Boom always panics.
func Boom() {
	//skvet:ignore nopanic documented invariant for the audit test
	panic("boom")
}
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	var stdout, stderr bytes.Buffer
	if code := run([]string{"-ignores", "./..."}, dir, &stdout, &stderr); code != 0 {
		t.Fatalf("-ignores exited %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "nopanic") || !strings.Contains(out, "documented invariant for the audit test") {
		t.Errorf("-ignores output missing the directive:\n%s", out)
	}

	stdout.Reset()
	if code := run([]string{"-ignores", "-json", "./..."}, dir, &stdout, &stderr); code != 0 {
		t.Fatalf("-ignores -json exited %d\nstderr: %s", code, stderr.String())
	}
	var entries []jsonIgnore
	if err := json.Unmarshal(stdout.Bytes(), &entries); err != nil {
		t.Fatalf("-ignores -json output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(entries) != 1 {
		t.Fatalf("got %d directives, want 1: %+v", len(entries), entries)
	}
	e := entries[0]
	if e.File != filepath.Join("lib", "lib.go") || len(e.Passes) != 1 || e.Passes[0] != "nopanic" ||
		e.Reason != "documented invariant for the audit test" {
		t.Errorf("unexpected directive: %+v", e)
	}
}

func TestPatternOutsideModule(t *testing.T) {
	dir := writeTempModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"../elsewhere"}, dir, &stdout, &stderr); code != 2 {
		t.Errorf("exit = %d, want 2 for a pattern outside the module", code)
	}
}

func TestNoModule(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./..."}, "/", &stdout, &stderr); code != 2 {
		t.Errorf("exit = %d, want 2 outside any module", code)
	}
}

func TestParseModulePath(t *testing.T) {
	tests := []struct {
		gomod, want string
	}{
		{"module spatialkeyword\n\ngo 1.22\n", "spatialkeyword"},
		{"// comment\nmodule \"quoted/path\"\n", "quoted/path"},
		{"go 1.22\n", ""},
	}
	for _, tt := range tests {
		if got := parseModulePath(tt.gomod); got != tt.want {
			t.Errorf("parseModulePath(%q) = %q, want %q", tt.gomod, got, tt.want)
		}
	}
}
