package spatialkeyword

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"sort"
	"testing"

	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/wal"
)

// crashFS arms the persistence layer's filesystem hooks to simulate a
// process kill: every hooked operation from the n-th one (1-based) onward
// fails, exactly as if the process died there and never came back. The
// returned restore func re-installs the real filesystem.
func crashFS(n int) (restore func()) {
	var ops int
	errCrash := errors.New("simulated crash")
	count := func() error {
		ops++
		if ops >= n {
			return errCrash
		}
		return nil
	}
	origWrite, origRename, origRemove, origCopy, origCreateWAL := fsWriteFile, fsRename, fsRemove, fsCopyFile, fsCreateWAL
	fsWriteFile = func(path string, data []byte, perm os.FileMode) error {
		if err := count(); err != nil {
			return err
		}
		return origWrite(path, data, perm)
	}
	fsRename = func(from, to string) error {
		if err := count(); err != nil {
			return err
		}
		return origRename(from, to)
	}
	fsRemove = func(path string) error {
		if err := count(); err != nil {
			return err
		}
		return origRemove(path)
	}
	fsCopyFile = func(dst, src string) error {
		if err := count(); err != nil {
			return err
		}
		return origCopy(dst, src)
	}
	fsCreateWAL = func(path string, blockSize int) (*storage.FileDisk, *wal.Log, error) {
		if err := count(); err != nil {
			return nil, nil, err
		}
		return origCreateWAL(path, blockSize)
	}
	return func() {
		fsWriteFile, fsRename, fsRemove, fsCopyFile, fsCreateWAL = origWrite, origRename, origRemove, origCopy, origCreateWAL
	}
}

// engineTexts scans every live object's text (the query-independent content
// fingerprint used to compare an engine against the committed oracle).
func engineTexts(t *testing.T, e *Engine) []string {
	t.Helper()
	var texts []string
	if err := e.Scan(func(o Object) error {
		texts = append(texts, o.Text)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(texts)
	return texts
}

// TestKillDuringSaveAlwaysRecovers is the acceptance loop: 100 iterations
// of mutate → save killed at a rotating filesystem operation → reopen. The
// reopened engine must always be the last successfully committed snapshot —
// readable, query-identical, never torn.
func TestKillDuringSaveAlwaysRecovers(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewDurableEngine(Config{SignatureBytes: 16}, dir)
	if err != nil {
		t.Fatal(err)
	}
	// Committed baseline: a handful of objects and one clean save.
	var oracle []string
	for i := 0; i < 8; i++ {
		text := fmt.Sprintf("base %d poi", i)
		if _, err := eng.Add([]float64{float64(i), float64(i)}, text); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, text)
	}
	sort.Strings(oracle)
	if err := eng.Save(); err != nil {
		t.Fatal(err)
	}

	// A full save touches at most 5 commit-critical hooked ops (2 snapshot
	// copies, 2 manifest writes, 1 rename) plus up to 3 best-effort prunes.
	// Rotating the kill point over 1..8 exercises every window, including
	// "crashed after the commit point".
	const maxOps = 8
	for iter := 0; iter < 100; iter++ {
		text := fmt.Sprintf("iter %d poi", iter)
		if _, err := eng.Add([]float64{float64(iter % 13), float64(iter % 7)}, text); err != nil {
			t.Fatal(err)
		}
		restore := crashFS(iter%maxOps + 1)
		saveErr := eng.Save()
		restore()
		// Simulated process death: drop the files without another save.
		if err := eng.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", iter, err)
		}
		if saveErr == nil {
			// Crash landed after the commit point; the new object is durable.
			oracle = append(oracle, text)
			sort.Strings(oracle)
		}
		eng, err = OpenEngine(dir)
		if err != nil {
			t.Fatalf("iter %d (save err %v): reopen after crash: %v", iter, saveErr, err)
		}
		if got := engineTexts(t, eng); !reflect.DeepEqual(got, oracle) {
			t.Fatalf("iter %d (save err %v): recovered %d objects, committed %d\ngot:  %v\nwant: %v",
				iter, saveErr, len(got), len(oracle), got, oracle)
		}
		// The index must agree with the object file, not just the scan:
		// every committed object is reachable by query.
		res, err := eng.TopK(len(oracle)+1, []float64{5, 5}, "poi")
		if err != nil {
			t.Fatalf("iter %d: query after recovery: %v", iter, err)
		}
		if len(res) != len(oracle) {
			t.Fatalf("iter %d: query found %d objects, committed %d", iter, len(res), len(oracle))
		}
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestSaveDeviceFaultLeavesPreviousGeneration drives the same recovery
// guarantee from below the filesystem: a device-level write fault during
// the checkpoint fails the save, and reopening yields the previous
// generation.
func TestSaveDeviceFaultLeavesPreviousGeneration(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewDurableEngine(Config{SignatureBytes: 16}, dir)
	if err != nil {
		t.Fatal(err)
	}
	addFigure1(t, eng)
	if err := eng.Save(); err != nil {
		t.Fatal(err)
	}
	oracle := engineTexts(t, eng)
	if _, err := eng.Add([]float64{1, 1}, "doomed addition"); err != nil {
		t.Fatal(err)
	}
	if !eng.InjectFault(func(op storage.Op, id storage.BlockID) error {
		if op == storage.OpWrite {
			return &storage.FaultError{Kind: storage.KindWriteError, Op: op, Block: id}
		}
		return nil
	}) {
		t.Fatal("InjectFault refused")
	}
	err = eng.Save()
	if err == nil {
		t.Fatal("save over a failing device succeeded")
	}
	if !storage.IsIOFault(err) {
		t.Fatalf("save error not typed: %v", err)
	}
	eng.InjectFault(nil)
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}
	reopened, err := OpenEngine(dir)
	if err != nil {
		t.Fatalf("reopen after failed save: %v", err)
	}
	defer reopened.Close()
	if got := engineTexts(t, reopened); !reflect.DeepEqual(got, oracle) {
		t.Fatalf("previous generation lost:\ngot:  %v\nwant: %v", got, oracle)
	}
}

// TestOpenEngineAtPinsOldGeneration checks the generation pinning the
// sharded manifest depends on: after a second save, the previous
// generation is still openable by number.
func TestOpenEngineAtPinsOldGeneration(t *testing.T) {
	dir := t.TempDir()
	eng, err := NewDurableEngine(Config{SignatureBytes: 16}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Add([]float64{1, 1}, "first generation"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(); err != nil {
		t.Fatal(err)
	}
	gen1 := eng.Generation()
	if _, err := eng.Add([]float64{2, 2}, "second generation"); err != nil {
		t.Fatal(err)
	}
	if err := eng.Save(); err != nil {
		t.Fatal(err)
	}
	if eng.Generation() != gen1+1 {
		t.Fatalf("generation = %d after second save, want %d", eng.Generation(), gen1+1)
	}
	eng.Close()

	old, err := OpenEngineAt(dir, gen1)
	if err != nil {
		t.Fatalf("open pinned generation: %v", err)
	}
	if got := engineTexts(t, old); len(got) != 1 || got[0] != "first generation" {
		t.Fatalf("pinned generation content: %v", got)
	}
	old.Close()

	cur, err := OpenEngine(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if got := engineTexts(t, cur); len(got) != 2 {
		t.Fatalf("current generation content: %v", got)
	}
}
