// General ranking: the paper's Section 5.3 in action. Distance-first
// queries are conjunctive — an object missing one keyword is out, however
// close. The *general* top-k spatial keyword query instead ranks every
// object by f(distance, IRscore): partial keyword matches count, rare words
// weigh more (tf-idf), and relevance decays with distance. This example
// uses the lower-level internal API via the public Engine to contrast the
// two semantics and to show how the ranking trades distance against
// relevance.
//
//	go run ./examples/generalranking
package main

import (
	"fmt"
	"log"

	"spatialkeyword"
)

func main() {
	eng, err := spatialkeyword.NewEngine(spatialkeyword.Config{SignatureBytes: 32})
	if err != nil {
		log.Fatal(err)
	}

	// A small specialist-bookshop scene. "rare" appears in few shops (high
	// idf), "books" in all of them (low idf).
	// Coordinates in meters; the engine's default ranking halves relevance
	// every ~100 m, so the distances below genuinely trade off against
	// keyword relevance.
	shops := []struct {
		pt   []float64
		desc string
	}{
		{[]float64{20, 10}, "corner shop: books magazines coffee"},
		{[]float64{50, -30}, "midtown books: books bestsellers signings"},
		{[]float64{120, 80}, "collectors attic: rare books first editions maps"},
		{[]float64{600, 550}, "archive house: rare manuscripts rare books appraisal"},
		{[]float64{-400, 300}, "campus store: books textbooks stationery"},
		{[]float64{900, -800}, "estate barn: rare antiques clocks"},
	}
	for _, s := range shops {
		if _, err := eng.Add(s.pt, s.desc); err != nil {
			log.Fatal(err)
		}
	}
	user := []float64{0, 0}

	// Conjunctive: every result must contain BOTH words.
	fmt.Println("— distance-first (conjunctive): rare AND books —")
	strict, err := eng.TopK(5, user, "rare", "books")
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range strict {
		fmt.Printf("%d. dist %.1f  %s\n", i+1, r.Dist, r.Object.Text)
	}
	fmt.Printf("(%d shops qualify — the nearby generalists are excluded)\n\n", len(strict))

	// General: partial matches rank too, weighted by word rarity and
	// discounted by distance.
	fmt.Println("— general ranked: rare, books (soft) —")
	ranked, err := eng.TopKRanked(6, user, "rare", "books")
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range ranked {
		fmt.Printf("%d. score %.4f (dist %.1f, relevance %.3f)  %s\n",
			i+1, r.Score, r.Dist, r.IRScore, r.Object.Text)
	}

	fmt.Println(`
reading the ranking:
 * "collectors attic" wins: both words, still fairly close.
 * the nearby generalists beat "archive house" despite matching only
   "books" — the archive's two "rare" mentions cannot offset being 800 m
   out under the distance discount.
 * "estate barn" still ranks despite lacking "books": the high-idf "rare"
   alone carries it — impossible under conjunctive semantics.`)
}
