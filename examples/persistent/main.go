// Persistent: a durable search engine across "restarts". The paper's
// structures are disk-resident by design; this example exercises the
// library's durability surface — a file-backed engine that is built once,
// saved, closed, and reopened with its index intact — plus the Explain
// trace showing the IR²-Tree pruning on the reopened index.
//
//	go run ./examples/persistent
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"spatialkeyword"
)

func main() {
	dir := filepath.Join(os.TempDir(), "spatialkeyword-demo")
	defer os.RemoveAll(dir)

	// ---- process one: build and save ----
	eng, err := spatialkeyword.NewDurableEngine(spatialkeyword.Config{
		SignatureBytes: 16,
		Stemming:       true, // "fishing" will match "fished", "fish", ...
	}, dir)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	activities := []string{"fishing charters", "kayak rentals", "diving lessons",
		"sunset cruises", "paddleboard tours", "sailing school"}
	for i := 0; i < 2000; i++ {
		pt := []float64{rng.Float64() * 100, rng.Float64() * 100}
		desc := fmt.Sprintf("marina %d: %s", i, activities[rng.Intn(len(activities))])
		if _, err := eng.Add(pt, desc); err != nil {
			log.Fatal(err)
		}
	}
	start := time.Now()
	if err := eng.Save(); err != nil {
		log.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		log.Fatal(err)
	}
	st := eng.Stats()
	fmt.Printf("built and saved %d objects to %s in %v (%.2f MB index)\n",
		st.Objects, dir, time.Since(start).Round(time.Millisecond), st.IndexMB)

	// ---- process two: reopen and query ----
	start = time.Now()
	reopened, err := spatialkeyword.OpenEngine(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer reopened.Close()
	fmt.Printf("reopened in %v with %d objects\n\n",
		time.Since(start).Round(time.Millisecond), reopened.Stats().Objects)

	// A stemmed query: "fished" matches every "fishing charters" marina.
	results, err := reopened.TopK(3, []float64{50, 50}, "fished")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("nearest marinas matching 'fished' (stemming on):")
	for i, r := range results {
		fmt.Printf("  %d. %-38s %.1f away\n", i+1, r.Object.Text, r.Dist)
	}

	// Explain shows the IR²-Tree at work on the reopened index.
	_, trace, err := reopened.Explain(1, []float64{50, 50}, "sailing")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntraversal trace for top-1 'sailing' (paper Example 3 style):")
	max := len(trace)
	if max > 12 {
		max = 12
	}
	for _, line := range trace[:max] {
		fmt.Println(" ", line)
	}
	if len(trace) > max {
		fmt.Printf("  ... (%d more steps)\n", len(trace)-max)
	}
}
