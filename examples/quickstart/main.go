// Quickstart: index a handful of places and ask the paper's canonical
// question — "the nearest objects to a point that contain these keywords".
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spatialkeyword"
)

func main() {
	// An IR²-Tree engine with default settings (2-d, 64-byte signatures).
	eng, err := spatialkeyword.NewEngine(spatialkeyword.Config{})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's Figure 1 dataset: eight hotels around the world.
	hotels := []struct {
		lat, lon float64
		desc     string
	}{
		{25.4, -80.1, "Hotel A tennis court, gift shop, spa, Internet"},
		{47.3, -122.2, "Hotel B wireless Internet, pool, golf course"},
		{35.5, 139.4, "Hotel C spa, continental suites, pool"},
		{39.5, 116.2, "Hotel D sauna, pool, conference rooms"},
		{51.3, -0.5, "Hotel E dry cleaning, free lunch, pets"},
		{40.4, -73.5, "Hotel F safe box, concierge, internet, pets"},
		{-33.2, -70.4, "Hotel G Internet, airport transportation, pool"},
		{-41.1, 174.4, "Hotel H wake up service, no pets, pool"},
	}
	for _, h := range hotels {
		if _, err := eng.Add([]float64{h.lat, h.lon}, h.desc); err != nil {
			log.Fatal(err)
		}
	}

	// "Find the nearest hotels to point [30.5, 100.0] that contain keywords
	// internet and pool" — the paper's running example. Expected: Hotel G,
	// then Hotel B.
	results, stats, err := eng.TopKWithStats(2, []float64{30.5, 100.0}, "internet", "pool")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top-2 hotels near [30.5, 100.0] with internet AND pool:")
	for i, r := range results {
		fmt.Printf("  %d. %-50s dist %.1f\n", i+1, r.Object.Text, r.Dist)
	}
	fmt.Printf("work: %d index nodes, %d objects loaded, %d random + %d sequential blocks\n",
		stats.NodesLoaded, stats.ObjectsLoaded, stats.BlocksRandom, stats.BlocksSequential)

	s := eng.Stats()
	fmt.Printf("index: %d objects, height %d, %.3f MB (+%.3f MB object file)\n",
		s.Objects, s.TreeHeight, s.IndexMB, s.ObjectFileMB)
}
