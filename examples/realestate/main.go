// Real estate: the paper's second motivating application — "real estate web
// sites allow users to search for properties with specific keywords in their
// description and rank them according to their distance from a specified
// location". This example runs an agency workflow: bulk-load the listings
// market, serve buyer searches, and keep the index current as properties
// sell and new ones come on.
//
//	go run ./examples/realestate
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"spatialkeyword"
)

var features = []string{
	"garage", "garden", "balcony", "fireplace", "hardwood", "renovated",
	"waterfront", "pool", "solar", "basement", "elevator", "duplex",
	"studio", "loft", "townhouse", "victorian", "newbuild",
}

func main() {
	rng := rand.New(rand.NewSource(7))
	eng, err := spatialkeyword.NewEngine(spatialkeyword.Config{SignatureBytes: 16})
	if err != nil {
		log.Fatal(err)
	}

	// Market snapshot: 3,000 listings across a metro area (coords in km).
	for i := 0; i < 3000; i++ {
		pt := []float64{rng.Float64() * 40, rng.Float64() * 40}
		n := 2 + rng.Intn(4)
		perm := rng.Perm(len(features))
		var fs []string
		for _, j := range perm[:n] {
			fs = append(fs, features[j])
		}
		desc := fmt.Sprintf("listing %d: %d bed %s", i, 1+rng.Intn(5), strings.Join(fs, " "))
		if _, err := eng.Add(pt, desc); err != nil {
			log.Fatal(err)
		}
	}

	// A buyer near the office (20, 20) wants a renovated place with a garden.
	office := []float64{20, 20}
	fmt.Println("— buyer search: renovated + garden, nearest 5 —")
	results, err := eng.TopK(5, office, "renovated", "garden")
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range results {
		fmt.Printf("%d. %-55s %.1f km\n", i+1, r.Object.Text, r.Dist)
	}
	if len(results) == 0 {
		log.Fatal("no matching listings")
	}

	// The closest one sells: remove it and show the next candidate surfacing.
	sold := results[0].Object.ID
	fmt.Printf("\nlisting #%d sold — removing from the index\n", sold)
	if err := eng.Delete(sold); err != nil {
		log.Fatal(err)
	}
	results2, err := eng.TopK(1, office, "renovated", "garden")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("new best: %s (%.1f km)\n", results2[0].Object.Text, results2[0].Dist)

	// A new exclusive hits the market right next to the office.
	id, err := eng.Add([]float64{20.1, 20.2}, "listing 9999: 3 bed renovated garden waterfront")
	if err != nil {
		log.Fatal(err)
	}
	results3, err := eng.TopK(1, office, "renovated", "garden")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter adding listing #%d:\nnew best: %s (%.1f km)\n",
		id, results3[0].Object.Text, results3[0].Dist)

	// A buyer with soft preferences uses the ranked query: waterfront OR
	// fireplace, relevance discounted by distance — a far waterfront duplex
	// can beat a near fireplace-only studio.
	fmt.Println("\n— ranked search: waterfront, fireplace (soft preferences) —")
	ranked, err := eng.TopKRanked(5, office, "waterfront", "fireplace")
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range ranked {
		fmt.Printf("%d. score %.4f (dist %.1f km, relevance %.2f)  %s\n",
			i+1, r.Score, r.Dist, r.IRScore, r.Object.Text)
	}

	s := eng.Stats()
	fmt.Printf("\nindex: %d live listings, height %d, %.2f MB\n", s.Objects, s.TreeHeight, s.IndexMB)
}
