// Yellow pages: the paper's motivating application. A city directory of
// businesses is indexed once; users then ask for the nearest businesses
// matching amenity keywords from wherever they are. The example also shows
// why the IR²-Tree matters: it contrasts the engine's work counters with a
// naive full scan.
//
//	go run ./examples/yellowpages
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"strings"
	"time"

	"spatialkeyword"
)

// business categories with their typical description vocabulary.
var categories = map[string][]string{
	"restaurant": {"pizza", "sushi", "burgers", "vegan", "delivery", "takeout", "patio", "bar"},
	"cafe":       {"espresso", "wifi", "pastries", "brunch", "roastery", "smoothies"},
	"gym":        {"weights", "yoga", "sauna", "pool", "classes", "trainer", "crossfit"},
	"hotel":      {"pool", "spa", "wifi", "parking", "breakfast", "pets", "concierge"},
	"repair":     {"phones", "laptops", "bikes", "watches", "sameday", "warranty"},
}

type listing struct {
	name string
	pt   []float64
	desc string
}

func main() {
	rng := rand.New(rand.NewSource(2008))

	// A synthetic city: a 20km × 20km grid with five dense districts.
	districts := [][2]float64{{3000, 3000}, {15000, 4000}, {9000, 10000}, {4000, 16000}, {16000, 15000}}
	var listings []listing
	names := []string{"Blue", "Golden", "Urban", "Little", "Royal", "Corner", "Central", "Old Town"}
	kinds := make([]string, 0, len(categories))
	for k := range categories {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for i := 0; i < 4000; i++ {
		d := districts[rng.Intn(len(districts))]
		pt := []float64{d[0] + rng.NormFloat64()*800, d[1] + rng.NormFloat64()*800}
		kind := kinds[rng.Intn(len(kinds))]
		words := categories[kind]
		n := 2 + rng.Intn(4)
		perm := rng.Perm(len(words))
		var amenities []string
		for _, j := range perm[:n] {
			amenities = append(amenities, words[j])
		}
		listings = append(listings, listing{
			name: fmt.Sprintf("%s %s #%d", names[rng.Intn(len(names))], kind, i),
			pt:   pt,
			desc: kind + " " + strings.Join(amenities, " "),
		})
	}

	eng, err := spatialkeyword.NewEngine(spatialkeyword.Config{SignatureBytes: 16})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for _, l := range listings {
		if _, err := eng.Add(l.pt, l.name+" "+l.desc); err != nil {
			log.Fatal(err)
		}
	}
	if err := eng.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d businesses in %v\n\n", len(listings), time.Since(start).Round(time.Millisecond))

	// A user at the corner of the third district searches the directory.
	user := []float64{9200, 9800}
	queries := [][]string{
		{"espresso", "wifi"},
		{"yoga", "sauna"},
		{"pizza", "delivery"},
		{"pets", "pool"},
	}
	for _, kw := range queries {
		results, stats, err := eng.TopKWithStats(3, user, kw...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("nearest with %v:\n", kw)
		for i, r := range results {
			fmt.Printf("  %d. %-36s %.0fm away\n", i+1, firstWords(r.Object.Text, 4), r.Dist)
		}
		// Work comparison: the engine vs scanning every listing.
		scanned := naiveCount(listings, kw)
		fmt.Printf("  engine loaded %d objects (%d false positives); a scan checks %d candidates\n\n",
			stats.ObjectsLoaded, stats.FalsePositives, scanned)
	}

	// Businesses close but opening/closing is routine: delete and re-query.
	top, err := eng.TopK(1, user, "espresso", "wifi")
	if err != nil || len(top) == 0 {
		log.Fatal("no cafe found")
	}
	fmt.Printf("closing %q...\n", firstWords(top[0].Object.Text, 4))
	if err := eng.Delete(top[0].Object.ID); err != nil {
		log.Fatal(err)
	}
	after, err := eng.TopK(1, user, "espresso", "wifi")
	if err != nil || len(after) == 0 {
		log.Fatal("no replacement found")
	}
	fmt.Printf("new nearest: %q at %.0fm\n", firstWords(after[0].Object.Text, 4), after[0].Dist)
}

// naiveCount mimics what a system without a combined index does: test every
// listing's text, then sort survivors by distance.
func naiveCount(ls []listing, kw []string) int {
	n := 0
	for _, l := range ls {
		all := true
		for _, w := range kw {
			if !strings.Contains(l.desc, w) {
				all = false
				break
			}
		}
		if all {
			n++
		}
	}
	return n
}

func firstWords(s string, n int) string {
	fields := strings.Fields(s)
	if len(fields) > n {
		fields = fields[:n]
	}
	return strings.Join(fields, " ")
}
