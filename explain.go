package spatialkeyword

import (
	"fmt"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/rtree"
)

// Explain answers a distance-first top-k query like TopK and additionally
// returns a human-readable trace of the traversal — the library's analogue
// of the paper's Example 1/3 walk-throughs. Each line is one step: nodes
// expanded in best-first order, entries enqueued with their distance lower
// bounds, subtrees pruned by the signature check, and objects emitted.
func (e *Engine) Explain(k int, point []float64, keywords ...string) ([]Result, []string, error) {
	if err := e.Flush(); err != nil {
		return nil, nil, err
	}
	if len(point) != e.dim {
		return nil, nil, fmt.Errorf("spatialkeyword: point has %d dimensions, engine uses %d", len(point), e.dim)
	}
	it := e.tree.Search(geo.NewPoint(point...), keywords)
	var trace []string
	it.SetTrace(func(ev rtree.TraceEvent) {
		switch ev.Kind {
		case rtree.TraceExpand:
			trace = append(trace, fmt.Sprintf("expand node %d (level %d, bound %.2f)", ev.Node, ev.Level, ev.Score))
		case rtree.TraceEnqueueNode:
			trace = append(trace, fmt.Sprintf("  enqueue subtree %d (dist >= %.2f)", ev.Child, ev.Score))
		case rtree.TraceEnqueueObject:
			trace = append(trace, fmt.Sprintf("  enqueue object %d (dist %.2f)", ev.Child, ev.Score))
		case rtree.TracePrune:
			what := "subtree"
			if ev.Level == 0 {
				what = "object"
			}
			trace = append(trace, fmt.Sprintf("  prune %s %d: signature mismatch", what, ev.Child))
		case rtree.TraceEmit:
			trace = append(trace, fmt.Sprintf("emit object %d (dist %.2f)", ev.Child, ev.Score))
		}
	})
	var out []Result
	for len(out) < k {
		r, ok, err := it.Next()
		if err != nil {
			return nil, trace, err
		}
		if !ok {
			break
		}
		if e.deleted[uint64(r.Object.ID)] {
			trace = append(trace, fmt.Sprintf("skip deleted object %d", r.Object.ID))
			continue
		}
		out = append(out, Result{
			Object: Object{ID: uint64(r.Object.ID), Point: r.Object.Point, Text: r.Object.Text},
			Dist:   r.Dist,
		})
	}
	st := it.Stats()
	trace = append(trace, fmt.Sprintf(
		"done: %d results, %d nodes expanded, %d objects loaded, %d false positives",
		len(out), st.NodesLoaded, st.ObjectsLoaded, st.FalsePositives))
	return out, trace, nil
}
