package spatialkeyword

import (
	"strings"
	"testing"
)

func TestExplain(t *testing.T) {
	e := newEngine(t, Config{SignatureBytes: 16})
	addFigure1(t, e)
	results, trace, err := e.Explain(2, []float64{30.5, 100.0}, "internet", "pool")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || !strings.Contains(results[0].Object.Text, "Hotel G") {
		t.Fatalf("results = %+v", results)
	}
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	joined := strings.Join(trace, "\n")
	for _, want := range []string{"expand node", "emit object", "done: 2 results"} {
		if !strings.Contains(joined, want) {
			t.Errorf("trace missing %q:\n%s", want, joined)
		}
	}
	// The Figure 1 query prunes (Example 3's narration).
	if !strings.Contains(joined, "prune") {
		t.Errorf("trace shows no pruning:\n%s", joined)
	}
	// The trace agrees with the results: exactly two emits.
	if strings.Count(joined, "emit object") != 2 {
		t.Errorf("emit count mismatch:\n%s", joined)
	}
}

func TestExplainSkipsDeleted(t *testing.T) {
	e := newEngine(t, Config{SignatureBytes: 16})
	addFigure1(t, e)
	if err := e.Delete(6); err != nil { // Hotel G
		t.Fatal(err)
	}
	results, trace, err := e.Explain(1, []float64{30.5, 100.0}, "internet", "pool")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !strings.Contains(results[0].Object.Text, "Hotel B") {
		t.Fatalf("results = %+v", results)
	}
	_ = trace
}

func TestExplainValidation(t *testing.T) {
	e := newEngine(t, Config{})
	if _, _, err := e.Explain(1, []float64{1}, "x"); err == nil {
		t.Error("1-d point accepted")
	}
}
