package spatialkeyword

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzPersistOpen mutates a committed engine directory — snapshots,
// per-generation manifest, and the commit manifest itself — and reopens it.
// The recovery contract under fuzz: OpenEngine either restores a readable,
// queryable engine or returns an error. It never panics, and (with
// checksums on) never serves a silently corrupted tree: any query against a
// successfully opened engine completes with results or a typed error.
func FuzzPersistOpen(f *testing.F) {
	f.Add(uint32(0), uint32(0), []byte{0x00})                // no-op patch: clean reopen
	f.Add(uint32(0), uint32(12), []byte{0xff})               // torn commit manifest
	f.Add(uint32(1), uint32(40), []byte("garbage"))          // generation manifest
	f.Add(uint32(2), uint32(700), []byte{0x80})              // object snapshot bit flip
	f.Add(uint32(3), uint32(5000), []byte{0x01, 0x02, 0x04}) // index snapshot
	f.Fuzz(func(t *testing.T, sel, off uint32, patch []byte) {
		if len(patch) > 256 {
			t.Skip("patch larger than interesting")
		}
		dir := t.TempDir()
		eng, err := NewDurableEngine(Config{SignatureBytes: 8, Checksums: true}, dir)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if _, err := eng.Add([]float64{float64(i), float64(5 - i)}, fmt.Sprintf("object %d word", i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Save(); err != nil {
			t.Fatal(err)
		}
		gen := eng.Generation()
		if err := eng.Close(); err != nil {
			t.Fatal(err)
		}

		targets := []string{
			manifestName,
			genManifestName(gen),
			genObjectsName(gen),
			genIndexName(gen),
		}
		path := filepath.Join(dir, targets[int(sel)%len(targets)])
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		changed := false
		if len(data) > 0 {
			for i, b := range patch {
				if b == 0 {
					continue
				}
				data[(int(off)+i)%len(data)] ^= b
				changed = true
			}
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		reopened, err := OpenEngine(dir)
		if err != nil {
			return // typed rejection of a damaged directory is a correct outcome
		}
		defer reopened.Close()
		// The engine opened: it must be serviceable. Queries may surface a
		// typed corruption error (checksums catch snapshot damage lazily)
		// but must never panic or hang.
		res, err := reopened.TopK(6, []float64{2, 2}, "word")
		if err == nil && !changed && len(res) != 6 {
			t.Fatalf("clean reopen lost objects: %d of 6", len(res))
		}
		reopened.Stats()
		_ = reopened.Scan(func(Object) error { return nil })
	})
}
