package spatialkeyword

import (
	"testing"
)

// TestGetFlushedDoesNoWriteIO is the regression test for Get's flush
// behavior: reading an object that is already flushed must not trigger a
// flush — zero write I/O on either device — even while other objects are
// pending. Only a Get that could hit the unflushed range may flush.
func TestGetFlushedDoesNoWriteIO(t *testing.T) {
	eng, err := NewEngine(Config{SignatureBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := eng.Add([]float64{float64(i), 0}, "flushed poi"); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Flush(); err != nil {
		t.Fatal(err)
	}
	// Two pending objects that Get on a flushed ID must not disturb.
	var pendingID uint64
	for i := 0; i < 2; i++ {
		id, err := eng.Add([]float64{10, float64(i)}, "pending poi")
		if err != nil {
			t.Fatal(err)
		}
		pendingID = id
	}

	objBefore, idxBefore := eng.objDisk.Stats(), eng.idxDisk.Stats()
	got, err := eng.Get(0)
	if err != nil {
		t.Fatalf("get flushed id: %v", err)
	}
	if got.Text != "flushed poi" {
		t.Fatalf("got %q", got.Text)
	}
	objW := eng.objDisk.Stats().Sub(objBefore).Writes()
	idxW := eng.idxDisk.Stats().Sub(idxBefore).Writes()
	if objW != 0 || idxW != 0 {
		t.Fatalf("Get on a flushed id performed write I/O: %d object writes, %d index writes", objW, idxW)
	}
	if len(eng.pending) != 2 {
		t.Fatalf("Get on a flushed id flushed the buffer: %d pending, want 2", len(eng.pending))
	}

	// Get inside the pending range still flushes and succeeds.
	got, err = eng.Get(pendingID)
	if err != nil {
		t.Fatalf("get pending id: %v", err)
	}
	if got.Text != "pending poi" {
		t.Fatalf("got %q", got.Text)
	}
	if len(eng.pending) != 0 {
		t.Fatalf("Get on a pending id left %d pending", len(eng.pending))
	}
}
