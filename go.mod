module spatialkeyword

go 1.22
