// Package analysis is the skvet static-analysis framework: a
// self-contained analyzer driver built only on the standard library's
// go/parser, go/ast, go/types, and go/importer (no golang.org/x/tools
// dependency, preserving the module's stdlib-only rule).
//
// The suite enforces correctness invariants that earlier PRs introduced
// by convention and that no compiler checks:
//
//	erroprov     storage-device errors must propagate, never be discarded
//	lockio       no device I/O while holding a mutex in shard/core hot paths
//	determinism  no wall clock, global rand, or map-order output in the
//	             modeled disk-time (cost model / bench) paths
//	nopanic      no panic in library packages (cmd/ and tests may)
//	obsreg       one obs metric family, one meaning, canonical label order
//	hotalloc     //skvet:hotpath functions stay free of heap escapes and
//	             non-inlined leaf calls (go build -gcflags=-m=2 gate)
//	lockorder    the whole-program lock-acquisition graph stays acyclic
//	goroleak     every go statement has a provable termination path
//
// Each pass walks typechecked packages (see Loader) and reports
// file:line:col diagnostics. A finding can be suppressed with an ignore
// directive on the same line or the line directly above:
//
//	//skvet:ignore pass1,pass2 reason for the exception
//
// Unknown pass names in a directive are themselves reported (as pass
// "skvet"), so stale or misspelled suppressions cannot rot silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one finding: a position, the pass that produced it, and a
// human-readable message.
type Diagnostic struct {
	Pass    string
	Pos     token.Position
	Message string
}

// String renders the diagnostic as "file:line:col: [pass] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Pass, d.Message)
}

// Package is one parsed and typechecked package under analysis.
type Package struct {
	Path  string // import path, e.g. "spatialkeyword/internal/shard"
	Dir   string // directory the files were read from
	Name  string // package name from the package clause
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is the full set of packages a suite run analyzes. Passes see
// every package at once, so cross-package invariants (such as obsreg's
// one-family-one-meaning rule) can be checked globally.
type Program struct {
	Fset *token.FileSet
	Pkgs []*Package
}

// Pass is one analyzer. Run receives the whole program and returns raw
// diagnostics; ignore-directive filtering happens in Run (the function).
type Pass interface {
	// Name is the short identifier used in output and ignore directives.
	Name() string
	// Doc is a one-line description of the invariant the pass enforces.
	Doc() string
	// Run analyzes the program.
	Run(prog *Program) []Diagnostic
}

// AllPasses returns the full suite in stable order.
func AllPasses() []Pass {
	return []Pass{
		erroProv{},
		lockIO{},
		determinism{},
		noPanic{},
		obsReg{},
		hotAlloc{},
		lockOrder{},
		goroLeak{},
	}
}

// Run executes the passes over the program, filters findings suppressed
// by ignore directives, appends diagnostics for malformed directives, and
// returns everything sorted by position then pass name.
func Run(prog *Program, passes []Pass) []Diagnostic {
	known := make(map[string]bool)
	for _, p := range AllPasses() {
		known[p.Name()] = true
	}
	idx, dirDiags := buildIgnoreIndex(prog, known)

	var out []Diagnostic
	for _, p := range passes {
		for _, d := range p.Run(prog) {
			if idx.suppressed(p.Name(), d.Pos) {
				continue
			}
			out = append(out, d)
		}
	}
	out = append(out, dirDiags...)

	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Pass < b.Pass
	})
	return out
}
