package analysis

import (
	"errors"
	"go/token"
	"strings"
	"testing"
)

func TestPathHasSegments(t *testing.T) {
	tests := []struct {
		path, want string
		match      bool
	}{
		{"spatialkeyword/internal/storage", "internal/storage", true},
		{"fixture/determinism/internal/storage", "internal/storage", true},
		{"spatialkeyword/internal/storagex", "internal/storage", false},
		{"spatialkeyword/xinternal/storage", "internal/storage", false},
		{"internal/storage", "internal/storage", true},
		{"spatialkeyword/internal/shard", "internal/core", false},
	}
	for _, tt := range tests {
		if got := pathHasSegments(tt.path, tt.want); got != tt.match {
			t.Errorf("pathHasSegments(%q, %q) = %v, want %v", tt.path, tt.want, got, tt.match)
		}
	}
}

func TestAllPassesWellFormed(t *testing.T) {
	seen := make(map[string]bool)
	for _, p := range AllPasses() {
		name := p.Name()
		if name == "" || p.Doc() == "" {
			t.Errorf("pass %T needs a non-empty name and doc", p)
		}
		if seen[name] {
			t.Errorf("duplicate pass name %q", name)
		}
		if name != strings.ToLower(name) || strings.ContainsAny(name, " ,") {
			t.Errorf("pass name %q must be lowercase with no spaces or commas", name)
		}
		seen[name] = true
	}
	if len(seen) != 8 {
		t.Errorf("expected the 8 documented passes, got %d", len(seen))
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{
		Pass:    "nopanic",
		Pos:     token.Position{Filename: "a/b.go", Line: 3, Column: 7},
		Message: "boom",
	}
	if got, want := d.String(), "a/b.go:3:7: [nopanic] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestLoaderOutsideModule(t *testing.T) {
	l := NewLoader(token.NewFileSet())
	l.AddModule("fixture", t.TempDir())
	if _, err := l.Load("elsewhere/pkg"); err == nil {
		t.Fatal("expected error loading a path outside every registered module")
	}
}

func TestLoaderNoGoFiles(t *testing.T) {
	l := NewLoader(token.NewFileSet())
	l.AddModule("fixture", t.TempDir())
	_, err := l.Load("fixture")
	if !errors.Is(err, ErrNoGoFiles) {
		t.Fatalf("expected ErrNoGoFiles, got %v", err)
	}
}

func TestLoaderMemoizes(t *testing.T) {
	fset := token.NewFileSet()
	l := NewLoader(fset)
	l.AddModule("spatialkeyword", repoRoot(t))
	a, err := l.Load("spatialkeyword/internal/geo")
	if err != nil {
		t.Fatal(err)
	}
	b, err := l.Load("spatialkeyword/internal/geo")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("Load should memoize packages per loader")
	}
}

// TestDirectivesListing checks the -ignores audit data source: every
// directive in the ignore fixture comes back parsed, in position order,
// including malformed ones (the audit shows them; the suite flags them).
func TestDirectivesListing(t *testing.T) {
	prog := loadFixtures(t, "ignore")
	dirs := Directives(prog)
	if len(dirs) < 6 {
		t.Fatalf("got %d directives, want at least 6: %+v", len(dirs), dirs)
	}
	for i := 1; i < len(dirs); i++ {
		a, b := dirs[i-1].Pos, dirs[i].Pos
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Errorf("directives out of order: %s before %s", a, b)
		}
	}
	var sawV2, sawEmpty bool
	for _, d := range dirs {
		if len(d.Passes) == 3 && d.Passes[0] == "hotalloc" && d.Passes[1] == "lockorder" && d.Passes[2] == "goroleak" {
			sawV2 = true
			if d.Reason != "suppresses nothing here, but parses" {
				t.Errorf("v2 directive reason = %q", d.Reason)
			}
		}
		if len(d.Passes) == 0 {
			sawEmpty = true
		}
	}
	if !sawV2 {
		t.Error("missing the hotalloc,lockorder,goroleak directive")
	}
	if !sawEmpty {
		t.Error("missing the malformed (no pass list) directive")
	}
}

// TestRunSortsDiagnostics checks the deterministic output ordering the
// CI gate and golden tests rely on.
func TestRunSortsDiagnostics(t *testing.T) {
	prog := loadFixtures(t, "nopanic")
	diags := Run(prog, AllPasses())
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Filename > b.Pos.Filename ||
			(a.Pos.Filename == b.Pos.Filename && a.Pos.Line > b.Pos.Line) {
			t.Errorf("diagnostics out of order: %s before %s", a, b)
		}
	}
}
