package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// determinism guards the paper's §5/§6 evaluation metric: modeled disk
// time is a pure function of seeded block-access counts and the cost
// model, exact across hosts. The benchmark-regression gate (PR 2)
// compares it against a committed baseline, so any wall-clock or
// unseeded-randomness leak into internal/storage's cost model,
// internal/bench, or internal/skql (whose planner estimates and
// EXPLAIN reports must replay exactly) turns an exact comparison into
// a flaky one, and map iteration order leaking into emitted output
// breaks byte-for-byte reproducibility of reports.
//
// Forbidden in those packages (outside tests):
//
//   - time.Now / time.Since / time.Until — host wall clock
//   - package-level math/rand functions — process-global, unseeded
//     source (rand.New(rand.NewSource(seed)) values are fine)
//   - ranging over a map when the loop body emits output (fmt printing
//     or Write* methods) — iteration order is randomized per run; pure
//     aggregation loops (sums, collecting keys to sort) are fine
type determinism struct{}

func (determinism) Name() string { return "determinism" }

func (determinism) Doc() string {
	return "no wall clock, global rand, or map-order-dependent output in modeled disk-time code"
}

// wallClockFuncs are the time package functions that read the host clock.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// randConstructors build explicitly seeded generators and are allowed.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true}

func (determinism) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !pathHasSegments(pkg.Path, "internal/storage") && !pathHasSegments(pkg.Path, "internal/bench") &&
			!pathHasSegments(pkg.Path, "internal/nodecache") && !pathHasSegments(pkg.Path, "internal/skql") {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if d, ok := checkDeterminismCall(prog, pkg, n); ok {
						diags = append(diags, d)
					}
				case *ast.RangeStmt:
					tv, ok := pkg.Info.Types[n.X]
					if !ok || tv.Type == nil {
						return true
					}
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap && emitsOutput(pkg.Info, n.Body) {
						diags = append(diags, Diagnostic{
							Pass: "determinism",
							Pos:  prog.Fset.Position(n.Pos()),
							Message: "map iteration order is randomized per run and this loop emits output; " +
								"sort the keys first so reports are reproducible",
						})
					}
				}
				return true
			})
		}
	}
	return diags
}

// emitsOutput reports whether the loop body writes somewhere a reader
// will see ordering: fmt printing/formatting calls or Write* methods.
// Aggregation-only bodies (sums, appends of keys later sorted) pass.
func emitsOutput(info *types.Info, body *ast.BlockStmt) bool {
	emits := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			emits = true
			return false
		}
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
			strings.HasPrefix(fn.Name(), "Write") {
			emits = true
			return false
		}
		return true
	})
	return emits
}

func checkDeterminismCall(prog *Program, pkg *Package, call *ast.CallExpr) (Diagnostic, bool) {
	fn := calleeFunc(pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return Diagnostic{}, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		// Methods on rand.Rand / time.Time values are fine: the caller
		// controls the source.
		return Diagnostic{}, false
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			return Diagnostic{
				Pass: "determinism",
				Pos:  prog.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("time.%s reads the host wall clock; modeled disk time must be a pure "+
					"function of block counts and the cost model", fn.Name()),
			}, true
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return Diagnostic{
				Pass: "determinism",
				Pos:  prog.Fset.Position(call.Pos()),
				Message: fmt.Sprintf("global rand.%s uses the process-wide unseeded source; use "+
					"rand.New(rand.NewSource(seed)) so runs replay exactly", fn.Name()),
			}, true
		}
	}
	return Diagnostic{}, false
}
