package analysis

import (
	"fmt"
	"go/ast"
)

// erroProv enforces typed error provenance on the storage layer: every
// call into internal/storage that returns an error must propagate or
// wrap that error. Discarding it — assigning to _, using the call as a
// bare statement, or launching it via go/defer with no result — hides
// exactly the FaultError/CorruptBlockError provenance PR 3 threaded
// through the read paths.
type erroProv struct{}

func (erroProv) Name() string { return "erroprov" }

func (erroProv) Doc() string {
	return "errors returned by internal/storage calls must propagate or be wrapped, never discarded"
}

func (erroProv) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					diags = append(diags, checkAssign(prog, pkg, n)...)
				case *ast.ValueSpec:
					diags = append(diags, checkValueSpec(prog, pkg, n)...)
				case *ast.ExprStmt:
					if call, ok := n.X.(*ast.CallExpr); ok {
						diags = append(diags, checkDiscardedCall(prog, pkg, call, "call used as a statement")...)
					}
				case *ast.GoStmt:
					diags = append(diags, checkDiscardedCall(prog, pkg, n.Call, "go statement")...)
				case *ast.DeferStmt:
					diags = append(diags, checkDiscardedCall(prog, pkg, n.Call, "defer statement")...)
				}
				return true
			})
		}
	}
	return diags
}

// storageErrCall returns the called storage function and the indexes of
// its error results, or ("", nil) when the call is not a storage call
// that returns an error.
func storageErrCall(pkg *Package, call *ast.CallExpr) (string, []int) {
	fn := calleeFunc(pkg.Info, call)
	if !fromStoragePkg(fn) {
		return "", nil
	}
	idxs := errorResultIndexes(fn)
	if len(idxs) == 0 {
		return "", nil
	}
	return fn.Name(), idxs
}

// checkDiscardedCall flags a storage error-returning call whose results
// are discarded wholesale (statement position, go, defer).
func checkDiscardedCall(prog *Program, pkg *Package, call *ast.CallExpr, how string) []Diagnostic {
	name, idxs := storageErrCall(pkg, call)
	if len(idxs) == 0 {
		return nil
	}
	return []Diagnostic{{
		Pass: "erroprov",
		Pos:  prog.Fset.Position(call.Pos()),
		Message: fmt.Sprintf("error from storage.%s discarded (%s); propagate or wrap it to keep fault provenance",
			name, how),
	}}
}

// checkAssign flags `_` in the error position of a storage call's
// results, for both x, _ := dev.Read(id) and _ = dev.Write(id, b).
func checkAssign(prog *Program, pkg *Package, n *ast.AssignStmt) []Diagnostic {
	if len(n.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	name, idxs := storageErrCall(pkg, call)
	if len(idxs) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, i := range idxs {
		if i >= len(n.Lhs) {
			continue
		}
		if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			diags = append(diags, Diagnostic{
				Pass: "erroprov",
				Pos:  prog.Fset.Position(id.Pos()),
				Message: fmt.Sprintf("error from storage.%s assigned to _; propagate or wrap it to keep fault provenance",
					name),
			})
		}
	}
	return diags
}

// checkValueSpec flags var _ = dev.Write(...) declarations.
func checkValueSpec(prog *Program, pkg *Package, n *ast.ValueSpec) []Diagnostic {
	if len(n.Values) != 1 {
		return nil
	}
	call, ok := ast.Unparen(n.Values[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	name, idxs := storageErrCall(pkg, call)
	if len(idxs) == 0 {
		return nil
	}
	var diags []Diagnostic
	for _, i := range idxs {
		if i >= len(n.Names) {
			continue
		}
		if n.Names[i].Name == "_" {
			diags = append(diags, Diagnostic{
				Pass: "erroprov",
				Pos:  prog.Fset.Position(n.Names[i].Pos()),
				Message: fmt.Sprintf("error from storage.%s assigned to _; propagate or wrap it to keep fault provenance",
					name),
			})
		}
	}
	return diags
}
