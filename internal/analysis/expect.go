package analysis

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// expectation is one // want "regexp" annotation in a fixture file.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// wantRE pulls the quoted patterns out of a want comment. Patterns are
// Go-quoted strings (double quotes or backquotes), several per comment
// allowed: // want "first" `second`.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// CheckExpectations compares diagnostics against the // want "regexp"
// comments in the program's files, in the style of x/tools' analysistest
// but self-contained. Every diagnostic must match an expectation on its
// exact file and line, and every expectation must be consumed; each
// violation comes back as one error.
func CheckExpectations(fset *token.FileSet, pkgs []*Package, diags []Diagnostic) []error {
	var expects []*expectation
	var errs []error
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					idx := strings.Index(text, "want ")
					if idx < 0 {
						continue
					}
					pos := fset.Position(c.Pos())
					for _, quoted := range wantRE.FindAllString(text[idx+len("want "):], -1) {
						pat, err := strconv.Unquote(quoted)
						if err != nil {
							errs = append(errs, fmt.Errorf("%s: bad want pattern %s: %v", pos, quoted, err))
							continue
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							errs = append(errs, fmt.Errorf("%s: bad want regexp %q: %v", pos, pat, err))
							continue
						}
						expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
					}
				}
			}
		}
	}

	for _, d := range diags {
		found := false
		for _, e := range expects {
			if e.matched || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.pattern.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			errs = append(errs, fmt.Errorf("unexpected diagnostic %s", d))
		}
	}
	for _, e := range expects {
		if !e.matched {
			errs = append(errs, fmt.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.pattern))
		}
	}
	sort.Slice(errs, func(i, j int) bool { return errs[i].Error() < errs[j].Error() })
	return errs
}
