package analysis

import (
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"testing"
)

// repoRoot locates the module root (two levels up from this package).
func repoRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

// loadFixtures loads every package under testdata/src/<sub> as module
// "fixture", with the real repo registered so fixtures can import
// spatialkeyword/internal/... packages.
func loadFixtures(t *testing.T, sub string) *Program {
	t.Helper()
	fset := token.NewFileSet()
	l := NewLoader(fset)
	src, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	l.AddModule("fixture", src)
	l.AddModule("spatialkeyword", repoRoot(t))

	var pkgs []*Package
	root := filepath.Join(src, sub)
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		names, err := buildableGoFiles(path)
		if err != nil || len(names) == 0 {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		pkg, err := l.Load("fixture/" + filepath.ToSlash(rel))
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		t.Fatalf("loading fixtures under %s: %v", sub, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages under %s", root)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return &Program{Fset: fset, Pkgs: pkgs}
}

// testGolden runs the given passes over a fixture tree and matches the
// diagnostics against the tree's // want annotations.
func testGolden(t *testing.T, sub string, passes []Pass) {
	t.Helper()
	prog := loadFixtures(t, sub)
	diags := Run(prog, passes)
	for _, err := range CheckExpectations(prog.Fset, prog.Pkgs, diags) {
		t.Error(err)
	}
}

func TestErroProvGolden(t *testing.T)    { testGolden(t, "erroprov", []Pass{erroProv{}}) }
func TestLockIOGolden(t *testing.T)      { testGolden(t, "lockio", []Pass{lockIO{}}) }
func TestDeterminismGolden(t *testing.T) { testGolden(t, "determinism", []Pass{determinism{}}) }
func TestNoPanicGolden(t *testing.T)     { testGolden(t, "nopanic", []Pass{noPanic{}}) }
func TestObsRegGolden(t *testing.T)      { testGolden(t, "obsreg", []Pass{obsReg{}}) }
func TestLockOrderGolden(t *testing.T)   { testGolden(t, "lockorder", []Pass{lockOrder{}}) }
func TestGoroLeakGolden(t *testing.T)    { testGolden(t, "goroleak", []Pass{goroLeak{}}) }

// TestIgnoreGolden exercises the suppression directive: same-line and
// line-above ignores silence nopanic, unknown passes are reported.
func TestIgnoreGolden(t *testing.T) { testGolden(t, "ignore", []Pass{noPanic{}}) }

// TestFullSuiteOnFixtures runs every pass at once over every fixture
// tree to make sure passes stay scoped: the only extra diagnostics the
// full suite may add over the per-pass golden runs are the ones the
// fixtures annotate, so each tree still matches its own expectations
// when filtered by the pass that owns it.
func TestSuiteScoping(t *testing.T) {
	prog := loadFixtures(t, "lockio")
	diags := Run(prog, []Pass{determinism{}, noPanic{}})
	for _, d := range diags {
		t.Errorf("out-of-scope diagnostic on lockio fixtures: %s", d)
	}
}
