package analysis

import (
	"go/ast"
	"go/types"
)

// goroLeak requires every `go` statement to have a provable termination
// path. The repo's always-on subsystems — fence subscription fan-out,
// repl's long-poll tail loops, the sharded fan-out workers, skserve's
// server goroutine — all follow one of a small set of structured
// shutdown idioms, and this pass makes the idioms mandatory: a goroutine
// with none of them outlives its spawner silently, which is how servers
// accumulate leaked tails until the next OOM.
//
// A spawned body is accepted when it exhibits at least one of:
//
//   - WaitGroup join: the body calls Done() on a sync.WaitGroup
//     (typically deferred), so some joiner observes its exit.
//   - Context cancellation: the body calls Done() or Err() on a
//     context.Context, giving it a cancellation signal to select on.
//   - Done-channel receive: the body receives from a `chan struct{}` —
//     the signal-channel convention — so closing the channel releases it.
//   - Range over a channel: `for range ch` terminates when the producer
//     closes ch.
//   - Loop-free body: with no for/range statement anywhere in the body,
//     the goroutine terminates as soon as its calls return (the
//     `go func() { errc <- srv.ListenAndServe() }()` idiom).
//
// The spawned function is resolved statically: a function literal, a
// named function or method declared in the analyzed program, or a local
// variable assigned a function literal in the enclosing body. A `go`
// statement whose target cannot be resolved is itself a finding — an
// unreviewable goroutine is treated like an unprovable one. (Termination
// here means "has a shutdown path", not a totality proof: a body that
// selects on ctx.Done() but ignores it would still pass. The pass
// enforces the idiom, tests enforce the behavior.)
type goroLeak struct{}

func (goroLeak) Name() string { return "goroleak" }

func (goroLeak) Doc() string {
	return "every go statement needs a provable termination path: WaitGroup join, context cancellation, done-channel receive, range-over-channel, or a loop-free body"
}

func (goroLeak) Run(prog *Program) []Diagnostic {
	declIdx := buildFuncDeclIndex(prog)
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					g, ok := n.(*ast.GoStmt)
					if !ok {
						return true
					}
					diags = append(diags, checkGoStmt(prog, pkg, fd, g, declIdx)...)
					return true
				})
			}
		}
	}
	return diags
}

// checkGoStmt resolves the spawned body and verifies a termination path.
func checkGoStmt(prog *Program, pkg *Package, enclosing *ast.FuncDecl, g *ast.GoStmt, declIdx map[*types.Func]funcDeclRef) []Diagnostic {
	pos := prog.Fset.Position(g.Pos())
	body, bodyPkg := resolveSpawnedBody(pkg, enclosing, g.Call, declIdx)
	if body == nil {
		return []Diagnostic{{
			Pass: "goroleak", Pos: pos,
			Message: "go statement spawns a dynamically-resolved function; termination cannot be proven — spawn a function literal or a named function with a shutdown path",
		}}
	}
	if reason := terminationPath(bodyPkg, body); reason != "" {
		return nil
	}
	return []Diagnostic{{
		Pass: "goroleak", Pos: pos,
		Message: "goroutine has no provable termination path: add a WaitGroup join, a context.Done/Err check, a chan struct{} done-channel receive, or keep the body loop-free",
	}}
}

// resolveSpawnedBody finds the body the go statement runs: a literal, a
// declared function/method, or a local variable holding a literal.
func resolveSpawnedBody(pkg *Package, enclosing *ast.FuncDecl, call *ast.CallExpr, declIdx map[*types.Func]funcDeclRef) (*ast.BlockStmt, *Package) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, pkg
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if ref, declared := declIdx[fn]; declared {
				return ref.decl.Body, ref.pkg
			}
			return nil, nil
		}
		// A local function value: accept the common `name := func(...)`
		// / `var name = func(...)` / `name = func(...)` forms within the
		// enclosing declaration.
		if v, ok := pkg.Info.Uses[fun].(*types.Var); ok {
			if lit := localFuncLit(pkg, enclosing, v); lit != nil {
				return lit.Body, pkg
			}
		}
		return nil, nil
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if ref, declared := declIdx[fn]; declared {
				return ref.decl.Body, ref.pkg
			}
		}
		return nil, nil
	}
	return nil, nil
}

// localFuncLit scans the enclosing function for the single assignment of
// a function literal to v. Multiple assignments (a rebindable function
// variable) resolve to nil — that is a dynamic call.
func localFuncLit(pkg *Package, enclosing *ast.FuncDecl, v *types.Var) *ast.FuncLit {
	var lit *ast.FuncLit
	count := 0
	record := func(target *ast.Ident, rhs ast.Expr) {
		if pkg.Info.Defs[target] != v && pkg.Info.Uses[target] != v {
			return
		}
		count++
		if fl, ok := ast.Unparen(rhs).(*ast.FuncLit); ok {
			lit = fl
		} else {
			lit = nil
		}
	}
	ast.Inspect(enclosing.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					record(name, n.Values[i])
				}
			}
		}
		return true
	})
	if count != 1 {
		return nil
	}
	return lit
}

// terminationPath reports the first shutdown idiom found in the body, or
// "" when none is present.
func terminationPath(pkg *Package, body *ast.BlockStmt) string {
	hasLoop := false
	idiom := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if idiom != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			hasLoop = true
		case *ast.RangeStmt:
			hasLoop = true
			if tv, ok := pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					idiom = "range over channel"
					return false
				}
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				if isStructDoneChan(pkg, n.X) {
					idiom = "done-channel receive"
					return false
				}
			}
		case *ast.CallExpr:
			if name, ok := terminationCall(pkg.Info, n); ok {
				idiom = name
				return false
			}
		}
		return true
	})
	if idiom != "" {
		return idiom
	}
	if !hasLoop {
		return "loop-free body"
	}
	return ""
}

// isStructDoneChan reports whether expr is a channel of struct{} — the
// signal-channel convention for shutdown.
func isStructDoneChan(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// terminationCall recognizes Done() on sync.WaitGroup and Done()/Err() on
// context.Context.
func terminationCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if name != "Done" && name != "Err" {
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", false
	}
	switch {
	case obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" && name == "Done":
		return "WaitGroup join", true
	case obj.Pkg().Path() == "context" && obj.Name() == "Context":
		return "context cancellation", true
	}
	return "", false
}
