package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathHasSegments reports whether the slash-separated import path
// contains want ("internal/storage", say) as a run of whole segments, so
// "x/internal/storagex" does not match "internal/storage".
func pathHasSegments(path, want string) bool {
	ps := strings.Split(path, "/")
	ws := strings.Split(want, "/")
	for i := 0; i+len(ws) <= len(ps); i++ {
		match := true
		for j := range ws {
			if ps[i+j] != ws[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// calleeFunc resolves the function or method a call statically invokes,
// or nil for calls through function values and other dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// fromStoragePkg reports whether fn is declared in the module's
// internal/storage package (the device layer).
func fromStoragePkg(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && pathHasSegments(fn.Pkg().Path(), "internal/storage")
}

// errorResultIndexes returns the result indexes of fn with type error.
func errorResultIndexes(fn *types.Func) []int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	var idxs []int
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			idxs = append(idxs, i)
		}
	}
	return idxs
}

// funcBodies yields every function body in the file — declarations and
// function literals — each exactly once, paired with a printable name.
// Literals are reported separately from their enclosing function because
// they run in their own dynamic context (goroutines, deferred cleanups).
func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				out = append(out, funcBody{name: n.Name.Name, body: n.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{name: "func literal", body: n.Body})
		}
		return true
	})
	return out
}

type funcBody struct {
	name string
	body *ast.BlockStmt
}
