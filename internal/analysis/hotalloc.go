package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// hotAlloc turns PR 8's runtime AllocsPerRun gates into compile-time
// diagnostics. A function annotated with
//
//	//skvet:hotpath
//
// in its doc comment declares itself part of the zero-allocation read hot
// path (packed R-Tree traversal, Sig64 kernels, objstore.GetFiltered, the
// textutil byte kernels, the core iterators). For every annotated
// function the pass shells out to `go build -gcflags=-m=2` — os/exec is
// stdlib, so the module's no-x/tools rule holds — parses the compiler's
// escape-analysis and inlining diagnostics, and reports:
//
//   - any heap escape inside the function, naming the escaping value and
//     the compiler's flow reason. Escapes on statements that return a
//     non-nil error are exempt: error construction is the cold path by
//     construction, and hoisting it out of the function would only move
//     the boxing, not remove it. The warm loop must stay clean.
//   - any call to a module-internal *leaf* function (one whose body
//     performs no calls of its own) that the compiler did not inline. A
//     leaf that outgrows the inlining budget re-introduces call overhead
//     on every node visit, which is exactly the regression the packed
//     layout exists to avoid.
//
// The build inherits the environment (GOFLAGS, GOCACHE, GOTOOLCHAIN), so
// a CI run that has already compiled the tree replays the cached
// diagnostics instead of recompiling cold. Unknown diagnostic lines are
// ignored (see m2parse.go), keeping the pass tolerant of compiler
// version skew.
type hotAlloc struct{}

func (hotAlloc) Name() string { return "hotalloc" }

func (hotAlloc) Doc() string {
	return "//skvet:hotpath functions must be free of heap escapes and non-inlined leaf calls (gated on go build -gcflags=-m=2)"
}

// hotpathMarker is the annotation, written as //skvet:hotpath in the
// function's doc comment.
const hotpathMarker = "skvet:hotpath"

// hotpathFunc is one annotated function.
type hotpathFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
	name string
	file string
	// start/end are the line span of the declaration.
	start, end int
}

func (hotAlloc) Run(prog *Program) []Diagnostic {
	funcs := hotpathFuncs(prog)
	if len(funcs) == 0 {
		return nil
	}

	var diags []Diagnostic

	// Group the packages that contain annotations by module root so one
	// build covers each module.
	type buildGroup struct {
		root string
		dirs map[string]bool
	}
	groups := make(map[string]*buildGroup)
	for _, hf := range funcs {
		if hf.pkg.Name == "main" {
			diags = append(diags, Diagnostic{
				Pass: "hotalloc", Pos: prog.Fset.Position(hf.decl.Pos()),
				Message: fmt.Sprintf("//skvet:hotpath on %s: main packages are not gated (go build would emit a binary); move the hot code into a library package", hf.name),
			})
			continue
		}
		root, err := findGoModRoot(hf.pkg.Dir)
		if err != nil {
			diags = append(diags, Diagnostic{
				Pass: "hotalloc", Pos: prog.Fset.Position(hf.decl.Pos()),
				Message: fmt.Sprintf("//skvet:hotpath on %s: %v", hf.name, err),
			})
			continue
		}
		g := groups[root]
		if g == nil {
			g = &buildGroup{root: root, dirs: make(map[string]bool)}
			groups[root] = g
		}
		g.dirs[hf.pkg.Dir] = true
	}

	var facts []m2Fact
	var roots []string
	for root := range groups {
		roots = append(roots, root)
	}
	sort.Strings(roots)
	for _, root := range roots {
		g := groups[root]
		var pats []string
		for dir := range g.dirs {
			rel, err := filepath.Rel(root, dir)
			if err != nil {
				continue
			}
			pats = append(pats, "./"+filepath.ToSlash(rel))
		}
		sort.Strings(pats)
		out, err := runEscapeBuild(root, pats)
		if err != nil {
			diags = append(diags, Diagnostic{
				Pass:    "hotalloc",
				Pos:     token.Position{Filename: filepath.Join(root, "go.mod"), Line: 1, Column: 1},
				Message: fmt.Sprintf("go build -gcflags=-m=2 %s failed: %v", strings.Join(pats, " "), err),
			})
			continue
		}
		facts = append(facts, parseM2Output(out, root)...)
	}

	idx := indexM2Facts(facts)
	declIdx := buildFuncDeclIndex(prog)
	for _, hf := range funcs {
		if hf.pkg.Name == "main" {
			continue
		}
		diags = append(diags, gateEscapes(prog, hf, idx)...)
		diags = append(diags, gateLeafCalls(prog, hf, idx, declIdx)...)
	}
	return diags
}

// runEscapeBuild compiles the given package dirs (relative to root) with
// escape/inlining diagnostics on and returns the combined output. The
// environment is inherited so GOFLAGS/GOCACHE apply and warm build caches
// replay the stored diagnostics.
func runEscapeBuild(root string, pats []string) (string, error) {
	args := append([]string{"build", "-gcflags=-m=2"}, pats...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	cmd.Env = os.Environ()
	out, err := cmd.CombinedOutput()
	if err != nil {
		// Compile errors mean no facts; surface the tail of the output.
		tail := string(out)
		if len(tail) > 500 {
			tail = "..." + tail[len(tail)-500:]
		}
		return "", fmt.Errorf("%v: %s", err, strings.TrimSpace(tail))
	}
	return string(out), nil
}

// findGoModRoot walks up from dir to the nearest go.mod.
func findGoModRoot(dir string) (string, error) {
	d := dir
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		d = parent
	}
}

// hotpathFuncs collects every //skvet:hotpath-annotated declaration. The
// marker must appear in the function's doc comment (the comment group
// directly above the declaration).
func hotpathFuncs(prog *Program) []hotpathFunc {
	var out []hotpathFunc
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || fd.Doc == nil {
					continue
				}
				marked := false
				for _, c := range fd.Doc.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if strings.HasPrefix(text, hotpathMarker) {
						marked = true
						break
					}
				}
				if !marked {
					continue
				}
				start := prog.Fset.Position(fd.Pos())
				end := prog.Fset.Position(fd.End())
				out = append(out, hotpathFunc{
					pkg:   pkg,
					decl:  fd,
					name:  funcDisplayName(fd),
					file:  start.Filename,
					start: start.Line,
					end:   end.Line,
				})
			}
		}
	}
	return out
}

// funcDisplayName renders "Name" or "(Recv).Name" for diagnostics.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return "(" + types.ExprString(fd.Recv.List[0].Type) + ")." + fd.Name.Name
}

// m2Index holds the parsed facts in lookup form.
type m2Index struct {
	// escapes per file, sorted by line.
	escapes map[string][]m2Fact
	// inlined call sites: file:line -> callee names the compiler inlined.
	inlined map[string][]string
	// cannotInline reasons keyed by the function name the compiler used.
	noInline map[string]string
}

func indexM2Facts(facts []m2Fact) *m2Index {
	idx := &m2Index{
		escapes:  make(map[string][]m2Fact),
		inlined:  make(map[string][]string),
		noInline: make(map[string]string),
	}
	for _, f := range facts {
		switch f.Kind {
		case m2Escape:
			idx.escapes[f.Pos.Filename] = append(idx.escapes[f.Pos.Filename], f)
		case m2InlineCall:
			key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
			idx.inlined[key] = append(idx.inlined[key], f.What)
		case m2CannotInline:
			if _, ok := idx.noInline[f.What]; !ok {
				idx.noInline[f.What] = f.Reason
			}
		}
	}
	for file := range idx.escapes {
		es := idx.escapes[file]
		sort.Slice(es, func(i, j int) bool { return es[i].Pos.Line < es[j].Pos.Line })
	}
	return idx
}

// gateEscapes reports heap escapes inside an annotated function, skipping
// escapes that happen on error-returning statements (cold by
// construction).
func gateEscapes(prog *Program, hf hotpathFunc, idx *m2Index) []Diagnostic {
	var diags []Diagnostic
	for _, f := range idx.escapes[hf.file] {
		if f.Pos.Line < hf.start || f.Pos.Line > hf.end {
			continue
		}
		if onErrorReturn(prog, hf, f.Pos.Line) {
			continue
		}
		msg := fmt.Sprintf("heap escape in hotpath function %s: %s escapes to heap", hf.name, f.What)
		if f.Reason != "" {
			msg += " (" + f.Reason + ")"
		}
		diags = append(diags, Diagnostic{Pass: "hotalloc", Pos: f.Pos, Message: msg})
	}
	return diags
}

// onErrorReturn reports whether the given line falls inside a return
// statement that yields a non-nil error — the one place an annotated
// function may box values, because a taken error return has already left
// the hot path.
func onErrorReturn(prog *Program, hf hotpathFunc, line int) bool {
	sig, ok := hf.pkg.Info.Defs[hf.decl.Name].Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	errType := types.Universe.Lookup("error").Type()
	if !types.Identical(last, errType) {
		return false
	}
	cold := false
	ast.Inspect(hf.decl.Body, func(n ast.Node) bool {
		if cold {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		start := prog.Fset.Position(ret.Pos()).Line
		end := prog.Fset.Position(ret.End()).Line
		if line < start || line > end {
			return true
		}
		lastExpr := ret.Results[len(ret.Results)-1]
		if id, isIdent := ast.Unparen(lastExpr).(*ast.Ident); isIdent && id.Name == "nil" {
			return true
		}
		cold = true
		return false
	})
	return cold
}

// funcDeclRef locates a function's declaration inside the program.
type funcDeclRef struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// buildFuncDeclIndex maps every declared function object to its AST.
func buildFuncDeclIndex(prog *Program) map[*types.Func]funcDeclRef {
	idx := make(map[*types.Func]funcDeclRef)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					idx[fn] = funcDeclRef{pkg: pkg, decl: fd}
				}
			}
		}
	}
	return idx
}

// isLeafFunc reports whether the function body performs no calls of its
// own — builtins (len, append, …) and type conversions do not count.
// Leaves are the functions the inliner has no excuse to skip.
func isLeafFunc(ref funcDeclRef) bool {
	leaf := true
	ast.Inspect(ref.decl.Body, func(n ast.Node) bool {
		if !leaf {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		if tv, ok := ref.pkg.Info.Types[fun]; ok && tv.IsType() {
			return true // conversion
		}
		if id, ok := fun.(*ast.Ident); ok {
			if _, isBuiltin := ref.pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
				return true
			}
		}
		leaf = false
		return false
	})
	return leaf
}

// gateLeafCalls reports calls from an annotated function to
// module-internal leaf functions the compiler left as real calls.
func gateLeafCalls(prog *Program, hf hotpathFunc, idx *m2Index, declIdx map[*types.Func]funcDeclRef) []Diagnostic {
	var diags []Diagnostic
	ast.Inspect(hf.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(hf.pkg.Info, call)
		if fn == nil {
			return true
		}
		ref, declared := declIdx[fn]
		if !declared || !isLeafFunc(ref) {
			return true
		}
		pos := prog.Fset.Position(call.Pos())
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		for _, what := range idx.inlined[key] {
			if what == fn.Name() || strings.HasSuffix(what, "."+fn.Name()) {
				return true // compiler inlined it
			}
		}
		msg := fmt.Sprintf("call to leaf function %s is not inlined in hotpath function %s", fn.Name(), hf.name)
		if reason := lookupNoInlineReason(idx, fn.Name()); reason != "" {
			msg += " (compiler: " + reason + ")"
		}
		diags = append(diags, Diagnostic{Pass: "hotalloc", Pos: pos, Message: msg})
		return true
	})
	return diags
}

// lookupNoInlineReason finds the compiler's cannot-inline reason for a
// function name, tolerating the "<Type>.name" forms -m=2 uses.
func lookupNoInlineReason(idx *m2Index, name string) string {
	if r, ok := idx.noInline[name]; ok {
		return r
	}
	var matches []string
	for what := range idx.noInline {
		if strings.HasSuffix(what, "."+name) {
			matches = append(matches, what)
		}
	}
	if len(matches) == 0 {
		return ""
	}
	sort.Strings(matches)
	return idx.noInline[matches[0]]
}
