package analysis

import (
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestParseM2SampleFixture parses a pinned -m=2 transcript (with flow
// continuations, doubled escape lines, irrelevant families, and lines an
// imaginary future compiler might add) and checks exactly the facts the
// hotalloc pass needs come out — nothing more, nothing lost.
func TestParseM2SampleFixture(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "hotalloc", "m2_sample.txt"))
	if err != nil {
		t.Fatal(err)
	}
	base := filepath.FromSlash("/work/repo")
	facts := parseM2Output(string(raw), base)

	type want struct {
		kind   m2Kind
		file   string
		line   int
		what   string
		reason string
	}
	wants := []want{
		{m2Escape, "internal/objstore/objstore.go", 236, "make([]byte, bs)", "flow: {heap} = &{storage for make([]byte, bs)}:"},
		{m2Escape, "internal/objstore/objstore.go", 240, "row", ""},
		{m2InlineCall, "internal/rtree/packed.go", 88, "PackedNode.EntryCount", ""},
		{m2InlineCall, "internal/rtree/packed.go", 91, "bo.LittleEndian.Uint64", ""},
		{m2CannotInline, "internal/rtree/packed.go", 52, "(*Tree).bulkLoadLeaves", "function too complex: cost 187 exceeds budget 80"},
	}
	if len(facts) != len(wants) {
		for _, f := range facts {
			t.Logf("fact: kind=%d pos=%s what=%q reason=%q", f.Kind, f.Pos, f.What, f.Reason)
		}
		t.Fatalf("got %d facts, want %d", len(facts), len(wants))
	}
	for i, w := range wants {
		f := facts[i]
		wantFile := filepath.Join(base, filepath.FromSlash(w.file))
		if f.Kind != w.kind || f.Pos.Filename != wantFile || f.Pos.Line != w.line || f.What != w.what || f.Reason != w.reason {
			t.Errorf("fact %d: got kind=%d pos=%s what=%q reason=%q, want kind=%d file=%s line=%d what=%q reason=%q",
				i, f.Kind, f.Pos, f.What, f.Reason, w.kind, wantFile, w.line, w.what, w.reason)
		}
	}
}

// TestParseM2AbsolutePaths keeps already-absolute compiler paths intact.
func TestParseM2AbsolutePaths(t *testing.T) {
	abs := filepath.FromSlash("/abs/pkg/file.go")
	facts := parseM2Output(abs+":10:5: x escapes to heap", filepath.FromSlash("/elsewhere"))
	if len(facts) != 1 || facts[0].Pos.Filename != abs {
		t.Fatalf("got %+v, want one fact at %s", facts, abs)
	}
}

// TestParseM2Tolerance feeds garbage and near-miss lines: the parser must
// return nothing rather than err or misparse.
func TestParseM2Tolerance(t *testing.T) {
	input := strings.Join([]string{
		"",
		"# pkg/header",
		"go: finding module for package x",
		"not a diagnostic at all",
		"file.txt:3:1: escapes to heap",      // not a .go file
		"file.go:notanumber:1: x escapes",    // bad line number
		"file.go:10:2 missing message colon", // malformed tail
	}, "\n")
	if facts := parseM2Output(input, "."); len(facts) != 0 {
		t.Fatalf("tolerant parse returned facts: %+v", facts)
	}
}

// loadHotFixture loads the standalone fixturehot module (it has its own
// go.mod, so the pass's `go build -gcflags=-m=2` runs against it alone).
func loadHotFixture(t *testing.T) *Program {
	t.Helper()
	fset := token.NewFileSet()
	l := NewLoader(fset)
	root, err := filepath.Abs(filepath.Join("testdata", "hotalloc", "escape"))
	if err != nil {
		t.Fatal(err)
	}
	l.AddModule("fixturehot", root)

	var pkgs []*Package
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		names, err := buildableGoFiles(path)
		if err != nil || len(names) == 0 {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		importPath := "fixturehot"
		if rel != "." {
			importPath += "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.Load(importPath)
		if err != nil {
			return err
		}
		pkgs = append(pkgs, pkg)
		return nil
	})
	if err != nil {
		t.Fatalf("loading fixturehot: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages in fixturehot")
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return &Program{Fset: fset, Pkgs: pkgs}
}

// TestHotAllocGolden runs the full pass — including the real `go build
// -gcflags=-m=2` — over the fixture module and matches its want
// annotations: the intentional escape, the moved-to-heap local, the
// non-inlined leaf call, and the main-package misuse must all be
// reported; the cold error return, the ignored warm-up allocation, the
// inlined leaf, and the clean kernel must stay silent.
func TestHotAllocGolden(t *testing.T) {
	prog := loadHotFixture(t)
	diags := Run(prog, []Pass{hotAlloc{}})
	for _, err := range CheckExpectations(prog.Fset, prog.Pkgs, diags) {
		t.Error(err)
	}
}
