package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// ignorePrefix is the directive marker: //skvet:ignore pass1,pass2 reason.
const ignorePrefix = "skvet:ignore"

// ignoreIndex records, per file and line, which passes are suppressed. A
// directive suppresses findings on its own line and on the line directly
// below it, so both trailing comments and whole-line comments above the
// offending statement work.
type ignoreIndex map[string]map[int]map[string]bool

func (idx ignoreIndex) suppressed(pass string, pos token.Position) bool {
	lines, ok := idx[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if set, ok := lines[line]; ok && (set[pass] || set["all"]) {
			return true
		}
	}
	return false
}

// buildIgnoreIndex scans every comment in the program for skvet:ignore
// directives. Malformed directives (no pass list, or a pass name the
// suite does not know) come back as diagnostics under the pseudo-pass
// "skvet" so stale suppressions are visible.
func buildIgnoreIndex(prog *Program, known map[string]bool) (ignoreIndex, []Diagnostic) {
	idx := make(ignoreIndex)
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimPrefix(text, "/*")
					text = strings.TrimSuffix(text, "*/")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
					if i := strings.Index(rest, "//"); i >= 0 {
						rest = rest[:i] // nested comment, e.g. fixture want markers
					}
					fields := strings.Fields(rest)
					if len(fields) == 0 {
						diags = append(diags, Diagnostic{
							Pass: "skvet", Pos: pos,
							Message: "skvet:ignore needs a comma-separated pass list (e.g. //skvet:ignore nopanic reason)",
						})
						continue
					}
					for _, name := range strings.Split(fields[0], ",") {
						name = strings.TrimSpace(name)
						if name != "all" && !known[name] {
							diags = append(diags, Diagnostic{
								Pass: "skvet", Pos: pos,
								Message: fmt.Sprintf("skvet:ignore names unknown pass %q", name),
							})
							continue
						}
						lines, ok := idx[pos.Filename]
						if !ok {
							lines = make(map[int]map[string]bool)
							idx[pos.Filename] = lines
						}
						set, ok := lines[pos.Line]
						if !ok {
							set = make(map[string]bool)
							lines[pos.Line] = set
						}
						set[name] = true
					}
				}
			}
		}
	}
	return idx, diags
}
