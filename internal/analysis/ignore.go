package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// ignorePrefix is the directive marker: //skvet:ignore pass1,pass2 reason.
const ignorePrefix = "skvet:ignore"

// IgnoreDirective is one parsed //skvet:ignore comment: where it is, which
// passes it names, and the free-text justification that follows the pass
// list. Passes is empty for a malformed directive (missing list).
type IgnoreDirective struct {
	Pos    token.Position
	Passes []string
	Reason string
}

// ignoreIndex records, per file and line, which passes are suppressed. A
// directive suppresses findings on its own line and on the line directly
// below it, so both trailing comments and whole-line comments above the
// offending statement work.
type ignoreIndex map[string]map[int]map[string]bool

func (idx ignoreIndex) suppressed(pass string, pos token.Position) bool {
	lines, ok := idx[pos.Filename]
	if !ok {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if set, ok := lines[line]; ok && (set[pass] || set["all"]) {
			return true
		}
	}
	return false
}

// Directives returns every skvet:ignore directive in the program, sorted
// by position — the data behind `skvet -ignores`, so exceptions can be
// audited in one listing instead of grepped file by file.
func Directives(prog *Program) []IgnoreDirective {
	var out []IgnoreDirective
	scanIgnoreDirectives(prog, func(d IgnoreDirective) {
		out = append(out, d)
	})
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// scanIgnoreDirectives walks every comment in the program and yields each
// ignore directive, parsed into position, pass list, and reason.
func scanIgnoreDirectives(prog *Program, yield func(IgnoreDirective)) {
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimPrefix(text, "/*")
					text = strings.TrimSuffix(text, "*/")
					text = strings.TrimSpace(text)
					if !strings.HasPrefix(text, ignorePrefix) {
						continue
					}
					rest := strings.TrimSpace(strings.TrimPrefix(text, ignorePrefix))
					rest = strings.ReplaceAll(rest, "\t", " ")
					if i := strings.Index(rest, "//"); i >= 0 {
						rest = rest[:i] // nested comment, e.g. fixture want markers
					}
					d := IgnoreDirective{Pos: prog.Fset.Position(c.Pos())}
					if list, reason, ok := strings.Cut(rest, " "); ok {
						d.Reason = strings.TrimSpace(reason)
						rest = list
					}
					if rest != "" {
						for _, name := range strings.Split(rest, ",") {
							d.Passes = append(d.Passes, strings.TrimSpace(name))
						}
					}
					yield(d)
				}
			}
		}
	}
}

// buildIgnoreIndex scans the program for skvet:ignore directives and
// builds the suppression index. Malformed directives (no pass list, or a
// pass name the suite does not know) come back as diagnostics under the
// pseudo-pass "skvet" so stale suppressions are visible.
func buildIgnoreIndex(prog *Program, known map[string]bool) (ignoreIndex, []Diagnostic) {
	idx := make(ignoreIndex)
	var diags []Diagnostic
	scanIgnoreDirectives(prog, func(d IgnoreDirective) {
		if len(d.Passes) == 0 {
			diags = append(diags, Diagnostic{
				Pass: "skvet", Pos: d.Pos,
				Message: "skvet:ignore needs a comma-separated pass list (e.g. //skvet:ignore nopanic reason)",
			})
			return
		}
		for _, name := range d.Passes {
			if name != "all" && !known[name] {
				diags = append(diags, Diagnostic{
					Pass: "skvet", Pos: d.Pos,
					Message: fmt.Sprintf("skvet:ignore names unknown pass %q", name),
				})
				continue
			}
			lines, ok := idx[d.Pos.Filename]
			if !ok {
				lines = make(map[int]map[string]bool)
				idx[d.Pos.Filename] = lines
			}
			set, ok := lines[d.Pos.Line]
			if !ok {
				set = make(map[string]bool)
				lines[d.Pos.Line] = set
			}
			set[name] = true
		}
	})
	return idx, diags
}
