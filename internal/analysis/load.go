package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// ErrNoGoFiles is returned by Loader.Load for a directory that contains
// no buildable (non-test) Go files. Drivers walking a tree skip these.
var ErrNoGoFiles = errors.New("analysis: no buildable Go files")

// Loader parses and typechecks packages. Imports inside a registered
// module resolve recursively from that module's source tree; everything
// else (the standard library) resolves through go/importer's source
// importer, so the loader needs neither export data nor the go command.
type Loader struct {
	Fset *token.FileSet

	modules map[string]string // module path -> root directory
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader with no modules registered.
func NewLoader(fset *token.FileSet) *Loader {
	return &Loader{
		Fset:    fset,
		modules: make(map[string]string),
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
}

// AddModule registers a module root: import paths equal to modPath or
// under modPath/ resolve to directories under dir.
func (l *Loader) AddModule(modPath, dir string) {
	l.modules[modPath] = dir
}

// dirFor resolves an import path against the registered modules, using
// the longest matching module-path prefix.
func (l *Loader) dirFor(path string) (string, bool) {
	best := ""
	dir := ""
	for mod, root := range l.modules {
		if path != mod && !strings.HasPrefix(path, mod+"/") {
			continue
		}
		if len(mod) <= len(best) && best != "" {
			continue
		}
		best = mod
		dir = filepath.Join(root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, mod), "/")))
	}
	return dir, best != ""
}

// Import implements types.Importer: module-internal paths load from
// source through this loader; all other paths go to the stdlib source
// importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if _, ok := l.dirFor(path); ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and typechecks the package at the given import path
// (which must resolve inside a registered module). Test files are
// excluded: the suite analyzes shipping code, and test-only invariant
// exceptions (rand for data generation, wall-clock deadlines) stay legal
// without annotation. Results are memoized per loader.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	dir, ok := l.dirFor(importPath)
	if !ok {
		return nil, fmt.Errorf("analysis: import path %q is outside every registered module", importPath)
	}

	names, err := buildableGoFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("%w in %s", ErrNoGoFiles, dir)
	}

	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, fmt.Errorf("analysis: %s: mixed packages %q and %q", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: typecheck %s: %w", importPath, typeErrs[0])
	}

	p := &Package{
		Path:  importPath,
		Dir:   dir,
		Name:  pkgName,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[importPath] = p
	return p, nil
}

// buildableGoFiles lists the non-test .go files of dir in sorted order,
// skipping hidden and underscore-prefixed names the go tool also ignores.
func buildableGoFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
