package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// lockIO enforces the no-I/O-under-lock discipline in the sharded engine,
// the core engine, the write-ahead log, the replication layer, and the
// fence registry: while a sync.Mutex or sync.RWMutex is held, no direct
// storage-device I/O (Read, ReadRun, Write, WriteRun) may run. A slow or
// faulted device call under a shard's RWMutex stalls every other query on
// that shard — the exact tail-latency failure the fan-out design of PR 1
// exists to avoid — under the WAL appender's mutex it would serialize
// every group commit behind the device, defeating group commit entirely,
// under the replication leader's ship-buffer mutex it would stall the
// write path of every stream, and under the fence registry's lock (held
// while evaluating standing queries on the mutation path) it would add
// device latency to every acknowledged write.
//
// The analysis is linear per function body: lock state is tracked in
// source order, deferred unlocks keep the mutex held to the end of the
// body, and function literals are scanned as their own context (a
// goroutine does not inherit its spawner's lock for blocking purposes).
type lockIO struct{}

func (lockIO) Name() string { return "lockio" }

func (lockIO) Doc() string {
	return "no storage-device I/O while holding a mutex in internal/shard, internal/core, internal/wal, internal/repl, internal/fence, or internal/nodecache"
}

// deviceIOMethods are the Device methods that perform (modeled) disk I/O.
var deviceIOMethods = map[string]bool{
	"Read": true, "ReadRun": true, "ReadRunInto": true, "Write": true, "WriteRun": true,
}

func (lockIO) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if !pathHasSegments(pkg.Path, "internal/shard") && !pathHasSegments(pkg.Path, "internal/core") &&
			!pathHasSegments(pkg.Path, "internal/wal") && !pathHasSegments(pkg.Path, "internal/repl") &&
			!pathHasSegments(pkg.Path, "internal/fence") && !pathHasSegments(pkg.Path, "internal/nodecache") {
			continue
		}
		for _, f := range pkg.Files {
			for _, fb := range funcBodies(f) {
				diags = append(diags, scanLockRegion(prog, pkg, fb)...)
			}
		}
	}
	return diags
}

// mutexOp classifies a call as a lock or unlock on a sync mutex,
// returning the receiver expression's source form as the mutex key.
func mutexOp(info *types.Info, call *ast.CallExpr) (key string, delta int, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", 0, false
	}
	var d int
	switch sel.Sel.Name {
	case "Lock", "RLock":
		d = +1
	case "Unlock", "RUnlock":
		d = -1
	default:
		return "", 0, false
	}
	tv, okT := info.Types[sel.X]
	if !okT || tv.Type == nil {
		return "", 0, false
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", 0, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", 0, false
	}
	if obj.Name() != "Mutex" && obj.Name() != "RWMutex" {
		return "", 0, false
	}
	return types.ExprString(sel.X), d, true
}

// deviceIOCall reports whether the call is a direct device I/O method
// from internal/storage, returning its name for the diagnostic.
func deviceIOCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if !fromStoragePkg(fn) {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	if !deviceIOMethods[fn.Name()] {
		return "", false
	}
	return fn.Name(), true
}

// scanLockRegion walks one function body in source order, tracking how
// many mutexes are held, and flags device I/O performed while any is.
func scanLockRegion(prog *Program, pkg *Package, fb funcBody) []Diagnostic {
	var diags []Diagnostic
	held := make(map[string]int)
	total := 0

	heldKeys := func() string {
		var keys []string
		for k, n := range held {
			if n > 0 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		return strings.Join(keys, ", ")
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// Scanned independently by funcBodies; a literal's body runs
			// in its own goroutine/defer context.
			return false
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held for the rest of the
			// body, so skip it; anything else deferred is treated as
			// executing here (conservative for deferred I/O).
			if _, delta, ok := mutexOp(pkg.Info, n.Call); ok && delta < 0 {
				return false
			}
			return true
		case *ast.CallExpr:
			if key, delta, ok := mutexOp(pkg.Info, n); ok {
				if delta > 0 {
					held[key]++
					total++
				} else if held[key] > 0 {
					held[key]--
					total--
				}
				return true
			}
			if name, ok := deviceIOCall(pkg.Info, n); ok && total > 0 {
				diags = append(diags, Diagnostic{
					Pass: "lockio",
					Pos:  prog.Fset.Position(n.Pos()),
					Message: fmt.Sprintf("storage I/O (%s) in %s while holding %s; release the lock before touching the device",
						name, fb.name, heldKeys()),
				})
			}
		}
		return true
	}
	ast.Inspect(fb.body, walk)
	return diags
}
