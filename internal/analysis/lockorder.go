package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockOrder lifts lockio's per-function, defer-aware lock-region tracker
// into a whole-program lock-acquisition graph. The codebase now runs four
// always-on concurrent subsystems (WAL group commit, repl log tailing,
// fence fan-out, nodecache invalidation) plus the engine/shard read
// paths, and their only deadlock protection so far was convention.
//
// Model: every sync.Mutex/RWMutex is identified by where it lives — the
// named struct type and field ("rtree.Tree.mu") or the package-level
// variable holding it. Function-local mutexes are skipped: a cycle needs
// two code paths that can both reach the same two locks, and a local
// mutex is reachable from exactly one. For each function body (and each
// function literal, which runs in its own goroutine/defer context) the
// pass replays lockio's source-order scan: acquiring M while holding L
// adds the edge L→M; calling a statically-resolved module function g
// while holding L adds L→M for every lock M that g (transitively)
// acquires, with the call chain recorded for the report. Deferred unlocks
// keep a lock held to the end of the body; `go` statements add no edges
// (the spawner does not block on the goroutine's locks) and goroutine
// bodies are scanned as their own top-level contexts.
//
// A cycle in the graph is a potential deadlock: two goroutines entering
// the cycle from different points can each hold one lock and wait for the
// other. Every acquisition edge that lies on a cycle is reported at its
// site, with one shortest cycle path spelled out. Self-edges (L→L) are
// not reported: the same field on two different instances (two shards'
// mutexes, a parent and child node) is legal and common; the instance-
// level re-entrancy bug is out of scope for a type-level graph.
//
// Limits, by design: calls through interfaces and function values are
// invisible, and lock identity is per type+field, not per instance —
// both documented over-approximations in the "invariants as checked
// queries" style. The pass errs quiet, lockio-style, rather than flooding
// with instance-level false positives.
type lockOrder struct{}

func (lockOrder) Name() string { return "lockorder" }

func (lockOrder) Doc() string {
	return "the whole-program lock-acquisition graph over engine/shard/wal/fence/nodecache/repl mutexes must stay acyclic (potential deadlock otherwise)"
}

// lockEdge is one acquisition ordering: "to" was acquired while "from"
// was held, at pos. via names the call chain when the acquisition is
// inside a callee rather than the scanned body itself.
type lockEdge struct {
	from, to string
	pos      token.Position
	via      string
}

func (lockOrder) Run(prog *Program) []Diagnostic {
	declIdx := buildFuncDeclIndex(prog)
	summaries := lockSummaries(prog, declIdx)

	var edges []lockEdge
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			for _, fb := range funcBodies(f) {
				edges = append(edges, scanLockOrder(prog, pkg, fb, summaries)...)
			}
		}
	}

	// Adjacency over canonical lock keys, keeping every edge site.
	adj := make(map[string]map[string]bool)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}

	var diags []Diagnostic
	reported := make(map[string]bool) // dedupe identical (pos, from, to)
	for _, e := range edges {
		path := lockPath(adj, e.to, e.from)
		if path == nil {
			continue // edge not on any cycle
		}
		key := fmt.Sprintf("%s|%s|%s", posKey(e.pos), e.from, e.to)
		if reported[key] {
			continue
		}
		reported[key] = true
		cycle := append([]string{e.from}, path...)
		msg := fmt.Sprintf("acquiring %s while holding %s", e.to, e.from)
		if e.via != "" {
			msg += " (via call to " + e.via + ")"
		}
		msg += " closes a lock-order cycle: " + strings.Join(cycle, " -> ")
		diags = append(diags, Diagnostic{Pass: "lockorder", Pos: e.pos, Message: msg})
	}
	return diags
}

// lockPath returns a shortest path from -> to in the edge graph (BFS), or
// nil when unreachable. The path includes both endpoints.
func lockPath(adj map[string]map[string]bool, from, to string) []string {
	if from == to {
		return []string{from}
	}
	prev := map[string]string{from: ""}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		var nexts []string
		for n := range adj[cur] {
			nexts = append(nexts, n)
		}
		sort.Strings(nexts)
		for _, n := range nexts {
			if _, seen := prev[n]; seen {
				continue
			}
			prev[n] = cur
			if n == to {
				var path []string
				for at := to; at != ""; at = prev[at] {
					path = append(path, at)
				}
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path
			}
			queue = append(queue, n)
		}
	}
	return nil
}

// canonicalMutexKey names a mutex by where it lives: "pkg.Type.field" for
// a struct field, "pkg.var" for a package-level variable. Function-local
// mutexes return ok=false and are excluded from the graph.
func canonicalMutexKey(pkg *Package, mutexExpr ast.Expr) (string, bool) {
	switch e := ast.Unparen(mutexExpr).(type) {
	case *ast.SelectorExpr:
		tv, ok := pkg.Info.Types[e.X]
		if !ok || tv.Type == nil {
			return "", false
		}
		t := tv.Type
		for {
			if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
				t = ptr.Elem()
				continue
			}
			break
		}
		named, ok := t.(*types.Named)
		if !ok {
			return "", false
		}
		obj := named.Obj()
		pkgName := ""
		if obj.Pkg() != nil {
			pkgName = obj.Pkg().Name() + "."
		}
		return pkgName + obj.Name() + "." + e.Sel.Name, true
	case *ast.Ident:
		v, ok := pkg.Info.Uses[e].(*types.Var)
		if !ok || v.Pkg() == nil {
			return "", false
		}
		// Package-level variable: its scope is the package scope.
		if v.Parent() != v.Pkg().Scope() {
			return "", false
		}
		return v.Pkg().Name() + "." + v.Name(), true
	}
	return "", false
}

// lockMutexOp classifies a call as acquiring (+1) or releasing (-1) a
// canonical mutex. Locks on local mutexes return ok=false.
func lockMutexOp(pkg *Package, call *ast.CallExpr) (key string, delta int, ok bool) {
	_, delta, isOp := mutexOp(pkg.Info, call)
	if !isOp {
		return "", 0, false
	}
	sel := call.Fun.(*ast.SelectorExpr) // mutexOp guarantees the shape
	k, canon := canonicalMutexKey(pkg, sel.X)
	if !canon {
		return "", 0, false
	}
	return k, delta, true
}

// lockSummaries computes, for every declared function, the set of
// canonical locks it may acquire directly or through the statically-
// resolved functions it calls. Nested function literals and `go`
// statements are excluded: a literal runs in a context the caller does
// not block on (and is scanned as its own body), and a spawned goroutine
// never orders its locks after the spawner's.
func lockSummaries(prog *Program, declIdx map[*types.Func]funcDeclRef) map[*types.Func]map[string]string {
	direct := make(map[*types.Func]map[string]string) // fn -> lock -> via chain ("" = direct)
	calls := make(map[*types.Func][]*types.Func)
	for fn, ref := range declIdx {
		locks := make(map[string]string)
		var callees []*types.Func
		ast.Inspect(ref.decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				return false
			case *ast.CallExpr:
				if key, delta, ok := lockMutexOp(ref.pkg, n); ok && delta > 0 {
					if _, have := locks[key]; !have {
						locks[key] = ""
					}
					return true
				}
				if callee := calleeFunc(ref.pkg.Info, n); callee != nil {
					if _, declared := declIdx[callee]; declared {
						callees = append(callees, callee)
					}
				}
			}
			return true
		})
		direct[fn] = locks
		calls[fn] = callees
	}

	// Propagate to a fixpoint; via records the first callee hop so the
	// report can say which call introduced the acquisition.
	for changed := true; changed; {
		changed = false
		for fn, callees := range calls {
			for _, callee := range callees {
				for lock := range direct[callee] {
					if _, have := direct[fn][lock]; !have {
						direct[fn][lock] = callee.Name()
						changed = true
					}
				}
			}
		}
	}
	return direct
}

// scanLockOrder replays one body in source order, tracking held canonical
// locks, and emits ordering edges for direct acquisitions and for calls
// into lock-acquiring functions.
func scanLockOrder(prog *Program, pkg *Package, fb funcBody, summaries map[*types.Func]map[string]string) []lockEdge {
	var edges []lockEdge
	held := make(map[string]int)

	heldKeys := func() []string {
		var keys []string
		for k, n := range held {
			if n > 0 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		return keys
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // scanned as its own body by funcBodies
		case *ast.GoStmt:
			return false // the spawner does not block on the goroutine
		case *ast.DeferStmt:
			if _, delta, ok := lockMutexOp(pkg, n.Call); ok && delta < 0 {
				return false // deferred unlock: lock held to end of body
			}
			return true
		case *ast.CallExpr:
			if key, delta, ok := lockMutexOp(pkg, n); ok {
				if delta > 0 {
					for _, h := range heldKeys() {
						if h != key {
							edges = append(edges, lockEdge{from: h, to: key, pos: prog.Fset.Position(n.Pos())})
						}
					}
					held[key]++
				} else if held[key] > 0 {
					held[key]--
				}
				return true
			}
			if len(heldKeys()) == 0 {
				return true
			}
			if callee := calleeFunc(pkg.Info, n); callee != nil {
				if acq, ok := summaries[callee]; ok && len(acq) > 0 {
					var locks []string
					for l := range acq {
						locks = append(locks, l)
					}
					sort.Strings(locks)
					for _, h := range heldKeys() {
						for _, l := range locks {
							if l == h {
								continue
							}
							via := callee.Name()
							if hop := acq[l]; hop != "" && hop != via {
								via += " -> " + hop
							}
							edges = append(edges, lockEdge{
								from: h, to: l,
								pos: prog.Fset.Position(n.Pos()),
								via: via,
							})
						}
					}
				}
			}
		}
		return true
	}
	ast.Inspect(fb.body, walk)
	return edges
}
