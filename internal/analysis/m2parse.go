package analysis

import (
	"go/token"
	"path/filepath"
	"strconv"
	"strings"
)

// Parsing of `go build -gcflags=-m=2` diagnostics.
//
// The compiler's -m output is not a stable API, so the parser is
// deliberately tolerant: it recognizes the three diagnostic families the
// hotalloc pass needs — escape decisions, inlining decisions at call
// sites, and per-function inlinability — and silently skips everything
// else (devirtualization notes, bounds-check elision, flow traces from a
// future compiler, package headers). An unknown line can never be an
// error; at worst the pass loses one fact and the golden fixtures catch a
// real regression in coverage.
//
// With -m=2 an escape decision is printed twice — once with a trailing
// colon followed by indented `flow:`/`from ...` trace lines, once bare —
// and both carry the same position. The parser folds the pair into one
// fact and keeps the first trace line as the machine-readable reason.

// m2Kind classifies one compiler fact.
type m2Kind int

const (
	// m2Escape is a heap-escape decision: "<value> escapes to heap" or
	// "moved to heap: <name>".
	m2Escape m2Kind = iota
	// m2InlineCall marks a call site the compiler inlined: "inlining
	// call to <fn>".
	m2InlineCall
	// m2CannotInline marks a function the compiler refuses to inline:
	// "cannot inline <fn>: <reason>".
	m2CannotInline
)

// m2Fact is one parsed compiler diagnostic.
type m2Fact struct {
	Kind   m2Kind
	Pos    token.Position
	What   string // escaping value, inlined callee, or non-inlinable function
	Reason string // escape-flow summary or the compiler's inlining refusal
}

// parseM2Output extracts facts from raw `go build -gcflags=-m=2` output.
// Relative file names resolve against baseDir (the directory the build ran
// in, i.e. the module root).
func parseM2Output(out string, baseDir string) []m2Fact {
	var facts []m2Fact
	// Dedupe the doubled escape lines: key is position + value.
	seen := make(map[string]int) // -> index into facts
	for _, line := range strings.Split(out, "\n") {
		pos, msg, ok := splitM2Line(line)
		if !ok {
			continue
		}
		if !filepath.IsAbs(pos.Filename) {
			pos.Filename = filepath.Join(baseDir, pos.Filename)
		}
		if strings.HasPrefix(msg, " ") {
			// Indented continuation: the first flow line becomes the
			// reason of the escape fact it annotates.
			key := posKey(pos)
			if i, ok := seen[key+"\x00escape"]; ok && facts[i].Reason == "" {
				facts[i].Reason = strings.TrimSpace(msg)
			}
			continue
		}
		switch {
		case strings.HasPrefix(msg, "moved to heap: "):
			what := strings.TrimPrefix(msg, "moved to heap: ")
			addM2Fact(&facts, seen, m2Fact{Kind: m2Escape, Pos: pos, What: what}, posKey(pos)+"\x00escape")
		case strings.HasSuffix(msg, " escapes to heap"), strings.HasSuffix(msg, " escapes to heap:"):
			what := strings.TrimSuffix(strings.TrimSuffix(msg, ":"), " escapes to heap")
			addM2Fact(&facts, seen, m2Fact{Kind: m2Escape, Pos: pos, What: what}, posKey(pos)+"\x00escape")
		case strings.HasPrefix(msg, "inlining call to "):
			what := strings.TrimPrefix(msg, "inlining call to ")
			addM2Fact(&facts, seen, m2Fact{Kind: m2InlineCall, Pos: pos, What: what}, posKey(pos)+"\x00inline\x00"+what)
		case strings.HasPrefix(msg, "cannot inline "):
			rest := strings.TrimPrefix(msg, "cannot inline ")
			what, reason := rest, ""
			if i := strings.Index(rest, ": "); i >= 0 {
				what, reason = rest[:i], rest[i+2:]
			}
			addM2Fact(&facts, seen, m2Fact{Kind: m2CannotInline, Pos: pos, What: what, Reason: reason}, posKey(pos)+"\x00noinline")
		}
		// Every other diagnostic family ("can inline", "devirtualizing",
		// "leaking param", "does not escape", bounds-check notes, and
		// whatever a newer compiler adds) is irrelevant here and skipped.
	}
	return facts
}

// addM2Fact appends f unless an identical-keyed fact exists (the doubled
// -m=2 escape lines), keeping the first occurrence's reason.
func addM2Fact(facts *[]m2Fact, seen map[string]int, f m2Fact, key string) {
	if _, dup := seen[key]; dup {
		return
	}
	seen[key] = len(*facts)
	*facts = append(*facts, f)
}

func posKey(pos token.Position) string {
	return pos.Filename + ":" + strconv.Itoa(pos.Line) + ":" + strconv.Itoa(pos.Column)
}

// splitM2Line splits "file.go:line:col: message" into a position and the
// message (leading indentation preserved, so continuations are
// recognizable). Lines that do not look like compiler diagnostics —
// "# package" headers, go tool chatter, empty lines — return ok=false.
func splitM2Line(line string) (token.Position, string, bool) {
	if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "go: ") {
		return token.Position{}, "", false
	}
	// Find ".go:" to anchor the position; message text can contain
	// colons, but the file name ends at the first ".go:".
	anchor := strings.Index(line, ".go:")
	if anchor < 0 {
		return token.Position{}, "", false
	}
	file := line[:anchor+3]
	rest := line[anchor+4:]
	lineNo, rest, ok := cutInt(rest)
	if !ok {
		return token.Position{}, "", false
	}
	colNo, rest, ok := cutInt(rest)
	if !ok {
		return token.Position{}, "", false
	}
	msg, found := strings.CutPrefix(rest, " ")
	if !found {
		return token.Position{}, "", false
	}
	return token.Position{Filename: file, Line: lineNo, Column: colNo}, msg, true
}

// cutInt parses a leading "<digits>:" from s.
func cutInt(s string) (int, string, bool) {
	i := strings.IndexByte(s, ':')
	if i <= 0 {
		return 0, "", false
	}
	n, err := strconv.Atoi(s[:i])
	if err != nil {
		return 0, "", false
	}
	return n, s[i+1:], true
}
