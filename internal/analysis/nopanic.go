package analysis

import (
	"go/ast"
	"go/types"
)

// noPanic keeps panics out of library packages. The degraded-mode design
// of PR 3 relies on every failure surfacing as a typed error the shard
// layer can catch and route around (sticky unhealthy shards, partial
// results); a panic in a library package tears down the whole process
// instead. Binaries (package main) may panic, tests are not analyzed,
// and constructor invariants that deliberately panic on programmer error
// carry a //skvet:ignore nopanic annotation.
type noPanic struct{}

func (noPanic) Name() string { return "nopanic" }

func (noPanic) Doc() string {
	return "no panic in library packages; return typed errors (cmd/ and tests may panic)"
}

func (noPanic) Run(prog *Program) []Diagnostic {
	builtin := types.Universe.Lookup("panic")
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		if pkg.Name == "main" {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "panic" {
					return true
				}
				if pkg.Info.Uses[id] != builtin {
					return true
				}
				diags = append(diags, Diagnostic{
					Pass: "nopanic",
					Pos:  prog.Fset.Position(call.Pos()),
					Message: "panic in library code; return a typed error so callers can degrade " +
						"gracefully (annotate deliberate constructor invariants with //skvet:ignore nopanic)",
				})
				return true
			})
		}
	}
	return diags
}
