package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// obsReg enforces the observability layer's one-family-one-meaning rule
// (PR 2): a metric name must keep a single kind (counter, gauge,
// histogram) and a single help string everywhere it is registered, the
// name and help must be compile-time constants (dynamic names defeat
// canonical registration and explode cardinality), and label arguments
// must be passed in canonical sorted-by-key order so every call site
// reads the way the registry renders.
//
// The runtime Registry panics on a kind mismatch; this pass moves that
// failure from first-request time to CI time and also catches the help
// and ordering drift the runtime tolerates silently.
type obsReg struct{}

func (obsReg) Name() string { return "obsreg" }

func (obsReg) Doc() string {
	return "obs metric families: constant name/help, one kind and help everywhere, sorted label keys"
}

// familyDecl remembers the first registration site of a metric family.
type familyDecl struct {
	kind string
	help string
	pos  token.Position
}

func (obsReg) Run(prog *Program) []Diagnostic {
	var diags []Diagnostic
	families := make(map[string]*familyDecl)
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				kind, ok := registryCall(pkg.Info, call)
				if !ok {
					return true
				}
				diags = append(diags, checkRegistration(prog, pkg, call, kind, families)...)
				return true
			})
		}
	}
	return diags
}

// registryCall reports whether call is (*obs.Registry).Counter, .Gauge,
// .FloatGauge, or .Histogram, returning the metric kind.
func registryCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || !pathHasSegments(fn.Pkg().Path(), "internal/obs") {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, isNamed := recv.(*types.Named)
	if !isNamed || named.Obj().Name() != "Registry" {
		return "", false
	}
	switch fn.Name() {
	case "Counter", "Gauge", "FloatGauge", "Histogram":
		return map[string]string{
			"Counter": "counter", "Gauge": "gauge",
			"FloatGauge": "floatgauge", "Histogram": "histogram",
		}[fn.Name()], true
	}
	return "", false
}

// constString returns the compile-time string value of e, if it has one.
func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func checkRegistration(prog *Program, pkg *Package, call *ast.CallExpr, kind string, families map[string]*familyDecl) []Diagnostic {
	var diags []Diagnostic
	pos := prog.Fset.Position(call.Pos())
	if len(call.Args) < 2 {
		return nil
	}

	name, nameOK := constString(pkg.Info, call.Args[0])
	if !nameOK {
		diags = append(diags, Diagnostic{
			Pass: "obsreg", Pos: pos,
			Message: "metric name must be a compile-time constant string (dynamic names defeat canonical registration)",
		})
	}
	help, helpOK := constString(pkg.Info, call.Args[1])
	if !helpOK {
		diags = append(diags, Diagnostic{
			Pass: "obsreg", Pos: pos,
			Message: "metric help must be a compile-time constant string",
		})
	}

	if nameOK && helpOK {
		if decl, seen := families[name]; seen {
			if decl.kind != kind {
				diags = append(diags, Diagnostic{
					Pass: "obsreg", Pos: pos,
					Message: fmt.Sprintf("metric %q re-registered as %s; first registered as %s at %s",
						name, kind, decl.kind, decl.pos),
				})
			}
			if decl.help != help {
				diags = append(diags, Diagnostic{
					Pass: "obsreg", Pos: pos,
					Message: fmt.Sprintf("metric %q re-registered with different help %q; first registered with %q at %s",
						name, help, decl.help, decl.pos),
				})
			}
		} else {
			families[name] = &familyDecl{kind: kind, help: help, pos: pos}
		}
	}

	// Histogram(name, help, bounds, labels...); Counter/Gauge(name, help, labels...).
	labelStart := 2
	if kind == "histogram" {
		labelStart = 3
	}
	if call.Ellipsis.IsValid() || len(call.Args) <= labelStart {
		return diags
	}
	prevKey := ""
	havePrev := false
	for _, arg := range call.Args[labelStart:] {
		key, known := labelKeyOf(pkg.Info, arg)
		if !known {
			continue
		}
		if havePrev && key <= prevKey {
			diags = append(diags, Diagnostic{
				Pass: "obsreg", Pos: prog.Fset.Position(arg.Pos()),
				Message: fmt.Sprintf("label %q out of canonical order (after %q); pass labels sorted by key",
					key, prevKey),
			})
		}
		prevKey, havePrev = key, true
	}
	return diags
}

// labelKeyOf extracts the constant key of an obs.L("key", v) argument or
// an obs.Label{Key: "key"} literal; variables come back unknown.
func labelKeyOf(info *types.Info, arg ast.Expr) (string, bool) {
	switch a := ast.Unparen(arg).(type) {
	case *ast.CallExpr:
		fn := calleeFunc(info, a)
		if fn == nil || fn.Pkg() == nil || !pathHasSegments(fn.Pkg().Path(), "internal/obs") || fn.Name() != "L" {
			return "", false
		}
		if len(a.Args) != 2 {
			return "", false
		}
		return constString(info, a.Args[0])
	case *ast.CompositeLit:
		for i, elt := range a.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Key" {
					return constString(info, kv.Value)
				}
				continue
			}
			if i == 0 {
				return constString(info, elt)
			}
		}
	}
	return "", false
}
