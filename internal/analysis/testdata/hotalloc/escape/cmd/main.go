// Command main holds a misplaced annotation: hotpath markers in main
// packages are not gated (go build would emit a binary) and are reported.
package main

import "fixturehot/hot"

// hottest is annotated in a main package.
//
//skvet:hotpath
func hottest(x uint64) uint64 { // want `//skvet:hotpath on hottest: main packages are not gated`
	return hot.Hash(x)
}

func main() {
	_ = hottest(1)
}
