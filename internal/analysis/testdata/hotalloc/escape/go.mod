module fixturehot

go 1.22
