// Package hot is the hotalloc golden fixture: annotated functions with an
// intentional heap escape, a moved-to-heap variable, a non-inlined leaf
// call, a cold error return (exempt), a suppressed escape, and a clean
// kernel.
package hot

import "fmt"

// Scratch owns a reusable buffer.
type Scratch struct {
	buf []byte
}

// Grow intentionally allocates per call: the make escapes through the
// return value.
//
//skvet:hotpath
func Grow(n int) []byte {
	buf := make([]byte, n) // want `heap escape in hotpath function Grow: make\(\[\]byte, n\) escapes to heap`
	return buf
}

// Boxed intentionally returns the address of a local: v is moved to the
// heap.
//
//skvet:hotpath
func Boxed() *int {
	v := 42 // want `heap escape in hotpath function Boxed: v escapes to heap`
	return &v
}

// ColdError boxes an error value, but only on the error return: the
// escape is exempt because a taken error return has left the hot path.
//
//skvet:hotpath
func ColdError(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("hot: negative length %d", n)
	}
	return n * 2, nil
}

// Warmup grows a caller-owned scratch buffer; the allocation is a
// deliberate one-time warm-up and is suppressed with an ignore directive.
//
//skvet:hotpath
func Warmup(sc *Scratch, n int) {
	if cap(sc.buf) < n {
		//skvet:ignore hotalloc one-time scratch growth, amortized across calls
		sc.buf = make([]byte, n)
	}
	sc.buf = sc.buf[:n]
}

// Clean is a pure byte kernel: no escapes, no calls, nothing to report.
//
//skvet:hotpath
func Clean(s []byte) int {
	n := 0
	for _, b := range s {
		if b == '\n' {
			n++
		}
	}
	return n
}
