package hot

// mix is a call-free leaf that deliberately outgrows the inlining budget,
// so the call below stays a real call.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 32
	x ^= x << 13
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 7
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 17
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	x ^= x << 5
	x *= 0x2545f4914f6cdd1d
	x ^= x >> 12
	x *= 0x369dea0f31a53f85
	x ^= x >> 27
	x *= 0x27d4eb2f165667c5
	x ^= x >> 33
	x ^= x << 21
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 11
	x *= 0xff51afd7ed558ccd
	x ^= x >> 23
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 3
	return x
}

// small is a tiny leaf the compiler always inlines: no finding.
func small(x uint64) uint64 {
	return x*0x9e3779b97f4a7c15 + 1
}

// Hash is annotated and calls both leaves: the inlined one is fine, the
// oversized one is a finding.
//
//skvet:hotpath
func Hash(x uint64) uint64 {
	x = small(x)
	return mix(x) // want `call to leaf function mix is not inlined in hotpath function Hash`
}
