// Package skql (fixture) holds positive and negative cases for the
// determinism pass over the query planner: cost estimates and EXPLAIN
// reports must be pure functions of block counts and the seed, with no
// wall clock, global rand, or map-order-dependent output.
package skql

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Positive cases.

func estimateWithClock(blocks float64) time.Duration {
	start := time.Now() // want `time\.Now reads the host wall clock`
	_ = blocks
	return time.Since(start) // want `time\.Since reads the host wall clock`
}

func samplePlan(paths []string) string {
	return paths[rand.Intn(len(paths))] // want `global rand\.Intn uses the process-wide unseeded source`
}

func renderDocFreqs(df map[string]int) {
	for term, n := range df { // want `map iteration order is randomized per run`
		fmt.Printf("df[%s]=%d\n", term, n)
	}
}

// Negative cases.

func modeledTime(blocks float64, randomAccess time.Duration) time.Duration {
	return time.Duration(blocks) * randomAccess
}

func seededWorkload(seed int64, n int) []int {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int, n)
	for i := range out {
		out[i] = rng.Intn(100)
	}
	return out
}

func renderSorted(df map[string]int) {
	terms := make([]string, 0, len(df))
	for t := range df { // aggregation only: keys collected then sorted
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, t := range terms {
		fmt.Printf("df[%s]=%d\n", t, df[t])
	}
}
