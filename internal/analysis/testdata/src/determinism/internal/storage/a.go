// Package storage (fixture) holds positive and negative cases for the
// determinism pass: no wall clock, global rand, or map-order-dependent
// output in modeled disk-time code.
package storage

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Positive cases.

func wallClock() time.Duration {
	start := time.Now()      // want `time\.Now reads the host wall clock`
	return time.Since(start) // want `time\.Since reads the host wall clock`
}

func globalRand() int {
	return rand.Intn(10) // want `global rand\.Intn uses the process-wide unseeded source`
}

func mapOrderPrint(costs map[string]int) {
	for name, c := range costs { // want `map iteration order is randomized per run`
		fmt.Println(name, c)
	}
}

type sink struct{}

func (sink) WriteString(s string) (int, error) { return len(s), nil }

func mapOrderWrite(costs map[string]int, w sink) {
	for name := range costs { // want `map iteration order is randomized per run`
		n, err := w.WriteString(name)
		_, _ = n, err
	}
}

// Negative cases.

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

func sortedEmit(costs map[string]int) {
	keys := make([]string, 0, len(costs))
	for k := range costs { // aggregation only: collecting keys to sort
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, costs[k])
	}
}

func sum(costs map[string]int) int {
	total := 0
	for _, c := range costs { // aggregation only: order-insensitive
		total += c
	}
	return total
}

func modelOnly(random, sequential uint64) time.Duration {
	return time.Duration(random)*8*time.Millisecond + time.Duration(sequential)*60*time.Microsecond
}
