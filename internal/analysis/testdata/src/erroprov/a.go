// Package erroprov holds positive and negative cases for the erroprov
// pass: storage errors must propagate, never be discarded.
package erroprov

import "spatialkeyword/internal/storage"

// Positive cases: every form of discarding a storage error.

func discardBlank(dev storage.Device, id storage.BlockID) {
	_ = dev.Write(id, nil) // want `error from storage\.Write assigned to _`
}

func discardTuple(dev storage.Device, id storage.BlockID) []byte {
	data, _ := dev.Read(id) // want `error from storage\.Read assigned to _`
	return data
}

func discardStmt(dev storage.Device, id storage.BlockID) {
	dev.Write(id, nil) // want `error from storage\.Write discarded \(call used as a statement\)`
}

func discardGo(dev storage.Device, id storage.BlockID) {
	go dev.Write(id, nil) // want `error from storage\.Write discarded \(go statement\)`
}

func discardDefer(dev storage.Device, id storage.BlockID) {
	defer dev.Write(id, nil) // want `error from storage\.Write discarded \(defer statement\)`
}

var _ = storage.NewDisk(512).Write(1, nil) // want `error from storage\.Write assigned to _`

// Negative cases: propagated, wrapped, checked, or error-free calls.

func propagate(dev storage.Device, id storage.BlockID) ([]byte, error) {
	return dev.Read(id)
}

func check(dev storage.Device, id storage.BlockID) error {
	if err := dev.Write(id, nil); err != nil {
		return err
	}
	return nil
}

func named(dev storage.Device, id storage.BlockID) {
	data, err := dev.ReadRun(id, 2)
	_ = data
	_ = err
}

func noError(dev storage.Device) storage.BlockID {
	dev.ResetStats() // no error result; nothing to discard
	return dev.Alloc()
}
