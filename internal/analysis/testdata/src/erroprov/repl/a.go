// Package repl holds erroprov cases shaped like the replication
// follower's staging path: a dropped storage error while staging a
// bootstrap snapshot silently corrupts the replica, so every storage error
// must propagate.
package repl

import "spatialkeyword/internal/storage"

// Positive cases: discarding device errors while staging snapshot blocks.

func stageSnapshot(dev storage.Device, blocks [][]byte) {
	for i, b := range blocks {
		dev.Write(storage.BlockID(i), b) // want `error from storage\.Write discarded \(call used as a statement\)`
	}
}

func verifyStaged(dev storage.Device, n int) [][]byte {
	var out [][]byte
	for i := 0; i < n; i++ {
		blk, _ := dev.Read(storage.BlockID(i)) // want `error from storage\.Read assigned to _`
		out = append(out, blk)
	}
	return out
}

// Negative cases: the staging path propagates every error.

func stageBlock(dev storage.Device, id storage.BlockID, b []byte) error {
	return dev.Write(id, b)
}

func readStaged(dev storage.Device, id storage.BlockID) ([]byte, error) {
	blk, err := dev.Read(id)
	if err != nil {
		return nil, err
	}
	return blk, nil
}
