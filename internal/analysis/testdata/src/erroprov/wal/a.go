// Package wal holds erroprov cases shaped like the write-ahead log's
// device calls: a dropped append or truncation error silently breaks the
// durability contract, so every storage error must propagate.
package wal

import "spatialkeyword/internal/storage"

// Positive cases: discarding device errors on the append and recovery
// paths.

func appendFrames(dev storage.Device, head storage.BlockID, frames [][]byte) {
	for i, f := range frames {
		dev.Write(head+storage.BlockID(i+1), f) // want `error from storage\.Write discarded \(call used as a statement\)`
	}
}

func truncateTail(dev storage.Device, blocks []storage.BlockID) {
	for _, id := range blocks {
		_ = dev.Write(id, nil) // want `error from storage\.Write assigned to _`
	}
}

func scanLog(dev storage.Device, head storage.BlockID) [][]byte {
	var out [][]byte
	for id := head + 1; ; id++ {
		blk, _ := dev.Read(id) // want `error from storage\.Read assigned to _`
		if blk == nil {
			return out
		}
		out = append(out, blk)
	}
}

// Negative cases: the log propagates, inspects, or wraps every error.

func appendFrame(dev storage.Device, id storage.BlockID, f []byte) error {
	return dev.Write(id, f)
}

func recoverRegion(dev storage.Device, head storage.BlockID, n int) ([]byte, error) {
	data, err := dev.ReadRun(head+1, n)
	if err != nil {
		return nil, err
	}
	return data, nil
}
