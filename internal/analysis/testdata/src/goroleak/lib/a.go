// Package lib exercises the goroleak pass: every accepted shutdown idiom
// has a clean example, and the leaky/dynamic shapes are flagged.
package lib

import (
	"context"
	"sync"
)

type Hub struct {
	done chan struct{}
	wg   sync.WaitGroup
}

// LeakyLoop spawns a goroutine that loops forever with no shutdown
// signal: nothing ever observes or releases it.
func LeakyLoop(events chan int) {
	go func() { // want `goroutine has no provable termination path`
		for {
			<-events
		}
	}()
}

// pump loops forever too; spawning a named leaky function is just as bad.
func pump(events chan int) {
	for {
		<-events
	}
}

func SpawnPump(events chan int) {
	go pump(events) // want `goroutine has no provable termination path`
}

// Dynamic spawns a caller-supplied function value: unresolvable, so
// unreviewable, so flagged.
func Dynamic(f func()) {
	go f() // want `dynamically-resolved function; termination cannot be proven`
}

// WaitGroupJoin is clean: the body signals its exit through wg.Done.
func WaitGroupJoin(h *Hub, events chan int) {
	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		for range events {
		}
	}()
}

// ContextAware is clean: the loop selects on ctx.Done().
func ContextAware(ctx context.Context, events chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-events:
			}
		}
	}()
}

// DoneChannel is clean: receiving from a chan struct{} is the
// signal-channel convention.
func DoneChannel(h *Hub, events chan int) {
	go func() {
		for {
			select {
			case <-h.done:
				return
			case <-events:
			}
		}
	}()
}

// RangeOverChannel is clean: the loop ends when the producer closes the
// channel.
func RangeOverChannel(events chan int) {
	go func() {
		for range events {
		}
	}()
}

// StraightLine is clean: a loop-free body terminates when its calls do —
// the `go func() { errc <- f() }()` idiom.
func StraightLine(errc chan error, f func() error) {
	go func() { errc <- f() }()
}

// LocalLiteral is clean: a local variable assigned exactly one function
// literal resolves statically, and the literal ranges over a channel.
func LocalLiteral(events chan int) {
	drain := func() {
		for range events {
		}
	}
	go drain()
}

// run is a named body with both a WaitGroup join and a done-channel
// select; Method spawns it as a method-style named function.
func run(h *Hub) {
	defer h.wg.Done()
	for {
		select {
		case <-h.done:
			return
		}
	}
}

func Method(h *Hub) {
	h.wg.Add(1)
	go run(h)
}

// Rebound assigns the spawned variable twice: it could hold either
// literal at spawn time, so resolution refuses and the spawn is flagged.
func Rebound(events chan int, leaky bool) {
	body := func() {
		for range events {
		}
	}
	if leaky {
		body = func() {
			for {
				<-events
			}
		}
	}
	go body() // want `dynamically-resolved function; termination cannot be proven`
}
