// Package ignore exercises the skvet:ignore directive machinery with the
// nopanic pass: same-line suppression, line-above suppression, unknown
// pass names, and a missing pass list.
package ignore

func sameLine() {
	panic("suppressed") //skvet:ignore nopanic deliberate: exercised by tests
}

func lineAbove() {
	//skvet:ignore nopanic deliberate: exercised by tests
	panic("suppressed")
}

func multiPass() {
	//skvet:ignore nopanic,erroprov two passes at once
	panic("suppressed")
}

func notSuppressed() {
	panic("kaboom") // want `panic in library code`
}

//skvet:ignore nosuchpass // want `skvet:ignore names unknown pass "nosuchpass"`
func unknownPass() {}

// The v2 pass names are known: directives naming them parse cleanly.
//
//skvet:ignore hotalloc,lockorder,goroleak suppresses nothing here, but parses
func v2PassNames() {}

// A typo in a v2 pass name must not rot silently.
//
//skvet:ignore hotallocs stale directive // want `skvet:ignore names unknown pass "hotallocs"`
func stalePassName() {}

//skvet:ignore // want `skvet:ignore needs a comma-separated pass list`
func missingList() {}
