// Package fence holds positive and negative cases for the lockio pass in
// the fence registry: Apply runs under the registry's write lock on every
// acknowledged mutation, so device I/O there adds disk latency to every
// write the engine serves. Evaluation must stay a pure function of the
// mutation stream already in memory.
package fence

import (
	"sync"

	"spatialkeyword/internal/storage"
)

// R is a stand-in for the registry: a write lock guarding the fence set
// plus a device a hypothetical implementation might be tempted to consult.
type R struct {
	mu      sync.RWMutex
	matched map[uint64][]uint64
	dev     storage.Device
	head    storage.BlockID
}

// Positive cases.

func (r *R) rehydrateUnderLock(id uint64) ([]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	// Loading the object's stored text during evaluation: the exact
	// temptation the pure-function-of-the-stream contract forbids.
	return r.dev.Read(r.head) // want `storage I/O \(Read\) in rehydrateUnderLock while holding r\.mu`
}

func (r *R) persistHistoryUnderLock(buf []byte) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.dev.Write(r.head, buf) // want `storage I/O \(Write\) in persistHistoryUnderLock while holding r\.mu`
}

// Negative cases.

func (r *R) apply(id uint64) int {
	// The real shape: evaluation touches only in-memory state.
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.matched[id])
}

func (r *R) snapshotOutsideLock() ([]byte, error) {
	r.mu.RLock()
	head := r.head
	r.mu.RUnlock()
	return r.dev.Read(head)
}
