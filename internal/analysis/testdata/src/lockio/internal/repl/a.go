// Package repl holds positive and negative cases for the lockio pass in
// the replication layer: the leader's ship-buffer mutex sits on the engine
// write path and on every follower's log fetch, so device I/O under it
// stalls replication and writes together.
package repl

import (
	"sync"

	"spatialkeyword/internal/storage"
)

// L is a stand-in for the leader: a mutex guarding per-stream ship buffers
// plus a device the snapshot files live on.
type L struct {
	mu      sync.Mutex
	streams [][]byte
	dev     storage.Device
	head    storage.BlockID
}

// Positive cases.

func (l *L) snapshotUnderLock() ([]byte, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dev.ReadRun(l.head, 8) // want `storage I/O \(ReadRun\) in snapshotUnderLock while holding l\.mu`
}

func (l *L) persistBufferUnderLock(stream int) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dev.Write(l.head, l.streams[stream]) // want `storage I/O \(Write\) in persistBufferUnderLock while holding l\.mu`
}

// Negative cases.

func (l *L) shipBuffer(stream int) []byte {
	// The hook path: staging a record is memory-only under the mutex.
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.streams[stream]
}

func (l *L) serveSnapshot() ([]byte, error) {
	// Snapshot bytes are read with the ship-buffer mutex released; the
	// generation files are immutable, so no lock is needed.
	l.mu.Lock()
	head := l.head
	l.mu.Unlock()
	return l.dev.ReadRun(head, 8)
}

func (l *L) bufferDepth() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dev.NumBlocks() // metadata, not modeled I/O
}
