// Package shard holds positive and negative cases for the lockio pass:
// no device I/O while a sync mutex is held.
package shard

import (
	"sync"

	"spatialkeyword/internal/storage"
)

// S is a stand-in for a shard: a mutex guarding a device.
type S struct {
	mu  sync.RWMutex
	wmu sync.Mutex
	dev storage.Device
}

// Positive cases.

func (s *S) readUnderDeferredRLock(id storage.BlockID) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dev.Read(id) // want `storage I/O \(Read\) in readUnderDeferredRLock while holding s\.mu`
}

func (s *S) writeUnderLock(id storage.BlockID) error {
	s.wmu.Lock()
	err := s.dev.Write(id, nil) // want `storage I/O \(Write\) in writeUnderLock while holding s\.wmu`
	s.wmu.Unlock()
	return err
}

func (s *S) runUnderBothLocks(id storage.BlockID) ([]byte, error) {
	s.mu.RLock()
	s.wmu.Lock()
	defer s.wmu.Unlock()
	defer s.mu.RUnlock()
	return s.dev.ReadRun(id, 2) // want `storage I/O \(ReadRun\) in runUnderBothLocks while holding s\.mu, s\.wmu`
}

// Negative cases.

func (s *S) readAfterUnlock(id storage.BlockID) ([]byte, error) {
	s.mu.RLock()
	n := s.dev.NumBlocks() // metadata, not I/O
	s.mu.RUnlock()
	_ = n
	return s.dev.Read(id)
}

func (s *S) goroutineDoesNotInherit(id storage.BlockID) {
	s.mu.Lock()
	go func() {
		data, err := s.dev.Read(id) // separate goroutine: does not block the lock holder
		_, _ = data, err
	}()
	s.mu.Unlock()
}

func (s *S) allocUnderLock() storage.BlockID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dev.Alloc() // allocation is bookkeeping, not modeled I/O
}
