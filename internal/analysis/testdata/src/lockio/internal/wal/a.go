// Package wal holds positive and negative cases for the lockio pass in the
// write-ahead log: group commit must release the appender's mutex before
// touching the device, or every concurrent append serializes behind the
// disk.
package wal

import (
	"sync"

	"spatialkeyword/internal/storage"
)

// A is a stand-in for the appender: a mutex guarding staged frames and a
// log device.
type A struct {
	mu     sync.Mutex
	staged []byte
	dev    storage.Device
	head   storage.BlockID
}

// Positive cases.

func (a *A) commitUnderLock() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	batch := a.staged
	a.staged = nil
	return a.dev.Write(a.head, batch) // want `storage I/O \(Write\) in commitUnderLock while holding a\.mu`
}

func (a *A) recoverUnderLock() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dev.ReadRun(a.head, 4) // want `storage I/O \(ReadRun\) in recoverUnderLock while holding a\.mu`
}

// Negative cases.

func (a *A) groupCommit() error {
	a.mu.Lock()
	batch := a.staged
	a.staged = nil
	a.mu.Unlock()
	// The leader writes with the mutex released; followers wait on a
	// condition variable, not the device.
	return a.dev.Write(a.head, batch)
}

func (a *A) stageOnly(p []byte) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.staged = append(a.staged, p...) // staging is memory-only
}

func (a *A) sizeUnderLock() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dev.NumBlocks() // metadata, not modeled I/O
}
