// Package ab exercises the lockorder pass with a direct two-lock cycle:
// one function acquires A then B, another acquires B then A. Each closing
// acquisition is reported at its site.
package ab

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var a A
var b B

// AB locks a.mu then b.mu — one direction of the cycle.
func AB() {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock() // want `acquiring ab\.B\.mu while holding ab\.A\.mu closes a lock-order cycle: ab\.A\.mu -> ab\.B\.mu -> ab\.A\.mu`
	b.mu.Unlock()
}

// BA locks b.mu then a.mu — the reverse direction.
func BA() {
	b.mu.Lock()
	defer b.mu.Unlock()
	a.mu.Lock() // want `acquiring ab\.A\.mu while holding ab\.B\.mu closes a lock-order cycle: ab\.B\.mu -> ab\.A\.mu -> ab\.B\.mu`
	a.mu.Unlock()
}

// ReleasedFirst drops a.mu before taking b.mu: no ordering edge, even
// though both locks appear in one body.
func ReleasedFirst() {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

// TwoInstances nests the same field on two different values. Lock
// identity is per type+field, so this is a self-edge — deliberately not
// reported (parent/child and multi-shard locking is legal).
func TwoInstances(x, y *A) {
	x.mu.Lock()
	y.mu.Lock()
	y.mu.Unlock()
	x.mu.Unlock()
}

// Spawner holds a.mu while a goroutine takes b.mu. The spawner does not
// block on the goroutine, so no edge — and the goroutine body is loop-free
// so goroleak is satisfied too.
func Spawner(done chan struct{}) {
	a.mu.Lock()
	go func() {
		b.mu.Lock()
		b.mu.Unlock()
		done <- struct{}{}
	}()
	a.mu.Unlock()
}

// localOnly uses a function-local mutex: locals are excluded from the
// graph (a cycle needs two paths reaching the same two locks).
func localOnly() {
	var mu sync.Mutex
	mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	mu.Unlock()
}
