// Package wal exercises the interprocedural half of lockorder: the cycle
// only appears once callee lock summaries are propagated — neither
// function acquires both locks directly.
package wal

import "sync"

type W struct{ mu sync.RWMutex }
type F struct{ mu sync.Mutex }

var w W
var f F

func lockF() {
	f.mu.Lock()
	f.mu.Unlock()
}

func lockW() {
	w.mu.Lock()
	w.mu.Unlock()
}

// WThenF holds w.mu across a call that acquires f.mu.
func WThenF() {
	w.mu.RLock()
	defer w.mu.RUnlock()
	lockF() // want `acquiring wal\.F\.mu while holding wal\.W\.mu \(via call to lockF\) closes a lock-order cycle`
}

// FThenW holds f.mu across a two-hop chain that acquires w.mu.
func FThenW() {
	f.mu.Lock()
	defer f.mu.Unlock()
	indirectW() // want `acquiring wal\.W\.mu while holding wal\.F\.mu \(via call to indirectW -> lockW\) closes a lock-order cycle`
}

func indirectW() {
	lockW()
}

// NotHeld calls the lock-acquiring helpers with nothing held: no edges.
func NotHeld() {
	lockF()
	lockW()
}
