// Command tool is the nopanic negative case: package main may panic.
package main

func main() {
	panic("binaries may crash loudly") // no diagnostic: package main is exempt
}
