// Package lib holds positive and negative cases for the nopanic pass:
// library packages must return errors, not panic.
package lib

import "errors"

// Positive case.

func Clamp(x int) int {
	if x < 0 {
		panic("negative input") // want `panic in library code`
	}
	return x
}

// Negative cases.

func ClampErr(x int) (int, error) {
	if x < 0 {
		return 0, errors.New("negative input")
	}
	return x, nil
}

// NewRing panics only on a programmer-error invariant, annotated as a
// deliberate exception.
func NewRing(n int) []int {
	if n <= 0 {
		//skvet:ignore nopanic constructor invariant: misuse is a programmer error
		panic("lib: ring size must be positive")
	}
	return make([]int, n)
}

func Recoverable() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = errors.New("recovered")
		}
	}()
	return nil
}
