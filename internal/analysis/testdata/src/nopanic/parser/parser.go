// Package parser (fixture) holds parser-shaped cases for the nopanic
// pass: a recursive-descent parser must surface syntax errors as typed
// errors with positions, never tear down the caller.
package parser

import "fmt"

// SyntaxError is the typed error a well-behaved parser returns.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("pos %d: %s", e.Pos, e.Msg) }

// Positive case.

func expectPanic(tokens []string, i int, want string) {
	if i >= len(tokens) || tokens[i] != want {
		panic("unexpected token") // want `panic in library code`
	}
}

// Negative case: the same check as a typed error.

func expect(tokens []string, i int, want string) error {
	if i >= len(tokens) || tokens[i] != want {
		return &SyntaxError{Pos: i, Msg: "expected " + want}
	}
	return nil
}
