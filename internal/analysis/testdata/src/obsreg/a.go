// Package obsreg holds positive and negative cases for the obsreg pass:
// one metric family, one meaning, canonical label order.
package obsreg

import "spatialkeyword/internal/obs"

// Negative cases: consistent families, sorted labels.

func good(r *obs.Registry) {
	r.Counter("sk_fixture_good_total", "A counter.", obs.L("kind", "x"), obs.L("shard", "0")).Inc()
	r.Counter("sk_fixture_good_total", "A counter.", obs.L("kind", "y"), obs.L("shard", "1")).Inc()
	r.Gauge("sk_fixture_depth", "A gauge.").Set(1)
	r.Histogram("sk_fixture_lat", "A histogram.", []float64{1, 2}, obs.L("op", "topk")).Observe(1)
}

// Positive cases.

func badOrder(r *obs.Registry) {
	r.Counter("sk_fixture_order_total", "Order.", obs.L("shard", "0"), obs.L("kind", "x")).Inc() // want `label "kind" out of canonical order \(after "shard"\)`
}

func badKind(r *obs.Registry) {
	r.Counter("sk_fixture_dup_total", "Dup.").Inc()
	r.Gauge("sk_fixture_dup_total", "Dup.").Set(1) // want `metric "sk_fixture_dup_total" re-registered as gauge`
}

func badHelp(r *obs.Registry) {
	r.Counter("sk_fixture_help_total", "One meaning.").Inc()
	r.Counter("sk_fixture_help_total", "Another meaning.").Inc() // want `re-registered with different help`
}

func badDynamicName(r *obs.Registry, name string) {
	r.Counter(name, "Dynamic.").Inc() // want `metric name must be a compile-time constant string`
}

func badDupKey(r *obs.Registry) {
	r.Counter("sk_fixture_dupkey_total", "Dup key.", obs.L("shard", "0"), obs.L("shard", "1")).Inc() // want `label "shard" out of canonical order \(after "shard"\)`
}

// The fence-metrics shape: one counter family fanned out per event kind at
// registration time, plus a bare gauge — must stay clean.
func goodFenceShape(r *obs.Registry) {
	r.Gauge("sk_fence_registered", "Standing queries currently registered.").Set(0)
	r.Counter("sk_fence_events_total", "Fence events emitted, by kind.", obs.L("kind", "enter")).Inc()
	r.Counter("sk_fence_events_total", "Fence events emitted, by kind.", obs.L("kind", "leave")).Inc()
	r.Counter("sk_fence_events_total", "Fence events emitted, by kind.", obs.L("kind", "update")).Inc()
}

// Drifting one kind's help string forks the family's meaning.
func badFenceHelpDrift(r *obs.Registry) {
	r.Counter("sk_fence_events_total", "Events, but described differently.", obs.L("kind", "enter")).Inc() // want `re-registered with different help`
}
