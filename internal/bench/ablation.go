package bench

import (
	"encoding/csv"
	"fmt"
	"io"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/storage"
)

// WriteCSV renders the table as CSV (header row then data rows), for
// downstream plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CacheAblation measures how an LRU buffer pool changes the picture — a
// design question the paper leaves open by running everything uncached.
// The environment is rebuilt per cache size (the pool must wrap the devices
// before the structures are built); query workload and dataset are held
// fixed through the shared seed.
//
// Expected: caching narrows every method's disk cost (upper tree levels pin
// themselves in the pool) but does not change the ranking — the IR²-Tree's
// advantage is in touching fewer distinct blocks, which no pool recovers
// for the baselines until it approaches the dataset size.
func CacheAblation(base BuildConfig, cacheSizes []int, k, numKeywords, nQueries int, seed int64, cm storage.CostModel) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Buffer-pool ablation — %s dataset, k=%d, %d keywords (extension)",
			base.Spec.Name, k, numKeywords),
		Columns: measurementColumns,
		Notes: []string{
			"cache=0 is the paper's configuration (every access is an I/O);",
			"pools shrink all methods' misses but preserve the method ranking",
		},
	}
	for _, size := range cacheSizes {
		cfg := base
		cfg.CacheBlocks = size
		env, err := BuildEnv(cfg)
		if err != nil {
			return nil, err
		}
		queries, err := env.MakeQueries(nQueries, k, numKeywords, seed)
		if err != nil {
			return nil, err
		}
		// Warm the pools with one pass so the measurement reflects steady
		// state rather than compulsory misses from the build.
		for _, m := range AllMethods {
			if !env.has(m) {
				continue
			}
			for _, q := range queries {
				if _, _, err := env.RunQuery(m, q); err != nil {
					return nil, err
				}
			}
			meas, err := env.Measure(m, queries, cm)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, t.measurementRow(fmt.Sprintf("cache=%d", size), meas))
		}
	}
	return t, nil
}

// CapacityAblation sweeps the R-Tree node capacity (fanout), an implicit
// design choice in the paper (113 children from the 4 KB block). Small
// fanouts make deep trees with more random node reads; very large fanouts
// make shallow trees whose big nodes cost many sequential block reads each.
func CapacityAblation(base BuildConfig, capacities []int, k, numKeywords, nQueries int, seed int64, cm storage.CostModel) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Node-capacity ablation — %s dataset, k=%d, %d keywords (extension)",
			base.Spec.Name, k, numKeywords),
		Columns: append([]string{"height"}, measurementColumns...),
		Notes: []string{
			"capacity 0 = derived from the block size (the paper's setting)",
		},
	}
	for _, capacity := range capacities {
		cfg := base
		cfg.MaxEntries = capacity
		cfg.Methods = []Method{MethodIR2, MethodMIR2}
		env, err := BuildEnv(cfg)
		if err != nil {
			return nil, err
		}
		queries, err := env.MakeQueries(nQueries, k, numKeywords, seed)
		if err != nil {
			return nil, err
		}
		for _, m := range cfg.Methods {
			meas, err := env.Measure(m, queries, cm)
			if err != nil {
				return nil, err
			}
			row := t.measurementRow(fmt.Sprintf("cap=%d", capacity), meas)
			var h int
			if m == MethodIR2 {
				h = env.IR2.RTree().Height()
			} else {
				h = env.MIR2.RTree().Height()
			}
			t.Rows = append(t.Rows, append([]string{fmt.Sprintf("%d", h)}, row...))
		}
	}
	return t, nil
}

// BulkBuildAblation contrasts the paper's insert-based construction with
// STR bulk loading (extension): total build I/O and the query cost of the
// resulting trees.
func BulkBuildAblation(base BuildConfig, k, numKeywords, nQueries int, seed int64, cm storage.CostModel) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Construction ablation — %s dataset (extension: repeated Insert vs STR bulk load)",
			base.Spec.Name),
		Columns: []string{"construction", "method", "buildRandBlk", "buildSeqBlk", "nodes", "queryTime", "queryRandBlk"},
	}
	for _, bulk := range []bool{false, true} {
		cfg := base
		cfg.Methods = []Method{MethodIR2}
		label := "insert"
		if bulk {
			label = "str-bulk"
		}
		var env *Env
		var err error
		if bulk {
			env, err = buildEnvBulk(cfg)
		} else {
			env, err = BuildEnv(cfg)
		}
		if err != nil {
			return nil, err
		}
		buildIO := env.IR2Disk.Stats()
		queries, err := env.MakeQueries(nQueries, k, numKeywords, seed)
		if err != nil {
			return nil, err
		}
		meas, err := env.Measure(MethodIR2, queries, cm)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			label, MethodIR2.String(),
			fmt.Sprintf("%d", buildIO.Random()),
			fmt.Sprintf("%d", buildIO.Sequential()),
			fmt.Sprintf("%d", env.IR2.RTree().NumNodes()),
			fmtDur(meas.TotalTime()),
			fmtF(meas.AvgRandom),
		})
	}
	return t, nil
}

// buildEnvBulk is BuildEnv with the IR²-Tree constructed by STR bulk
// loading instead of repeated inserts.
func buildEnvBulk(cfg BuildConfig) (*Env, error) {
	only := cfg
	only.Methods = []Method{} // dataset only
	env, err := BuildEnv(only)
	if err != nil {
		return nil, err
	}
	env.Cfg = cfg
	env.IR2Disk = storage.NewDisk(storage.DefaultBlockSize)
	tree, err := core.New(env.IR2Disk, env.Store, core.Options{
		LeafSignature: env.leafConfig(),
		MaxEntries:    cfg.MaxEntries,
	})
	if err != nil {
		return nil, err
	}
	if err := tree.BuildBulk(); err != nil {
		return nil, err
	}
	env.IR2 = tree
	return env, nil
}
