package bench

import (
	"fmt"
	"strings"
	"testing"

	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/storage"
)

func TestWriteCSV(t *testing.T) {
	tbl := &Table{
		Title:   "x",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}, {"3", "comma, quoted"}},
	}
	var sb strings.Builder
	if err := tbl.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "a,b\n1,2\n") {
		t.Errorf("csv = %q", out)
	}
	if !strings.Contains(out, `"comma, quoted"`) {
		t.Errorf("csv quoting missing: %q", out)
	}
}

func TestCacheAblation(t *testing.T) {
	base := BuildConfig{Spec: dataset.Restaurants(0.001), SigBytes: 8}
	tbl, err := CacheAblation(base, []int{0, 4096}, 5, 2, 5, 41, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2*len(AllMethods) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// With a pool holding thousands of blocks over a ~1k-object dataset,
	// misses must drop dramatically versus uncached. Compare the IR2 rows.
	var uncached, cached string
	for _, row := range tbl.Rows {
		if row[1] == "IR2-Tree" {
			if row[0] == "cache=0" {
				uncached = row[5] // randBlk column
			} else {
				cached = row[5]
			}
		}
	}
	if uncached == "" || cached == "" {
		t.Fatal("missing rows")
	}
	if cached >= uncached && cached != "0.0" {
		// String compare is crude; just require the cached value starts
		// lower or is zero. Parse properly:
		var cu, cc float64
		if _, err := sscan(uncached, &cu); err != nil {
			t.Fatal(err)
		}
		if _, err := sscan(cached, &cc); err != nil {
			t.Fatal(err)
		}
		if cc >= cu {
			t.Errorf("cache did not reduce misses: %v -> %v", cu, cc)
		}
	}
}

func sscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

func TestCapacityAblation(t *testing.T) {
	base := BuildConfig{Spec: dataset.Restaurants(0.001), SigBytes: 8}
	tbl, err := CapacityAblation(base, []int{8, 64}, 5, 2, 5, 43, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Smaller capacity → taller tree.
	if tbl.Rows[0][0] <= tbl.Rows[2][0] {
		t.Errorf("capacity 8 height %s not above capacity 64 height %s", tbl.Rows[0][0], tbl.Rows[2][0])
	}
}

func TestBulkBuildAblation(t *testing.T) {
	base := BuildConfig{Spec: dataset.Restaurants(0.001), SigBytes: 8}
	tbl, err := BulkBuildAblation(base, 5, 2, 5, 47, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var insertIO, bulkIO float64
	if _, err := sscan(tbl.Rows[0][2], &insertIO); err != nil {
		t.Fatal(err)
	}
	if _, err := sscan(tbl.Rows[1][2], &bulkIO); err != nil {
		t.Fatal(err)
	}
	if bulkIO >= insertIO {
		t.Errorf("bulk build random I/O %v not below insert build %v", bulkIO, insertIO)
	}
}
