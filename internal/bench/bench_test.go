package bench

import (
	"strings"
	"testing"

	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/storage"
)

// smallEnv builds a quick four-structure environment for harness tests.
func smallEnv(t *testing.T) *Env {
	t.Helper()
	e, err := BuildEnv(BuildConfig{
		Spec:     dataset.Restaurants(0.002), // 912 objects
		SigBytes: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestBuildEnvAllStructures(t *testing.T) {
	e := smallEnv(t)
	for _, m := range AllMethods {
		if !e.has(m) {
			t.Errorf("method %s not built", m)
		}
	}
	if e.Store.NumObjects() != e.Stats.Objects {
		t.Errorf("store %d objects, stats %d", e.Store.NumObjects(), e.Stats.Objects)
	}
	if e.IR2.Len() != e.Stats.Objects || e.MIR2.Len() != e.Stats.Objects {
		t.Error("trees incomplete")
	}
	if err := e.IR2.RTree().CheckInvariants(); err != nil {
		t.Errorf("IR2 invariants: %v", err)
	}
	if err := e.MIR2.RTree().CheckInvariants(); err != nil {
		t.Errorf("MIR2 invariants: %v", err)
	}
}

func TestBuildEnvSelectedMethods(t *testing.T) {
	e, err := BuildEnv(BuildConfig{
		Spec:     dataset.Restaurants(0.001),
		SigBytes: 8,
		Methods:  []Method{MethodIR2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !e.has(MethodIR2) || e.has(MethodRTree) || e.has(MethodIIO) || e.has(MethodMIR2) {
		t.Error("method selection ignored")
	}
	if _, err := e.Measure(MethodRTree, nil, storage.DefaultCostModel()); err == nil {
		t.Error("measuring an unbuilt method succeeded")
	}
}

func TestBuildEnvValidation(t *testing.T) {
	if _, err := BuildEnv(BuildConfig{Spec: dataset.Restaurants(0.001)}); err == nil {
		t.Error("SigBytes 0 accepted")
	}
}

func TestMakeQueriesDeterministicAndAnswerable(t *testing.T) {
	e := smallEnv(t)
	q1, err := e.MakeQueries(20, 10, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := e.MakeQueries(20, 10, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range q1 {
		if !q1[i].P.Equal(q2[i].P) || strings.Join(q1[i].Keywords, ",") != strings.Join(q2[i].Keywords, ",") {
			t.Fatalf("query %d differs across identical seeds", i)
		}
		if q1[i].K != 10 || len(q1[i].Keywords) != 2 {
			t.Fatalf("query %d malformed: %+v", i, q1[i])
		}
		if q1[i].Keywords[0] == q1[i].Keywords[1] {
			t.Fatalf("duplicate keywords in query %d", i)
		}
	}
	// Most frequent-band conjunctions should have at least one answer.
	withResults := 0
	for _, q := range q1 {
		n, _, err := e.RunQuery(MethodIIO, q)
		if err != nil {
			t.Fatal(err)
		}
		if n > 0 {
			withResults++
		}
	}
	if withResults < len(q1)/2 {
		t.Errorf("only %d/%d workload queries have answers", withResults, len(q1))
	}
}

func TestAllMethodsAgreeOnWorkload(t *testing.T) {
	e := smallEnv(t)
	queries, err := e.MakeQueries(15, 5, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range queries {
		var counts [4]int
		for i, m := range AllMethods {
			n, _, err := e.RunQuery(m, q)
			if err != nil {
				t.Fatal(err)
			}
			counts[i] = n
		}
		for i := 1; i < 4; i++ {
			if counts[i] != counts[0] {
				t.Fatalf("query %d: result counts diverge: %v", qi, counts)
			}
		}
	}
}

func TestMeasureProducesSaneNumbers(t *testing.T) {
	e := smallEnv(t)
	queries, err := e.MakeQueries(10, 5, 2, 13)
	if err != nil {
		t.Fatal(err)
	}
	cm := storage.DefaultCostModel()
	for _, m := range AllMethods {
		meas, err := e.Measure(m, queries, cm)
		if err != nil {
			t.Fatal(err)
		}
		if meas.Queries != 10 {
			t.Errorf("%s: queries = %d", m, meas.Queries)
		}
		if meas.AvgRandom <= 0 {
			t.Errorf("%s: no random accesses measured", m)
		}
		if meas.AvgDiskTime <= 0 {
			t.Errorf("%s: no disk time", m)
		}
		if meas.TotalTime() < meas.AvgDiskTime {
			t.Errorf("%s: total < disk", m)
		}
	}
	// Empty workload.
	meas, err := e.Measure(MethodIR2, nil, cm)
	if err != nil || meas.Queries != 0 {
		t.Errorf("empty workload: %+v, %v", meas, err)
	}
}

func TestIR2BeatsRTreeBaseline(t *testing.T) {
	// The headline result: IR² random accesses well below the R-Tree
	// baseline's on a frequent-band conjunctive workload.
	e := smallEnv(t)
	queries, err := e.MakeQueries(20, 10, 2, 17)
	if err != nil {
		t.Fatal(err)
	}
	cm := storage.DefaultCostModel()
	rt, err := e.Measure(MethodRTree, queries, cm)
	if err != nil {
		t.Fatal(err)
	}
	ir2, err := e.Measure(MethodIR2, queries, cm)
	if err != nil {
		t.Fatal(err)
	}
	if ir2.AvgObjects >= rt.AvgObjects {
		t.Errorf("IR2 objects %g >= R-Tree %g", ir2.AvgObjects, rt.AvgObjects)
	}
	if ir2.AvgRandom >= rt.AvgRandom {
		t.Errorf("IR2 random %g >= R-Tree %g", ir2.AvgRandom, rt.AvgRandom)
	}
}

func TestVaryKTable(t *testing.T) {
	e := smallEnv(t)
	tbl, err := VaryK(e, []int{1, 10}, 2, 5, 19, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2*len(AllMethods) {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Vary k", "R-Tree", "IIO", "IR2-Tree", "MIR2-Tree", "k=1", "k=10"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestVaryKeywordsTable(t *testing.T) {
	e := smallEnv(t)
	tbl, err := VaryKeywords(e, []int{1, 3}, 5, 5, 23, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2*len(AllMethods) {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestVarySigLenTable(t *testing.T) {
	e := smallEnv(t)
	tbl, err := VarySigLen(e, []int{2, 16}, 5, 2, 5, 29, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// 2 baseline rows + 2 lengths × 2 tree methods.
	if len(tbl.Rows) != 2+2*2 {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "sig=16B") {
		t.Error("missing sweep label")
	}
}

func TestTables1And2(t *testing.T) {
	e := smallEnv(t)
	t1 := Table1(e)
	if len(t1.Rows) != 1 || t1.Rows[0][0] != "restaurants" {
		t.Errorf("Table1 rows: %v", t1.Rows)
	}
	t2 := Table2(e)
	if len(t2.Rows) != 1 {
		t.Errorf("Table2 rows: %v", t2.Rows)
	}
	for i := 1; i <= 4; i++ {
		if t2.Rows[0][i] == "-" {
			t.Errorf("Table2 column %d empty", i)
		}
	}
}

func TestMaintenanceTable(t *testing.T) {
	e := smallEnv(t)
	tbl, err := Maintenance(e, 5, 31, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	// 3 methods × 2 ops.
	if len(tbl.Rows) != 6 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Trees must stay consistent after the batch.
	if err := e.IR2.RTree().CheckInvariants(); err != nil {
		t.Errorf("IR2 after maintenance: %v", err)
	}
	if err := e.MIR2.RTree().CheckInvariants(); err != nil {
		t.Errorf("MIR2 after maintenance: %v", err)
	}
}

func TestSelectivityTable(t *testing.T) {
	e := smallEnv(t)
	tbl, err := Selectivity(e, []int{0, 100}, 5, 1, 5, 37, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2*len(AllMethods) {
		t.Errorf("rows = %d", len(tbl.Rows))
	}
}

func TestKeywordsAtRank(t *testing.T) {
	e := smallEnv(t)
	kw := e.KeywordsAtRank(0, 2)
	if len(kw) != 2 {
		t.Fatalf("kw = %v", kw)
	}
	// Rank 0 is the most frequent word.
	if e.Stats.DocFreq[kw[0]] < e.Stats.DocFreq[kw[1]] {
		t.Error("rank order violated")
	}
	// Out-of-range rank clamps.
	tail := e.KeywordsAtRank(1<<20, 2)
	if len(tail) == 0 {
		t.Error("tail rank returned nothing")
	}
	if neg := e.KeywordsAtRank(-5, 1); len(neg) != 1 || neg[0] != kw[0] {
		t.Error("negative rank not clamped to head")
	}
}
