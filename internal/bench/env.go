// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 6). It builds the four compared
// structures — R-Tree baseline, Inverted Index Only, IR²-Tree, and
// MIR²-Tree — over a synthetic dataset, generates seeded query workloads,
// and measures per-query execution time, random and sequential disk block
// accesses, and object accesses, exactly the metrics of Figures 9–14 and
// Tables 1–2.
package bench

import (
	"fmt"
	"math/rand"
	"time"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/invindex"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/obs"
	"spatialkeyword/internal/sigfile"
	"spatialkeyword/internal/storage"
)

// Method identifies one of the four compared algorithms.
type Method int

// The four methods of the evaluation, plus the two durability arms of the
// ingest experiment, the two catch-up arms of the replication experiment,
// the fence-churn arm, and the two hot-path arms (which compare write-path
// strategies or engine implementations, not query algorithms, and are
// therefore excluded from AllMethods).
const (
	MethodRTree Method = iota
	MethodIIO
	MethodIR2
	MethodMIR2
	MethodSavePerOp
	MethodWALGroup
	MethodReplSnapshot
	MethodReplShip
	MethodFenceWAL
	MethodHotLegacy
	MethodHotPacked
	MethodSKQLPlanner
	MethodSKQLIR2
	MethodSKQLIIO
)

// AllMethods lists the methods in the paper's presentation order.
var AllMethods = []Method{MethodRTree, MethodIIO, MethodIR2, MethodMIR2}

// String returns the paper's name for the method.
func (m Method) String() string {
	switch m {
	case MethodRTree:
		return "R-Tree"
	case MethodIIO:
		return "IIO"
	case MethodIR2:
		return "IR2-Tree"
	case MethodMIR2:
		return "MIR2-Tree"
	case MethodSavePerOp:
		return "Save/op"
	case MethodWALGroup:
		return "WAL"
	case MethodReplSnapshot:
		return "Snapshot"
	case MethodReplShip:
		return "LogShip"
	case MethodFenceWAL:
		return "Fence+WAL"
	case MethodHotLegacy:
		return "Legacy"
	case MethodHotPacked:
		return "Packed"
	case MethodSKQLPlanner:
		return "Planner"
	case MethodSKQLIR2:
		return "ForceIR2"
	case MethodSKQLIIO:
		return "ForceIIO"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// BuildConfig describes one experimental environment.
type BuildConfig struct {
	// Spec is the dataset to generate.
	Spec dataset.Spec
	// SigBytes is the leaf signature length (the paper uses 189 for Hotels
	// and 8 for Restaurants).
	SigBytes int
	// BitsPerWord is the signature k. Zero means sigfile.DefaultBitsPerWord.
	BitsPerWord int
	// MaxEntries overrides node capacity (0 derives ≈102 from 4 KB blocks).
	MaxEntries int
	// CacheBlocks, when positive, layers an LRU buffer pool of that many
	// blocks over every device — the buffer-cache ablation. The paper's
	// experiments run uncached (every node access is a disk I/O).
	CacheBlocks int
	// Methods selects which structures to build; nil means all four.
	Methods []Method
}

// Env bundles a generated dataset with its index structures and their
// devices. Every structure has its own disk, so per-structure sizes
// (Table 2) and per-query I/O attribution are exact.
type Env struct {
	Cfg     BuildConfig
	Stats   *dataset.Stats
	Store   *objstore.Store
	ObjDisk storage.Device

	RTree     *core.RTreeBaseline
	RTreeDisk storage.Device
	IIO       *invindex.Index
	IIODisk   storage.Device
	IR2       *core.IR2Tree
	IR2Disk   storage.Device
	MIR2      *core.IR2Tree
	MIR2Disk  storage.Device

	wordsByFreq []string
}

// has reports whether the environment was built with method m.
func (e *Env) has(m Method) bool {
	switch m {
	case MethodRTree:
		return e.RTree != nil
	case MethodIIO:
		return e.IIO != nil
	case MethodIR2:
		return e.IR2 != nil
	case MethodMIR2:
		return e.MIR2 != nil
	}
	return false
}

// BuildEnv generates the dataset and constructs the selected structures.
func BuildEnv(cfg BuildConfig) (*Env, error) {
	if cfg.SigBytes <= 0 {
		return nil, fmt.Errorf("bench: SigBytes %d", cfg.SigBytes)
	}
	k := cfg.BitsPerWord
	if k == 0 {
		k = sigfile.DefaultBitsPerWord
	}
	methods := cfg.Methods
	if methods == nil {
		methods = AllMethods
	}
	newDev := func() storage.Device {
		var dev storage.Device = storage.NewDisk(storage.DefaultBlockSize)
		if cfg.CacheBlocks > 0 {
			dev = storage.NewCachedDisk(dev, cfg.CacheBlocks)
		}
		return dev
	}
	e := &Env{Cfg: cfg, ObjDisk: newDev()}
	e.Store = objstore.New(e.ObjDisk)
	stats, err := dataset.Generate(cfg.Spec, e.Store)
	if err != nil {
		return nil, err
	}
	e.Stats = stats
	e.wordsByFreq = stats.WordsByFreq()

	leaf := sigfile.Config{LengthBytes: cfg.SigBytes, BitsPerWord: k}
	for _, m := range methods {
		switch m {
		case MethodRTree:
			e.RTreeDisk = newDev()
			e.RTree, err = core.NewRTreeBaseline(e.RTreeDisk, e.Store, 2, cfg.MaxEntries)
			if err == nil {
				err = e.RTree.Build()
			}
		case MethodIIO:
			e.IIODisk = newDev()
			e.IIO = invindex.New(e.IIODisk)
			err = e.Store.Scan(func(o objstore.Object, p objstore.Ptr) error {
				e.IIO.AddDocument(uint64(p), o.Text)
				return nil
			})
			if err == nil {
				err = e.IIO.Build()
			}
		case MethodIR2:
			e.IR2Disk = newDev()
			e.IR2, err = core.New(e.IR2Disk, e.Store, core.Options{
				LeafSignature: leaf,
				MaxEntries:    cfg.MaxEntries,
			})
			if err == nil {
				err = e.IR2.Build()
			}
		case MethodMIR2:
			e.MIR2Disk = newDev()
			e.MIR2, err = core.New(e.MIR2Disk, e.Store, core.Options{
				LeafSignature:     leaf,
				MaxEntries:        cfg.MaxEntries,
				Multilevel:        true,
				AvgWordsPerObject: stats.AvgUniqueWords,
				VocabSize:         stats.VocabUsed,
			})
			if err == nil {
				err = e.MIR2.Build()
			}
		}
		if err != nil {
			return nil, fmt.Errorf("bench: build %s: %w", m, err)
		}
	}
	return e, nil
}

// Query is one distance-first top-k spatial keyword query of a workload.
type Query struct {
	K        int
	P        geo.Point
	Keywords []string
}

// MakeQueries builds a seeded workload of n queries: each query point is a
// jittered copy of a random object's location (queries follow the data
// distribution, as in location-based services), and each keyword set draws
// numKeywords distinct words from the *moderately selective* band of the
// vocabulary — words appearing in roughly 1%-20% of objects. That is the
// yellow-pages regime the paper's figures imply: conjunctions usually have
// answers, but neither trivially (keywords in every object, where the
// R-Tree baseline would excel) nor vanishingly (keywords in none, where IIO
// would — both edge regimes have their own sweep, Selectivity).
func (e *Env) MakeQueries(n, k, numKeywords int, seed int64) ([]Query, error) {
	rng := rand.New(rand.NewSource(seed))
	band := e.selectivityBand(numKeywords * 4)
	queries := make([]Query, n)
	for i := range queries {
		obj, err := e.Store.GetByID(objstore.ID(rng.Intn(e.Store.NumObjects())))
		if err != nil {
			return nil, err
		}
		p := geo.NewPoint(obj.Point[0]+rng.NormFloat64()*50, obj.Point[1]+rng.NormFloat64()*50)
		kw := make([]string, 0, numKeywords)
		seen := make(map[string]bool, numKeywords)
		for len(kw) < numKeywords {
			w := band[rng.Intn(len(band))]
			if !seen[w] {
				seen[w] = true
				kw = append(kw, w)
			}
		}
		queries[i] = Query{K: k, P: p, Keywords: kw}
	}
	return queries, nil
}

// selectivityBand returns the words with document frequency between ~1% and
// ~20% of the corpus, widened outward (commoner first) until it holds at
// least minWords candidates.
func (e *Env) selectivityBand(minWords int) []string {
	if minWords < 1 {
		minWords = 1
	}
	nObj := e.Store.NumObjects()
	lo, hi := nObj/100, nObj/5
	if lo < 2 {
		lo = 2
	}
	var band []string
	for _, w := range e.wordsByFreq { // descending df
		df := e.Stats.DocFreq[w]
		if df > hi {
			continue
		}
		if df < lo && len(band) >= minWords {
			break
		}
		band = append(band, w)
	}
	if len(band) < minWords {
		// Tiny corpora: fall back to the most frequent words.
		band = e.wordsByFreq
		if len(band) > minWords*4 {
			band = band[:minWords*4]
		}
	}
	return band
}

// KeywordsAtRank returns numKeywords consecutive vocabulary words starting
// at the given frequency rank — the selectivity-sweep workloads (E-X2) use
// it to ask "what if the query words are this common?".
func (e *Env) KeywordsAtRank(rank, numKeywords int) []string {
	if rank < 0 {
		rank = 0
	}
	if rank+numKeywords > len(e.wordsByFreq) {
		rank = len(e.wordsByFreq) - numKeywords
		if rank < 0 {
			rank = 0
		}
	}
	out := make([]string, 0, numKeywords)
	for i := rank; i < len(e.wordsByFreq) && len(out) < numKeywords; i++ {
		out = append(out, e.wordsByFreq[i])
	}
	return out
}

// Measurement aggregates the per-query metrics of one (method, workload)
// cell: the numbers behind one bar/point of the paper's figures.
type Measurement struct {
	Method     Method
	Queries    int
	AvgResults float64

	// Disk accesses per query, split as in Figures 9b/12b.
	AvgRandom     float64
	AvgSequential float64

	// AvgObjects is objects loaded per query (Figures 11b/14b).
	AvgObjects float64

	// AvgDiskTime is the modeled disk time per query under the cost model;
	// AvgCPUTime is measured Go compute time per query. Their sum plays the
	// role of the paper's execution time.
	AvgDiskTime time.Duration
	AvgCPUTime  time.Duration

	// DiskTimeHist is the distribution of per-query modeled disk time in
	// seconds. Block counts are seed-deterministic, so unlike CPU time this
	// histogram is reproducible across hosts — the benchmark-regression
	// check in CI compares it between runs.
	DiskTimeHist obs.HistogramSnapshot
}

// TotalTime returns modeled disk time plus measured CPU time — the
// "execution time" series of the figures.
func (m Measurement) TotalTime() time.Duration { return m.AvgDiskTime + m.AvgCPUTime }

// methodDisks returns the devices whose I/O a method's queries touch: its
// index disk plus the shared object file disk.
func (e *Env) methodDisks(m Method) []storage.Device {
	switch m {
	case MethodRTree:
		return []storage.Device{e.RTreeDisk, e.ObjDisk}
	case MethodIIO:
		return []storage.Device{e.IIODisk, e.ObjDisk}
	case MethodIR2:
		return []storage.Device{e.IR2Disk, e.ObjDisk}
	case MethodMIR2:
		return []storage.Device{e.MIR2Disk, e.ObjDisk}
	}
	return nil
}

// RunQuery executes one query with the given method and returns the number
// of results. (Object-access counting relies on core's and invindex's
// search stats.)
func (e *Env) RunQuery(m Method, q Query) (results, objectsLoaded int, err error) {
	switch m {
	case MethodRTree:
		res, stats, err := e.RTree.TopK(q.K, q.P, q.Keywords)
		return len(res), stats.ObjectsLoaded, err
	case MethodIIO:
		res, stats, err := invindex.TopK(e.IIO, e.Store, q.K, q.P, q.Keywords)
		return len(res), stats.ObjectsLoaded, err
	case MethodIR2:
		res, stats, err := e.IR2.TopK(q.K, q.P, q.Keywords)
		return len(res), stats.ObjectsLoaded, err
	case MethodMIR2:
		res, stats, err := e.MIR2.TopK(q.K, q.P, q.Keywords)
		return len(res), stats.ObjectsLoaded, err
	}
	return 0, 0, fmt.Errorf("bench: unknown method %d", m)
}

// Measure runs a workload under one method, metering disk accesses against
// the cost model and timing the in-memory computation.
func (e *Env) Measure(m Method, queries []Query, cm storage.CostModel) (Measurement, error) {
	out := Measurement{Method: m, Queries: len(queries)}
	if !e.has(m) {
		return out, fmt.Errorf("bench: method %s not built", m)
	}
	if len(queries) == 0 {
		return out, nil
	}
	disks := e.methodDisks(m)
	var io storage.Stats
	var cpu time.Duration
	var results, objects int
	hist := obs.NewHistogram(obs.LatencyBuckets())
	for _, q := range queries {
		meters := make([]*storage.Meter, len(disks))
		for i, d := range disks {
			// Queries start cold: the head position from the previous
			// query must not turn this query's first access sequential.
			d.ResetStats()
			meters[i] = storage.StartMeter(d)
		}
		//skvet:ignore determinism CPU time is wall-clock by definition; it is reported apart from modeled disk time
		start := time.Now()
		n, objs, err := e.RunQuery(m, q)
		//skvet:ignore determinism CPU time is wall-clock by definition; it is reported apart from modeled disk time
		cpu += time.Since(start)
		if err != nil {
			return out, err
		}
		results += n
		objects += objs
		var qio storage.Stats
		for _, mt := range meters {
			qio = qio.Add(mt.Stop())
		}
		io = io.Add(qio)
		hist.Observe(cm.Time(qio).Seconds())
	}
	q := float64(len(queries))
	out.DiskTimeHist = hist.Snapshot()
	out.AvgResults = float64(results) / q
	out.AvgObjects = float64(objects) / q
	out.AvgRandom = float64(io.Random()) / q
	out.AvgSequential = float64(io.Sequential()) / q
	out.AvgDiskTime = cm.Time(io) / time.Duration(len(queries))
	out.AvgCPUTime = cpu / time.Duration(len(queries))
	return out, nil
}
