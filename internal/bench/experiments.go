package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/sigfile"
	"spatialkeyword/internal/storage"
)

// Table is a rendered experiment result: one per paper table or figure.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string

	// Cells carries the raw measurements behind the rendered rows (one per
	// measurementRow call), so machine-readable reports don't re-parse the
	// formatted strings. Hand-built rows (Table1, Maintenance) have none.
	Cells []Cell
}

// Cell is one raw measurement of a sweep: the number behind one table row.
type Cell struct {
	Sweep string
	Meas  Measurement
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n== %s ==\n", t.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	for i, c := range t.Columns {
		if i > 0 {
			fmt.Fprint(tw, "\t")
		}
		fmt.Fprint(tw, c)
	}
	fmt.Fprintln(tw)
	for _, row := range t.Rows {
		for i, cell := range row {
			if i > 0 {
				fmt.Fprint(tw, "\t")
			}
			fmt.Fprint(tw, cell)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	return nil
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
}

func fmtF(v float64) string { return fmt.Sprintf("%.1f", v) }

// measurementRow renders one Measurement as a table row prefixed with the
// sweep value, and retains the raw measurement in t.Cells.
func (t *Table) measurementRow(sweep string, m Measurement) []string {
	t.Cells = append(t.Cells, Cell{Sweep: sweep, Meas: m})
	return []string{
		sweep, m.Method.String(),
		fmtDur(m.TotalTime()), fmtDur(m.AvgDiskTime), fmtDur(m.AvgCPUTime),
		fmtF(m.AvgRandom), fmtF(m.AvgSequential),
		fmtF(m.AvgObjects), fmtF(m.AvgResults),
	}
}

var measurementColumns = []string{
	"sweep", "method", "time", "disk", "cpu", "randBlk", "seqBlk", "objAcc", "results",
}

// VaryK reproduces Figures 9 (Hotels) and 12 (Restaurants): fixed keyword
// count, sweeping the number of requested results k, reporting execution
// time and random/sequential block accesses for all four methods.
func VaryK(e *Env, ks []int, numKeywords, nQueries int, seed int64, cm storage.CostModel) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Vary k (top-k) — %s dataset, %d keywords, sig %dB (paper Figs 9/12)",
			e.Stats.Name, numKeywords, e.Cfg.SigBytes),
		Columns: measurementColumns,
		Notes: []string{
			"expect: IR2/MIR2 beat R-Tree at every k; IIO flat in k;",
			"MIR2 fewer random but more sequential accesses than IR2",
		},
	}
	for _, k := range ks {
		queries, err := e.MakeQueries(nQueries, k, numKeywords, seed)
		if err != nil {
			return nil, err
		}
		for _, m := range AllMethods {
			if !e.has(m) {
				continue
			}
			meas, err := e.Measure(m, queries, cm)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, t.measurementRow(fmt.Sprintf("k=%d", k), meas))
		}
	}
	return t, nil
}

// VaryKeywords reproduces Figures 10 (Hotels) and 13 (Restaurants): fixed
// k, sweeping the number of query keywords.
func VaryKeywords(e *Env, keywordCounts []int, k, nQueries int, seed int64, cm storage.CostModel) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Vary #keywords — %s dataset, k=%d, sig %dB (paper Figs 10/13)",
			e.Stats.Name, k, e.Cfg.SigBytes),
		Columns: measurementColumns,
		Notes: []string{
			"expect: IIO improves with more keywords (shorter intersection);",
			"R-Tree degrades (rarer conjunctions mean more useless objects)",
		},
	}
	for _, m := range keywordCounts {
		queries, err := e.MakeQueries(nQueries, k, m, seed)
		if err != nil {
			return nil, err
		}
		for _, method := range AllMethods {
			if !e.has(method) {
				continue
			}
			meas, err := e.Measure(method, queries, cm)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, t.measurementRow(fmt.Sprintf("m=%d", m), meas))
		}
	}
	return t, nil
}

// VarySigLen reproduces Figures 11 (Hotels) and 14 (Restaurants): fixed k
// and keyword count, sweeping the leaf signature length. R-Tree and IIO are
// insensitive to signature length, so they are measured once from the base
// environment; the IR²- and MIR²-Trees are rebuilt per length.
func VarySigLen(e *Env, lengths []int, k, numKeywords, nQueries int, seed int64, cm storage.CostModel) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Vary signature length — %s dataset, k=%d, %d keywords (paper Figs 11/14)",
			e.Stats.Name, k, numKeywords),
		Columns: append(measurementColumns, "treeMB"),
		Notes: []string{
			"expect: longer signatures cut object accesses (fewer false positives)",
			"but grow the tree; no single best length (paper §6.B)",
		},
	}
	queries, err := e.MakeQueries(nQueries, k, numKeywords, seed)
	if err != nil {
		return nil, err
	}
	// Baselines once.
	for _, m := range []Method{MethodRTree, MethodIIO} {
		if !e.has(m) {
			continue
		}
		meas, err := e.Measure(m, queries, cm)
		if err != nil {
			return nil, err
		}
		row := t.measurementRow("any", meas)
		var sz float64
		if m == MethodRTree {
			sz = e.RTree.SizeMB()
		} else {
			sz = e.IIO.SizeMB()
		}
		t.Rows = append(t.Rows, append(row, fmt.Sprintf("%.1f", sz)))
	}
	for _, length := range lengths {
		sub, err := e.rebuildSigTrees(length)
		if err != nil {
			return nil, err
		}
		for _, m := range []Method{MethodIR2, MethodMIR2} {
			if !sub.has(m) {
				continue
			}
			meas, err := sub.Measure(m, queries, cm)
			if err != nil {
				return nil, err
			}
			row := t.measurementRow(fmt.Sprintf("sig=%dB", length), meas)
			var sz float64
			if m == MethodIR2 {
				sz = sub.IR2.SizeMB()
			} else {
				sz = sub.MIR2.SizeMB()
			}
			t.Rows = append(t.Rows, append(row, fmt.Sprintf("%.1f", sz)))
		}
	}
	return t, nil
}

// rebuildSigTrees clones the environment with IR²/MIR² rebuilt at a new
// leaf signature length, sharing the object store and baselines.
func (e *Env) rebuildSigTrees(sigBytes int) (*Env, error) {
	sub := *e
	sub.Cfg.SigBytes = sigBytes
	leaf := e.leafConfig()
	leaf.LengthBytes = sigBytes
	var err error
	if e.has(MethodIR2) {
		sub.IR2Disk = storage.NewDisk(storage.DefaultBlockSize)
		sub.IR2, err = core.New(sub.IR2Disk, e.Store, core.Options{
			LeafSignature: leaf,
			MaxEntries:    e.Cfg.MaxEntries,
		})
		if err == nil {
			err = sub.IR2.Build()
		}
		if err != nil {
			return nil, err
		}
	}
	if e.has(MethodMIR2) {
		sub.MIR2Disk = storage.NewDisk(storage.DefaultBlockSize)
		sub.MIR2, err = core.New(sub.MIR2Disk, e.Store, core.Options{
			LeafSignature:     leaf,
			MaxEntries:        e.Cfg.MaxEntries,
			Multilevel:        true,
			AvgWordsPerObject: e.Stats.AvgUniqueWords,
			VocabSize:         e.Stats.VocabUsed,
		})
		if err == nil {
			err = sub.MIR2.Build()
		}
		if err != nil {
			return nil, err
		}
	}
	return &sub, nil
}

func (e *Env) leafConfig() (cfg sigfile.Config) {
	cfg.LengthBytes = e.Cfg.SigBytes
	cfg.BitsPerWord = e.Cfg.BitsPerWord
	if cfg.BitsPerWord == 0 {
		cfg.BitsPerWord = sigfile.DefaultBitsPerWord
	}
	return cfg
}

// Table1 reproduces the paper's Table 1 (dataset details) from generation
// statistics.
func Table1(all ...*Env) *Table {
	t := &Table{
		Title:   "Dataset details (paper Table 1)",
		Columns: []string{"dataset", "size(MB)", "objects", "avgUniqueWords", "vocab", "blocks/obj"},
		Notes: []string{
			"synthetic stand-ins matched to the paper's measured statistics (see DESIGN.md)",
		},
	}
	for _, e := range all {
		s := e.Stats
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprintf("%.1f", s.SizeMB),
			fmt.Sprintf("%d", s.Objects),
			fmt.Sprintf("%.0f", s.AvgUniqueWords),
			fmt.Sprintf("%d", s.VocabUsed),
			fmt.Sprintf("%.2f", s.AvgBlocksPerObj),
		})
	}
	return t
}

// Table2 reproduces the paper's Table 2: total size of each index structure.
func Table2(all ...*Env) *Table {
	t := &Table{
		Title:   "Sizes (MB) of indexing structures (paper Table 2)",
		Columns: []string{"dataset", "IIO", "R-Tree", "IR2-Tree", "MIR2-Tree"},
		Notes: []string{
			"expect: IR2 > R-Tree (extra signature blocks); MIR2 > IR2 (longer upper levels);",
			"IIO small when vocabulary per object is small (restaurants)",
		},
	}
	for _, e := range all {
		row := []string{e.Stats.Name, "-", "-", "-", "-"}
		if e.has(MethodIIO) {
			row[1] = fmt.Sprintf("%.1f", e.IIO.SizeMB())
		}
		if e.has(MethodRTree) {
			row[2] = fmt.Sprintf("%.1f", e.RTree.SizeMB())
		}
		if e.has(MethodIR2) {
			row[3] = fmt.Sprintf("%.1f", e.IR2.SizeMB())
		}
		if e.has(MethodMIR2) {
			row[4] = fmt.Sprintf("%.1f", e.MIR2.SizeMB())
		}
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Maintenance quantifies the update-cost claim of Section 4: per-insert
// (and per-delete) I/O and time for the R-Tree, IR²-Tree, and MIR²-Tree.
// The MIR²-Tree recomputes ancestor signatures from all underlying objects,
// so its numbers should dwarf the others'.
func Maintenance(e *Env, batch int, seed int64, cm storage.CostModel) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("Index maintenance — %s dataset, %d inserts + %d deletes (paper §4 claim)", e.Stats.Name, batch, batch),
		Columns: []string{"method", "op", "avgTime", "avgRandBlk", "avgSeqBlk"},
		Notes: []string{
			"expect: IR2 ≈ R-Tree (same complexity); MIR2 far more expensive",
			"IIO omitted: the paper's inverted index is rebuilt offline",
		},
	}
	rng := rand.New(rand.NewSource(seed))

	// Fresh objects to insert, appended to the shared store up front.
	type newObj struct {
		obj objstore.Object
		ptr objstore.Ptr
	}
	fresh := make([]newObj, batch)
	for i := range fresh {
		src, err := e.Store.GetByID(objstore.ID(rng.Intn(e.Store.NumObjects())))
		if err != nil {
			return nil, err
		}
		p := geo.NewPoint(src.Point[0]+rng.NormFloat64()*10, src.Point[1]+rng.NormFloat64()*10)
		_, ptr, err := e.Store.Append(p, src.Text)
		if err != nil {
			return nil, err
		}
		if err := e.Store.Sync(); err != nil {
			return nil, err
		}
		obj, err := e.Store.Get(ptr)
		if err != nil {
			return nil, err
		}
		fresh[i] = newObj{obj, ptr}
	}

	type target struct {
		method Method
		disk   storage.Device
		insert func(objstore.Object, objstore.Ptr) error
		delete func(geo.Point, objstore.Ptr) (bool, error)
	}
	var targets []target
	if e.has(MethodRTree) {
		targets = append(targets, target{MethodRTree, e.RTreeDisk, e.RTree.Insert, e.RTree.Delete})
	}
	if e.has(MethodIR2) {
		targets = append(targets, target{MethodIR2, e.IR2Disk, e.IR2.Insert, e.IR2.Delete})
	}
	if e.has(MethodMIR2) {
		targets = append(targets, target{MethodMIR2, e.MIR2Disk, e.MIR2.Insert, e.MIR2.Delete})
	}

	for _, tg := range targets {
		for _, op := range []string{"insert", "delete"} {
			var io storage.Stats
			var cpu time.Duration
			for _, f := range fresh {
				tg.disk.ResetStats()
				e.ObjDisk.ResetStats()
				m1 := storage.StartMeter(tg.disk)
				m2 := storage.StartMeter(e.ObjDisk)
				//skvet:ignore determinism CPU time is wall-clock by definition; it is reported apart from modeled disk time
				start := time.Now()
				var err error
				if op == "insert" {
					err = tg.insert(f.obj, f.ptr)
				} else {
					var ok bool
					ok, err = tg.delete(f.obj.Point, f.ptr)
					if err == nil && !ok {
						err = fmt.Errorf("bench: maintenance delete missed object %d", f.obj.ID)
					}
				}
				//skvet:ignore determinism CPU time is wall-clock by definition; it is reported apart from modeled disk time
				cpu += time.Since(start)
				if err != nil {
					return nil, fmt.Errorf("bench: %s %s: %w", tg.method, op, err)
				}
				io = io.Add(m1.Stop()).Add(m2.Stop())
			}
			n := time.Duration(batch)
			t.Rows = append(t.Rows, []string{
				tg.method.String(), op,
				fmtDur(cm.Time(io)/n + cpu/n),
				fmtF(float64(io.Random()) / float64(batch)),
				fmtF(float64(io.Sequential()) / float64(batch)),
			})
		}
	}
	return t, nil
}

// Selectivity reproduces the Discussion of Section 6.B: IIO wins when query
// keywords are very rare; the R-Tree baseline catches up when keywords
// appear in almost every object. The sweep walks keyword frequency ranks
// from the most common words to the tail.
func Selectivity(e *Env, ranks []int, k, numKeywords, nQueries int, seed int64, cm storage.CostModel) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Keyword selectivity sweep — %s dataset, k=%d, %d keywords (paper §6.B discussion)",
			e.Stats.Name, k, numKeywords),
		Columns: append([]string{"docFreq"}, measurementColumns...),
		Notes: []string{
			"expect: IIO cost tracks posting length (cheap at the rare tail);",
			"R-Tree cost explodes as keywords get rarer; IR2/MIR2 robust throughout",
		},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, rank := range ranks {
		kw := e.KeywordsAtRank(rank, numKeywords)
		if len(kw) == 0 {
			continue
		}
		df := e.Stats.DocFreq[kw[0]]
		queries := make([]Query, nQueries)
		for i := range queries {
			obj, err := e.Store.GetByID(objstore.ID(rng.Intn(e.Store.NumObjects())))
			if err != nil {
				return nil, err
			}
			queries[i] = Query{K: k, P: obj.Point.Clone(), Keywords: kw}
		}
		for _, m := range AllMethods {
			if !e.has(m) {
				continue
			}
			meas, err := e.Measure(m, queries, cm)
			if err != nil {
				return nil, err
			}
			row := t.measurementRow(fmt.Sprintf("rank=%d", rank), meas)
			t.Rows = append(t.Rows, append([]string{fmt.Sprintf("%d", df)}, row...))
		}
	}
	return t, nil
}
