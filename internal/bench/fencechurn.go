package bench

import (
	"fmt"
	"math/rand"
	"time"

	"spatialkeyword/internal/fence"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/wal"
)

// churnMut is one mutation of the fence-churn workload: an insert or a
// delete of a previously inserted object.
type churnMut struct {
	del   bool
	id    uint64
	point geo.Point
	text  string
}

// churnVocab doubles as the object-text vocabulary and the pool fence
// keywords draw from, so keyword fences have realistic hit rates.
var churnVocab = []string{
	"hotel", "cheap", "pool", "ocean", "view", "downtown", "parking",
	"breakfast", "pets", "wifi", "suite", "golf", "spa", "airport",
}

// churnWorkload generates a seeded stream of inserts (70%) and deletes of
// live objects (30%) over the unit-like [0,100]^2 space.
func churnWorkload(ops int, seed int64) []churnMut {
	rng := rand.New(rand.NewSource(seed))
	work := make([]churnMut, 0, ops)
	var live []churnMut
	next := uint64(0)
	for len(work) < ops {
		if len(live) > 0 && rng.Intn(100) < 30 {
			i := rng.Intn(len(live))
			m := live[i]
			live = append(live[:i], live[i+1:]...)
			m.del = true
			work = append(work, m)
			continue
		}
		words := churnVocab[rng.Intn(len(churnVocab))]
		for w := 0; w < 3; w++ {
			words += " " + churnVocab[rng.Intn(len(churnVocab))]
		}
		m := churnMut{
			id:    next,
			point: geo.NewPoint(rng.Float64()*100, rng.Float64()*100),
			text:  words,
		}
		next++
		live = append(live, m)
		work = append(work, m)
	}
	return work
}

// seedFences registers n deterministic standing queries: a mix of region
// fences, radius fences, and top-k radius fences, with 0-2 keywords each.
func seedFences(reg *fence.Registry, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		var q fence.Query
		for k := rng.Intn(3); k > 0; k-- {
			q.Keywords = append(q.Keywords, churnVocab[rng.Intn(len(churnVocab))])
		}
		switch rng.Intn(3) {
		case 0:
			x, y := rng.Float64()*100, rng.Float64()*100
			q.Region = geo.Rect{
				Lo: geo.Point{x, y},
				Hi: geo.Point{x + 1 + rng.Float64()*8, y + 1 + rng.Float64()*8},
			}
		case 1:
			q.Center = geo.Point{rng.Float64() * 100, rng.Float64() * 100}
			q.Radius = 1 + rng.Float64()*5
		default:
			q.Center = geo.Point{rng.Float64() * 100, rng.Float64() * 100}
			q.Radius = 2 + rng.Float64()*8
			q.K = 1 + rng.Intn(5)
		}
		if _, err := reg.Add(q); err != nil {
			return fmt.Errorf("bench: fence %d: %w", i, err)
		}
	}
	return nil
}

// runFenceChurn plays the workload through a WAL-durable mutation path with
// nFences standing queries evaluated post-append, exactly the serving
// shape: frame the record into the log, apply it to the store, then run
// the fence registry over the applied mutation. Disk cost is the WAL
// append plus group commit; evaluation cost is CPU-only and reported in
// the cpu column.
func runFenceChurn(work []churnMut, nFences, batch int, seed int64, cm storage.CostModel) (Measurement, fence.EvalStats, error) {
	objDev := storage.NewDisk(storage.DefaultBlockSize)
	walDev := storage.NewDisk(storage.DefaultBlockSize)
	devs := []storage.Device{objDev, walDev}
	store := objstore.New(objDev)
	l, err := wal.Create(walDev)
	if err != nil {
		return Measurement{}, fence.EvalStats{}, err
	}
	app := wal.NewAppender(l, 0)
	reg := fence.NewRegistry(fence.Options{})
	if err := seedFences(reg, nFences, seed); err != nil {
		return Measurement{}, fence.EvalStats{}, err
	}
	arm := newIngestArm(cm)
	var cpu time.Duration
	events := 0
	for i, m := range work {
		err := arm.step(devs, func() error {
			op := wal.OpAdd
			if m.del {
				op = wal.OpDelete
			} else if _, _, err := store.Append(m.point, m.text); err != nil {
				return err
			}
			rec := wal.Record{Op: op, ID: m.id, Point: m.point, Text: m.text}
			if _, err := app.AppendAsync(rec); err != nil {
				return err
			}
			if (i+1)%batch == 0 {
				return app.Sync()
			}
			return nil
		})
		if err != nil {
			return Measurement{}, fence.EvalStats{}, fmt.Errorf("bench: fence-churn mutation %d: %w", i, err)
		}
		//skvet:ignore determinism CPU time is wall-clock by definition; it is reported apart from modeled disk time
		start := time.Now()
		evs := reg.Apply(fence.Mutation{Delete: m.del, ID: m.id, Point: m.point, Text: m.text})
		//skvet:ignore determinism CPU time is wall-clock by definition; it is reported apart from modeled disk time
		cpu += time.Since(start)
		events += len(evs)
	}
	if err := arm.step(devs, app.Sync); err != nil {
		return Measurement{}, fence.EvalStats{}, fmt.Errorf("bench: fence-churn final sync: %w", err)
	}
	meas := arm.measurement(MethodFenceWAL, len(work))
	meas.AvgCPUTime = cpu / time.Duration(len(work))
	meas.AvgResults = float64(events) / float64(len(work))
	return meas, reg.Stats(), nil
}

// FenceChurn quantifies the cost of standing-query evaluation riding the
// durable mutation path: the same seeded insert/delete stream is played
// against registries of increasing size, reporting the WAL's modeled disk
// cost per mutation (the gated number — evaluation must not add I/O),
// CPU-side evaluation cost, and the pruning funnel (what fraction of the
// mutation x fence pairs survive the spatial index, the signature check,
// and the exact predicate). Block counts and funnel ratios are pure
// functions of (ops, fences, batch, seed), so the cells feed the same CI
// baseline gate as vary-k and ingest.
func FenceChurn(ops int, fenceCounts []int, batch int, seed int64, cm storage.CostModel) (*Table, error) {
	if ops <= 0 {
		return nil, fmt.Errorf("bench: fence-churn ops %d", ops)
	}
	if batch <= 0 {
		return nil, fmt.Errorf("bench: fence-churn batch %d", batch)
	}
	t := &Table{
		Title:   fmt.Sprintf("Fence churn — %d mutations vs standing-query count (WAL batch=%d)", ops, batch),
		Columns: append(measurementColumns, "spat%", "sig%", "exact%", "events"),
		Notes: []string{
			"expect: disk time flat in fence count (evaluation is memory-only);",
			"spat% is the fraction of mutation x fence pairs surviving the fence",
			"R-Tree, sig% surviving the signature AND-match, exact% the final",
			"predicate; results column is events emitted per mutation",
		},
	}
	work := churnWorkload(ops, seed)
	for _, n := range fenceCounts {
		if n <= 0 {
			return nil, fmt.Errorf("bench: fence-churn fence count %d", n)
		}
		m, st, err := runFenceChurn(work, n, batch, seed, cm)
		if err != nil {
			return nil, err
		}
		pairs := float64(st.Mutations) * float64(n)
		row := t.measurementRow(fmt.Sprintf("fences=%d", n), m)
		t.Rows = append(t.Rows, append(row,
			fmt.Sprintf("%.2f", 100*float64(st.SpatialHits)/pairs),
			fmt.Sprintf("%.2f", 100*float64(st.SigHits)/pairs),
			fmt.Sprintf("%.2f", 100*float64(st.ExactHits)/pairs),
			fmt.Sprintf("%d", st.Events),
		))
	}
	return t, nil
}
