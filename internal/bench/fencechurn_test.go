package bench

import (
	"strconv"
	"testing"

	"spatialkeyword/internal/storage"
)

// TestFenceChurnTable pins the two properties the experiment exists to
// show: fence evaluation adds no disk I/O to the mutation path (disk time
// is identical across fence counts), and the pruning funnel only narrows.
func TestFenceChurnTable(t *testing.T) {
	tab, err := FenceChurn(120, []int{50, 500}, 8, 1, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cells) != 2 || len(tab.Rows) != 2 {
		t.Fatalf("cells = %d rows = %d, want 2 each", len(tab.Cells), len(tab.Rows))
	}
	small := ingestCell(t, tab, "fences=50")
	big := ingestCell(t, tab, "fences=500")
	if small.Method != MethodFenceWAL || big.Method != MethodFenceWAL {
		t.Fatalf("methods %s / %s", small.Method, big.Method)
	}
	if small.AvgDiskTime <= 0 {
		t.Fatal("no modeled disk time on the WAL path")
	}
	if small.AvgDiskTime != big.AvgDiskTime {
		t.Errorf("disk time varies with fence count: %v vs %v — evaluation leaked I/O",
			small.AvgDiskTime, big.AvgDiskTime)
	}
	// The funnel columns (spat% >= sig% >= exact%) follow measurementColumns.
	base := len(measurementColumns)
	for _, row := range tab.Rows {
		if len(row) != base+4 {
			t.Fatalf("row width %d, want %d", len(row), base+4)
		}
		pct := make([]float64, 3)
		for i := range pct {
			v, err := strconv.ParseFloat(row[base+i], 64)
			if err != nil {
				t.Fatalf("funnel column %d = %q: %v", i, row[base+i], err)
			}
			pct[i] = v
		}
		if pct[0] < pct[1] || pct[1] < pct[2] {
			t.Errorf("pruning funnel widened in row %v: %v", row[0], pct)
		}
		if pct[0] <= 0 {
			t.Errorf("row %v: spatial stage pruned everything; the workload never exercises matching", row[0])
		}
	}
	// Some enter/leave traffic must actually flow, or the experiment
	// measures an empty funnel.
	if small.AvgResults <= 0 || big.AvgResults <= 0 {
		t.Errorf("no fence events emitted: %v / %v events per mutation",
			small.AvgResults, big.AvgResults)
	}
}

// TestFenceChurnDeterministic pins what the CI baseline gate relies on:
// every compared metric is a pure function of the inputs. CPU time is
// wall-clock and excluded, exactly as in the gate.
func TestFenceChurnDeterministic(t *testing.T) {
	a, err := FenceChurn(80, []int{64}, 4, 7, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	b, err := FenceChurn(80, []int{64}, 4, 7, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	am, bm := ingestCell(t, a, "fences=64"), ingestCell(t, b, "fences=64")
	am.AvgCPUTime, bm.AvgCPUTime = 0, 0
	if am.AvgDiskTime != bm.AvgDiskTime ||
		am.AvgRandom != bm.AvgRandom ||
		am.AvgSequential != bm.AvgSequential ||
		am.AvgResults != bm.AvgResults {
		t.Errorf("deterministic fields differ:\n%+v\n%+v", am, bm)
	}
	for i, bucket := range am.DiskTimeHist.Counts {
		if bucket != bm.DiskTimeHist.Counts[i] {
			t.Errorf("disk-time histogram differs at bucket %d", i)
		}
	}
	// The funnel columns must also be identical (they feed the notes and
	// the rendered report).
	base := len(measurementColumns)
	for i := base; i < base+4; i++ {
		if a.Rows[0][i] != b.Rows[0][i] {
			t.Errorf("funnel column %d differs: %q vs %q", i, a.Rows[0][i], b.Rows[0][i])
		}
	}
}

// TestFenceChurnValidation covers the error paths.
func TestFenceChurnValidation(t *testing.T) {
	cm := storage.DefaultCostModel()
	if _, err := FenceChurn(0, []int{10}, 8, 1, cm); err == nil {
		t.Error("ops=0 accepted")
	}
	if _, err := FenceChurn(10, []int{0}, 8, 1, cm); err == nil {
		t.Error("fences=0 accepted")
	}
	if _, err := FenceChurn(10, []int{10}, 0, 1, cm); err == nil {
		t.Error("batch=0 accepted")
	}
}
