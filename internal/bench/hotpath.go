package bench

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/irscore"
	"spatialkeyword/internal/obs"
	"spatialkeyword/internal/storage"
)

// HotPathCell is one measured arm of the hot-path experiment (E-X10): a
// warm query workload run either through the legacy decode-per-visit
// traversal or through the packed-node cache, with allocation and wall-time
// metrics alongside the usual disk/CPU measurement.
type HotPathCell struct {
	// Mode is the query shape: "topk" (distance-first) or "ranked"
	// (general top-k with IR scoring).
	Mode string
	// Meas carries the standard per-query metrics. Its disk columns are
	// deterministic and must be bit-identical between the two arms: a
	// packed cache hit still pays the node's full modeled I/O.
	Meas Measurement
	// AllocsPerOp is heap objects allocated per warm query, from a
	// meter-free pass bracketed by runtime.ReadMemStats.
	AllocsPerOp float64
	// WallP50 and WallP99 are per-query wall-time percentiles of the
	// measured pass. Host-dependent, never gated.
	WallP50, WallP99 time.Duration
}

// hotPathModes lists the query shapes the experiment sweeps.
var hotPathModes = []string{"topk", "ranked"}

// hotPathArms lists the two traversal arms.
var hotPathArms = []Method{MethodHotLegacy, MethodHotPacked}

// HotPathCells builds an IR²-Tree environment and measures the warm read
// path of both traversal arms over the same workload, for each query mode.
// The packed arm serves node images from the decoded-node cache; the legacy
// arm decodes every visited node from its blocks. Both arms run against the
// same tree — only the traversal toggles — so results, block counts, and
// modeled disk time are identical by construction, and any difference is a
// bug the acceptance test catches.
func HotPathCells(base BuildConfig, k, numKeywords, nQueries int, seed int64, cm storage.CostModel) ([]HotPathCell, error) {
	cfg := base
	cfg.Methods = []Method{MethodIR2}
	env, err := BuildEnv(cfg)
	if err != nil {
		return nil, err
	}
	queries, err := env.MakeQueries(nQueries, k, numKeywords, seed)
	if err != nil {
		return nil, err
	}
	sc := irscore.NewScorer(env.Store.NumObjects(), func(w string) int {
		return env.Stats.DocFreq[w]
	})
	runMode := map[string]func(q Query) (results, objects int, err error){
		"topk": func(q Query) (int, int, error) {
			res, stats, err := env.IR2.TopK(q.K, q.P, q.Keywords)
			return len(res), stats.ObjectsLoaded, err
		},
		"ranked": func(q Query) (int, int, error) {
			// RequireMatch is the paper's "Score > 0" test: candidates none of
			// whose keywords match are pruned instead of materialized.
			res, stats, err := env.IR2.TopKRanked(q.K, q.P, q.Keywords,
				core.GeneralOptions{Scorer: sc, RequireMatch: true})
			return len(res), stats.ObjectsLoaded, err
		},
	}
	var cells []HotPathCell
	for _, mode := range hotPathModes {
		run := runMode[mode]
		for _, arm := range hotPathArms {
			env.IR2.RTree().SetHotPath(arm == MethodHotPacked)
			cell, err := measureHotArm(env, arm, mode, run, queries, cm)
			if err != nil {
				return nil, err
			}
			cells = append(cells, cell)
		}
	}
	env.IR2.RTree().SetHotPath(true)
	return cells, nil
}

// measureHotArm runs the workload three times on one arm: a warm-up pass
// (fills the node cache on the packed arm; symmetric on the legacy arm), a
// metered pass producing the deterministic disk cells and the wall-time
// percentiles, and a meter-free pass bracketed by runtime.ReadMemStats
// producing allocs/op without the harness's own meter allocations in the
// count.
func measureHotArm(e *Env, arm Method, mode string, run func(Query) (int, int, error), queries []Query, cm storage.CostModel) (HotPathCell, error) {
	cell := HotPathCell{Mode: mode}
	disks := []storage.Device{e.IR2Disk, e.ObjDisk}

	// Warm-up pass.
	for _, q := range queries {
		if _, _, err := run(q); err != nil {
			return cell, fmt.Errorf("bench: hotpath %s/%s warm-up: %w", mode, arm, err)
		}
	}

	// Metered pass: disk accounting and wall time.
	out := Measurement{Method: arm, Queries: len(queries)}
	var io storage.Stats
	var results, objects int
	durs := make([]time.Duration, 0, len(queries))
	hist := obs.NewHistogram(obs.LatencyBuckets())
	for _, q := range queries {
		meters := make([]*storage.Meter, len(disks))
		for i, d := range disks {
			d.ResetStats()
			meters[i] = storage.StartMeter(d)
		}
		//skvet:ignore determinism wall time is reported apart from modeled disk time and never gated
		start := time.Now()
		n, objs, err := run(q)
		//skvet:ignore determinism wall time is reported apart from modeled disk time and never gated
		durs = append(durs, time.Since(start))
		if err != nil {
			return cell, err
		}
		results += n
		objects += objs
		var qio storage.Stats
		for _, mt := range meters {
			qio = qio.Add(mt.Stop())
		}
		io = io.Add(qio)
		hist.Observe(cm.Time(qio).Seconds())
	}
	nq := float64(len(queries))
	out.DiskTimeHist = hist.Snapshot()
	out.AvgResults = float64(results) / nq
	out.AvgObjects = float64(objects) / nq
	out.AvgRandom = float64(io.Random()) / nq
	out.AvgSequential = float64(io.Sequential()) / nq
	out.AvgDiskTime = cm.Time(io) / time.Duration(len(queries))
	var wall time.Duration
	for _, d := range durs {
		wall += d
	}
	out.AvgCPUTime = wall / time.Duration(len(queries))
	cell.Meas = out
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	cell.WallP50 = durs[len(durs)/2]
	p99 := len(durs) * 99 / 100
	if p99 >= len(durs) {
		p99 = len(durs) - 1
	}
	cell.WallP99 = durs[p99]

	// Allocation pass: no meters, no timers inside the loop.
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for _, q := range queries {
		if _, _, err := run(q); err != nil {
			return cell, err
		}
	}
	runtime.ReadMemStats(&after)
	cell.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / nq
	return cell, nil
}

// HotPath renders the E-X10 table: both query modes by both traversal arms.
// The disk columns land in t.Cells and feed the CI baseline gate — the two
// arms must stay bit-identical there. The allocs/op and wall-percentile
// columns are appended, host-dependent (allocs only Go-version-dependent),
// and never gated; the ≥10x allocation gap itself is enforced by the
// package's acceptance test, not by the baseline comparison.
func HotPath(base BuildConfig, k, numKeywords, nQueries int, seed int64, cm storage.CostModel) (*Table, error) {
	cells, err := HotPathCells(base, k, numKeywords, nQueries, seed, cm)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Hot path — %s dataset, k=%d, %d keywords, sig %dB (E-X10)",
			base.Spec.Name, k, numKeywords, base.SigBytes),
		Columns: append(measurementColumns, "allocs/op", "p50", "p99"),
		Notes: []string{
			"expect: disk columns identical between Legacy and Packed (a cache",
			"hit still pays the node's full modeled I/O); allocs/op at least",
			"10x lower on Packed for both query modes; p50/p99 wall time is",
			"host-dependent and reported for color only",
		},
	}
	for _, c := range cells {
		row := t.measurementRow("mode="+c.Mode, c.Meas)
		t.Rows = append(t.Rows, append(row,
			fmt.Sprintf("%.0f", c.AllocsPerOp),
			fmtDur(c.WallP50), fmtDur(c.WallP99),
		))
	}
	return t, nil
}
