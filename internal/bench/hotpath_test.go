package bench

import (
	"reflect"
	"strings"
	"testing"

	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/storage"
)

// hotPathBase is the acceptance environment: large enough for a multi-level
// tree (so warm traversals expand several nodes per query) but quick to
// build.
func hotPathBase() BuildConfig {
	return BuildConfig{
		Spec:     dataset.Restaurants(0.005), // ~2281 objects
		SigBytes: 8,
	}
}

// TestHotPathAcceptance enforces the tentpole's two promises on both query
// modes: the packed arm allocates at least 10x less than the legacy arm on
// the warm path, and the modeled disk accounting — block counts, disk time,
// and the per-query disk-time histogram — is bit-identical between arms (a
// node-cache hit must pay exactly the I/O a cold decode would).
func TestHotPathAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a ~2k-object environment")
	}
	cells, err := HotPathCells(hotPathBase(), 10, 2, 8, 41, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(hotPathModes)*len(hotPathArms) {
		t.Fatalf("cells = %d", len(cells))
	}
	byMode := make(map[string]map[Method]HotPathCell)
	for _, c := range cells {
		if byMode[c.Mode] == nil {
			byMode[c.Mode] = make(map[Method]HotPathCell)
		}
		byMode[c.Mode][c.Meas.Method] = c
	}
	for _, mode := range hotPathModes {
		legacy, ok1 := byMode[mode][MethodHotLegacy]
		packed, ok2 := byMode[mode][MethodHotPacked]
		if !ok1 || !ok2 {
			t.Fatalf("mode %s: missing arm (%v, %v)", mode, ok1, ok2)
		}
		if packed.AllocsPerOp <= 0 {
			t.Fatalf("mode %s: packed allocs/op = %g", mode, packed.AllocsPerOp)
		}
		if legacy.AllocsPerOp < 10*packed.AllocsPerOp {
			t.Errorf("mode %s: legacy %.0f allocs/op vs packed %.0f: reduction below 10x",
				mode, legacy.AllocsPerOp, packed.AllocsPerOp)
		}
		// Modeled disk accounting must be bit-identical between the arms.
		if legacy.Meas.AvgDiskTime != packed.Meas.AvgDiskTime {
			t.Errorf("mode %s: disk time differs: legacy %v, packed %v",
				mode, legacy.Meas.AvgDiskTime, packed.Meas.AvgDiskTime)
		}
		if legacy.Meas.AvgRandom != packed.Meas.AvgRandom ||
			legacy.Meas.AvgSequential != packed.Meas.AvgSequential {
			t.Errorf("mode %s: block counts differ: legacy (%g,%g), packed (%g,%g)",
				mode, legacy.Meas.AvgRandom, legacy.Meas.AvgSequential,
				packed.Meas.AvgRandom, packed.Meas.AvgSequential)
		}
		if !reflect.DeepEqual(legacy.Meas.DiskTimeHist, packed.Meas.DiskTimeHist) {
			t.Errorf("mode %s: per-query disk-time histograms differ", mode)
		}
		// Same tree, same workload: answers must agree too.
		if legacy.Meas.AvgResults != packed.Meas.AvgResults ||
			legacy.Meas.AvgObjects != packed.Meas.AvgObjects {
			t.Errorf("mode %s: results/objects differ: legacy (%g,%g), packed (%g,%g)",
				mode, legacy.Meas.AvgResults, legacy.Meas.AvgObjects,
				packed.Meas.AvgResults, packed.Meas.AvgObjects)
		}
		if legacy.Meas.AvgDiskTime <= 0 || legacy.Meas.AvgRandom <= 0 {
			t.Errorf("mode %s: no disk work measured", mode)
		}
	}
}

// TestHotPathTable checks the rendered E-X10 table shape: one row per
// (mode, arm), the appended allocation and percentile columns, and raw cells
// retained for the JSON report / baseline gate.
func TestHotPathTable(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a ~2k-object environment")
	}
	tbl, err := HotPath(hotPathBase(), 5, 2, 4, 43, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if want := len(hotPathModes) * len(hotPathArms); len(tbl.Rows) != want || len(tbl.Cells) != want {
		t.Fatalf("rows = %d, cells = %d, want %d", len(tbl.Rows), len(tbl.Cells), want)
	}
	if got, want := len(tbl.Columns), len(measurementColumns)+3; got != want {
		t.Fatalf("columns = %d, want %d", got, want)
	}
	for _, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("row width %d vs %d columns", len(row), len(tbl.Columns))
		}
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Hot path", "mode=topk", "mode=ranked", "Legacy", "Packed"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}
}
