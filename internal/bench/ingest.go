package bench

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/obs"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/wal"
)

// ingestMut is one acknowledged mutation of the ingest workload.
type ingestMut struct {
	point geo.Point
	text  string
}

// ingestWorkload generates a seeded stream of object inserts shaped like
// the maintenance workload: clustered points, a dozen words of text each.
func ingestWorkload(ops int, seed int64) []ingestMut {
	rng := rand.New(rand.NewSource(seed))
	vocab := []string{
		"hotel", "cheap", "pool", "ocean", "view", "downtown", "parking",
		"breakfast", "pets", "wifi", "suite", "golf", "spa", "airport",
	}
	work := make([]ingestMut, ops)
	for i := range work {
		words := make([]byte, 0, 96)
		for w := 0; w < 10; w++ {
			if w > 0 {
				words = append(words, ' ')
			}
			words = append(words, vocab[rng.Intn(len(vocab))]...)
		}
		work[i] = ingestMut{
			point: geo.NewPoint(rng.Float64()*100, rng.Float64()*100),
			text:  fmt.Sprintf("object %d %s", i, words),
		}
	}
	return work
}

// ingestArm accumulates one durability strategy's modeled cost: total
// device I/O plus a per-mutation modeled-disk-time histogram.
type ingestArm struct {
	io   storage.Stats
	hist *obs.Histogram
	cm   storage.CostModel
}

func newIngestArm(cm storage.CostModel) *ingestArm {
	return &ingestArm{hist: obs.NewHistogram(obs.LatencyBuckets()), cm: cm}
}

// step meters one mutation: run op with the meters started, fold the I/O
// into the arm's totals, and record the mutation's modeled disk time.
func (a *ingestArm) step(devs []storage.Device, op func() error) error {
	meters := make([]*storage.Meter, len(devs))
	for i, d := range devs {
		meters[i] = storage.StartMeter(d)
	}
	err := op()
	var io storage.Stats
	for _, m := range meters {
		io = io.Add(m.Stop())
	}
	a.io = a.io.Add(io)
	a.hist.Observe(a.cm.Time(io).Seconds())
	return err
}

// measurement renders the arm's totals per acknowledged mutation. CPU time
// is deliberately absent: the ingest experiment compares durability I/O
// only, so the whole table is a pure function of the seed and cost model.
func (a *ingestArm) measurement(m Method, ops int) Measurement {
	q := float64(ops)
	return Measurement{
		Method:        m,
		Queries:       ops,
		AvgRandom:     float64(a.io.Random()) / q,
		AvgSequential: float64(a.io.Sequential()) / q,
		AvgDiskTime:   a.cm.Time(a.io) / time.Duration(ops),
		DiskTimeHist:  a.hist.Snapshot(),
	}
}

// runIngestSave plays the workload with checkpoint-per-op durability: every
// mutation is acknowledged only after the full generational save protocol —
// checkpoint the working device, copy it to an immutable snapshot, commit
// with a manifest write. That is the block-level shape of calling
// Engine.Save after each Add (DESIGN.md S12's recovery protocol), which is
// what incremental durability cost before the write-ahead log existed.
func runIngestSave(work []ingestMut, cm storage.CostModel) (Measurement, error) {
	dataDev := storage.NewDisk(storage.DefaultBlockSize)
	snapDev := storage.NewDisk(storage.DefaultBlockSize)
	maniDev := storage.NewDisk(storage.DefaultBlockSize)
	store := objstore.New(dataDev)
	maniBlock := maniDev.Alloc()
	manifest := make([]byte, maniDev.BlockSize())
	devs := []storage.Device{dataDev, snapDev, maniDev}
	arm := newIngestArm(cm)
	for i, w := range work {
		err := arm.step(devs, func() error {
			if _, _, err := store.Append(w.point, w.text); err != nil {
				return err
			}
			if _, err := store.Checkpoint(); err != nil {
				return err
			}
			// Generation snapshot: the working files are only consistent at
			// the checkpoint instant, so Save copies them in full — dead
			// blocks included, exactly like copying the file.
			n := dataDev.NumBlocks()
			data, err := dataDev.ReadRun(1, n)
			if err != nil {
				return err
			}
			if err := snapDev.WriteRun(snapDev.AllocRun(n), n, data); err != nil {
				return err
			}
			// Commit point: rewrite the manifest block.
			binary.LittleEndian.PutUint64(manifest, uint64(i+1))
			return maniDev.Write(maniBlock, manifest)
		})
		if err != nil {
			return Measurement{}, fmt.Errorf("bench: ingest save arm: %w", err)
		}
	}
	return arm.measurement(MethodSavePerOp, len(work)), nil
}

// runIngestWAL plays the workload with write-ahead durability: each
// mutation is framed into the log, applied to the store in memory, and
// acknowledged when its batch group-commits. One checkpoint at the end
// charges the arm the log-rotation cost the next Save would pay.
func runIngestWAL(work []ingestMut, batch int, cm storage.CostModel) (Measurement, error) {
	objDev := storage.NewDisk(storage.DefaultBlockSize)
	walDev := storage.NewDisk(storage.DefaultBlockSize)
	devs := []storage.Device{objDev, walDev}
	store := objstore.New(objDev)
	l, err := wal.Create(walDev)
	if err != nil {
		return Measurement{}, err
	}
	app := wal.NewAppender(l, 0)
	arm := newIngestArm(cm)
	for i, w := range work {
		err := arm.step(devs, func() error {
			if _, _, err := store.Append(w.point, w.text); err != nil {
				return err
			}
			rec := wal.Record{Op: wal.OpAdd, ID: uint64(i), Point: w.point, Text: w.text}
			if _, err := app.AppendAsync(rec); err != nil {
				return err
			}
			if (i+1)%batch == 0 {
				return app.Sync()
			}
			return nil
		})
		if err != nil {
			return Measurement{}, fmt.Errorf("bench: ingest wal arm (batch %d): %w", batch, err)
		}
	}
	err = arm.step(devs, func() error {
		if err := app.Sync(); err != nil {
			return err
		}
		_, err := store.Checkpoint()
		return err
	})
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: ingest wal rotation (batch %d): %w", batch, err)
	}
	return arm.measurement(MethodWALGroup, len(work)), nil
}

// IngestDurability quantifies the write-path trade the write-ahead log
// exists for (DESIGN.md S14): the modeled disk cost of acknowledging each
// mutation via a full checkpoint versus appending it to the WAL and group
// committing batches of the given sizes. Both arms replay the same seeded
// insert stream onto simulated disks, so every number is a pure function
// of (ops, batches, seed, cost model) — no wall clock anywhere — and the
// CI baseline comparison is exact across hosts. The WAL arms are charged
// their end-of-run checkpoint too (the rotation the next Save performs),
// so the comparison is durability-complete, not append-only.
func IngestDurability(ops int, batches []int, seed int64, cm storage.CostModel) (*Table, error) {
	if ops <= 0 {
		return nil, fmt.Errorf("bench: ingest ops %d", ops)
	}
	t := &Table{
		Title:   fmt.Sprintf("Ingest durability — %d inserts, checkpoint-per-op vs WAL group commit (S14)", ops),
		Columns: append(measurementColumns, "xSave"),
		Notes: []string{
			"expect: WAL group commit beats per-op checkpoints >=10x in modeled",
			"disk time at batch >= 8 (the S14 acceptance gate); batch=1 shows the",
			"log's win is batching fsyncs, not merely writing less",
		},
	}
	work := ingestWorkload(ops, seed)
	save, err := runIngestSave(work, cm)
	if err != nil {
		return nil, err
	}
	row := t.measurementRow("per-op", save)
	t.Rows = append(t.Rows, append(row, "1.0x"))
	for _, b := range batches {
		if b <= 0 {
			return nil, fmt.Errorf("bench: ingest batch %d", b)
		}
		m, err := runIngestWAL(work, b, cm)
		if err != nil {
			return nil, err
		}
		row := t.measurementRow(fmt.Sprintf("batch=%d", b), m)
		speed := "inf"
		if m.AvgDiskTime > 0 {
			speed = fmt.Sprintf("%.1fx", float64(save.AvgDiskTime)/float64(m.AvgDiskTime))
		}
		t.Rows = append(t.Rows, append(row, speed))
	}
	return t, nil
}
