package bench

import (
	"reflect"
	"testing"

	"spatialkeyword/internal/storage"
)

// ingestCell pulls one (sweep, method) measurement out of the table.
func ingestCell(t *testing.T, tab *Table, sweep string) Measurement {
	t.Helper()
	for _, c := range tab.Cells {
		if c.Sweep == sweep {
			return c.Meas
		}
	}
	t.Fatalf("no cell with sweep %q in %q", sweep, tab.Title)
	return Measurement{}
}

// TestIngestDurabilityGroupCommitWins pins the S14 acceptance criterion:
// WAL group commit beats checkpoint-per-op durability by at least 10x in
// modeled disk time once batches reach 8 mutations.
func TestIngestDurabilityGroupCommitWins(t *testing.T) {
	tab, err := IngestDurability(160, []int{1, 8, 32}, 1, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cells) != 4 {
		t.Fatalf("cells = %d, want 4 (per-op + three batches)", len(tab.Cells))
	}
	save := ingestCell(t, tab, "per-op")
	if save.Method != MethodSavePerOp {
		t.Fatalf("per-op cell method = %s", save.Method)
	}
	if save.AvgDiskTime <= 0 {
		t.Fatalf("per-op arm has no modeled disk time: %v", save.AvgDiskTime)
	}
	for _, sweep := range []string{"batch=8", "batch=32"} {
		m := ingestCell(t, tab, sweep)
		if m.Method != MethodWALGroup {
			t.Fatalf("%s cell method = %s", sweep, m.Method)
		}
		if m.AvgDiskTime <= 0 {
			t.Fatalf("%s arm has no modeled disk time", sweep)
		}
		if got := float64(save.AvgDiskTime) / float64(m.AvgDiskTime); got < 10 {
			t.Errorf("%s speedup over per-op Save = %.1fx, want >= 10x (save %v, wal %v)",
				sweep, got, save.AvgDiskTime, m.AvgDiskTime)
		}
	}
	// batch=1 commits every mutation individually, so it isolates the
	// frame-size saving from the batching saving: it must still beat
	// per-op checkpoints, but batch=8 must beat it by a further margin.
	b1 := ingestCell(t, tab, "batch=1")
	b8 := ingestCell(t, tab, "batch=8")
	if b1.AvgDiskTime <= b8.AvgDiskTime {
		t.Errorf("batch=1 (%v) not slower than batch=8 (%v): batching has no effect",
			b1.AvgDiskTime, b8.AvgDiskTime)
	}
	if b1.AvgDiskTime >= save.AvgDiskTime {
		t.Errorf("batch=1 (%v) not faster than per-op save (%v)", b1.AvgDiskTime, save.AvgDiskTime)
	}
}

// TestIngestDurabilityDeterministic pins the property the CI regression
// gate relies on: the whole table — block counts, modeled times, histogram
// buckets, rendered rows — is identical across runs for a fixed seed.
func TestIngestDurabilityDeterministic(t *testing.T) {
	a, err := IngestDurability(80, []int{1, 8}, 7, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	b, err := IngestDurability(80, []int{1, 8}, 7, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cells, b.Cells) {
		t.Errorf("cells differ between identical runs:\n%+v\n%+v", a.Cells, b.Cells)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Errorf("rendered rows differ between identical runs:\n%q\n%q", a.Rows, b.Rows)
	}
	for _, c := range a.Cells {
		if c.Meas.AvgCPUTime != 0 {
			t.Errorf("cell %q reports CPU time %v; the ingest table must be wall-clock free",
				c.Sweep, c.Meas.AvgCPUTime)
		}
	}
}
