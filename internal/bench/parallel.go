package bench

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/shard"
	"spatialkeyword/internal/storage"
)

// ParallelThroughput measures the sharded engine (internal/shard): wall-clock
// queries per second, sweeping the shard count against the number of client
// goroutines. This experiment is not in the paper — it quantifies the
// scale-out extension. Unlike the figure harness, which models disk time, the
// numbers here are real elapsed time: the point of sharding is to spread one
// query's traversal (and many queries' locking) across CPU cores, which only
// wall clock can see.
//
// Two effects compose:
//
//   - fan-out parallelism: one query runs on every shard concurrently, and
//     the merge's early stop keeps distant shards from draining, so even a
//     single client gets faster answers from smaller per-shard trees;
//   - write/read concurrency: each shard has its own lock, so clients only
//     collide when they hit the same shard.
func ParallelThroughput(spec dataset.Spec, sigBytes int, shardCounts, clientCounts []int, queriesPerClient int, seed int64) (*Table, error) {
	rows, bounds, stats, err := generateRows(spec)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Parallel top-k throughput — %s dataset, %d objects, sig %dB (scale-out extension)",
			stats.Name, len(rows), sigBytes),
		Columns: []string{"shards", "clients", "topkQPS", "rankedQPS", "topkSpeedup"},
		Notes: []string{
			"wall-clock QPS (not modeled disk time); speedup is topkQPS vs 1 shard at the same client count",
			"expect: shards > 1 beat 1 shard — within-query fan-out at few clients, lock spreading at many",
		},
	}

	queries, err := throughputWorkload(rows, stats, 64, 2, seed)
	if err != nil {
		return nil, err
	}

	base := map[int]float64{} // client count → 1-shard topk QPS
	for _, n := range shardCounts {
		eng, err := buildSharded(rows, bounds, sigBytes, n)
		if err != nil {
			return nil, err
		}
		for _, clients := range clientCounts {
			topkQPS, err := measureQPS(clients, queriesPerClient, func(q *throughputQuery) error {
				_, err := eng.TopK(10, q.point, q.keywords...)
				return err
			}, queries)
			if err != nil {
				return nil, err
			}
			rankedQPS, err := measureQPS(clients, queriesPerClient, func(q *throughputQuery) error {
				_, err := eng.TopKRanked(10, q.point, q.keywords...)
				return err
			}, queries)
			if err != nil {
				return nil, err
			}
			if n == shardCounts[0] {
				base[clients] = topkQPS
			}
			speedup := "-"
			if b := base[clients]; b > 0 {
				speedup = fmt.Sprintf("%.2fx", topkQPS/b)
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("%d", clients),
				fmt.Sprintf("%.0f", topkQPS), fmt.Sprintf("%.0f", rankedQPS), speedup,
			})
		}
	}
	return t, nil
}

// ShardedDiskScaling measures the sharded engine under the harness's
// standard cost accounting (modeled disk time + measured CPU, see
// DefaultCostModel), with one independent device per shard — the
// paper-era shared-nothing deployment sharding models (one spindle per
// shard). Queries use the coordinated best-first merge (TopKSerial), which
// meters the minimum per-device I/O of an exact merge — the free-running
// goroutine drain approaches it on genuinely concurrent hardware but
// speculates wildly when goroutines serialize on few cores, so metering it
// here would charge the devices for a scheduling artifact. Each shard's
// devices are metered separately, giving two numbers per shard count:
//
//   - throughput: modeled wall time is the busiest device's total busy
//     time over the workload (plus total CPU, negligible against disk) —
//     the bottleneck of a shared-nothing system with queries in flight on
//     every device. Hot shards rotate with the query point, so the
//     workload's disk work spreads even though each query's does not;
//   - latency: a single query's modeled time is the slowest shard it fans
//     out to (devices seek in parallel, the merge overlaps them) plus CPU.
//
// This is the disk-bound complement to ParallelThroughput's wall clock: it
// shows what partitioning buys when disks, not the host's CPU count, are
// the limit.
func ShardedDiskScaling(spec dataset.Spec, sigBytes int, shardCounts []int, nQueries int, seed int64, cm storage.CostModel) (*Table, error) {
	rows, bounds, stats, err := generateRows(spec)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("Sharded disk-time scaling — %s dataset, %d objects, sig %dB (scale-out extension)",
			stats.Name, len(rows), sigBytes),
		Columns: []string{"shards", "topkQPS", "rankedQPS", "latencyMs", "randBlk", "topkSpeedup"},
		Notes: []string{
			"coordinated merge (TopKSerial), one device per shard; QPS = workload / (busiest device's disk time + CPU)",
			"latencyMs = avg per-query modeled time (slowest shard + CPU); randBlk = avg random blocks/query, all shards",
			"expect: >1 shard beats 1 shard QPS — hot shards rotate with the query point, spreading disk work",
		},
	}
	queries, err := throughputWorkload(rows, stats, 64, 2, seed)
	if err != nil {
		return nil, err
	}
	var baseTopk float64
	for _, n := range shardCounts {
		eng, err := buildSharded(rows, bounds, sigBytes, n)
		if err != nil {
			return nil, err
		}
		topk, err := measureModeled(eng, queries, nQueries, cm, func(q *throughputQuery) error {
			_, err := eng.TopKSerial(10, q.point, q.keywords...)
			return err
		})
		if err != nil {
			return nil, err
		}
		ranked, err := measureModeled(eng, queries, nQueries, cm, func(q *throughputQuery) error {
			_, err := eng.TopKRankedSerial(10, q.point, q.keywords...)
			return err
		})
		if err != nil {
			return nil, err
		}
		if n == shardCounts[0] {
			baseTopk = topk.qps
		}
		speedup := "-"
		if baseTopk > 0 {
			speedup = fmt.Sprintf("%.2fx", topk.qps/baseTopk)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", topk.qps), fmt.Sprintf("%.1f", ranked.qps),
			fmt.Sprintf("%.2f", topk.latencyMS), fmt.Sprintf("%.1f", topk.avgBlocks), speedup,
		})
	}
	return t, nil
}

// modeledRun summarizes a metered workload under the cost model.
type modeledRun struct {
	qps       float64 // workload / (busiest device's busy time + total CPU)
	latencyMS float64 // avg per-query slowest-shard disk time + CPU
	avgBlocks float64 // avg random blocks per query, summed over shards
}

// measureModeled runs the workload sequentially, metering every shard's
// devices per query and attributing each query's disk work to the shards
// that did it.
func measureModeled(eng *shard.ShardedEngine, queries []throughputQuery, nQueries int, cm storage.CostModel, run func(*throughputQuery) error) (modeledRun, error) {
	var busy []time.Duration // per-shard total disk time over the workload
	var latency, totalCPU time.Duration
	var blocks uint64
	for i := 0; i < nQueries; i++ {
		q := &queries[i%len(queries)]
		stop := eng.MeterShardIO()
		//skvet:ignore determinism CPU time is wall-clock by definition; it is reported apart from modeled disk time
		start := time.Now()
		if err := run(q); err != nil {
			return modeledRun{}, err
		}
		//skvet:ignore determinism CPU time is wall-clock by definition; it is reported apart from modeled disk time
		cpu := time.Since(start)
		perShard := stop()
		if busy == nil {
			busy = make([]time.Duration, len(perShard))
		}
		var worst time.Duration
		for s, st := range perShard {
			d := cm.Time(st)
			busy[s] += d
			if d > worst {
				worst = d
			}
			blocks += st.Random()
		}
		latency += worst + cpu
		totalCPU += cpu
	}
	wall := totalCPU
	for _, b := range busy {
		if wall < b+totalCPU {
			wall = b + totalCPU
		}
	}
	if wall <= 0 {
		wall = time.Nanosecond
	}
	n := float64(nQueries)
	return modeledRun{
		qps:       n / wall.Seconds(),
		latencyMS: latency.Seconds() * 1000 / n,
		avgBlocks: float64(blocks) / n,
	}, nil
}

// generateRows materializes a dataset spec into plain rows plus its MBR.
func generateRows(spec dataset.Spec) ([]spatialkeyword.Object, geo.Rect, *dataset.Stats, error) {
	st := objstore.New(storage.NewDisk(storage.DefaultBlockSize))
	stats, err := dataset.Generate(spec, st)
	if err != nil {
		return nil, geo.Rect{}, nil, err
	}
	var rows []spatialkeyword.Object
	var bounds geo.Rect
	err = st.Scan(func(o objstore.Object, _ objstore.Ptr) error {
		rows = append(rows, spatialkeyword.Object{ID: uint64(o.ID), Point: o.Point, Text: o.Text})
		r := geo.PointRect(o.Point)
		if bounds.IsZero() {
			bounds = r
		} else {
			bounds = bounds.Union(r)
		}
		return nil
	})
	if err != nil {
		return nil, geo.Rect{}, nil, err
	}
	return rows, bounds, stats, nil
}

// buildSharded loads the rows into a fresh n-shard engine (grid-partitioned
// over the dataset MBR).
func buildSharded(rows []spatialkeyword.Object, bounds geo.Rect, sigBytes, n int) (*shard.ShardedEngine, error) {
	eng, err := shard.New(spatialkeyword.Config{SignatureBytes: sigBytes}, shard.Options{
		Shards: n,
		Bounds: bounds,
	})
	if err != nil {
		return nil, err
	}
	for _, o := range rows {
		if _, err := eng.Add(o.Point, o.Text); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// throughputQuery is one pre-generated query of the throughput workload.
type throughputQuery struct {
	point    []float64
	keywords []string
}

// throughputWorkload pre-generates n queries following the data distribution
// with keywords from the moderately frequent vocabulary band, mirroring
// Env.MakeQueries.
func throughputWorkload(rows []spatialkeyword.Object, stats *dataset.Stats, n, numKeywords int, seed int64) ([]throughputQuery, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("bench: empty dataset")
	}
	band := stats.WordsByFreq()
	if len(band) > 40 {
		band = band[2:40]
	}
	if len(band) == 0 {
		return nil, fmt.Errorf("bench: empty vocabulary")
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]throughputQuery, n)
	for i := range out {
		o := rows[rng.Intn(len(rows))]
		kws := make([]string, 0, numKeywords)
		seen := map[string]bool{}
		for len(kws) < numKeywords {
			w := band[rng.Intn(len(band))]
			if !seen[w] {
				seen[w] = true
				kws = append(kws, w)
			}
		}
		out[i] = throughputQuery{
			point:    []float64{o.Point[0] + rng.NormFloat64()*50, o.Point[1] + rng.NormFloat64()*50},
			keywords: kws,
		}
	}
	return out, nil
}

// measureQPS runs clients×queriesPerClient queries (round-robin over the
// workload, offset per client) and returns wall-clock queries per second.
func measureQPS(clients, queriesPerClient int, run func(*throughputQuery) error, queries []throughputQuery) (float64, error) {
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	//skvet:ignore determinism measured throughput is wall-clock by definition; modeled disk time is reported separately
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < queriesPerClient; i++ {
				q := &queries[(c*queriesPerClient+i)%len(queries)]
				if err := run(q); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(c)
	}
	wg.Wait()
	//skvet:ignore determinism measured throughput is wall-clock by definition; modeled disk time is reported separately
	elapsed := time.Since(start)
	if firstErr != nil {
		return 0, firstErr
	}
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(clients*queriesPerClient) / elapsed.Seconds(), nil
}
