package bench

import (
	"strconv"
	"strings"
	"testing"

	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/storage"
)

func TestParallelThroughput(t *testing.T) {
	tab, err := ParallelThroughput(dataset.Restaurants(0.0005), 16, []int{1, 2}, []int{1, 4}, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 2 shard counts × 2 client counts", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if len(row) != len(tab.Columns) {
			t.Fatalf("row %v has %d cells, want %d", row, len(row), len(tab.Columns))
		}
		if row[2] == "0" || row[3] == "0" {
			t.Errorf("zero QPS in row %v", row)
		}
	}
	// The 1-shard rows anchor the speedup column at 1.00x.
	if !strings.HasPrefix(tab.Rows[0][4], "1.00") {
		t.Errorf("baseline speedup = %q", tab.Rows[0][4])
	}
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "topkQPS") {
		t.Error("render missing columns")
	}
}

func TestShardedDiskScaling(t *testing.T) {
	tab, err := ShardedDiskScaling(dataset.Restaurants(0.001), 16, []int{1, 4}, 32, 7, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want one per shard count", len(tab.Rows))
	}
	if !strings.HasPrefix(tab.Rows[0][5], "1.00") {
		t.Errorf("baseline speedup = %q", tab.Rows[0][5])
	}
	one, err := strconv.ParseFloat(tab.Rows[0][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	four, err := strconv.ParseFloat(tab.Rows[1][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if one <= 0 || four <= 0 {
		t.Fatalf("non-positive modeled QPS: %v vs %v", one, four)
	}
	// The acceptance bar for the scale-out extension: with one device per
	// shard, spreading the workload's disk work across 4 devices must beat
	// a single device's throughput.
	if four <= one {
		t.Errorf("modeled throughput did not scale: 1 shard %.0f QPS, 4 shards %.0f QPS", one, four)
	}
}
