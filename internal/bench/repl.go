package bench

import (
	"encoding/binary"
	"fmt"

	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/wal"
)

// runReplSnapshot measures the modeled disk cost of a follower re-bootstrap:
// sequentially read every block of the leader's checkpointed state, write it
// locally, create an empty local log, and commit with a manifest write —
// the block-level shape of internal/repl's snapshot bootstrap. The leader's
// own build is not metered (that state exists before the follower arrives).
func runReplSnapshot(work []ingestMut, cm storage.CostModel) (Measurement, error) {
	leaderDev := storage.NewDisk(storage.DefaultBlockSize)
	leader := objstore.New(leaderDev)
	for _, w := range work {
		if _, _, err := leader.Append(w.point, w.text); err != nil {
			return Measurement{}, err
		}
	}
	if _, err := leader.Checkpoint(); err != nil {
		return Measurement{}, err
	}

	follDev := storage.NewDisk(storage.DefaultBlockSize)
	walDev := storage.NewDisk(storage.DefaultBlockSize)
	maniDev := storage.NewDisk(storage.DefaultBlockSize)
	arm := newIngestArm(cm)
	devs := []storage.Device{leaderDev, follDev, walDev, maniDev}
	err := arm.step(devs, func() error {
		n := leaderDev.NumBlocks()
		data, err := leaderDev.ReadRun(1, n)
		if err != nil {
			return err
		}
		if err := follDev.WriteRun(follDev.AllocRun(n), n, data); err != nil {
			return err
		}
		if _, err := wal.Create(walDev); err != nil {
			return err
		}
		manifest := make([]byte, maniDev.BlockSize())
		binary.LittleEndian.PutUint64(manifest, uint64(len(work)))
		return maniDev.Write(maniDev.Alloc(), manifest)
	})
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: repl snapshot arm: %w", err)
	}
	return arm.measurement(MethodReplSnapshot, len(work)), nil
}

// runReplShip measures the modeled disk cost of catching up by log
// shipping: the follower already holds the first len(work)-lag objects (its
// last bootstrap, not metered) and replays the last lag records the way
// internal/repl's follower applies a batch — re-log each record into the
// local WAL, apply it to the store, and group-commit per shipped batch.
func runReplShip(work []ingestMut, lag, batch int, cm storage.CostModel) (Measurement, error) {
	if lag > len(work) {
		return Measurement{}, fmt.Errorf("bench: repl lag %d > %d records", lag, len(work))
	}
	objDev := storage.NewDisk(storage.DefaultBlockSize)
	walDev := storage.NewDisk(storage.DefaultBlockSize)
	store := objstore.New(objDev)
	behind := work[:len(work)-lag]
	for _, w := range behind {
		if _, _, err := store.Append(w.point, w.text); err != nil {
			return Measurement{}, err
		}
	}
	if _, err := store.Checkpoint(); err != nil {
		return Measurement{}, err
	}
	l, err := wal.Create(walDev)
	if err != nil {
		return Measurement{}, err
	}
	app := wal.NewAppender(l, 0)

	arm := newIngestArm(cm)
	devs := []storage.Device{objDev, walDev}
	for i, w := range work[len(behind):] {
		err := arm.step(devs, func() error {
			rec := wal.Record{Op: wal.OpAdd, ID: uint64(len(behind) + i), Point: w.point, Text: w.text}
			if _, err := app.AppendAsync(rec); err != nil {
				return err
			}
			if _, _, err := store.Append(w.point, w.text); err != nil {
				return err
			}
			if (i+1)%batch == 0 {
				return app.Sync()
			}
			return nil
		})
		if err != nil {
			return Measurement{}, fmt.Errorf("bench: repl ship arm (lag %d): %w", lag, err)
		}
	}
	err = arm.step(devs, func() error {
		if err := app.Sync(); err != nil {
			return err
		}
		_, err := store.Checkpoint()
		return err
	})
	if err != nil {
		return Measurement{}, fmt.Errorf("bench: repl ship finish (lag %d): %w", lag, err)
	}
	return arm.measurement(MethodReplShip, lag), nil
}

// ReplCatchup quantifies the resync policy of the replication subsystem
// (DESIGN.md S16): a follower that falls lag records behind a leader of
// `total` objects can catch up either by re-bootstrapping from a full
// snapshot (cost ~constant in lag: copy everything) or by shipping and
// replaying the missing log suffix (cost linear in lag). The crossover is
// why the follower tails the log while it can and only re-bootstraps on
// HTTP 410, when the leader has pruned the generation it needs. Both arms
// replay the same seeded workload onto simulated disks, so every number is
// a pure function of (total, lags, batch, seed, cost model) — no wall clock
// — and the table feeds the same CI baseline gate as vary-k and ingest.
func ReplCatchup(total int, lags []int, batch int, seed int64, cm storage.CostModel) (*Table, error) {
	if total <= 0 {
		return nil, fmt.Errorf("bench: repl total %d", total)
	}
	if batch <= 0 {
		return nil, fmt.Errorf("bench: repl batch %d", batch)
	}
	t := &Table{
		Title:   fmt.Sprintf("Replication catch-up — %d-object leader, snapshot re-bootstrap vs shipping the last `lag` records (S16)", total),
		Columns: append(measurementColumns, "xSnap"),
		Notes: []string{
			"expect: shipping a small lag beats a full snapshot re-bootstrap by a",
			"wide margin, and the advantage shrinks as lag approaches the dataset",
			"size — the crossover that justifies tail-while-possible, 410-then-snapshot",
		},
	}
	work := ingestWorkload(total, seed)
	snap, err := runReplSnapshot(work, cm)
	if err != nil {
		return nil, err
	}
	row := t.measurementRow("snapshot", snap)
	t.Rows = append(t.Rows, append(row, "1.0x"))
	snapTotal := float64(snap.AvgDiskTime) * float64(snap.Queries)
	for _, lag := range lags {
		if lag <= 0 {
			return nil, fmt.Errorf("bench: repl lag %d", lag)
		}
		m, err := runReplShip(work, lag, batch, cm)
		if err != nil {
			return nil, err
		}
		row := t.measurementRow(fmt.Sprintf("lag=%d", lag), m)
		speed := "inf"
		if shipTotal := float64(m.AvgDiskTime) * float64(m.Queries); shipTotal > 0 {
			speed = fmt.Sprintf("%.1fx", snapTotal/shipTotal)
		}
		t.Rows = append(t.Rows, append(row, speed))
	}
	return t, nil
}
