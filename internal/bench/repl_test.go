package bench

import (
	"reflect"
	"testing"

	"spatialkeyword/internal/storage"
)

// replTotal pulls one row's total modeled disk time (avg x records).
func replTotal(t *testing.T, tab *Table, sweep string) float64 {
	t.Helper()
	m := ingestCell(t, tab, sweep)
	return float64(m.AvgDiskTime) * float64(m.Queries)
}

// TestReplCatchupCrossover pins the property the resync policy is built on:
// shipping a small lag is far cheaper than a snapshot re-bootstrap, and the
// advantage must shrink monotonically as the lag grows toward the dataset.
func TestReplCatchupCrossover(t *testing.T) {
	total := 400
	tab, err := ReplCatchup(total, []int{16, 64, total}, 8, 1, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Cells) != 4 {
		t.Fatalf("cells = %d, want 4 (snapshot + three lags)", len(tab.Cells))
	}
	snap := ingestCell(t, tab, "snapshot")
	if snap.Method != MethodReplSnapshot {
		t.Fatalf("snapshot cell method = %s", snap.Method)
	}
	if snap.AvgDiskTime <= 0 {
		t.Fatal("snapshot arm has no modeled disk time")
	}
	snapTotal := replTotal(t, tab, "snapshot")
	small := replTotal(t, tab, "lag=16")
	mid := replTotal(t, tab, "lag=64")
	full := replTotal(t, tab, "lag=400")
	if small <= 0 || mid <= 0 || full <= 0 {
		t.Fatalf("ship arms have no modeled disk time: %v %v %v", small, mid, full)
	}
	if got := snapTotal / small; got < 3 {
		t.Errorf("shipping lag=16 only %.1fx cheaper than snapshot, want >= 3x", got)
	}
	if !(small < mid && mid < full) {
		t.Errorf("ship cost not monotone in lag: %v, %v, %v", small, mid, full)
	}
	if full < snapTotal {
		t.Errorf("replaying the whole dataset (%.0f) cheaper than snapshot copy (%.0f): 410 re-bootstrap would never pay off",
			full, snapTotal)
	}
}

// TestReplCatchupDeterministic pins the property the CI regression gate
// relies on: identical runs produce identical cells and rendered rows, with
// no wall-clock component anywhere in the table.
func TestReplCatchupDeterministic(t *testing.T) {
	a, err := ReplCatchup(200, []int{8, 32}, 8, 7, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReplCatchup(200, []int{8, 32}, 8, 7, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Cells, b.Cells) {
		t.Errorf("cells differ between identical runs:\n%+v\n%+v", a.Cells, b.Cells)
	}
	if !reflect.DeepEqual(a.Rows, b.Rows) {
		t.Errorf("rendered rows differ between identical runs:\n%q\n%q", a.Rows, b.Rows)
	}
	for _, c := range a.Cells {
		if c.Meas.AvgCPUTime != 0 {
			t.Errorf("cell %q reports CPU time %v; the repl table must be wall-clock free",
				c.Sweep, c.Meas.AvgCPUTime)
		}
	}
}
