package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"spatialkeyword/internal/obs"
)

// Report is the machine-readable result of one skbench run, written by the
// -json flag as BENCH_<experiment>.json and consumed by the CI
// benchmark-regression workflow. Disk metrics (block counts and modeled
// disk time under the cost model) are seed-deterministic, so a committed
// baseline report compares exactly across hosts; CPU time is recorded for
// context but never compared.
type Report struct {
	Experiment string        `json:"experiment"`
	Tables     []ReportTable `json:"tables"`
}

// ReportTable is one experiment table's raw measurements.
type ReportTable struct {
	Title string       `json:"title"`
	Cells []ReportCell `json:"cells"`
}

// ReportCell is one (sweep, method) measurement.
type ReportCell struct {
	Sweep               string                `json:"sweep"`
	Method              string                `json:"method"`
	Queries             int                   `json:"queries"`
	AvgResults          float64               `json:"avg_results"`
	AvgRandomBlocks     float64               `json:"avg_random_blocks"`
	AvgSequentialBlocks float64               `json:"avg_sequential_blocks"`
	AvgObjectAccesses   float64               `json:"avg_object_accesses"`
	AvgDiskTimeUS       float64               `json:"avg_disk_time_us"`
	AvgCPUTimeUS        float64               `json:"avg_cpu_time_us"`
	DiskTimeHist        obs.HistogramSnapshot `json:"disk_time_hist"`
}

// NewReport collects the raw cells of the given tables. Tables without
// cells (hand-built rows like Table 1) are skipped.
func NewReport(experiment string, tables ...*Table) *Report {
	r := &Report{Experiment: experiment}
	for _, t := range tables {
		if len(t.Cells) == 0 {
			continue
		}
		rt := ReportTable{Title: t.Title}
		for _, c := range t.Cells {
			m := c.Meas
			rt.Cells = append(rt.Cells, ReportCell{
				Sweep:               c.Sweep,
				Method:              m.Method.String(),
				Queries:             m.Queries,
				AvgResults:          m.AvgResults,
				AvgRandomBlocks:     m.AvgRandom,
				AvgSequentialBlocks: m.AvgSequential,
				AvgObjectAccesses:   m.AvgObjects,
				AvgDiskTimeUS:       float64(m.AvgDiskTime) / float64(time.Microsecond),
				AvgCPUTimeUS:        float64(m.AvgCPUTime) / float64(time.Microsecond),
				DiskTimeHist:        m.DiskTimeHist,
			})
		}
		r.Tables = append(r.Tables, rt)
	}
	return r
}

// WriteJSON renders the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path.
func (r *Report) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReport parses a report written by WriteJSON.
func ReadReport(r io.Reader) (*Report, error) {
	var out Report
	if err := json.NewDecoder(r).Decode(&out); err != nil {
		return nil, fmt.Errorf("bench: bad report: %w", err)
	}
	return &out, nil
}

// ReadReportFile parses the report at path.
func ReadReportFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadReport(f)
}

// cellKey identifies a cell across runs.
func cellKey(title string, c ReportCell) string {
	return title + " | " + c.Sweep + " | " + c.Method
}

// index maps every cell of the report by its key.
func (r *Report) index() map[string]ReportCell {
	out := make(map[string]ReportCell)
	for _, t := range r.Tables {
		for _, c := range t.Cells {
			out[cellKey(t.Title, c)] = c
		}
	}
	return out
}

// Compare checks current against baseline and returns one message per
// regression: a cell whose modeled disk time grew by more than tolerance
// (0.20 = 20%), or a baseline cell that disappeared. Only deterministic
// metrics are compared — CPU time is ignored. An empty slice means no
// regressions.
func Compare(baseline, current *Report, tolerance float64) []string {
	var msgs []string
	cur := current.index()
	for _, t := range baseline.Tables {
		for _, b := range t.Cells {
			key := cellKey(t.Title, b)
			c, ok := cur[key]
			if !ok {
				msgs = append(msgs, fmt.Sprintf("missing cell: %s", key))
				continue
			}
			if b.AvgDiskTimeUS > 0 && c.AvgDiskTimeUS > b.AvgDiskTimeUS*(1+tolerance) {
				msgs = append(msgs, fmt.Sprintf(
					"disk time regression: %s: %.1fµs → %.1fµs (+%.1f%%, tolerance %.0f%%)",
					key, b.AvgDiskTimeUS, c.AvgDiskTimeUS,
					100*(c.AvgDiskTimeUS/b.AvgDiskTimeUS-1), 100*tolerance))
			}
		}
	}
	return msgs
}
