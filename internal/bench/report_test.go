package bench

import (
	"bytes"
	"strings"
	"testing"

	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/storage"
)

// buildReport runs a tiny vary-k sweep and packages it as a report.
func buildReport(t *testing.T) *Report {
	t.Helper()
	env, err := BuildEnv(BuildConfig{Spec: dataset.Restaurants(0.001), SigBytes: 8})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := VaryK(env, []int{1, 5}, 2, 4, 1, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	return NewReport("vary-k", tab)
}

func TestReportRoundTripAndCompare(t *testing.T) {
	rep := buildReport(t)
	if len(rep.Tables) != 1 {
		t.Fatalf("tables = %d", len(rep.Tables))
	}
	cells := rep.Tables[0].Cells
	if len(cells) != 2*len(AllMethods) {
		t.Fatalf("cells = %d, want %d", len(cells), 2*len(AllMethods))
	}
	for _, c := range cells {
		if c.Queries != 4 {
			t.Fatalf("cell %s/%s queries = %d", c.Sweep, c.Method, c.Queries)
		}
		if c.DiskTimeHist.Count != 4 {
			t.Fatalf("cell %s/%s hist count = %d", c.Sweep, c.Method, c.DiskTimeHist.Count)
		}
		// The histogram's total must agree with the per-query average.
		wantSum := c.AvgDiskTimeUS * 4 / 1e6
		if diff := c.DiskTimeHist.Sum - wantSum; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("cell %s/%s hist sum %g, avg*n %g", c.Sweep, c.Method, c.DiskTimeHist.Sum, wantSum)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if msgs := Compare(rep, back, 0.2); len(msgs) != 0 {
		t.Fatalf("self-compare regressions: %v", msgs)
	}

	// A deterministic rerun compares clean too.
	if msgs := Compare(rep, buildReport(t), 0.0); len(msgs) != 0 {
		t.Fatalf("rerun not deterministic: %v", msgs)
	}
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := &Report{Experiment: "x", Tables: []ReportTable{{
		Title: "T",
		Cells: []ReportCell{
			{Sweep: "k=1", Method: "IR2-Tree", AvgDiskTimeUS: 100},
			{Sweep: "k=5", Method: "IR2-Tree", AvgDiskTimeUS: 100},
			{Sweep: "k=9", Method: "IR2-Tree", AvgDiskTimeUS: 100},
		},
	}}}
	cur := &Report{Experiment: "x", Tables: []ReportTable{{
		Title: "T",
		Cells: []ReportCell{
			{Sweep: "k=1", Method: "IR2-Tree", AvgDiskTimeUS: 119}, // within 20%
			{Sweep: "k=5", Method: "IR2-Tree", AvgDiskTimeUS: 121}, // beyond 20%
			// k=9 missing
		},
	}}}
	msgs := Compare(base, cur, 0.2)
	if len(msgs) != 2 {
		t.Fatalf("messages = %v", msgs)
	}
	if !strings.Contains(msgs[0], "regression") || !strings.Contains(msgs[0], "k=5") {
		t.Errorf("msgs[0] = %q", msgs[0])
	}
	if !strings.Contains(msgs[1], "missing") || !strings.Contains(msgs[1], "k=9") {
		t.Errorf("msgs[1] = %q", msgs[1])
	}
	if msgs := Compare(base, base, 0); len(msgs) != 0 {
		t.Fatalf("identical reports: %v", msgs)
	}
}
