package bench

import (
	"fmt"
	"math/rand"
	"strconv"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/obs"
	"spatialkeyword/internal/skql"
	"spatialkeyword/internal/storage"
)

// SKQLEnv is the environment of the SKQL planner experiment (E-X11): a
// single engine built from a generated dataset, fronted by the SKQL
// catalog with its sidecar inverted index already built (so IIO arms
// are not charged the one-time build I/O).
type SKQLEnv struct {
	Eng   *spatialkeyword.Engine
	Cat   *skql.Catalog
	Stats *dataset.Stats

	points [][]float64 // every object's location, for query placement
}

// BuildSKQLEnv generates the dataset into a fresh engine and prepares
// the SKQL catalog over it.
func BuildSKQLEnv(spec dataset.Spec, sigBytes int) (*SKQLEnv, error) {
	store := objstore.New(storage.NewDisk(storage.DefaultBlockSize))
	stats, err := dataset.Generate(spec, store)
	if err != nil {
		return nil, err
	}
	eng, err := spatialkeyword.NewEngine(spatialkeyword.Config{SignatureBytes: sigBytes})
	if err != nil {
		return nil, err
	}
	env := &SKQLEnv{Eng: eng, Stats: stats}
	err = store.Scan(func(o objstore.Object, _ objstore.Ptr) error {
		env.points = append(env.points, o.Point)
		_, err := eng.Add(o.Point, o.Text)
		return err
	})
	if err != nil {
		return nil, err
	}
	env.Cat = skql.NewCatalog(eng)
	if err := env.Cat.EnsureIndex(); err != nil {
		return nil, err
	}
	return env, nil
}

// skqlBand selects the query vocabulary for one regime of the paper's
// §6.B extremes: "rare" draws from the low-frequency tail (posting
// lists of a handful of objects), "common" from the most ubiquitous
// words (posting lists covering a large corpus fraction, where
// signatures stop pruning).
func (e *SKQLEnv) skqlBand(regime string, minWords int) []string {
	byFreq := e.Stats.WordsByFreq()
	if regime == "common" {
		if len(byFreq) > minWords {
			byFreq = byFreq[:minWords]
		}
		return byFreq
	}
	rareHi := e.Stats.Objects / 100
	if rareHi < 2 {
		rareHi = 2
	}
	var band []string
	for i := len(byFreq) - 1; i >= 0 && len(band) < minWords*4; i-- {
		if df := e.Stats.DocFreq[byFreq[i]]; df >= 1 && df <= rareHi {
			band = append(band, byFreq[i])
		}
	}
	if len(band) < 2 { // degenerate corpus: fall back to the tail
		band = byFreq[len(byFreq)-minWords:]
	}
	return band
}

// SKQLWorkload builds n seeded SKQL statements for one regime: top-k
// distance-first queries with a two-keyword conjunction drawn from the
// regime's band, placed at jittered object locations (queries follow
// the data distribution, as elsewhere in the harness).
func (e *SKQLEnv) SKQLWorkload(regime string, n, k int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	band := e.skqlBand(regime, 8)
	stmts := make([]string, 0, n)
	for i := 0; i < n; i++ {
		p := e.points[rng.Intn(len(e.points))]
		x := p[0] + rng.NormFloat64()*50
		y := p[1] + rng.NormFloat64()*50
		w1 := band[rng.Intn(len(band))]
		w2 := w1
		for w2 == w1 && len(band) > 1 {
			w2 = band[rng.Intn(len(band))]
		}
		stmts = append(stmts, fmt.Sprintf("SELECT TOP %d NEAR (%s, %s) MATCH %q AND %q",
			k, strconv.FormatFloat(x, 'g', -1, 64), strconv.FormatFloat(y, 'g', -1, 64), w1, w2))
	}
	return stmts
}

// MeasureSKQL runs the statements through the catalog with the given
// forced path ("" = the cost-based planner), charging each query the
// block accesses its executed operators reported (engine devices plus
// the sidecar index, exactly what EXPLAIN ANALYZE shows).
func (e *SKQLEnv) MeasureSKQL(method Method, force string, stmts []string, cm storage.CostModel) (Measurement, error) {
	out := Measurement{Method: method, Queries: len(stmts)}
	if len(stmts) == 0 {
		return out, nil
	}
	hist := obs.NewHistogram(obs.LatencyBuckets())
	var random, sequential uint64
	var cpu time.Duration
	var results, objects int
	for _, src := range stmts {
		if force != "" {
			src += " USING " + force
		}
		q, err := skql.Parse(src)
		if err != nil {
			return out, fmt.Errorf("bench: skql parse %q: %w", src, err)
		}
		//skvet:ignore determinism CPU time is wall-clock by definition; it is reported apart from modeled disk time
		start := time.Now()
		rs, err := e.Cat.Run(q)
		//skvet:ignore determinism CPU time is wall-clock by definition; it is reported apart from modeled disk time
		cpu += time.Since(start)
		if err != nil {
			return out, fmt.Errorf("bench: skql run %q: %w", src, err)
		}
		results += len(rs.Results)
		var qr, qs uint64
		for _, a := range rs.Actuals {
			qr += a.BlocksRandom
			qs += a.BlocksSequential
			if a.Stats.ObjectsLoaded > 0 {
				objects += a.Stats.ObjectsLoaded
			} else {
				objects += a.Candidates
			}
		}
		random += qr
		sequential += qs
		diskT := time.Duration(qr)*cm.RandomAccess + time.Duration(qs)*cm.SequentialAccess
		hist.Observe(diskT.Seconds())
	}
	n := float64(len(stmts))
	out.DiskTimeHist = hist.Snapshot()
	out.AvgResults = float64(results) / n
	out.AvgObjects = float64(objects) / n
	out.AvgRandom = float64(random) / n
	out.AvgSequential = float64(sequential) / n
	out.AvgDiskTime = time.Duration(float64(time.Duration(random)*cm.RandomAccess+
		time.Duration(sequential)*cm.SequentialAccess) / n)
	out.AvgCPUTime = cpu / time.Duration(len(stmts))
	return out, nil
}

// skqlArms pairs each experiment arm with the USING clause that forces
// it ("" = let the planner choose).
var skqlArms = []struct {
	method Method
	force  string
}{
	{MethodSKQLPlanner, ""},
	{MethodSKQLIR2, "ir2"},
	{MethodSKQLIIO, "iio"},
}

// SKQL runs E-X11: the same rare-keyword and common-keyword workloads
// under the cost-based planner and under each forced physical path.
// The paper's §6.B observation is the acceptance bar — rare keywords
// favor the inverted index, ubiquitous keywords the tree scan — and
// the planner must match the better forced arm (within tolerance)
// on both extremes. Block counts are pure functions of (spec, sig,
// queries, seed), so the cells feed the CI baseline gate.
func SKQL(spec dataset.Spec, sigBytes, k, nQueries int, seed int64, cm storage.CostModel) (*Table, error) {
	env, err := BuildSKQLEnv(spec, sigBytes)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title: fmt.Sprintf("SKQL planner vs forced paths — %s dataset, top-%d, 2 keywords (E-X11)",
			spec.Name, k),
		Columns: measurementColumns,
		Notes: []string{
			"expect: rare keywords — forced IIO beats forced IR2 and the planner",
			"routes to IIO; common keywords — the tree scan beats IIO and the",
			"planner routes to it; on both extremes the planner's disk time",
			"matches the better forced arm (the cost-based routing acceptance)",
		},
	}
	for _, regime := range []string{"rare", "common"} {
		stmts := env.SKQLWorkload(regime, nQueries, k, seed)
		for _, arm := range skqlArms {
			m, err := env.MeasureSKQL(arm.method, arm.force, stmts, cm)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, t.measurementRow(regime, m))
		}
	}
	return t, nil
}
