package bench

import (
	"testing"

	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/storage"
)

// TestSKQLPlannerNeverWorse is the E-X11 acceptance bar: on both
// workload extremes (rare keywords, ubiquitous keywords) the cost-based
// planner's modeled disk time must match the better forced physical
// path within tolerance. A planner that routes wrongly on either
// extreme pays the wrong path's full I/O and fails loudly here.
func TestSKQLPlannerNeverWorse(t *testing.T) {
	spec := dataset.Restaurants(0.01)
	env, err := BuildSKQLEnv(spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	cm := storage.DefaultCostModel()
	const tolerance = 1.15
	for _, regime := range []string{"rare", "common"} {
		stmts := env.SKQLWorkload(regime, 10, 10, 1)
		times := make(map[Method]float64)
		for _, arm := range skqlArms {
			m, err := env.MeasureSKQL(arm.method, arm.force, stmts, cm)
			if err != nil {
				t.Fatalf("%s/%s: %v", regime, arm.method, err)
			}
			times[arm.method] = m.AvgDiskTime.Seconds()
			t.Logf("%s %-9s disk=%v rand=%.1f seq=%.1f results=%.1f",
				regime, arm.method, m.AvgDiskTime, m.AvgRandom, m.AvgSequential, m.AvgResults)
		}
		best := times[MethodSKQLIR2]
		if times[MethodSKQLIIO] < best {
			best = times[MethodSKQLIIO]
		}
		if got := times[MethodSKQLPlanner]; got > best*tolerance {
			t.Errorf("%s workload: planner disk time %.4fs exceeds best forced %.4fs beyond %.0f%% tolerance",
				regime, got, best, (tolerance-1)*100)
		}
	}
}

// TestSKQLResultsAgreeAcrossArms pins that forcing a path changes only
// the I/O, never the answer: all three arms return the same result
// count per workload.
func TestSKQLResultsAgreeAcrossArms(t *testing.T) {
	env, err := BuildSKQLEnv(dataset.Restaurants(0.005), 8)
	if err != nil {
		t.Fatal(err)
	}
	cm := storage.DefaultCostModel()
	stmts := env.SKQLWorkload("rare", 5, 5, 42)
	var want float64
	for i, arm := range skqlArms {
		m, err := env.MeasureSKQL(arm.method, arm.force, stmts, cm)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = m.AvgResults
		} else if m.AvgResults != want {
			t.Errorf("%s: avg results %.2f, planner got %.2f", arm.method, m.AvgResults, want)
		}
	}
}

// TestSKQLTableShape checks the experiment emits 2 regimes x 3 arms.
func TestSKQLTableShape(t *testing.T) {
	tbl, err := SKQL(dataset.Restaurants(0.005), 8, 5, 3, 7, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 6 || len(tbl.Cells) != 6 {
		t.Fatalf("rows=%d cells=%d, want 6 each", len(tbl.Rows), len(tbl.Cells))
	}
	if tbl.Cells[0].Sweep != "rare" || tbl.Cells[3].Sweep != "common" {
		t.Fatalf("sweep order: %q, %q", tbl.Cells[0].Sweep, tbl.Cells[3].Sweep)
	}
}
