package bench

import (
	"fmt"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/rtree"
	"spatialkeyword/internal/storage"
)

// SplitAblation compares the IR²-Tree under the three node-split algorithms
// (extension): the paper fixes Guttman's Quadratic Split; this experiment
// shows how the choice moves build cost and query I/O. Expected: linear
// builds fastest but clusters worst; R* clusters best (fewest query node
// reads); quadratic sits between — and the *query*-side differences are
// modest next to the signature pruning that dominates this index.
func SplitAblation(base BuildConfig, k, numKeywords, nQueries int, seed int64, cm storage.CostModel) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("Split-algorithm ablation — %s dataset, k=%d, %d keywords (extension)",
			base.Spec.Name, k, numKeywords),
		Columns: []string{"split", "buildRandBlk", "nodes", "height", "queryTime", "queryRandBlk", "queryObjAcc"},
	}
	for _, alg := range []rtree.SplitAlgorithm{rtree.QuadraticSplit, rtree.LinearSplit, rtree.RStarSplit} {
		cfg := base
		cfg.Methods = []Method{} // dataset only; the tree is built below
		env, err := BuildEnv(cfg)
		if err != nil {
			return nil, err
		}
		env.IR2Disk = storage.NewDisk(storage.DefaultBlockSize)
		tree, err := core.New(env.IR2Disk, env.Store, core.Options{
			LeafSignature: env.leafConfig(),
			MaxEntries:    base.MaxEntries,
			Split:         alg,
		})
		if err != nil {
			return nil, err
		}
		if err := tree.Build(); err != nil {
			return nil, err
		}
		env.IR2 = tree
		buildIO := env.IR2Disk.Stats()

		queries, err := env.MakeQueries(nQueries, k, numKeywords, seed)
		if err != nil {
			return nil, err
		}
		meas, err := env.Measure(MethodIR2, queries, cm)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			alg.String(),
			fmt.Sprintf("%d", buildIO.Random()),
			fmt.Sprintf("%d", tree.RTree().NumNodes()),
			fmt.Sprintf("%d", tree.RTree().Height()),
			fmtDur(meas.TotalTime()),
			fmtF(meas.AvgRandom),
			fmtF(meas.AvgObjects),
		})
	}
	return t, nil
}
