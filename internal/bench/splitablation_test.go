package bench

import (
	"testing"

	"spatialkeyword/internal/dataset"
	"spatialkeyword/internal/storage"
)

func TestSplitAblation(t *testing.T) {
	base := BuildConfig{Spec: dataset.Restaurants(0.001), SigBytes: 8, MaxEntries: 8}
	tbl, err := SplitAblation(base, 5, 2, 5, 53, storage.DefaultCostModel())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	names := map[string]bool{}
	for _, row := range tbl.Rows {
		names[row[0]] = true
		if row[1] == "0" || row[2] == "0" {
			t.Errorf("row %v has empty build metrics", row)
		}
	}
	for _, want := range []string{"quadratic", "linear", "rstar"} {
		if !names[want] {
			t.Errorf("missing %s row", want)
		}
	}
}
