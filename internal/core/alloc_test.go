//go:build !race

// Allocation-regression gates for the warm query path. Skipped under -race:
// the race detector's allocation instrumentation breaks
// testing.AllocsPerRun's accounting. (The same queries run race-enabled in
// the ordinary correctness tests.)
package core

import (
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/irscore"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/sigfile"
	"spatialkeyword/internal/storage"
)

// newWarmTree builds a small in-memory IR²-Tree over a few hundred objects.
func newWarmTree(t *testing.T) *IR2Tree {
	t.Helper()
	store := objstore.New(storage.NewDisk(4096))
	words := []string{"pizza", "cafe", "bar", "sushi", "deli", "pub", "grill", "bakery"}
	for i := 0; i < 400; i++ {
		text := words[i%len(words)] + " " + words[(i+3)%len(words)]
		if _, _, err := store.Append(geo.NewPoint(float64(i%20)*5, float64(i/20)*5), text); err != nil {
			t.Fatal(err)
		}
	}
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}
	x, err := New(storage.NewDisk(4096), store, Options{
		LeafSignature: sigfile.Config{LengthBytes: 16, BitsPerWord: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := x.Build(); err != nil {
		t.Fatal(err)
	}
	return x
}

// TestWarmTopKAllocBounded gates the distance-first query: once the node
// cache is warm, a TopK's allocations are per-query constants plus the
// materialized result objects — never the per-node decode storm. The budget
// is an absolute ceiling with headroom over the measured steady state (~64);
// the legacy path on the same workload runs an order of magnitude above it.
func TestWarmTopKAllocBounded(t *testing.T) {
	x := newWarmTree(t)
	p := geo.NewPoint(50, 50)
	run := func() {
		if _, _, err := x.TopK(5, p, []string{"pizza"}); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the node cache and pools
	packed := testing.AllocsPerRun(100, run)
	const budget = 128
	if packed > budget {
		t.Fatalf("warm TopK allocates %.1f objects/op, want <= %d", packed, budget)
	}
	x.RTree().SetHotPath(false)
	run()
	legacy := testing.AllocsPerRun(100, run)
	x.RTree().SetHotPath(true)
	if legacy < 5*packed {
		t.Fatalf("legacy path allocates %.1f/op vs packed %.1f/op: packed path lost its edge", legacy, packed)
	}
}

// TestWarmRankedAllocBounded gates the general ranked query the same way.
func TestWarmRankedAllocBounded(t *testing.T) {
	x := newWarmTree(t)
	sc := irscore.NewScorer(400, func(string) int { return 50 })
	p := geo.NewPoint(50, 50)
	run := func() {
		if _, _, err := x.TopKRanked(5, p, []string{"pizza", "cafe"}, GeneralOptions{Scorer: sc}); err != nil {
			t.Fatal(err)
		}
	}
	run()
	allocs := testing.AllocsPerRun(100, run)
	const budget = 160
	if allocs > budget {
		t.Fatalf("warm TopKRanked allocates %.1f objects/op, want <= %d", allocs, budget)
	}
}
