package core

import (
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/rtree"
)

// SearchArea is the query-area variant the paper mentions for the
// incremental NN algorithm ("an area could be used instead [of a point]",
// Section 3): objects are ranked by their minimum distance to the query
// rectangle — zero for objects inside it — with the same conjunctive
// keyword filtering as Search. Results stream in non-decreasing
// area-distance order.
func (x *IR2Tree) SearchArea(area geo.Rect, keywords []string) *ResultIter {
	kws := x.an.Keywords(keywords)
	sigs := &levelSigs{scheme: x.scheme, kws: kws}
	scorer := func(isObject bool, level int, rect geo.Rect, aux []byte) (float64, bool) {
		if !sigs.matches(level, aux) {
			return 0, false
		}
		return rectDist(rect, area), true
	}
	return newResultIter(x, x.rt.Seek(scorer), kws)
}

// TopKArea returns the k objects containing every keyword that are nearest
// to (or inside) the query area.
func (x *IR2Tree) TopKArea(k int, area geo.Rect, keywords []string) ([]Result, SearchStats, error) {
	it := x.SearchArea(area, keywords)
	defer it.Close()
	var results []Result
	for len(results) < k {
		res, ok, err := it.Next()
		if err != nil {
			return nil, it.Stats(), err
		}
		if !ok {
			break
		}
		results = append(results, res)
	}
	return results, it.Stats(), nil
}

// rectDist is geo.Rect.MinDistRect, aliased for readability at call sites.
func rectDist(a, b geo.Rect) float64 { return a.MinDistRect(b) }

// BuildBulk loads every object of the store with Sort-Tile-Recursive bulk
// loading (an extension over the paper's insert-based construction; see
// rtree.BulkLoad). Signature semantics are identical to Build: leaf
// signatures are the objects' word signatures, interior signatures are
// computed bottom-up through the scheme — with the same deferred pass for
// the MIR²-Tree.
func (x *IR2Tree) BuildBulk() error {
	if x.multilevel {
		x.scheme.mu.Lock()
		x.scheme.deferred = true
		x.scheme.cache = make(map[uint64][]string)
		x.scheme.mu.Unlock()
		defer func() {
			x.scheme.mu.Lock()
			x.scheme.deferred = false
			x.scheme.cache = nil
			x.scheme.mu.Unlock()
		}()
	}
	leaf := x.scheme.levelConfig(0)
	var entries []rtree.BulkEntry
	err := x.store.Scan(func(obj objstore.Object, ptr objstore.Ptr) error {
		words := x.an.Unique(obj.Text)
		if x.multilevel {
			x.scheme.mu.Lock()
			x.scheme.cache[uint64(ptr)] = words
			x.scheme.mu.Unlock()
		}
		entries = append(entries, rtree.BulkEntry{
			Ref:  uint64(ptr),
			Rect: geo.PointRect(obj.Point),
			Aux:  leaf.DocSignature(words),
		})
		return nil
	})
	if err != nil {
		return err
	}
	if len(entries) == 0 {
		return nil
	}
	if err := x.rt.BulkLoad(entries); err != nil {
		return err
	}
	if x.multilevel {
		x.scheme.mu.Lock()
		x.scheme.deferred = false
		x.scheme.mu.Unlock()
		return x.rt.RebuildAux()
	}
	return nil
}
