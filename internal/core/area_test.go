package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/textutil"
)

// bruteTopKArea is the reference area query: filter by containment, sort by
// rect distance (ties by ID), take k.
func bruteTopKArea(objs []objstore.Object, k int, area geo.Rect, keywords []string) []objstore.Object {
	kws := textutil.NormalizeAll(keywords)
	var matches []objstore.Object
	for _, o := range objs {
		if textutil.ContainsAll(o.Text, kws) {
			matches = append(matches, o)
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		di := area.MinDistRect(geo.PointRect(matches[i].Point))
		dj := area.MinDistRect(geo.PointRect(matches[j].Point))
		if di != dj {
			return di < dj
		}
		return matches[i].ID < matches[j].ID
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}

func TestAreaQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	rows := randomRows(rng, 400)
	f := buildFixture(t, rows, 4, 8)
	for trial := 0; trial < 10; trial++ {
		lo := geo.NewPoint(rng.Float64()*800, rng.Float64()*800)
		area := geo.NewRect(lo, geo.NewPoint(lo[0]+100+rng.Float64()*200, lo[1]+100+rng.Float64()*200))
		kw := []string{"pool"}
		if trial%2 == 1 {
			kw = []string{"internet", "spa"}
		}
		want := objIDs(bruteTopKArea(f.objects, 10, area, kw))
		for name, tree := range map[string]*IR2Tree{"IR2": f.ir2, "MIR2": f.mir2} {
			got, _, err := tree.TopKArea(10, area, kw)
			if err != nil {
				t.Fatal(err)
			}
			// Distances tie inside the area (all zero); compare the
			// distance sequence and the membership instead of exact order.
			if len(got) != len(want) {
				t.Fatalf("trial %d (%s): %d results, want %d", trial, name, len(got), len(want))
			}
			for i, r := range got {
				wd := area.MinDistRect(geo.PointRect(r.Object.Point))
				if r.Dist != wd {
					t.Fatalf("trial %d (%s) rank %d: dist %g, want %g", trial, name, i, r.Dist, wd)
				}
				if i > 0 && got[i-1].Dist > r.Dist {
					t.Fatalf("trial %d (%s): order violated", trial, name)
				}
			}
			// Same distance multiset as brute force.
			gotD := make([]float64, len(got))
			wantD := make([]float64, len(want))
			for i := range got {
				gotD[i] = got[i].Dist
			}
			bw := bruteTopKArea(f.objects, 10, area, kw)
			for i := range bw {
				wantD[i] = area.MinDistRect(geo.PointRect(bw[i].Point))
			}
			if fmt.Sprint(gotD) != fmt.Sprint(wantD) {
				t.Fatalf("trial %d (%s): distances %v, want %v", trial, name, gotD, wantD)
			}
		}
	}
}

func TestAreaQueryInsideObjectsFirst(t *testing.T) {
	rows := []struct {
		lat, lon float64
		text     string
	}{
		{5, 5, "inside pool"},
		{6, 6, "inside pool too"},
		{50, 50, "outside pool"},
		{5, 5, "inside but no keyword"},
	}
	f := buildFixture(t, rows, 3, 8)
	area := geo.NewRect(geo.NewPoint(0, 0), geo.NewPoint(10, 10))
	got, _, err := f.ir2.TopKArea(3, area, []string{"pool"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("got %d results", len(got))
	}
	if got[0].Dist != 0 || got[1].Dist != 0 {
		t.Errorf("inside objects should have zero distance: %g, %g", got[0].Dist, got[1].Dist)
	}
	if got[2].Object.ID != 2 || got[2].Dist == 0 {
		t.Errorf("outside object wrong: %+v", got[2])
	}
}

func TestBuildBulkEquivalentToBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	rows := randomRows(rng, 500)
	for _, multilevel := range []bool{false, true} {
		name := "IR2"
		if multilevel {
			name = "MIR2"
		}
		t.Run(name, func(t *testing.T) {
			f := buildFixture(t, rows, 4, 8) // insert-built trees
			bulk := newTreeLike(t, f, multilevel)
			if err := bulk.BuildBulk(); err != nil {
				t.Fatal(err)
			}
			if err := bulk.RTree().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if bulk.Len() != len(rows) {
				t.Fatalf("Len = %d", bulk.Len())
			}
			ref := f.ir2
			if multilevel {
				ref = f.mir2
			}
			for trial := 0; trial < 8; trial++ {
				p := geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
				kw := []string{"pool", "internet"}[:1+trial%2]
				a, _, err := ref.TopK(10, p, kw)
				if err != nil {
					t.Fatal(err)
				}
				b, _, err := bulk.TopK(10, p, kw)
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(resultIDs(a)) != fmt.Sprint(resultIDs(b)) {
					t.Fatalf("trial %d: insert-built %v, bulk-built %v", trial, resultIDs(a), resultIDs(b))
				}
			}
		})
	}
}

// newTreeLike creates an empty tree with the same options as the fixture's.
func newTreeLike(t *testing.T, f *fixture, multilevel bool) *IR2Tree {
	t.Helper()
	opts := Options{
		LeafSignature: f.ir2.scheme.leaf,
		MaxEntries:    f.ir2.RTree().MaxEntries(),
	}
	if multilevel {
		opts.Multilevel = true
		opts.AvgWordsPerObject = f.vocab.AvgUniqueWordsPerDoc()
		opts.VocabSize = f.vocab.NumWords()
	}
	tree, err := New(newDisk(), f.store, opts)
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

func TestBuildBulkEmptyStore(t *testing.T) {
	store := objstore.New(newDisk())
	tree, err := New(newDisk(), store, Options{
		LeafSignature: f8(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BuildBulk(); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 0 {
		t.Error("empty bulk build populated tree")
	}
}
