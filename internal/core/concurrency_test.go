package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/irscore"
)

// TestConcurrentReaders hammers one IR²-Tree with parallel distance-first,
// area, and ranked queries; all must return brute-force-correct results.
// (Writers require external exclusion, per the package contract; readers
// must be safe together.)
func TestConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	rows := randomRows(rng, 300)
	f := buildFixture(t, rows, 4, 8)
	scorer := irscore.NewScorer(f.vocab.NumDocs(), f.vocab.DocFreq)

	const workers = 8
	const iterations = 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < iterations; i++ {
				p := geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
				kw := []string{"pool"}
				if i%2 == 1 {
					kw = []string{"internet", "spa"}
				}
				switch i % 3 {
				case 0:
					got, _, err := f.ir2.TopK(5, p, kw)
					if err != nil {
						errs <- err
						return
					}
					want := bruteTopK(f.objects, 5, p, kw)
					if fmt.Sprint(resultIDs(got)) != fmt.Sprint(objIDs(want)) {
						errs <- fmt.Errorf("worker %d iter %d: %v != %v", seed, i, resultIDs(got), objIDs(want))
						return
					}
				case 1:
					area := geo.NewRect(p, geo.NewPoint(p[0]+100, p[1]+100))
					if _, _, err := f.ir2.TopKArea(5, area, kw); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, _, err := f.ir2.TopKRanked(5, p, kw, GeneralOptions{
						Scorer: scorer, RequireMatch: true,
					}); err != nil {
						errs <- err
						return
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentReadersAcrossTrees runs readers against the IR² and MIR²
// trees (which share the object store device) simultaneously.
func TestConcurrentReadersAcrossTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(112))
	rows := randomRows(rng, 200)
	f := buildFixture(t, rows, 4, 8)
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, tree := range []*IR2Tree{f.ir2, f.mir2} {
		wg.Add(1)
		go func(tr *IR2Tree) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				p := geo.NewPoint(float64(i*30), float64(i*20))
				got, _, err := tr.TopK(3, p, []string{"gym"})
				if err != nil {
					errs <- err
					return
				}
				want := bruteTopK(f.objects, 3, p, []string{"gym"})
				if fmt.Sprint(resultIDs(got)) != fmt.Sprint(objIDs(want)) {
					errs <- fmt.Errorf("iter %d diverged", i)
					return
				}
			}
		}(tree)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
