package core

import (
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/rtree"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

// Result is one answer of a distance-first top-k spatial keyword query.
type Result struct {
	Object objstore.Object
	Dist   float64
}

// SearchStats reports the work performed by a query.
type SearchStats struct {
	// NodesLoaded is the number of tree nodes expanded.
	NodesLoaded int
	// ObjectsLoaded is the number of objects read from the object file.
	ObjectsLoaded int
	// FalsePositives counts loaded objects whose signature matched the
	// query but whose text did not contain all keywords (IR2TopK line 21
	// failing).
	FalsePositives int
	// EntriesPruned is the number of tree entries dropped by the
	// signature check — subtrees and objects never visited.
	EntriesPruned int
	// NodesEnqueued and ObjectsEnqueued count entries that passed the
	// signature check and entered the traversal's priority queue.
	NodesEnqueued   int
	ObjectsEnqueued int
}

// fillTraversal copies the underlying traversal's counters into s.
func (s *SearchStats) fillTraversal(t rtree.TraversalStats) {
	s.NodesLoaded = t.NodesLoaded
	s.EntriesPruned = t.EntriesPruned
	s.NodesEnqueued = t.NodesEnqueued
	s.ObjectsEnqueued = t.ObjectsEnqueued
}

// Search starts an incremental distance-first top-k spatial keyword query
// (the Distance-First IR²-Tree algorithm, Figure 8). Results stream out in
// non-decreasing distance order; pull as many as needed. The traversal is
// the incremental NN algorithm with one addition: an entry is enqueued only
// if its signature covers the query signature (built per level, since a
// MIR²-Tree sizes signatures by level), which prunes whole subtrees that
// cannot contain all the query keywords.
func (x *IR2Tree) Search(p geo.Point, keywords []string) *ResultIter {
	kws := x.an.Keywords(keywords)
	// Per-level query signatures, built lazily: W = Signature(Q.t). The
	// cache holds word-at-a-time views, so the per-entry check below reads
	// raw aux bytes without allocating.
	sigs := &levelSigs{scheme: x.scheme, kws: kws}
	prune := func(isObject bool, level int, aux []byte) bool {
		return sigs.matches(level, aux)
	}
	return newResultIter(x, x.rt.NearestNeighbors(p, prune), kws)
}

// newResultIter wires a traversal to the store's filtered object loader:
// the containment check of IR2TopK line 21 runs on the raw text field, so
// false positives are rejected before the object is materialized (see
// objstore.GetFiltered).
func newResultIter(x *IR2Tree, it *rtree.Iter, kws []string) *ResultIter {
	r := &ResultIter{x: x, it: it, keywords: kws}
	r.accept = func(text []byte) bool {
		return r.x.an.ContainsTermsBytes(text, r.keywords)
	}
	return r
}

// ResultIter streams the results of a distance-first query.
type ResultIter struct {
	x        *IR2Tree
	it       *rtree.Iter
	keywords []string
	sc       objstore.RowScratch
	accept   func(text []byte) bool
	stats    SearchStats
}

// Next returns the next object containing all query keywords, ordered by
// distance. ok is false when the index is exhausted. Candidates whose
// signatures matched spuriously are loaded, detected (the containment check
// of IR2TopK line 21), counted in Stats().FalsePositives, and skipped.
//
//skvet:hotpath
func (r *ResultIter) Next() (Result, bool, error) {
	for {
		ref, dist, ok, err := r.it.Next()
		if err != nil {
			return Result{}, false, err
		}
		if !ok {
			r.stats.fillTraversal(r.it.TraversalStats())
			return Result{}, false, nil
		}
		obj, ok, err := r.x.store.GetFiltered(objstore.Ptr(ref), &r.sc, r.accept)
		if err != nil {
			return Result{}, false, err
		}
		r.stats.ObjectsLoaded++
		if !ok {
			r.stats.FalsePositives++
			continue
		}
		r.stats.fillTraversal(r.it.TraversalStats())
		return Result{Object: obj, Dist: dist}, true, nil
	}
}

// Stats returns the work counters accumulated so far.
func (r *ResultIter) Stats() SearchStats {
	r.stats.fillTraversal(r.it.TraversalStats())
	return r.stats
}

// Close releases the traversal's pooled scratch. Optional but cheap; the
// top-k helpers call it for every query they run.
func (r *ResultIter) Close() { r.it.Close() }

// PeekBound returns a lower bound on the distance of every result the
// iterator can still produce: the priority of the best queued entry (an
// object's exact distance or a subtree MBR's minimum distance). ok is false
// when the traversal is exhausted. A parallel fan-out merger uses it to stop
// a shard whose best remaining candidate cannot beat the global k-th result.
func (r *ResultIter) PeekBound() (float64, bool) {
	return r.it.PeekScore()
}

// TopK answers a distance-first top-k spatial keyword query: the k objects
// containing all keywords, closest to p first (IR2TopK, Figure 8).
func (x *IR2Tree) TopK(k int, p geo.Point, keywords []string) ([]Result, SearchStats, error) {
	it := x.Search(p, keywords)
	defer it.Close()
	var results []Result
	for len(results) < k {
		res, ok, err := it.Next()
		if err != nil {
			return nil, it.Stats(), err
		}
		if !ok {
			break
		}
		results = append(results, res)
	}
	return results, it.Stats(), nil
}

// RTreeBaseline is the first baseline algorithm of Section 5.1: a plain
// R-Tree provides incremental nearest neighbors, and *every* returned
// object is loaded and checked against the keywords — there is no textual
// pruning, so queries whose keywords are rare retrieve many useless objects.
type RTreeBaseline struct {
	rt    *rtree.Tree
	store *objstore.Store
}

// NewRTreeBaseline creates an empty baseline index on dev over store. dim 0
// means 2; maxEntries 0 derives the capacity from the block size.
func NewRTreeBaseline(dev storage.Device, store *objstore.Store, dim, maxEntries int) (*RTreeBaseline, error) {
	if dim == 0 {
		dim = 2
	}
	rt, err := rtree.New(dev, rtree.Config{Dim: dim, MaxEntries: maxEntries})
	if err != nil {
		return nil, err
	}
	return &RTreeBaseline{rt: rt, store: store}, nil
}

// Insert indexes an object's location.
func (b *RTreeBaseline) Insert(obj objstore.Object, ptr objstore.Ptr) error {
	return b.rt.Insert(uint64(ptr), geo.PointRect(obj.Point), nil)
}

// Delete removes an object.
func (b *RTreeBaseline) Delete(point geo.Point, ptr objstore.Ptr) (bool, error) {
	return b.rt.Delete(uint64(ptr), geo.PointRect(point))
}

// Build bulk-loads every object of the store.
func (b *RTreeBaseline) Build() error {
	return b.store.Scan(func(obj objstore.Object, ptr objstore.Ptr) error {
		return b.Insert(obj, ptr)
	})
}

// RTree exposes the underlying tree.
func (b *RTreeBaseline) RTree() *rtree.Tree { return b.rt }

// SizeBytes returns the index footprint.
func (b *RTreeBaseline) SizeBytes() int64 { return b.rt.Device().SizeBytes() }

// SizeMB returns the footprint in megabytes.
func (b *RTreeBaseline) SizeMB() float64 { return float64(b.SizeBytes()) / 1e6 }

// TopK answers a distance-first top-k spatial keyword query by filtering
// the incremental NN stream: fetch the next nearest object, load it,
// keep it only if it contains every keyword, until k results are found or
// the tree is exhausted.
func (b *RTreeBaseline) TopK(k int, p geo.Point, keywords []string) ([]Result, SearchStats, error) {
	kws := textutil.NormalizeAll(keywords)
	it := b.rt.NearestNeighbors(p, nil)
	var results []Result
	var stats SearchStats
	for len(results) < k {
		ref, dist, ok, err := it.Next()
		if err != nil {
			return nil, stats, err
		}
		if !ok {
			break
		}
		obj, err := b.store.Get(objstore.Ptr(ref))
		if err != nil {
			return nil, stats, err
		}
		stats.ObjectsLoaded++
		if !textutil.ContainsAll(obj.Text, kws) {
			continue
		}
		results = append(results, Result{Object: obj, Dist: dist})
	}
	stats.NodesLoaded = it.NodesLoaded()
	return results, stats, nil
}

// SetTrace installs a traversal trace hook on the underlying search (see
// rtree.TraceEvent): every expand, enqueue, prune, and emit step is
// reported, reproducing the style of the paper's Example 3 walk-through.
// Install before the first Next call.
func (r *ResultIter) SetTrace(fn func(rtree.TraceEvent)) { r.it.SetTrace(fn) }
