package core

import (
	"fmt"
	"math/rand"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/invindex"
	"spatialkeyword/internal/objstore"
)

// TestPaperExample3 replays the paper's Example 3: the distance-first IR²
// query top-2 from [30.5, 100.0] with {"internet", "pool"} returns H7 then
// H2, at distances ≈181.9 and ≈222.8.
func TestPaperExample3(t *testing.T) {
	f := buildFixture(t, figure1, 3, 16)
	for name, tree := range map[string]*IR2Tree{"IR2": f.ir2, "MIR2": f.mir2} {
		t.Run(name, func(t *testing.T) {
			results, stats, err := tree.TopK(2, geo.NewPoint(30.5, 100.0), []string{"internet", "pool"})
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != 2 {
				t.Fatalf("got %d results", len(results))
			}
			// H7 is objects[6] (ID 6), H2 is objects[1] (ID 1).
			if results[0].Object.ID != 6 || results[1].Object.ID != 1 {
				t.Errorf("order = H%d, H%d; want H7, H2",
					results[0].Object.ID+1, results[1].Object.ID+1)
			}
			if d := results[0].Dist; d < 181.9 || d > 182.0 {
				t.Errorf("first distance = %g, want ≈181.92", d)
			}
			if d := results[1].Dist; d < 222.8 || d > 222.9 {
				t.Errorf("second distance = %g, want ≈222.83", d)
			}
			if stats.ObjectsLoaded < 2 {
				t.Errorf("stats = %+v", stats)
			}
		})
	}
}

// TestSignaturePruning reproduces the pruning behavior Example 3 narrates:
// with the IR²-Tree the query touches fewer objects than the R-Tree
// baseline, because subtrees without matching signatures are never entered.
func TestSignaturePruning(t *testing.T) {
	f := buildFixture(t, figure1, 3, 16)
	q := geo.NewPoint(30.5, 100.0)
	kw := []string{"internet", "pool"}
	_, ir2Stats, err := f.ir2.TopK(2, q, kw)
	if err != nil {
		t.Fatal(err)
	}
	_, baseStats, err := f.base.TopK(2, q, kw)
	if err != nil {
		t.Fatal(err)
	}
	// The baseline must walk through H4, H3, H5, H8, H6, H1 before finding
	// H7 and H2: 8 object loads. The IR² tree loads only matching
	// candidates (2, modulo signature false positives).
	if baseStats.ObjectsLoaded != 8 {
		t.Errorf("baseline loaded %d objects, want 8", baseStats.ObjectsLoaded)
	}
	if ir2Stats.ObjectsLoaded >= baseStats.ObjectsLoaded {
		t.Errorf("IR² loaded %d objects, baseline %d — no pruning",
			ir2Stats.ObjectsLoaded, baseStats.ObjectsLoaded)
	}
	if ir2Stats.ObjectsLoaded < 2 {
		t.Errorf("IR² loaded %d objects, want >= 2", ir2Stats.ObjectsLoaded)
	}
}

func TestDistanceFirstMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	rows := randomRows(rng, 400)
	f := buildFixture(t, rows, 4, 8)
	queries := []struct {
		k        int
		keywords []string
	}{
		{1, []string{"internet"}},
		{5, []string{"pool"}},
		{10, []string{"internet", "pool"}},
		{3, []string{"spa", "gym", "bar"}},
		{20, []string{"wifi", "breakfast"}},
		{5, []string{"notaword"}},
		{5, nil},
	}
	for qi, q := range queries {
		p := geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
		want := objIDs(bruteTopK(f.objects, q.k, p, q.keywords))
		for name, tree := range map[string]*IR2Tree{"IR2": f.ir2, "MIR2": f.mir2} {
			got, _, err := tree.TopK(q.k, p, q.keywords)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(resultIDs(got)) != fmt.Sprint(want) {
				t.Errorf("query %d (%s): got %v, want %v", qi, name, resultIDs(got), want)
			}
		}
		gotBase, _, err := f.base.TopK(q.k, p, q.keywords)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(resultIDs(gotBase)) != fmt.Sprint(want) {
			t.Errorf("query %d (baseline): got %v, want %v", qi, resultIDs(gotBase), want)
		}
		gotIIO, _, err := invindex.TopK(f.inv, f.store, q.k, p, q.keywords)
		if err != nil {
			t.Fatal(err)
		}
		iioIDs := make([]objstore.ID, len(gotIIO))
		for i, r := range gotIIO {
			iioIDs[i] = r.Object.ID
		}
		// IIO returns nothing for an empty keyword list by construction; the
		// paper's queries always have keywords.
		if len(q.keywords) > 0 {
			if fmt.Sprint(iioIDs) != fmt.Sprint(want) {
				t.Errorf("query %d (IIO): got %v, want %v", qi, iioIDs, want)
			}
		}
	}
}

func TestSearchIteratorStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	rows := randomRows(rng, 200)
	f := buildFixture(t, rows, 4, 8)
	p := geo.NewPoint(500, 500)
	it := f.ir2.Search(p, []string{"pool"})
	want := bruteTopK(f.objects, len(f.objects), p, []string{"pool"})
	prev := -1.0
	for i := 0; ; i++ {
		res, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			if i != len(want) {
				t.Fatalf("stream ended at %d, want %d results", i, len(want))
			}
			break
		}
		if res.Dist < prev {
			t.Fatalf("distance order violated at %d", i)
		}
		prev = res.Dist
		if res.Object.ID != want[i].ID {
			t.Fatalf("result %d = %d, want %d", i, res.Object.ID, want[i].ID)
		}
	}
	if it.Stats().ObjectsLoaded < len(want) {
		t.Error("stats undercount object loads")
	}
}

func TestTopKEdgeCases(t *testing.T) {
	f := buildFixture(t, figure1, 3, 16)
	// k = 0.
	res, _, err := f.ir2.TopK(0, geo.NewPoint(0, 0), []string{"pool"})
	if err != nil || len(res) != 0 {
		t.Errorf("k=0: %v, %v", res, err)
	}
	// k larger than matches.
	res, _, err = f.ir2.TopK(100, geo.NewPoint(0, 0), []string{"pool"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Errorf("k=100 with 5 pool hotels: got %d", len(res))
	}
	// No keywords: pure NN over all objects.
	res, _, err = f.ir2.TopK(3, geo.NewPoint(30.5, 100.0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 || res[0].Object.ID != 3 {
		t.Errorf("pure NN top = %v", resultIDs(res))
	}
	// Nonexistent keyword.
	res, stats, err := f.ir2.TopK(3, geo.NewPoint(0, 0), []string{"submarine"})
	if err != nil || len(res) != 0 {
		t.Errorf("nonexistent keyword: %v, %v", res, err)
	}
	// With a 16-byte signature over tiny docs, a single absent word should
	// prune everything or nearly everything.
	if stats.ObjectsLoaded > 2 {
		t.Errorf("absent keyword loaded %d objects", stats.ObjectsLoaded)
	}
}

func TestFalsePositivesDetectedWithTinySignatures(t *testing.T) {
	// A 1-byte signature over a 14-word vocabulary saturates, forcing false
	// positives; results must still be exact and the counter must move.
	rng := rand.New(rand.NewSource(33))
	rows := randomRows(rng, 300)
	f := buildFixture(t, rows, 4, 1)
	p := geo.NewPoint(400, 400)
	kw := []string{"airport", "golf"}
	got, stats, err := f.ir2.TopK(10, p, kw)
	if err != nil {
		t.Fatal(err)
	}
	want := objIDs(bruteTopK(f.objects, 10, p, kw))
	if fmt.Sprint(resultIDs(got)) != fmt.Sprint(want) {
		t.Errorf("results wrong under saturation: %v vs %v", resultIDs(got), want)
	}
	if stats.FalsePositives == 0 {
		t.Error("expected false positives with a saturated 1-byte signature")
	}
	if stats.ObjectsLoaded != len(got)+stats.FalsePositives {
		t.Errorf("load accounting: loaded=%d results=%d fp=%d",
			stats.ObjectsLoaded, len(got), stats.FalsePositives)
	}
}

func TestBaselineLoadsEverythingOnMiss(t *testing.T) {
	// Paper: "In the worst case (when none of the objects satisfies the
	// query's keywords) the entire tree has to be traversed and every
	// object has to be inspected."
	rng := rand.New(rand.NewSource(34))
	rows := randomRows(rng, 150)
	f := buildFixture(t, rows, 4, 8)
	_, stats, err := f.base.TopK(1, geo.NewPoint(0, 0), []string{"nosuchword"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.ObjectsLoaded != len(rows) {
		t.Errorf("baseline loaded %d, want all %d", stats.ObjectsLoaded, len(rows))
	}
}

func TestStatsNodesLoaded(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	rows := randomRows(rng, 300)
	f := buildFixture(t, rows, 4, 8)
	_, stats, err := f.ir2.TopK(5, geo.NewPoint(100, 100), []string{"pool"})
	if err != nil {
		t.Fatal(err)
	}
	if stats.NodesLoaded <= 0 {
		t.Errorf("NodesLoaded = %d", stats.NodesLoaded)
	}
	total := f.ir2.RTree().NumNodes()
	if stats.NodesLoaded > total {
		t.Errorf("NodesLoaded %d exceeds node count %d", stats.NodesLoaded, total)
	}
}
