package core

import (
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/irscore"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/rtree"
)

// RankedResult is one answer of a general top-k spatial keyword query.
type RankedResult struct {
	Object  objstore.Object
	Dist    float64
	IRScore float64
	// Score is f(Dist, IRScore): the overall rank value (higher is better).
	Score float64
}

// GeneralOptions configures a general top-k query (Section 5.3).
type GeneralOptions struct {
	// Scorer provides idf statistics and IRscore computation. Required.
	Scorer *irscore.Scorer
	// Combiner is the ranking function f(distance, IRscore); it must be
	// non-increasing in distance and non-decreasing in IR score. Nil means
	// irscore.DistanceDiscount{}.
	Combiner irscore.Combiner
	// RequireMatch drops entries none of whose keyword signatures match —
	// the paper's "if Score > 0" test, which excludes results with zero IR
	// score. When false the traversal can fall back to pure spatial
	// ranking for keyword-less regions.
	RequireMatch bool
}

// SearchRanked starts a *general* top-k spatial keyword query: objects
// stream out in non-increasing f(distance(T.p, Q.p), IRscore(T.t, Q.t))
// order rather than being filtered conjunctively (Section 5.3). The
// differences from the distance-first algorithm, following the paper:
//
//	(i)  each query keyword gets its own signature W_i; a node's upper
//	     bound considers exactly the keywords whose signature matches the
//	     node's, assuming no false positives;
//	(ii) the queue is ordered by Upper(v) — the best possible f score of
//	     any object under v, combining the MBR's minimum distance with the
//	     signature-derived IR upper bound — and a loaded candidate is
//	     emitted only once its exact score is at least the queue head's
//	     upper bound ("if Score >= Upper(U.top())"); otherwise it is
//	     re-enqueued with its exact score to be considered later.
//
// The output order is exact for any monotone Combiner, because the IR upper
// bound is admissible (see package irscore).
func (x *IR2Tree) SearchRanked(p geo.Point, keywords []string, opts GeneralOptions) *RankedIter {
	comb := opts.Combiner
	if comb == nil {
		comb = irscore.DistanceDiscount{}
	}
	normalized, idfs := opts.Scorer.QueryIDFs(keywords)

	// Per-level, per-keyword signatures (W_i = Signature(w_i)), lazily
	// built: a MIR²-Tree uses different signature configurations per level.
	// Word-at-a-time views keep the per-entry bound allocation-free.
	perLevel := &levelWordSigs{scheme: x.scheme, words: normalized}

	// upperIR returns the signature-derived IR upper bound of an entry:
	// Σ idf(w_i) over the keywords whose signature the entry's covers.
	upperIR := func(level int, aux []byte) float64 {
		sigs := perLevel.at(level)
		var matched float64
		for i := range sigs {
			if sigs[i].MatchesTolerant(aux) {
				matched += idfs[i]
			}
		}
		return matched
	}

	// The rtree iterator pops the smallest score, so queue priorities are
	// negated f values.
	scorer := func(isObject bool, level int, rect geo.Rect, aux []byte) (float64, bool) {
		ub := upperIR(level, aux)
		if opts.RequireMatch && ub == 0 {
			return 0, false
		}
		return -comb.Combine(rect.MinDist(p), ub), true
	}
	r := &RankedIter{
		x:          x,
		it:         x.rt.Seek(scorer),
		p:          p,
		normalized: normalized,
		idfs:       idfs,
		tf:         make([]int, len(normalized)),
		opts:       opts,
		comb:       comb,
		exact:      make(map[uint64]rankedCandidate),
	}
	// The candidate filter runs on the raw text field before the object is
	// materialized (see objstore.GetFiltered): count terms into the scratch
	// — Next scores survivors off it — and, under RequireMatch, reject
	// candidates containing no keyword without paying their materialization.
	r.accept = func(text []byte) bool {
		r.x.an.TermFreqsBytesInto(r.tf, text, r.normalized)
		if !r.opts.RequireMatch {
			return true
		}
		for _, n := range r.tf {
			if n > 0 {
				return true
			}
		}
		return false
	}
	return r
}

// rankedCandidate remembers a loaded object re-enqueued with its exact
// (negated) score, so it is not read or scored twice.
type rankedCandidate struct {
	res   RankedResult
	score float64
}

// RankedIter streams general top-k results in non-increasing score order.
type RankedIter struct {
	x          *IR2Tree
	it         *rtree.Iter
	p          geo.Point
	normalized []string
	idfs       []float64 // idf per normalized term, from QueryIDFs
	tf         []int     // per-candidate term-frequency scratch
	sc         objstore.RowScratch
	accept     func(text []byte) bool
	opts       GeneralOptions
	comb       irscore.Combiner
	exact      map[uint64]rankedCandidate
	stats      SearchStats
}

// Next returns the next best-scoring object. ok is false when the index is
// exhausted (or, with RequireMatch, when no further object matches any
// keyword).
func (r *RankedIter) Next() (RankedResult, bool, error) {
	for {
		ref, score, ok, err := r.it.Next()
		if err != nil {
			return RankedResult{}, false, err
		}
		if !ok {
			r.stats.fillTraversal(r.it.TraversalStats())
			return RankedResult{}, false, nil
		}
		if c, seen := r.exact[ref]; seen && c.score == score {
			// Re-dequeued with its exact score: nothing remaining can beat it.
			delete(r.exact, ref)
			r.stats.fillTraversal(r.it.TraversalStats())
			return c.res, true, nil
		}
		// GetFiltered counts the candidate's term frequencies into r.tf
		// (via r.accept) straight off the row's scratch bytes, and under
		// RequireMatch skips materializing pure false positives — terms
		// never re-pass the pipeline (stemming is not idempotent), and a
		// rejected candidate costs no allocation at all.
		obj, ok, err := r.x.store.GetFiltered(objstore.Ptr(ref), &r.sc, r.accept)
		if err != nil {
			return RankedResult{}, false, err
		}
		r.stats.ObjectsLoaded++
		if !ok {
			r.stats.FalsePositives++
			continue
		}
		dist := r.p.Dist(obj.Point)
		ir := irscore.ScoreFromCounts(r.tf, r.idfs)
		if r.opts.RequireMatch && ir == 0 {
			// Degenerate scorers can weigh a present keyword at zero; keep
			// the paper's "Score > 0" test exact.
			r.stats.FalsePositives++
			continue
		}
		f := r.comb.Combine(dist, ir)
		res := RankedResult{Object: obj, Dist: dist, IRScore: ir, Score: f}
		if top, any := r.it.PeekScore(); !any || -f <= top {
			// Exact score at least as good as every remaining upper bound.
			r.stats.fillTraversal(r.it.TraversalStats())
			return res, true, nil
		}
		r.it.Push(ref, -f)
		r.exact[ref] = rankedCandidate{res: res, score: -f}
	}
}

// Stats returns the work counters accumulated so far.
func (r *RankedIter) Stats() SearchStats {
	r.stats.fillTraversal(r.it.TraversalStats())
	return r.stats
}

// Close releases the traversal's pooled scratch. Optional but cheap; the
// top-k helpers call it for every query they run.
func (r *RankedIter) Close() { r.it.Close() }

// PeekBound returns an upper bound on the score of every result the
// iterator can still produce: the (un-negated) priority of the best queued
// entry. ok is false when the traversal is exhausted. A parallel fan-out
// merger uses it to stop a shard whose best remaining candidate cannot beat
// the global k-th result.
func (r *RankedIter) PeekBound() (float64, bool) {
	s, ok := r.it.PeekScore()
	return -s, ok
}

// TopKRanked collects the k best results of SearchRanked.
func (x *IR2Tree) TopKRanked(k int, p geo.Point, keywords []string, opts GeneralOptions) ([]RankedResult, SearchStats, error) {
	if k <= 0 {
		return nil, SearchStats{}, nil
	}
	it := x.SearchRanked(p, keywords, opts)
	defer it.Close()
	var results []RankedResult
	for len(results) < k {
		res, ok, err := it.Next()
		if err != nil {
			return nil, it.Stats(), err
		}
		if !ok {
			break
		}
		results = append(results, res)
	}
	return results, it.Stats(), nil
}
