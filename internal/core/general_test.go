package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/invindex"
	"spatialkeyword/internal/irscore"
	"spatialkeyword/internal/objstore"
)

// bruteRanked scores every object exhaustively and returns the top k, the
// reference the general algorithm must match.
func bruteRanked(f *fixture, k int, p geo.Point, keywords []string, opts GeneralOptions, requireMatch bool) []RankedResult {
	comb := opts.Combiner
	if comb == nil {
		comb = irscore.DistanceDiscount{}
	}
	var all []RankedResult
	for _, o := range f.objects {
		ir := opts.Scorer.Score(o.Text, keywords)
		if requireMatch && ir == 0 {
			continue
		}
		d := p.Dist(o.Point)
		all = append(all, RankedResult{Object: o, Dist: d, IRScore: ir, Score: comb.Combine(d, ir)})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].Object.ID < all[j].Object.ID
	})
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// sameScores compares two ranked lists by score sequence (object identity
// may differ on exact ties).
func sameScores(t *testing.T, got, want []RankedResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d results, want %d", len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].Score-want[i].Score) > 1e-9 {
			t.Fatalf("rank %d: score %g, want %g (got obj %d, want obj %d)",
				i, got[i].Score, want[i].Score, got[i].Object.ID, want[i].Object.ID)
		}
	}
}

func generalScorer(f *fixture) *irscore.Scorer {
	return irscore.NewScorer(f.vocab.NumDocs(), f.vocab.DocFreq)
}

func TestGeneralMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	rows := randomRows(rng, 350)
	f := buildFixture(t, rows, 4, 8)
	scorer := generalScorer(f)

	queries := []struct {
		k        int
		keywords []string
	}{
		{1, []string{"internet"}},
		{5, []string{"internet", "pool"}},
		{10, []string{"spa", "gym", "golf"}},
		{25, []string{"wifi"}},
		{5, []string{"beach", "airport", "shuttle", "bar"}},
	}
	for _, multilevel := range []bool{false, true} {
		tree := f.ir2
		if multilevel {
			tree = f.mir2
		}
		for qi, q := range queries {
			p := geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
			opts := GeneralOptions{
				Scorer:       scorer,
				Combiner:     irscore.DistanceDiscount{Scale: 200},
				RequireMatch: true,
			}
			got, _, err := tree.TopKRanked(q.k, p, q.keywords, opts)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteRanked(f, q.k, p, q.keywords, opts, true)
			sameScores(t, got, want)
			// Scores must be non-increasing.
			for i := 1; i < len(got); i++ {
				if got[i].Score > got[i-1].Score+1e-12 {
					t.Fatalf("multilevel=%v query %d: scores out of order", multilevel, qi)
				}
			}
		}
	}
}

func TestGeneralWithLinearCombiner(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	rows := randomRows(rng, 200)
	f := buildFixture(t, rows, 4, 8)
	scorer := generalScorer(f)
	opts := GeneralOptions{
		Scorer:       scorer,
		Combiner:     irscore.LinearCombiner{Alpha: 0.6, Scale: 500},
		RequireMatch: true,
	}
	p := geo.NewPoint(300, 700)
	got, _, err := f.ir2.TopKRanked(8, p, []string{"pool", "sauna"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteRanked(f, 8, p, []string{"pool", "sauna"}, opts, true)
	sameScores(t, got, want)
}

func TestGeneralDisjunctiveSemantics(t *testing.T) {
	// An object containing only one of the keywords can be a result —
	// unlike distance-first conjunctive queries.
	f := buildFixture(t, figure1, 3, 16)
	scorer := generalScorer(f)
	opts := GeneralOptions{Scorer: scorer, RequireMatch: true}
	got, _, err := f.ir2.TopKRanked(8, geo.NewPoint(30.5, 100.0), []string{"internet", "pool"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	// All 7 hotels containing internet or pool (H1..H4, H6..H8).
	if len(got) != 7 {
		t.Fatalf("got %d results, want 7 (disjunctive)", len(got))
	}
	for _, r := range got {
		if r.IRScore <= 0 {
			t.Errorf("object %d with zero IR score included", r.Object.ID)
		}
	}
}

func TestGeneralRequireMatchFalse(t *testing.T) {
	f := buildFixture(t, figure1, 3, 16)
	scorer := generalScorer(f)
	opts := GeneralOptions{Scorer: scorer, RequireMatch: false, Combiner: irscore.DistanceDiscount{Scale: 100}}
	got, _, err := f.ir2.TopKRanked(8, geo.NewPoint(30.5, 100.0), []string{"internet", "pool"}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("got %d results, want all 8 (keyword-less objects admitted)", len(got))
	}
	want := bruteRanked(f, 8, geo.NewPoint(30.5, 100.0), []string{"internet", "pool"}, opts, false)
	sameScores(t, got, want)
}

func TestGeneralPrunesAgainstBaselineWork(t *testing.T) {
	// With RequireMatch, querying a rare word must not load many objects.
	rng := rand.New(rand.NewSource(53))
	rows := randomRows(rng, 400)
	rows[17].text = "only here unobtainium"
	f := buildFixture(t, rows, 4, 16)
	scorer := generalScorer(f)
	got, stats, err := f.ir2.TopKRanked(3, geo.NewPoint(0, 0), []string{"unobtainium"},
		GeneralOptions{Scorer: scorer, RequireMatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Object.ID != objstore.ID(17) {
		t.Fatalf("got %v", got)
	}
	if stats.ObjectsLoaded > 10 {
		t.Errorf("loaded %d objects for a unique keyword", stats.ObjectsLoaded)
	}
}

func TestGeneralEdgeCases(t *testing.T) {
	f := buildFixture(t, figure1, 3, 16)
	scorer := generalScorer(f)
	// k = 0.
	got, _, err := f.ir2.TopKRanked(0, geo.NewPoint(0, 0), []string{"pool"},
		GeneralOptions{Scorer: scorer})
	if err != nil || got != nil {
		t.Errorf("k=0: %v %v", got, err)
	}
	// Unknown keyword with RequireMatch: empty.
	got, _, err = f.ir2.TopKRanked(3, geo.NewPoint(0, 0), []string{"krypton"},
		GeneralOptions{Scorer: scorer, RequireMatch: true})
	if err != nil || len(got) != 0 {
		t.Errorf("unknown keyword: %v %v", got, err)
	}
	// Empty keywords with RequireMatch=false: pure spatial ranking.
	got, _, err = f.ir2.TopKRanked(3, geo.NewPoint(30.5, 100), nil,
		GeneralOptions{Scorer: scorer, Combiner: irscore.DistanceDiscount{Scale: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Object.ID != 3 {
		t.Errorf("pure spatial general query top = %v", got)
	}
}

func TestGeneralTieOnIdenticalObjects(t *testing.T) {
	// Multiple identical objects: all must surface, scores equal.
	rows := []struct {
		lat, lon float64
		text     string
	}{
		{10, 10, "twin pool"},
		{10, 10, "twin pool"},
		{10, 10, "twin pool"},
		{500, 500, "far pool"},
	}
	f := buildFixture(t, rows, 3, 8)
	scorer := generalScorer(f)
	got, _, err := f.ir2.TopKRanked(4, geo.NewPoint(10, 10), []string{"pool"},
		GeneralOptions{Scorer: scorer, RequireMatch: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d", len(got))
	}
	if got[0].Score != got[1].Score || got[1].Score != got[2].Score {
		t.Error("identical objects scored differently")
	}
	if got[3].Object.ID != 3 {
		t.Error("distant object not last")
	}
}

// TestGeneralMatchesIIOOracle cross-checks the tree's ranked search against
// an independent implementation: the general IIO baseline (posting-list
// union + exhaustive scoring). Two different code paths must produce the
// same score sequence.
func TestGeneralMatchesIIOOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	rows := randomRows(rng, 250)
	f := buildFixture(t, rows, 4, 8)
	scorer := generalScorer(f)
	comb := irscore.DistanceDiscount{Scale: 300}
	for trial := 0; trial < 10; trial++ {
		p := geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
		kw := []string{"pool", "internet", "gym", "bar"}[:1+rng.Intn(4)]
		treeRes, _, err := f.ir2.TopKRanked(12, p, kw, GeneralOptions{
			Scorer: scorer, Combiner: comb, RequireMatch: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		iioRes, _, err := invindex.TopKRanked(f.inv, f.store, 12, p, kw, scorer, comb)
		if err != nil {
			t.Fatal(err)
		}
		if len(treeRes) != len(iioRes) {
			t.Fatalf("trial %d: %d vs %d results", trial, len(treeRes), len(iioRes))
		}
		for i := range treeRes {
			if math.Abs(treeRes[i].Score-iioRes[i].Score) > 1e-9 {
				t.Fatalf("trial %d rank %d: tree %g vs iio %g",
					trial, i, treeRes[i].Score, iioRes[i].Score)
			}
		}
	}
}
