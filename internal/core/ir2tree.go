// Package core implements the paper's primary contribution: the IR²-Tree
// (Information Retrieval R-Tree) and its Multi-level variant (MIR²-Tree),
// together with the search algorithms that answer top-k spatial keyword
// queries on them, and the R-Tree baseline algorithm they are evaluated
// against (Sections 4 and 5).
//
// An IR²-Tree is an R-Tree in which every entry additionally carries a
// superimposed-code signature of the text below it: an object's signature in
// the leaves, and the OR of the children's signatures in interior nodes.
// During an incremental nearest-neighbor traversal, a subtree whose
// signature does not cover the query's signature cannot contain an object
// with all the query keywords and is pruned wholesale — textual pruning
// tightly integrated with spatial pruning.
//
// The MIR²-Tree additionally sizes signatures per level (multi-level
// superimposed coding [CS89, DR83]): higher nodes cover more distinct words
// and get proportionally longer signatures, computed with the optimal-length
// rule [MC94], and a node's signature is derived from *all objects in its
// subtree* rather than from its children's signatures. That keeps high-level
// signatures sparse (fewer false positives) at the price of much more
// expensive maintenance.
package core

import (
	"fmt"
	"math"
	"sync"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/nodecache"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/rtree"
	"spatialkeyword/internal/sigfile"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

// Options configures an IR²-Tree.
type Options struct {
	// LeafSignature is the signature scheme of leaf entries (the
	// experiments sweep its length: Figures 11 and 14). Required.
	LeafSignature sigfile.Config

	// Multilevel selects the MIR²-Tree: per-level optimal signature
	// lengths and node signatures recomputed from underlying objects.
	Multilevel bool

	// AvgWordsPerObject and VocabSize describe the corpus (Table 1
	// columns); the MIR²-Tree needs them to size each level's signatures.
	// Ignored for the uniform IR²-Tree.
	AvgWordsPerObject float64
	VocabSize         int

	// Dim is the spatial dimensionality. Zero means 2.
	Dim int

	// MaxEntries overrides the node capacity (0 derives it from the block
	// size, as in the paper).
	MaxEntries int

	// Split selects the R-Tree node-split algorithm (default: Guttman's
	// Quadratic Split, as in the paper).
	Split rtree.SplitAlgorithm

	// CacheNodes bounds the tree's decoded-node cache (see rtree.Config):
	// zero for the default capacity, negative to disable the packed hot
	// path entirely.
	CacheNodes int

	// Analyzer is the text-analysis pipeline shared by indexing and
	// querying (tokenize, optional stopwords, optional Porter stemming).
	// Nil means plain tokenization, as in the paper's experiments.
	Analyzer *textutil.Analyzer
}

// IR2Tree is a disk-resident IR²-Tree or MIR²-Tree over an object store.
// Concurrent readers are safe; writers require external exclusion with
// readers (as in package rtree).
type IR2Tree struct {
	rt         *rtree.Tree
	store      *objstore.Store
	scheme     *sigScheme
	multilevel bool
	an         *textutil.Analyzer // nil = plain tokenization
}

// sigScheme adapts signature maintenance to rtree.AuxScheme. For the
// uniform IR²-Tree every level shares one configuration and a node's
// signature is the superimposition of its entries' signatures. For the
// MIR²-Tree each level has its own configuration and a node's signature is
// recomputed from the words of every object in its subtree.
type sigScheme struct {
	leaf       sigfile.Config
	multilevel bool
	fanout     int
	avgWords   float64
	vocabSize  int

	// words resolves an object reference to its distinct words, reading the
	// object store (and paying its I/O).
	words func(ref uint64) ([]string, error)

	mu       sync.Mutex
	cache    map[uint64][]string // bulk-build word cache (nil when disabled)
	deferred bool                // bulk build: skip subtree recomputation
	cfgMemo  map[int]sigfile.Config
}

// levelConfig returns the signature configuration for entries stored at the
// given node level.
func (s *sigScheme) levelConfig(level int) sigfile.Config {
	if !s.multilevel || level <= 0 {
		return s.leaf
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cfg, ok := s.cfgMemo[level]; ok {
		return cfg
	}
	// A node at this level covers about fanout^level objects, hence about
	// avgWords·fanout^level distinct words, capped by the corpus vocabulary.
	words := s.avgWords * math.Pow(float64(s.fanout), float64(level))
	d := s.vocabSize
	if s.vocabSize <= 0 || words < float64(s.vocabSize) {
		d = int(math.Ceil(words))
	}
	if d < 1 {
		d = 1
	}
	cfg := sigfile.Config{
		LengthBytes: sigfile.OptimalLengthBytes(d, s.leaf.BitsPerWord),
		BitsPerWord: s.leaf.BitsPerWord,
	}
	if cfg.LengthBytes < s.leaf.LengthBytes {
		cfg.LengthBytes = s.leaf.LengthBytes
	}
	if s.cfgMemo == nil {
		s.cfgMemo = make(map[int]sigfile.Config)
	}
	s.cfgMemo[level] = cfg
	return cfg
}

// EntryAuxLen implements rtree.AuxScheme.
func (s *sigScheme) EntryAuxLen(level int) int {
	return s.levelConfig(level).LengthBytes
}

// NodeAux implements rtree.AuxScheme: the signature stored for node n in its
// parent.
func (s *sigScheme) NodeAux(t rtree.NodeReader, n *rtree.Node) ([]byte, error) {
	parentLevel := n.Level() + 1
	cfg := s.levelConfig(parentLevel)
	if !s.multilevel {
		// IR²-Tree: superimpose the node's entry signatures (same length
		// at every level).
		sig := cfg.New()
		for i := 0; i < n.NumEntries(); i++ {
			_, _, aux := n.Entry(i)
			// The entry aux was decoded from disk; a length mismatch means
			// a corrupt node, not a programming error, so use the checked
			// variant and attribute the failure to the node's block.
			if err := sigfile.SuperimposeChecked(sig, sigfile.Signature(aux)); err != nil {
				return nil, fmt.Errorf("core: node %d entry %d: %w", n.ID(), i, err)
			}
		}
		return sig, nil
	}
	s.mu.Lock()
	deferred := s.deferred
	s.mu.Unlock()
	if deferred {
		// Bulk build: leave interior signatures zero; RebuildAux fills them
		// in one bottom-up pass.
		return cfg.New(), nil
	}
	// MIR²-Tree: recompute from every object in the subtree. This walks
	// (and pays the I/O for) the whole subtree plus the referenced objects
	// — the maintenance cost the paper warns about.
	refs, err := t.SubtreeObjectRefs(n)
	if err != nil {
		return nil, err
	}
	sig := cfg.New()
	for _, ref := range refs {
		words, err := s.objectWords(ref)
		if err != nil {
			return nil, err
		}
		for _, w := range words {
			cfg.SetWord(sig, w)
		}
	}
	return sig, nil
}

// objectWords returns an object's distinct words, from the bulk-build cache
// when enabled.
func (s *sigScheme) objectWords(ref uint64) ([]string, error) {
	s.mu.Lock()
	if s.cache != nil {
		if w, ok := s.cache[ref]; ok {
			s.mu.Unlock()
			return w, nil
		}
	}
	s.mu.Unlock()
	w, err := s.words(ref)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.cache != nil {
		s.cache[ref] = w
	}
	s.mu.Unlock()
	return w, nil
}

// querySignature builds the signature of a keyword set at the given level's
// configuration — the W of IR2TopK line 16, per level.
func (s *sigScheme) querySignature(level int, keywords []string) sigfile.Signature {
	return s.levelConfig(level).DocSignature(keywords)
}

// wordSignature builds a single keyword's signature at the given level —
// the per-keyword W_i of the general algorithm.
func (s *sigScheme) wordSignature(level int, word string) sigfile.Signature {
	return s.levelConfig(level).WordSignature(word)
}

// New creates an empty IR²-Tree (or MIR²-Tree) whose nodes live on dev and
// whose objects live in store.
func New(dev storage.Device, store *objstore.Store, opts Options) (*IR2Tree, error) {
	if err := opts.LeafSignature.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	dim := opts.Dim
	if dim == 0 {
		dim = 2
	}
	fanout := opts.MaxEntries
	if fanout == 0 {
		// Must match rtree.New's derivation (payload-free entry size).
		fanout = (dev.BlockSize() - 8) / (8 + dim*16)
	}
	if opts.Multilevel && opts.AvgWordsPerObject <= 0 {
		return nil, fmt.Errorf("core: MIR²-Tree requires AvgWordsPerObject > 0")
	}
	scheme := &sigScheme{
		leaf:       opts.LeafSignature,
		multilevel: opts.Multilevel,
		fanout:     fanout,
		avgWords:   opts.AvgWordsPerObject,
		vocabSize:  opts.VocabSize,
		words: func(ref uint64) ([]string, error) {
			obj, err := store.Get(objstore.Ptr(ref))
			if err != nil {
				return nil, err
			}
			return opts.Analyzer.Unique(obj.Text), nil
		},
	}
	rt, err := rtree.New(dev, rtree.Config{
		Dim:        dim,
		MaxEntries: opts.MaxEntries,
		Scheme:     scheme,
		Split:      opts.Split,
		CacheNodes: opts.CacheNodes,
	})
	if err != nil {
		return nil, err
	}
	return &IR2Tree{rt: rt, store: store, scheme: scheme, multilevel: opts.Multilevel, an: opts.Analyzer}, nil
}

// Multilevel reports whether this is a MIR²-Tree.
func (x *IR2Tree) Multilevel() bool { return x.multilevel }

// Analyzer returns the tree's text pipeline (nil means plain tokenization).
func (x *IR2Tree) Analyzer() *textutil.Analyzer { return x.an }

// RTree exposes the underlying tree (for statistics and invariant checks).
func (x *IR2Tree) RTree() *rtree.Tree { return x.rt }

// Store returns the object store the tree indexes.
func (x *IR2Tree) Store() *objstore.Store { return x.store }

// NodeCacheStats reports the decoded-node cache counters of the underlying
// tree (all zero when the cache is disabled).
func (x *IR2Tree) NodeCacheStats() nodecache.Stats { return x.rt.CacheStats() }

// Len returns the number of indexed objects.
func (x *IR2Tree) Len() int { return x.rt.Len() }

// SizeBytes returns the tree's on-disk footprint (excluding the object file).
func (x *IR2Tree) SizeBytes() int64 { return x.rt.Device().SizeBytes() }

// SizeMB returns the footprint in megabytes (10^6 bytes).
func (x *IR2Tree) SizeMB() float64 { return float64(x.SizeBytes()) / 1e6 }

// Insert indexes an object (paper Figure 5): its leaf signature is the
// superimposition of its distinct words' signatures, and AdjustTree
// propagates new signature bits to every ancestor. For a MIR²-Tree the
// ancestor updates recompute signatures from all underlying objects, which
// is expensive by design.
func (x *IR2Tree) Insert(obj objstore.Object, ptr objstore.Ptr) error {
	words := x.an.Unique(obj.Text)
	sig := x.scheme.levelConfig(0).DocSignature(words)
	return x.rt.Insert(uint64(ptr), geo.PointRect(obj.Point), sig)
}

// Delete removes an object (paper Figure 6). It returns false if the object
// was not indexed.
func (x *IR2Tree) Delete(point geo.Point, ptr objstore.Ptr) (bool, error) {
	return x.rt.Delete(uint64(ptr), geo.PointRect(point))
}

// Build bulk-loads every object of the store into the tree. For a MIR²-Tree
// it defers interior signature computation during the inserts and fills all
// signatures in one bottom-up pass at the end, caching object words in
// memory — without this, construction would re-walk subtrees on every
// insert and be quadratic.
func (x *IR2Tree) Build() error {
	if x.multilevel {
		x.scheme.mu.Lock()
		x.scheme.deferred = true
		x.scheme.cache = make(map[uint64][]string)
		x.scheme.mu.Unlock()
		defer func() {
			x.scheme.mu.Lock()
			x.scheme.deferred = false
			x.scheme.cache = nil
			x.scheme.mu.Unlock()
		}()
	}
	err := x.store.Scan(func(obj objstore.Object, ptr objstore.Ptr) error {
		if x.multilevel {
			// Seed the cache so RebuildAux never re-reads the object file.
			x.scheme.mu.Lock()
			x.scheme.cache[uint64(ptr)] = x.an.Unique(obj.Text)
			x.scheme.mu.Unlock()
		}
		return x.Insert(obj, ptr)
	})
	if err != nil {
		return err
	}
	if x.multilevel {
		x.scheme.mu.Lock()
		x.scheme.deferred = false
		x.scheme.mu.Unlock()
		return x.rt.RebuildAux()
	}
	return nil
}
