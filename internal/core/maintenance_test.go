package core

import (
	"fmt"
	"math/rand"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/sigfile"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

// TestInsertMaintainsSignatures checks that after every insert, every parent
// signature equals the scheme's recomputation (rtree.CheckInvariants calls
// NodeAux on every node) and queries stay exact.
func TestInsertMaintainsSignatures(t *testing.T) {
	for _, multilevel := range []bool{false, true} {
		name := "IR2"
		if multilevel {
			name = "MIR2"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(41))
			objDisk := storage.NewDisk(4096)
			store := objstore.New(objDisk)
			tree, err := New(storage.NewDisk(4096), store, Options{
				LeafSignature:     sigfile.Config{LengthBytes: 8, BitsPerWord: 4},
				MaxEntries:        4,
				Multilevel:        multilevel,
				AvgWordsPerObject: 4,
				VocabSize:         14,
			})
			if err != nil {
				t.Fatal(err)
			}
			rows := randomRows(rng, 120)
			var objs []objstore.Object
			for i, r := range rows {
				_, ptr, _ := store.Append(geo.NewPoint(r.lat, r.lon), r.text)
				if err := store.Sync(); err != nil {
					t.Fatal(err)
				}
				obj, err := store.Get(ptr)
				if err != nil {
					t.Fatal(err)
				}
				objs = append(objs, obj)
				if err := tree.Insert(obj, ptr); err != nil {
					t.Fatal(err)
				}
				if i%30 == 29 {
					if err := tree.RTree().CheckInvariants(); err != nil {
						t.Fatalf("after insert %d: %v", i, err)
					}
				}
			}
			// Query correctness after incremental build.
			p := geo.NewPoint(300, 300)
			got, _, err := tree.TopK(10, p, []string{"pool"})
			if err != nil {
				t.Fatal(err)
			}
			want := objIDs(bruteTopK(objs, 10, p, []string{"pool"}))
			if fmt.Sprint(resultIDs(got)) != fmt.Sprint(want) {
				t.Errorf("got %v, want %v", resultIDs(got), want)
			}
		})
	}
}

func TestDeleteMaintainsSignatures(t *testing.T) {
	for _, multilevel := range []bool{false, true} {
		name := "IR2"
		if multilevel {
			name = "MIR2"
		}
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			rows := randomRows(rng, 100)
			f := buildFixture(t, rows, 4, 8)
			tree := f.ir2
			if multilevel {
				tree = f.mir2
			}
			// Delete a random half.
			perm := rng.Perm(len(rows))
			deleted := make(map[objstore.ID]bool)
			for _, i := range perm[:len(rows)/2] {
				ok, err := tree.Delete(f.objects[i].Point, f.ptrs[i])
				if err != nil {
					t.Fatal(err)
				}
				if !ok {
					t.Fatalf("object %d not found", i)
				}
				deleted[f.objects[i].ID] = true
			}
			if err := tree.RTree().CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			// Queries over the survivors are exact.
			var remaining []objstore.Object
			for _, o := range f.objects {
				if !deleted[o.ID] {
					remaining = append(remaining, o)
				}
			}
			p := geo.NewPoint(200, 200)
			got, _, err := tree.TopK(8, p, []string{"internet"})
			if err != nil {
				t.Fatal(err)
			}
			want := objIDs(bruteTopK(remaining, 8, p, []string{"internet"}))
			if fmt.Sprint(resultIDs(got)) != fmt.Sprint(want) {
				t.Errorf("got %v, want %v", resultIDs(got), want)
			}
			// Deleting again returns false.
			ok, err := tree.Delete(f.objects[perm[0]].Point, f.ptrs[perm[0]])
			if err != nil || ok {
				t.Errorf("double delete: ok=%v err=%v", ok, err)
			}
		})
	}
}

// TestSignatureBitsNeverLostOnInsert verifies the paper's AdjustTree rule
// directly: after inserting an object with word w, the root signature must
// match w's signature at the root level.
func TestSignatureBitsNeverLostOnInsert(t *testing.T) {
	f := buildFixture(t, figure1, 3, 16)
	// Add a hotel with a brand-new word far away.
	_, ptr, _ := f.store.Append(geo.NewPoint(80, 80), "Hotel Z heliport")
	if err := f.store.Sync(); err != nil {
		t.Fatal(err)
	}
	obj, err := f.store.Get(ptr)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ir2.Insert(obj, ptr); err != nil {
		t.Fatal(err)
	}
	// The new word must now be findable.
	got, _, err := f.ir2.TopK(1, geo.NewPoint(0, 0), []string{"heliport"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Object.Text != "Hotel Z heliport" {
		t.Errorf("new object not found: %v", got)
	}
	if err := f.ir2.RTree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestMIR2MaintenanceCostsMore quantifies the paper's Section 4 claim: an
// insert into a MIR²-Tree performs more I/O than into an IR²-Tree of the
// same shape, because ancestor signatures are recomputed from all
// underlying objects.
func TestMIR2MaintenanceCostsMore(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	rows := randomRows(rng, 300)
	f := buildFixture(t, rows, 4, 8)

	_, ptr, _ := f.store.Append(geo.NewPoint(123, 456), "fresh place with pool and spa")
	if err := f.store.Sync(); err != nil {
		t.Fatal(err)
	}
	obj, err := f.store.Get(ptr)
	if err != nil {
		t.Fatal(err)
	}

	measure := func(tree *IR2Tree, disk *storage.Disk) uint64 {
		disk.ResetStats()
		f.objDisk.ResetStats()
		if err := tree.Insert(obj, ptr); err != nil {
			t.Fatal(err)
		}
		return disk.Stats().Total() + f.objDisk.Stats().Total()
	}
	ir2Cost := measure(f.ir2, f.ir2Disk)
	mir2Cost := measure(f.mir2, f.mir2Disk)
	if mir2Cost <= ir2Cost {
		t.Errorf("MIR² insert cost %d <= IR² cost %d; expected much more", mir2Cost, ir2Cost)
	}
	// The MIR² recomputation must actually touch the object file.
	if f.objDisk.Stats().Reads() == 0 {
		t.Error("MIR² insert did not read underlying objects")
	}
}

// TestMIR2LevelLengthsGrow checks the multi-level design: interior levels
// get longer signatures than the leaves, capped by the vocabulary size.
func TestMIR2LevelLengthsGrow(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	rows := randomRows(rng, 400)
	f := buildFixture(t, rows, 4, 2)
	s := f.mir2.scheme
	if f.mir2.RTree().Height() < 3 {
		t.Fatalf("tree too shallow: height %d", f.mir2.RTree().Height())
	}
	prev := s.EntryAuxLen(0)
	if prev != 2 {
		t.Fatalf("leaf signature length %d, want 2", prev)
	}
	for lvl := 1; lvl < f.mir2.RTree().Height(); lvl++ {
		cur := s.EntryAuxLen(lvl)
		if cur < prev {
			t.Errorf("level %d signature %dB shorter than level %d's %dB", lvl, cur, lvl-1, prev)
		}
		prev = cur
	}
	// The uniform IR²-Tree keeps one length everywhere.
	u := f.ir2.scheme
	for lvl := 0; lvl < 5; lvl++ {
		if u.EntryAuxLen(lvl) != 2 {
			t.Errorf("IR² level %d length %d, want 2", lvl, u.EntryAuxLen(lvl))
		}
	}
}

// TestMIR2FewerNodeAccesses verifies the headline MIR² benefit on a
// vocabulary large enough to saturate short uniform signatures: the
// multilevel tree prunes interior nodes better (fewer node loads) than the
// IR²-Tree with the same leaf signature length.
func TestMIR2FewerNodeAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	// Large vocabulary: include a unique word per object plus shared terms.
	rows := make([]struct {
		lat, lon float64
		text     string
	}, 600)
	shared := []string{"pool", "spa", "internet", "gym", "bar"}
	for i := range rows {
		rows[i].lat = rng.Float64() * 1000
		rows[i].lon = rng.Float64() * 1000
		rows[i].text = fmt.Sprintf("unique%04d %s %s", i,
			shared[rng.Intn(len(shared))], shared[rng.Intn(len(shared))])
	}
	f := buildFixture(t, rows, 4, 2) // 2-byte leaf signatures: heavy saturation
	var ir2Nodes, mir2Nodes int
	for trial := 0; trial < 30; trial++ {
		p := geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
		kw := []string{fmt.Sprintf("unique%04d", rng.Intn(len(rows)))}
		_, s1, err := f.ir2.TopK(1, p, kw)
		if err != nil {
			t.Fatal(err)
		}
		_, s2, err := f.mir2.TopK(1, p, kw)
		if err != nil {
			t.Fatal(err)
		}
		ir2Nodes += s1.NodesLoaded
		mir2Nodes += s2.NodesLoaded
	}
	if mir2Nodes >= ir2Nodes {
		t.Errorf("MIR² loaded %d nodes vs IR² %d; expected fewer", mir2Nodes, ir2Nodes)
	}
}

func TestOptionsValidation(t *testing.T) {
	store := objstore.New(storage.NewDisk(4096))
	if _, err := New(storage.NewDisk(4096), store, Options{}); err == nil {
		t.Error("zero LeafSignature accepted")
	}
	if _, err := New(storage.NewDisk(4096), store, Options{
		LeafSignature: sigfile.Config{LengthBytes: 8, BitsPerWord: 4},
		Multilevel:    true,
	}); err == nil {
		t.Error("MIR² without AvgWordsPerObject accepted")
	}
}

func TestBuildEmptyStore(t *testing.T) {
	store := objstore.New(storage.NewDisk(4096))
	tree, err := New(storage.NewDisk(4096), store, Options{
		LeafSignature: sigfile.Config{LengthBytes: 8, BitsPerWord: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Build(); err != nil {
		t.Fatal(err)
	}
	res, _, err := tree.TopK(5, geo.NewPoint(0, 0), []string{"x"})
	if err != nil || len(res) != 0 {
		t.Errorf("empty tree query: %v, %v", res, err)
	}
}

// TestNormalizeConsistency: text containment and signatures use the same
// normalization, so mixed-case queries behave identically.
func TestNormalizeConsistencyAcrossLayers(t *testing.T) {
	f := buildFixture(t, figure1, 3, 16)
	a, _, err := f.ir2.TopK(5, geo.NewPoint(0, 0), []string{"Internet", "POOL"})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := f.ir2.TopK(5, geo.NewPoint(0, 0), []string{"internet", "pool"})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(resultIDs(a)) != fmt.Sprint(resultIDs(b)) {
		t.Errorf("case sensitivity leak: %v vs %v", resultIDs(a), resultIDs(b))
	}
	_ = textutil.Normalize // keep import if unused elsewhere
}
