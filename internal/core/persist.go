package core

import (
	"fmt"

	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/rtree"
	"spatialkeyword/internal/storage"
)

// Checkpoint persists the tree's state into a state block on its device
// (allocating one when stateBlock is NilBlock) and returns that block's ID.
// Together with objstore.(*Store).Checkpoint and storage.FileDisk this
// makes a full index — object file plus IR²-Tree — durable:
//
//	treeState, _ := tree.Checkpoint(storage.NilBlock)
//	storeMeta, _ := store.Checkpoint()
//	... persist (treeState, storeMeta) wherever the application keeps roots,
//	    close the devices, restart ...
//	store, _ := objstore.Open(objDev, storeMeta)
//	tree, _ := core.Open(idxDev, store, opts, treeState)
func (x *IR2Tree) Checkpoint(stateBlock storage.BlockID) (storage.BlockID, error) {
	return x.rt.Checkpoint(stateBlock)
}

// Open attaches to a checkpointed IR²-Tree on dev. opts must match the
// options the tree was created with — the same leaf signature
// configuration, variant, and (for a MIR²-Tree) the same corpus statistics,
// since those determine the per-level signature lengths baked into the
// stored nodes. A mismatch is detected by the tree's configuration
// fingerprint.
func Open(dev storage.Device, store *objstore.Store, opts Options, stateBlock storage.BlockID) (*IR2Tree, error) {
	x, err := New(dev, store, opts)
	if err != nil {
		return nil, err
	}
	rt, err := rtree.Open(dev, rtree.Config{
		Dim:        dims(opts),
		MaxEntries: opts.MaxEntries,
		Scheme:     x.scheme,
		Split:      opts.Split,
	}, stateBlock)
	if err != nil {
		return nil, fmt.Errorf("core: open: %w", err)
	}
	x.rt = rt
	return x, nil
}

func dims(opts Options) int {
	if opts.Dim == 0 {
		return 2
	}
	return opts.Dim
}
