package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/sigfile"
	"spatialkeyword/internal/storage"
)

// TestDurableIndexEndToEnd builds an IR²-Tree over a file-backed object
// store, checkpoints everything, closes both files, reopens them, and
// verifies queries are identical — the full durability story.
func TestDurableIndexEndToEnd(t *testing.T) {
	for _, multilevel := range []bool{false, true} {
		name := "IR2"
		if multilevel {
			name = "MIR2"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			objPath := filepath.Join(dir, "objects.db")
			idxPath := filepath.Join(dir, "index.db")

			objDev, err := storage.CreateFileDisk(objPath, 4096)
			if err != nil {
				t.Fatal(err)
			}
			idxDev, err := storage.CreateFileDisk(idxPath, 4096)
			if err != nil {
				t.Fatal(err)
			}

			rng := rand.New(rand.NewSource(101))
			rows := randomRows(rng, 250)
			store := objstore.New(objDev)
			for _, r := range rows {
				store.Append(geo.NewPoint(r.lat, r.lon), r.text)
			}
			opts := Options{
				LeafSignature: sigfile.Config{LengthBytes: 8, BitsPerWord: 4},
				MaxEntries:    8,
			}
			if multilevel {
				opts.Multilevel = true
				opts.AvgWordsPerObject = 4
				opts.VocabSize = 64
			}
			storeMeta, err := store.Checkpoint()
			if err != nil {
				t.Fatal(err)
			}
			tree, err := New(idxDev, store, opts)
			if err != nil {
				t.Fatal(err)
			}
			if err := tree.Build(); err != nil {
				t.Fatal(err)
			}
			treeState, err := tree.Checkpoint(storage.NilBlock)
			if err != nil {
				t.Fatal(err)
			}

			q := geo.NewPoint(400, 400)
			want, _, err := tree.TopK(10, q, []string{"pool"})
			if err != nil {
				t.Fatal(err)
			}

			if err := objDev.Close(); err != nil {
				t.Fatal(err)
			}
			if err := idxDev.Close(); err != nil {
				t.Fatal(err)
			}

			// "Restart": reopen from files only.
			objDev2, err := storage.OpenFileDisk(objPath)
			if err != nil {
				t.Fatal(err)
			}
			defer objDev2.Close()
			idxDev2, err := storage.OpenFileDisk(idxPath)
			if err != nil {
				t.Fatal(err)
			}
			defer idxDev2.Close()

			store2, err := objstore.Open(objDev2, storeMeta)
			if err != nil {
				t.Fatal(err)
			}
			tree2, err := Open(idxDev2, store2, opts, treeState)
			if err != nil {
				t.Fatal(err)
			}
			if tree2.Len() != len(rows) {
				t.Fatalf("Len = %d", tree2.Len())
			}
			got, _, err := tree2.TopK(10, q, []string{"pool"})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(resultIDs(got)) != fmt.Sprint(resultIDs(want)) {
				t.Errorf("results changed across restart: %v vs %v", resultIDs(got), resultIDs(want))
			}
			if err := tree2.RTree().CheckInvariants(); err != nil {
				t.Fatal(err)
			}

			// The reopened index accepts updates.
			_, ptr, _ := store2.Append(geo.NewPoint(400, 400), "durable pool palace")
			if err := store2.Sync(); err != nil {
				t.Fatal(err)
			}
			obj, err := store2.Get(ptr)
			if err != nil {
				t.Fatal(err)
			}
			if err := tree2.Insert(obj, ptr); err != nil {
				t.Fatal(err)
			}
			top, _, err := tree2.TopK(1, q, []string{"pool", "palace"})
			if err != nil || len(top) != 1 || top[0].Object.Text != "durable pool palace" {
				t.Errorf("post-reopen insert not queryable: %v %v", top, err)
			}
		})
	}
}

func TestOpenWrongOptionsRejected(t *testing.T) {
	dev := storage.NewDisk(4096)
	store := objstore.New(storage.NewDisk(4096))
	store.Append(geo.NewPoint(1, 1), "alpha")
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}
	opts := Options{LeafSignature: sigfile.Config{LengthBytes: 16, BitsPerWord: 4}, MaxEntries: 8}
	tree, err := New(dev, store, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Build(); err != nil {
		t.Fatal(err)
	}
	state, err := tree.Checkpoint(storage.NilBlock)
	if err != nil {
		t.Fatal(err)
	}
	// A different signature length changes the payload fingerprint.
	bad := opts
	bad.LeafSignature.LengthBytes = 32
	if _, err := Open(dev, store, bad, state); err == nil {
		t.Error("signature length mismatch accepted")
	}
	// Correct options succeed.
	if _, err := Open(dev, store, opts, state); err != nil {
		t.Errorf("valid reopen failed: %v", err)
	}
}
