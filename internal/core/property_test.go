package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/rtree"
	"spatialkeyword/internal/sigfile"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

// TestQuickPruneSoundness is the central correctness property of the
// IR²-Tree, as a randomized invariant: for arbitrary corpora and queries,
// the signature-pruned traversal returns exactly what an unpruned
// traversal plus a text filter would. (Signatures may only produce false
// positives — never false negatives — so pruning can never lose a result.)
func TestQuickPruneSoundness(t *testing.T) {
	vocab := []string{"ape", "bee", "cat", "dog", "elk", "fox", "gnu", "hen"}
	f := func(seed int64, nObjs uint8, sigLen uint8, q1, q2 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nObjs)%60 + 5
		objDisk := storage.NewDisk(4096)
		store := objstore.New(objDisk)
		type rec struct {
			pt   geo.Point
			text string
		}
		recs := make([]rec, n)
		for i := range recs {
			nw := 1 + rng.Intn(4)
			text := fmt.Sprintf("obj%d", i)
			for j := 0; j < nw; j++ {
				text += " " + vocab[rng.Intn(len(vocab))]
			}
			recs[i] = rec{geo.NewPoint(rng.Float64()*100, rng.Float64()*100), text}
			store.Append(recs[i].pt, recs[i].text)
		}
		if err := store.Sync(); err != nil {
			return false
		}
		tree, err := New(storage.NewDisk(4096), store, Options{
			LeafSignature: sigfile.Config{LengthBytes: int(sigLen)%8 + 1, BitsPerWord: 2},
			MaxEntries:    4,
		})
		if err != nil {
			return false
		}
		if err := tree.Build(); err != nil {
			return false
		}
		keywords := []string{vocab[int(q1)%len(vocab)], vocab[int(q2)%len(vocab)]}
		p := geo.NewPoint(rng.Float64()*100, rng.Float64()*100)
		got, _, err := tree.TopK(n, p, keywords)
		if err != nil {
			return false
		}
		// Reference: unpruned NN + text filter.
		var want []objstore.ID
		it := tree.RTree().NearestNeighbors(p, nil)
		for {
			ref, _, ok, err := it.Next()
			if err != nil {
				return false
			}
			if !ok {
				break
			}
			obj, err := store.Get(objstore.Ptr(ref))
			if err != nil {
				return false
			}
			if textutil.ContainsAll(obj.Text, keywords) {
				want = append(want, obj.ID)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i].Object.ID != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickGeneralNeverBeatsUpperBound checks the general algorithm's
// emit discipline over random data: the stream of scores is non-increasing
// (no later result can beat an earlier one).
func TestQuickGeneralScoreMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for trial := 0; trial < 15; trial++ {
		rows := randomRows(rng, 80+rng.Intn(150))
		f := buildFixture(t, rows, 4, 1+rng.Intn(8))
		scorer := generalScorer(f)
		kw := []string{"pool", "internet", "spa"}[:1+rng.Intn(3)]
		it := f.ir2.SearchRanked(geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000), kw,
			GeneralOptions{Scorer: scorer, RequireMatch: true})
		prev := -1.0
		first := true
		for {
			res, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			if !first && res.Score > prev+1e-12 {
				t.Fatalf("trial %d: score %g after %g", trial, res.Score, prev)
			}
			prev, first = res.Score, false
		}
	}
}

// TestQuickAreaConsistentWithPointQueries: an object returned by WithinArea
// must also be returned by a large-enough TopKArea and vice versa.
func TestQuickAreaConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(162))
	rows := randomRows(rng, 300)
	f := buildFixture(t, rows, 4, 8)
	for trial := 0; trial < 20; trial++ {
		lo := geo.NewPoint(rng.Float64()*800, rng.Float64()*800)
		area := geo.NewRect(lo, geo.NewPoint(lo[0]+200, lo[1]+200))
		kw := []string{"pool"}
		within, _, err := f.ir2.WithinArea(area, kw)
		if err != nil {
			t.Fatal(err)
		}
		topArea, _, err := f.ir2.TopKArea(len(f.objects), area, kw)
		if err != nil {
			t.Fatal(err)
		}
		// Every zero-distance TopKArea result must be in WithinArea and
		// vice versa.
		zeroDist := make(map[objstore.ID]bool)
		for _, r := range topArea {
			if r.Dist == 0 {
				zeroDist[r.Object.ID] = true
			}
		}
		if len(zeroDist) != len(within) {
			t.Fatalf("trial %d: %d zero-dist vs %d within", trial, len(zeroDist), len(within))
		}
		for _, r := range within {
			if !zeroDist[r.Object.ID] {
				t.Fatalf("trial %d: object %d in WithinArea missing from TopKArea", trial, r.Object.ID)
			}
		}
	}
}

// TestQuickSignatureLevelMonotone: in a MIR²-Tree, an interior entry's
// signature must cover the signature of every object in its subtree at
// that level's configuration — the invariant that makes pruning sound.
func TestQuickMIR2InteriorCoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	rows := randomRows(rng, 200)
	f := buildFixture(t, rows, 4, 4)
	rt := f.mir2.RTree()
	scheme := f.mir2.scheme
	err := rt.VisitNodes(func(n *rtree.Node) error {
		if n.Level() == 0 {
			return nil
		}
		cfg := scheme.levelConfig(n.Level())
		for i := 0; i < n.NumEntries(); i++ {
			ptr, _, aux := n.Entry(i)
			child, err := rt.LoadNode(storage.BlockID(ptr))
			if err != nil {
				return err
			}
			refs, err := rt.SubtreeObjectRefs(child)
			if err != nil {
				return err
			}
			for _, ref := range refs {
				obj, err := f.store.Get(objstore.Ptr(ref))
				if err != nil {
					return err
				}
				for _, w := range textutil.UniqueTokens(obj.Text) {
					if !sigfile.Matches(sigfile.Signature(aux), cfg.WordSignature(w)) {
						return fmt.Errorf("node %d entry %d: word %q of object %d not covered",
							n.ID(), i, w, obj.ID)
					}
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestQuickCheckpointFaultIsolation is the save-path hardening property: a
// fault plan that kills the device partway through build-and-checkpoint
// must surface as a typed I/O fault — never a panic, never a silent
// success — and whenever the whole pipeline does succeed, reopening the
// checkpoint must reproduce the in-memory oracle exactly.
func TestQuickCheckpointFaultIsolation(t *testing.T) {
	vocab := []string{"ape", "bee", "cat", "dog", "elk", "fox"}
	f := func(seed int64, nObjs, failAt uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nObjs)%40 + 5
		store := objstore.New(storage.NewDisk(4096))
		type rec struct {
			pt   geo.Point
			text string
		}
		oracle := make([]rec, n)
		for i := range oracle {
			text := fmt.Sprintf("obj%d %s %s", i, vocab[rng.Intn(len(vocab))], vocab[rng.Intn(len(vocab))])
			oracle[i] = rec{geo.NewPoint(rng.Float64()*100, rng.Float64()*100), text}
			if _, _, err := store.Append(oracle[i].pt, oracle[i].text); err != nil {
				return false
			}
		}
		if err := store.Sync(); err != nil {
			return false
		}
		// The index device dies on the failAt-th write (0 = never): the
		// kill lands anywhere in build or checkpoint depending on n.
		plan := storage.FaultPlan{Seed: seed}
		if failAt > 0 {
			plan.FailWritesFrom = uint64(failAt)
		}
		dev := storage.NewFaultDevice(storage.NewDisk(512), plan)
		opts := Options{
			LeafSignature: sigfile.Config{LengthBytes: 16, BitsPerWord: 2},
			MaxEntries:    4,
		}
		tree, err := New(dev, store, opts)
		if err != nil {
			return false
		}
		pipeline := func() (storage.BlockID, error) {
			if err := tree.Build(); err != nil {
				return storage.NilBlock, err
			}
			return tree.Checkpoint(storage.NilBlock)
		}
		state, err := pipeline()
		if err != nil {
			// The kill fired: it must be the typed injected fault, with
			// block provenance, and classified as an I/O fault.
			var fe *storage.FaultError
			if !errors.As(err, &fe) || !storage.IsIOFault(err) {
				t.Logf("seed %d failAt %d: untyped failure %v", seed, failAt, err)
				return false
			}
			return true
		}
		// The pipeline survived (failAt beyond its write count, or 0):
		// disarm the plan and verify the checkpoint against the oracle.
		dev.SetPlan(storage.FaultPlan{})
		reopened, err := Open(dev, store, opts, state)
		if err != nil {
			t.Logf("seed %d: reopen of successful checkpoint: %v", seed, err)
			return false
		}
		keyword := vocab[rng.Intn(len(vocab))]
		p := geo.NewPoint(rng.Float64()*100, rng.Float64()*100)
		got, _, err := reopened.TopK(n, p, []string{keyword})
		if err != nil {
			return false
		}
		var want []objstore.ID
		for i, r := range oracle {
			if textutil.ContainsAll(r.text, []string{keyword}) {
				want = append(want, objstore.ID(i))
			}
		}
		if len(got) != len(want) {
			t.Logf("seed %d: reopened tree found %d, oracle %d", seed, len(got), len(want))
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
