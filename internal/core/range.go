package core

import (
	"sort"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/rtree"
	"spatialkeyword/internal/storage"
)

// WithinArea returns every object inside the query rectangle whose text
// contains all the keywords — the classic boolean range query ("all pizza
// places on this map view"), answered with the same double pruning as the
// top-k algorithms: subtrees are skipped when their MBR misses the area
// *or* their signature misses the query signature. Results are ordered by
// object ID for determinism.
func (x *IR2Tree) WithinArea(area geo.Rect, keywords []string) ([]Result, SearchStats, error) {
	kws := x.an.Keywords(keywords)
	sigs := &levelSigs{scheme: x.scheme, kws: kws}

	var stats SearchStats
	root, err := x.rt.Root()
	if err != nil {
		return nil, stats, err
	}
	if root == nil {
		return nil, stats, nil
	}
	// Phase one walks the tree collecting candidate object pointers; phase
	// two loads them in one batch, so rows sharing a block are read once
	// instead of once per object.
	var ptrs []objstore.Ptr
	var walk func(n *rtree.Node) error
	walk = func(n *rtree.Node) error {
		stats.NodesLoaded++
		for i := 0; i < n.NumEntries(); i++ {
			ptr, rect, aux := n.Entry(i)
			if !rect.Intersects(area) {
				continue
			}
			if !sigs.matches(n.Level(), aux) {
				continue
			}
			if n.Level() > 0 {
				child, err := x.rt.LoadNode(storage.BlockID(ptr))
				if err != nil {
					return err
				}
				if err := walk(child); err != nil {
					return err
				}
				continue
			}
			ptrs = append(ptrs, objstore.Ptr(ptr))
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, stats, err
	}
	objs, err := x.store.GetBatch(ptrs)
	if err != nil {
		return nil, stats, err
	}
	stats.ObjectsLoaded = len(objs)
	var out []Result
	for i := range objs {
		obj := objs[i]
		if !area.ContainsPoint(obj.Point) {
			// The entry MBR intersected the area but the point itself
			// (for degenerate point MBRs this cannot happen; kept for
			// rectangle objects) lies outside.
			continue
		}
		if !x.an.ContainsTerms(obj.Text, kws) {
			stats.FalsePositives++
			continue
		}
		out = append(out, Result{Object: obj, Dist: 0})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Object.ID < out[j].Object.ID })
	return out, stats, nil
}
