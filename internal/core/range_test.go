package core

import (
	"fmt"
	"math/rand"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/textutil"
)

func bruteWithinArea(objs []objstore.Object, area geo.Rect, keywords []string) []objstore.ID {
	kws := textutil.NormalizeAll(keywords)
	var out []objstore.ID
	for _, o := range objs {
		if area.ContainsPoint(o.Point) && textutil.ContainsAll(o.Text, kws) {
			out = append(out, o.ID)
		}
	}
	return out
}

func TestWithinAreaMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	rows := randomRows(rng, 400)
	f := buildFixture(t, rows, 4, 8)
	for trial := 0; trial < 15; trial++ {
		lo := geo.NewPoint(rng.Float64()*900-100, rng.Float64()*900-100)
		area := geo.NewRect(lo, geo.NewPoint(lo[0]+rng.Float64()*400, lo[1]+rng.Float64()*400))
		kw := [][]string{{"pool"}, {"internet", "spa"}, {"gym", "bar", "wifi"}, nil}[trial%4]
		want := bruteWithinArea(f.objects, area, kw)
		for name, tree := range map[string]*IR2Tree{"IR2": f.ir2, "MIR2": f.mir2} {
			got, _, err := tree.WithinArea(area, kw)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(resultIDs(got)) != fmt.Sprint(want) {
				t.Fatalf("trial %d (%s): got %v, want %v", trial, name, resultIDs(got), want)
			}
		}
	}
}

func TestWithinAreaPrunesBySignature(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	rows := randomRows(rng, 300)
	f := buildFixture(t, rows, 4, 16)
	// A huge area with an absent keyword: spatial pruning does nothing,
	// signature pruning must keep work near zero.
	area := geo.NewRect(geo.NewPoint(-1e6, -1e6), geo.NewPoint(1e6, 1e6))
	got, stats, err := f.ir2.WithinArea(area, []string{"xyzzy"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %d results for absent keyword", len(got))
	}
	if stats.ObjectsLoaded > 3 {
		t.Errorf("loaded %d objects; signature pruning ineffective", stats.ObjectsLoaded)
	}
	// Same area, common keyword: everything matching comes back.
	got, _, err = f.ir2.WithinArea(area, []string{"pool"})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteWithinArea(f.objects, area, []string{"pool"})
	if len(got) != len(want) {
		t.Errorf("got %d, want %d", len(got), len(want))
	}
}

func TestWithinAreaEmptyTree(t *testing.T) {
	store := objstore.New(newDisk())
	tree, err := New(newDisk(), store, Options{LeafSignature: f8()})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := tree.WithinArea(geo.NewRect(geo.NewPoint(0, 0), geo.NewPoint(1, 1)), []string{"x"})
	if err != nil || got != nil {
		t.Errorf("empty tree: %v %v", got, err)
	}
}
