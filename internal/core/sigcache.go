package core

import "spatialkeyword/internal/sigfile"

// levelSigs lazily caches the conjunctive query signature per tree level in
// word-at-a-time form. The distance-first and area searches consult it once
// per scored entry, so it replaces the old map[int]Signature closure: a
// slice indexed by level (tree heights are tiny) holding Sig64 views that
// match raw aux payloads without allocating.
type levelSigs struct {
	scheme *sigScheme
	kws    []string
	sigs   []sigfile.Sig64
	have   []bool
}

func (c *levelSigs) at(level int) *sigfile.Sig64 {
	for level >= len(c.sigs) {
		c.sigs = append(c.sigs, sigfile.Sig64{})
		c.have = append(c.have, false)
	}
	if !c.have[level] {
		c.sigs[level] = sigfile.MakeSig64(c.scheme.querySignature(level, c.kws))
		c.have[level] = true
	}
	return &c.sigs[level]
}

// matches reports whether an entry payload at the given level may cover the
// whole query (tolerant of length mismatches, like sigfile.MatchesTolerant).
//
//skvet:hotpath
func (c *levelSigs) matches(level int, aux []byte) bool {
	return c.at(level).MatchesTolerant(aux)
}

// levelWordSigs is the per-keyword variant for the general ranked search:
// each level caches one Sig64 per query keyword (W_i = Signature(w_i)).
type levelWordSigs struct {
	scheme *sigScheme
	words  []string
	sigs   [][]sigfile.Sig64
}

func (c *levelWordSigs) at(level int) []sigfile.Sig64 {
	for level >= len(c.sigs) {
		c.sigs = append(c.sigs, nil)
	}
	if c.sigs[level] == nil {
		sigs := make([]sigfile.Sig64, len(c.words))
		for i, w := range c.words {
			sigs[i] = sigfile.MakeSig64(c.scheme.wordSignature(level, w))
		}
		c.sigs[level] = sigs
	}
	return c.sigs[level]
}
