package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/invindex"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/sigfile"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

// figure1 is the paper's running-example dataset (Figure 1).
var figure1 = []struct {
	lat, lon float64
	text     string
}{
	{25.4, -80.1, "Hotel A tennis court, gift shop, spa, Internet"},
	{47.3, -122.2, "Hotel B wireless Internet, pool, golf course"},
	{35.5, 139.4, "Hotel C spa, continental suites, pool"},
	{39.5, 116.2, "Hotel D sauna, pool, conference rooms"},
	{51.3, -0.5, "Hotel E dry cleaning, free lunch, pets"},
	{40.4, -73.5, "Hotel F safe box, concierge, internet, pets"},
	{-33.2, -70.4, "Hotel G Internet, airport transportation, pool"},
	{-41.1, 174.4, "Hotel H wake up service, no pets, pool"},
}

// fixture bundles every structure built over one dataset.
type fixture struct {
	store    *objstore.Store
	objDisk  *storage.Disk
	ptrs     []objstore.Ptr
	objects  []objstore.Object
	ir2      *IR2Tree
	ir2Disk  *storage.Disk
	mir2     *IR2Tree
	mir2Disk *storage.Disk
	base     *RTreeBaseline
	baseDisk *storage.Disk
	inv      *invindex.Index
	invDisk  *storage.Disk
	vocab    *textutil.Vocabulary
}

// buildFixture loads the given rows into an object store and constructs all
// four index structures with small node capacity (so trees have real depth)
// and the given leaf signature length.
func buildFixture(t *testing.T, rows []struct {
	lat, lon float64
	text     string
}, maxEntries, sigBytes int) *fixture {
	t.Helper()
	f := &fixture{
		objDisk:  storage.NewDisk(4096),
		ir2Disk:  storage.NewDisk(4096),
		mir2Disk: storage.NewDisk(4096),
		baseDisk: storage.NewDisk(4096),
		invDisk:  storage.NewDisk(4096),
		vocab:    textutil.NewVocabulary(),
	}
	f.store = objstore.New(f.objDisk)
	for _, r := range rows {
		_, ptr, _ := f.store.Append(geo.NewPoint(r.lat, r.lon), r.text)
		f.ptrs = append(f.ptrs, ptr)
		f.vocab.AddDoc(r.text)
	}
	if err := f.store.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := range rows {
		obj, err := f.store.Get(f.ptrs[i])
		if err != nil {
			t.Fatal(err)
		}
		f.objects = append(f.objects, obj)
	}

	leaf := sigfile.Config{LengthBytes: sigBytes, BitsPerWord: sigfile.DefaultBitsPerWord}
	var err error
	f.ir2, err = New(f.ir2Disk, f.store, Options{
		LeafSignature: leaf, MaxEntries: maxEntries,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.mir2, err = New(f.mir2Disk, f.store, Options{
		LeafSignature: leaf, MaxEntries: maxEntries, Multilevel: true,
		AvgWordsPerObject: f.vocab.AvgUniqueWordsPerDoc(),
		VocabSize:         f.vocab.NumWords(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.base, err = NewRTreeBaseline(f.baseDisk, f.store, 2, maxEntries)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range []interface{ Build() error }{f.ir2, f.mir2, f.base} {
		if err := b.Build(); err != nil {
			t.Fatal(err)
		}
	}
	f.inv = invindex.New(f.invDisk)
	if err := f.store.Scan(func(o objstore.Object, p objstore.Ptr) error {
		f.inv.AddDocument(uint64(p), o.Text)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.inv.Build(); err != nil {
		t.Fatal(err)
	}
	return f
}

// newDisk returns a fresh 4 KB-block disk.
func newDisk() *storage.Disk { return storage.NewDisk(4096) }

// f8 is a common 8-byte leaf signature configuration.
func f8() sigfile.Config {
	return sigfile.Config{LengthBytes: 8, BitsPerWord: sigfile.DefaultBitsPerWord}
}

// bruteTopK is the reference distance-first query: filter by containment,
// sort by distance (ties by ID), take k.
func bruteTopK(objs []objstore.Object, k int, p geo.Point, keywords []string) []objstore.Object {
	kws := textutil.NormalizeAll(keywords)
	var matches []objstore.Object
	for _, o := range objs {
		if textutil.ContainsAll(o.Text, kws) {
			matches = append(matches, o)
		}
	}
	sort.Slice(matches, func(i, j int) bool {
		di, dj := p.Dist(matches[i].Point), p.Dist(matches[j].Point)
		if di != dj {
			return di < dj
		}
		return matches[i].ID < matches[j].ID
	})
	if len(matches) > k {
		matches = matches[:k]
	}
	return matches
}

// randomRows produces a synthetic clustered dataset over a small vocabulary.
func randomRows(rng *rand.Rand, n int) []struct {
	lat, lon float64
	text     string
} {
	vocab := []string{
		"internet", "pool", "spa", "sauna", "gym", "bar", "parking",
		"pets", "breakfast", "wifi", "golf", "beach", "airport", "shuttle",
	}
	rows := make([]struct {
		lat, lon float64
		text     string
	}, n)
	for i := range rows {
		cx, cy := float64(rng.Intn(5))*200, float64(rng.Intn(5))*200
		rows[i].lat = cx + rng.NormFloat64()*30
		rows[i].lon = cy + rng.NormFloat64()*30
		nw := 1 + rng.Intn(6)
		text := fmt.Sprintf("place %d:", i)
		for j := 0; j < nw; j++ {
			text += " " + vocab[rng.Intn(len(vocab))]
		}
		rows[i].text = text
	}
	return rows
}

// resultIDs extracts object IDs from distance-first results.
func resultIDs(rs []Result) []objstore.ID {
	ids := make([]objstore.ID, len(rs))
	for i, r := range rs {
		ids[i] = r.Object.ID
	}
	return ids
}

// objIDs extracts object IDs from raw objects.
func objIDs(os []objstore.Object) []objstore.ID {
	ids := make([]objstore.ID, len(os))
	for i, o := range os {
		ids[i] = o.ID
	}
	return ids
}
