package core

import (
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/rtree"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

// TestTraceReproducesExample3Pruning traces the paper's Example 3 query on
// the Figure 1 hotels and verifies the narrated behavior: subtrees whose
// signatures miss the query are pruned without being visited, and every
// prune is sound (no pruned subtree contains a qualifying hotel).
func TestTraceReproducesExample3Pruning(t *testing.T) {
	f := buildFixture(t, figure1, 3, 16)
	it := f.ir2.Search(geo.NewPoint(30.5, 100.0), []string{"internet", "pool"})

	var events []rtree.TraceEvent
	it.SetTrace(func(ev rtree.TraceEvent) { events = append(events, ev) })

	var results []Result
	for {
		res, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		results = append(results, res)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}

	var prunes, expands, emits int
	expanded := make(map[storage.BlockID]bool)
	prunedSubtrees := []uint64{}
	prunedLevels := []int{}
	for _, ev := range events {
		switch ev.Kind {
		case rtree.TracePrune:
			prunes++
			if ev.Level > 0 {
				prunedSubtrees = append(prunedSubtrees, ev.Child)
				prunedLevels = append(prunedLevels, ev.Level)
			}
		case rtree.TraceExpand:
			expands++
			expanded[ev.Node] = true
		case rtree.TraceEmit:
			emits++
		}
	}
	// Example 3's narration: "Only one child of N1 is enqueued. The other
	// child is discarded as it fails the signature check. Objects H1 and H6
	// also get pruned..." — with a 16-byte signature over the tiny Figure 1
	// docs, pruning must occur.
	if prunes == 0 {
		t.Fatal("no pruning traced — signature filter inert")
	}
	if emits != 2 {
		t.Errorf("emits = %d", emits)
	}
	// Soundness: pruned interior subtrees contain no qualifying object, and
	// they were never expanded.
	for i, child := range prunedSubtrees {
		if expanded[storage.BlockID(child)] {
			t.Errorf("pruned subtree %d was expanded anyway", child)
		}
		node, err := f.ir2.RTree().LoadNode(storage.BlockID(child))
		if err != nil {
			t.Fatal(err)
		}
		refs, err := f.ir2.RTree().SubtreeObjectRefs(node)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range refs {
			obj, err := f.store.Get(objstore.Ptr(ref))
			if err != nil {
				t.Fatal(err)
			}
			if textutil.ContainsAll(obj.Text, []string{"internet", "pool"}) {
				t.Errorf("pruned subtree %d (level %d) contained qualifying hotel %d",
					child, prunedLevels[i], obj.ID)
			}
		}
	}
}

// TestTraceEventOrdering checks the protocol: the first event expands the
// root, every enqueue names the node just expanded, and emits only follow
// their enqueue.
func TestTraceEventOrdering(t *testing.T) {
	f := buildFixture(t, figure1, 3, 16)
	it := f.ir2.Search(geo.NewPoint(0, 0), []string{"pool"})
	var events []rtree.TraceEvent
	it.SetTrace(func(ev rtree.TraceEvent) { events = append(events, ev) })
	for {
		_, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	if events[0].Kind != rtree.TraceExpand {
		t.Errorf("first event = %v, want expand of root", events[0].Kind)
	}
	root, err := f.ir2.RTree().Root()
	if err != nil {
		t.Fatal(err)
	}
	if events[0].Node != root.ID() {
		t.Errorf("first expand = node %d, want root %d", events[0].Node, root.ID())
	}
	enqueuedObjects := make(map[uint64]bool)
	currentExpand := storage.NilBlock
	for _, ev := range events {
		switch ev.Kind {
		case rtree.TraceExpand:
			currentExpand = ev.Node
		case rtree.TraceEnqueueNode, rtree.TraceEnqueueObject, rtree.TracePrune:
			if ev.Node != currentExpand {
				t.Fatalf("entry event for node %d while expanding %d", ev.Node, currentExpand)
			}
			if ev.Kind == rtree.TraceEnqueueObject {
				enqueuedObjects[ev.Child] = true
			}
		case rtree.TraceEmit:
			if !enqueuedObjects[ev.Child] {
				t.Fatalf("object %d emitted without being enqueued", ev.Child)
			}
		}
	}
}

func TestTraceKindString(t *testing.T) {
	kinds := map[rtree.TraceKind]string{
		rtree.TraceExpand:        "expand",
		rtree.TraceEnqueueNode:   "enqueue-node",
		rtree.TraceEnqueueObject: "enqueue-object",
		rtree.TracePrune:         "prune",
		rtree.TraceEmit:          "emit",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
}
