// Package dataset generates the synthetic stand-ins for the paper's two
// evaluation datasets.
//
// The paper evaluates on two proprietary datasets from FIU's High
// Performance Database Research Center (Table 1):
//
//	Hotels:      129,319 objects, 349 avg unique words/object, 53,906-word
//	             vocabulary, ~2 disk blocks per object (55.2 MB).
//	Restaurants: 456,288 objects,  14 avg unique words/object, 73,855-word
//	             vocabulary, ~1 disk block per object (61.3 MB).
//
// Those files are not publicly available, so this package synthesizes
// datasets with the same measured statistics: object count, vocabulary
// size, mean unique words per object, and description length (hence blocks
// per object). Word frequencies follow a Zipf distribution — the
// skew that governs posting-list lengths (IIO's cost) and signature
// density (IR²'s false-positive rate) — and coordinates are drawn from a
// mixture of Gaussian "city" clusters plus a uniform background, which
// gives the R-Tree realistic overlap. Generation is deterministic per
// seed. See DESIGN.md for why these four matched statistics preserve every
// behavior the evaluation measures.
package dataset

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
)

// Spec describes a synthetic dataset.
type Spec struct {
	// Name labels the dataset in reports ("hotels", "restaurants").
	Name string
	// NumObjects is the number of objects to generate.
	NumObjects int
	// VocabSize is the vocabulary to draw words from.
	VocabSize int
	// AvgUniqueWords is the mean number of distinct words per object.
	AvgUniqueWords int
	// ZipfSkew is the Zipf exponent for word frequencies (>1). Zero means
	// 1.07, a typical natural-text skew.
	ZipfSkew float64
	// Clusters is the number of spatial clusters. Zero means 32.
	Clusters int
	// ClusterSigma is the cluster standard deviation in world units
	// (world is [0, 10000]²). Zero means 150.
	ClusterSigma float64
	// UniformFraction is the share of objects placed uniformly instead of
	// in clusters. Zero means 0.1.
	UniformFraction float64
	// Seed makes generation deterministic.
	Seed int64
}

// Hotels returns the Hotels dataset spec scaled by the given factor in
// (0, 1]: scale 1 reproduces Table 1's row; smaller scales shrink the
// object count and vocabulary proportionally while keeping the per-object
// text statistics (and therefore blocks-per-object) intact.
func Hotels(scale float64) Spec {
	return scaled(Spec{
		Name:           "hotels",
		NumObjects:     129319,
		VocabSize:      53906,
		AvgUniqueWords: 349,
		Seed:           20080407, // ICDE 2008 ;-)
	}, scale)
}

// Restaurants returns the Restaurants dataset spec scaled like Hotels.
func Restaurants(scale float64) Spec {
	return scaled(Spec{
		Name:           "restaurants",
		NumObjects:     456288,
		VocabSize:      73855,
		AvgUniqueWords: 14,
		Seed:           20080408,
	}, scale)
}

func scaled(s Spec, scale float64) Spec {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	s.NumObjects = max(1, int(float64(s.NumObjects)*scale))
	// Keep the vocabulary large enough that documents of AvgUniqueWords
	// distinct words remain natural at small scales.
	s.VocabSize = max(4*s.AvgUniqueWords, int(float64(s.VocabSize)*scale))
	return s
}

// Stats reports what was actually generated — the reproduction of Table 1.
type Stats struct {
	Name            string
	Objects         int
	AvgUniqueWords  float64
	VocabUsed       int     // distinct words that actually occur
	SizeMB          float64 // object-file footprint
	AvgBlocksPerObj float64
	// DocFreq holds the document frequency of every generated word; the
	// benchmark workloads draw query keywords from it.
	DocFreq map[string]int
}

// WordsByFreq returns the generated words ordered by descending document
// frequency (ties lexicographic).
func (s *Stats) WordsByFreq() []string {
	words := make([]string, 0, len(s.DocFreq))
	for w := range s.DocFreq {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		fi, fj := s.DocFreq[words[i]], s.DocFreq[words[j]]
		if fi != fj {
			return fi > fj
		}
		return words[i] < words[j]
	})
	return words
}

// Generate appends spec.NumObjects synthetic objects to store (followed by
// a Sync) and returns the generation statistics.
func Generate(spec Spec, store *objstore.Store) (*Stats, error) {
	if spec.NumObjects <= 0 {
		return nil, fmt.Errorf("dataset: NumObjects %d", spec.NumObjects)
	}
	if spec.VocabSize < 2 {
		return nil, fmt.Errorf("dataset: VocabSize %d", spec.VocabSize)
	}
	if spec.AvgUniqueWords < 1 {
		return nil, fmt.Errorf("dataset: AvgUniqueWords %d", spec.AvgUniqueWords)
	}
	skew := spec.ZipfSkew
	if skew == 0 {
		skew = 1.07
	}
	if skew <= 1 {
		return nil, fmt.Errorf("dataset: ZipfSkew %g must exceed 1", skew)
	}
	clusters := spec.Clusters
	if clusters == 0 {
		clusters = 32
	}
	sigma := spec.ClusterSigma
	if sigma == 0 {
		sigma = 150
	}
	uniform := spec.UniformFraction
	if uniform == 0 {
		uniform = 0.1
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	zipf := rand.NewZipf(rng, skew, 1, uint64(spec.VocabSize-1))

	centers := make([]geo.Point, clusters)
	for i := range centers {
		centers[i] = geo.NewPoint(rng.Float64()*10000, rng.Float64()*10000)
	}

	stats := &Stats{Name: spec.Name, DocFreq: make(map[string]int)}
	var uniqueSum int64
	var b strings.Builder
	for i := 0; i < spec.NumObjects; i++ {
		// Location: cluster or uniform background.
		var p geo.Point
		if rng.Float64() < uniform {
			p = geo.NewPoint(rng.Float64()*10000, rng.Float64()*10000)
		} else {
			c := centers[rng.Intn(clusters)]
			p = geo.NewPoint(c[0]+rng.NormFloat64()*sigma, c[1]+rng.NormFloat64()*sigma)
		}

		// Distinct word count: clipped normal around the mean, capped so the
		// coupon-collector sampling below stays cheap even when a scaled
		// vocabulary is small relative to the document size.
		target := int(math.Round(float64(spec.AvgUniqueWords) * (1 + 0.25*rng.NormFloat64())))
		if target < 1 {
			target = 1
		}
		if cap := spec.VocabSize * 3 / 5; target > cap {
			target = cap
		}
		// Sample the distinct word set: Zipf draws first (giving common
		// words their natural head start), then a linear fill of unseen
		// ranks if duplicates stall progress.
		seen := make(map[uint64]struct{}, target)
		order := make([]uint64, 0, target)
		for tries := 0; len(seen) < target && tries < target*8; tries++ {
			id := zipf.Uint64()
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				order = append(order, id)
			}
		}
		for id := uint64(rng.Intn(spec.VocabSize)); len(seen) < target; id = (id + 1) % uint64(spec.VocabSize) {
			if _, dup := seen[id]; !dup {
				seen[id] = struct{}{}
				order = append(order, id)
			}
		}
		// Emit the document: each distinct word once, common words (early
		// Zipf draws) occasionally repeated for realistic tf > 1.
		b.Reset()
		for j, id := range order {
			w := Word(id)
			stats.DocFreq[w]++
			tf := 1
			if j < len(order)/4 && rng.Float64() < 0.4 {
				tf += 1 + rng.Intn(2)
			}
			for r := 0; r < tf; r++ {
				if b.Len() > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(w)
			}
		}
		uniqueSum += int64(len(order))
		if _, _, err := store.Append(p, b.String()); err != nil {
			return nil, err
		}
	}
	if err := store.Sync(); err != nil {
		return nil, err
	}
	stats.Objects = spec.NumObjects
	stats.AvgUniqueWords = float64(uniqueSum) / float64(spec.NumObjects)
	stats.VocabUsed = len(stats.DocFreq)
	stats.SizeMB = store.SizeMB()
	stats.AvgBlocksPerObj = store.AvgBlocksPerObject()
	return stats, nil
}

// Word maps a vocabulary index to a deterministic pronounceable word.
// Distinct indexes map to distinct words (the construction is injective:
// it is a base-21 numeral written in consonant+vowel syllables with the
// final syllable marking the length).
func Word(id uint64) string {
	const consonants = "bcdfghjklmnpqrstvwxyz" // 21
	const vowels = "aeiou"                     // 5
	var sb strings.Builder
	v := id
	for {
		c := consonants[v%21]
		v /= 21
		sb.WriteByte(c)
		sb.WriteByte(vowels[(id/7+uint64(sb.Len()))%5])
		if v == 0 {
			break
		}
	}
	return sb.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
