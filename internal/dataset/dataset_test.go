package dataset

import (
	"math"
	"testing"

	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

func generate(t *testing.T, spec Spec) (*Stats, *objstore.Store) {
	t.Helper()
	store := objstore.New(storage.NewDisk(4096))
	stats, err := Generate(spec, store)
	if err != nil {
		t.Fatal(err)
	}
	return stats, store
}

func TestWordInjective(t *testing.T) {
	seen := make(map[string]uint64)
	for id := uint64(0); id < 200000; id++ {
		w := Word(id)
		if w == "" {
			t.Fatalf("empty word for %d", id)
		}
		if prev, dup := seen[w]; dup {
			t.Fatalf("Word collision: %d and %d both map to %q", prev, id, w)
		}
		seen[w] = id
		// Words must survive tokenization unchanged (single lowercase token).
		toks := textutil.Tokenize(w)
		if len(toks) != 1 || toks[0] != w {
			t.Fatalf("Word(%d) = %q does not tokenize to itself: %v", id, w, toks)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Restaurants(0.002)
	a, storeA := generate(t, spec)
	b, storeB := generate(t, spec)
	if a.Objects != b.Objects || a.AvgUniqueWords != b.AvgUniqueWords || a.VocabUsed != b.VocabUsed {
		t.Errorf("generation not deterministic: %+v vs %+v", a, b)
	}
	objA, err := storeA.GetByID(0)
	if err != nil {
		t.Fatal(err)
	}
	objB, err := storeB.GetByID(0)
	if err != nil {
		t.Fatal(err)
	}
	if objA.Text != objB.Text || !objA.Point.Equal(objB.Point) {
		t.Error("first object differs between runs")
	}
}

func TestRestaurantsStatistics(t *testing.T) {
	spec := Restaurants(0.01) // 4,562 objects
	stats, store := generate(t, spec)
	if stats.Objects != spec.NumObjects {
		t.Errorf("objects = %d, want %d", stats.Objects, spec.NumObjects)
	}
	// Mean unique words within 15% of the Table 1 target (14).
	if math.Abs(stats.AvgUniqueWords-14) > 14*0.15 {
		t.Errorf("avg unique words = %g, want ≈14", stats.AvgUniqueWords)
	}
	// Restaurants rows are small: ≈1 block per object.
	if stats.AvgBlocksPerObj > 1.2 {
		t.Errorf("blocks/object = %g, want ≈1", stats.AvgBlocksPerObj)
	}
	if store.NumObjects() != spec.NumObjects {
		t.Errorf("store holds %d objects", store.NumObjects())
	}
	if stats.SizeMB <= 0 {
		t.Error("size not accounted")
	}
}

func TestHotelsStatistics(t *testing.T) {
	spec := Hotels(0.005) // 646 objects — hotels docs are big, keep it small
	stats, _ := generate(t, spec)
	if math.Abs(stats.AvgUniqueWords-349) > 349*0.15 {
		t.Errorf("avg unique words = %g, want ≈349", stats.AvgUniqueWords)
	}
	// Hotels rows are long: Table 1 reports ~2 blocks per object.
	if stats.AvgBlocksPerObj < 1.5 || stats.AvgBlocksPerObj > 3 {
		t.Errorf("blocks/object = %g, want ≈2", stats.AvgBlocksPerObj)
	}
}

func TestZipfSkew(t *testing.T) {
	stats, _ := generate(t, Restaurants(0.01))
	words := stats.WordsByFreq()
	if len(words) < 100 {
		t.Fatalf("vocabulary too small: %d", len(words))
	}
	// Zipf: the top word is much more frequent than the 100th.
	top, hundredth := stats.DocFreq[words[0]], stats.DocFreq[words[99]]
	if top < 5*hundredth {
		t.Errorf("frequency skew too flat: top=%d 100th=%d", top, hundredth)
	}
	// Sortedness.
	for i := 1; i < len(words); i++ {
		if stats.DocFreq[words[i-1]] < stats.DocFreq[words[i]] {
			t.Fatal("WordsByFreq not sorted")
		}
	}
}

func TestSpatialClustering(t *testing.T) {
	// Clustered generation should concentrate points: the mean
	// nearest-cluster distance must be far below the uniform expectation.
	_, store := generate(t, Restaurants(0.005))
	var inWorld int
	if err := store.Scan(func(o objstore.Object, _ objstore.Ptr) error {
		if o.Point[0] >= -2000 && o.Point[0] <= 12000 && o.Point[1] >= -2000 && o.Point[1] <= 12000 {
			inWorld++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if inWorld < store.NumObjects()*99/100 {
		t.Errorf("only %d/%d objects near the world box", inWorld, store.NumObjects())
	}
}

func TestSpecValidation(t *testing.T) {
	store := objstore.New(storage.NewDisk(4096))
	bad := []Spec{
		{NumObjects: 0, VocabSize: 10, AvgUniqueWords: 3},
		{NumObjects: 5, VocabSize: 1, AvgUniqueWords: 3},
		{NumObjects: 5, VocabSize: 10, AvgUniqueWords: 0},
		{NumObjects: 5, VocabSize: 10, AvgUniqueWords: 3, ZipfSkew: 0.5},
	}
	for i, s := range bad {
		if _, err := Generate(s, store); err == nil {
			t.Errorf("spec %d accepted: %+v", i, s)
		}
	}
}

func TestScaling(t *testing.T) {
	full := Hotels(1)
	half := Hotels(0.5)
	if half.NumObjects != full.NumObjects/2 {
		t.Errorf("scaled objects = %d", half.NumObjects)
	}
	if half.AvgUniqueWords != full.AvgUniqueWords {
		t.Error("scaling must not change per-object text statistics")
	}
	if full.NumObjects != 129319 || full.VocabSize != 53906 || full.AvgUniqueWords != 349 {
		t.Errorf("Hotels(1) != Table 1: %+v", full)
	}
	r := Restaurants(1)
	if r.NumObjects != 456288 || r.VocabSize != 73855 || r.AvgUniqueWords != 14 {
		t.Errorf("Restaurants(1) != Table 1: %+v", r)
	}
	// Out-of-range scales clamp to full.
	if Hotels(0).NumObjects != full.NumObjects || Hotels(7).NumObjects != full.NumObjects {
		t.Error("invalid scale not clamped")
	}
}
