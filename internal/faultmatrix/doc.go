// Package faultmatrix cross-checks every index substrate against every
// injected storage failure mode. It holds no production code: the package
// exists for its test, which drives the fault matrix
//
//	{read-error, write-error, bit-flip, torn-run, alloc-fail}
//	    × {rtree, invindex, sigfile (via IR²-Tree aux), objstore, wal}
//
// and asserts the hardening contract end to end — a faulted device never
// panics a substrate, the failure surfaces as a typed error
// (*storage.FaultError or *storage.CorruptBlockError) carrying the block it
// hit, storage.IsIOFault classifies it, and no goroutines leak.
//
// The matrix lives in its own package, rather than one test per substrate,
// so the contract is stated — and extended — in exactly one place: a new
// fault kind or a new substrate is one more row or column here.
package faultmatrix
