package faultmatrix

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/invindex"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/rtree"
	"spatialkeyword/internal/sigfile"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/wal"
)

// blockSize is small enough that every substrate's bulk structures span
// multiple blocks, so torn multi-block writes have a run to tear.
const blockSize = 256

// substrate is one column of the matrix: how to build the structure on a
// device and how to read it back afterwards. build must route every write
// through dev; read must route at least one read through it.
type substrate struct {
	name string
	// build constructs the structure on dev and returns a read op bound to
	// it. Errors during construction are returned from build itself.
	build func(dev storage.Device) (read func() error, err error)
}

// substrates lists the five storage substrates the engine is assembled
// from. The sigfile column goes through the IR²-Tree: signatures have no
// device of their own — they live in node aux payloads — so their fault
// surface is the signature-bearing node blocks. The wal column covers the
// write-ahead log's append and recovery paths.
func substrates() []substrate {
	return []substrate{
		{name: "rtree", build: buildRTree},
		{name: "invindex", build: buildInvIndex},
		{name: "sigfile", build: buildSigTree},
		{name: "objstore", build: buildObjStore},
		{name: "wal", build: buildWAL},
	}
}

// buildRTree inserts enough rectangles that nodes span several blocks
// (MaxEntries × entry size > blockSize).
func buildRTree(dev storage.Device) (func() error, error) {
	t, err := rtree.New(dev, rtree.Config{Dim: 2, MaxEntries: 16})
	if err != nil {
		return nil, err
	}
	for i := 0; i < 80; i++ {
		p := geo.NewPoint(float64(i%10), float64(i/10))
		if err := t.Insert(uint64(i), geo.NewRect(p, p), nil); err != nil {
			return nil, err
		}
	}
	read := func() error {
		it := t.NearestNeighbors(geo.NewPoint(3.5, 3.5), nil)
		for {
			_, _, ok, err := it.Next()
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
	}
	return read, nil
}

// buildInvIndex builds postings big enough that the dictionary and posting
// regions are multi-block runs.
func buildInvIndex(dev storage.Device) (func() error, error) {
	ix := invindex.New(dev)
	for i := 0; i < 60; i++ {
		ix.AddDocument(uint64(i), fmt.Sprintf("doc%d common alpha beta gamma delta", i))
	}
	if err := ix.Build(); err != nil {
		return nil, err
	}
	read := func() error {
		_, err := ix.Postings("common")
		return err
	}
	return read, nil
}

// buildSigTree builds an IR²-Tree whose leaf signatures (64 bytes per
// entry) force multi-block nodes; reads traverse signature-bearing blocks.
func buildSigTree(dev storage.Device) (func() error, error) {
	store := objstore.New(storage.NewDisk(4096)) // object rows on a healthy disk
	for i := 0; i < 40; i++ {
		if _, _, err := store.Append(geo.NewPoint(float64(i%8), float64(i/8)), fmt.Sprintf("obj%d common word%d", i, i%5)); err != nil {
			return nil, err
		}
	}
	if err := store.Sync(); err != nil {
		return nil, err
	}
	tree, err := core.New(dev, store, core.Options{
		LeafSignature: sigfile.Config{LengthBytes: 64, BitsPerWord: 2},
		MaxEntries:    8,
	})
	if err != nil {
		return nil, err
	}
	if err := tree.Build(); err != nil {
		return nil, err
	}
	read := func() error {
		_, _, err := tree.TopK(5, geo.NewPoint(2, 2), []string{"common"})
		return err
	}
	return read, nil
}

// buildObjStore appends enough rows that the checkpoint's meta run spans
// blocks, then reads rows back.
func buildObjStore(dev storage.Device) (func() error, error) {
	store := objstore.New(dev)
	var ptrs []objstore.Ptr
	for i := 0; i < 400; i++ {
		_, ptr, err := store.Append(geo.NewPoint(float64(i), 1), fmt.Sprintf("row %d with a handful of words", i))
		if err != nil {
			return nil, err
		}
		ptrs = append(ptrs, ptr)
	}
	if _, err := store.Checkpoint(); err != nil {
		return nil, err
	}
	read := func() error {
		for _, ptr := range []objstore.Ptr{ptrs[0], ptrs[len(ptrs)/2], ptrs[len(ptrs)-1]} {
			if _, err := store.Get(ptr); err != nil {
				return err
			}
		}
		return nil
	}
	return read, nil
}

// buildWAL appends group-committed batches large enough that each commit is
// a multi-block WriteRun (so torn writes have a run to tear); reads recover
// the log from scratch, traversing every log block.
func buildWAL(dev storage.Device) (func() error, error) {
	l, err := wal.Create(dev)
	if err != nil {
		return nil, err
	}
	app := wal.NewAppender(l, 0)
	for i := 0; i < 40; i++ {
		rec := wal.Record{
			Op:    wal.OpAdd,
			ID:    uint64(i),
			Point: []float64{float64(i % 8), float64(i / 8)},
			Text:  fmt.Sprintf("wal row %d padded out with enough text that an eight-record batch spans several 256-byte blocks", i),
		}
		if _, err := app.AppendAsync(rec); err != nil {
			return nil, err
		}
		if i%8 == 7 {
			if err := app.Sync(); err != nil {
				return nil, err
			}
		}
	}
	if err := app.Sync(); err != nil {
		return nil, err
	}
	read := func() error {
		_, _, err := wal.Open(dev)
		return err
	}
	return read, nil
}

// wantTyped asserts the hardening contract for one matrix cell: err is
// non-nil, classified as an I/O fault, and carries block provenance via one
// of the two typed errors.
func wantTyped(t *testing.T, err error, wantKind storage.FaultKind, wantChecksum bool) {
	t.Helper()
	if err == nil {
		t.Fatal("fault swallowed: operation succeeded")
	}
	if !storage.IsIOFault(err) {
		t.Fatalf("error not classified as I/O fault: %v", err)
	}
	if wantChecksum {
		var ce *storage.CorruptBlockError
		if !errors.As(err, &ce) {
			t.Fatalf("want *CorruptBlockError, got %v", err)
		}
		return
	}
	if wantKind == storage.KindAllocFail && errors.Is(err, storage.ErrDeviceFull) {
		// Substrates that guard allocations surface full-disk as the
		// ErrDeviceFull sentinel before ever touching NilBlock.
		return
	}
	var fe *storage.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FaultError, got %v", err)
	}
	if fe.Kind != wantKind {
		t.Fatalf("fault kind = %s, want %s (err: %v)", fe.Kind, wantKind, err)
	}
}

// TestFaultMatrix drives every fault kind against every substrate.
func TestFaultMatrix(t *testing.T) {
	checkNoGoroutineLeak(t)
	for _, sub := range substrates() {
		sub := sub
		t.Run(sub.name, func(t *testing.T) {
			t.Run("read-error", func(t *testing.T) {
				fd := storage.NewFaultDevice(storage.NewDisk(blockSize), storage.FaultPlan{})
				read, err := sub.build(fd)
				if err != nil {
					t.Fatalf("clean build failed: %v", err)
				}
				if err := read(); err != nil {
					t.Fatalf("clean read failed: %v", err)
				}
				fd.SetPlan(storage.FaultPlan{FailReadBlocks: allBlocks(fd)})
				wantTyped(t, read(), storage.KindReadError, false)
			})
			t.Run("write-error", func(t *testing.T) {
				fd := storage.NewFaultDevice(storage.NewDisk(blockSize), storage.FaultPlan{FailWritesFrom: 5})
				_, err := sub.build(fd)
				wantTyped(t, err, storage.KindWriteError, false)
			})
			t.Run("bit-flip", func(t *testing.T) {
				// Checksum framing sits between the substrate and the flip,
				// so silent corruption surfaces as *CorruptBlockError.
				fd := storage.NewFaultDevice(storage.NewDisk(blockSize), storage.FaultPlan{Seed: 7})
				dev := storage.NewChecksumDisk(fd)
				read, err := sub.build(dev)
				if err != nil {
					t.Fatalf("clean build failed: %v", err)
				}
				fd.SetPlan(storage.FaultPlan{Seed: 7, FlipBlocks: allBlocks(fd)})
				wantTyped(t, read(), 0, true)
			})
			t.Run("torn-run", func(t *testing.T) {
				fd := storage.NewFaultDevice(storage.NewDisk(blockSize), storage.FaultPlan{TornWriteAt: nextAccesses(256)})
				_, err := sub.build(fd)
				wantTyped(t, err, storage.KindTornWrite, false)
			})
			t.Run("alloc-fail", func(t *testing.T) {
				fd := storage.NewFaultDevice(storage.NewDisk(blockSize), storage.FaultPlan{MaxBlocks: 3})
				_, err := sub.build(fd)
				wantTyped(t, err, storage.KindAllocFail, false)
			})
		})
	}
}

// nextAccesses lists access ordinals 1..n — "fail whichever access comes
// next, wherever it lands", without caring how many accesses setup used.
// Useful only on a fresh device, whose counters start at zero.
func nextAccesses(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i + 1)
	}
	return out
}

// allBlocks lists every block ID the device could have handed out (plus a
// margin), so a block-targeted plan hits whatever the next access touches.
func allBlocks(d storage.Device) []storage.BlockID {
	out := make([]storage.BlockID, 0, d.NumBlocks()+4)
	for i := 1; i <= d.NumBlocks()+4; i++ {
		out = append(out, storage.BlockID(i))
	}
	return out
}

// checkNoGoroutineLeak fails the test if it ends with more goroutines than
// it started with (after a grace period for runtime bookkeeping).
func checkNoGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// TestFaultMatrixBlockProvenance pins the provenance detail: a fault
// targeted at one specific block reports exactly that block.
func TestFaultMatrixBlockProvenance(t *testing.T) {
	fd := storage.NewFaultDevice(storage.NewDisk(blockSize), storage.FaultPlan{})
	read, err := buildRTree(fd)
	if err != nil {
		t.Fatal(err)
	}
	// Fail every block: whichever the traversal touches first is reported.
	var blocks []storage.BlockID
	for i := 1; i <= fd.NumBlocks()+1; i++ {
		blocks = append(blocks, storage.BlockID(i))
	}
	fd.SetPlan(storage.FaultPlan{FailReadBlocks: blocks})
	err = read()
	var fe *storage.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("want *FaultError, got %v", err)
	}
	if fe.Block == storage.NilBlock {
		t.Fatalf("fault lost block provenance: %+v", fe)
	}
	if fe.Op != storage.OpRead {
		t.Fatalf("fault op = %v, want read", fe.Op)
	}
}
