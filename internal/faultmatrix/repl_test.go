package faultmatrix

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/repl"
)

// The replication row of the matrix: the faults here live on the wire and
// in process lifetimes, not in a block device, so they are injected by an
// HTTP middleware between follower and leader (torn and corrupt response
// bodies, delays) and by crash-imaging the follower's directory mid-replay.
// The hardening contract is the same shape as the storage rows: every fault
// is detected, never silently absorbed, and the follower converges back to
// the leader's exact state.

// faultProxy wraps the leader's /repl handler and mutates /repl/log
// responses according to mode for the first `remaining` non-empty bodies.
type faultProxy struct {
	h http.Handler

	mu        sync.Mutex
	mode      string // "truncate", "corrupt", "delay"
	remaining int
	delay     time.Duration
	injected  int
}

func (p *faultProxy) arm(mode string, n int, delay time.Duration) {
	p.mu.Lock()
	p.mode, p.remaining, p.delay = mode, n, delay
	p.mu.Unlock()
}

func (p *faultProxy) injections() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

func (p *faultProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != repl.LogPath {
		p.h.ServeHTTP(w, r)
		return
	}
	p.mu.Lock()
	mode, delay := p.mode, p.delay
	armed := p.remaining > 0
	p.mu.Unlock()

	if armed && mode == "delay" {
		p.mu.Lock()
		p.remaining--
		p.injected++
		p.mu.Unlock()
		time.Sleep(delay)
		p.h.ServeHTTP(w, r)
		return
	}

	rec := httptest.NewRecorder()
	p.h.ServeHTTP(rec, r)
	body := rec.Body.Bytes()
	if armed && rec.Code == http.StatusOK && len(body) > 16 {
		p.mu.Lock()
		switch mode {
		case "truncate":
			// Cut mid-frame: the follower must see a partial frame, not a
			// short-but-valid stream.
			body = body[:len(body)-7]
			p.remaining--
			p.injected++
		case "corrupt":
			// Flip one payload byte; the frame CRC must catch it.
			body = append([]byte(nil), body...)
			body[len(body)/2] ^= 0x20
			p.remaining--
			p.injected++
		}
		p.mu.Unlock()
	}
	for k, vs := range rec.Header() {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(rec.Code)
	w.Write(body) //nolint:errcheck // best-effort response write
}

// newReplLeader builds a WAL leader engine with a fault proxy in front of
// its replication handler.
func newReplLeader(t *testing.T) (*spatialkeyword.Engine, *repl.Leader, *faultProxy, *httptest.Server) {
	t.Helper()
	dir := t.TempDir()
	e, err := spatialkeyword.NewDurableEngine(spatialkeyword.Config{SignatureBytes: 16, WAL: true}, dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() }) //nolint:errcheck // test teardown
	l := repl.NewLeader(dir)
	l.AttachEngine(e)
	proxy := &faultProxy{h: l.Handler()}
	srv := httptest.NewServer(proxy)
	t.Cleanup(srv.Close)
	return e, l, proxy, srv
}

func replAddN(t *testing.T, e *spatialkeyword.Engine, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		text := fmt.Sprintf("poi %d fault matrix row with some padding text", i)
		if _, err := e.Add([]float64{float64(i % 16), float64(i / 16)}, text); err != nil {
			t.Fatal(err)
		}
	}
}

func replFastOpts() repl.Options {
	return repl.Options{PollWait: 30 * time.Millisecond, RetryInterval: 5 * time.Millisecond}
}

// replConverged asserts the follower serves exactly the leader's live set.
func replConverged(t *testing.T, e *spatialkeyword.Engine, l *repl.Leader, f *repl.Follower) {
	t.Helper()
	if err := f.WaitFor(l.PositionToken(), 10*time.Second); err != nil {
		t.Fatalf("follower never converged: %v", err)
	}
	if got, want := f.Stats().Objects, e.Stats().Objects; got != want {
		t.Fatalf("follower holds %d objects, leader %d", got, want)
	}
	n := e.Stats().Objects
	want, err := e.TopK(n+1, []float64{4, 2}, "poi")
	if err != nil {
		t.Fatal(err)
	}
	got, err := f.TopK(n+1, []float64{4, 2}, "poi")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("follower query found %d objects, leader %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Object.ID != want[i].Object.ID || got[i].Dist != want[i].Dist {
			t.Fatalf("result %d diverged: follower %+v, leader %+v", i, got[i], want[i])
		}
	}
}

// TestReplStreamCutMidFrame tears /repl/log bodies mid-frame: the follower
// must detect the partial frame, re-request from its acknowledged position,
// and converge without applying a torn record.
func TestReplStreamCutMidFrame(t *testing.T) {
	checkNoGoroutineLeak(t)
	e, l, proxy, srv := newReplLeader(t)
	replAddN(t, e, 0, 30)
	proxy.arm("truncate", 3, 0)

	f, err := repl.OpenFollower(t.TempDir(), srv.URL, replFastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	replConverged(t, e, l, f)
	if proxy.injections() == 0 {
		t.Fatal("fault never injected: the scenario did not run")
	}
	if f.Status().Resyncs == 0 {
		t.Fatal("torn stream never counted as a resync")
	}
}

// TestReplCorruptFrameOnWire flips a byte inside a shipped frame: the CRC
// must reject it and the follower must re-fetch, never applying the
// corrupted record.
func TestReplCorruptFrameOnWire(t *testing.T) {
	checkNoGoroutineLeak(t)
	e, l, proxy, srv := newReplLeader(t)
	replAddN(t, e, 0, 30)
	proxy.arm("corrupt", 3, 0)

	f, err := repl.OpenFollower(t.TempDir(), srv.URL, replFastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	replConverged(t, e, l, f)
	if proxy.injections() == 0 {
		t.Fatal("fault never injected: the scenario did not run")
	}
	if f.Status().Resyncs == 0 {
		t.Fatal("corrupt frame never counted as a resync")
	}
}

// TestReplLeaderRotationDuringTail rotates the leader's log while the
// follower is mid-drain: the follower must finish the old generation,
// checkpoint locally, and continue in the new one — without a second
// snapshot bootstrap.
func TestReplLeaderRotationDuringTail(t *testing.T) {
	checkNoGoroutineLeak(t)
	e, l, _, srv := newReplLeader(t)
	replAddN(t, e, 0, 40)

	f, err := repl.OpenFollower(t.TempDir(), srv.URL, replFastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck // test teardown

	for round := 0; round < 3; round++ {
		replAddN(t, e, 40+20*round, 10)
		if err := e.Save(); err != nil {
			t.Fatal(err)
		}
		replAddN(t, e, 50+20*round, 10)
		// Drain before the next rotation: the leader retains only one
		// previous generation, so a follower two rotations behind would be
		// forced into a (legitimate) re-bootstrap — not this scenario.
		if err := f.WaitFor(l.PositionToken(), 10*time.Second); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	replConverged(t, e, l, f)
	st := f.Status()
	if st.Snapshots != 1 {
		t.Fatalf("rotation forced %d snapshots, want only the bootstrap", st.Snapshots)
	}
	if st.Streams[0].Gen != e.Generation() {
		t.Fatalf("follower at generation %d, leader at %d", st.Streams[0].Gen, e.Generation())
	}
}

// TestReplSlowFollower delays every log response: the follower lags but
// stays connected, reports the lag, and still converges.
func TestReplSlowFollower(t *testing.T) {
	checkNoGoroutineLeak(t)
	e, l, proxy, srv := newReplLeader(t)
	replAddN(t, e, 0, 20)
	proxy.arm("delay", 50, 20*time.Millisecond)

	f, err := repl.OpenFollower(t.TempDir(), srv.URL, replFastOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	replAddN(t, e, 20, 20)
	replConverged(t, e, l, f)
	st := f.Status()
	if st.LagRecords != 0 {
		t.Fatalf("converged follower still reports %d lagging records", st.LagRecords)
	}
	if st.Resyncs != 0 || st.Snapshots != 1 {
		t.Fatalf("slowness alone triggered recovery: %+v", st)
	}
}

// copyTree snapshots a directory — the crash image. It runs while the
// follower is live, so it may capture torn, partially written files; that
// is the point: the image is what a power cut mid-replay would leave.
func copyTree(dst, src string) error {
	return filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
}

// TestReplFollowerCrashMidReplay kills the follower mid-replay (a crash
// image of its directory taken while the tail is applying) and restarts
// from the image: recovery must replay the local log and resume the
// stream, converging to the leader.
func TestReplFollowerCrashMidReplay(t *testing.T) {
	checkNoGoroutineLeak(t)
	e, l, _, srv := newReplLeader(t)
	replAddN(t, e, 0, 50)

	fdir := filepath.Join(t.TempDir(), "replica")
	f, err := repl.OpenFollower(fdir, srv.URL, replFastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Kill mid-replay: image the directory while the tail is running.
	time.Sleep(10 * time.Millisecond)
	image := filepath.Join(t.TempDir(), "crash-image")
	if err := copyTree(image, fdir); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(fdir); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(image, fdir); err != nil {
		t.Fatal(err)
	}

	replAddN(t, e, 50, 20)
	f, err = repl.OpenFollower(fdir, srv.URL, replFastOpts())
	if err != nil {
		t.Fatalf("reopen from crash image: %v", err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	replConverged(t, e, l, f)
}

// TestReplKillFollowerLoop is the replication acceptance loop: 100
// iterations of write → kill the follower at an arbitrary moment
// (crash-imaging its directory while live) → restart from the image. Every
// restart must recover from its own WAL and resume the stream; the final
// state must equal the leader's exactly.
func TestReplKillFollowerLoop(t *testing.T) {
	checkNoGoroutineLeak(t)
	e, l, _, srv := newReplLeader(t)
	replAddN(t, e, 0, 10)

	base := t.TempDir()
	fdir := filepath.Join(base, "replica")
	var f *repl.Follower
	var err error
	for iter := 0; iter < 100; iter++ {
		replAddN(t, e, 10+3*iter, 3)
		f, err = repl.OpenFollower(fdir, srv.URL, replFastOpts())
		if err != nil {
			t.Fatalf("iter %d: open: %v", iter, err)
		}
		// Vary the kill point across iterations so crashes land during
		// bootstrap, mid-batch, and while idle.
		time.Sleep(time.Duration(iter%7) * time.Millisecond)
		image := filepath.Join(base, fmt.Sprintf("image-%d", iter))
		if err := copyTree(image, fdir); err != nil {
			t.Fatalf("iter %d: image: %v", iter, err)
		}
		if err := f.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", iter, err)
		}
		if err := os.RemoveAll(fdir); err != nil {
			t.Fatal(err)
		}
		if err := os.Rename(image, fdir); err != nil {
			t.Fatal(err)
		}
	}

	f, err = repl.OpenFollower(fdir, srv.URL, replFastOpts())
	if err != nil {
		t.Fatalf("final open: %v", err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	replConverged(t, e, l, f)
}
