package fence

import "fmt"

// Check validates the registry's internal invariants: the R-Tree and the
// fence map hold exactly the same (id, bounds) pairs, the tree structure
// is sound, every matched list is sorted by (dist, id) without duplicate
// ids, and history sequences are contiguous. It exists for tests and the
// fuzz target; a production registry never calls it.
func (r *Registry) Check() error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if err := r.tree.check(); err != nil {
		return err
	}
	if r.tree.len() != len(r.fences) {
		return fmt.Errorf("fence: tree has %d entries, registry %d fences", r.tree.len(), len(r.fences))
	}
	for id, f := range r.fences {
		if f.id != id {
			return fmt.Errorf("fence: fence %d stored under id %d", f.id, id)
		}
		found := false
		r.tree.searchPoint(f.bound.Lo, func(got uint64) {
			if got == id {
				found = true
			}
		})
		if !found {
			return fmt.Errorf("fence: fence %d missing from tree", id)
		}
		seen := make(map[uint64]struct{}, len(f.matched))
		for i, m := range f.matched {
			if _, dup := seen[m.id]; dup {
				return fmt.Errorf("fence: fence %d tracks object %d twice", id, m.id)
			}
			seen[m.id] = struct{}{}
			if i > 0 {
				prev := f.matched[i-1]
				if prev.dist > m.dist || (prev.dist == m.dist && prev.id >= m.id) {
					return fmt.Errorf("fence: fence %d matched list unsorted at %d", id, i)
				}
			}
		}
		for i := 1; i < len(f.hist); i++ {
			// The ring is contiguous in sequence space except at the
			// wrap point (histPos), where the oldest event follows the
			// newest.
			if i == f.histPos && len(f.hist) == r.history {
				continue
			}
			if f.hist[i].Seq != f.hist[i-1].Seq+1 {
				return fmt.Errorf("fence: fence %d history gap at %d", id, i)
			}
		}
	}
	return nil
}
