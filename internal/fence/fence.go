// Package fence implements standing spatial-keyword queries ("geofences")
// with live event notification.
//
// A fence is a persistent query — a region or a point+radius, a set of
// conjunctive keywords, optionally a top-k cap — registered once and then
// evaluated against every mutation of the object set. When an Add or
// Delete changes a fence's result set, the registry emits typed events
// (enter, leave, update) to that fence's subscribers.
//
// Evaluation inverts the IR²-Tree signature idea (PAPER.md §4): instead of
// testing a query signature against stored node signatures, each mutating
// object's superimposed-coding signature is tested against the registered
// fence signatures. A mutation is matched in three narrowing stages:
//
//  1. spatial prune — an in-memory R-Tree over fence bounding rectangles
//     keeps only fences whose bounds contain the object's point;
//  2. signature prune — sigfile.Matches(objectSig, fenceSig) keeps only
//     fences whose keyword bits are all present in the object signature
//     (no false negatives, occasional false positives);
//  3. exact match — radius / threshold distance checks plus
//     textutil.ContainsTerms on the survivors.
//
// The registry is a pure function of the mutation stream: it never reads
// the engine or any storage device, so two registries holding the same
// fences and fed the same ordered mutations emit identical event streams.
// That is what makes post-WAL hooking safe — a replica applying shipped
// WAL records through an identical registry produces the leader's events.
package fence

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/sigfile"
	"spatialkeyword/internal/textutil"
)

// Kind classifies a fence event.
type Kind string

const (
	// Enter: an object joined the fence's result set.
	Enter Kind = "enter"
	// Leave: an object left the fence's result set.
	Leave Kind = "leave"
	// Update: a surviving member of a top-k fence changed rank.
	Update Kind = "update"
)

// Event is one change to a fence's result set. Seq is per-fence,
// contiguous, and 1-based: a subscriber observing a gap in Seq knows
// events were dropped and can resync via EventsSince.
type Event struct {
	Fence  uint64  `json:"fence"`
	Seq    uint64  `json:"seq"`
	Kind   Kind    `json:"kind"`
	Object uint64  `json:"object"`
	Dist   float64 `json:"dist"`
	// Rank is the 1-based position in a top-k fence's result set
	// (0 for unlimited fences).
	Rank int `json:"rank,omitempty"`
}

// Mutation is one object-set change, as observed post-WAL on the engine
// mutation path. For deletes, Point and Text must be the stored object's
// values (the engine loads them while applying the delete).
type Mutation struct {
	Delete bool
	ID     uint64
	Point  geo.Point
	Text   string
}

// Query describes a standing query. Exactly one of Region or
// Center+Radius must be set.
type Query struct {
	// Region is a fixed axis-aligned region fence (zero for radius fences).
	Region geo.Rect
	// Center and Radius define a point+radius fence (Center nil for
	// region fences).
	Center geo.Point
	Radius float64
	// Keywords are matched conjunctively after analyzer normalization.
	// Empty means a pure geometric fence.
	Keywords []string
	// K caps the result set to the K objects nearest the fence focus
	// (the center, or the region's center). 0 = unlimited.
	K int
	// Threshold, when positive, excludes objects further than this from
	// the fence focus even when they are inside the region. It is the
	// "score threshold" knob for top-k fences.
	Threshold float64
}

func (q Query) radial() bool { return q.Center != nil }

// focus is the point distances are measured from.
func (q Query) focus() geo.Point {
	if q.radial() {
		return q.Center
	}
	return q.Region.Center()
}

// Info is a read-only snapshot of one registered fence.
type Info struct {
	ID          uint64
	Query       Query
	Members     int
	Seq         uint64
	Subscribers int
	Dropped     uint64
}

// EvalStats are cumulative evaluation counters, used by the churn
// benchmark to report pruning ratios. Pairs considered per mutation =
// number of registered fences; SpatialHits of those survive stage 1,
// SigHits survive stage 2, ExactHits match exactly.
type EvalStats struct {
	Mutations   uint64
	SpatialHits uint64
	SigHits     uint64
	ExactHits   uint64
	Events      uint64
	Dropped     uint64
}

// Options configure a Registry.
type Options struct {
	// Dims is the dimensionality of fence and object points (default 2).
	Dims int
	// Analyzer normalizes fence keywords and object text; it must be the
	// same analyzer the engine indexes with. Nil uses the default chain.
	Analyzer *textutil.Analyzer
	// Signature is the superimposed-coding layout for fence and object
	// signatures. Zero uses 16 bytes × 4 bits/word.
	Signature sigfile.Config
	// History is the per-fence ring of recent events kept for long-poll
	// and SSE resume (default 256).
	History int
	// Metrics, when non-nil, receives registry instrumentation.
	Metrics *Metrics
}

const (
	defaultHistory   = 256
	defaultSigBytes  = 16
	defaultSubBuffer = 64
)

var (
	// ErrNoFence is returned for operations on an unknown fence id.
	ErrNoFence = errors.New("fence: no such fence")
	// ErrClosed is returned when subscribing to a closed subscription's
	// fence after the registry dropped it.
	ErrClosed = errors.New("fence: subscription closed")
)

type member struct {
	id   uint64
	dist float64
}

type fenceState struct {
	id    uint64
	query Query // keywords normalized
	terms []string
	sig   sigfile.Signature
	bound geo.Rect
	focus geo.Point
	seq   uint64
	// matched holds every object currently matching the fence predicate,
	// sorted ascending by (dist, id). The result set is matched[:K] for
	// top-k fences, all of matched otherwise. Retaining the non-result
	// tail is what lets a delete promote the next-nearest object without
	// ever querying the engine.
	matched []member
	subs    map[*Subscription]struct{}
	hist    []Event // ring buffer, capacity Options.History
	histPos int     // next write position
	dropped uint64
}

// Registry holds the registered fences and evaluates mutations against
// them. All methods are safe for concurrent use. Apply serializes under a
// single write lock; evaluation is purely in-memory (no device I/O), so
// the critical section is short and lockio-clean by construction.
type Registry struct {
	mu      sync.RWMutex
	opts    Options
	sig     sigfile.Config
	history int
	nextID  uint64
	fences  map[uint64]*fenceState
	tree    *memTree
	stats   EvalStats
}

// NewRegistry returns an empty registry.
func NewRegistry(opts Options) *Registry {
	if opts.Dims <= 0 {
		opts.Dims = 2
	}
	sig := opts.Signature
	if sig.LengthBytes == 0 {
		sig = sigfile.Config{LengthBytes: defaultSigBytes, BitsPerWord: sigfile.DefaultBitsPerWord}
	}
	hist := opts.History
	if hist <= 0 {
		hist = defaultHistory
	}
	return &Registry{
		opts:    opts,
		sig:     sig,
		history: hist,
		nextID:  1,
		fences:  make(map[uint64]*fenceState),
		tree:    newMemTree(),
	}
}

func (r *Registry) analyzer() *textutil.Analyzer { return r.opts.Analyzer }

// validate normalizes q and returns the fence bounding rectangle.
func (r *Registry) validate(q *Query) (geo.Rect, error) {
	switch {
	case q.radial() && !q.Region.IsZero():
		return geo.Rect{}, errors.New("fence: query sets both region and center")
	case q.radial():
		if len(q.Center) != r.opts.Dims {
			return geo.Rect{}, fmt.Errorf("fence: center has %d dims, registry wants %d", len(q.Center), r.opts.Dims)
		}
		if q.Radius <= 0 {
			return geo.Rect{}, errors.New("fence: radius must be positive")
		}
	case !q.Region.IsZero():
		if q.Region.Dim() != r.opts.Dims {
			return geo.Rect{}, fmt.Errorf("fence: region has %d dims, registry wants %d", q.Region.Dim(), r.opts.Dims)
		}
		for i := range q.Region.Lo {
			if q.Region.Lo[i] > q.Region.Hi[i] {
				return geo.Rect{}, fmt.Errorf("fence: inverted region on axis %d", i)
			}
		}
	default:
		return geo.Rect{}, errors.New("fence: query needs a region or a center+radius")
	}
	if q.K < 0 {
		return geo.Rect{}, errors.New("fence: negative K")
	}
	if q.Threshold < 0 {
		return geo.Rect{}, errors.New("fence: negative threshold")
	}
	if q.radial() {
		lo := make(geo.Point, len(q.Center))
		hi := make(geo.Point, len(q.Center))
		for i, c := range q.Center {
			lo[i] = c - q.Radius
			hi[i] = c + q.Radius
		}
		return geo.Rect{Lo: lo, Hi: hi}, nil
	}
	return q.Region.Clone(), nil
}

// Add registers a standing query and returns its fence id. The fence
// starts with an empty result set: it tracks changes going forward, it
// does not retro-match objects already in the engine. Register fences
// before replaying a stream when leader/replica equivalence matters.
func (r *Registry) Add(q Query) (uint64, error) {
	bound, err := r.validate(&q)
	if err != nil {
		return 0, err
	}
	terms := r.analyzer().Keywords(q.Keywords)
	q.Keywords = terms
	f := &fenceState{
		query: q,
		terms: terms,
		sig:   r.sig.DocSignature(terms),
		bound: bound,
		focus: q.focus().Clone(),
		subs:  make(map[*Subscription]struct{}),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f.id = r.nextID
	r.nextID++
	r.fences[f.id] = f
	r.tree.insert(f.bound, f.id)
	if m := r.opts.Metrics; m != nil {
		m.Registered.Set(int64(len(r.fences)))
	}
	return f.id, nil
}

// Remove drops a fence; all of its subscriptions are closed.
func (r *Registry) Remove(id uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fences[id]
	if !ok {
		return ErrNoFence
	}
	delete(r.fences, id)
	r.tree.delete(f.bound, f.id)
	for sub := range f.subs {
		sub.closeLocked()
	}
	if m := r.opts.Metrics; m != nil {
		m.Registered.Set(int64(len(r.fences)))
	}
	return nil
}

// Get returns a snapshot of one fence.
func (r *Registry) Get(id uint64) (Info, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.fences[id]
	if !ok {
		return Info{}, false
	}
	return r.infoLocked(f), true
}

// List returns snapshots of every fence, ordered by id.
func (r *Registry) List() []Info {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Info, 0, len(r.fences))
	for _, f := range r.fences {
		out = append(out, r.infoLocked(f))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func (r *Registry) infoLocked(f *fenceState) Info {
	return Info{
		ID:          f.id,
		Query:       f.query,
		Members:     len(f.matched),
		Seq:         f.seq,
		Subscribers: len(f.subs),
		Dropped:     f.dropped,
	}
}

// Len returns the number of registered fences.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.fences)
}

// Stats returns a snapshot of the cumulative evaluation counters.
func (r *Registry) Stats() EvalStats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.stats
}

// Apply evaluates one mutation against every registered fence and
// delivers the resulting events. It returns the emitted events ordered by
// (fence id, seq) — the same order every registry fed the same stream
// produces. Mutations whose dimensionality does not match the registry
// are ignored.
func (r *Registry) Apply(m Mutation) []Event {
	if len(m.Point) != r.opts.Dims {
		return nil
	}
	var start time.Time
	if r.opts.Metrics != nil {
		start = time.Now()
	}
	objSig := r.sig.DocSignature(r.analyzer().Unique(m.Text))

	r.mu.Lock()
	r.stats.Mutations++
	var cands []uint64
	r.tree.searchPoint(m.Point, func(id uint64) { cands = append(cands, id) })
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })

	var events []Event
	for _, id := range cands {
		f := r.fences[id]
		r.stats.SpatialHits++
		if !sigfile.Matches(objSig, f.sig) {
			continue
		}
		r.stats.SigHits++
		events = r.evalLocked(f, m, events)
	}
	r.stats.Events += uint64(len(events))
	metrics := r.opts.Metrics
	r.mu.Unlock()

	if metrics != nil {
		metrics.EvalSeconds.Observe(time.Since(start).Seconds())
		for _, ev := range events {
			if c := metrics.events(ev.Kind); c != nil {
				c.Inc()
			}
		}
	}
	return events
}

// evalLocked runs the exact-match stage for one fence and appends any
// produced events. Caller holds r.mu.
func (r *Registry) evalLocked(f *fenceState, m Mutation, events []Event) []Event {
	dist := m.Point.Dist(f.focus)
	if m.Delete {
		i, ok := findMember(f.matched, member{id: m.ID, dist: dist})
		if !ok {
			return events
		}
		r.stats.ExactHits++
		old := f.window()
		f.matched = append(f.matched[:i], f.matched[i+1:]...)
		return r.emitLocked(f, diffWindows(old, f.window(), f.query.K > 0), events)
	}
	if !r.exactMatch(f, m, dist) {
		return events
	}
	r.stats.ExactHits++
	old := f.window()
	i := sort.Search(len(f.matched), func(i int) bool {
		e := f.matched[i]
		return e.dist > dist || (e.dist == dist && e.id >= m.ID)
	})
	f.matched = append(f.matched, member{})
	copy(f.matched[i+1:], f.matched[i:])
	f.matched[i] = member{id: m.ID, dist: dist}
	return r.emitLocked(f, diffWindows(old, f.window(), f.query.K > 0), events)
}

// exactMatch is stage 3: the precise geometric and keyword predicate.
func (r *Registry) exactMatch(f *fenceState, m Mutation, dist float64) bool {
	if f.query.radial() {
		if dist > f.query.Radius {
			return false
		}
	} else if !f.query.Region.ContainsPoint(m.Point) {
		return false
	}
	if f.query.Threshold > 0 && dist > f.query.Threshold {
		return false
	}
	return r.analyzer().ContainsTerms(m.Text, f.terms)
}

// window returns a copy of the fence's current result set.
func (f *fenceState) window() []member {
	n := len(f.matched)
	if f.query.K > 0 && n > f.query.K {
		n = f.query.K
	}
	w := make([]member, n)
	copy(w, f.matched[:n])
	return w
}

// findMember locates m in the sorted matched slice.
func findMember(matched []member, m member) (int, bool) {
	i := sort.Search(len(matched), func(i int) bool {
		e := matched[i]
		return e.dist > m.dist || (e.dist == m.dist && e.id >= m.id)
	})
	if i < len(matched) && matched[i].id == m.id && matched[i].dist == m.dist {
		return i, true
	}
	return 0, false
}

// windowDiff is the canonical event set between two result-set windows:
// leaves ordered by object id, then enters ordered by rank (or id), then
// rank updates ordered by new rank. The oracle test reimplements this
// contract independently.
func diffWindows(old, now []member, topk bool) []Event {
	oldIdx := make(map[uint64]int, len(old))
	for i, m := range old {
		oldIdx[m.id] = i
	}
	nowIdx := make(map[uint64]int, len(now))
	for i, m := range now {
		nowIdx[m.id] = i
	}
	var evs []Event
	for _, m := range old {
		if _, ok := nowIdx[m.id]; !ok {
			evs = append(evs, Event{Kind: Leave, Object: m.id, Dist: m.dist})
		}
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].Object < evs[j].Object })
	for i, m := range now {
		if _, ok := oldIdx[m.id]; !ok {
			ev := Event{Kind: Enter, Object: m.id, Dist: m.dist}
			if topk {
				ev.Rank = i + 1
			}
			evs = append(evs, ev)
		}
	}
	if topk {
		for i, m := range now {
			if j, ok := oldIdx[m.id]; ok && j != i {
				evs = append(evs, Event{Kind: Update, Object: m.id, Dist: m.dist, Rank: i + 1})
			}
		}
	}
	return evs
}

// emitLocked stamps events with the fence id and sequence, records them
// in the history ring, and fans them out to subscribers with a
// non-blocking send (full buffers drop, counted per subscription and per
// fence). Caller holds r.mu.
func (r *Registry) emitLocked(f *fenceState, evs []Event, out []Event) []Event {
	for _, ev := range evs {
		f.seq++
		ev.Fence = f.id
		ev.Seq = f.seq
		if len(f.hist) < r.history {
			f.hist = append(f.hist, ev)
		} else {
			f.hist[f.histPos] = ev
			f.histPos = (f.histPos + 1) % r.history
		}
		for sub := range f.subs {
			select {
			case sub.ch <- ev:
			default:
				sub.dropped++
				f.dropped++
				r.stats.Dropped++
				if m := r.opts.Metrics; m != nil {
					m.Dropped.Inc()
				}
			}
		}
		out = append(out, ev)
	}
	return out
}

// EventsSince returns up to max retained events of the fence with
// Seq > since, in order. lagged reports that events between since and the
// first returned one have already been evicted from the history ring —
// the caller's view has a gap it cannot close by polling.
func (r *Registry) EventsSince(id, since uint64, max int) (evs []Event, lagged bool, err error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	f, ok := r.fences[id]
	if !ok {
		return nil, false, ErrNoFence
	}
	if max <= 0 || max > len(f.hist) {
		max = len(f.hist)
	}
	// Oldest retained event sits at histPos once the ring has wrapped.
	n := len(f.hist)
	var first uint64
	if n > 0 {
		if n < r.history {
			first = f.hist[0].Seq
		} else {
			first = f.hist[f.histPos].Seq
		}
	} else {
		first = f.seq + 1
	}
	if since+1 < first {
		lagged = true
	}
	for i := 0; i < n; i++ {
		var ev Event
		if n < r.history {
			ev = f.hist[i]
		} else {
			ev = f.hist[(f.histPos+i)%n]
		}
		if ev.Seq > since {
			evs = append(evs, ev)
			if len(evs) >= max {
				break
			}
		}
	}
	return evs, lagged, nil
}
