package fence

import (
	"reflect"
	"sync"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/obs"
)

func region(x0, y0, x1, y1 float64) geo.Rect {
	return geo.Rect{Lo: geo.Point{x0, y0}, Hi: geo.Point{x1, y1}}
}

func kinds(evs []Event) []Kind {
	out := make([]Kind, len(evs))
	for i, ev := range evs {
		out[i] = ev.Kind
	}
	return out
}

func TestRegistryValidate(t *testing.T) {
	r := NewRegistry(Options{})
	cases := []Query{
		{},                                      // neither region nor center
		{Center: geo.Point{1, 2}},               // no radius
		{Center: geo.Point{1, 2}, Radius: -1},   // negative radius
		{Center: geo.Point{1, 2, 3}, Radius: 1}, // wrong dims
		{Region: region(0, 0, 1, 1), Center: geo.Point{1, 2}, Radius: 1}, // both
		{Region: geo.Rect{Lo: geo.Point{1, 1}, Hi: geo.Point{0, 0}}},     // inverted
		{Region: region(0, 0, 1, 1), K: -1},                              // negative K
		{Region: region(0, 0, 1, 1), Threshold: -1},                      // negative threshold
	}
	for i, q := range cases {
		if _, err := r.Add(q); err == nil {
			t.Errorf("case %d: Add(%+v) succeeded, want error", i, q)
		}
	}
	if r.Len() != 0 {
		t.Fatalf("registry not empty after rejected adds: %d", r.Len())
	}
}

func TestRegionEnterLeave(t *testing.T) {
	r := NewRegistry(Options{})
	id, err := r.Add(Query{Region: region(0, 0, 10, 10), Keywords: []string{"pizza"}})
	if err != nil {
		t.Fatal(err)
	}

	// Inside + keyword → enter.
	evs := r.Apply(Mutation{ID: 1, Point: geo.Point{5, 5}, Text: "wood fired pizza"})
	if len(evs) != 1 || evs[0].Kind != Enter || evs[0].Object != 1 || evs[0].Fence != id || evs[0].Seq != 1 {
		t.Fatalf("enter: got %+v", evs)
	}
	// Inside, missing keyword → nothing.
	if evs := r.Apply(Mutation{ID: 2, Point: geo.Point{5, 5}, Text: "sushi bar"}); len(evs) != 0 {
		t.Fatalf("keyword miss produced %+v", evs)
	}
	// Outside, with keyword → nothing.
	if evs := r.Apply(Mutation{ID: 3, Point: geo.Point{50, 50}, Text: "pizza"}); len(evs) != 0 {
		t.Fatalf("outside produced %+v", evs)
	}
	// Delete the member → leave.
	evs = r.Apply(Mutation{Delete: true, ID: 1, Point: geo.Point{5, 5}, Text: "wood fired pizza"})
	if len(evs) != 1 || evs[0].Kind != Leave || evs[0].Object != 1 || evs[0].Seq != 2 {
		t.Fatalf("leave: got %+v", evs)
	}
	// Delete a non-member → nothing.
	if evs := r.Apply(Mutation{Delete: true, ID: 2, Point: geo.Point{5, 5}, Text: "sushi bar"}); len(evs) != 0 {
		t.Fatalf("non-member delete produced %+v", evs)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRadiusFence(t *testing.T) {
	r := NewRegistry(Options{})
	if _, err := r.Add(Query{Center: geo.Point{0, 0}, Radius: 5}); err != nil {
		t.Fatal(err)
	}
	// Inside the bounding box but outside the circle: (4,4) has dist ~5.66.
	if evs := r.Apply(Mutation{ID: 1, Point: geo.Point{4, 4}, Text: "x"}); len(evs) != 0 {
		t.Fatalf("corner point matched circle: %+v", evs)
	}
	if evs := r.Apply(Mutation{ID: 2, Point: geo.Point{3, 3}, Text: "x"}); len(evs) != 1 || evs[0].Kind != Enter {
		t.Fatalf("in-circle point: %+v", evs)
	}
}

func TestConjunctiveKeywords(t *testing.T) {
	r := NewRegistry(Options{})
	if _, err := r.Add(Query{Region: region(0, 0, 10, 10), Keywords: []string{"coffee", "wifi"}}); err != nil {
		t.Fatal(err)
	}
	if evs := r.Apply(Mutation{ID: 1, Point: geo.Point{1, 1}, Text: "coffee shop"}); len(evs) != 0 {
		t.Fatalf("partial keyword match: %+v", evs)
	}
	if evs := r.Apply(Mutation{ID: 2, Point: geo.Point{1, 1}, Text: "coffee shop with wifi"}); len(evs) != 1 {
		t.Fatalf("full keyword match: %+v", evs)
	}
}

func TestTopKPromotion(t *testing.T) {
	r := NewRegistry(Options{})
	id, err := r.Add(Query{Center: geo.Point{0, 0}, Radius: 100, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Fill: objects at distance 1, 2, 3. The third lands outside the top-2
	// but must still be tracked.
	r.Apply(Mutation{ID: 1, Point: geo.Point{1, 0}, Text: "a"})
	r.Apply(Mutation{ID: 2, Point: geo.Point{2, 0}, Text: "a"})
	if evs := r.Apply(Mutation{ID: 3, Point: geo.Point{3, 0}, Text: "a"}); len(evs) != 0 {
		t.Fatalf("beyond-k add produced %+v", evs)
	}
	// A closer object displaces rank 2: enter(4@1) + leave(2) + update(1→2).
	evs := r.Apply(Mutation{ID: 4, Point: geo.Point{0.5, 0}, Text: "a"})
	byKind := map[Kind]int{}
	for _, ev := range evs {
		byKind[ev.Kind]++
	}
	if byKind[Enter] != 1 || byKind[Leave] != 1 || byKind[Update] != 1 {
		t.Fatalf("displacement events: %+v", evs)
	}
	for _, ev := range evs {
		switch ev.Kind {
		case Enter:
			if ev.Object != 4 || ev.Rank != 1 {
				t.Fatalf("enter: %+v", ev)
			}
		case Leave:
			if ev.Object != 2 {
				t.Fatalf("leave: %+v", ev)
			}
		case Update:
			if ev.Object != 1 || ev.Rank != 2 {
				t.Fatalf("update: %+v", ev)
			}
		}
	}
	// Deleting a member promotes the tracked runner-up: leave(4) +
	// enter(2@2) + update(1→1).
	evs = r.Apply(Mutation{Delete: true, ID: 4, Point: geo.Point{0.5, 0}, Text: "a"})
	if got := kinds(evs); !reflect.DeepEqual(got, []Kind{Leave, Enter, Update}) {
		t.Fatalf("promotion kinds: %v (%+v)", got, evs)
	}
	if evs[1].Object != 2 || evs[1].Rank != 2 {
		t.Fatalf("promoted enter: %+v", evs[1])
	}
	info, ok := r.Get(id)
	if !ok || info.Members != 3 {
		t.Fatalf("info = %+v, want 3 tracked members", info)
	}
}

func TestThreshold(t *testing.T) {
	r := NewRegistry(Options{})
	if _, err := r.Add(Query{Region: region(0, 0, 10, 10), Threshold: 2}); err != nil {
		t.Fatal(err)
	}
	// Region center is (5,5); (9,9) is inside the region but past the
	// threshold distance.
	if evs := r.Apply(Mutation{ID: 1, Point: geo.Point{9, 9}, Text: "x"}); len(evs) != 0 {
		t.Fatalf("past-threshold add produced %+v", evs)
	}
	if evs := r.Apply(Mutation{ID: 2, Point: geo.Point{5, 6}, Text: "x"}); len(evs) != 1 {
		t.Fatalf("in-threshold add: %+v", evs)
	}
}

func TestSubscriptionDropAndSeqGap(t *testing.T) {
	reg := obs.NewRegistry()
	r := NewRegistry(Options{Metrics: NewMetrics(reg)})
	id, _ := r.Add(Query{Region: region(0, 0, 100, 100)})
	sub, err := r.Subscribe(id, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	for i := uint64(1); i <= 5; i++ {
		r.Apply(Mutation{ID: i, Point: geo.Point{1, 1}, Text: "x"})
	}
	if got := sub.Dropped(); got != 3 {
		t.Fatalf("Dropped = %d, want 3", got)
	}
	// The two delivered events are the first two; the gap is visible in Seq.
	ev1, ev2 := <-sub.C, <-sub.C
	if ev1.Seq != 1 || ev2.Seq != 2 {
		t.Fatalf("delivered seqs %d, %d", ev1.Seq, ev2.Seq)
	}
	// EventsSince recovers the gap.
	evs, lagged, err := r.EventsSince(id, ev2.Seq, 0)
	if err != nil || lagged {
		t.Fatalf("EventsSince: %v lagged=%v", err, lagged)
	}
	if len(evs) != 3 || evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Fatalf("recovered %+v", evs)
	}
	if st := r.Stats(); st.Dropped != 3 {
		t.Fatalf("stats dropped = %d", st.Dropped)
	}
}

func TestEventsSinceLagged(t *testing.T) {
	r := NewRegistry(Options{History: 4})
	id, _ := r.Add(Query{Region: region(0, 0, 100, 100)})
	for i := uint64(1); i <= 10; i++ {
		r.Apply(Mutation{ID: i, Point: geo.Point{1, 1}, Text: "x"})
	}
	// Ring holds seqs 7..10; asking from 2 must flag the lost 3..6.
	evs, lagged, err := r.EventsSince(id, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !lagged {
		t.Fatal("want lagged=true")
	}
	if len(evs) != 4 || evs[0].Seq != 7 {
		t.Fatalf("got %+v", evs)
	}
	// max caps the page.
	evs, _, _ = r.EventsSince(id, 0, 2)
	if len(evs) != 2 || evs[0].Seq != 7 {
		t.Fatalf("paged %+v", evs)
	}
	// Up to date: no events, not lagged.
	evs, lagged, _ = r.EventsSince(id, 10, 0)
	if len(evs) != 0 || lagged {
		t.Fatalf("caught-up: %v lagged=%v", evs, lagged)
	}
	if _, _, err := r.EventsSince(999, 0, 0); err != ErrNoFence {
		t.Fatalf("unknown fence: %v", err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveClosesSubscriptions(t *testing.T) {
	r := NewRegistry(Options{})
	id, _ := r.Add(Query{Region: region(0, 0, 1, 1)})
	sub, _ := r.Subscribe(id, 1)
	if err := r.Remove(id); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C; ok {
		t.Fatal("channel not closed on Remove")
	}
	sub.Close() // double close must be safe
	if err := r.Remove(id); err != ErrNoFence {
		t.Fatalf("second Remove: %v", err)
	}
	if _, err := r.Subscribe(id, 1); err != ErrNoFence {
		t.Fatalf("Subscribe after Remove: %v", err)
	}
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsWiring(t *testing.T) {
	obsReg := obs.NewRegistry()
	m := NewMetrics(obsReg)
	r := NewRegistry(Options{Metrics: m})
	id, _ := r.Add(Query{Region: region(0, 0, 10, 10), K: 1})
	if m.Registered.Value() != 1 {
		t.Fatalf("registered = %d", m.Registered.Value())
	}
	r.Apply(Mutation{ID: 1, Point: geo.Point{1, 1}, Text: "x"})               // enter
	r.Apply(Mutation{ID: 2, Point: geo.Point{5, 5}, Text: "x"})               // tracked, no event
	r.Apply(Mutation{Delete: true, ID: 1, Point: geo.Point{1, 1}, Text: "x"}) // leave + enter(2)
	if got := m.byKind[Enter].Value(); got != 2 {
		t.Fatalf("enter counter = %d", got)
	}
	if got := m.byKind[Leave].Value(); got != 1 {
		t.Fatalf("leave counter = %d", got)
	}
	if m.EvalSeconds.Count() != 3 {
		t.Fatalf("eval histogram count = %d", m.EvalSeconds.Count())
	}
	_ = r.Remove(id)
	if m.Registered.Value() != 0 {
		t.Fatalf("registered after remove = %d", m.Registered.Value())
	}
}

// TestConcurrentApplySubscribe exercises Apply, Subscribe/Close, and
// EventsSince racing; run under -race it is the registry's data-race
// gate.
func TestConcurrentApplySubscribe(t *testing.T) {
	r := NewRegistry(Options{})
	var ids []uint64
	for i := 0; i < 8; i++ {
		id, err := r.Add(Query{Region: region(float64(i*10), 0, float64(i*10+15), 100), Keywords: []string{"go"}})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, id := range ids[:4] {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			sub, err := r.Subscribe(id, 16)
			if err != nil {
				t.Error(err)
				return
			}
			defer sub.Close()
			for {
				select {
				case <-stop:
					return
				case <-sub.C:
				}
			}
		}(id)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				oid := uint64(g*1000 + i)
				r.Apply(Mutation{ID: oid, Point: geo.Point{float64(i % 80), 50}, Text: "go conference"})
				r.Apply(Mutation{Delete: true, ID: oid, Point: geo.Point{float64(i % 80), 50}, Text: "go conference"})
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			for _, id := range ids {
				if _, _, err := r.EventsSince(id, 0, 8); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	// Let the workers finish, then release the readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	go func() {
		// Writers are the slow part; readers exit via stop.
		defer close(stop)
		for i := 0; i < 100; i++ {
			r.Stats()
		}
	}()
	<-done
	if err := r.Check(); err != nil {
		t.Fatal(err)
	}
}
