package fence

import (
	"testing"

	"spatialkeyword/internal/geo"
)

// FuzzFenceRegistry drives a registry with an arbitrary byte-encoded
// program of fence registrations/removals, mutations, and subscription
// traffic, asserting that nothing panics and that the registry and its
// R-Tree stay mutually consistent (Check) at every remove boundary and at
// the end. The encoding is positional so the fuzzer can meaningfully
// splice inputs: each operation consumes a fixed-size chunk.
func FuzzFenceRegistry(f *testing.F) {
	f.Add([]byte{0, 10, 10, 60, 60, 1, 3, 40, 40, 2, 20, 20, 0, 4, 25, 25, 1})
	f.Add([]byte{1, 200, 50, 30, 2, 3, 190, 55, 1, 4, 190, 55, 0, 2, 0, 0, 0})
	f.Add([]byte{0, 0, 0, 255, 255, 0, 0, 1, 1, 80, 3, 128, 128, 3, 5, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[0]
			data = data[1:]
			return b
		}
		r := NewRegistry(Options{History: 8})
		words := []string{"", "alpha", "beta", "gamma delta"}
		var fences []uint64
		var objects []Mutation
		nextObj := uint64(0)
		for steps := 0; len(data) > 0 && steps < 512; steps++ {
			switch next() % 6 {
			case 0: // register a region fence
				x, y := float64(next()), float64(next())
				w, h := float64(next())+1, float64(next())+1
				kw := words[next()%4]
				var kws []string
				if kw != "" {
					kws = []string{kw}
				}
				id, err := r.Add(Query{
					Region:   geo.Rect{Lo: geo.Point{x, y}, Hi: geo.Point{x + w, y + h}},
					Keywords: kws,
					K:        int(next() % 4),
				})
				if err != nil {
					t.Fatalf("region add: %v", err)
				}
				fences = append(fences, id)
			case 1: // register a radius fence
				x, y := float64(next()), float64(next())
				id, err := r.Add(Query{
					Center:    geo.Point{x, y},
					Radius:    float64(next()) + 1,
					K:         int(next() % 3),
					Threshold: float64(next()),
				})
				if err != nil {
					t.Fatalf("radius add: %v", err)
				}
				fences = append(fences, id)
			case 2: // remove a fence
				if len(fences) == 0 {
					continue
				}
				i := int(next()) % len(fences)
				if err := r.Remove(fences[i]); err != nil {
					t.Fatalf("remove: %v", err)
				}
				fences = append(fences[:i], fences[i+1:]...)
				if err := r.Check(); err != nil {
					t.Fatalf("after remove: %v", err)
				}
			case 3: // add an object
				m := Mutation{
					ID:    nextObj,
					Point: geo.Point{float64(next()), float64(next())},
					Text:  words[next()%4],
				}
				nextObj++
				objects = append(objects, m)
				r.Apply(m)
			case 4: // delete a live object
				if len(objects) == 0 {
					continue
				}
				i := int(next()) % len(objects)
				m := objects[i]
				objects = append(objects[:i], objects[i+1:]...)
				m.Delete = true
				r.Apply(m)
			case 5: // subscribe, poll, close
				if len(fences) == 0 {
					continue
				}
				id := fences[int(next())%len(fences)]
				sub, err := r.Subscribe(id, int(next()%4))
				if err != nil {
					t.Fatalf("subscribe: %v", err)
				}
				if _, _, err := r.EventsSince(id, uint64(next()), int(next())); err != nil {
					t.Fatalf("events since: %v", err)
				}
				sub.Close()
			}
		}
		if err := r.Check(); err != nil {
			t.Fatal(err)
		}
		// The registry must still evaluate cleanly after the program.
		r.Apply(Mutation{ID: nextObj, Point: geo.Point{1, 1}, Text: "alpha"})
	})
}
