package fence

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/textutil"
)

// The oracle: an intentionally naive model of every fence's result set,
// recomputed from scratch after each mutation by scanning all live
// objects. It shares no code with the registry's incremental evaluation —
// diffing, ordering, and membership are all reimplemented — so agreement
// between the two is evidence, not tautology.

type oracleObject struct {
	id    uint64
	point geo.Point
	text  string
}

type oracleFence struct {
	id uint64
	q  Query
}

type oracle struct {
	an      *textutil.Analyzer
	objects map[uint64]oracleObject
	fences  []oracleFence
}

func newOracle(an *textutil.Analyzer) *oracle {
	return &oracle{an: an, objects: make(map[uint64]oracleObject)}
}

// resultSet recomputes fence f's result window by brute force: scan every
// live object, keep exact matches, sort by (dist, id), truncate to K.
func (o *oracle) resultSet(f oracleFence) []member {
	var all []member
	for _, obj := range o.objects {
		d := obj.point.Dist(f.q.focus())
		if f.q.radial() {
			if d > f.q.Radius {
				continue
			}
		} else if !f.q.Region.ContainsPoint(obj.point) {
			continue
		}
		if f.q.Threshold > 0 && d > f.q.Threshold {
			continue
		}
		if !o.an.ContainsAll(obj.text, f.q.Keywords) {
			continue
		}
		all = append(all, member{id: obj.id, dist: d})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].dist != all[j].dist {
			return all[i].dist < all[j].dist
		}
		return all[i].id < all[j].id
	})
	if f.q.K > 0 && len(all) > f.q.K {
		all = all[:f.q.K]
	}
	return all
}

// apply mutates the object set and returns the expected events for every
// fence, in (fence id, event order) sequence: per fence, leaves sorted by
// object id, then enters in rank order, then rank updates in rank order.
func (o *oracle) apply(m Mutation) []Event {
	before := make(map[uint64][]member, len(o.fences))
	for _, f := range o.fences {
		before[f.id] = o.resultSet(f)
	}
	if m.Delete {
		delete(o.objects, m.ID)
	} else {
		o.objects[m.ID] = oracleObject{id: m.ID, point: m.Point.Clone(), text: m.Text}
	}
	var out []Event
	for _, f := range o.fences {
		prev, next := before[f.id], o.resultSet(f)
		prevAt := make(map[uint64]int, len(prev))
		for i, mm := range prev {
			prevAt[mm.id] = i
		}
		nextAt := make(map[uint64]int, len(next))
		for i, mm := range next {
			nextAt[mm.id] = i
		}
		var leaves []Event
		for _, mm := range prev {
			if _, ok := nextAt[mm.id]; !ok {
				leaves = append(leaves, Event{Fence: f.id, Kind: Leave, Object: mm.id, Dist: mm.dist})
			}
		}
		sort.Slice(leaves, func(i, j int) bool { return leaves[i].Object < leaves[j].Object })
		out = append(out, leaves...)
		for i, mm := range next {
			if _, ok := prevAt[mm.id]; !ok {
				ev := Event{Fence: f.id, Kind: Enter, Object: mm.id, Dist: mm.dist}
				if f.q.K > 0 {
					ev.Rank = i + 1
				}
				out = append(out, ev)
			}
		}
		if f.q.K > 0 {
			for i, mm := range next {
				if j, ok := prevAt[mm.id]; ok && j != i {
					out = append(out, Event{Fence: f.id, Kind: Update, Object: mm.id, Dist: mm.dist, Rank: i + 1})
				}
			}
		}
	}
	return out
}

// randomFence draws one of the three fence shapes with seeded geometry
// and keywords.
func randomFence(rng *rand.Rand, vocab []string) Query {
	var q Query
	nkw := rng.Intn(3)
	for i := 0; i < nkw; i++ {
		q.Keywords = append(q.Keywords, vocab[rng.Intn(len(vocab))])
	}
	switch rng.Intn(3) {
	case 0:
		x, y := rng.Float64()*100, rng.Float64()*100
		q.Region = geo.Rect{Lo: geo.Point{x, y}, Hi: geo.Point{x + 5 + rng.Float64()*20, y + 5 + rng.Float64()*20}}
	case 1:
		q.Center = geo.Point{rng.Float64() * 100, rng.Float64() * 100}
		q.Radius = 2 + rng.Float64()*15
	default:
		q.Center = geo.Point{rng.Float64() * 100, rng.Float64() * 100}
		q.Radius = 5 + rng.Float64()*20
		q.K = 1 + rng.Intn(4)
		if rng.Intn(2) == 0 {
			q.Threshold = q.Radius * (0.5 + rng.Float64()*0.5)
		}
	}
	return q
}

var oracleVocab = []string{
	"pizza", "coffee", "sushi", "bar", "museum", "park", "hotel",
	"theater", "garage", "bakery", "wifi", "garden", "market",
}

// TestOracleEquivalence is the acceptance oracle: a seeded mutation
// stream against 120 registered fences, with the registry's emitted
// events compared to the brute-force model after every single mutation.
func TestOracleEquivalence(t *testing.T) {
	checkNoGoroutineLeak(t)
	an := &textutil.Analyzer{Stemming: true, Stopwords: textutil.DefaultStopwords()}
	rng := rand.New(rand.NewSource(42))
	reg := NewRegistry(Options{Analyzer: an})
	model := newOracle(an)

	const nFences = 120
	for i := 0; i < nFences; i++ {
		q := randomFence(rng, oracleVocab)
		id, err := reg.Add(q)
		if err != nil {
			t.Fatalf("fence %d: %v", i, err)
		}
		// The model evaluates the ORIGINAL query — ContainsAll in
		// resultSet normalizes the raw keywords itself, independently of
		// the registry's normalization at Add.
		model.fences = append(model.fences, oracleFence{id: id, q: q})
	}
	if reg.Len() != nFences {
		t.Fatalf("registered %d fences", reg.Len())
	}

	// Subscribers on a sample of fences double-check that the channel
	// stream equals the Apply return values for those fences.
	type subCheck struct {
		sub  *Subscription
		want []Event
	}
	var subs []subCheck
	for i := 0; i < 10; i++ {
		sub, err := reg.Subscribe(model.fences[i*7].id, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer sub.Close()
		subs = append(subs, subCheck{sub: sub})
	}

	var live []uint64
	nextID := uint64(0)
	const mutations = 600
	for step := 0; step < mutations; step++ {
		var m Mutation
		if len(live) > 0 && rng.Intn(100) < 35 {
			i := rng.Intn(len(live))
			id := live[i]
			live = append(live[:i], live[i+1:]...)
			obj := model.objects[id]
			m = Mutation{Delete: true, ID: id, Point: obj.point, Text: obj.text}
		} else {
			m = Mutation{
				ID:    nextID,
				Point: geo.Point{rng.Float64() * 100, rng.Float64() * 100},
				Text:  randomText(rng),
			}
			live = append(live, nextID)
			nextID++
		}
		got := reg.Apply(m)
		want := model.apply(m)
		if err := sameEvents(got, want); err != nil {
			t.Fatalf("step %d (%+v): %v\n got: %+v\nwant: %+v", step, m, err, got, want)
		}
		for i := range subs {
			for _, ev := range got {
				if ev.Fence == subs[i].sub.Fence() {
					subs[i].want = append(subs[i].want, ev)
				}
			}
		}
	}
	if err := reg.Check(); err != nil {
		t.Fatal(err)
	}
	// Drain each sampled subscription: buffered events must be exactly the
	// per-fence subsequence of the Apply outputs (buffer 64 may have
	// dropped the tail; drops must be accounted, never reordered).
	for _, sc := range subs {
		delivered := 0
		for {
			select {
			case ev := <-sc.sub.C:
				if delivered >= len(sc.want) {
					t.Fatalf("fence %d: extra event %+v", sc.sub.Fence(), ev)
				}
				if ev != sc.want[delivered] {
					t.Fatalf("fence %d: event %d = %+v, want %+v", sc.sub.Fence(), delivered, ev, sc.want[delivered])
				}
				delivered++
				continue
			default:
			}
			break
		}
		if uint64(len(sc.want)-delivered) != sc.sub.Dropped() {
			t.Fatalf("fence %d: delivered %d of %d, dropped says %d",
				sc.sub.Fence(), delivered, len(sc.want), sc.sub.Dropped())
		}
	}
	// Sanity on the pruning funnel: each stage only narrows.
	st := reg.Stats()
	if st.Mutations != mutations {
		t.Fatalf("stats mutations = %d", st.Mutations)
	}
	if st.SigHits > st.SpatialHits || st.ExactHits > st.SigHits {
		t.Fatalf("pruning funnel widened: %+v", st)
	}
}

func randomText(rng *rand.Rand) string {
	n := 1 + rng.Intn(4)
	s := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			s += " "
		}
		s += oracleVocab[rng.Intn(len(oracleVocab))]
	}
	return s
}

// sameEvents compares event streams field by field.
func sameEvents(got, want []Event) error {
	if len(got) != len(want) {
		return fmt.Errorf("length %d != %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		// The model does not track sequence numbers; check everything else
		// and check that sequences are per-fence contiguous separately.
		w.Seq = g.Seq
		if g != w {
			return fmt.Errorf("event %d differs", i)
		}
	}
	seqs := make(map[uint64]uint64)
	for i, g := range got {
		if last, ok := seqs[g.Fence]; ok && g.Seq != last+1 {
			return fmt.Errorf("event %d: fence %d seq %d after %d", i, g.Fence, g.Seq, last)
		}
		seqs[g.Fence] = g.Seq
	}
	return nil
}

func checkNoGoroutineLeak(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}
