package fence

import (
	"fmt"
	"math"

	"spatialkeyword/internal/geo"
)

// memTree is a small in-memory R-Tree over fence bounding rectangles.
//
// The registry deliberately does not reuse internal/rtree: that tree is
// disk-backed and every traversal performs device I/O, which would put
// block reads under the registry lock (forbidden by the lockio invariant)
// and make fence evaluation pay modeled disk costs that belong to the
// primary index, not to standing queries. Fence sets are small (10^3-10^5
// rectangles) and mutate rarely compared to the object stream, so a
// pointer-based quadratic-split tree is the right tool.
//
// Deletion removes the entry, tightens MBRs on the way back up, and drops
// nodes that become empty, but does not rebalance underfull nodes: fences
// are registered and removed far less often than they are probed, so the
// classic condense-and-reinsert step buys nothing here. The structural
// invariants checked by check() (and relied on by the fuzz target) are
// therefore: uniform leaf depth, parent MBRs exactly covering children,
// and no empty non-root nodes.
type memTree struct {
	root  *memNode
	size  int
	maxE  int // max entries per node before split
	depth int // leaf depth; root is depth 0
}

type memNode struct {
	leaf    bool
	entries []memEntry
}

// memEntry is either a leaf entry (child == nil, id set) or a branch
// entry pointing at a child node whose MBR is rect.
type memEntry struct {
	rect  geo.Rect
	child *memNode
	id    uint64
}

const memTreeMaxEntries = 8

func newMemTree() *memTree {
	return &memTree{
		root: &memNode{leaf: true},
		maxE: memTreeMaxEntries,
	}
}

func (t *memTree) len() int { return t.size }

// insert adds (rect, id). Duplicate ids are the caller's responsibility;
// the registry never inserts the same fence id twice.
func (t *memTree) insert(rect geo.Rect, id uint64) {
	left, right := t.insertAt(t.root, memEntry{rect: rect, id: id}, 0)
	if right != nil {
		// Root split: grow the tree by one level.
		t.root = &memNode{entries: []memEntry{
			{rect: nodeRect(left), child: left},
			{rect: nodeRect(right), child: right},
		}}
		t.depth++
	}
	t.size++
}

// insertAt descends to the leaf level, inserts e, and splits on overflow.
// It returns the (possibly new) node replacing n, plus a second node when
// n was split.
func (t *memTree) insertAt(n *memNode, e memEntry, level int) (*memNode, *memNode) {
	if n.leaf {
		n.entries = append(n.entries, e)
		if len(n.entries) > t.maxE {
			return t.split(n)
		}
		return n, nil
	}
	i := chooseSubtree(n, e.rect)
	child, extra := t.insertAt(n.entries[i].child, e, level+1)
	n.entries[i] = memEntry{rect: nodeRect(child), child: child}
	if extra != nil {
		n.entries = append(n.entries, memEntry{rect: nodeRect(extra), child: extra})
		if len(n.entries) > t.maxE {
			return t.split(n)
		}
	}
	return n, nil
}

// chooseSubtree picks the child needing the least MBR enlargement to
// absorb rect, breaking ties by smaller area then lower index.
func chooseSubtree(n *memNode, rect geo.Rect) int {
	best := 0
	bestEnl := math.Inf(1)
	bestArea := math.Inf(1)
	for i, e := range n.entries {
		enl := e.rect.Enlargement(rect)
		area := e.rect.Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// split partitions an overflowing node's entries with the quadratic seed
// heuristic (Guttman 1984) into two nodes at the same level.
func (t *memTree) split(n *memNode) (*memNode, *memNode) {
	entries := n.entries
	// Pick the pair of entries that would waste the most area together.
	s1, s2 := 0, 1
	worst := math.Inf(-1)
	for i := range entries {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].rect.Union(entries[j].rect).Area() -
				entries[i].rect.Area() - entries[j].rect.Area()
			if waste > worst {
				worst, s1, s2 = waste, i, j
			}
		}
	}
	a := &memNode{leaf: n.leaf, entries: []memEntry{entries[s1]}}
	b := &memNode{leaf: n.leaf, entries: []memEntry{entries[s2]}}
	ra, rb := entries[s1].rect, entries[s2].rect
	minFill := (t.maxE + 1) / 2
	rest := make([]memEntry, 0, len(entries)-2)
	for i, e := range entries {
		if i != s1 && i != s2 {
			rest = append(rest, e)
		}
	}
	for k, e := range rest {
		remaining := len(rest) - k
		switch {
		case len(a.entries)+remaining <= minFill:
			a.entries = append(a.entries, e)
			ra = ra.Union(e.rect)
			continue
		case len(b.entries)+remaining <= minFill:
			b.entries = append(b.entries, e)
			rb = rb.Union(e.rect)
			continue
		}
		da := ra.Enlargement(e.rect)
		db := rb.Enlargement(e.rect)
		if da < db || (da == db && len(a.entries) <= len(b.entries)) {
			a.entries = append(a.entries, e)
			ra = ra.Union(e.rect)
		} else {
			b.entries = append(b.entries, e)
			rb = rb.Union(e.rect)
		}
	}
	return a, b
}

// delete removes the entry (rect, id) and reports whether it was found.
func (t *memTree) delete(rect geo.Rect, id uint64) bool {
	if !t.deleteFrom(t.root, rect, id) {
		return false
	}
	t.size--
	// Collapse a root that has decayed to a single branch entry.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.depth--
	}
	if !t.root.leaf && len(t.root.entries) == 0 {
		t.root = &memNode{leaf: true}
		t.depth = 0
	}
	return true
}

func (t *memTree) deleteFrom(n *memNode, rect geo.Rect, id uint64) bool {
	if n.leaf {
		for i, e := range n.entries {
			if e.id == id && e.rect.Equal(rect) {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true
			}
		}
		return false
	}
	for i, e := range n.entries {
		if !e.rect.Contains(rect) {
			continue
		}
		if t.deleteFrom(e.child, rect, id) {
			if len(e.child.entries) == 0 {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
			} else {
				n.entries[i].rect = nodeRect(e.child)
			}
			return true
		}
	}
	return false
}

// searchPoint invokes fn for every stored id whose rectangle contains p.
// Visit order is arbitrary; callers that need determinism sort the ids.
func (t *memTree) searchPoint(p geo.Point, fn func(id uint64)) {
	searchPointNode(t.root, p, fn)
}

func searchPointNode(n *memNode, p geo.Point, fn func(id uint64)) {
	for _, e := range n.entries {
		if !e.rect.ContainsPoint(p) {
			continue
		}
		if e.child == nil {
			fn(e.id)
		} else {
			searchPointNode(e.child, p, fn)
		}
	}
}

// nodeRect computes the MBR of a node's entries. Empty nodes only occur
// transiently during deletion and are removed by the caller.
func nodeRect(n *memNode) geo.Rect {
	r := n.entries[0].rect
	for _, e := range n.entries[1:] {
		r = r.Union(e.rect)
	}
	return r
}

// check validates the structural invariants and returns the first
// violation found. Used by tests and the fuzz target.
func (t *memTree) check() error {
	count, err := checkNode(t.root, t.depth, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("fence: tree size %d but %d reachable entries", t.size, count)
	}
	return nil
}

func checkNode(n *memNode, depthLeft int, isRoot bool) (int, error) {
	if n.leaf {
		if depthLeft != 0 {
			return 0, fmt.Errorf("fence: leaf at wrong depth (%d levels early)", depthLeft)
		}
		return len(n.entries), nil
	}
	if depthLeft <= 0 {
		return 0, fmt.Errorf("fence: branch node below leaf depth")
	}
	if len(n.entries) == 0 && !isRoot {
		return 0, fmt.Errorf("fence: empty non-root branch node")
	}
	total := 0
	for i, e := range n.entries {
		if e.child == nil {
			return 0, fmt.Errorf("fence: branch entry %d has nil child", i)
		}
		if len(e.child.entries) == 0 {
			return 0, fmt.Errorf("fence: branch entry %d points at empty node", i)
		}
		if got := nodeRect(e.child); !e.rect.Equal(got) {
			return 0, fmt.Errorf("fence: branch entry %d MBR %v != child cover %v", i, e.rect, got)
		}
		c, err := checkNode(e.child, depthLeft-1, false)
		if err != nil {
			return 0, err
		}
		total += c
	}
	return total, nil
}
