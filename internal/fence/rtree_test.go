package fence

import (
	"math/rand"
	"testing"

	"spatialkeyword/internal/geo"
)

func randRect(rng *rand.Rand) geo.Rect {
	x, y := rng.Float64()*100, rng.Float64()*100
	w, h := rng.Float64()*10, rng.Float64()*10
	return geo.Rect{Lo: geo.Point{x, y}, Hi: geo.Point{x + w, y + h}}
}

// bruteSearch is the reference for searchPoint.
func bruteSearch(rects map[uint64]geo.Rect, p geo.Point) map[uint64]bool {
	out := make(map[uint64]bool)
	for id, r := range rects {
		if r.ContainsPoint(p) {
			out[id] = true
		}
	}
	return out
}

func treeSearch(t *memTree, p geo.Point) map[uint64]bool {
	out := make(map[uint64]bool)
	t.searchPoint(p, func(id uint64) {
		if out[id] {
			panic("duplicate id from searchPoint")
		}
		out[id] = true
	})
	return out
}

func sameIDs(a, b map[uint64]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for id := range a {
		if !b[id] {
			return false
		}
	}
	return true
}

func TestMemTreeInsertSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := newMemTree()
	rects := make(map[uint64]geo.Rect)
	for id := uint64(1); id <= 500; id++ {
		r := randRect(rng)
		rects[id] = r
		tr.insert(r, id)
		if id%97 == 0 {
			if err := tr.check(); err != nil {
				t.Fatalf("after %d inserts: %v", id, err)
			}
		}
	}
	if tr.len() != 500 {
		t.Fatalf("len = %d, want 500", tr.len())
	}
	for i := 0; i < 200; i++ {
		p := geo.Point{rng.Float64() * 110, rng.Float64() * 110}
		want := bruteSearch(rects, p)
		got := treeSearch(tr, p)
		if !sameIDs(got, want) {
			t.Fatalf("searchPoint(%v): got %d ids, want %d", p, len(got), len(want))
		}
	}
}

func TestMemTreeDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := newMemTree()
	rects := make(map[uint64]geo.Rect)
	for id := uint64(1); id <= 300; id++ {
		r := randRect(rng)
		rects[id] = r
		tr.insert(r, id)
	}
	// Delete in random interleaving with searches.
	ids := make([]uint64, 0, len(rects))
	for id := range rects {
		ids = append(ids, id)
	}
	rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	for n, id := range ids {
		if !tr.delete(rects[id], id) {
			t.Fatalf("delete(%d) not found", id)
		}
		delete(rects, id)
		if tr.delete(geo.Rect{Lo: geo.Point{0, 0}, Hi: geo.Point{1, 1}}, id) {
			t.Fatalf("second delete(%d) succeeded", id)
		}
		if n%31 == 0 {
			if err := tr.check(); err != nil {
				t.Fatalf("after %d deletes: %v", n+1, err)
			}
			p := geo.Point{rng.Float64() * 110, rng.Float64() * 110}
			if !sameIDs(treeSearch(tr, p), bruteSearch(rects, p)) {
				t.Fatalf("search mismatch after %d deletes", n+1)
			}
		}
	}
	if tr.len() != 0 {
		t.Fatalf("len = %d after deleting all", tr.len())
	}
	if err := tr.check(); err != nil {
		t.Fatalf("empty tree: %v", err)
	}
	// The tree must stay usable after total drain.
	tr.insert(geo.Rect{Lo: geo.Point{5, 5}, Hi: geo.Point{6, 6}}, 42)
	got := treeSearch(tr, geo.Point{5.5, 5.5})
	if len(got) != 1 || !got[42] {
		t.Fatalf("reinsert after drain: got %v", got)
	}
}

func TestMemTreeDegenerateRects(t *testing.T) {
	// Identical and point-sized rectangles must not confuse the split.
	tr := newMemTree()
	r := geo.PointRect(geo.Point{1, 1})
	for id := uint64(1); id <= 50; id++ {
		tr.insert(r, id)
	}
	if err := tr.check(); err != nil {
		t.Fatal(err)
	}
	if got := treeSearch(tr, geo.Point{1, 1}); len(got) != 50 {
		t.Fatalf("got %d ids, want 50", len(got))
	}
	for id := uint64(1); id <= 50; id++ {
		if !tr.delete(r, id) {
			t.Fatalf("delete(%d) not found", id)
		}
	}
	if tr.len() != 0 {
		t.Fatalf("len = %d", tr.len())
	}
}
