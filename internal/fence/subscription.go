package fence

import "spatialkeyword/internal/obs"

// Subscription is one consumer of a fence's event stream.
//
// Delivery semantics: events are sent to C with a non-blocking send while
// the registry lock is held. A subscriber that does not drain C fast
// enough loses events — each loss increments Dropped (and the registry's
// sk_fence_dropped_total) rather than stalling the mutation path. Lost
// events show up as gaps in Event.Seq; the consumer recovers by calling
// Registry.EventsSince with the last sequence it saw. C is closed when
// the subscription is closed or its fence is removed.
type Subscription struct {
	// C delivers the fence's events in order (modulo drops).
	C <-chan Event

	ch      chan Event
	reg     *Registry
	fence   uint64
	dropped uint64 // guarded by reg.mu
	closed  bool   // guarded by reg.mu
}

// Subscribe attaches a new subscriber to a fence. buffer is the channel
// capacity (<= 0 uses the default of 64): the slack a consumer has before
// events start dropping.
func (r *Registry) Subscribe(id uint64, buffer int) (*Subscription, error) {
	if buffer <= 0 {
		buffer = defaultSubBuffer
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fences[id]
	if !ok {
		return nil, ErrNoFence
	}
	ch := make(chan Event, buffer)
	sub := &Subscription{C: ch, ch: ch, reg: r, fence: id}
	f.subs[sub] = struct{}{}
	return sub, nil
}

// Fence returns the id of the fence this subscription watches.
func (s *Subscription) Fence() uint64 { return s.fence }

// Dropped returns how many events this subscription has lost to a full
// buffer.
func (s *Subscription) Dropped() uint64 {
	s.reg.mu.RLock()
	defer s.reg.mu.RUnlock()
	return s.dropped
}

// Close detaches the subscription and closes C. Closing twice is safe.
func (s *Subscription) Close() {
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	if s.closed {
		return
	}
	if f, ok := s.reg.fences[s.fence]; ok {
		delete(f.subs, s)
	}
	s.closed = true
	close(s.ch)
}

// closeLocked closes the subscription while the caller already holds the
// registry lock (fence removal).
func (s *Subscription) closeLocked() {
	if s.closed {
		return
	}
	s.closed = true
	close(s.ch)
}

// Metrics bundles the obs instruments the registry reports into. Families
// follow the sk_fence_* naming of the other subsystems.
type Metrics struct {
	Registered  *obs.Gauge
	EvalSeconds *obs.Histogram
	Dropped     *obs.Counter

	byKind map[Kind]*obs.Counter
}

// NewMetrics registers the fence metric families on reg.
func NewMetrics(reg *obs.Registry) *Metrics {
	m := &Metrics{
		Registered:  reg.Gauge("sk_fence_registered", "Standing queries currently registered."),
		EvalSeconds: reg.Histogram("sk_fence_eval_seconds", "Fence-evaluation latency per mutation.", obs.LatencyBuckets()),
		Dropped:     reg.Counter("sk_fence_dropped_total", "Fence events dropped on full subscriber buffers."),
		byKind:      make(map[Kind]*obs.Counter, 3),
	}
	m.byKind[Enter] = reg.Counter("sk_fence_events_total", "Fence events emitted, by kind.", obs.L("kind", "enter"))
	m.byKind[Leave] = reg.Counter("sk_fence_events_total", "Fence events emitted, by kind.", obs.L("kind", "leave"))
	m.byKind[Update] = reg.Counter("sk_fence_events_total", "Fence events emitted, by kind.", obs.L("kind", "update"))
	return m
}

func (m *Metrics) events(k Kind) *obs.Counter { return m.byKind[k] }
