// Package geo provides the geometric primitives used throughout the library:
// multi-dimensional points, axis-aligned rectangles (minimum bounding
// rectangles, MBRs), and the distance measures required by R-Tree search.
//
// The paper's running examples are two-dimensional (latitude/longitude), but
// every structure in this package works for any dimension d >= 1, matching
// the paper's note that the method "can be applied to arbitrarily-shaped and
// multi-dimensional objects".
package geo

import (
	"fmt"
	"math"
	"strings"
)

// Point is a location in d-dimensional space. The zero value is an empty
// (dimensionless) point, which is only valid as a placeholder.
type Point []float64

// NewPoint returns a point with the given coordinates.
func NewPoint(coords ...float64) Point {
	p := make(Point, len(coords))
	copy(p, coords)
	return p
}

// Dim returns the dimensionality of the point.
func (p Point) Dim() int { return len(p) }

// Equal reports whether p and q have identical dimension and coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Dist returns the Euclidean distance between p and q.
// It panics if the dimensions differ.
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.Dist2(q))
}

// Dist2 returns the squared Euclidean distance between p and q.
// It panics if the dimensions differ.
func (p Point) Dist2(q Point) float64 {
	if len(p) != len(q) {
		//skvet:ignore nopanic documented invariant: mixed dimensions are a caller logic error
		panic(fmt.Sprintf("geo: dimension mismatch %d vs %d", len(p), len(q)))
	}
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// String formats the point as "[x1 x2 ...]" with compact coordinates.
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, c := range p {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g", c)
	}
	b.WriteByte(']')
	return b.String()
}

// Rect is an axis-aligned rectangle (an MBR) represented by its low ("south
// west") and high ("north east") corner points. A point is represented as a
// degenerate rectangle with Lo == Hi; this matches the R-Tree convention
// where every entry carries an MBR.
type Rect struct {
	Lo, Hi Point
}

// NewRect returns the rectangle spanning lo..hi. It panics if the corners
// have different dimensions or if any lo coordinate exceeds the matching hi
// coordinate.
func NewRect(lo, hi Point) Rect {
	if len(lo) != len(hi) {
		//skvet:ignore nopanic documented constructor invariant
		panic(fmt.Sprintf("geo: corner dimension mismatch %d vs %d", len(lo), len(hi)))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			//skvet:ignore nopanic documented constructor invariant
			panic(fmt.Sprintf("geo: inverted rectangle on axis %d: %g > %g", i, lo[i], hi[i]))
		}
	}
	return Rect{Lo: lo.Clone(), Hi: hi.Clone()}
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p Point) Rect {
	return Rect{Lo: p.Clone(), Hi: p.Clone()}
}

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Lo) }

// IsZero reports whether r is the zero-value rectangle (no corners).
func (r Rect) IsZero() bool { return len(r.Lo) == 0 && len(r.Hi) == 0 }

// Equal reports whether r and s cover exactly the same region.
func (r Rect) Equal(s Rect) bool {
	return r.Lo.Equal(s.Lo) && r.Hi.Equal(s.Hi)
}

// Clone returns an independent copy of r.
func (r Rect) Clone() Rect {
	return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()}
}

// Center returns the center point of r.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for i := range r.Lo {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Area returns the d-dimensional volume of r (area in 2-d). A degenerate
// rectangle has area zero.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// Margin returns the sum of the edge lengths of r (the "perimeter" measure
// used by some split heuristics).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// Union returns the smallest rectangle containing both r and s.
// If r is the zero rectangle, it returns s (and vice versa), so a running
// union can start from Rect{}.
func (r Rect) Union(s Rect) Rect {
	if r.IsZero() {
		return s.Clone()
	}
	if s.IsZero() {
		return r.Clone()
	}
	if len(r.Lo) != len(s.Lo) {
		//skvet:ignore nopanic documented invariant: mixed dimensions are a caller logic error
		panic(fmt.Sprintf("geo: union dimension mismatch %d vs %d", len(r.Lo), len(s.Lo)))
	}
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Hi))
	for i := range lo {
		lo[i] = math.Min(r.Lo[i], s.Lo[i])
		hi[i] = math.Max(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// Enlargement returns the increase in area needed for r to include s.
// This is the quantity Guttman's ChooseLeaf minimizes.
func (r Rect) Enlargement(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Contains reports whether r fully contains s.
func (r Rect) Contains(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether p lies inside (or on the boundary of) r.
func (r Rect) ContainsPoint(p Point) bool {
	if len(p) != len(r.Lo) {
		return false
	}
	for i := range p {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// Intersects reports whether r and s share at least one point.
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if s.Hi[i] < r.Lo[i] || s.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// MinDist returns the minimum Euclidean distance from point p to rectangle r
// (zero if p is inside r). This is the Dist(p, MBR) function of the
// incremental nearest-neighbor algorithm (paper Figure 3): it lower-bounds
// the distance from p to any object contained in r, which is what makes the
// priority-queue traversal correct.
func (r Rect) MinDist(p Point) float64 {
	return math.Sqrt(r.MinDist2(p))
}

// MinDist2 returns the squared minimum distance from p to r.
func (r Rect) MinDist2(p Point) float64 {
	if len(p) != len(r.Lo) {
		//skvet:ignore nopanic documented invariant: mixed dimensions are a caller logic error
		panic(fmt.Sprintf("geo: mindist dimension mismatch %d vs %d", len(p), len(r.Lo)))
	}
	var s float64
	for i := range p {
		var d float64
		switch {
		case p[i] < r.Lo[i]:
			d = r.Lo[i] - p[i]
		case p[i] > r.Hi[i]:
			d = p[i] - r.Hi[i]
		}
		s += d * d
	}
	return s
}

// MinDistRect returns the minimum Euclidean distance between r and s —
// zero when they intersect. It lower-bounds the distance between any two
// points drawn from r and s respectively, which makes it the Dist(area,
// MBR) priority of area-based incremental NN queries.
func (r Rect) MinDistRect(s Rect) float64 {
	if len(r.Lo) != len(s.Lo) {
		//skvet:ignore nopanic documented invariant: mixed dimensions are a caller logic error
		panic(fmt.Sprintf("geo: rect mindist dimension mismatch %d vs %d", len(r.Lo), len(s.Lo)))
	}
	var sum float64
	for i := range r.Lo {
		var d float64
		switch {
		case s.Hi[i] < r.Lo[i]:
			d = r.Lo[i] - s.Hi[i]
		case s.Lo[i] > r.Hi[i]:
			d = s.Lo[i] - r.Hi[i]
		}
		sum += d * d
	}
	return math.Sqrt(sum)
}

// MaxDist returns the maximum Euclidean distance from p to any point of r.
// It upper-bounds the distance from p to an object inside r and is useful
// for pruning in aggregate queries.
func (r Rect) MaxDist(p Point) float64 {
	if len(p) != len(r.Lo) {
		//skvet:ignore nopanic documented invariant: mixed dimensions are a caller logic error
		panic(fmt.Sprintf("geo: maxdist dimension mismatch %d vs %d", len(p), len(r.Lo)))
	}
	var s float64
	for i := range p {
		d := math.Max(math.Abs(p[i]-r.Lo[i]), math.Abs(p[i]-r.Hi[i]))
		s += d * d
	}
	return math.Sqrt(s)
}

// String formats the rectangle as "lo..hi".
func (r Rect) String() string {
	return r.Lo.String() + ".." + r.Hi.String()
}
