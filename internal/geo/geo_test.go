package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", NewPoint(1, 2), NewPoint(1, 2), 0},
		{"unit x", NewPoint(0, 0), NewPoint(1, 0), 1},
		{"3-4-5", NewPoint(0, 0), NewPoint(3, 4), 5},
		{"negative coords", NewPoint(-1, -1), NewPoint(2, 3), 5},
		{"1-d", NewPoint(2), NewPoint(7), 5},
		{"3-d", NewPoint(0, 0, 0), NewPoint(1, 2, 2), 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Dist(tt.q); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist(%v, %v) = %g, want %g", tt.p, tt.q, got, tt.want)
			}
			if got := tt.q.Dist(tt.p); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Dist not symmetric: %g vs %g", got, tt.want)
			}
		})
	}
}

func TestPointDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	NewPoint(1, 2).Dist(NewPoint(1, 2, 3))
}

func TestPointEqualAndClone(t *testing.T) {
	p := NewPoint(1, 2, 3)
	q := p.Clone()
	if !p.Equal(q) {
		t.Fatal("clone not equal to original")
	}
	q[0] = 99
	if p.Equal(q) {
		t.Fatal("clone aliases original storage")
	}
	if p.Equal(NewPoint(1, 2)) {
		t.Fatal("points of different dimension reported equal")
	}
}

func TestNewRectValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inverted rectangle")
		}
	}()
	NewRect(NewPoint(1, 5), NewPoint(2, 4))
}

func TestRectArea(t *testing.T) {
	tests := []struct {
		name string
		r    Rect
		want float64
	}{
		{"unit square", NewRect(NewPoint(0, 0), NewPoint(1, 1)), 1},
		{"rectangle", NewRect(NewPoint(-1, -2), NewPoint(3, 2)), 16},
		{"degenerate point", PointRect(NewPoint(5, 5)), 0},
		{"degenerate line", NewRect(NewPoint(0, 0), NewPoint(4, 0)), 0},
		{"3-d box", NewRect(NewPoint(0, 0, 0), NewPoint(2, 3, 4)), 24},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.r.Area(); got != tt.want {
				t.Errorf("Area() = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(NewPoint(0, 0), NewPoint(2, 2))
	b := NewRect(NewPoint(1, -1), NewPoint(3, 1))
	u := a.Union(b)
	want := NewRect(NewPoint(0, -1), NewPoint(3, 2))
	if !u.Equal(want) {
		t.Errorf("Union = %v, want %v", u, want)
	}
	if !a.Union(Rect{}).Equal(a) || !(Rect{}).Union(a).Equal(a) {
		t.Error("union with zero rect should be identity")
	}
}

func TestRectEnlargement(t *testing.T) {
	a := NewRect(NewPoint(0, 0), NewPoint(2, 2))
	inside := PointRect(NewPoint(1, 1))
	if got := a.Enlargement(inside); got != 0 {
		t.Errorf("enlargement for contained rect = %g, want 0", got)
	}
	outside := PointRect(NewPoint(4, 2))
	// union is [0,0]..[4,2], area 8, minus original 4 = 4.
	if got := a.Enlargement(outside); got != 4 {
		t.Errorf("enlargement = %g, want 4", got)
	}
}

func TestRectContainsAndIntersects(t *testing.T) {
	a := NewRect(NewPoint(0, 0), NewPoint(10, 10))
	tests := []struct {
		name               string
		s                  Rect
		contains, overlaps bool
	}{
		{"inside", NewRect(NewPoint(2, 2), NewPoint(5, 5)), true, true},
		{"equal", a.Clone(), true, true},
		{"partial overlap", NewRect(NewPoint(5, 5), NewPoint(15, 15)), false, true},
		{"touching edge", NewRect(NewPoint(10, 0), NewPoint(12, 5)), false, true},
		{"disjoint", NewRect(NewPoint(11, 11), NewPoint(12, 12)), false, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Contains(tt.s); got != tt.contains {
				t.Errorf("Contains = %v, want %v", got, tt.contains)
			}
			if got := a.Intersects(tt.s); got != tt.overlaps {
				t.Errorf("Intersects = %v, want %v", got, tt.overlaps)
			}
			if got := tt.s.Intersects(a); got != tt.overlaps {
				t.Errorf("Intersects not symmetric")
			}
		})
	}
}

func TestRectMinDist(t *testing.T) {
	r := NewRect(NewPoint(1, 1), NewPoint(3, 3))
	tests := []struct {
		name string
		p    Point
		want float64
	}{
		{"inside", NewPoint(2, 2), 0},
		{"on boundary", NewPoint(1, 2), 0},
		{"left", NewPoint(0, 2), 1},
		{"above", NewPoint(2, 5), 2},
		{"corner 3-4-5", NewPoint(-2, -3), 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.MinDist(tt.p); math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("MinDist(%v) = %g, want %g", tt.p, got, tt.want)
			}
		})
	}
}

func TestRectMaxDist(t *testing.T) {
	r := NewRect(NewPoint(0, 0), NewPoint(2, 2))
	// From the origin corner, the farthest point of r is (2,2).
	if got, want := r.MaxDist(NewPoint(0, 0)), math.Sqrt(8); math.Abs(got-want) > 1e-12 {
		t.Errorf("MaxDist = %g, want %g", got, want)
	}
	// From far away, max dist >= min dist always.
	p := NewPoint(10, -3)
	if r.MaxDist(p) < r.MinDist(p) {
		t.Error("MaxDist < MinDist")
	}
}

func TestRectCenterAndMargin(t *testing.T) {
	r := NewRect(NewPoint(0, 2), NewPoint(4, 8))
	if c := r.Center(); !c.Equal(NewPoint(2, 5)) {
		t.Errorf("Center = %v", c)
	}
	if m := r.Margin(); m != 10 {
		t.Errorf("Margin = %g, want 10", m)
	}
}

// randRect builds a valid random rectangle from four unconstrained floats.
func randRect(x1, y1, x2, y2 float64) Rect {
	return NewRect(
		NewPoint(math.Min(x1, x2), math.Min(y1, y2)),
		NewPoint(math.Max(x1, x2), math.Max(y1, y2)),
	)
}

func clampf(v float64) float64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return math.Mod(v, 1e6)
}

func TestQuickUnionContainsBoth(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 float64) bool {
		r := randRect(clampf(a1), clampf(a2), clampf(a3), clampf(a4))
		s := randRect(clampf(b1), clampf(b2), clampf(b3), clampf(b4))
		u := r.Union(s)
		return u.Contains(r) && u.Contains(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickMinDistLowerBoundsContainedPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		r := randRect(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100, rng.Float64()*100)
		q := NewPoint(rng.Float64()*200-50, rng.Float64()*200-50)
		// A random point inside r must be at least MinDist away from q.
		in := NewPoint(
			r.Lo[0]+rng.Float64()*(r.Hi[0]-r.Lo[0]),
			r.Lo[1]+rng.Float64()*(r.Hi[1]-r.Lo[1]),
		)
		if d, min := q.Dist(in), r.MinDist(q); d < min-1e-9 {
			t.Fatalf("point %v in %v closer (%g) to %v than MinDist %g", in, r, d, q, min)
		}
		if d, max := q.Dist(in), r.MaxDist(q); d > max+1e-9 {
			t.Fatalf("point %v in %v farther (%g) from %v than MaxDist %g", in, r, d, q, max)
		}
	}
}

func TestQuickEnlargementNonNegative(t *testing.T) {
	f := func(a1, a2, a3, a4, b1, b2, b3, b4 float64) bool {
		r := randRect(clampf(a1), clampf(a2), clampf(a3), clampf(a4))
		s := randRect(clampf(b1), clampf(b2), clampf(b3), clampf(b4))
		return r.Enlargement(s) >= -1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickContainmentImpliesZeroMinDist(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		r := randRect(rng.Float64()*10, rng.Float64()*10, rng.Float64()*10, rng.Float64()*10)
		p := NewPoint(rng.Float64()*20-5, rng.Float64()*20-5)
		if r.ContainsPoint(p) != (r.MinDist(p) == 0) {
			t.Fatalf("containment/mindist mismatch for %v in %v", p, r)
		}
	}
}

func TestPointString(t *testing.T) {
	if s := NewPoint(30.5, 100).String(); s != "[30.5 100]" {
		t.Errorf("String() = %q", s)
	}
	r := NewRect(NewPoint(0, 0), NewPoint(1, 2))
	if s := r.String(); s != "[0 0]..[1 2]" {
		t.Errorf("Rect.String() = %q", s)
	}
}
