package invindex

import (
	"sort"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/irscore"
	"spatialkeyword/internal/objstore"
)

// RankedResult is one answer of a general (ranked) IIO query.
type RankedResult struct {
	Object  objstore.Object
	Dist    float64
	IRScore float64
	Score   float64
}

// Union reads the posting lists of every word and returns their sorted
// union — the candidate set of a disjunctive query.
func (ix *Index) Union(words []string) ([]uint64, error) {
	seen := make(map[uint64]struct{})
	for _, w := range words {
		refs, err := ix.Postings(w)
		if err != nil {
			return nil, err
		}
		for _, r := range refs {
			seen[r] = struct{}{}
		}
	}
	out := make([]uint64, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// TopKRanked answers a *general* top-k spatial keyword query with the
// inverted index: the paper's Section 5.1 remark that the baselines "can be
// extended to answer general top-k spatial keyword queries", made concrete.
// The posting lists of the query keywords are unioned (OR semantics: an
// object with any keyword is a candidate), every candidate is loaded and
// scored exhaustively with f(distance, IRscore), and the k best returned.
// Like the conjunctive IIO, it is non-incremental: cost independent of k.
//
// Scorer and Combiner must match the configuration used by the index being
// compared against (see core.GeneralOptions).
func TopKRanked(ix *Index, store *objstore.Store, k int, p geo.Point, keywords []string,
	scorer *irscore.Scorer, comb irscore.Combiner) ([]RankedResult, IIOStats, error) {
	var stats IIOStats
	if k <= 0 {
		return nil, stats, nil
	}
	if comb == nil {
		comb = irscore.DistanceDiscount{}
	}
	normalized, _ := scorer.QueryIDFs(keywords)
	refs, err := ix.Union(normalized)
	if err != nil {
		return nil, stats, err
	}
	stats.CandidateCount = len(refs)
	results := make([]RankedResult, 0, len(refs))
	for _, ref := range refs {
		obj, err := store.Get(objstore.Ptr(ref))
		if err != nil {
			return nil, stats, err
		}
		stats.ObjectsLoaded++
		dist := p.Dist(obj.Point)
		ir := scorer.Score(obj.Text, normalized)
		results = append(results, RankedResult{
			Object: obj, Dist: dist, IRScore: ir, Score: comb.Combine(dist, ir),
		})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Score != results[j].Score {
			return results[i].Score > results[j].Score
		}
		return results[i].Object.ID < results[j].Object.ID
	})
	if len(results) > k {
		results = results[:k]
	}
	return results, stats, nil
}
