package invindex

import (
	"reflect"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/irscore"
	"spatialkeyword/internal/textutil"
)

func figure1Scorer() *irscore.Scorer {
	v := textutil.NewVocabulary()
	for _, h := range figure1 {
		v.AddDoc(h.text)
	}
	return irscore.NewScorer(v.NumDocs(), v.DocFreq)
}

func TestUnion(t *testing.T) {
	ix, _, ptrs, _ := buildFigure1(t)
	got, err := ix.Union([]string{"internet", "pool"})
	if err != nil {
		t.Fatal(err)
	}
	// internet: H1,H2,H6,H7; pool: H2,H3,H4,H7,H8 → union is everything but H5.
	var want []uint64
	for i, p := range ptrs {
		if i == 4 { // H5 has neither
			continue
		}
		want = append(want, uint64(p))
	}
	sortU64(want)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Union = %v, want %v", got, want)
	}
	// Unknown word contributes nothing; empty list is empty.
	got, err = ix.Union([]string{"zzz"})
	if err != nil || len(got) != 0 {
		t.Errorf("Union(zzz) = %v, %v", got, err)
	}
	got, err = ix.Union(nil)
	if err != nil || len(got) != 0 {
		t.Errorf("Union(nil) = %v, %v", got, err)
	}
}

func sortU64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1] > s[j]; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

func TestTopKRankedDisjunctive(t *testing.T) {
	ix, store, _, _ := buildFigure1(t)
	scorer := figure1Scorer()
	results, stats, err := TopKRanked(ix, store, 10, geo.NewPoint(30.5, 100.0),
		[]string{"internet", "pool"}, scorer, irscore.DistanceDiscount{Scale: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Disjunctive: all 7 hotels with internet OR pool.
	if len(results) != 7 {
		t.Fatalf("got %d results, want 7", len(results))
	}
	if stats.CandidateCount != 7 || stats.ObjectsLoaded != 7 {
		t.Errorf("stats = %+v", stats)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Score > results[i-1].Score {
			t.Error("scores not non-increasing")
		}
	}
	for _, r := range results {
		if r.IRScore <= 0 {
			t.Errorf("object %d has zero relevance", r.Object.ID)
		}
	}
}

func TestTopKRankedEdgeCases(t *testing.T) {
	ix, store, _, _ := buildFigure1(t)
	scorer := figure1Scorer()
	// k = 0.
	res, _, err := TopKRanked(ix, store, 0, geo.NewPoint(0, 0), []string{"pool"}, scorer, nil)
	if err != nil || res != nil {
		t.Errorf("k=0: %v %v", res, err)
	}
	// k smaller than candidates.
	res, _, err = TopKRanked(ix, store, 2, geo.NewPoint(0, 0), []string{"pool"}, scorer, nil)
	if err != nil || len(res) != 2 {
		t.Errorf("k=2: %d results, %v", len(res), err)
	}
	// Unknown keyword only.
	res, _, err = TopKRanked(ix, store, 3, geo.NewPoint(0, 0), []string{"quasar"}, scorer, nil)
	if err != nil || len(res) != 0 {
		t.Errorf("unknown: %v %v", res, err)
	}
}
