package invindex

import (
	"sort"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/textutil"
)

// Result is one ranked query answer: the loaded object and its distance to
// the query point.
type Result struct {
	Object objstore.Object
	Dist   float64
}

// IIOStats reports the work performed by one TopK call.
type IIOStats struct {
	// CandidateCount is |V|: the size of the posting-list intersection.
	CandidateCount int
	// ObjectsLoaded is how many objects were read from the object file.
	ObjectsLoaded int
}

// TopK answers a distance-first top-k spatial keyword query with the
// Inverted Index Only algorithm (paper Figure 7): intersect the posting
// lists of the query keywords, load every object in the intersection,
// compute its distance to the query point, sort, and return the first k.
//
// IIO is the only non-incremental algorithm in the paper: it always computes
// the complete candidate set, so its cost is independent of k. Posting-list
// references are object-file pointers (objstore.Ptr), so loading a candidate
// pays the object's disk blocks.
func TopK(ix *Index, store *objstore.Store, k int, p geo.Point, keywords []string) ([]Result, IIOStats, error) {
	var stats IIOStats
	if k <= 0 {
		return nil, stats, nil
	}
	refs, err := ix.Intersect(textutil.NormalizeAll(keywords))
	if err != nil {
		return nil, stats, err
	}
	stats.CandidateCount = len(refs)

	results := make([]Result, 0, len(refs))
	for _, ref := range refs {
		obj, err := store.Get(objstore.Ptr(ref))
		if err != nil {
			return nil, stats, err
		}
		stats.ObjectsLoaded++
		results = append(results, Result{Object: obj, Dist: p.Dist(obj.Point)})
	}
	sort.Slice(results, func(i, j int) bool {
		if results[i].Dist != results[j].Dist {
			return results[i].Dist < results[j].Dist
		}
		return results[i].Object.ID < results[j].Object.ID
	})
	if len(results) > k {
		results = results[:k]
	}
	return results, stats, nil
}
