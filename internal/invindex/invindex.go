// Package invindex implements the disk-resident inverted index and the
// Inverted Index Only (IIO) baseline algorithm of the paper (Section 5.1,
// Figure 7).
//
// The index maps each word to a posting list of object references, sorted
// and delta-varint encoded, packed back to back into one contiguous block
// region. Retrieving a word's list reads its blocks: one random access plus
// sequential accesses for the continuation blocks — short lists (rare words)
// are cheap, long lists (common words) are expensive, which is exactly the
// selectivity behavior the paper's IIO discussion turns on.
//
// The dictionary (word -> list location) is kept in memory at query time,
// the usual assumption for inverted indexes; its serialized form is also
// written to the device so the structure's size (Table 2) accounts for it.
package invindex

import (
	"encoding/binary"
	"fmt"
	"sort"

	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

// listRef locates one posting list inside the postings region.
type listRef struct {
	offset uint64 // byte offset within the region
	length uint32 // encoded byte length
	count  uint32 // number of postings
}

// Index is a disk-resident inverted index. Build it by calling Add for every
// object and then Build once; afterwards it is safe for concurrent readers.
type Index struct {
	dev storage.Device

	building map[string][]uint64
	built    bool

	dict         map[string]listRef
	firstBlock   storage.BlockID
	regionBlocks int
}

// New returns an empty index on dev.
func New(dev storage.Device) *Index {
	return &Index{dev: dev, building: make(map[string][]uint64)}
}

// Add posts an object reference under every distinct word of words. It must
// be called before Build; words are used as given (normalize upstream).
func (ix *Index) Add(ref uint64, words []string) {
	if ix.built {
		//skvet:ignore nopanic documented API misuse: the index is immutable after Build
		panic("invindex: Add after Build")
	}
	seen := make(map[string]struct{}, len(words))
	for _, w := range words {
		if w == "" {
			continue
		}
		if _, dup := seen[w]; dup {
			continue
		}
		seen[w] = struct{}{}
		ix.building[w] = append(ix.building[w], ref)
	}
}

// AddDocument tokenizes text and posts ref under each distinct token.
func (ix *Index) AddDocument(ref uint64, text string) {
	ix.Add(ref, textutil.UniqueTokens(text))
}

// Build encodes all posting lists and the dictionary onto the device. After
// Build the index is read-only.
func (ix *Index) Build() error {
	if ix.built {
		return fmt.Errorf("invindex: already built")
	}
	words := make([]string, 0, len(ix.building))
	for w := range ix.building {
		words = append(words, w)
	}
	sort.Strings(words)

	// Encode every list into one contiguous buffer.
	ix.dict = make(map[string]listRef, len(words))
	var region []byte
	var scratch [binary.MaxVarintLen64]byte
	for _, w := range words {
		refs := ix.building[w]
		sort.Slice(refs, func(i, j int) bool { return refs[i] < refs[j] })
		start := len(region)
		prev := uint64(0)
		n := 0
		for i, r := range refs {
			if i > 0 && r == prev {
				continue // dedupe defensively
			}
			k := binary.PutUvarint(scratch[:], r-prev)
			region = append(region, scratch[:k]...)
			prev = r
			n++
		}
		ix.dict[w] = listRef{
			offset: uint64(start),
			length: uint32(len(region) - start),
			count:  uint32(n),
		}
	}

	bs := ix.dev.BlockSize()
	if len(region) > 0 {
		nblocks := (len(region) + bs - 1) / bs
		first := ix.dev.AllocRun(nblocks)
		if err := ix.dev.WriteRun(first, nblocks, region); err != nil {
			return fmt.Errorf("invindex: write postings: %w", err)
		}
		ix.firstBlock = first
		ix.regionBlocks = nblocks
	}

	// Serialize the dictionary for size accounting: len|word|offset|length|count.
	var dictBuf []byte
	for _, w := range words {
		r := ix.dict[w]
		k := binary.PutUvarint(scratch[:], uint64(len(w)))
		dictBuf = append(dictBuf, scratch[:k]...)
		dictBuf = append(dictBuf, w...)
		for _, v := range []uint64{r.offset, uint64(r.length), uint64(r.count)} {
			k = binary.PutUvarint(scratch[:], v)
			dictBuf = append(dictBuf, scratch[:k]...)
		}
	}
	if len(dictBuf) > 0 {
		nblocks := (len(dictBuf) + bs - 1) / bs
		first := ix.dev.AllocRun(nblocks)
		if err := ix.dev.WriteRun(first, nblocks, dictBuf); err != nil {
			return fmt.Errorf("invindex: write dictionary: %w", err)
		}
	}

	ix.building = nil
	ix.built = true
	return nil
}

// NumWords returns the number of distinct indexed words.
func (ix *Index) NumWords() int {
	if ix.built {
		return len(ix.dict)
	}
	return len(ix.building)
}

// DocFreq returns the posting count for word (0 if absent).
func (ix *Index) DocFreq(word string) int {
	if !ix.built {
		return len(ix.building[word])
	}
	return int(ix.dict[word].count)
}

// SizeBytes returns the on-device footprint (postings + dictionary).
func (ix *Index) SizeBytes() int64 { return ix.dev.SizeBytes() }

// SizeMB returns the footprint in megabytes (10^6 bytes).
func (ix *Index) SizeMB() float64 { return float64(ix.SizeBytes()) / 1e6 }

// Device returns the index's block device (for I/O metering).
func (ix *Index) Device() storage.Device { return ix.dev }

// Postings reads word's posting list from the device and returns the sorted
// object references ("I.RetrieveObjectPointersList(w)" of Figure 7). A word
// absent from the dictionary yields an empty list with no I/O.
func (ix *Index) Postings(word string) ([]uint64, error) {
	if !ix.built {
		return nil, fmt.Errorf("invindex: Postings before Build")
	}
	r, ok := ix.dict[word]
	if !ok || r.count == 0 {
		return nil, nil
	}
	bs := uint64(ix.dev.BlockSize())
	firstIdx := r.offset / bs
	lastIdx := (r.offset + uint64(r.length) - 1) / bs
	nblocks := int(lastIdx-firstIdx) + 1
	buf, err := ix.dev.ReadRun(ix.firstBlock+storage.BlockID(firstIdx), nblocks)
	if err != nil {
		return nil, fmt.Errorf("invindex: read postings for %q: %w", word, err)
	}
	data := buf[r.offset-firstIdx*bs:]
	refs := make([]uint64, 0, r.count)
	var prev uint64
	for i := 0; i < int(r.count); i++ {
		delta, n := binary.Uvarint(data)
		if n <= 0 {
			return nil, fmt.Errorf("invindex: corrupt posting list for %q", word)
		}
		data = data[n:]
		prev += delta
		refs = append(refs, prev)
	}
	return refs, nil
}

// Intersect reads the posting lists of every word and returns their
// intersection (Figure 7 lines 1-3): the references of objects containing
// all the words. Lists are intersected shortest-first. An unknown word
// short-circuits to an empty result after reading the lists of the words
// before it, matching the algorithm's left-to-right evaluation.
func (ix *Index) Intersect(words []string) ([]uint64, error) {
	if len(words) == 0 {
		return nil, nil
	}
	lists := make([][]uint64, 0, len(words))
	for _, w := range words {
		l, err := ix.Postings(w)
		if err != nil {
			return nil, err
		}
		if len(l) == 0 {
			return nil, nil
		}
		lists = append(lists, l)
	}
	sort.Slice(lists, func(i, j int) bool { return len(lists[i]) < len(lists[j]) })
	out := lists[0]
	for _, l := range lists[1:] {
		out = intersectSorted(out, l)
		if len(out) == 0 {
			return nil, nil
		}
	}
	return out, nil
}

// intersectSorted merges two sorted lists, keeping common elements.
func intersectSorted(a, b []uint64) []uint64 {
	out := make([]uint64, 0, min(len(a), len(b)))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
