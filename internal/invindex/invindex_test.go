package invindex

import (
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

// figure1 is the paper's hotel dataset: name + amenities per hotel H1..H8.
var figure1 = []struct {
	lat, lon float64
	text     string
}{
	{25.4, -80.1, "Hotel A tennis court, gift shop, spa, Internet"},
	{47.3, -122.2, "Hotel B wireless Internet, pool, golf course"},
	{35.5, 139.4, "Hotel C spa, continental suites, pool"},
	{39.5, 116.2, "Hotel D sauna, pool, conference rooms"},
	{51.3, -0.5, "Hotel E dry cleaning, free lunch, pets"},
	{40.4, -73.5, "Hotel F safe box, concierge, internet, pets"},
	{-33.2, -70.4, "Hotel G Internet, airport transportation, pool"},
	{-41.1, 174.4, "Hotel H wake up service, no pets, pool"},
}

// buildFigure1 loads Figure 1 into an object store and an inverted index
// keyed by object-file pointers, as in the paper's setup.
func buildFigure1(t *testing.T) (*Index, *objstore.Store, []objstore.Ptr, *storage.Disk) {
	t.Helper()
	objDisk := storage.NewDisk(4096)
	store := objstore.New(objDisk)
	ixDisk := storage.NewDisk(4096)
	ix := New(ixDisk)
	var ptrs []objstore.Ptr
	for _, h := range figure1 {
		_, ptr, _ := store.Append(geo.NewPoint(h.lat, h.lon), h.text)
		ix.AddDocument(uint64(ptr), h.text)
		ptrs = append(ptrs, ptr)
	}
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	return ix, store, ptrs, ixDisk
}

func TestPostingsFigure1(t *testing.T) {
	ix, _, ptrs, _ := buildFigure1(t)
	// Paper Example 2: "internet" → H1, H2, H6, H7; "pool" → H2, H3, H4, H7, H8.
	tests := []struct {
		word string
		want []int // hotel indexes (0-based)
	}{
		{"internet", []int{0, 1, 5, 6}},
		{"pool", []int{1, 2, 3, 6, 7}},
		{"pets", []int{4, 5, 7}},
		{"sauna", []int{3}},
		{"nonexistent", nil},
	}
	for _, tt := range tests {
		t.Run(tt.word, func(t *testing.T) {
			got, err := ix.Postings(tt.word)
			if err != nil {
				t.Fatal(err)
			}
			var want []uint64
			for _, i := range tt.want {
				want = append(want, uint64(ptrs[i]))
			}
			sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
			if !reflect.DeepEqual(got, want) {
				t.Errorf("Postings(%q) = %v, want %v", tt.word, got, want)
			}
		})
	}
}

func TestIntersectFigure1(t *testing.T) {
	ix, _, ptrs, _ := buildFigure1(t)
	// Paper Example 2 step 3: {internet, pool} → H2, H7.
	got, err := ix.Intersect([]string{"internet", "pool"})
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{uint64(ptrs[1]), uint64(ptrs[6])}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	// Intersection with an unknown word is empty.
	if got, err := ix.Intersect([]string{"internet", "zzz"}); err != nil || got != nil {
		t.Errorf("Intersect with unknown = %v, %v", got, err)
	}
	// Empty keyword list.
	if got, err := ix.Intersect(nil); err != nil || got != nil {
		t.Errorf("Intersect(nil) = %v, %v", got, err)
	}
	// Three-way.
	got, err = ix.Intersect([]string{"internet", "pool", "airport"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []uint64{uint64(ptrs[6])}) {
		t.Errorf("3-way intersect = %v", got)
	}
}

// TestPaperExample2 replays the full IIO trace: top-2 from [30.5, 100.0]
// with {internet, pool} returns H7 (181.9) then H2 (222.8).
func TestPaperExample2(t *testing.T) {
	ix, store, ptrs, _ := buildFigure1(t)
	results, stats, err := TopK(ix, store, 2, geo.NewPoint(30.5, 100.0), []string{"internet", "pool"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Object.ID != 6 || results[1].Object.ID != 1 {
		t.Errorf("order = H%d, H%d; want H7, H2", results[0].Object.ID+1, results[1].Object.ID+1)
	}
	if d := results[0].Dist; d < 181.9 || d > 182.0 {
		t.Errorf("H7 distance = %g, want ≈181.9 (paper)", d)
	}
	if d := results[1].Dist; d < 222.8 || d > 222.9 {
		t.Errorf("H2 distance = %g, want ≈222.8 (paper)", d)
	}
	if stats.CandidateCount != 2 || stats.ObjectsLoaded != 2 {
		t.Errorf("stats = %+v", stats)
	}
	_ = ptrs
}

func TestTopKCaseInsensitiveAndKClamp(t *testing.T) {
	ix, store, _, _ := buildFigure1(t)
	// Keywords arrive unnormalized.
	results, _, err := TopK(ix, store, 10, geo.NewPoint(30.5, 100.0), []string{"INTERNET", "Pool"})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Errorf("k larger than matches: got %d results, want 2", len(results))
	}
	// k = 0.
	results, _, err = TopK(ix, store, 0, geo.NewPoint(0, 0), []string{"pool"})
	if err != nil || results != nil {
		t.Errorf("k=0: %v, %v", results, err)
	}
}

func TestTopKIndependentOfK(t *testing.T) {
	// IIO loads the full candidate set whatever k is.
	ix, store, _, _ := buildFigure1(t)
	_, s1, err := TopK(ix, store, 1, geo.NewPoint(0, 0), []string{"pool"})
	if err != nil {
		t.Fatal(err)
	}
	_, s5, err := TopK(ix, store, 5, geo.NewPoint(0, 0), []string{"pool"})
	if err != nil {
		t.Fatal(err)
	}
	if s1.ObjectsLoaded != s5.ObjectsLoaded || s1.ObjectsLoaded != 5 {
		t.Errorf("objects loaded: k=1 %d, k=5 %d, want both 5", s1.ObjectsLoaded, s5.ObjectsLoaded)
	}
}

func TestBuildLifecycle(t *testing.T) {
	ix := New(storage.NewDisk(4096))
	ix.Add(1, []string{"a", "b", "a", ""})
	if ix.DocFreq("a") != 1 {
		t.Error("duplicate word posted twice")
	}
	if ix.DocFreq("") != 0 {
		t.Error("empty word posted")
	}
	if _, err := ix.Postings("a"); err == nil {
		t.Error("Postings before Build succeeded")
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Build(); err == nil {
		t.Error("second Build succeeded")
	}
	defer func() {
		if recover() == nil {
			t.Error("Add after Build did not panic")
		}
	}()
	ix.Add(2, []string{"c"})
}

func TestEmptyIndex(t *testing.T) {
	ix := New(storage.NewDisk(4096))
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	if got, err := ix.Postings("anything"); err != nil || got != nil {
		t.Errorf("Postings on empty = %v, %v", got, err)
	}
	if ix.NumWords() != 0 || ix.SizeBytes() != 0 {
		t.Errorf("empty index: words=%d size=%d", ix.NumWords(), ix.SizeBytes())
	}
}

func TestPostingsIOAccounting(t *testing.T) {
	disk := storage.NewDisk(4096)
	ix := New(disk)
	// One rare word and one word common enough to span several blocks.
	for i := 0; i < 20000; i++ {
		words := []string{"common"}
		if i == 7 {
			words = append(words, "rare")
		}
		ix.Add(uint64(i)*64, words)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	disk.ResetStats()
	if _, err := ix.Postings("rare"); err != nil {
		t.Fatal(err)
	}
	rare := disk.Stats()
	if rare.Reads() != 1 {
		t.Errorf("rare word read %d blocks, want 1", rare.Reads())
	}
	disk.ResetStats()
	refs, err := ix.Postings("common")
	if err != nil {
		t.Fatal(err)
	}
	if len(refs) != 20000 {
		t.Fatalf("common postings = %d", len(refs))
	}
	common := disk.Stats()
	if common.Reads() < 5 {
		t.Errorf("common word read %d blocks, want several", common.Reads())
	}
	if common.RandomReads != 1 {
		t.Errorf("long list should be 1 random + sequential, got %+v", common)
	}
}

func TestQuickIntersectMatchesSetSemantics(t *testing.T) {
	f := func(docs [][]byte, q1, q2 uint8) bool {
		ix := New(storage.NewDisk(4096))
		vocab := []string{"a", "b", "c", "d", "e"}
		contents := make([]map[string]bool, len(docs))
		for i, d := range docs {
			var words []string
			set := make(map[string]bool)
			for _, w := range d {
				v := vocab[int(w)%len(vocab)]
				words = append(words, v)
				set[v] = true
			}
			contents[i] = set
			ix.Add(uint64(i), words)
		}
		if err := ix.Build(); err != nil {
			return false
		}
		query := []string{vocab[int(q1)%len(vocab)], vocab[int(q2)%len(vocab)]}
		got, err := ix.Intersect(query)
		if err != nil {
			return false
		}
		var want []uint64
		for i, set := range contents {
			if set[query[0]] && set[query[1]] {
				want = append(want, uint64(i))
			}
		}
		return reflect.DeepEqual(got, want)
	}
	cfg := &quick.Config{MaxCount: 200, Values: nil}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestIntersectSortedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		a := randSortedSet(rng, 50)
		b := randSortedSet(rng, 50)
		got := intersectSorted(a, b)
		want := bruteIntersect(a, b)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("intersectSorted(%v, %v) = %v, want %v", a, b, got, want)
		}
	}
}

func randSortedSet(rng *rand.Rand, maxLen int) []uint64 {
	n := rng.Intn(maxLen)
	set := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		set[uint64(rng.Intn(100))] = true
	}
	out := make([]uint64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func bruteIntersect(a, b []uint64) []uint64 {
	inB := make(map[uint64]bool, len(b))
	for _, v := range b {
		inB[v] = true
	}
	out := make([]uint64, 0)
	for _, v := range a {
		if inB[v] {
			out = append(out, v)
		}
	}
	return out
}

func TestDocFreqLargeVocabulary(t *testing.T) {
	ix := New(storage.NewDisk(4096))
	const nDocs = 500
	rng := rand.New(rand.NewSource(13))
	freq := make(map[string]int)
	for i := 0; i < nDocs; i++ {
		var words []string
		seen := make(map[string]bool)
		for j := 0; j < 10; j++ {
			w := fmt.Sprintf("word%03d", rng.Intn(100))
			words = append(words, w)
			if !seen[w] {
				seen[w] = true
				freq[w]++
			}
		}
		ix.Add(uint64(i), words)
	}
	if err := ix.Build(); err != nil {
		t.Fatal(err)
	}
	for w, want := range freq {
		if got := ix.DocFreq(w); got != want {
			t.Fatalf("DocFreq(%q) = %d, want %d", w, got, want)
		}
		refs, err := ix.Postings(w)
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) != want {
			t.Fatalf("Postings(%q) length %d, want %d", w, len(refs), want)
		}
	}
	if ix.NumWords() != len(freq) {
		t.Errorf("NumWords = %d, want %d", ix.NumWords(), len(freq))
	}
}

func TestTopKPropagatesStoreError(t *testing.T) {
	ix, store, _, _ := buildFigure1(t)
	_ = store
	// Build a store on a faulty disk.
	badDisk := storage.NewDisk(4096)
	badStore := objstore.New(badDisk)
	for _, h := range figure1 {
		badStore.Append(geo.NewPoint(h.lat, h.lon), h.text)
	}
	if err := badStore.Sync(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("bad sector")
	badDisk.SetFault(func(op storage.Op, id storage.BlockID) error {
		if op == storage.OpRead {
			return boom
		}
		return nil
	})
	_, _, err := TopK(ix, badStore, 2, geo.NewPoint(0, 0), []string{"pool"})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want fault", err)
	}
}

func TestNormalizationConsistency(t *testing.T) {
	// Documents indexed via AddDocument must be findable with any casing.
	ix, _, _, _ := buildFigure1(t)
	for _, w := range []string{"internet", "Internet", "INTERNET"} {
		norm := textutil.NormalizeAll([]string{w})
		refs, err := ix.Intersect(norm)
		if err != nil {
			t.Fatal(err)
		}
		if len(refs) != 4 {
			t.Errorf("%q matched %d hotels, want 4", w, len(refs))
		}
	}
}
