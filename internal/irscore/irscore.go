// Package irscore implements the IR relevance scoring of the paper's
// *general* top-k spatial keyword queries (Section 5.3): a tf-idf ranking
// function IRscore(T.t, Q.t) [Sin01], a monotone combining function
// f(distance, IRscore), and the signature-derived upper bound
// UpperBound_{T-has-signature-s}(IRscore(T.t, Q.t)) that orders the search
// queue.
//
// One deliberate deviation from the paper's sketch: the paper bounds a
// node's IR score by imagining an object that contains each
// signature-matched keyword exactly once (tf = 1). For common tf-idf
// normalizations that imaginary object is not actually the maximum, which
// would make the early-termination test unsound. We instead use a
// *saturating* term-frequency weight, tf/(tf+1) in [1/2, 1), whose supremum
// is 1; the node bound Σ idf(w) over signature-matched keywords is then a
// provable upper bound for every object in the subtree, so the general
// algorithm's output order is exact. (DESIGN.md discusses this choice.)
package irscore

import (
	"math"
	"sort"

	"spatialkeyword/internal/textutil"
)

// Scorer computes tf-idf relevance scores against a fixed corpus. The
// corpus is described by its document count and a document-frequency
// function (typically textutil.Vocabulary.DocFreq or invindex.Index.DocFreq).
type Scorer struct {
	numDocs int
	docFreq func(word string) int
	an      *textutil.Analyzer // nil = plain tokenization
}

// NewScorer returns a scorer over a corpus of numDocs documents with the
// given document-frequency source.
func NewScorer(numDocs int, docFreq func(word string) int) *Scorer {
	return &Scorer{numDocs: numDocs, docFreq: docFreq}
}

// WithAnalyzer returns a copy of the scorer that normalizes documents and
// keywords through the given text pipeline. The scorer must use the same
// analyzer as the index it scores for (and the same pipeline must have fed
// the document-frequency source), or terms will not line up.
func (s *Scorer) WithAnalyzer(a *textutil.Analyzer) *Scorer {
	out := *s
	out.an = a
	return &out
}

// IDF returns the inverse document frequency weight of a word:
// ln(1 + N/(1+df)). Rare words weigh more; a word in every document still
// gets a small positive weight.
func (s *Scorer) IDF(word string) float64 {
	return s.idfOfTerm(s.an.Keyword(word))
}

// idfOfTerm is IDF for an already-normalized pipeline term. Stemming is not
// idempotent ("agreed" → "agre" → "agr"), so normalized terms must not pass
// through the pipeline a second time.
func (s *Scorer) idfOfTerm(term string) float64 {
	df := s.docFreq(term)
	return math.Log(1 + float64(s.numDocs)/float64(1+df))
}

// TFWeight is the saturating term-frequency weight tf/(tf+1): 0 for absent
// terms, 1/2 for a single occurrence, approaching (never reaching) 1.
func TFWeight(tf int) float64 {
	if tf <= 0 {
		return 0
	}
	return float64(tf) / float64(tf+1)
}

// Score returns IRscore(text, keywords) = Σ_w TFWeight(tf_w)·IDF(w) over the
// query keywords present in the text. Keywords are normalized; duplicates
// count once.
func (s *Scorer) Score(text string, keywords []string) float64 {
	kws := s.an.Keywords(keywords)
	if len(kws) == 0 {
		return 0
	}
	tf := s.an.TermFreqs(text)
	var score float64
	for _, w := range kws {
		if n := tf[w]; n > 0 {
			score += TFWeight(n) * s.idfOfTerm(w)
		}
	}
	return score
}

// ScoreFromCounts returns IRscore for a document whose per-term frequencies
// are already counted: Σ TFWeight(counts[i])·idfs[i]. counts and idfs are
// parallel to the normalized terms of QueryIDFs (see
// textutil.Analyzer.TermFreqsInto); unlike Score, nothing is re-normalized
// and nothing allocates, so the ranked query scores each candidate straight
// off caller-owned scratch.
func ScoreFromCounts(counts []int, idfs []float64) float64 {
	var score float64
	for i, n := range counts {
		if n > 0 {
			score += TFWeight(n) * idfs[i]
		}
	}
	return score
}

// UpperBound returns the maximum possible IRscore of any document whose
// query-term set is a subset of the given matched keywords: Σ idf(w), since
// every term weight is strictly below 1. matchedIDFs are the IDF values of
// the keywords whose signatures matched (paper Section 5.3, item (i): the
// general algorithm tests each keyword's signature individually).
func UpperBound(matchedIDFs []float64) float64 {
	var ub float64
	for _, idf := range matchedIDFs {
		ub += idf
	}
	return ub
}

// QueryIDFs returns the IDF of every normalized query keyword, in the
// normalized keyword order (paired with the per-keyword signatures the
// general algorithm builds).
func (s *Scorer) QueryIDFs(keywords []string) (normalized []string, idfs []float64) {
	normalized = s.an.Keywords(keywords)
	idfs = make([]float64, len(normalized))
	for i, w := range normalized {
		idfs[i] = s.idfOfTerm(w)
	}
	return normalized, idfs
}

// Combiner is the ranking function f(distance(T.p, Q.p), IRscore(T.t, Q.t))
// of the problem definition. Implementations must be monotone —
// non-increasing in distance and non-decreasing in IR score — which is what
// makes Upper(v) = f(MinDist(v), UpperBoundIR(v)) a valid queue priority.
type Combiner interface {
	// Combine returns the overall score; higher is better.
	Combine(dist, ir float64) float64
}

// DistanceDiscount is the default combiner: f = (ε + IRscore) / (1 + dist/Scale).
// Scale sets how quickly relevance is discounted with distance; ε keeps a
// tiny positive score for keyword-less matches so pure-spatial ties still
// order by distance.
type DistanceDiscount struct {
	// Scale is the distance at which relevance is halved. Zero means 1.
	Scale float64
	// Epsilon is the relevance floor. Zero means 1e-9.
	Epsilon float64
}

// Combine implements Combiner.
func (c DistanceDiscount) Combine(dist, ir float64) float64 {
	scale := c.Scale
	if scale == 0 {
		scale = 1
	}
	eps := c.Epsilon
	if eps == 0 {
		eps = 1e-9
	}
	return (eps + ir) / (1 + dist/scale)
}

// LinearCombiner is f = Alpha·IRscore − (1−Alpha)·dist/Scale: the weighted
// trade-off formulation common in later spatial-keyword literature.
type LinearCombiner struct {
	// Alpha in [0,1] weights relevance against proximity. Zero value means
	// 0.5.
	Alpha float64
	// Scale normalizes distances. Zero means 1.
	Scale float64
}

// Combine implements Combiner.
func (c LinearCombiner) Combine(dist, ir float64) float64 {
	alpha := c.Alpha
	if alpha == 0 {
		alpha = 0.5
	}
	scale := c.Scale
	if scale == 0 {
		scale = 1
	}
	return alpha*ir - (1-alpha)*dist/scale
}

// TopIDFPrefix returns, for diagnostics and workload construction, the
// given idfs sorted descending. It does not modify its input.
func TopIDFPrefix(idfs []float64) []float64 {
	out := make([]float64, len(idfs))
	copy(out, idfs)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}
