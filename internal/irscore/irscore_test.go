package irscore

import (
	"math"
	"math/rand"
	"testing"

	"spatialkeyword/internal/textutil"
)

// corpus builds a scorer over a tiny fixed corpus.
func corpus() (*Scorer, []string) {
	docs := []string{
		"internet pool spa",
		"pool sauna",
		"internet internet internet",
		"gift shop",
		"pool pool pool gift",
	}
	v := textutil.NewVocabulary()
	for _, d := range docs {
		v.AddDoc(d)
	}
	return NewScorer(v.NumDocs(), v.DocFreq), docs
}

func TestIDFOrdering(t *testing.T) {
	s, _ := corpus()
	// df: pool=3, internet=2, spa=1, absent=0.
	idfPool := s.IDF("pool")
	idfInternet := s.IDF("internet")
	idfSpa := s.IDF("spa")
	idfAbsent := s.IDF("unicorn")
	if !(idfPool < idfInternet && idfInternet < idfSpa && idfSpa < idfAbsent) {
		t.Errorf("idf ordering wrong: pool=%g internet=%g spa=%g absent=%g",
			idfPool, idfInternet, idfSpa, idfAbsent)
	}
	if idfPool <= 0 {
		t.Error("ubiquitous word must keep positive idf")
	}
	// Case-insensitive.
	if s.IDF("POOL") != idfPool {
		t.Error("IDF not normalized")
	}
}

func TestTFWeight(t *testing.T) {
	if TFWeight(0) != 0 || TFWeight(-3) != 0 {
		t.Error("absent term weight must be 0")
	}
	if TFWeight(1) != 0.5 {
		t.Errorf("TFWeight(1) = %g", TFWeight(1))
	}
	prev := 0.0
	for tf := 1; tf < 100; tf++ {
		w := TFWeight(tf)
		if w <= prev || w >= 1 {
			t.Fatalf("TFWeight(%d) = %g not in (prev, 1)", tf, w)
		}
		prev = w
	}
}

func TestScore(t *testing.T) {
	s, _ := corpus()
	// Doc with both keywords beats docs with one.
	both := s.Score("internet pool spa", []string{"internet", "pool"})
	onlyPool := s.Score("pool sauna", []string{"internet", "pool"})
	neither := s.Score("gift shop", []string{"internet", "pool"})
	if !(both > onlyPool && onlyPool > neither) {
		t.Errorf("score ordering: both=%g one=%g none=%g", both, onlyPool, neither)
	}
	if neither != 0 {
		t.Errorf("no-match score = %g, want 0", neither)
	}
	// Higher tf (saturating) helps but is bounded.
	tf1 := s.Score("internet", []string{"internet"})
	tf3 := s.Score("internet internet internet", []string{"internet"})
	if !(tf3 > tf1) {
		t.Error("tf must increase score")
	}
	if tf3 >= 2*tf1 {
		t.Error("tf weight must saturate (tf=3 below 2x tf=1)")
	}
	// Duplicated query keywords count once.
	dup := s.Score("internet pool", []string{"internet", "INTERNET", "internet"})
	single := s.Score("internet pool", []string{"internet"})
	if dup != single {
		t.Errorf("duplicate keywords changed score: %g vs %g", dup, single)
	}
	// Empty keywords.
	if s.Score("internet", nil) != 0 {
		t.Error("empty query must score 0")
	}
}

func TestUpperBoundDominatesAllScores(t *testing.T) {
	// The soundness property the general algorithm relies on: for any
	// document, Score <= UpperBound over the matched keywords' IDFs.
	s, docs := corpus()
	queries := [][]string{
		{"internet"},
		{"internet", "pool"},
		{"internet", "pool", "spa", "gift", "sauna"},
	}
	for _, q := range queries {
		normalized, idfs := s.QueryIDFs(q)
		ub := UpperBound(idfs)
		for _, d := range docs {
			if got := s.Score(d, normalized); got > ub+1e-12 {
				t.Errorf("Score(%q, %v) = %g exceeds UpperBound %g", d, q, got, ub)
			}
		}
	}
}

func TestUpperBoundRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for trial := 0; trial < 100; trial++ {
		// Random corpus.
		v := textutil.NewVocabulary()
		docs := make([]string, 3+rng.Intn(20))
		for i := range docs {
			var d string
			for j := 0; j < 1+rng.Intn(15); j++ {
				d += vocab[rng.Intn(len(vocab))] + " "
			}
			docs[i] = d
			v.AddDoc(d)
		}
		s := NewScorer(v.NumDocs(), v.DocFreq)
		// Random query.
		q := vocab[:1+rng.Intn(len(vocab))]
		_, idfs := s.QueryIDFs(q)
		ub := UpperBound(idfs)
		for _, d := range docs {
			if got := s.Score(d, q); got > ub+1e-12 {
				t.Fatalf("trial %d: score %g > ub %g for doc %q query %v", trial, got, ub, d, q)
			}
		}
	}
}

func TestQueryIDFs(t *testing.T) {
	s, _ := corpus()
	normalized, idfs := s.QueryIDFs([]string{"Internet", "POOL", "internet", ""})
	if len(normalized) != 2 || normalized[0] != "internet" || normalized[1] != "pool" {
		t.Errorf("normalized = %v", normalized)
	}
	if len(idfs) != 2 || idfs[0] != s.IDF("internet") || idfs[1] != s.IDF("pool") {
		t.Errorf("idfs = %v", idfs)
	}
}

func TestDistanceDiscountMonotone(t *testing.T) {
	c := DistanceDiscount{Scale: 100}
	// Non-increasing in distance.
	prev := math.Inf(1)
	for d := 0.0; d <= 1000; d += 50 {
		v := c.Combine(d, 1.0)
		if v > prev {
			t.Fatalf("f increased with distance at %g", d)
		}
		prev = v
	}
	// Non-decreasing in IR score.
	prev = -1
	for ir := 0.0; ir <= 10; ir += 0.5 {
		v := c.Combine(50, ir)
		if v < prev {
			t.Fatalf("f decreased with ir at %g", ir)
		}
		prev = v
	}
	// Zero-value defaults work.
	zero := DistanceDiscount{}
	if zero.Combine(0, 1) <= zero.Combine(1, 1) {
		t.Error("zero-value combiner not discounting")
	}
	// At zero relevance, closer still beats farther (epsilon floor).
	if zero.Combine(1, 0) <= zero.Combine(2, 0) {
		t.Error("epsilon floor missing: zero-relevance ties not broken by distance")
	}
}

func TestLinearCombinerMonotone(t *testing.T) {
	c := LinearCombiner{Alpha: 0.7, Scale: 10}
	if c.Combine(0, 5) <= c.Combine(100, 5) {
		t.Error("not decreasing in distance")
	}
	if c.Combine(10, 5) <= c.Combine(10, 1) {
		t.Error("not increasing in ir")
	}
	zero := LinearCombiner{}
	if zero.Combine(0, 2) <= zero.Combine(0, 1) {
		t.Error("zero-value alpha broken")
	}
}

func TestTopIDFPrefix(t *testing.T) {
	in := []float64{1, 3, 2}
	out := TopIDFPrefix(in)
	if out[0] != 3 || out[1] != 2 || out[2] != 1 {
		t.Errorf("TopIDFPrefix = %v", out)
	}
	if in[0] != 1 {
		t.Error("input mutated")
	}
}
