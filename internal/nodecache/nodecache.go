// Package nodecache provides the pinned decoded-node block cache behind the
// zero-allocation read hot path. An R-Tree/IR²-Tree node is decoded from its
// disk blocks once, into a packed single-allocation layout, and the cache
// keeps that decoded image keyed by the node's first BlockID so warm queries
// reuse it instead of re-decoding per visit.
//
// The cache is deliberately dumb about what it stores (a type parameter) and
// strict about how it behaves:
//
//   - deterministic: eviction is CLOCK (second chance) with a fixed hand, no
//     clocks, no randomness — two identical query traces leave two identical
//     caches, which keeps the modeled-disk-time benchmarks reproducible;
//   - no device I/O: the cache never touches storage. Callers read blocks
//     first, then consult or fill the cache, so no mutex here can ever stall
//     on a device (the lockio invariant now covers this package);
//   - explicitly invalidated: the mutation path calls Invalidate for every
//     node it rewrites or frees. The cache is an optimization layered over
//     the verify-on-hit protocol in internal/rtree, which re-reads the
//     node's blocks (paying the same modeled I/O as an uncached read) and
//     compares before trusting a cached image — so even a missed
//     invalidation cannot serve stale data, it only wastes a decode.
package nodecache

import (
	"sync"

	"spatialkeyword/internal/storage"
)

// DefaultCapacity is the node capacity used when a caller passes a
// non-positive capacity to New. At the paper's 4 KB blocks this pins on the
// order of a few MB of decoded nodes — the whole index, for the evaluation
// datasets at bench scale.
const DefaultCapacity = 1024

// Stats counts cache outcomes since the cache was created. Snapshot-read
// under the cache mutex; feed them to obs gauges, not tight loops.
type Stats struct {
	Hits          uint64 // Get found the node
	Misses        uint64 // Get did not find the node
	Evictions     uint64 // a resident node was displaced by CLOCK
	Invalidations uint64 // a resident node was dropped by the mutation path
}

type slot[V any] struct {
	id   storage.BlockID
	val  V
	ref  bool // CLOCK reference bit: touched since the hand last passed
	used bool
}

// Cache is a fixed-capacity CLOCK cache of decoded nodes keyed by their
// first BlockID. Safe for concurrent use; all operations are O(1) amortized
// and never perform I/O.
type Cache[V any] struct {
	mu    sync.Mutex
	slots []slot[V]
	index map[storage.BlockID]int
	hand  int
	stats Stats
}

// New returns an empty cache holding at most capacity nodes.
// Non-positive capacities fall back to DefaultCapacity.
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Cache[V]{
		slots: make([]slot[V], capacity),
		index: make(map[storage.BlockID]int, capacity),
	}
}

// Get returns the cached value for id, if resident.
func (c *Cache[V]) Get(id storage.BlockID) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.index[id]; ok {
		c.slots[i].ref = true
		c.stats.Hits++
		return c.slots[i].val, true
	}
	c.stats.Misses++
	var zero V
	return zero, false
}

// Put inserts or replaces the value for id, evicting the CLOCK victim when
// the cache is full.
func (c *Cache[V]) Put(id storage.BlockID, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.index[id]; ok {
		c.slots[i].val = val
		c.slots[i].ref = true
		return
	}
	i := c.victimLocked()
	c.slots[i] = slot[V]{id: id, val: val, ref: true, used: true}
	c.index[id] = i
}

// victimLocked advances the CLOCK hand to the next free or evictable slot.
func (c *Cache[V]) victimLocked() int {
	for {
		i := c.hand
		c.hand = (c.hand + 1) % len(c.slots)
		s := &c.slots[i]
		if !s.used {
			return i
		}
		if s.ref {
			s.ref = false
			continue
		}
		delete(c.index, s.id)
		c.stats.Evictions++
		var zero V
		s.val = zero
		s.used = false
		return i
	}
}

// Invalidate drops id from the cache if resident. The mutation path calls
// this for every node it rewrites or frees, before the new image hits disk.
func (c *Cache[V]) Invalidate(id storage.BlockID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if i, ok := c.index[id]; ok {
		delete(c.index, id)
		var zero V
		c.slots[i] = slot[V]{val: zero}
		c.stats.Invalidations++
	}
}

// Reset empties the cache, keeping its statistics.
func (c *Cache[V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := range c.slots {
		var zero V
		c.slots[i] = slot[V]{val: zero}
	}
	clear(c.index)
	c.hand = 0
}

// Len returns the number of resident nodes.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.index)
}

// Cap returns the capacity.
func (c *Cache[V]) Cap() int { return len(c.slots) }

// Stats returns a snapshot of the outcome counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}
