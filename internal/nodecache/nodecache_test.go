package nodecache

import (
	"testing"

	"spatialkeyword/internal/storage"
)

func TestGetPutInvalidate(t *testing.T) {
	c := New[int](4)
	if _, ok := c.Get(1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(1, 10)
	c.Put(2, 20)
	if v, ok := c.Get(1); !ok || v != 10 {
		t.Fatalf("Get(1) = %d,%v want 10,true", v, ok)
	}
	c.Put(1, 11) // replace
	if v, _ := c.Get(1); v != 11 {
		t.Fatalf("after replace Get(1) = %d want 11", v)
	}
	c.Invalidate(1)
	if _, ok := c.Get(1); ok {
		t.Fatal("invalidated entry still resident")
	}
	c.Invalidate(99) // absent: no-op
	s := c.Stats()
	if s.Hits != 2 || s.Invalidations != 1 {
		t.Fatalf("stats %+v: want 2 hits, 1 invalidation", s)
	}
	if c.Len() != 1 || c.Cap() != 4 {
		t.Fatalf("Len=%d Cap=%d, want 1,4", c.Len(), c.Cap())
	}
}

func TestClockEviction(t *testing.T) {
	c := New[int](2)
	c.Put(1, 10)
	c.Put(2, 20)
	c.Get(1) // re-reference 1 so 2 is the better victim... both have ref set by Put
	c.Put(3, 30)
	if c.Len() != 2 {
		t.Fatalf("Len = %d want 2", c.Len())
	}
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d want 1", c.Stats().Evictions)
	}
	// Fill far past capacity; the cache must stay bounded and keep working.
	for i := storage.BlockID(10); i < 100; i++ {
		c.Put(i, int(i))
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d want 2 after churn", c.Len())
	}
	if v, ok := c.Get(99); !ok || v != 99 {
		t.Fatalf("most recent entry missing: %d,%v", v, ok)
	}
}

// TestDeterministicEviction: the same operation sequence leaves the same
// resident set — no time, no randomness.
func TestDeterministicEviction(t *testing.T) {
	run := func() []storage.BlockID {
		c := New[int](8)
		for i := 0; i < 200; i++ {
			id := storage.BlockID(i%13 + 1)
			if _, ok := c.Get(id); !ok {
				c.Put(id, i)
			}
			if i%7 == 0 {
				c.Invalidate(storage.BlockID(i%5 + 1))
			}
		}
		var resident []storage.BlockID
		for id := storage.BlockID(1); id <= 13; id++ {
			if _, ok := c.Get(id); ok {
				resident = append(resident, id)
			}
		}
		return resident
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic resident set: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("non-deterministic resident set: %v vs %v", a, b)
		}
	}
}

func TestReset(t *testing.T) {
	c := New[string](0) // default capacity
	if c.Cap() != DefaultCapacity {
		t.Fatalf("Cap = %d want %d", c.Cap(), DefaultCapacity)
	}
	c.Put(1, "a")
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("Reset left residents")
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("Reset left entry 1")
	}
}
