//go:build !race

package objstore

import (
	"strings"
	"testing"

	"spatialkeyword/internal/geo"
)

// TestGetFilteredRejectAllocFree gates the hot path's candidate filter: once
// the scratch buffers are warm, loading and rejecting a false positive must
// not allocate at all — rejected candidates dominate a selective top-k
// query's object accesses. Skipped under -race (the detector breaks
// AllocsPerRun's accounting).
func TestGetFilteredRejectAllocFree(t *testing.T) {
	s, _ := newStore(128)
	_, p1, err := s.Append(geo.NewPoint(3, 4), "pizza cafe downtown bar")
	if err != nil {
		t.Fatal(err)
	}
	_, p2, err := s.Append(geo.NewPoint(5, 6), strings.Repeat("pool ocean view ", 30))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	var sc RowScratch
	reject := func([]byte) bool { return false }
	for _, ptr := range []Ptr{p1, p2} {
		if _, _, err := s.GetFiltered(ptr, &sc, reject); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, _, err := s.GetFiltered(p1, &sc, reject); err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.GetFiltered(p2, &sc, reject); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("warm rejected GetFiltered allocates %.1f objects/op, want 0", allocs)
	}
}
