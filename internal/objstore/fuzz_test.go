package objstore

import (
	"testing"

	"spatialkeyword/internal/geo"
)

// FuzzDecodeRow throws arbitrary bytes at the row parser: it must never
// panic, and any row it accepts must re-encode losslessly.
func FuzzDecodeRow(f *testing.F) {
	f.Add([]byte("1\t2\t25.4\t-80.1\tHotel A tennis court"))
	f.Add([]byte("0\t0\t\t"))
	f.Add([]byte("9\t3\t1\t2\t3\ttext with spaces"))
	f.Add([]byte(""))
	f.Add([]byte("\t\t\t\t\t\t"))
	f.Add([]byte("18446744073709551615\t1\t0\tx"))
	f.Fuzz(func(t *testing.T, row []byte) {
		obj, err := decodeRow(row)
		if err != nil {
			return
		}
		// Accepted rows round-trip (modulo sanitization, which the fuzz
		// input may violate but Append never produces).
		re := encodeRow(obj.ID, obj.Point, obj.Text)
		obj2, err := decodeRow(re[:len(re)-1])
		if err != nil {
			t.Fatalf("re-decode of accepted row failed: %v", err)
		}
		if obj2.ID != obj.ID || !obj2.Point.Equal(obj.Point) {
			t.Fatalf("round trip changed object: %+v vs %+v", obj, obj2)
		}
	})
}

// FuzzAppendGet drives the store with arbitrary text payloads.
func FuzzAppendGet(f *testing.F) {
	f.Add("plain text", 1.5, -2.5)
	f.Add("tabs\tand\nnewlines\x00nul", 0.0, 0.0)
	f.Add("", 1e300, -1e300)
	f.Fuzz(func(t *testing.T, text string, x, y float64) {
		s, _ := newStore(64)
		_, ptr, _ := s.Append(geo.NewPoint(x, y), text)
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		obj, err := s.Get(ptr)
		if err != nil {
			t.Fatalf("Get after Append: %v", err)
		}
		if obj.Text != sanitize(text) {
			t.Fatalf("text mangled: %q -> %q", text, obj.Text)
		}
	})
}
