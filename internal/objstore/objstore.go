// Package objstore implements the object file of the paper's evaluation:
// "the spatial objects are stored in a plain text file and the leaf nodes of
// the tree data structures store pointers to the object locations in the
// file" (Section 6).
//
// Objects are serialized as tab-delimited rows — id, dimension, coordinates,
// then the text document — packed back to back across disk blocks. An object
// pointer is the byte offset of its row; LoadObject reads the block holding
// that offset (one random access) plus however many consecutive blocks the
// row spills into (sequential accesses). This is exactly the cost model
// behind Table 1's "average # disk blocks per object" column: a Restaurants
// row fits in one block, a Hotels row typically spans two.
package objstore

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

// ID is a dense object identifier assigned in append order, starting at 0.
type ID uint64

// Ptr locates an object row: the byte offset of the row start in the file.
// This is the ObjPtr stored in R-Tree and IR²-Tree leaves.
type Ptr uint64

// Object is a spatial object T = (T.p, T.t): a location plus a text
// document (paper Section II).
type Object struct {
	ID    ID
	Point geo.Point
	Text  string
}

// ErrNotSynced is returned when reading a row that has not been flushed to
// the device yet.
var ErrNotSynced = errors.New("objstore: object not synced to device")

// ErrCorrupt is returned when a row fails to parse.
var ErrCorrupt = errors.New("objstore: corrupt row")

// Store is an append-only object file on a block device. Appends are
// buffered; call Sync before reading back. Store is not safe for concurrent
// writers; concurrent readers are safe once synced (reads go through the
// device, which serializes).
type Store struct {
	dev storage.Device

	blocks   []storage.BlockID // i-th file block -> device block
	synced   uint64            // bytes durably written
	tail     []byte            // bytes not yet flushed
	count    uint64            // number of objects appended
	ptrs     []Ptr             // object ID -> row offset (in-memory directory)
	blockSum uint64            // total blocks spanned by all rows (for stats)
}

// New returns an empty object store on dev.
func New(dev storage.Device) *Store {
	return &Store{dev: dev}
}

// NumObjects returns the number of appended objects.
func (s *Store) NumObjects() int { return int(s.count) }

// Device returns the store's block device (for I/O metering).
func (s *Store) Device() storage.Device { return s.dev }

// Ptrs returns the row pointer for every object, indexed by ID. The returned
// slice is owned by the store; callers must not modify it. Index builders
// use this to scan the file without re-deriving offsets.
func (s *Store) Ptrs() []Ptr { return s.ptrs }

// Append serializes obj (the ID field is ignored and assigned) and returns
// its assigned ID and row pointer. The text is sanitized: tabs and newlines
// become spaces, since rows are line-delimited.
//
// A non-nil error means the device rejected a block flush. The row itself
// is still buffered (the returned ID and Ptr remain valid), so a later
// Append or Sync retries the flush once the device recovers.
func (s *Store) Append(point geo.Point, text string) (ID, Ptr, error) {
	id := ID(s.count)
	ptr := Ptr(s.synced + uint64(len(s.tail)))
	row := encodeRow(id, point, text)
	s.tail = append(s.tail, row...)
	s.count++
	s.ptrs = append(s.ptrs, ptr)
	s.blockSum += uint64(s.rowBlockSpan(ptr, len(row)))
	if err := s.flushFullBlocks(); err != nil {
		return id, ptr, fmt.Errorf("objstore: append: %w", err)
	}
	return id, ptr, nil
}

// rowBlockSpan returns how many blocks a row starting at ptr with the given
// length touches.
func (s *Store) rowBlockSpan(ptr Ptr, length int) int {
	bs := uint64(s.dev.BlockSize())
	first := uint64(ptr) / bs
	last := (uint64(ptr) + uint64(length) - 1) / bs
	return int(last - first + 1)
}

// AvgBlocksPerObject returns the mean number of blocks a row spans — the
// last column of Table 1.
func (s *Store) AvgBlocksPerObject() float64 {
	if s.count == 0 {
		return 0
	}
	return float64(s.blockSum) / float64(s.count)
}

// flushFullBlocks writes every complete block sitting in the tail buffer.
// On error the unflushed bytes stay in the tail, so the flush is retryable.
func (s *Store) flushFullBlocks() error {
	bs := s.dev.BlockSize()
	for len(s.tail) >= bs {
		if err := s.appendBlock(s.tail[:bs]); err != nil {
			return err
		}
		s.tail = s.tail[bs:]
		s.synced += uint64(bs)
	}
	return nil
}

// appendBlock allocates the next file block and writes data into it. A
// failed write releases the allocation and leaves the file unchanged.
func (s *Store) appendBlock(data []byte) error {
	id := s.dev.Alloc()
	if id == storage.NilBlock {
		return fmt.Errorf("objstore: append: %w", storage.ErrDeviceFull)
	}
	if err := s.dev.Write(id, data); err != nil {
		s.dev.Free(id)
		return err
	}
	s.blocks = append(s.blocks, id)
	return nil
}

// Sync flushes the partially filled tail block, making all appended rows
// readable. The flushed block is sealed: the logical file is padded with
// zeros to the next block boundary, so row offsets keep mapping directly to
// block indexes. (Rows end in '\n' and padding is zero bytes, so readers
// never confuse padding for data.)
func (s *Store) Sync() error {
	if len(s.tail) == 0 {
		return nil
	}
	bs := s.dev.BlockSize()
	if len(s.tail) > bs {
		//skvet:ignore nopanic internal invariant: Put bounds the tail to one block
		panic("objstore: tail exceeds block size")
	}
	id := s.dev.Alloc()
	if id == storage.NilBlock {
		return fmt.Errorf("objstore: sync: %w", storage.ErrDeviceFull)
	}
	s.blocks = append(s.blocks, id)
	if err := s.dev.Write(id, s.tail); err != nil {
		s.blocks = s.blocks[:len(s.blocks)-1]
		s.dev.Free(id)
		return fmt.Errorf("objstore: sync: %w", err)
	}
	s.synced += uint64(bs) // seal: pad to block boundary
	s.tail = nil
	return nil
}

// Get loads the object whose row starts at ptr, reading the row's block(s)
// from the device. This is the LoadObject of the paper's algorithms; its
// I/O cost is one random access plus sequential accesses for any
// continuation blocks.
func (s *Store) Get(ptr Ptr) (Object, error) {
	if uint64(ptr) >= s.synced {
		return Object{}, fmt.Errorf("%w: offset %d >= synced %d", ErrNotSynced, ptr, s.synced)
	}
	bs := uint64(s.dev.BlockSize())
	blockIdx := uint64(ptr) / bs
	// Read blocks until the row's terminating newline appears.
	var row []byte
	offsetInBlock := uint64(ptr) % bs
	for {
		if blockIdx >= uint64(len(s.blocks)) {
			// The row starts in a synced block but its continuation is
			// still sitting in the tail buffer.
			return Object{}, fmt.Errorf("%w: row at %d continues past synced data", ErrNotSynced, ptr)
		}
		data, err := s.dev.Read(s.blocks[blockIdx])
		if err != nil {
			return Object{}, fmt.Errorf("objstore: get %d: %w", ptr, err)
		}
		chunk := data[offsetInBlock:]
		if i := indexByte(chunk, '\n'); i >= 0 {
			row = append(row, chunk[:i]...)
			break
		}
		row = append(row, chunk...)
		blockIdx++
		offsetInBlock = 0
	}
	obj, err := decodeRow(row)
	if err != nil {
		return Object{}, fmt.Errorf("row at %d: %w", ptr, err)
	}
	return obj, nil
}

// RowScratch holds the reusable buffers of GetFiltered. Once the buffers
// reach steady-state size, row fetches through the same scratch stop
// allocating — the point of the read hot path's candidate filter.
type RowScratch struct {
	block []byte
	row   []byte
}

// GetFiltered loads the row at ptr with Get's exact device-access pattern
// and error semantics, but materializes the Object only when accept returns
// true for the row's raw text field. The text slice aliases the scratch and
// must not be retained past accept's return. A top-k query's
// false-positive filter runs here: most signature-matched candidates fail
// the keyword check, and skipping their Object materialization (point
// slice, field split, row copy) is what keeps the warm read path's
// allocations per query bounded by survivors, not loads.
//
//skvet:hotpath
func (s *Store) GetFiltered(ptr Ptr, sc *RowScratch, accept func(text []byte) bool) (Object, bool, error) {
	if uint64(ptr) >= s.synced {
		return Object{}, false, fmt.Errorf("%w: offset %d >= synced %d", ErrNotSynced, ptr, s.synced)
	}
	bs := uint64(s.dev.BlockSize())
	if len(sc.block) != int(bs) {
		//skvet:ignore hotalloc one-time scratch warm-up, amortized across a query's loads
		sc.block = make([]byte, bs)
	}
	blockIdx := uint64(ptr) / bs
	offsetInBlock := uint64(ptr) % bs
	sc.row = sc.row[:0]
	for {
		if blockIdx >= uint64(len(s.blocks)) {
			return Object{}, false, fmt.Errorf("%w: row at %d continues past synced data", ErrNotSynced, ptr)
		}
		if err := storage.ReadRunTo(s.dev, s.blocks[blockIdx], 1, sc.block); err != nil {
			return Object{}, false, fmt.Errorf("objstore: get %d: %w", ptr, err)
		}
		chunk := sc.block[offsetInBlock:]
		if i := indexByte(chunk, '\n'); i >= 0 {
			sc.row = append(sc.row, chunk[:i]...)
			break
		}
		sc.row = append(sc.row, chunk...)
		blockIdx++
		offsetInBlock = 0
	}
	if text, ok := rowText(sc.row); ok {
		if !accept(text) {
			return Object{}, false, nil
		}
	}
	// Survivor — or a malformed row, which decodeRow diagnoses properly.
	obj, err := decodeRow(sc.row)
	if err != nil {
		return Object{}, false, fmt.Errorf("row at %d: %w", ptr, err)
	}
	return obj, true, nil
}

// rowText locates the text field of a serialized row without allocating:
// skip the id and dimension fields, then dim coordinate fields. The text
// itself contains no tabs (sanitize strips them on append), so it runs to
// the end of the row. ok is false for rows that do not parse, which are
// left for decodeRow to diagnose.
//
//skvet:hotpath
func rowText(row []byte) ([]byte, bool) {
	i := indexByte(row, '\t') // id
	if i < 0 {
		return nil, false
	}
	rest := row[i+1:]
	j := indexByte(rest, '\t') // dimension
	if j < 1 {
		return nil, false
	}
	dim := 0
	for _, c := range rest[:j] {
		if c < '0' || c > '9' {
			return nil, false
		}
		dim = dim*10 + int(c-'0')
		if dim > 64 {
			return nil, false
		}
	}
	rest = rest[j+1:]
	for d := 0; d < dim; d++ {
		k := indexByte(rest, '\t')
		if k < 0 {
			return nil, false
		}
		rest = rest[k+1:]
	}
	if indexByte(rest, '\t') >= 0 {
		return nil, false
	}
	return rest, true
}

// GetBatch loads the objects at ptrs, in order, sharing fetched blocks
// between consecutive rows that live in the same block. A Restaurants-sized
// block holds dozens of rows, so a range query that batches its leaf hits
// through here pays one read per block instead of one per object. Error
// semantics match Get; on error the partial results are discarded.
func (s *Store) GetBatch(ptrs []Ptr) ([]Object, error) {
	out := make([]Object, 0, len(ptrs))
	bs := uint64(s.dev.BlockSize())
	var (
		cached    []byte
		cachedIdx uint64
		have      bool
		row       []byte
	)
	readBlock := func(idx uint64) ([]byte, error) {
		if have && idx == cachedIdx {
			return cached, nil
		}
		if idx >= uint64(len(s.blocks)) {
			return nil, fmt.Errorf("%w: block %d past synced data", ErrNotSynced, idx)
		}
		data, err := s.dev.Read(s.blocks[idx])
		if err != nil {
			return nil, err
		}
		cached, cachedIdx, have = data, idx, true
		return data, nil
	}
	for _, ptr := range ptrs {
		if uint64(ptr) >= s.synced {
			return nil, fmt.Errorf("%w: offset %d >= synced %d", ErrNotSynced, ptr, s.synced)
		}
		blockIdx := uint64(ptr) / bs
		offsetInBlock := uint64(ptr) % bs
		row = row[:0]
		for {
			data, err := readBlock(blockIdx)
			if err != nil {
				return nil, fmt.Errorf("objstore: get %d: %w", ptr, err)
			}
			chunk := data[offsetInBlock:]
			if i := indexByte(chunk, '\n'); i >= 0 {
				row = append(row, chunk[:i]...)
				break
			}
			row = append(row, chunk...)
			blockIdx++
			offsetInBlock = 0
		}
		obj, err := decodeRow(row)
		if err != nil {
			return nil, fmt.Errorf("row at %d: %w", ptr, err)
		}
		out = append(out, obj)
	}
	return out, nil
}

// GetByID loads object id via the in-memory pointer directory.
func (s *Store) GetByID(id ID) (Object, error) {
	if uint64(id) >= s.count {
		return Object{}, fmt.Errorf("objstore: no object %d", id)
	}
	return s.Get(s.ptrs[id])
}

// Scan calls fn for every stored object in append order. It stops early and
// returns fn's error if non-nil. Scan performs device reads (it is how index
// builders pay for reading the file once).
func (s *Store) Scan(fn func(Object, Ptr) error) error {
	for id := uint64(0); id < s.count; id++ {
		if uint64(s.ptrs[id]) >= s.synced {
			return fmt.Errorf("%w: object %d", ErrNotSynced, id)
		}
		obj, err := s.Get(s.ptrs[id])
		if err != nil {
			return err
		}
		if err := fn(obj, s.ptrs[id]); err != nil {
			return err
		}
	}
	return nil
}

// SizeBytes returns the file's on-disk footprint.
func (s *Store) SizeBytes() int64 {
	return int64(len(s.blocks)) * int64(s.dev.BlockSize())
}

// SizeMB returns the footprint in megabytes (10^6 bytes).
func (s *Store) SizeMB() float64 { return float64(s.SizeBytes()) / 1e6 }

// encodeRow renders "id \t dim \t c1 .. cd \t text \n" with text sanitized.
func encodeRow(id ID, p geo.Point, text string) []byte {
	var b strings.Builder
	b.Grow(len(text) + 64)
	b.WriteString(strconv.FormatUint(uint64(id), 10))
	b.WriteByte('\t')
	b.WriteString(strconv.Itoa(len(p)))
	for _, c := range p {
		b.WriteByte('\t')
		b.WriteString(strconv.FormatFloat(c, 'g', -1, 64))
	}
	b.WriteByte('\t')
	b.WriteString(sanitize(text))
	b.WriteByte('\n')
	return []byte(b.String())
}

// decodeRow parses a row (without its trailing newline).
func decodeRow(row []byte) (Object, error) {
	fields := strings.Split(string(row), "\t")
	if len(fields) < 3 {
		return Object{}, fmt.Errorf("%w: %d fields", ErrCorrupt, len(fields))
	}
	id, err := strconv.ParseUint(fields[0], 10, 64)
	if err != nil {
		return Object{}, fmt.Errorf("%w: bad id %q", ErrCorrupt, fields[0])
	}
	dim, err := strconv.Atoi(fields[1])
	if err != nil || dim < 0 {
		return Object{}, fmt.Errorf("%w: bad dimension %q", ErrCorrupt, fields[1])
	}
	if len(fields) != dim+3 {
		return Object{}, fmt.Errorf("%w: want %d fields, have %d", ErrCorrupt, dim+3, len(fields))
	}
	p := make(geo.Point, dim)
	for i := 0; i < dim; i++ {
		p[i], err = strconv.ParseFloat(fields[2+i], 64)
		if err != nil {
			return Object{}, fmt.Errorf("%w: bad coordinate %q", ErrCorrupt, fields[2+i])
		}
	}
	return Object{ID: ID(id), Point: p, Text: fields[dim+2]}, nil
}

// sanitize replaces row delimiters — and NUL, which marks sealed-block
// padding during directory rebuilds — in free text with spaces.
func sanitize(text string) string {
	return strings.Map(func(r rune) rune {
		if r == '\t' || r == '\n' || r == '\r' || r == 0 {
			return ' '
		}
		return r
	}, text)
}

// indexByte is bytes.IndexByte without importing bytes for one call site.
func indexByte(b []byte, c byte) int {
	for i, x := range b {
		if x == c {
			return i
		}
	}
	return -1
}
