package objstore

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

func newStore(blockSize int) (*Store, *storage.Disk) {
	d := storage.NewDisk(blockSize)
	return New(d), d
}

func TestAppendGetRoundTrip(t *testing.T) {
	s, _ := newStore(128)
	type row struct {
		p    geo.Point
		text string
	}
	rows := []row{
		{geo.NewPoint(25.4, -80.1), "Hotel A tennis court, gift shop, spa, Internet"},
		{geo.NewPoint(47.3, -122.2), "Hotel B wireless Internet, pool, golf course"},
		{geo.NewPoint(-33.2, -70.4), "Hotel G Internet, airport transportation, pool"},
	}
	var ptrs []Ptr
	for _, r := range rows {
		id, ptr, _ := s.Append(r.p, r.text)
		if int(id) != len(ptrs) {
			t.Fatalf("id = %d, want %d", id, len(ptrs))
		}
		ptrs = append(ptrs, ptr)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		obj, err := s.Get(ptrs[i])
		if err != nil {
			t.Fatalf("Get(%d): %v", ptrs[i], err)
		}
		if obj.ID != ID(i) || !obj.Point.Equal(r.p) || obj.Text != r.text {
			t.Errorf("object %d = %+v, want %+v", i, obj, r)
		}
		byID, err := s.GetByID(ID(i))
		if err != nil {
			t.Fatal(err)
		}
		if byID.Text != r.text {
			t.Errorf("GetByID mismatch")
		}
	}
}

func TestGetBeforeSyncFails(t *testing.T) {
	s, _ := newStore(128)
	_, ptr, _ := s.Append(geo.NewPoint(1, 2), "tiny")
	if _, err := s.Get(ptr); !errors.Is(err, ErrNotSynced) {
		t.Errorf("err = %v, want ErrNotSynced", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ptr); err != nil {
		t.Errorf("after sync: %v", err)
	}
}

func TestMultiBlockRow(t *testing.T) {
	s, d := newStore(64)
	long := strings.Repeat("amenity ", 50) // ~400 bytes, spans many 64-byte blocks
	_, ptr, _ := s.Append(geo.NewPoint(0, 0), long)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	d.ResetStats()
	obj, err := s.Get(ptr)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Text != long {
		t.Error("long text corrupted")
	}
	st := d.Stats()
	if st.RandomReads != 1 {
		t.Errorf("random reads = %d, want 1", st.RandomReads)
	}
	if st.SequentialReads < 5 {
		t.Errorf("sequential reads = %d, want >= 5 for a %d-byte row", st.SequentialReads, len(long))
	}
	if got := s.AvgBlocksPerObject(); got < 6 {
		t.Errorf("AvgBlocksPerObject = %g, want >= 6", got)
	}
}

func TestRowSpanningSyncBoundary(t *testing.T) {
	// A row partially flushed by full-block flushing but not synced must
	// report ErrNotSynced, then read fine after Sync.
	s, _ := newStore(64)
	_, p1, _ := s.Append(geo.NewPoint(1, 1), strings.Repeat("x", 100))
	if _, err := s.Get(p1); !errors.Is(err, ErrNotSynced) {
		t.Errorf("err = %v, want ErrNotSynced", err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	obj, err := s.Get(p1)
	if err != nil {
		t.Fatal(err)
	}
	if len(obj.Text) != 100 {
		t.Errorf("text length %d", len(obj.Text))
	}
}

func TestAppendAfterSync(t *testing.T) {
	// Sync seals the block; later rows must still be addressable.
	s, _ := newStore(64)
	_, p1, _ := s.Append(geo.NewPoint(1, 1), "first")
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	_, p2, _ := s.Append(geo.NewPoint(2, 2), "second")
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		ptr  Ptr
		text string
	}{{p1, "first"}, {p2, "second"}} {
		obj, err := s.Get(tc.ptr)
		if err != nil {
			t.Fatal(err)
		}
		if obj.Text != tc.text {
			t.Errorf("Get(%d).Text = %q, want %q", tc.ptr, obj.Text, tc.text)
		}
	}
	if p2%64 != 0 {
		t.Errorf("post-sync row not block aligned: %d", p2)
	}
}

func TestSanitization(t *testing.T) {
	s, _ := newStore(128)
	_, ptr, _ := s.Append(geo.NewPoint(0, 0), "tabs\tand\nnewlines\r!")
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	obj, err := s.Get(ptr)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Text != "tabs and newlines !" {
		t.Errorf("sanitized text = %q", obj.Text)
	}
}

func TestScan(t *testing.T) {
	s, _ := newStore(64)
	const n = 20
	for i := 0; i < n; i++ {
		s.Append(geo.NewPoint(float64(i), 0), fmt.Sprintf("object number %d", i))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	var seen int
	err := s.Scan(func(o Object, p Ptr) error {
		if int(o.ID) != seen {
			return fmt.Errorf("out of order: %d at position %d", o.ID, seen)
		}
		if o.Point[0] != float64(seen) {
			return fmt.Errorf("bad point for %d", seen)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Errorf("scanned %d, want %d", seen, n)
	}
	// Early stop.
	count := 0
	stop := errors.New("stop")
	err = s.Scan(func(Object, Ptr) error {
		count++
		if count == 5 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || count != 5 {
		t.Errorf("early stop: err=%v count=%d", err, count)
	}
}

func TestScanUnsyncedFails(t *testing.T) {
	s, _ := newStore(64)
	s.Append(geo.NewPoint(0, 0), "x")
	if err := s.Scan(func(Object, Ptr) error { return nil }); !errors.Is(err, ErrNotSynced) {
		t.Errorf("err = %v, want ErrNotSynced", err)
	}
}

func TestGetByIDOutOfRange(t *testing.T) {
	s, _ := newStore(64)
	if _, err := s.GetByID(0); err == nil {
		t.Error("expected error for empty store")
	}
}

func TestCorruptRow(t *testing.T) {
	s, d := newStore(64)
	_, ptr, _ := s.Append(geo.NewPoint(1, 2), "fine")
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	// Overwrite the row's block with garbage that still has a newline.
	blk := s.blocks[0]
	if err := d.Write(blk, []byte("not\ta\tvalid\trow\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ptr); !errors.Is(err, ErrCorrupt) {
		t.Errorf("err = %v, want ErrCorrupt", err)
	}
}

func TestDecodeRowErrors(t *testing.T) {
	tests := []struct {
		name string
		row  string
	}{
		{"too few fields", "1\t2"},
		{"bad id", "abc\t2\t1\t2\ttext"},
		{"bad dim", "1\tx\t1\t2\ttext"},
		{"dim mismatch", "1\t3\t1\t2\ttext"},
		{"bad coord", "1\t2\t1\tzz\ttext"},
		{"negative dim", "1\t-1\ttext"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := decodeRow([]byte(tt.row)); !errors.Is(err, ErrCorrupt) {
				t.Errorf("decodeRow(%q) err = %v, want ErrCorrupt", tt.row, err)
			}
		})
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		dim := 1 + rng.Intn(4)
		p := make(geo.Point, dim)
		for j := range p {
			p[j] = rng.NormFloat64() * 100
		}
		text := fmt.Sprintf("random text %d with words %d", rng.Int63(), rng.Int63())
		row := encodeRow(ID(i), p, text)
		obj, err := decodeRow(row[:len(row)-1]) // strip newline
		if err != nil {
			t.Fatalf("decode failed: %v", err)
		}
		if obj.ID != ID(i) || !obj.Point.Equal(p) || obj.Text != text {
			t.Fatalf("round trip mismatch: %+v", obj)
		}
	}
}

func TestReadFaultPropagates(t *testing.T) {
	s, d := newStore(64)
	_, ptr, _ := s.Append(geo.NewPoint(1, 1), "x")
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("io fault")
	d.SetFault(func(op storage.Op, id storage.BlockID) error {
		if op == storage.OpRead {
			return boom
		}
		return nil
	})
	if _, err := s.Get(ptr); !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped fault", err)
	}
}

func TestSyncFaultPropagates(t *testing.T) {
	s, d := newStore(64)
	s.Append(geo.NewPoint(1, 1), "x")
	boom := errors.New("write fault")
	d.SetFault(func(op storage.Op, id storage.BlockID) error {
		if op == storage.OpWrite {
			return boom
		}
		return nil
	})
	if err := s.Sync(); !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped fault", err)
	}
	// Clearing the fault allows a retry to succeed.
	d.SetFault(nil)
	if err := s.Sync(); err != nil {
		t.Errorf("retry failed: %v", err)
	}
}

func TestSizeAccounting(t *testing.T) {
	s, _ := newStore(4096)
	if s.SizeBytes() != 0 || s.NumObjects() != 0 {
		t.Error("empty store size/count")
	}
	for i := 0; i < 100; i++ {
		s.Append(geo.NewPoint(float64(i), float64(i)), strings.Repeat("word ", 20))
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if s.NumObjects() != 100 {
		t.Errorf("NumObjects = %d", s.NumObjects())
	}
	if s.SizeBytes() <= 0 || s.SizeMB() != float64(s.SizeBytes())/1e6 {
		t.Error("size accounting inconsistent")
	}
	if avg := s.AvgBlocksPerObject(); avg < 1 {
		t.Errorf("AvgBlocksPerObject = %g", avg)
	}
}

// newFilteredFixture builds a synced store over a mix of single- and
// multi-block rows plus an empty-text row.
func newFilteredFixture(t *testing.T) (*Store, *storage.Disk, []Ptr) {
	t.Helper()
	s, d := newStore(128)
	texts := []string{
		"pizza cafe downtown",
		strings.Repeat("pool ocean view suite wifi ", 20), // spans blocks
		"",
		"CAFE Pizza pizza",
	}
	var ptrs []Ptr
	for i, text := range texts {
		_, ptr, err := s.Append(geo.NewPoint(float64(i), float64(-i)), text)
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, ptr)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	return s, d, ptrs
}

// TestGetFilteredMatchesGet is the differential oracle for the filtered
// loader: with an accept-everything filter, every row must come back
// identical to Get's object AND with identical device accounting — the
// filtered path exists to cut allocations, never I/O.
func TestGetFilteredMatchesGet(t *testing.T) {
	s, d, ptrs := newFilteredFixture(t)
	var sc RowScratch
	for i, ptr := range ptrs {
		d.ResetStats()
		want, err := s.Get(ptr)
		if err != nil {
			t.Fatal(err)
		}
		wantStats := d.Stats()
		d.ResetStats()
		var seen string
		got, ok, err := s.GetFiltered(ptr, &sc, func(text []byte) bool {
			seen = string(text)
			return true
		})
		if err != nil || !ok {
			t.Fatalf("row %d: GetFiltered ok=%v err=%v", i, ok, err)
		}
		if gotStats := d.Stats(); gotStats != wantStats {
			t.Errorf("row %d: device stats differ: Get %+v, GetFiltered %+v", i, wantStats, gotStats)
		}
		if got.ID != want.ID || !got.Point.Equal(want.Point) || got.Text != want.Text {
			t.Errorf("row %d: GetFiltered %+v, Get %+v", i, got, want)
		}
		if seen != want.Text {
			t.Errorf("row %d: accept saw %q, text is %q", i, seen, want.Text)
		}
	}
}

// TestGetFilteredReject checks a rejected candidate is skipped without an
// object and that the returned text still reaches the filter on reuse of
// the same scratch (no cross-row contamination).
func TestGetFilteredReject(t *testing.T) {
	s, d, ptrs := newFilteredFixture(t)
	var sc RowScratch
	d.ResetStats()
	obj, ok, err := s.GetFiltered(ptrs[0], &sc, func([]byte) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if ok || obj.Text != "" {
		t.Fatalf("rejected candidate materialized: ok=%v obj=%+v", ok, obj)
	}
	rejStats := d.Stats()
	d.ResetStats()
	if _, err := s.Get(ptrs[0]); err != nil {
		t.Fatal(err)
	}
	if getStats := d.Stats(); getStats != rejStats {
		t.Errorf("reject path stats %+v differ from Get's %+v", rejStats, getStats)
	}
	// Reusing the scratch across rows of different lengths stays correct.
	for pass := 0; pass < 2; pass++ {
		for i, ptr := range ptrs {
			want, err := s.Get(ptr)
			if err != nil {
				t.Fatal(err)
			}
			got, ok, err := s.GetFiltered(ptr, &sc, func(text []byte) bool {
				return len(text) == len(want.Text)
			})
			if err != nil || !ok {
				t.Fatalf("pass %d row %d: ok=%v err=%v", pass, i, ok, err)
			}
			if got.Text != want.Text {
				t.Errorf("pass %d row %d: text %q, want %q", pass, i, got.Text, want.Text)
			}
		}
	}
}

// TestGetFilteredErrors mirrors Get's error cases.
func TestGetFilteredErrors(t *testing.T) {
	s, _ := newStore(128)
	if _, _, err := s.Append(geo.NewPoint(1, 2), "unsynced"); err != nil {
		t.Fatal(err)
	}
	var sc RowScratch
	if _, _, err := s.GetFiltered(0, &sc, func([]byte) bool { return true }); !errors.Is(err, ErrNotSynced) {
		t.Errorf("unsynced read: err = %v", err)
	}
}

// TestRowText pins the zero-alloc text locator against encodeRow's layout,
// including rows it must refuse to shortcut.
func TestRowText(t *testing.T) {
	good := encodeRow(7, geo.NewPoint(1.5, -2.25), "wifi pool")
	text, ok := rowText(good[:len(good)-1])
	if !ok || string(text) != "wifi pool" {
		t.Fatalf("rowText = %q, %v", text, ok)
	}
	for _, bad := range []string{
		"",
		"7",
		"7\t",
		"7\tx\t1\t2\ttext",
		"7\t9999999999\ttext",
		"7\t2\t1.0\ttext", // fewer coords than dim
	} {
		if _, ok := rowText([]byte(bad)); ok {
			t.Errorf("rowText accepted %q", bad)
		}
	}
	// A row with tabs beyond the declared fields is left to decodeRow.
	if _, ok := rowText([]byte("7\t1\t1.0\ttext\twith\ttabs")); ok {
		t.Error("rowText accepted a row with stray tabs")
	}
}
