package objstore

import (
	"encoding/binary"
	"fmt"

	"spatialkeyword/internal/storage"
)

// Store persistence: Checkpoint writes the store's file map (its block list
// and synced length) into metadata blocks on the device; Open reads it back
// and rebuilds the in-memory row directory with one sequential scan of the
// data blocks. Together with storage.FileDisk this makes the object file
// durable across process restarts.

const storeStateMagic = 0x4f424a53 // "OBJS"

// Checkpoint persists the store's state and returns the metadata block to
// pass to Open. Buffered rows must be synced first (Checkpoint calls Sync).
func (s *Store) Checkpoint() (storage.BlockID, error) {
	if err := s.Sync(); err != nil {
		return storage.NilBlock, err
	}
	bs := s.dev.BlockSize()
	need := 4 + 8 + 8 + 8*len(s.blocks)
	nblocks := (need + bs - 1) / bs
	if nblocks == 0 {
		nblocks = 1
	}
	buf := make([]byte, need)
	binary.LittleEndian.PutUint32(buf[0:4], storeStateMagic)
	binary.LittleEndian.PutUint64(buf[4:12], s.synced)
	binary.LittleEndian.PutUint64(buf[12:20], uint64(len(s.blocks)))
	for i, id := range s.blocks {
		binary.LittleEndian.PutUint64(buf[20+8*i:], uint64(id))
	}
	meta := s.dev.AllocRun(nblocks)
	if meta == storage.NilBlock {
		return storage.NilBlock, fmt.Errorf("objstore: checkpoint: %w", storage.ErrDeviceFull)
	}
	if err := s.dev.WriteRun(meta, nblocks, buf); err != nil {
		return storage.NilBlock, fmt.Errorf("objstore: checkpoint: %w", err)
	}
	return meta, nil
}

// Open attaches to a checkpointed store on dev, rebuilding the row
// directory (object count, pointers, block statistics) with one sequential
// scan of the data blocks. The scan's reads are not counted against the
// device's statistics callers meter for queries — reset the stats after
// opening if exact accounting matters.
func Open(dev storage.Device, meta storage.BlockID) (*Store, error) {
	first, err := dev.Read(meta)
	if err != nil {
		return nil, fmt.Errorf("objstore: open: %w", err)
	}
	if binary.LittleEndian.Uint32(first[0:4]) != storeStateMagic {
		return nil, fmt.Errorf("objstore: block %d is not a store state block", meta)
	}
	synced := binary.LittleEndian.Uint64(first[4:12])
	count := binary.LittleEndian.Uint64(first[12:20])
	bs := dev.BlockSize()
	need := 4 + 8 + 8 + 8*int(count)
	nblocks := (need + bs - 1) / bs
	buf := first
	if nblocks > 1 {
		rest, err := dev.ReadRun(meta+1, nblocks-1)
		if err != nil {
			return nil, fmt.Errorf("objstore: open: %w", err)
		}
		buf = append(buf, rest...)
	}
	if need > len(buf) {
		return nil, fmt.Errorf("objstore: corrupt store state block %d", meta)
	}
	s := &Store{dev: dev, synced: synced}
	s.blocks = make([]storage.BlockID, count)
	for i := range s.blocks {
		s.blocks[i] = storage.BlockID(binary.LittleEndian.Uint64(buf[20+8*i:]))
	}
	if err := s.rebuildDirectory(); err != nil {
		return nil, err
	}
	return s, nil
}

// rebuildDirectory reads the synced data blocks once, sequentially, and
// re-derives the row pointers, object count, and block-span statistics by
// scanning for row terminators (a zero byte marks sealed-block padding;
// row text never contains NUL — see sanitize).
func (s *Store) rebuildDirectory() error {
	bs := s.dev.BlockSize()
	data := make([]byte, 0, len(s.blocks)*bs)
	for _, id := range s.blocks {
		blk, err := s.dev.Read(id)
		if err != nil {
			return fmt.Errorf("objstore: rebuild: %w", err)
		}
		data = append(data, blk...)
	}
	limit := int(s.synced)
	if limit > len(data) {
		return fmt.Errorf("%w: synced length %d exceeds %d stored bytes", ErrCorrupt, limit, len(data))
	}
	off := 0
	for off < limit {
		if data[off] == 0 {
			// Sealed-block padding: the next row starts at a block boundary.
			off = (off/bs + 1) * bs
			continue
		}
		idx := indexByte(data[off:limit], '\n')
		if idx < 0 {
			return fmt.Errorf("%w: unterminated row at %d during rebuild", ErrCorrupt, off)
		}
		s.ptrs = append(s.ptrs, Ptr(off))
		s.count++
		s.blockSum += uint64(s.rowBlockSpan(Ptr(off), idx+1))
		off += idx + 1
	}
	return nil
}
