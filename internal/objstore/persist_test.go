package objstore

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

func TestCheckpointOpenInMemory(t *testing.T) {
	dev := storage.NewDisk(128)
	s := New(dev)
	type row struct {
		p    geo.Point
		text string
	}
	rows := []row{
		{geo.NewPoint(1, 2), "alpha beta"},
		{geo.NewPoint(3, 4), strings.Repeat("long ", 60)}, // multi-block
		{geo.NewPoint(5, 6), "short"},
	}
	for _, r := range rows {
		s.Append(r.p, r.text)
	}
	// Sync mid-way to create sealed-block padding, then append more.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s.Append(geo.NewPoint(7, 8), "after the seal")
	meta, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}

	r2, err := Open(dev, meta)
	if err != nil {
		t.Fatal(err)
	}
	if r2.NumObjects() != 4 {
		t.Fatalf("reopened NumObjects = %d, want 4", r2.NumObjects())
	}
	for i := 0; i < 4; i++ {
		a, err := s.GetByID(ID(i))
		if err != nil {
			t.Fatal(err)
		}
		b, err := r2.GetByID(ID(i))
		if err != nil {
			t.Fatal(err)
		}
		if a.Text != b.Text || !a.Point.Equal(b.Point) || a.ID != b.ID {
			t.Errorf("object %d mismatch: %+v vs %+v", i, a, b)
		}
		if s.Ptrs()[i] != r2.Ptrs()[i] {
			t.Errorf("pointer %d mismatch: %d vs %d", i, s.Ptrs()[i], r2.Ptrs()[i])
		}
	}
	if s.AvgBlocksPerObject() != r2.AvgBlocksPerObject() {
		t.Errorf("block stats mismatch: %g vs %g", s.AvgBlocksPerObject(), r2.AvgBlocksPerObject())
	}
	// The reopened store keeps accepting appends.
	_, ptr, _ := r2.Append(geo.NewPoint(9, 9), "appended after reopen")
	if err := r2.Sync(); err != nil {
		t.Fatal(err)
	}
	obj, err := r2.Get(ptr)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Text != "appended after reopen" || obj.ID != 4 {
		t.Errorf("post-reopen append: %+v", obj)
	}
}

func TestCheckpointOpenOnFileDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "objects.db")
	dev, err := storage.CreateFileDisk(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	s := New(dev)
	const n = 200
	for i := 0; i < n; i++ {
		s.Append(geo.NewPoint(float64(i), float64(-i)), fmt.Sprintf("object %d with words w%d", i, i%17))
	}
	meta, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}

	dev2, err := storage.OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer dev2.Close()
	s2, err := Open(dev2, meta)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumObjects() != n {
		t.Fatalf("NumObjects = %d", s2.NumObjects())
	}
	var seen int
	err = s2.Scan(func(o Object, p Ptr) error {
		if int(o.ID) != seen || o.Point[0] != float64(seen) {
			return fmt.Errorf("row %d corrupted: %+v", seen, o)
		}
		seen++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if seen != n {
		t.Errorf("scanned %d", seen)
	}
}

func TestOpenRejectsGarbageMeta(t *testing.T) {
	dev := storage.NewDisk(128)
	blk := dev.Alloc()
	if err := dev.Write(blk, []byte("garbage")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dev, blk); err == nil {
		t.Error("garbage meta accepted")
	}
}

func TestCheckpointEmptyStore(t *testing.T) {
	dev := storage.NewDisk(128)
	s := New(dev)
	meta, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(dev, meta)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumObjects() != 0 {
		t.Errorf("NumObjects = %d", r.NumObjects())
	}
}

func TestNulInTextSanitizedForRebuild(t *testing.T) {
	dev := storage.NewDisk(128)
	s := New(dev)
	s.Append(geo.NewPoint(1, 1), "has\x00nul")
	meta, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Open(dev, meta)
	if err != nil {
		t.Fatal(err)
	}
	obj, err := r.GetByID(0)
	if err != nil {
		t.Fatal(err)
	}
	if obj.Text != "has nul" {
		t.Errorf("text = %q", obj.Text)
	}
}
