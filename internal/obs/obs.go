// Package obs is the query-level observability layer: lock-free counters,
// gauges, and fixed-bucket histograms, a per-query metrics record
// (QueryMetrics), a registry that renders Prometheus text exposition and
// expvar-style JSON, and a structured slow-query log.
//
// The paper's whole evaluation (Section 6) is built on counting I/O —
// random vs. sequential page accesses per query — and this package makes
// those same signals, plus latency and signature pruning effectiveness,
// visible for live traffic: the engine populates one QueryMetrics per
// query from the traversal counters it already keeps (rtree trace
// counters, storage.Meter brackets) and hands it to a Sink exactly once,
// off the per-entry hot path. Every primitive uses atomic operations only;
// nothing here takes a mutex on the metric-update path.
package obs

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use. All methods are safe for concurrent use and lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to
// use. All methods are safe for concurrent use and lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds d (which may be negative).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is a gauge holding a float64 (seconds of lag, ratios, ...).
// The zero value is ready to use. All methods are safe for concurrent use
// and lock-free (the value is stored as float bits in a uint64).
type FloatGauge struct {
	bits atomic.Uint64
}

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram: observations are counted into the
// first bucket whose upper bound is >= the value, with an implicit +Inf
// bucket after the last bound. Bounds are fixed at construction, so
// Observe is a binary search plus two atomic adds — no locking, no
// allocation. The zero value is not usable; construct with NewHistogram.
type Histogram struct {
	bounds []float64       // strictly increasing upper bounds
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram with the given strictly increasing
// bucket upper bounds. It panics on empty or non-increasing bounds.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		//skvet:ignore nopanic documented constructor invariant
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			//skvet:ignore nopanic documented constructor invariant
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram, in a shape
// that marshals directly to JSON (the skbench -json artifacts embed it).
// Counts are per-bucket (not cumulative); Counts has one more entry than
// Bounds, the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Snapshot copies the histogram's current state. Concurrent Observes may
// or may not be included; each bucket value is individually consistent.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Mean returns the mean of the snapshot's observations (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// ExpBuckets returns n strictly increasing bounds starting at start and
// growing by factor: start, start*factor, start*factor², ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		//skvet:ignore nopanic documented constructor invariant
		panic("obs: ExpBuckets needs start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LatencyBuckets are default bounds for query wall latency in seconds:
// 100 µs up to ~13 s, doubling.
func LatencyBuckets() []float64 { return ExpBuckets(100e-6, 2, 18) }

// BlockBuckets are default bounds for per-query disk block counts:
// 1 up to 32768, doubling.
func BlockBuckets() []float64 { return ExpBuckets(1, 2, 16) }
