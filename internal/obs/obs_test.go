package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// <=1: 0.5, 1  <=2: 1.5, 2  <=4: 3, 4  +Inf: 100
	want := []uint64{2, 2, 2, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 7 {
		t.Fatalf("count = %d, want 7", s.Count)
	}
	if got, want := s.Sum, 0.5+1+1.5+2+3+4+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	if got := s.Mean(); math.Abs(got-112.0/7) > 1e-9 {
		t.Fatalf("mean = %g", got)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for _, bounds := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExpBuckets(1, 2, 10))
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(seed + i%17))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	s := h.Snapshot()
	var total uint64
	for _, c := range s.Counts {
		total += c
	}
	if total != workers*per {
		t.Fatalf("bucket total = %d, want %d", total, workers*per)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("buckets = %v, want %v", b, want)
		}
	}
	if len(LatencyBuckets()) == 0 || len(BlockBuckets()) == 0 {
		t.Fatal("default buckets empty")
	}
}

func TestMultiSink(t *testing.T) {
	var a, b int
	s := MultiSink(SinkFunc(func(QueryMetrics) { a++ }), nil, SinkFunc(func(QueryMetrics) { b++ }))
	s.RecordQuery(QueryMetrics{})
	if a != 1 || b != 1 {
		t.Fatalf("sinks called a=%d b=%d, want 1/1", a, b)
	}
}
