package obs

import "time"

// QueryMetrics is the per-query observability record: one is populated per
// engine query from the traversal counters the search already keeps
// (rtree's per-iterator expand/prune/enqueue counts, the object-store
// fetch counters, and a storage.Meter I/O bracket) and delivered to a Sink
// exactly once, after the query finishes — never per traversal step.
type QueryMetrics struct {
	// Op names the query kind: "topk", "ranked", "area", "stream".
	Op string
	// Shard is the shard index the record describes, or -1 for a
	// whole-engine (or unsharded) record. A sharded engine emits one
	// record per shard plus one aggregate record per query.
	Shard int
	// K is the requested result count (0 for streaming queries).
	K int
	// Keywords is the number of query keywords.
	Keywords int
	// Results is the number of results returned.
	Results int

	// NodesExpanded is the number of index nodes dequeued and loaded.
	NodesExpanded int
	// EntriesPruned is the number of entries dropped by the signature
	// check — subtrees or objects never visited.
	EntriesPruned int
	// NodesEnqueued and ObjectsEnqueued count entries that passed the
	// check and entered the priority queue.
	NodesEnqueued   int
	ObjectsEnqueued int
	// ObjectsFetched is the number of objects read from the object file.
	ObjectsFetched int
	// SigFalsePositives counts fetched objects whose signature matched
	// the query but whose text failed verification (emitted-then-rejected
	// false positives; pruned entries are never verified, so
	// EntriesPruned is their upper-bound complement).
	SigFalsePositives int

	// RandomBlocks and SequentialBlocks are the disk block accesses the
	// query performed, split as in the paper's Figures 9b/12b.
	RandomBlocks     uint64
	SequentialBlocks uint64

	// Latency is the query's wall time.
	Latency time.Duration
	// Err reports whether the query failed.
	Err bool
	// Degraded reports whether the answer is partial because one or more
	// shards were out of rotation (sharded aggregate records only).
	Degraded bool
}

// Sink receives one QueryMetrics per finished query. Implementations must
// be safe for concurrent use; the engine calls RecordQuery from whichever
// goroutine ran the query.
type Sink interface {
	RecordQuery(QueryMetrics)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(QueryMetrics)

// RecordQuery calls f(m).
func (f SinkFunc) RecordQuery(m QueryMetrics) { f(m) }

// MultiSink fans one record out to several sinks (nil entries are skipped).
func MultiSink(sinks ...Sink) Sink {
	return SinkFunc(func(m QueryMetrics) {
		for _, s := range sinks {
			if s != nil {
				s.RecordQuery(m)
			}
		}
	})
}
