package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name/value pair attached to a metric series.
type Label struct {
	Key, Value string
}

// L is shorthand for building a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	floatGaugeKind
	histogramKind
)

func (k metricKind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind, floatGaugeKind:
		// Prometheus has a single gauge type; the int/float split is an
		// implementation detail of this package.
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labelled instance of a metric family. Exactly one of
// c/g/fg/h is non-nil, matching the family kind.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	fg     *FloatGauge
	h      *Histogram
}

// family groups all series sharing a metric name.
type family struct {
	name, help string
	kind       metricKind
	bounds     []float64 // histogram families only
	keys       []string  // deterministic series ordering
	series     map[string]*series
}

// Registry names and aggregates metrics, and renders them as Prometheus
// text exposition format or expvar-style JSON. Get-or-create calls take a
// short lock; the returned Counter/Gauge/Histogram handles are lock-free,
// so hot paths should hold on to them rather than re-looking them up per
// event. A Registry is safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	names    []string // registration order
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders labels canonically (sorted by key) for series lookup.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String()
}

// get returns the series for (name, labels), creating the family and
// series on first use. It panics if the same name is reused with a
// different kind or help string — one family, one meaning.
func (r *Registry) get(name, help string, kind metricKind, bounds []float64, labels []Label) *series {
	key := labelKey(labels)
	r.mu.RLock()
	if f, ok := r.families[name]; ok {
		if s, ok := f.series[key]; ok {
			r.mu.RUnlock()
			if f.kind != kind {
				//skvet:ignore nopanic registration-time programming error, caught by the obsreg pass statically
				panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, f.kind))
			}
			return s
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	if f.kind != kind {
		//skvet:ignore nopanic registration-time programming error, caught by the obsreg pass statically
		panic(fmt.Sprintf("obs: metric %q re-registered as %v, was %v", name, kind, f.kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: append([]Label(nil), labels...)}
		switch kind {
		case counterKind:
			s.c = &Counter{}
		case gaugeKind:
			s.g = &Gauge{}
		case floatGaugeKind:
			s.fg = &FloatGauge{}
		case histogramKind:
			s.h = NewHistogram(f.bounds)
		}
		f.series[key] = s
		f.keys = append(f.keys, key)
		sort.Strings(f.keys)
	}
	return s
}

// Counter returns the counter series for (name, labels), registering it on
// first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.get(name, help, counterKind, nil, labels).c
}

// Gauge returns the gauge series for (name, labels), registering it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.get(name, help, gaugeKind, nil, labels).g
}

// FloatGauge returns the float-valued gauge series for (name, labels),
// registering it on first use.
func (r *Registry) FloatGauge(name, help string, labels ...Label) *FloatGauge {
	return r.get(name, help, floatGaugeKind, nil, labels).fg
}

// Histogram returns the histogram series for (name, labels), registering
// it on first use. The bounds of the first registration win for the whole
// family.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.get(name, help, histogramKind, bounds, labels).h
}

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// renderLabels formats {k="v",...}, with extra appended last (used for the
// histogram "le" label). Returns "" for no labels.
func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered metric in Prometheus text
// exposition format (version 0.0.4): HELP/TYPE headers, one line per
// sample, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range r.names {
		f := r.families[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, key := range f.keys {
			s := f.series[key]
			var err error
			switch f.kind {
			case counterKind:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels), s.c.Value())
			case gaugeKind:
				_, err = fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(s.labels), s.g.Value())
			case floatGaugeKind:
				_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(s.labels), formatFloat(s.fg.Value()))
			case histogramKind:
				err = writePromHistogram(w, f.name, s)
			}
			if err != nil {
				return err
			}
		}
	}
	return nil
}

func writePromHistogram(w io.Writer, name string, s *series) error {
	snap := s.h.Snapshot()
	var cum uint64
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		le := formatFloat(bound)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(s.labels, L("le", le)), cum); err != nil {
			return err
		}
	}
	cum += snap.Counts[len(snap.Counts)-1]
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, renderLabels(s.labels, L("le", "+Inf")), cum); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, renderLabels(s.labels), formatFloat(snap.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, renderLabels(s.labels), cum)
	return err
}

// WriteJSON renders every registered metric as one JSON object in the
// style of expvar: metric name → value for unlabelled series, metric name
// → {"k=\"v\"": value} for labelled ones; histograms render as their
// snapshots.
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.RLock()
	out := make(map[string]any, len(r.names))
	for name, f := range r.families {
		seriesVal := func(s *series) any {
			switch f.kind {
			case counterKind:
				return s.c.Value()
			case gaugeKind:
				return s.g.Value()
			case floatGaugeKind:
				return s.fg.Value()
			default:
				return s.h.Snapshot()
			}
		}
		if len(f.keys) == 1 && f.keys[0] == "" {
			out[name] = seriesVal(f.series[""])
			continue
		}
		m := make(map[string]any, len(f.keys))
		for _, key := range f.keys {
			m[key] = seriesVal(f.series[key])
		}
		out[name] = m
	}
	r.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// QueryRecorder is a Sink that aggregates QueryMetrics into a Registry
// under stable metric names:
//
//	sk_queries_total{op}                  queries finished, by kind
//	sk_query_errors_total{op}             queries that failed
//	sk_query_degraded_total{op}           partial answers (shards skipped)
//	sk_query_results_total{op}            results returned
//	sk_query_latency_seconds{op}          wall latency histogram
//	sk_query_random_blocks{op}            random blocks per query histogram
//	sk_query_nodes_expanded_total{shard}  index nodes loaded
//	sk_query_entries_pruned_total{shard}  entries dropped by signature
//	sk_query_objects_fetched_total{shard} objects read from the object file
//	sk_query_sig_false_positives_total{shard} fetched-then-rejected objects
//	sk_io_blocks_total{kind,shard}        disk blocks, random vs sequential
//
// Per-op families aggregate whole queries, so only whole-engine records
// (Shard < 0, rendered as shard="all") feed them; per-shard families take
// every record, keyed by the shard index, with the whole-engine record's
// series ("all") doubling as the engine-wide total.
type QueryRecorder struct {
	reg *Registry
}

// NewQueryRecorder returns a recorder aggregating into reg.
func NewQueryRecorder(reg *Registry) *QueryRecorder {
	return &QueryRecorder{reg: reg}
}

// Registry returns the backing registry.
func (q *QueryRecorder) Registry() *Registry { return q.reg }

// RecordQuery implements Sink.
func (q *QueryRecorder) RecordQuery(m QueryMetrics) {
	shard := "all"
	if m.Shard >= 0 {
		shard = strconv.Itoa(m.Shard)
	}
	sl := L("shard", shard)
	q.reg.Counter("sk_query_nodes_expanded_total", "Index nodes dequeued and loaded.", sl).Add(uint64(m.NodesExpanded))
	q.reg.Counter("sk_query_entries_pruned_total", "Entries dropped by the signature check.", sl).Add(uint64(m.EntriesPruned))
	q.reg.Counter("sk_query_objects_fetched_total", "Objects read from the object file.", sl).Add(uint64(m.ObjectsFetched))
	q.reg.Counter("sk_query_sig_false_positives_total", "Fetched objects rejected by text verification.", sl).Add(uint64(m.SigFalsePositives))
	q.reg.Counter("sk_io_blocks_total", "Disk block accesses by kind.", L("kind", "random"), sl).Add(m.RandomBlocks)
	q.reg.Counter("sk_io_blocks_total", "Disk block accesses by kind.", L("kind", "sequential"), sl).Add(m.SequentialBlocks)

	if m.Shard >= 0 {
		return // per-shard slice of a query; op-level families take the aggregate record
	}
	op := m.Op
	if op == "" {
		op = "unknown"
	}
	ol := L("op", op)
	q.reg.Counter("sk_queries_total", "Queries finished, by kind.", ol).Inc()
	if m.Err {
		q.reg.Counter("sk_query_errors_total", "Queries that returned an error.", ol).Inc()
	}
	if m.Degraded {
		q.reg.Counter("sk_query_degraded_total", "Queries answered partially with shards out of rotation.", ol).Inc()
	}
	q.reg.Counter("sk_query_results_total", "Results returned.", ol).Add(uint64(m.Results))
	q.reg.Histogram("sk_query_latency_seconds", "Query wall latency.", LatencyBuckets(), ol).Observe(m.Latency.Seconds())
	q.reg.Histogram("sk_query_random_blocks", "Random disk blocks per query.", BlockBuckets(), ol).Observe(float64(m.RandomBlocks))
}
