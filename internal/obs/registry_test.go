package obs

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("reqs_total", "requests", L("ep", "search"))
	c2 := r.Counter("reqs_total", "requests", L("ep", "search"))
	if c1 != c2 {
		t.Fatal("same name+labels returned different counters")
	}
	c3 := r.Counter("reqs_total", "requests", L("ep", "ranked"))
	if c1 == c3 {
		t.Fatal("different labels returned the same counter")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "")
}

// parsePromText is a minimal Prometheus text-format parser: it validates
// the line grammar the tests rely on and returns sample name+labels → value.
func parsePromText(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	types := map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("bad metric type in %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		key, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("bad sample value in %q: %v", line, err)
		}
		name := key
		if i := strings.IndexByte(key, '{'); i >= 0 {
			if !strings.HasSuffix(key, "}") {
				t.Fatalf("unterminated label set: %q", line)
			}
			name = key[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := types[name]; !ok {
			if _, ok := types[base]; !ok {
				t.Fatalf("sample %q has no TYPE header", line)
			}
		}
		out[key] = val
	}
	return out
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sk_requests_total", "requests served", L("ep", "search")).Add(3)
	r.Gauge("sk_up", "liveness").Set(1)
	h := r.Histogram("sk_latency_seconds", "latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, buf.String())

	if got := samples[`sk_requests_total{ep="search"}`]; got != 3 {
		t.Fatalf("counter sample = %v, want 3", got)
	}
	if got := samples["sk_up"]; got != 1 {
		t.Fatalf("gauge sample = %v, want 1", got)
	}
	// Histogram buckets are cumulative.
	for key, want := range map[string]float64{
		`sk_latency_seconds_bucket{le="0.01"}`: 1,
		`sk_latency_seconds_bucket{le="0.1"}`:  1,
		`sk_latency_seconds_bucket{le="1"}`:    2,
		`sk_latency_seconds_bucket{le="+Inf"}`: 3,
		`sk_latency_seconds_count`:             3,
	} {
		if got := samples[key]; got != want {
			t.Fatalf("%s = %v, want %v\n%s", key, got, want, buf.String())
		}
	}
	if got := samples["sk_latency_seconds_sum"]; got < 5.5 || got > 5.51 {
		t.Fatalf("histogram sum = %v, want ~5.505", got)
	}
}

func TestWritePrometheusEscapesLabels(t *testing.T) {
	r := NewRegistry()
	r.Counter("sk_x_total", "", L("q", "a\"b\\c\nd")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `sk_x_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("output %q does not contain %q", buf.String(), want)
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("sk_plain_total", "").Add(2)
	r.Counter("sk_labelled_total", "", L("op", "topk")).Add(4)
	r.Histogram("sk_h", "", []float64{1}).Observe(0.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if string(m["sk_plain_total"]) != "2" {
		t.Fatalf("plain counter = %s, want 2", m["sk_plain_total"])
	}
	var labelled map[string]uint64
	if err := json.Unmarshal(m["sk_labelled_total"], &labelled); err != nil {
		t.Fatal(err)
	}
	if labelled[`op="topk"`] != 4 {
		t.Fatalf("labelled counter = %v", labelled)
	}
	var hist HistogramSnapshot
	if err := json.Unmarshal(m["sk_h"], &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Count != 1 {
		t.Fatalf("histogram snapshot count = %d, want 1", hist.Count)
	}
}

func TestQueryRecorder(t *testing.T) {
	reg := NewRegistry()
	rec := NewQueryRecorder(reg)
	// Whole-engine record feeds op-level and shard="all" families.
	rec.RecordQuery(QueryMetrics{
		Op: "topk", Shard: -1, K: 10, Keywords: 2, Results: 10,
		NodesExpanded: 5, EntriesPruned: 40, ObjectsFetched: 12, SigFalsePositives: 2,
		RandomBlocks: 17, SequentialBlocks: 3, Latency: 2 * time.Millisecond,
	})
	// Per-shard slice feeds only shard-labelled families.
	rec.RecordQuery(QueryMetrics{Op: "topk", Shard: 1, NodesExpanded: 3, RandomBlocks: 9})

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, buf.String())
	for key, want := range map[string]float64{
		`sk_queries_total{op="topk"}`:                       1,
		`sk_query_results_total{op="topk"}`:                 10,
		`sk_query_nodes_expanded_total{shard="all"}`:        5,
		`sk_query_nodes_expanded_total{shard="1"}`:          3,
		`sk_query_entries_pruned_total{shard="all"}`:        40,
		`sk_query_sig_false_positives_total{shard="all"}`:   2,
		`sk_io_blocks_total{kind="random",shard="all"}`:     17,
		`sk_io_blocks_total{kind="random",shard="1"}`:       9,
		`sk_io_blocks_total{kind="sequential",shard="all"}`: 3,
		`sk_query_latency_seconds_count{op="topk"}`:         1,
	} {
		if got := samples[key]; got != want {
			t.Fatalf("%s = %v, want %v\n%s", key, got, want, buf.String())
		}
	}
	// The per-shard record must not count as a finished query.
	if got := samples[`sk_queries_total{op="topk"}`]; got != 1 {
		t.Fatalf("queries_total = %v, want 1", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	rec := NewQueryRecorder(reg)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				rec.RecordQuery(QueryMetrics{Op: "topk", Shard: -1, RandomBlocks: 1, Latency: time.Millisecond})
				rec.RecordQuery(QueryMetrics{Op: "topk", Shard: i % 4, RandomBlocks: 1})
			}
		}(w)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Errorf("WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	samples := parsePromText(t, buf.String())
	if got := samples[`sk_queries_total{op="topk"}`]; got != 8*200 {
		t.Fatalf("queries_total = %v, want %d", got, 8*200)
	}
}
