package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// SlowLog is a Sink that writes one structured JSON line per query slower
// than a threshold. Lines look like:
//
//	{"t":"2026-08-06T12:00:00Z","op":"topk","latency_ms":61.2,"k":10,
//	 "keywords":2,"results":10,"nodes_expanded":41,"entries_pruned":380,
//	 "objects_fetched":12,"sig_false_positives":2,
//	 "random_blocks":53,"sequential_blocks":7,"err":false}
//
// The writer is guarded by a mutex (line-atomicity), but queries under the
// threshold never touch it. A zero threshold logs every query.
type SlowLog struct {
	threshold time.Duration
	mu        sync.Mutex
	w         io.Writer
	dropped   Counter // lines lost to write errors
}

// NewSlowLog returns a slow-query log writing to w.
func NewSlowLog(w io.Writer, threshold time.Duration) *SlowLog {
	return &SlowLog{w: w, threshold: threshold}
}

// slowEntry is the JSON shape of one slow-query line.
type slowEntry struct {
	Time              string  `json:"t"`
	Op                string  `json:"op"`
	Shard             *int    `json:"shard,omitempty"`
	LatencyMS         float64 `json:"latency_ms"`
	K                 int     `json:"k"`
	Keywords          int     `json:"keywords"`
	Results           int     `json:"results"`
	NodesExpanded     int     `json:"nodes_expanded"`
	EntriesPruned     int     `json:"entries_pruned"`
	ObjectsFetched    int     `json:"objects_fetched"`
	SigFalsePositives int     `json:"sig_false_positives"`
	RandomBlocks      uint64  `json:"random_blocks"`
	SequentialBlocks  uint64  `json:"sequential_blocks"`
	Err               bool    `json:"err,omitempty"`
}

// RecordQuery implements Sink: whole-engine records over the threshold are
// written as one JSON line; per-shard slices are skipped (the aggregate
// record carries the query's totals).
func (l *SlowLog) RecordQuery(m QueryMetrics) {
	if m.Shard >= 0 || m.Latency < l.threshold {
		return
	}
	e := slowEntry{
		Time:              time.Now().UTC().Format(time.RFC3339Nano),
		Op:                m.Op,
		LatencyMS:         float64(m.Latency) / float64(time.Millisecond),
		K:                 m.K,
		Keywords:          m.Keywords,
		Results:           m.Results,
		NodesExpanded:     m.NodesExpanded,
		EntriesPruned:     m.EntriesPruned,
		ObjectsFetched:    m.ObjectsFetched,
		SigFalsePositives: m.SigFalsePositives,
		RandomBlocks:      m.RandomBlocks,
		SequentialBlocks:  m.SequentialBlocks,
		Err:               m.Err,
	}
	line, err := json.Marshal(e)
	if err != nil {
		l.dropped.Inc()
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, err = l.w.Write(line)
	l.mu.Unlock()
	if err != nil {
		l.dropped.Inc()
	}
}

// Dropped reports how many lines were lost to marshal or write errors.
func (l *SlowLog) Dropped() uint64 { return l.dropped.Value() }
