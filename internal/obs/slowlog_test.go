package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestSlowLogThreshold(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 50*time.Millisecond)
	l.RecordQuery(QueryMetrics{Op: "topk", Shard: -1, Latency: 10 * time.Millisecond})
	if buf.Len() != 0 {
		t.Fatalf("fast query was logged: %q", buf.String())
	}
	l.RecordQuery(QueryMetrics{
		Op: "topk", Shard: -1, Latency: 60 * time.Millisecond,
		K: 5, Keywords: 2, Results: 5, NodesExpanded: 7, EntriesPruned: 12,
		ObjectsFetched: 6, SigFalsePositives: 1, RandomBlocks: 13, SequentialBlocks: 2,
	})
	line := strings.TrimSpace(buf.String())
	if line == "" {
		t.Fatal("slow query was not logged")
	}
	var e map[string]any
	if err := json.Unmarshal([]byte(line), &e); err != nil {
		t.Fatalf("line is not JSON: %v\n%s", err, line)
	}
	if e["op"] != "topk" || e["latency_ms"].(float64) != 60 {
		t.Fatalf("bad entry: %v", e)
	}
	if e["nodes_expanded"].(float64) != 7 || e["random_blocks"].(float64) != 13 {
		t.Fatalf("bad counters: %v", e)
	}
	if _, hasT := e["t"]; !hasT {
		t.Fatalf("entry missing timestamp: %v", e)
	}
}

func TestSlowLogSkipsShardSlices(t *testing.T) {
	var buf bytes.Buffer
	l := NewSlowLog(&buf, 0)
	l.RecordQuery(QueryMetrics{Op: "topk", Shard: 2, Latency: time.Second})
	if buf.Len() != 0 {
		t.Fatalf("per-shard record was logged: %q", buf.String())
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("boom") }

func TestSlowLogDropped(t *testing.T) {
	l := NewSlowLog(failWriter{}, 0)
	l.RecordQuery(QueryMetrics{Op: "topk", Shard: -1, Latency: time.Second})
	if got := l.Dropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
}
