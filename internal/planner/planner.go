// Package planner implements a cost-based query router over the structures
// the paper compares — an extension that operationalizes its Discussion
// (Section 6.B): "in the rare case where every query keyword appears in
// very few objects, the IIO method will be faster ... On the other extreme,
// if the query keywords appear in almost all objects, the R-Tree will
// excel." Rather than commit to one access path, the planner estimates the
// block cost of answering a given distance-first top-k query with the
// Inverted Index Only algorithm versus the IR²-Tree and runs the cheaper
// plan. Both estimates come from statistics that are free at plan time:
// keyword document frequencies (stored in the inverted index's dictionary)
// and corpus-level constants.
package planner

import (
	"fmt"
	"math"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/invindex"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/textutil"
)

// Choice identifies the access path a plan selected.
type Choice int

// The access paths the planner chooses between.
const (
	ChooseIR2 Choice = iota
	ChooseIIO
)

// String names the choice.
func (c Choice) String() string {
	if c == ChooseIIO {
		return "IIO"
	}
	return "IR2-Tree"
}

// Plan records a routing decision and the estimates behind it.
type Plan struct {
	Choice Choice
	// MinDF is the smallest document frequency among the query keywords.
	MinDF int
	// ExpectedMatches estimates how many objects satisfy the conjunction
	// (independence assumption).
	ExpectedMatches float64
	// CostIIO and CostIR2 are the estimated block-access costs.
	CostIIO, CostIR2 float64
}

// Planner routes distance-first top-k spatial keyword queries between an
// IR²-Tree and an inverted index built over the same object store.
type Planner struct {
	Tree  *core.IR2Tree
	Inv   *invindex.Index
	Store *objstore.Store

	// PostingsPerBlock estimates how many postings fit in one block
	// (varint-delta encoded ≈ 2 bytes each at 4 KB blocks). Zero means 2048.
	PostingsPerBlock int
	// BlocksPerObject estimates the cost of loading one object. Zero means
	// the store's measured average (at least 1).
	BlocksPerObject float64
}

// New returns a planner over the given structures.
func New(tree *core.IR2Tree, inv *invindex.Index, store *objstore.Store) *Planner {
	return &Planner{Tree: tree, Inv: inv, Store: store}
}

// Explain estimates both plans for a query without running either.
func (p *Planner) Explain(k int, keywords []string) Plan {
	kws := textutil.NormalizeAll(keywords)
	n := p.Store.NumObjects()
	perBlock := p.PostingsPerBlock
	if perBlock <= 0 {
		perBlock = 2048
	}
	objBlocks := p.BlocksPerObject
	if objBlocks <= 0 {
		objBlocks = math.Max(1, p.Store.AvgBlocksPerObject())
	}

	minDF := n
	selectivity := 1.0
	var postingBlocks float64
	for _, w := range kws {
		df := p.Inv.DocFreq(w)
		if df < minDF {
			minDF = df
		}
		if n > 0 {
			selectivity *= float64(df) / float64(n)
		}
		postingBlocks += math.Ceil(float64(df) / float64(perBlock))
	}
	if len(kws) == 0 {
		minDF = n
		selectivity = 1
	}
	expected := selectivity * float64(n)

	// IIO reads every keyword's posting list and loads every object of the
	// intersection, bounded above by the rarest list.
	expectedCandidates := math.Min(expected, float64(minDF))
	costIIO := postingBlocks + expectedCandidates*objBlocks

	// The IR²-Tree walks objects in distance order until k pass the
	// conjunctive filter: about k/selectivity candidate loads (capped at
	// the corpus), plus roughly one node read per leaf's worth of
	// candidates. Signature false positives inflate the candidate count; a
	// flat factor absorbs them.
	var scanned float64
	if selectivity > 0 {
		scanned = math.Min(float64(k)/selectivity, float64(n))
	} else {
		scanned = float64(n) // nothing matches: worst case, full traversal
	}
	fanout := float64(p.Tree.RTree().MaxEntries())
	nodeReads := scanned/math.Max(1, fanout) + float64(p.Tree.RTree().Height())
	costIR2 := scanned*objBlocks*1.2 + nodeReads

	plan := Plan{
		MinDF:           minDF,
		ExpectedMatches: expected,
		CostIIO:         costIIO,
		CostIR2:         costIR2,
	}
	if costIIO < costIR2 {
		plan.Choice = ChooseIIO
	}
	return plan
}

// TopK answers a distance-first top-k spatial keyword query through the
// cheaper estimated plan, returning the plan alongside the results.
func (p *Planner) TopK(k int, point geo.Point, keywords []string) ([]core.Result, Plan, error) {
	plan := p.Explain(k, keywords)
	switch plan.Choice {
	case ChooseIIO:
		res, _, err := invindex.TopK(p.Inv, p.Store, k, point, keywords)
		if err != nil {
			return nil, plan, fmt.Errorf("planner: iio path: %w", err)
		}
		out := make([]core.Result, len(res))
		for i, r := range res {
			out[i] = core.Result{Object: r.Object, Dist: r.Dist}
		}
		return out, plan, nil
	default:
		res, _, err := p.Tree.TopK(k, point, keywords)
		if err != nil {
			return nil, plan, fmt.Errorf("planner: ir2 path: %w", err)
		}
		return res, plan, nil
	}
}
