// Package planner implements a cost-based query router over the structures
// the paper compares — an extension that operationalizes its Discussion
// (Section 6.B): "in the rare case where every query keyword appears in
// very few objects, the IIO method will be faster ... On the other extreme,
// if the query keywords appear in almost all objects, the R-Tree will
// excel." Rather than commit to one access path, the planner estimates the
// block cost of answering a given distance-first top-k query with the
// Inverted Index Only algorithm versus the IR²-Tree and runs the cheaper
// plan.
//
// The estimates come from internal/skql's cost model — the one cost model
// in the repository; this package is a thin shim that feeds it the
// low-level structures (tree, inverted index, object store) directly where
// skql plans over whole engines.
package planner

import (
	"fmt"
	"math"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/invindex"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/skql"
	"spatialkeyword/internal/textutil"
)

// Choice identifies the access path a plan selected.
type Choice int

// The access paths the planner chooses between.
const (
	ChooseIR2 Choice = iota
	ChooseIIO
)

// String names the choice.
func (c Choice) String() string {
	if c == ChooseIIO {
		return "IIO"
	}
	return "IR2-Tree"
}

// Plan records a routing decision and the estimates behind it.
type Plan struct {
	Choice Choice
	// MinDF is the smallest document frequency among the query keywords.
	MinDF int
	// ExpectedMatches estimates how many objects satisfy the conjunction
	// (independence assumption).
	ExpectedMatches float64
	// CostIIO and CostIR2 are the estimated block-access costs.
	CostIIO, CostIR2 float64
}

// Planner routes distance-first top-k spatial keyword queries between an
// IR²-Tree and an inverted index built over the same object store.
type Planner struct {
	Tree  *core.IR2Tree
	Inv   *invindex.Index
	Store *objstore.Store

	// PostingsPerBlock estimates how many postings fit in one block
	// (varint-delta encoded ≈ 2 bytes each at 4 KB blocks). Zero means 2048.
	PostingsPerBlock int
	// BlocksPerObject estimates the cost of loading one object. Zero means
	// the store's measured average (at least 1).
	BlocksPerObject float64
}

// New returns a planner over the given structures.
func New(tree *core.IR2Tree, inv *invindex.Index, store *objstore.Store) *Planner {
	return &Planner{Tree: tree, Inv: inv, Store: store}
}

// inputs assembles the shared cost model's inputs from the planner's
// structures.
func (p *Planner) inputs() skql.CostInputs {
	objBlocks := p.BlocksPerObject
	if objBlocks <= 0 {
		objBlocks = math.Max(1, p.Store.AvgBlocksPerObject())
	}
	return skql.CostInputs{
		NumObjects:       p.Store.NumObjects(),
		DocFreq:          p.Inv.DocFreq,
		PostingsPerBlock: p.PostingsPerBlock,
		BlocksPerObject:  objBlocks,
		TreeFanout:       p.Tree.RTree().MaxEntries(),
		TreeHeight:       p.Tree.RTree().Height(),
	}
}

// Explain estimates both plans for a query without running either.
func (p *Planner) Explain(k int, keywords []string) Plan {
	kws := textutil.NormalizeAll(keywords)
	in := p.inputs()
	iio := in.EstimateIIO(kws, 1)
	ir2 := in.EstimateIR2(k, kws, 1)
	plan := Plan{
		MinDF:           iio.MinDF,
		ExpectedMatches: iio.Selectivity * float64(in.NumObjects),
		CostIIO:         iio.Blocks,
		CostIR2:         ir2.Blocks,
	}
	if plan.CostIIO < plan.CostIR2 {
		plan.Choice = ChooseIIO
	}
	return plan
}

// TopK answers a distance-first top-k spatial keyword query through the
// cheaper estimated plan, returning the plan alongside the results.
func (p *Planner) TopK(k int, point geo.Point, keywords []string) ([]core.Result, Plan, error) {
	plan := p.Explain(k, keywords)
	switch plan.Choice {
	case ChooseIIO:
		res, _, err := invindex.TopK(p.Inv, p.Store, k, point, keywords)
		if err != nil {
			return nil, plan, fmt.Errorf("planner: iio path: %w", err)
		}
		out := make([]core.Result, len(res))
		for i, r := range res {
			out[i] = core.Result{Object: r.Object, Dist: r.Dist}
		}
		return out, plan, nil
	default:
		res, _, err := p.Tree.TopK(k, point, keywords)
		if err != nil {
			return nil, plan, fmt.Errorf("planner: ir2 path: %w", err)
		}
		return res, plan, nil
	}
}
