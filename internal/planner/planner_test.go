package planner

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"spatialkeyword/internal/core"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/invindex"
	"spatialkeyword/internal/objstore"
	"spatialkeyword/internal/sigfile"
	"spatialkeyword/internal/storage"
	"spatialkeyword/internal/textutil"
)

// buildWorld creates a corpus with one very common word, one mid word, and
// one word unique to a single object, plus all structures and a planner.
func buildWorld(t *testing.T, n int) (*Planner, []objstore.Object) {
	t.Helper()
	rng := rand.New(rand.NewSource(131))
	store := objstore.New(storage.NewDisk(4096))
	var texts []string
	for i := 0; i < n; i++ {
		text := "common"
		if i%10 == 0 {
			text += " tenth"
		}
		if i == n/2 {
			text += " unicorn"
		}
		text += fmt.Sprintf(" filler%d", rng.Intn(50))
		texts = append(texts, text)
		store.Append(geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000), text)
	}
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}
	tree, err := core.New(storage.NewDisk(4096), store, core.Options{
		LeafSignature: sigfile.Config{LengthBytes: 16, BitsPerWord: 4},
		MaxEntries:    8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Build(); err != nil {
		t.Fatal(err)
	}
	inv := invindex.New(storage.NewDisk(4096))
	if err := store.Scan(func(o objstore.Object, p objstore.Ptr) error {
		inv.AddDocument(uint64(p), o.Text)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := inv.Build(); err != nil {
		t.Fatal(err)
	}
	var objs []objstore.Object
	if err := store.Scan(func(o objstore.Object, _ objstore.Ptr) error {
		objs = append(objs, o)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return New(tree, inv, store), objs
}

func TestExplainRoutesByFrequency(t *testing.T) {
	p, _ := buildWorld(t, 2000)
	// A unique keyword: IIO reads one tiny posting list — must win.
	rare := p.Explain(10, []string{"unicorn"})
	if rare.Choice != ChooseIIO {
		t.Errorf("rare keyword routed to %s (iio=%.0f ir2=%.0f)", rare.Choice, rare.CostIIO, rare.CostIR2)
	}
	if rare.MinDF != 1 {
		t.Errorf("MinDF = %d", rare.MinDF)
	}
	// A ubiquitous keyword: the IR²-Tree finds k matches immediately.
	common := p.Explain(10, []string{"common"})
	if common.Choice != ChooseIR2 {
		t.Errorf("common keyword routed to %s (iio=%.0f ir2=%.0f)", common.Choice, common.CostIIO, common.CostIR2)
	}
	if common.MinDF != 2000 {
		t.Errorf("MinDF = %d", common.MinDF)
	}
	// Conjunction selectivity multiplies: common+tenth behaves like tenth.
	conj := p.Explain(10, []string{"common", "tenth"})
	if conj.ExpectedMatches > 250 || conj.ExpectedMatches < 150 {
		t.Errorf("ExpectedMatches = %g, want ≈200", conj.ExpectedMatches)
	}
}

func TestPlannerResultsCorrectOnBothPaths(t *testing.T) {
	p, objs := buildWorld(t, 1000)
	queries := []struct {
		kw   []string
		want Choice
		any  bool // mid-selectivity: either path is defensible
	}{
		{[]string{"unicorn"}, ChooseIIO, false},
		{[]string{"common"}, ChooseIR2, false},
		{[]string{"tenth"}, ChooseIIO, true},
	}
	for _, q := range queries {
		point := geo.NewPoint(500, 500)
		got, plan, err := p.TopK(5, point, q.kw)
		if err != nil {
			t.Fatal(err)
		}
		if !q.any && plan.Choice != q.want {
			t.Errorf("keywords %v routed to %s, want %s (iio=%.0f ir2=%.0f)",
				q.kw, plan.Choice, q.want, plan.CostIIO, plan.CostIR2)
		}
		// Whatever the path, results must match brute force.
		want := bruteTopK(objs, 5, point, q.kw)
		if len(got) != len(want) {
			t.Fatalf("%v: %d results, want %d", q.kw, len(got), len(want))
		}
		for i := range got {
			if got[i].Object.ID != want[i] {
				t.Fatalf("%v rank %d: %d, want %d", q.kw, i, got[i].Object.ID, want[i])
			}
		}
	}
}

func TestPlannerBeatsSinglePathOverall(t *testing.T) {
	// Across a workload mixing rare and common keywords, the planner's
	// actual measured I/O must be at most each single path's.
	p, _ := buildWorld(t, 1500)
	devices := []storage.Device{p.Tree.RTree().Device(), p.Inv.Device(), p.Store.Device()}
	keywords := [][]string{
		{"unicorn"}, {"common"}, {"tenth"}, {"common", "tenth"}, {"tenth", "unicorn"},
	}
	rng := rand.New(rand.NewSource(132))
	points := make([]geo.Point, len(keywords)*4)
	for i := range points {
		points[i] = geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
	}
	measure := func(run func(geo.Point, []string) error) uint64 {
		var total uint64
		for i, pt := range points {
			kw := keywords[i%len(keywords)]
			for _, d := range devices {
				d.ResetStats()
			}
			if err := run(pt, kw); err != nil {
				t.Fatal(err)
			}
			for _, d := range devices {
				total += d.Stats().Random()
			}
		}
		return total
	}
	planner := measure(func(pt geo.Point, kw []string) error {
		_, _, err := p.TopK(10, pt, kw)
		return err
	})
	ir2Only := measure(func(pt geo.Point, kw []string) error {
		_, _, err := p.Tree.TopK(10, pt, kw)
		return err
	})
	iioOnly := measure(func(pt geo.Point, kw []string) error {
		_, _, err := invindex.TopK(p.Inv, p.Store, 10, pt, kw)
		return err
	})
	best := ir2Only
	if iioOnly < best {
		best = iioOnly
	}
	worst := ir2Only
	if iioOnly > worst {
		worst = iioOnly
	}
	// The router must track the better single path closely (its estimates
	// are heuristic, so allow 20% slack) and clearly beat the worse one.
	if float64(planner) > 1.2*float64(best) {
		t.Errorf("planner I/O %d not within 20%% of best single path (ir2=%d iio=%d)", planner, ir2Only, iioOnly)
	}
	if planner >= worst {
		t.Errorf("planner I/O %d does not beat the worse single path (ir2=%d iio=%d)", planner, ir2Only, iioOnly)
	}
}

func bruteTopK(objs []objstore.Object, k int, p geo.Point, keywords []string) []objstore.ID {
	kws := textutil.NormalizeAll(keywords)
	var match []objstore.Object
	for _, o := range objs {
		if textutil.ContainsAll(o.Text, kws) {
			match = append(match, o)
		}
	}
	sort.Slice(match, func(i, j int) bool {
		di, dj := p.Dist(match[i].Point), p.Dist(match[j].Point)
		if di != dj {
			return di < dj
		}
		return match[i].ID < match[j].ID
	})
	if len(match) > k {
		match = match[:k]
	}
	ids := make([]objstore.ID, len(match))
	for i, o := range match {
		ids[i] = o.ID
	}
	return ids
}
