// Package repl implements WAL-shipping replication: a leader publishes its
// durable write-ahead log over HTTP and read-only followers replay it into
// physical replicas of the leader's engine directory.
//
// The unit of replication is the WAL record, in the exact frame encoding
// the storage layer already commits to disk — replication adds transport,
// not a second log format. A follower bootstraps by downloading one
// committed snapshot generation (immutable files first, the manifest
// commit point last), then tails the log with long-polling fetches,
// re-logging every record into its own WAL before applying it. Crash
// recovery therefore falls out of the ordinary open path: a killed
// follower reopens, replays its local log, and resumes the stream from its
// durable (generation, sequence) watermark.
//
// Generations rotate in lockstep: when the leader checkpoints, the
// follower drains the finished generation, takes the same checkpoint
// locally, and continues in the next generation. The leader keeps the
// previous generation's records in memory so a mid-drain follower can
// finish; anything older answers 410 Gone and the follower rebuilds from a
// fresh snapshot. A sharded engine replicates as one independent stream
// per shard.
//
// See the wire-protocol comment in wire.go and the replication section of
// DESIGN.md for the frame format, the resync state machine, and the
// read-your-writes position tokens.
package repl
