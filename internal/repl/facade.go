package repl

import (
	"spatialkeyword"
)

// Catalog facade: the read surface internal/skql's executor and cost
// model need, so a replicated follower can stand behind any
// skql.Target. Every method serves from whichever local replica engine
// is currently installed; a resync in flight yields errResyncing (or a
// zero value for the infallible accessors), matching the other reads.

// TopKArea answers the nearest-to-rectangle query from the local replica.
func (f *Follower) TopKArea(k int, lo, hi []float64, keywords ...string) ([]spatialkeyword.Result, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch {
	case f.sharded != nil:
		return f.sharded.TopKArea(k, lo, hi, keywords...)
	case f.single != nil:
		return f.single.TopKArea(k, lo, hi, keywords...)
	}
	return nil, errResyncing
}

// WithinArea answers the boolean range query from the local replica.
func (f *Follower) WithinArea(lo, hi []float64, keywords ...string) ([]spatialkeyword.Result, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch {
	case f.sharded != nil:
		return f.sharded.WithinArea(lo, hi, keywords...)
	case f.single != nil:
		return f.single.WithinArea(lo, hi, keywords...)
	}
	return nil, errResyncing
}

// NumObjects returns the replica's object-ID space size (including
// deleted rows); zero while a resync is in flight.
func (f *Follower) NumObjects() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch {
	case f.sharded != nil:
		return f.sharded.NumObjects()
	case f.single != nil:
		return f.single.NumObjects()
	}
	return 0
}

// Scan visits the replica's objects in ID order (the single engine
// includes deleted rows, the sharded engine skips them — each mirrors
// its engine's own Scan contract).
func (f *Follower) Scan(fn func(spatialkeyword.Object) error) error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch {
	case f.sharded != nil:
		return f.sharded.Scan(fn)
	case f.single != nil:
		return f.single.Scan(fn)
	}
	return errResyncing
}

// IsDeleted reports whether the object is deleted on the local replica.
func (f *Follower) IsDeleted(id uint64) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch {
	case f.sharded != nil:
		return f.sharded.IsDeleted(id)
	case f.single != nil:
		return f.single.IsDeleted(id)
	}
	return false
}

// Corpus returns the replica's corpus statistics. The DocFreq closure
// reads whichever engine was installed when Corpus was called; callers
// should re-fetch it per query rather than caching across resyncs.
func (f *Follower) Corpus() spatialkeyword.CorpusStats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch {
	case f.sharded != nil:
		return f.sharded.Corpus()
	case f.single != nil:
		return f.single.Corpus()
	}
	return spatialkeyword.CorpusStats{NumDocs: 0, DocFreq: func(string) int { return 0 }}
}

// Flush pushes buffered adds through the replica's deferred indexing,
// so a planner flushing at plan time keeps build I/O out of the
// per-operator meters (queries would otherwise flush implicitly).
func (f *Follower) Flush() error {
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch {
	case f.sharded != nil:
		return f.sharded.Flush()
	case f.single != nil:
		return f.single.Flush()
	}
	return errResyncing
}

// MeterIO snapshots the replica's disk counters (see Engine.MeterIO).
// The returned stop function reads the engines captured at snapshot
// time; metering across a resync reports only the pre-resync counters.
func (f *Follower) MeterIO() func() (random, sequential uint64) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch {
	case f.sharded != nil:
		return f.sharded.MeterIO()
	case f.single != nil:
		return f.single.MeterIO()
	}
	return func() (uint64, uint64) { return 0, 0 }
}
