package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/obs"
	"spatialkeyword/internal/shard"
	"spatialkeyword/internal/wal"
)

// ErrReadOnlyReplica is returned by mutation methods on a Follower: all
// writes go to the leader.
var ErrReadOnlyReplica = errors.New("repl: read-only replica")

// errResync signals the tail loops that the follower's position is no
// longer servable (or its state no longer trustworthy) and it must rebuild
// from a fresh snapshot.
var errResync = errors.New("repl: full resync required")

// errResyncing is returned to reads that land while a resync has torn the
// local engine down.
var errResyncing = errors.New("repl: replica resyncing")

// badFrameLimit is how many consecutive undecodable /repl/log responses
// the tail re-requests before escalating to a full resync.
const badFrameLimit = 5

// Options tunes a Follower.
type Options struct {
	// Registry, when set, registers the follower's sk_repl_* metrics.
	Registry *obs.Registry
	// Client is the HTTP client used against the leader (default: a plain
	// http.Client).
	Client *http.Client
	// PollWait is the /repl/log long-poll duration (default 500ms).
	PollWait time.Duration
	// RetryInterval is the backoff after a failed leader request
	// (default 100ms).
	RetryInterval time.Duration
}

// followerMetrics are the follower-side replication instruments. All five
// exist whether or not a registry was provided (unregistered instruments
// still work, they just render nowhere).
type followerMetrics struct {
	lagSeconds *obs.FloatGauge
	lagRecords *obs.Gauge
	snapshots  *obs.Counter
	resyncs    *obs.Counter
	connected  *obs.Gauge
}

func newFollowerMetrics(reg *obs.Registry) followerMetrics {
	if reg == nil {
		return followerMetrics{
			lagSeconds: &obs.FloatGauge{},
			lagRecords: &obs.Gauge{},
			snapshots:  &obs.Counter{},
			resyncs:    &obs.Counter{},
			connected:  &obs.Gauge{},
		}
	}
	return followerMetrics{
		lagSeconds: reg.FloatGauge("sk_repl_lag_seconds", "Seconds the follower has continuously been behind the leader (0 when caught up)."),
		lagRecords: reg.Gauge("sk_repl_lag_records", "Log records known shipped by the leader but not yet applied."),
		snapshots:  reg.Counter("sk_repl_snapshots_total", "Snapshot bootstraps completed."),
		resyncs:    reg.Counter("sk_repl_resyncs_total", "Stream re-syncs from the last acknowledged position."),
		connected:  reg.Gauge("sk_repl_follower_connected", "1 while every replication stream to the leader is healthy."),
	}
}

// Follower is a read-only replica: it bootstraps a local copy of the
// leader's engine directory from a snapshot, then tails the leader's WAL
// stream(s), re-logging every record into its own write-ahead log before
// applying it — so a killed and restarted follower recovers by the
// ordinary open path and resumes from its durable watermark.
//
// Reads (Get, TopK*, Stats) are served from the local replica and are safe
// concurrently with the tail. Mutations return ErrReadOnlyReplica.
type Follower struct {
	dir      string
	base     string
	client   *http.Client
	pollWait time.Duration
	retry    time.Duration
	m        followerMetrics

	// mu is the serving lock: reads hold RLock, single-engine applies and
	// rotations hold Lock, and a resync holds Lock across teardown and
	// re-bootstrap. (Sharded applies take RLock — the shard engine does
	// its own per-shard write locking.)
	mu      sync.RWMutex
	single  *spatialkeyword.Engine
	sharded *shard.ShardedEngine

	// mutObserver is forwarded to whichever engine is currently installed,
	// and re-installed across resyncs (install tears engines down and
	// republishes them). See SetMutationObserver.
	mutObserver func(spatialkeyword.MutationEvent)

	// posMu guards the position/watermark vectors and the lag metrics
	// derived from them. posChanged is closed and replaced on every
	// update (WaitFor waits on it).
	posMu       sync.Mutex
	positions   []Position
	heads       []Position
	streamOK    []bool
	behindSince time.Time
	posChanged  chan struct{}

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// OpenFollower opens (or bootstraps) a replica of the leader at leaderURL
// in dir and starts tailing. If dir already holds a committed replica, it
// recovers locally — replaying its own WAL — and resumes the stream from
// its durable watermark; otherwise it bootstraps a fresh snapshot.
func OpenFollower(dir, leaderURL string, opts Options) (*Follower, error) {
	f := &Follower{
		dir:        dir,
		base:       strings.TrimRight(leaderURL, "/"),
		client:     opts.Client,
		pollWait:   opts.PollWait,
		retry:      opts.RetryInterval,
		m:          newFollowerMetrics(opts.Registry),
		posChanged: make(chan struct{}),
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	if f.pollWait <= 0 {
		f.pollWait = 500 * time.Millisecond
	}
	if f.retry <= 0 {
		f.retry = 100 * time.Millisecond
	}
	if err := f.openOrBootstrap(); err != nil {
		return nil, err
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	f.wg.Add(1)
	go f.run()
	return f, nil
}

// openOrBootstrap recovers a committed local replica, or bootstraps from
// the leader when there is none (or the local one no longer opens).
func (f *Follower) openOrBootstrap() error {
	if _, err := os.Stat(filepath.Join(f.dir, shard.ManifestFileName)); err == nil {
		if s, err := shard.Open(f.dir); err == nil {
			f.install(nil, s)
			return nil
		}
	} else if _, err := os.Stat(filepath.Join(f.dir, spatialkeyword.ManifestFileName)); err == nil {
		if e, err := spatialkeyword.OpenEngine(f.dir); err == nil {
			f.install(e, nil)
			return nil
		}
	}
	return f.bootstrap()
}

// install publishes freshly opened engines and derives the stream
// positions from their durability watermarks: each stream resumes at
// (generation, durable sequence) — exactly what local recovery replayed.
func (f *Follower) install(e *spatialkeyword.Engine, s *shard.ShardedEngine) {
	f.single, f.sharded = e, s
	f.installObserver()
	var ds []spatialkeyword.DurabilityStats
	if s != nil {
		ds = s.ShardDurability()
	} else {
		ds = []spatialkeyword.DurabilityStats{e.DurabilityStats()}
	}
	f.posMu.Lock()
	f.positions = make([]Position, len(ds))
	f.heads = make([]Position, len(ds))
	f.streamOK = make([]bool, len(ds))
	for i, d := range ds {
		f.positions[i] = Position{Gen: d.Generation, Seq: d.DurableSeq}
		f.heads[i] = f.positions[i]
	}
	f.notifyLocked()
	f.posMu.Unlock()
}

// SetMutationObserver installs fn as the mutation observer on the
// replica's underlying engine (single or sharded), and keeps it installed
// across resyncs — a full re-bootstrap tears the engines down and opens
// fresh ones, and install re-attaches the observer to them.
//
// The observer fires for every replicated record the follower applies,
// post-WAL and post-apply, so a fence registry fed from it emits the same
// event stream the leader's does once the follower drains. Caveat: a full
// snapshot re-bootstrap is a state jump, not a mutation stream — standing
// queries tracking result sets across a resync hold stale members and
// should be re-registered. Install before traffic; nil removes it.
func (f *Follower) SetMutationObserver(fn func(spatialkeyword.MutationEvent)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mutObserver = fn
	f.installObserver()
}

// installObserver pushes the stored observer onto whichever engine is
// currently published. Callers hold f.mu (or, during OpenFollower, have
// exclusive access).
func (f *Follower) installObserver() {
	if f.single != nil {
		f.single.SetMutationObserver(f.mutObserver)
	}
	if f.sharded != nil {
		f.sharded.SetMutationObserver(f.mutObserver)
	}
}

// closeEnginesLocked tears the local engines down (mu held).
func (f *Follower) closeEnginesLocked() error {
	var err error
	if f.single != nil {
		err = f.single.Close()
		f.single = nil
	}
	if f.sharded != nil {
		if cerr := f.sharded.Close(); err == nil {
			err = cerr
		}
		f.sharded = nil
	}
	return err
}

// bootstrap wipes dir and rebuilds it from the leader's snapshot: the
// immutable generation files first, the commit manifest last — so a crash
// mid-bootstrap leaves a directory without a commit point, which the next
// open simply re-bootstraps. Finishes by opening the replica and
// installing it.
func (f *Follower) bootstrap() error {
	meta, err := f.fetchMeta()
	if err != nil {
		return err
	}
	if err := os.RemoveAll(f.dir); err != nil {
		return fmt.Errorf("repl: wipe replica dir: %w", err)
	}
	if err := os.MkdirAll(f.dir, 0o755); err != nil {
		return err
	}
	if meta.Sharded {
		err = f.bootstrapSharded()
	} else {
		err = f.bootstrapSingle(meta)
	}
	if err != nil {
		return err
	}
	if meta.Sharded {
		s, err := shard.Open(f.dir)
		if err != nil {
			return fmt.Errorf("repl: open bootstrapped replica: %w", err)
		}
		f.install(nil, s)
	} else {
		e, err := spatialkeyword.OpenEngine(f.dir)
		if err != nil {
			return fmt.Errorf("repl: open bootstrapped replica: %w", err)
		}
		f.install(e, nil)
	}
	f.m.snapshots.Inc()
	return nil
}

// bootstrapSingle stages one engine directory at the leader's committed
// generation: snapshot files, a fresh empty WAL, then manifest.json.
func (f *Follower) bootstrapSingle(meta Meta) error {
	if len(meta.Streams) != 1 {
		return fmt.Errorf("repl: leader reports %d streams for a single engine", len(meta.Streams))
	}
	gen := meta.Streams[0].Gen
	if gen == 0 {
		return fmt.Errorf("repl: leader has no committed generation")
	}
	return f.stageStream(f.dir, 0, gen, true)
}

// bootstrapSharded stages a sharded engine directory: the leader's
// shards.json pins every shard's generation; each shard is staged at its
// pinned generation, then shards.json itself commits the bootstrap.
func (f *Follower) bootstrapSharded() error {
	manifestBytes, err := f.fetchSnapshot(0, 0, "shards")
	if err != nil {
		return err
	}
	var pins struct {
		Gens []uint64 `json:"gens"`
	}
	if err := json.Unmarshal(manifestBytes, &pins); err != nil {
		return fmt.Errorf("repl: parse leader shards manifest: %w", err)
	}
	if len(pins.Gens) == 0 {
		return fmt.Errorf("repl: leader shards manifest pins no generations")
	}
	for i, gen := range pins.Gens {
		if gen == 0 {
			return fmt.Errorf("repl: shard %d has no committed generation", i)
		}
		sub := filepath.Join(f.dir, shard.DirName(i))
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return err
		}
		if err := f.stageStream(sub, i, gen, false); err != nil {
			return err
		}
	}
	return writeFileSync(filepath.Join(f.dir, shard.ManifestFileName), manifestBytes)
}

// stageStream downloads one stream's generation-gen snapshot into dir and
// creates the generation's empty local WAL. With commit set it also writes
// the engine's top-level manifest.json (same bytes as the generation
// manifest) — the single-engine commit point. Sharded staging leaves the
// per-shard manifest.json absent: shards.json pins the generation and
// shard.Open never reads it.
func (f *Follower) stageStream(dir string, stream int, gen uint64, commit bool) error {
	objects, index, manifest := spatialkeyword.SnapshotFileNames(gen)
	manifestBytes, err := f.fetchSnapshot(stream, gen, "manifest")
	if err != nil {
		return err
	}
	if err := writeFileSync(filepath.Join(dir, manifest), manifestBytes); err != nil {
		return err
	}
	for file, name := range map[string]string{"objects": objects, "index": index} {
		data, err := f.fetchSnapshot(stream, gen, file)
		if err != nil {
			return err
		}
		if err := writeFileSync(filepath.Join(dir, name), data); err != nil {
			return err
		}
	}
	cfg, mgen, err := spatialkeyword.PeekManifest(filepath.Join(dir, manifest))
	if err != nil {
		return err
	}
	if mgen != gen {
		return fmt.Errorf("repl: leader served manifest for generation %d, want %d", mgen, gen)
	}
	if !cfg.WAL {
		return fmt.Errorf("repl: leader engine has no write-ahead log")
	}
	if err := spatialkeyword.CreateEmptyWAL(filepath.Join(dir, spatialkeyword.WALFileName(gen)), cfg.BlockSize); err != nil {
		return err
	}
	if commit {
		return writeFileSync(filepath.Join(dir, spatialkeyword.ManifestFileName), manifestBytes)
	}
	return nil
}

// writeFileSync writes data to path and fsyncs it.
func writeFileSync(path string, data []byte) error {
	fd, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := fd.Write(data); err != nil {
		fd.Close() //nolint:errcheck // already failing
		return err
	}
	if err := fd.Sync(); err != nil {
		fd.Close() //nolint:errcheck // already failing
		return err
	}
	return fd.Close()
}

// fetchMeta asks the leader for its replication topology.
func (f *Follower) fetchMeta() (Meta, error) {
	var m Meta
	resp, err := f.client.Get(f.base + MetaPath)
	if err != nil {
		return m, err
	}
	defer resp.Body.Close() //nolint:errcheck // read-only body
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("repl: meta: leader answered %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return m, fmt.Errorf("repl: meta: %w", err)
	}
	return m, nil
}

// fetchSnapshot downloads one snapshot file's bytes.
func (f *Follower) fetchSnapshot(stream int, gen uint64, file string) ([]byte, error) {
	url := fmt.Sprintf("%s%s?shard=%d&gen=%d&file=%s", f.base, SnapshotPath, stream, gen, file)
	resp, err := f.client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close() //nolint:errcheck // read-only body
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("repl: snapshot %s gen %d: leader answered %s", file, gen, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// run supervises the per-stream tail loops: any loop demanding a resync
// tears every engine down, re-bootstraps from a fresh snapshot, and
// restarts the tails. Exits only when the follower is closed.
func (f *Follower) run() {
	defer f.wg.Done()
	for {
		if f.ctx.Err() != nil {
			return
		}
		f.posMu.Lock()
		n := len(f.positions)
		f.posMu.Unlock()
		tailCtx, cancel := context.WithCancel(f.ctx)
		errc := make(chan error, n)
		var tw sync.WaitGroup
		for i := 0; i < n; i++ {
			tw.Add(1)
			go func(stream int) {
				defer tw.Done()
				errc <- f.tail(tailCtx, stream)
			}(i)
		}
		needResync := false
		select {
		case <-f.ctx.Done():
		case err := <-errc:
			if err != nil {
				needResync = true
			}
		}
		cancel()
		tw.Wait()
		for len(errc) > 0 {
			if err := <-errc; err != nil {
				needResync = true
			}
		}
		if f.ctx.Err() != nil {
			return
		}
		if !needResync {
			continue
		}
		f.m.resyncs.Inc()
		f.mu.Lock()
		f.closeEnginesLocked() //nolint:errcheck // state is being discarded
		err := f.bootstrap()
		f.mu.Unlock()
		if err != nil {
			// Leader unreachable mid-resync: back off and try again.
			select {
			case <-time.After(f.retry):
			case <-f.ctx.Done():
				return
			}
		}
	}
}

// tail drains one stream: fetch the log after the current position, verify
// and apply, advance, rotate generations when the leader did. Transient
// leader errors retry in place; an unservable position (410) or a broken
// apply escalates to a full resync; corrupt or torn response bodies
// re-request from the last acknowledged position.
func (f *Follower) tail(ctx context.Context, stream int) error {
	badStreak := 0
	for {
		if ctx.Err() != nil {
			return nil
		}
		pos := f.position(stream)
		body, header, status, err := f.fetchLog(ctx, stream, pos)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			f.setConnected(stream, false)
			if !sleepCtx(ctx, f.retry) {
				return nil
			}
			continue
		}
		if status == http.StatusGone {
			return errResync
		}
		if status != http.StatusOK {
			f.setConnected(stream, false)
			if !sleepCtx(ctx, f.retry) {
				return nil
			}
			continue
		}
		f.setConnected(stream, true)
		head, _ := strconv.ParseUint(header.Get(HeaderHead), 10, 64)
		recs, err := decodeFrames(body, pos.Seq)
		if err != nil {
			// Torn or corrupt on the wire: the local log is untouched, so
			// re-requesting from the acknowledged position re-syncs the
			// stream without losing anything.
			badStreak++
			f.m.resyncs.Inc()
			if badStreak >= badFrameLimit {
				return errResync
			}
			continue
		}
		badStreak = 0
		if len(recs) > 0 {
			if err := f.apply(stream, recs); err != nil {
				return err
			}
			pos.Seq += uint64(len(recs))
		}
		f.setPosition(stream, pos, Position{Gen: pos.Gen, Seq: head})
		if rot := header.Get(HeaderRotate); rot != "" && pos.Seq >= head {
			nextGen, err := strconv.ParseUint(rot, 10, 64)
			if err != nil || nextGen <= pos.Gen {
				return errResync
			}
			if err := f.rotate(stream, nextGen); err != nil {
				return err
			}
			next := Position{Gen: nextGen, Seq: 0}
			f.setPosition(stream, next, next)
		}
	}
}

// sleepCtx sleeps d, reporting false if ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// fetchLog performs one /repl/log request.
func (f *Follower) fetchLog(ctx context.Context, stream int, pos Position) ([]byte, http.Header, int, error) {
	url := fmt.Sprintf("%s%s?shard=%d&gen=%d&after=%d&wait=%d",
		f.base, LogPath, stream, pos.Gen, pos.Seq, f.pollWait.Milliseconds())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, nil, 0, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, nil, 0, err
	}
	defer resp.Body.Close() //nolint:errcheck // read-only body
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, 0, err
	}
	return body, resp.Header, resp.StatusCode, nil
}

// apply replays one verified batch into the local replica. Single-engine
// applies hold the serving write lock across the batch, its flush, and the
// WAL group commit, so concurrent reads never see a half-applied batch;
// sharded applies delegate to the shard engine's own per-shard locking.
func (f *Follower) apply(stream int, recs []wal.Record) error {
	if s := f.shardedEngine(); s != nil {
		return s.ApplyReplicatedBatch(stream, recs)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		return errResyncing
	}
	for _, rec := range recs {
		if err := f.single.ApplyReplicated(rec); err != nil {
			return err
		}
	}
	if err := f.single.Flush(); err != nil {
		return err
	}
	return f.single.SyncWAL()
}

// rotate performs the follower-local generation handoff: the stream's old
// log is fully applied, so a local checkpoint commits the same state the
// leader's rotation did, opens the same new generation, and lets the local
// WAL track the leader's new log from sequence 1.
func (f *Follower) rotate(stream int, nextGen uint64) error {
	if s := f.shardedEngine(); s != nil {
		if err := s.RotateShard(stream); err != nil {
			return err
		}
		if got := s.ShardDurability()[stream].Generation; got != nextGen {
			return fmt.Errorf("%w: local rotation reached generation %d, leader is at %d", errResync, got, nextGen)
		}
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single == nil {
		return errResyncing
	}
	if err := f.single.Save(); err != nil {
		return err
	}
	if got := f.single.Generation(); got != nextGen {
		return fmt.Errorf("%w: local rotation reached generation %d, leader is at %d", errResync, got, nextGen)
	}
	return nil
}

// shardedEngine snapshots the sharded-engine pointer under the read lock.
func (f *Follower) shardedEngine() *shard.ShardedEngine {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.sharded
}

// position reads one stream's current position.
func (f *Follower) position(stream int) Position {
	f.posMu.Lock()
	defer f.posMu.Unlock()
	return f.positions[stream]
}

// setPosition advances one stream's applied position and leader watermark,
// refreshes the lag metrics, and wakes WaitFor waiters.
func (f *Follower) setPosition(stream int, pos, head Position) {
	f.posMu.Lock()
	f.positions[stream] = pos
	f.heads[stream] = head
	f.updateLagLocked()
	f.notifyLocked()
	f.posMu.Unlock()
}

// setConnected tracks per-stream connectivity; the connected gauge is 1
// only while every stream's last leader request succeeded.
func (f *Follower) setConnected(stream int, ok bool) {
	f.posMu.Lock()
	f.streamOK[stream] = ok
	all := true
	for _, s := range f.streamOK {
		all = all && s
	}
	if all {
		f.m.connected.Set(1)
	} else {
		f.m.connected.Set(0)
	}
	f.posMu.Unlock()
}

// updateLagLocked recomputes the lag gauges (posMu held). Record lag
// counts what the last responses proved shipped but unapplied; once a
// stream's watermark moved to a newer generation the old generation's
// remainder is unknown, so the value is a lower bound until the follower
// catches the rotation.
func (f *Follower) updateLagLocked() {
	var lag uint64
	caught := true
	for i := range f.positions {
		p, h := f.positions[i], f.heads[i]
		if h.Gen == p.Gen && h.Seq > p.Seq {
			lag += h.Seq - p.Seq
		} else if h.Gen > p.Gen {
			lag += h.Seq
		}
		if !p.AtLeast(h) {
			caught = false
		}
	}
	f.m.lagRecords.Set(int64(lag))
	if caught {
		f.behindSince = time.Time{}
		f.m.lagSeconds.Set(0)
		return
	}
	if f.behindSince.IsZero() {
		f.behindSince = time.Now()
	}
	f.m.lagSeconds.Set(time.Since(f.behindSince).Seconds())
}

// notifyLocked wakes position waiters (posMu held).
func (f *Follower) notifyLocked() {
	close(f.posChanged)
	f.posChanged = make(chan struct{})
}

// StreamStatus is one stream's replication progress.
type StreamStatus struct {
	// Gen and Applied are the follower's position: the generation it is
	// tailing and the last sequence durably applied within it.
	Gen     uint64 `json:"gen"`
	Applied uint64 `json:"applied"`
	// LeaderGen and LeaderHead are the leader's watermark as of the last
	// successful poll.
	LeaderGen  uint64 `json:"leader_gen"`
	LeaderHead uint64 `json:"leader_head"`
}

// Status is the follower's health summary (the skserve /healthz replication
// block).
type Status struct {
	Connected  bool           `json:"connected"`
	LagRecords uint64         `json:"lag_records"`
	LagSeconds float64        `json:"lag_seconds"`
	Snapshots  uint64         `json:"snapshots"`
	Resyncs    uint64         `json:"resyncs"`
	Streams    []StreamStatus `json:"streams"`
}

// Status reports the follower's replication progress.
func (f *Follower) Status() Status {
	f.posMu.Lock()
	defer f.posMu.Unlock()
	st := Status{
		Connected:  true,
		LagRecords: uint64(f.m.lagRecords.Value()),
		LagSeconds: f.m.lagSeconds.Value(),
		Snapshots:  f.m.snapshots.Value(),
		Resyncs:    f.m.resyncs.Value(),
		Streams:    make([]StreamStatus, len(f.positions)),
	}
	for i := range f.positions {
		st.Streams[i] = StreamStatus{
			Gen:        f.positions[i].Gen,
			Applied:    f.positions[i].Seq,
			LeaderGen:  f.heads[i].Gen,
			LeaderHead: f.heads[i].Seq,
		}
		st.Connected = st.Connected && f.streamOK[i]
	}
	return st
}

// PositionToken returns the follower's applied position vector as a token.
func (f *Follower) PositionToken() string {
	f.posMu.Lock()
	defer f.posMu.Unlock()
	return EncodePositions(f.positions)
}

// WaitFor blocks until the follower's applied positions cover the token
// (a leader write-position, see Leader.PositionToken) — the
// read-your-writes barrier — or the timeout passes.
func (f *Follower) WaitFor(token string, timeout time.Duration) error {
	want, err := ParsePositions(token)
	if err != nil {
		return err
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		f.posMu.Lock()
		ok := len(want) == len(f.positions)
		for i := 0; ok && i < len(want); i++ {
			ok = f.positions[i].AtLeast(want[i])
		}
		ch := f.posChanged
		f.posMu.Unlock()
		if ok {
			return nil
		}
		select {
		case <-ch:
		case <-deadline.C:
			return fmt.Errorf("repl: position %s not reached within %v", token, timeout)
		}
	}
}

// Close stops the tail loops and releases the local replica.
func (f *Follower) Close() error {
	f.cancel()
	f.wg.Wait()
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closeEnginesLocked()
}

// Add implements the write surface — always refused on a replica.
func (f *Follower) Add(point []float64, text string) (uint64, error) {
	return 0, ErrReadOnlyReplica
}

// Delete implements the write surface — always refused on a replica.
func (f *Follower) Delete(id uint64) error { return ErrReadOnlyReplica }

// Save implements the write surface — checkpoints are leader-driven (the
// follower rotates when the leader does), so explicit saves are refused.
func (f *Follower) Save() error { return ErrReadOnlyReplica }

// Get returns a stored object by ID from the local replica.
func (f *Follower) Get(id uint64) (spatialkeyword.Object, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch {
	case f.sharded != nil:
		return f.sharded.Get(id)
	case f.single != nil:
		return f.single.Get(id)
	}
	return spatialkeyword.Object{}, errResyncing
}

// TopK answers the distance-first query from the local replica.
func (f *Follower) TopK(k int, point []float64, keywords ...string) ([]spatialkeyword.Result, error) {
	res, _, err := f.TopKWithStats(k, point, keywords...)
	return res, err
}

// TopKWithStats answers the distance-first query from the local replica.
func (f *Follower) TopKWithStats(k int, point []float64, keywords ...string) ([]spatialkeyword.Result, spatialkeyword.QueryStats, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch {
	case f.sharded != nil:
		return f.sharded.TopKWithStats(k, point, keywords...)
	case f.single != nil:
		return f.single.TopKWithStats(k, point, keywords...)
	}
	return nil, spatialkeyword.QueryStats{}, errResyncing
}

// TopKRanked answers the general ranked query from the local replica.
func (f *Follower) TopKRanked(k int, point []float64, keywords ...string) ([]spatialkeyword.RankedResult, error) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch {
	case f.sharded != nil:
		return f.sharded.TopKRanked(k, point, keywords...)
	case f.single != nil:
		return f.single.TopKRanked(k, point, keywords...)
	}
	return nil, errResyncing
}

// Stats reports the local replica's contents and footprint.
func (f *Follower) Stats() spatialkeyword.Stats {
	f.mu.RLock()
	defer f.mu.RUnlock()
	switch {
	case f.sharded != nil:
		return f.sharded.Stats()
	case f.single != nil:
		return f.single.Stats()
	}
	return spatialkeyword.Stats{}
}
