package repl

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/shard"
	"spatialkeyword/internal/wal"
)

// maxLogWait caps a /repl/log long-poll.
const maxLogWait = 30 * time.Second

// streamBuf is one stream's in-memory ship buffer: the current
// generation's records (recs[i] has sequence i+1) plus the previous
// generation's frozen records, kept so a follower mid-drain when the
// leader rotates can finish the old generation. Anything older is served
// by re-bootstrap.
type streamBuf struct {
	gen      uint64
	recs     []wal.Record
	prevGen  uint64
	prevRecs []wal.Record
	notify   chan struct{} // closed and replaced on every append/rotate
}

// Leader publishes an engine's WAL stream(s) over HTTP for followers. Wire
// one up with NewLeader + AttachEngine/AttachSharded before the engine
// serves traffic, and mount Handler() on the leader's HTTP server.
type Leader struct {
	dir     string
	sharded bool

	mu         sync.Mutex
	streams    []*streamBuf
	streamDirs []string // per-stream snapshot directory
}

// NewLeader creates a leader serving replication for the durable engine in
// dir. Attach the engine before serving.
func NewLeader(dir string) *Leader {
	return &Leader{dir: dir}
}

// AttachEngine wires a single (non-sharded) WAL engine: the current
// generation's ship buffer is seeded from the records the engine replayed
// at open (so followers survive leader restarts mid-generation), and the
// replication hooks are installed. Call before the engine serves traffic.
func (l *Leader) AttachEngine(e *spatialkeyword.Engine) {
	l.sharded = false
	l.streams = []*streamBuf{newStreamBuf(e.Generation(), e.WALReplayRecords())}
	l.streamDirs = []string{l.dir}
	e.SetReplicationHooks(
		func(gen uint64, rec wal.Record) { l.onAppend(0, gen, rec) },
		func(newGen uint64) { l.onRotate(0, newGen) },
	)
}

// AttachSharded wires a sharded WAL engine: one stream per shard. Call
// before the engine serves traffic.
func (l *Leader) AttachSharded(s *shard.ShardedEngine) {
	l.sharded = true
	dur := s.ShardDurability()
	l.streams = make([]*streamBuf, len(dur))
	l.streamDirs = make([]string, len(dur))
	for i, d := range dur {
		l.streams[i] = newStreamBuf(d.Generation, s.ShardReplayRecords(i))
		l.streamDirs[i] = filepath.Join(l.dir, shard.DirName(i))
	}
	s.SetReplicationHooks(l.onAppend, l.onRotate)
}

func newStreamBuf(gen uint64, recs []wal.Record) *streamBuf {
	return &streamBuf{gen: gen, recs: recs, notify: make(chan struct{})}
}

// onAppend stages one durably logged record in the stream's ship buffer.
// It runs on the engine's write path: in-memory work only.
func (l *Leader) onAppend(stream int, gen uint64, rec wal.Record) {
	l.mu.Lock()
	sb := l.streams[stream]
	sb.recs = append(sb.recs, rec)
	close(sb.notify)
	sb.notify = make(chan struct{})
	_ = gen // the rotate hook moved sb.gen before any append in the new generation
	l.mu.Unlock()
}

// onRotate freezes the finished generation and opens the next one.
func (l *Leader) onRotate(stream int, newGen uint64) {
	l.mu.Lock()
	sb := l.streams[stream]
	sb.prevGen, sb.prevRecs = sb.gen, sb.recs
	sb.gen, sb.recs = newGen, nil
	close(sb.notify)
	sb.notify = make(chan struct{})
	l.mu.Unlock()
}

// PositionToken returns the leader's current position vector as a token —
// every acknowledged write so far is at or below it. skserve stamps it on
// write responses so clients can demand read-your-writes from replicas.
func (l *Leader) PositionToken() string {
	l.mu.Lock()
	ps := make([]Position, len(l.streams))
	for i, sb := range l.streams {
		ps[i] = Position{Gen: sb.gen, Seq: uint64(len(sb.recs))}
	}
	l.mu.Unlock()
	return EncodePositions(ps)
}

// Handler returns the /repl HTTP handler. Mount it at the server root (the
// paths already carry the /repl prefix).
func (l *Leader) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+MetaPath, l.handleMeta)
	mux.HandleFunc("GET "+SnapshotPath, l.handleSnapshot)
	mux.HandleFunc("GET "+LogPath, l.handleLog)
	return mux
}

func (l *Leader) handleMeta(w http.ResponseWriter, r *http.Request) {
	l.mu.Lock()
	m := Meta{Sharded: l.sharded, Streams: make([]StreamMeta, len(l.streams))}
	for i, sb := range l.streams {
		m.Streams[i] = StreamMeta{Gen: sb.gen, Head: uint64(len(sb.recs))}
	}
	l.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(m) //nolint:errcheck // best-effort response write
}

// parseStream validates the shard query parameter against the attached
// topology.
func (l *Leader) parseStream(r *http.Request) (int, error) {
	s := r.URL.Query().Get("shard")
	if s == "" {
		s = "0"
	}
	i, err := strconv.Atoi(s)
	if err != nil || i < 0 || i >= len(l.streams) {
		return 0, fmt.Errorf("repl: no stream %q", s)
	}
	return i, nil
}

func (l *Leader) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	file := q.Get("file")
	if file == "shards" {
		if !l.sharded {
			http.Error(w, "repl: leader is not sharded", http.StatusBadRequest)
			return
		}
		l.serveFile(w, filepath.Join(l.dir, shard.ManifestFileName))
		return
	}
	stream, err := l.parseStream(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	gen, err := strconv.ParseUint(q.Get("gen"), 10, 64)
	if err != nil || gen == 0 {
		http.Error(w, "repl: bad gen", http.StatusBadRequest)
		return
	}
	// Only generation-derived names are servable — the client never picks a
	// filename.
	objects, index, manifest := spatialkeyword.SnapshotFileNames(gen)
	var name string
	switch file {
	case "objects":
		name = objects
	case "index":
		name = index
	case "manifest":
		name = manifest
	default:
		http.Error(w, fmt.Sprintf("repl: unknown snapshot file %q", file), http.StatusBadRequest)
		return
	}
	l.serveFile(w, filepath.Join(l.streamDirs[stream], name))
}

// serveFile writes a file's bytes, answering 404 when it does not exist
// (e.g. the generation was pruned mid-bootstrap — the follower restarts
// from meta).
func (l *Leader) serveFile(w http.ResponseWriter, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			http.Error(w, "repl: snapshot file gone", http.StatusNotFound)
			return
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(data) //nolint:errcheck // best-effort response write
}

func (l *Leader) handleLog(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	stream, err := l.parseStream(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	gen, err := strconv.ParseUint(q.Get("gen"), 10, 64)
	if err != nil {
		http.Error(w, "repl: bad gen", http.StatusBadRequest)
		return
	}
	after, err := strconv.ParseUint(q.Get("after"), 10, 64)
	if err != nil {
		http.Error(w, "repl: bad after", http.StatusBadRequest)
		return
	}
	var wait time.Duration
	if ws := q.Get("wait"); ws != "" {
		ms, err := strconv.Atoi(ws)
		if err != nil || ms < 0 {
			http.Error(w, "repl: bad wait", http.StatusBadRequest)
			return
		}
		wait = time.Duration(ms) * time.Millisecond
		if wait > maxLogWait {
			wait = maxLogWait
		}
	}

	deadline := time.Now().Add(wait)
	l.mu.Lock()
	sb := l.streams[stream]
	for {
		switch gen {
		case sb.gen:
			head := uint64(len(sb.recs))
			if after > head {
				// The follower claims records the leader never wrote: its
				// position is from another life. Re-bootstrap.
				l.mu.Unlock()
				http.Error(w, "repl: position ahead of leader", http.StatusGone)
				return
			}
			if after < head || wait <= 0 || !time.Now().Before(deadline) {
				recs := sb.recs[after:head]
				l.mu.Unlock()
				h := w.Header()
				h.Set(HeaderGen, strconv.FormatUint(gen, 10))
				h.Set(HeaderHead, strconv.FormatUint(head, 10))
				h.Set("Content-Type", "application/octet-stream")
				w.Write(encodeFrames(recs)) //nolint:errcheck // best-effort response write
				return
			}
			// Caught up: long-poll for the next append or rotation.
			ch := sb.notify
			l.mu.Unlock()
			t := time.NewTimer(time.Until(deadline))
			select {
			case <-ch:
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				return
			}
			t.Stop()
			l.mu.Lock()
		case sb.prevGen:
			head := uint64(len(sb.prevRecs))
			nextGen := sb.gen
			if after > head {
				l.mu.Unlock()
				http.Error(w, "repl: position ahead of rotated log", http.StatusGone)
				return
			}
			recs := sb.prevRecs[after:head]
			l.mu.Unlock()
			h := w.Header()
			h.Set(HeaderGen, strconv.FormatUint(gen, 10))
			h.Set(HeaderHead, strconv.FormatUint(head, 10))
			h.Set(HeaderRotate, strconv.FormatUint(nextGen, 10))
			h.Set("Content-Type", "application/octet-stream")
			w.Write(encodeFrames(recs)) //nolint:errcheck // best-effort response write
			return
		default:
			l.mu.Unlock()
			http.Error(w, "repl: generation no longer tailed", http.StatusGone)
			return
		}
	}
}
