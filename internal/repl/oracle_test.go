package repl

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/shard"
)

// The replication oracle: after draining the stream, an eventual-mode
// follower must answer every query exactly as the leader does — same IDs,
// same distances, same ranks — across single and sharded (grid and hash
// partitioned) leaders, under mixed Add/Delete churn with rotations in the
// middle.

var oracleWords = []string{"coffee", "pizza", "sushi", "bar", "museum", "park", "bank", "hotel"}

// churn drives deterministic mixed traffic into add/del closures.
func churn(t *testing.T, rng *rand.Rand, n int, add func([]float64, string) (uint64, error), del func(uint64) error) {
	t.Helper()
	var live []uint64
	for i := 0; i < n; i++ {
		if len(live) > 4 && rng.Intn(5) == 0 {
			j := rng.Intn(len(live))
			if err := del(live[j]); err != nil {
				t.Fatalf("churn delete %d: %v", live[j], err)
			}
			live = append(live[:j], live[j+1:]...)
			continue
		}
		point := []float64{rng.Float64() * 100, rng.Float64() * 100}
		text := fmt.Sprintf("%s %s spot %d",
			oracleWords[rng.Intn(len(oracleWords))], oracleWords[rng.Intn(len(oracleWords))], i)
		id, err := add(point, text)
		if err != nil {
			t.Fatalf("churn add %d: %v", i, err)
		}
		live = append(live, id)
	}
}

// queryOracle compares TopK and TopKRanked between leader and follower over
// a deterministic probe set.
func queryOracle(t *testing.T, rng *rand.Rand, lead, repl oracleEngine) {
	t.Helper()
	for probe := 0; probe < 20; probe++ {
		point := []float64{rng.Float64() * 100, rng.Float64() * 100}
		k := 1 + rng.Intn(10)
		kws := []string{oracleWords[rng.Intn(len(oracleWords))]}
		if rng.Intn(2) == 0 {
			kws = append(kws, oracleWords[rng.Intn(len(oracleWords))])
		}

		want, _, err := lead.TopKWithStats(k, point, kws...)
		if err != nil {
			t.Fatalf("leader TopK: %v", err)
		}
		got, _, err := repl.TopKWithStats(k, point, kws...)
		if err != nil {
			t.Fatalf("follower TopK: %v", err)
		}
		if len(want) != len(got) {
			t.Fatalf("probe %d: follower %d results, leader %d", probe, len(got), len(want))
		}
		for i := range want {
			if want[i].Object.ID != got[i].Object.ID || want[i].Dist != got[i].Dist {
				t.Fatalf("probe %d result %d: follower %+v, leader %+v", probe, i, got[i], want[i])
			}
		}

		wantR, err := lead.TopKRanked(k, point, kws...)
		if err != nil {
			t.Fatalf("leader TopKRanked: %v", err)
		}
		gotR, err := repl.TopKRanked(k, point, kws...)
		if err != nil {
			t.Fatalf("follower TopKRanked: %v", err)
		}
		if len(wantR) != len(gotR) {
			t.Fatalf("probe %d ranked: follower %d results, leader %d", probe, len(gotR), len(wantR))
		}
		for i := range wantR {
			if wantR[i].Object.ID != gotR[i].Object.ID || wantR[i].Score != gotR[i].Score {
				t.Fatalf("probe %d ranked %d: follower %+v, leader %+v", probe, i, gotR[i], wantR[i])
			}
		}
	}
}

type oracleEngine interface {
	TopKWithStats(int, []float64, ...string) ([]spatialkeyword.Result, spatialkeyword.QueryStats, error)
	TopKRanked(int, []float64, ...string) ([]spatialkeyword.RankedResult, error)
}

func TestOracleSingleEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, l, srv := newLeaderEngine(t, t.TempDir())

	churn(t, rng, 120, e.Add, e.Delete)
	f, err := OpenFollower(t.TempDir(), srv.URL, fastOpts())
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	if err := e.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	churn(t, rng, 120, e.Add, e.Delete)
	drain(t, f, l)
	queryOracle(t, rng, e, f)
}

func testOracleSharded(t *testing.T, opts shard.Options) {
	rng := rand.New(rand.NewSource(11))
	ldir := t.TempDir()
	s, err := shard.NewDurable(spatialkeyword.Config{WAL: true}, ldir, opts)
	if err != nil {
		t.Fatalf("NewDurable: %v", err)
	}
	defer s.Close() //nolint:errcheck // test teardown
	l := NewLeader(ldir)
	l.AttachSharded(s)
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	churn(t, rng, 150, s.Add, s.Delete)
	if err := s.Save(); err != nil {
		t.Fatalf("Save: %v", err)
	}
	churn(t, rng, 50, s.Add, s.Delete)

	f, err := OpenFollower(t.TempDir(), srv.URL, fastOpts())
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	drain(t, f, l)
	queryOracle(t, rng, s, f)

	// More churn with a mid-stream rotation, then re-verify: the follower
	// must track the generation handoffs shard by shard.
	churn(t, rng, 80, s.Add, s.Delete)
	if err := s.Save(); err != nil {
		t.Fatalf("second Save: %v", err)
	}
	churn(t, rng, 40, s.Add, s.Delete)
	drain(t, f, l)
	queryOracle(t, rng, s, f)

	if f.Stats().Objects != s.Stats().Objects {
		t.Fatalf("follower holds %d objects, leader %d", f.Stats().Objects, s.Stats().Objects)
	}
}

func TestOracleShardedGrid(t *testing.T) {
	testOracleSharded(t, shard.Options{
		Shards: 4,
		Bounds: geo.NewRect(geo.Point{0, 0}, geo.Point{100, 100}),
	})
}

func TestOracleShardedHash(t *testing.T) {
	testOracleSharded(t, shard.Options{Shards: 3})
}

// TestOracleWaitForIsReadYourWrites pins the RYW contract: a write's
// position token, awaited on the follower, guarantees the write is visible
// there.
func TestOracleWaitForIsReadYourWrites(t *testing.T) {
	e, l, srv := newLeaderEngine(t, t.TempDir())
	f, err := OpenFollower(t.TempDir(), srv.URL, fastOpts())
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close() //nolint:errcheck // test teardown

	for i := 0; i < 30; i++ {
		id, err := e.Add([]float64{float64(i), 1}, fmt.Sprintf("ryw object %d", i))
		if err != nil {
			t.Fatalf("Add: %v", err)
		}
		tok := l.PositionToken()
		if err := f.WaitFor(tok, 5*time.Second); err != nil {
			t.Fatalf("WaitFor(%q): %v", tok, err)
		}
		if _, err := f.Get(id); err != nil {
			t.Fatalf("read-your-writes violated for object %d: %v", id, err)
		}
	}
}
