package repl

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/wal"
)

// fastOpts keeps test followers snappy.
func fastOpts() Options {
	return Options{PollWait: 50 * time.Millisecond, RetryInterval: 10 * time.Millisecond}
}

// newLeaderEngine starts a durable WAL engine in dir with a replication
// leader mounted on an httptest server.
func newLeaderEngine(t *testing.T, dir string) (*spatialkeyword.Engine, *Leader, *httptest.Server) {
	t.Helper()
	e, err := spatialkeyword.NewDurableEngine(spatialkeyword.Config{WAL: true}, dir)
	if err != nil {
		t.Fatalf("NewDurableEngine: %v", err)
	}
	t.Cleanup(func() { e.Close() }) //nolint:errcheck // test teardown
	l := NewLeader(dir)
	l.AttachEngine(e)
	srv := httptest.NewServer(l.Handler())
	t.Cleanup(srv.Close)
	return e, l, srv
}

func addN(t *testing.T, e *spatialkeyword.Engine, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		x := float64(i % 10)
		y := float64(i / 10)
		if _, err := e.Add([]float64{x, y}, fmt.Sprintf("object %d coffee pizza%d", i, i%3)); err != nil {
			t.Fatalf("Add %d: %v", i, err)
		}
	}
}

// drain waits until the follower has applied every write the leader has
// acknowledged so far.
func drain(t *testing.T, f *Follower, l *Leader) {
	t.Helper()
	if err := f.WaitFor(l.PositionToken(), 10*time.Second); err != nil {
		t.Fatalf("WaitFor: %v", err)
	}
}

// sameTopK asserts the follower answers a query identically to the leader.
func sameTopK(t *testing.T, lead, repl interface {
	TopKWithStats(int, []float64, ...string) ([]spatialkeyword.Result, spatialkeyword.QueryStats, error)
}, k int, point []float64, kws ...string) {
	t.Helper()
	want, _, err := lead.TopKWithStats(k, point, kws...)
	if err != nil {
		t.Fatalf("leader TopK: %v", err)
	}
	got, _, err := repl.TopKWithStats(k, point, kws...)
	if err != nil {
		t.Fatalf("follower TopK: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("follower returned %d results, leader %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Object.ID != want[i].Object.ID || got[i].Dist != want[i].Dist {
			t.Fatalf("result %d: follower %+v, leader %+v", i, got[i], want[i])
		}
	}
}

func TestFollowerBootstrapAndTail(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	e, l, srv := newLeaderEngine(t, ldir)
	addN(t, e, 0, 25)

	f, err := OpenFollower(fdir, srv.URL, fastOpts())
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	drain(t, f, l)

	sameTopK(t, e, f, 5, []float64{3, 1}, "coffee")
	obj, err := f.Get(7)
	if err != nil {
		t.Fatalf("follower Get: %v", err)
	}
	if obj.ID != 7 {
		t.Fatalf("follower Get(7) returned ID %d", obj.ID)
	}

	// Writes keep streaming after the bootstrap.
	addN(t, e, 25, 25)
	if err := e.Delete(3); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	drain(t, f, l)
	sameTopK(t, e, f, 10, []float64{5, 2}, "pizza1")
	if _, err := f.Get(3); err == nil {
		t.Fatalf("follower still serves deleted object 3")
	}
	if f.Stats().Objects != e.Stats().Objects {
		t.Fatalf("follower stats %+v, leader %+v", f.Stats(), e.Stats())
	}
}

func TestFollowerIsReadOnly(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	e, l, srv := newLeaderEngine(t, ldir)
	addN(t, e, 0, 3)
	f, err := OpenFollower(fdir, srv.URL, fastOpts())
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	drain(t, f, l)

	if _, err := f.Add([]float64{0, 0}, "x"); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Add on replica: %v", err)
	}
	if err := f.Delete(0); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Delete on replica: %v", err)
	}
	if err := f.Save(); !errors.Is(err, ErrReadOnlyReplica) {
		t.Fatalf("Save on replica: %v", err)
	}
}

func TestFollowerRotationHandoff(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	e, l, srv := newLeaderEngine(t, ldir)
	addN(t, e, 0, 10)

	f, err := OpenFollower(fdir, srv.URL, fastOpts())
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	drain(t, f, l)

	// Rotate twice with traffic in between; the follower must follow each
	// generation handoff without re-bootstrapping.
	for round := 0; round < 2; round++ {
		if err := e.Save(); err != nil {
			t.Fatalf("leader Save: %v", err)
		}
		addN(t, e, 10+20*round, 20)
		drain(t, f, l)
	}
	st := f.Status()
	if st.Snapshots != 1 {
		t.Fatalf("expected exactly the bootstrap snapshot, got %d", st.Snapshots)
	}
	if want := e.Generation(); st.Streams[0].Gen != want {
		t.Fatalf("follower at generation %d, leader at %d", st.Streams[0].Gen, want)
	}
	sameTopK(t, e, f, 8, []float64{4, 3}, "coffee")
}

func TestFollowerRestartResumesFromWatermark(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	e, l, srv := newLeaderEngine(t, ldir)
	addN(t, e, 0, 15)

	f, err := OpenFollower(fdir, srv.URL, fastOpts())
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	drain(t, f, l)
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// More traffic while the follower is down; the restart must resume the
	// tail from its durable watermark — no second bootstrap.
	addN(t, e, 15, 15)
	f, err = OpenFollower(fdir, srv.URL, fastOpts())
	if err != nil {
		t.Fatalf("reopen follower: %v", err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	drain(t, f, l)
	if got := f.Status().Snapshots; got != 0 {
		t.Fatalf("restart bootstrapped %d snapshots, want local recovery", got)
	}
	sameTopK(t, e, f, 6, []float64{2, 1}, "pizza0")
}

func TestFollowerRebootstrapsWhenLeftBehind(t *testing.T) {
	ldir, fdir := t.TempDir(), t.TempDir()
	e, l, srv := newLeaderEngine(t, ldir)
	addN(t, e, 0, 10)

	f, err := OpenFollower(fdir, srv.URL, fastOpts())
	if err != nil {
		t.Fatalf("OpenFollower: %v", err)
	}
	drain(t, f, l)
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Two rotations while the follower is down: its generation is no longer
	// tailed (the leader only keeps the previous one), so the restart gets
	// 410 and must rebuild from a fresh snapshot.
	for round := 0; round < 2; round++ {
		addN(t, e, 10+5*round, 5)
		if err := e.Save(); err != nil {
			t.Fatalf("leader Save: %v", err)
		}
	}
	addN(t, e, 20, 5)

	f, err = OpenFollower(fdir, srv.URL, fastOpts())
	if err != nil {
		t.Fatalf("reopen follower: %v", err)
	}
	defer f.Close() //nolint:errcheck // test teardown
	drain(t, f, l)
	st := f.Status()
	if st.Snapshots == 0 {
		t.Fatalf("expected a re-bootstrap, got none (status %+v)", st)
	}
	sameTopK(t, e, f, 10, []float64{3, 1}, "coffee")
	if f.Stats().Objects != e.Stats().Objects {
		t.Fatalf("follower stats %+v, leader %+v", f.Stats(), e.Stats())
	}
}

func TestPositionTokenRoundTrip(t *testing.T) {
	ps := []Position{{Gen: 3, Seq: 17}, {Gen: 1, Seq: 0}}
	tok := EncodePositions(ps)
	got, err := ParsePositions(tok)
	if err != nil {
		t.Fatalf("ParsePositions(%q): %v", tok, err)
	}
	if len(got) != len(ps) || got[0] != ps[0] || got[1] != ps[1] {
		t.Fatalf("round trip %q -> %+v, want %+v", tok, got, ps)
	}
	for _, bad := range []string{"", "3", "3.", "x.1", "1.y", "1.2;;"} {
		if _, err := ParsePositions(bad); err == nil {
			t.Errorf("ParsePositions(%q) accepted", bad)
		}
	}
	if !(Position{Gen: 2, Seq: 0}).AtLeast(Position{Gen: 1, Seq: 99}) {
		t.Fatalf("newer generation must dominate")
	}
	if (Position{Gen: 1, Seq: 5}).AtLeast(Position{Gen: 1, Seq: 6}) {
		t.Fatalf("5 is not at least 6")
	}
}

func TestDecodeFramesContinuity(t *testing.T) {
	recs := []wal.Record{
		{Seq: 4, Op: wal.OpAdd, ID: 0, Tag: 0, Point: []float64{1, 2}, Text: "a"},
		{Seq: 5, Op: wal.OpDelete, ID: 0},
	}
	body := encodeFrames(recs)

	got, err := decodeFrames(body, 3)
	if err != nil {
		t.Fatalf("decodeFrames: %v", err)
	}
	if len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 5 || got[0].Text != "a" {
		t.Fatalf("decoded %+v", got)
	}

	// A gap (starting after the wrong position) is an error, not a skip.
	if _, err := decodeFrames(body, 2); err == nil {
		t.Fatalf("sequence gap accepted")
	}
	// A torn tail is detected.
	if _, err := decodeFrames(body[:len(body)-3], 3); !errors.Is(err, wal.ErrPartialFrame) {
		t.Fatalf("torn frame: %v", err)
	}
	// Corruption is detected.
	bad := append([]byte(nil), body...)
	bad[9] ^= 0x40
	if _, err := decodeFrames(bad, 3); !errors.Is(err, wal.ErrBadFrame) {
		t.Fatalf("corrupt frame: %v", err)
	}
	// Empty body (caught up) is fine.
	if recs, err := decodeFrames(nil, 9); err != nil || len(recs) != 0 {
		t.Fatalf("empty body: %v %v", recs, err)
	}
}
