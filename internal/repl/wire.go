package repl

import (
	"fmt"
	"strconv"
	"strings"

	"spatialkeyword/internal/wal"
)

// Wire protocol. Replication runs over three HTTP endpoints the leader
// mounts under /repl:
//
//	GET /repl/meta
//	    JSON topology: sharded or not, and each stream's current
//	    (generation, head-sequence) watermark.
//
//	GET /repl/snapshot?shard=S&gen=G&file=objects|index|manifest|shards
//	    Raw bytes of one immutable file of a committed generation —
//	    follower bootstrap. "shards" is the top-level sharded manifest
//	    (gen ignored); the rest are generation-G files of stream S.
//
//	GET /repl/log?shard=S&gen=G&after=N&wait=MS
//	    The stream's log records after sequence N in generation G, as
//	    concatenated WAL frames (the exact bytes AppendRecord produces).
//	    Response headers:
//	      X-SK-Repl-Gen     generation the frames belong to (= G)
//	      X-SK-Repl-Head    G's current head sequence on the leader
//	      X-SK-Repl-Rotate  present when G is already rotated: the next
//	                        generation; the follower drains G to head,
//	                        checkpoints locally, and continues there
//	    wait long-polls up to MS milliseconds when the follower is caught
//	    up. A request for a generation older than the leader's previous
//	    one answers 410 Gone: the tail is no longer servable and the
//	    follower must re-bootstrap from a fresh snapshot.
//
// A position — (generation, sequence) per stream — is a complete resume
// point: generations only move forward, and sequences are dense from 1
// within each generation. Position vectors also serialize as
// read-your-writes tokens ("gen.seq;gen.seq;..." in stream order), handed
// out by the leader on writes and awaited by replicas before reads.
const (
	MetaPath     = "/repl/meta"
	SnapshotPath = "/repl/snapshot"
	LogPath      = "/repl/log"

	HeaderGen    = "X-SK-Repl-Gen"
	HeaderHead   = "X-SK-Repl-Head"
	HeaderRotate = "X-SK-Repl-Rotate"
	// HeaderPosition carries a position-vector token on the leader's write
	// responses (read-your-writes) and on replica read responses (what the
	// answer reflects).
	HeaderPosition = "X-SK-Repl-Position"
)

// Meta is the /repl/meta payload.
type Meta struct {
	// Sharded reports whether the leader is a sharded engine; the follower
	// mirrors the layout.
	Sharded bool `json:"sharded"`
	// Streams is one entry per replication stream (one for a single
	// engine, one per shard otherwise), in stream order.
	Streams []StreamMeta `json:"streams"`
}

// StreamMeta is one stream's current watermark.
type StreamMeta struct {
	Gen  uint64 `json:"gen"`
	Head uint64 `json:"head"`
}

// Position is one stream's resume point: the last sequence applied within
// a generation.
type Position struct {
	Gen uint64
	Seq uint64
}

// AtLeast reports whether p is at or past q.
func (p Position) AtLeast(q Position) bool {
	return p.Gen > q.Gen || (p.Gen == q.Gen && p.Seq >= q.Seq)
}

// EncodePositions renders a position vector as a token.
func EncodePositions(ps []Position) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = strconv.FormatUint(p.Gen, 10) + "." + strconv.FormatUint(p.Seq, 10)
	}
	return strings.Join(parts, ";")
}

// ParsePositions parses a position-vector token.
func ParsePositions(tok string) ([]Position, error) {
	if tok == "" {
		return nil, fmt.Errorf("repl: empty position token")
	}
	parts := strings.Split(tok, ";")
	out := make([]Position, len(parts))
	for i, part := range parts {
		gs, ss, ok := strings.Cut(part, ".")
		if !ok {
			return nil, fmt.Errorf("repl: malformed position %q", part)
		}
		gen, err := strconv.ParseUint(gs, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("repl: malformed position %q", part)
		}
		seq, err := strconv.ParseUint(ss, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("repl: malformed position %q", part)
		}
		out[i] = Position{Gen: gen, Seq: seq}
	}
	return out, nil
}

// encodeFrames renders records as concatenated WAL frames — the /repl/log
// response body.
func encodeFrames(recs []wal.Record) []byte {
	var buf []byte
	for _, r := range recs {
		buf = AppendFrame(buf, r)
	}
	return buf
}

// AppendFrame appends one record, framed, to dst. (Thin alias over the WAL
// codec so fault tests can build wire bodies without importing wal.)
func AppendFrame(dst []byte, r wal.Record) []byte { return wal.AppendRecord(dst, r) }

// decodeFrames parses a /repl/log body into records and verifies stream
// continuity: the first record must be after+1 and each next one +1. Any
// violation — torn frame, CRC mismatch, sequence gap — is returned as an
// error wrapping wal.ErrBadFrame or wal.ErrPartialFrame so the tail loop
// can re-request from its last acknowledged position.
func decodeFrames(data []byte, after uint64) ([]wal.Record, error) {
	var recs []wal.Record
	next := after + 1
	for len(data) > 0 {
		rec, n, err := wal.DecodeFrame(data)
		if err != nil {
			return nil, err
		}
		if n == 0 {
			// Clean terminator (zero length): only valid as trailing padding.
			for _, b := range data {
				if b != 0 {
					return nil, fmt.Errorf("%w: garbage after terminator", wal.ErrBadFrame)
				}
			}
			break
		}
		if rec.Seq != next {
			return nil, fmt.Errorf("%w: sequence %d, want %d", wal.ErrBadFrame, rec.Seq, next)
		}
		next++
		recs = append(recs, rec)
		data = data[n:]
	}
	return recs, nil
}
