//go:build !race

// Allocation-regression gates for the packed read hot path. The race
// detector instruments allocations and breaks testing.AllocsPerRun's
// accounting, so these gates are skipped under -race (the behavior itself is
// covered race-enabled by the differential tests in packed_test.go).
package rtree

import (
	"math/rand"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

// TestLoadPackedHitAllocFree pins the core cache property: once a node is
// decoded and pinned, re-loading it — including the verify re-read of its
// device blocks — allocates nothing.
func TestLoadPackedHitAllocFree(t *testing.T) {
	disk := storage.NewDisk(4096)
	tree, err := New(disk, Config{Dim: 2, MaxEntries: 3, Scheme: orScheme{n: 8}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 60; i++ {
		p := geo.NewPoint(rng.Float64()*100, rng.Float64()*100)
		aux := make([]byte, 8)
		copy(aux, refMask(uint64(i)))
		if err := tree.Insert(uint64(i), geo.PointRect(p), aux); err != nil {
			t.Fatal(err)
		}
	}
	root, err := tree.Root()
	if err != nil {
		t.Fatal(err)
	}
	id := root.ID()
	if _, err := tree.LoadPacked(id); err != nil { // prime the cache and the scratch pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := tree.LoadPacked(id); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm LoadPacked allocates %.1f objects/op, want 0", allocs)
	}
}

// TestWarmIterAllocBounded gates the full packed traversal: a warm
// nearest-neighbor scan over the whole tree must stay within a constant
// handful of allocations (the iterator itself and its bookkeeping),
// independent of how many nodes it expands.
func TestWarmIterAllocBounded(t *testing.T) {
	disk := storage.NewDisk(4096)
	tree, err := New(disk, Config{Dim: 2, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300; i++ {
		p := geo.NewPoint(rng.Float64()*100, rng.Float64()*100)
		if err := tree.Insert(uint64(i+1), geo.PointRect(p), nil); err != nil {
			t.Fatal(err)
		}
	}
	q := geo.NewPoint(50, 50)
	scan := func() {
		it := tree.NearestNeighbors(q, nil)
		defer it.Close()
		for {
			_, _, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				return
			}
		}
	}
	scan() // warm the node cache, scratch pool, and iterator pool
	allocs := testing.AllocsPerRun(50, scan)
	// The budget covers the Iter struct and pprof label plumbing — not the
	// per-node, per-entry decode storm the packed path eliminates. With ~40
	// nodes of 8 entries each, the legacy path would allocate thousands.
	const budget = 16
	if allocs > budget {
		t.Fatalf("warm full scan allocates %.1f objects/op, want <= %d", allocs, budget)
	}
}
