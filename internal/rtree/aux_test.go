package rtree

import (
	"math/rand"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

// orScheme is a minimal AuxScheme for testing the payload plumbing: every
// entry carries a fixed-length bitmask and a parent entry's payload is the
// OR of its child node's entry payloads — the same superimposition shape as
// the IR²-Tree, without the text machinery.
type orScheme struct{ n int }

func (s orScheme) EntryAuxLen(int) int { return s.n }

func (s orScheme) NodeAux(r NodeReader, n *Node) ([]byte, error) {
	out := make([]byte, s.n)
	for i := 0; i < n.NumEntries(); i++ {
		_, _, aux := n.Entry(i)
		for j := range out {
			out[j] |= aux[j]
		}
	}
	return out, nil
}

// bigScheme forces multi-block nodes: a payload long enough that a node
// cannot fit in one 4096-byte block.
type bigScheme struct{ orScheme }

func newAuxTree(t *testing.T, scheme AuxScheme, maxEntries int) (*Tree, *storage.Disk) {
	t.Helper()
	disk := storage.NewDisk(4096)
	tree, err := New(disk, Config{Dim: 2, MaxEntries: maxEntries, Scheme: scheme})
	if err != nil {
		t.Fatal(err)
	}
	return tree, disk
}

// refMask derives a deterministic 4-byte mask for an object reference.
func refMask(ref uint64) []byte {
	return []byte{
		byte(1 << (ref % 8)),
		byte(1 << ((ref / 8) % 8)),
		byte(1 << ((ref / 64) % 8)),
		0,
	}
}

func TestAuxMaintainedThroughInserts(t *testing.T) {
	tree, _ := newAuxTree(t, orScheme{n: 4}, 3)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		p := geo.NewPoint(rng.Float64()*100, rng.Float64()*100)
		if err := tree.Insert(uint64(i), geo.PointRect(p), refMask(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// CheckInvariants verifies parent payload == NodeAux(child) everywhere.
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAuxMaintainedThroughDeletes(t *testing.T) {
	tree, _ := newAuxTree(t, orScheme{n: 4}, 3)
	rng := rand.New(rand.NewSource(7))
	pts := make([]geo.Point, 120)
	for i := range pts {
		pts[i] = geo.NewPoint(rng.Float64()*100, rng.Float64()*100)
		if err := tree.Insert(uint64(i), geo.PointRect(pts[i]), refMask(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	perm := rng.Perm(len(pts))
	for step, i := range perm {
		ok, err := tree.Delete(uint64(i), geo.PointRect(pts[i]))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("object %d missing", i)
		}
		if step%10 == 9 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("after %d deletes: %v", step+1, err)
			}
		}
	}
	if tree.Len() != 0 {
		t.Errorf("Len = %d", tree.Len())
	}
}

func TestAuxLengthValidated(t *testing.T) {
	tree, _ := newAuxTree(t, orScheme{n: 4}, 3)
	if err := tree.Insert(1, geo.PointRect(geo.NewPoint(0, 0)), []byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
	if err := tree.Insert(1, geo.PointRect(geo.NewPoint(0, 0)), nil); err == nil {
		t.Error("nil payload accepted by payload-carrying tree")
	}
}

func TestAuxPruningDuringSearch(t *testing.T) {
	tree, _ := newAuxTree(t, orScheme{n: 4}, 3)
	// Two clusters: refs 0..49 near origin with mask A, refs 100..149 far
	// away with mask B.
	rng := rand.New(rand.NewSource(8))
	maskA := []byte{0x01, 0, 0, 0}
	maskB := []byte{0x80, 0, 0, 0}
	for i := 0; i < 50; i++ {
		p := geo.NewPoint(rng.Float64()*10, rng.Float64()*10)
		if err := tree.Insert(uint64(i), geo.PointRect(p), maskA); err != nil {
			t.Fatal(err)
		}
		q := geo.NewPoint(1000+rng.Float64()*10, 1000+rng.Float64()*10)
		if err := tree.Insert(uint64(100+i), geo.PointRect(q), maskB); err != nil {
			t.Fatal(err)
		}
	}
	// Search from the origin for mask B objects only: the whole near
	// cluster must be pruned by payload, not by distance.
	it := tree.NearestNeighbors(geo.NewPoint(0, 0), func(_ bool, _ int, aux []byte) bool {
		return aux[0]&0x80 != 0
	})
	count := 0
	for {
		ref, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if ref < 100 {
			t.Fatalf("mask A object %d returned", ref)
		}
		count++
	}
	if count != 50 {
		t.Errorf("returned %d mask-B objects, want 50", count)
	}
}

func TestMultiBlockNodes(t *testing.T) {
	// 512-byte payloads with capacity 102: node needs
	// ceil((8 + 102*(40+512))/4096) = 14 blocks.
	scheme := bigScheme{orScheme{n: 512}}
	tree, disk := newAuxTree(t, scheme, 0)
	if got := tree.blocksForLevel(0); got < 2 {
		t.Fatalf("blocksForLevel = %d, want >= 2", got)
	}
	aux := make([]byte, 512)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		aux[i%512] = byte(i)
		p := geo.NewPoint(rng.Float64()*100, rng.Float64()*100)
		if err := tree.Insert(uint64(i), geo.PointRect(p), aux); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}

	// Loading one node must cost exactly 1 random read + (blocks-1)
	// sequential reads.
	root, err := tree.Root()
	if err != nil {
		t.Fatal(err)
	}
	disk.ResetStats()
	if _, err := tree.LoadNode(root.ID()); err != nil {
		t.Fatal(err)
	}
	s := disk.Stats()
	wantSeq := uint64(tree.blocksForLevel(root.Level()) - 1)
	if s.RandomReads != 1 || s.SequentialReads != wantSeq {
		t.Errorf("node load I/O = %+v, want 1 random + %d sequential", s, wantSeq)
	}
}

func TestRebuildAux(t *testing.T) {
	tree, _ := newAuxTree(t, orScheme{n: 4}, 3)
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 150; i++ {
		p := geo.NewPoint(rng.Float64()*100, rng.Float64()*100)
		if err := tree.Insert(uint64(i), geo.PointRect(p), refMask(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Sabotage: zero out every interior payload directly on disk.
	var interior []*Node
	if err := tree.VisitNodes(func(n *Node) error {
		if n.Level() > 0 {
			interior = append(interior, n)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for _, n := range interior {
		for i := range n.entries {
			n.entries[i].aux = make([]byte, 4)
		}
		if err := tree.storeNode(n); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err == nil {
		t.Fatal("sabotage not detected — test is vacuous")
	}
	if err := tree.RebuildAux(); err != nil {
		t.Fatal(err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatalf("after rebuild: %v", err)
	}
}

func TestRebuildAuxEmptyTree(t *testing.T) {
	tree, _ := newAuxTree(t, orScheme{n: 4}, 3)
	if err := tree.RebuildAux(); err != nil {
		t.Fatal(err)
	}
}
