package rtree

import (
	"math/rand"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

// Micro-benchmarks for the spatial substrate. The paper-level benchmarks
// (per figure/table) live in the repository root's bench_test.go.

func benchTree(b *testing.B, n int, split SplitAlgorithm) (*Tree, []geo.Point) {
	b.Helper()
	tree, err := New(storage.NewDisk(4096), Config{Dim: 2, Split: split})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pts := make([]geo.Point, n)
	for i := range pts {
		pts[i] = geo.NewPoint(rng.Float64()*10000, rng.Float64()*10000)
		if err := tree.Insert(uint64(i), geo.PointRect(pts[i]), nil); err != nil {
			b.Fatal(err)
		}
	}
	return tree, pts
}

func BenchmarkInsert(b *testing.B) {
	tree, _ := benchTree(b, 1, QuadraticSplit)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geo.NewPoint(rng.Float64()*10000, rng.Float64()*10000)
		if err := tree.Insert(uint64(i+10), geo.PointRect(p), nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBulkLoad10k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	entries := make([]BulkEntry, 10000)
	for i := range entries {
		p := geo.NewPoint(rng.Float64()*10000, rng.Float64()*10000)
		entries[i] = BulkEntry{Ref: uint64(i), Rect: geo.PointRect(p)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree, err := New(storage.NewDisk(4096), Config{Dim: 2})
		if err != nil {
			b.Fatal(err)
		}
		if err := tree.BulkLoad(entries); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNearestNeighbor10(b *testing.B) {
	tree, _ := benchTree(b, 20000, QuadraticSplit)
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		it := tree.NearestNeighbors(geo.NewPoint(rng.Float64()*10000, rng.Float64()*10000), nil)
		for j := 0; j < 10; j++ {
			if _, _, ok, err := it.Next(); err != nil || !ok {
				b.Fatal(ok, err)
			}
		}
	}
}

func BenchmarkDelete(b *testing.B) {
	tree, pts := benchTree(b, 50000, QuadraticSplit)
	b.ResetTimer()
	for i := 0; i < b.N && i < len(pts); i++ {
		ok, err := tree.Delete(uint64(i), geo.PointRect(pts[i]))
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}
