package rtree

import (
	"fmt"
	"sort"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

// BulkEntry is one object entry for BulkLoad.
type BulkEntry struct {
	Ref  uint64
	Rect geo.Rect
	Aux  []byte
}

// BulkLoad builds the tree from a full entry set with Sort-Tile-Recursive
// packing (Leutenegger et al.), an extension beyond the paper: the paper
// constructs trees by repeated Insert, which costs O(n log n) node I/O and
// produces overlapping nodes; STR packs near-full nodes with minimal
// overlap in one pass per level. The aux maintenance contract is identical
// to Insert's: parent payloads are computed through the AuxScheme
// bottom-up.
//
// BulkLoad requires an empty tree and at least one entry. Every node except
// possibly within the root's chain satisfies the minimum fill (trailing
// chunks are rebalanced).
func (t *Tree) BulkLoad(entries []BulkEntry) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root != storage.NilBlock {
		return fmt.Errorf("rtree: BulkLoad on non-empty tree")
	}
	if len(entries) == 0 {
		return fmt.Errorf("rtree: BulkLoad with no entries")
	}
	auxLen := t.scheme.EntryAuxLen(0)
	level := make([]entry, len(entries))
	for i, be := range entries {
		if be.Rect.Dim() != t.dim {
			return fmt.Errorf("rtree: bulk entry %d dimension %d, want %d", i, be.Rect.Dim(), t.dim)
		}
		if len(be.Aux) != auxLen {
			return fmt.Errorf("rtree: bulk entry %d payload %d bytes, want %d", i, len(be.Aux), auxLen)
		}
		level[i] = entry{ptr: be.Ref, rect: be.Rect.Clone(), aux: cloneBytes(be.Aux)}
	}

	lvl := 0
	for {
		if len(level) <= t.maxE {
			root := t.allocNode(lvl)
			root.entries = level
			if err := t.storeNode(root); err != nil {
				return err
			}
			t.root = root.id
			t.height = lvl + 1
			t.size = len(entries)
			return nil
		}
		groups := t.rebalance(t.strPack(level, 0))
		next := make([]entry, 0, len(groups))
		for _, g := range groups {
			n := t.allocNode(lvl)
			n.entries = g
			if err := t.storeNode(n); err != nil {
				return err
			}
			aux, err := t.nodeAux(n)
			if err != nil {
				return err
			}
			next = append(next, entry{ptr: uint64(n.id), rect: n.mbr(), aux: aux})
		}
		level = next
		lvl++
	}
}

// strPack tiles entries into groups of at most MaxEntries each, recursing
// across dimensions: sort by the center of the current dimension, cut into
// slabs sized for the remaining dimensions, recurse; the last dimension
// chunks directly.
func (t *Tree) strPack(entries []entry, dim int) [][]entry {
	n := len(entries)
	if n <= t.maxE {
		return [][]entry{entries}
	}
	sort.SliceStable(entries, func(i, j int) bool {
		ci := entries[i].rect.Lo[dim] + entries[i].rect.Hi[dim]
		cj := entries[j].rect.Lo[dim] + entries[j].rect.Hi[dim]
		return ci < cj
	})
	if dim == t.dim-1 {
		return t.chunk(entries)
	}
	// Number of leaves still needed and slabs across remaining dims.
	leaves := (n + t.maxE - 1) / t.maxE
	remaining := t.dim - dim
	slabs := ceilRoot(leaves, remaining)
	slabSize := (n + slabs - 1) / slabs
	if slabSize < t.maxE {
		slabSize = t.maxE
	}
	var groups [][]entry
	for start := 0; start < n; start += slabSize {
		end := start + slabSize
		if end > n {
			end = n
		}
		groups = append(groups, t.strPack(entries[start:end], dim+1)...)
	}
	return groups
}

// chunk splits a sorted run into consecutive groups of MaxEntries; the
// caller rebalances undersized trailing groups.
func (t *Tree) chunk(entries []entry) [][]entry {
	n := len(entries)
	var groups [][]entry
	for start := 0; start < n; start += t.maxE {
		end := start + t.maxE
		if end > n {
			end = n
		}
		groups = append(groups, entries[start:end])
	}
	return groups
}

// rebalance repairs groups that fall below the minimum fill (the trailing
// chunk of a slab) by merging them with their predecessor and, if the merge
// overflows, re-splitting it into two halves that both satisfy the minimum.
func (t *Tree) rebalance(groups [][]entry) [][]entry {
	out := make([][]entry, 0, len(groups))
	for _, g := range groups {
		if len(g) >= t.minE || len(out) == 0 {
			out = append(out, g)
			continue
		}
		prev := out[len(out)-1]
		merged := make([]entry, 0, len(prev)+len(g))
		merged = append(merged, prev...)
		merged = append(merged, g...)
		if len(merged) <= t.maxE {
			out[len(out)-1] = merged
			continue
		}
		half := len(merged) / 2
		out[len(out)-1] = merged[:half]
		out = append(out, merged[half:])
	}
	return out
}

// ceilRoot returns ceil(n^(1/k)) for k >= 1.
func ceilRoot(n, k int) int {
	if k <= 1 || n <= 1 {
		return n
	}
	// Integer search: smallest s with s^k >= n.
	s := 1
	for pow(s, k) < n {
		s++
	}
	return s
}

func pow(s, k int) int {
	out := 1
	for i := 0; i < k; i++ {
		out *= s
		if out < 0 { // overflow guard; n is far smaller in practice
			return 1 << 62
		}
	}
	return out
}
