package rtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

func bulkEntries(rng *rand.Rand, n int) []BulkEntry {
	out := make([]BulkEntry, n)
	for i := range out {
		p := geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
		out[i] = BulkEntry{Ref: uint64(i), Rect: geo.PointRect(p)}
	}
	return out
}

func TestBulkLoadInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{1, 2, 5, 16, 17, 100, 1000, 2500} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			tree := newTestTree(t, 16)
			if err := tree.BulkLoad(bulkEntries(rng, n)); err != nil {
				t.Fatal(err)
			}
			if tree.Len() != n {
				t.Errorf("Len = %d, want %d", tree.Len(), n)
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBulkLoadSearchMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	entries := bulkEntries(rng, 800)
	tree := newTestTree(t, 8)
	if err := tree.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	q := geo.NewPoint(500, 500)
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da := entries[order[a]].Rect.MinDist(q)
		db := entries[order[b]].Rect.MinDist(q)
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	it := tree.NearestNeighbors(q, nil)
	for rank := range entries {
		ref, dist, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("rank %d: ok=%v err=%v", rank, ok, err)
		}
		want := entries[order[rank]].Rect.MinDist(q)
		if dist != want {
			t.Fatalf("rank %d: dist %g want %g (ref %d)", rank, dist, want, ref)
		}
	}
}

func TestBulkLoadWithAux(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	tree, _ := newAuxTree(t, orScheme{n: 4}, 8)
	entries := make([]BulkEntry, 300)
	for i := range entries {
		p := geo.NewPoint(rng.Float64()*100, rng.Float64()*100)
		entries[i] = BulkEntry{Ref: uint64(i), Rect: geo.PointRect(p), Aux: refMask(uint64(i))}
	}
	if err := tree.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	// CheckInvariants validates every parent payload against NodeAux.
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Mutations after a bulk load keep working.
	if err := tree.Insert(999, geo.PointRect(geo.NewPoint(50, 50)), refMask(999)); err != nil {
		t.Fatal(err)
	}
	if ok, err := tree.Delete(0, entries[0].Rect); err != nil || !ok {
		t.Fatalf("delete after bulk: %v %v", ok, err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadValidation(t *testing.T) {
	tree := newTestTree(t, 8)
	if err := tree.BulkLoad(nil); err == nil {
		t.Error("empty bulk load accepted")
	}
	if err := tree.BulkLoad([]BulkEntry{{Ref: 1, Rect: geo.PointRect(geo.NewPoint(1, 2, 3))}}); err == nil {
		t.Error("wrong-dimension entry accepted")
	}
	if err := tree.BulkLoad([]BulkEntry{{Ref: 1, Rect: geo.PointRect(geo.NewPoint(1, 2)), Aux: []byte{1}}}); err == nil {
		t.Error("wrong payload length accepted")
	}
	if err := tree.Insert(1, geo.PointRect(geo.NewPoint(0, 0)), nil); err != nil {
		t.Fatal(err)
	}
	if err := tree.BulkLoad(bulkEntries(rand.New(rand.NewSource(1)), 5)); err == nil {
		t.Error("bulk load into non-empty tree accepted")
	}
}

func TestBulkLoadCheaperAndTighterThanInserts(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	entries := bulkEntries(rng, 2000)

	insDisk := storage.NewDisk(4096)
	insTree, err := New(insDisk, Config{Dim: 2, MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := insTree.Insert(e.Ref, e.Rect, nil); err != nil {
			t.Fatal(err)
		}
	}
	insertIO := insDisk.Stats().Total()

	bulkDisk := storage.NewDisk(4096)
	bulkTree, err := New(bulkDisk, Config{Dim: 2, MaxEntries: 16})
	if err != nil {
		t.Fatal(err)
	}
	if err := bulkTree.BulkLoad(entries); err != nil {
		t.Fatal(err)
	}
	bulkIO := bulkDisk.Stats().Total()

	if bulkIO*5 > insertIO {
		t.Errorf("bulk load I/O %d not well below insert I/O %d", bulkIO, insertIO)
	}

	// STR packing also yields equal-or-fewer nodes (better fill).
	if bulkTree.NumNodes() > insTree.NumNodes() {
		t.Errorf("bulk tree has %d nodes, insert tree %d", bulkTree.NumNodes(), insTree.NumNodes())
	}

	// And equal-or-cheaper queries on average.
	var bulkNodes, insNodes int
	for trial := 0; trial < 20; trial++ {
		q := geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
		itB := bulkTree.NearestNeighbors(q, nil)
		itI := insTree.NearestNeighbors(q, nil)
		for i := 0; i < 10; i++ {
			if _, _, ok, err := itB.Next(); err != nil || !ok {
				t.Fatal(err)
			}
			if _, _, ok, err := itI.Next(); err != nil || !ok {
				t.Fatal(err)
			}
		}
		bulkNodes += itB.NodesLoaded()
		insNodes += itI.NodesLoaded()
	}
	if bulkNodes > insNodes*3/2 {
		t.Errorf("bulk-loaded tree queries load %d nodes vs %d", bulkNodes, insNodes)
	}
}

func TestCeilRoot(t *testing.T) {
	tests := []struct{ n, k, want int }{
		{1, 2, 1}, {4, 2, 2}, {5, 2, 3}, {9, 2, 3}, {10, 2, 4},
		{8, 3, 2}, {9, 3, 3}, {27, 3, 3}, {100, 1, 100}, {0, 5, 0},
	}
	for _, tt := range tests {
		if got := ceilRoot(tt.n, tt.k); got != tt.want {
			t.Errorf("ceilRoot(%d, %d) = %d, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}
