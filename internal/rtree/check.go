package rtree

import (
	"bytes"
	"fmt"

	"spatialkeyword/internal/storage"
)

// CheckInvariants verifies the structural invariants of the tree, reading
// every node. It is intended for tests and returns the first violation:
//
//   - every parent entry's MBR equals the union of its child's entry MBRs;
//   - every parent entry's payload equals the scheme's NodeAux of the child;
//   - levels decrease by exactly one on each descent (height balance);
//   - every non-root node holds between MinEntries and MaxEntries entries,
//     and the root holds at least 2 when it is interior (at least 1 when it
//     is a leaf);
//   - the number of reachable objects equals Len().
func (t *Tree) CheckInvariants() error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == storage.NilBlock {
		if t.size != 0 || t.height != 0 {
			return fmt.Errorf("rtree: empty root but size=%d height=%d", t.size, t.height)
		}
		return nil
	}
	root, err := t.loadNode(t.root)
	if err != nil {
		return err
	}
	if root.level != t.height-1 {
		return fmt.Errorf("rtree: root level %d but height %d", root.level, t.height)
	}
	if root.level > 0 && len(root.entries) < 2 {
		return fmt.Errorf("rtree: interior root with %d entries", len(root.entries))
	}
	if len(root.entries) < 1 {
		return fmt.Errorf("rtree: empty root node")
	}
	objects, nodes, err := t.checkNode(root, true)
	if err != nil {
		return err
	}
	if objects != t.size {
		return fmt.Errorf("rtree: reachable objects %d != size %d", objects, t.size)
	}
	if nodes != t.nodes {
		return fmt.Errorf("rtree: reachable nodes %d != node count %d", nodes, t.nodes)
	}
	return nil
}

func (t *Tree) checkNode(n *Node, isRoot bool) (objects, nodes int, err error) {
	if !isRoot {
		if len(n.entries) < t.minE || len(n.entries) > t.maxE {
			return 0, 0, fmt.Errorf("rtree: node %d has %d entries, want %d..%d",
				n.id, len(n.entries), t.minE, t.maxE)
		}
	}
	wantAuxLen := t.scheme.EntryAuxLen(n.level)
	for i := range n.entries {
		if len(n.entries[i].aux) != wantAuxLen {
			return 0, 0, fmt.Errorf("rtree: node %d entry %d payload %d bytes, want %d",
				n.id, i, len(n.entries[i].aux), wantAuxLen)
		}
	}
	if n.level == 0 {
		return len(n.entries), 1, nil
	}
	nodes = 1
	for i := range n.entries {
		child, err := t.loadNode(storage.BlockID(n.entries[i].ptr))
		if err != nil {
			return 0, 0, err
		}
		if child.level != n.level-1 {
			return 0, 0, fmt.Errorf("rtree: node %d level %d has child %d at level %d",
				n.id, n.level, child.id, child.level)
		}
		if !n.entries[i].rect.Equal(child.mbr()) {
			return 0, 0, fmt.Errorf("rtree: node %d entry %d MBR %v != child %d union %v",
				n.id, i, n.entries[i].rect, child.id, child.mbr())
		}
		wantAux, err := t.nodeAux(child)
		if err != nil {
			return 0, 0, err
		}
		if !bytes.Equal(n.entries[i].aux, wantAux) {
			return 0, 0, fmt.Errorf("rtree: node %d entry %d payload stale for child %d",
				n.id, i, child.id)
		}
		o, c, err := t.checkNode(child, false)
		if err != nil {
			return 0, 0, err
		}
		objects += o
		nodes += c
	}
	return objects, nodes, nil
}

// RebuildAux recomputes every entry payload bottom-up in one pass: leaf
// payloads are left as stored (they were supplied at Insert), and each
// parent entry's payload is recomputed through the scheme. Bulk index
// construction uses it so that an O(subtree) scheme like the MIR²-Tree's
// pays one tree pass instead of one subtree pass per insert.
func (t *Tree) RebuildAux() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == storage.NilBlock {
		return nil
	}
	root, err := t.loadNode(t.root)
	if err != nil {
		return err
	}
	_, err = t.rebuildAuxNode(root)
	return err
}

// rebuildAuxNode refreshes the payloads inside n (for interior nodes) and
// returns n's own summarizing payload for its parent.
func (t *Tree) rebuildAuxNode(n *Node) ([]byte, error) {
	if n.level > 0 {
		changed := false
		for i := range n.entries {
			child, err := t.loadNode(storage.BlockID(n.entries[i].ptr))
			if err != nil {
				return nil, err
			}
			aux, err := t.rebuildAuxNode(child)
			if err != nil {
				return nil, err
			}
			if !bytes.Equal(n.entries[i].aux, aux) {
				n.entries[i].aux = aux
				changed = true
			}
		}
		if changed {
			if err := t.storeNode(n); err != nil {
				return nil, err
			}
		}
	}
	return t.nodeAux(n)
}

// Stats summarizes the physical shape of a tree.
type Stats struct {
	Objects    int
	Nodes      int
	Height     int
	LeafNodes  int
	SizeBytes  int64
	AvgFanout  float64
	MaxEntries int
}

// ComputeStats walks the tree and returns its shape. The walk performs
// device reads; call it outside metered sections.
func (t *Tree) ComputeStats() (Stats, error) {
	s := Stats{
		Objects:    t.Len(),
		Height:     t.Height(),
		MaxEntries: t.MaxEntries(),
		SizeBytes:  t.dev.SizeBytes(),
	}
	var entrySum, nodeCount, leafCount int
	err := t.VisitNodes(func(n *Node) error {
		nodeCount++
		entrySum += len(n.entries)
		if n.level == 0 {
			leafCount++
		}
		return nil
	})
	if err != nil {
		return Stats{}, err
	}
	s.Nodes = nodeCount
	s.LeafNodes = leafCount
	if nodeCount > 0 {
		s.AvgFanout = float64(entrySum) / float64(nodeCount)
	}
	return s, nil
}
