package rtree

import (
	"fmt"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

// Delete removes the object entry with the given reference and MBR. It
// returns false if no such entry exists. This is the paper's Delete
// algorithm (Figure 6): FindLeaf locates the leaf holding the entry, the
// entry is removed, and CondenseTree — modified to maintain payloads through
// the AuxScheme exactly like AdjustTree — re-balances the tree, reinserting
// entries of underfull nodes and shrinking the root when it is left with a
// single child.
func (t *Tree) Delete(ref uint64, rect geo.Rect) (bool, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.root == storage.NilBlock {
		return false, nil
	}
	if rect.Dim() != t.dim {
		return false, fmt.Errorf("rtree: delete rect dimension %d, want %d", rect.Dim(), t.dim)
	}
	path, entryIdx, err := t.findLeaf(t.root, ref, rect, nil)
	if err != nil {
		return false, err
	}
	if path == nil {
		return false, nil
	}
	leaf := path[len(path)-1].node
	leaf.entries = append(leaf.entries[:entryIdx], leaf.entries[entryIdx+1:]...)
	if err := t.condenseTree(path); err != nil {
		return false, err
	}
	t.size--
	return true, nil
}

// findLeaf searches depth-first for the leaf containing an entry with the
// given reference and rectangle, following every subtree whose MBR contains
// rect (overlap means several may qualify). It returns the descent path and
// the entry index, or a nil path if not found.
func (t *Tree) findLeaf(id storage.BlockID, ref uint64, rect geo.Rect, prefix []pathStep) ([]pathStep, int, error) {
	n, err := t.loadNode(id)
	if err != nil {
		return nil, 0, err
	}
	// Copy the prefix: append-in-place would let sibling descents share a
	// backing array with the path we return.
	path := make([]pathStep, len(prefix)+1)
	copy(path, prefix)
	path[len(prefix)] = pathStep{node: n}
	if n.level == 0 {
		for i := range n.entries {
			if n.entries[i].ptr == ref && n.entries[i].rect.Equal(rect) {
				return path, i, nil
			}
		}
		return nil, 0, nil
	}
	for i := range n.entries {
		if !n.entries[i].rect.Contains(rect) {
			continue
		}
		path[len(path)-1].childIdx = i
		found, idx, err := t.findLeaf(storage.BlockID(n.entries[i].ptr), ref, rect, path)
		if err != nil {
			return nil, 0, err
		}
		if found != nil {
			return found, idx, nil
		}
	}
	return nil, 0, nil
}

// orphan is a node removed by CondenseTree whose entries await reinsertion.
type orphan struct {
	level   int
	entries []entry
}

// condenseTree walks the deletion path from the leaf to the root. Underfull
// nodes are removed and their entries queued for reinsertion; surviving
// nodes get their parent entry's MBR and payload refreshed. Finally the
// queued entries are reinserted at their original levels and a root with one
// child is collapsed.
func (t *Tree) condenseTree(path []pathStep) error {
	var orphans []orphan
	for i := len(path) - 1; i >= 1; i-- {
		n := path[i].node
		parent := path[i-1].node
		idx := path[i-1].childIdx
		if len(n.entries) < t.minE {
			parent.entries = append(parent.entries[:idx], parent.entries[idx+1:]...)
			orphans = append(orphans, orphan{level: n.level, entries: n.entries})
			t.freeNode(n)
			continue
		}
		if err := t.storeNode(n); err != nil {
			return err
		}
		aux, err := t.nodeAux(n)
		if err != nil {
			return err
		}
		parent.entries[idx] = entry{ptr: uint64(n.id), rect: n.mbr(), aux: aux}
	}

	root := path[0].node
	if err := t.storeNode(root); err != nil {
		return err
	}
	if err := t.shrinkRoot(root); err != nil {
		return err
	}

	// Reinsert orphaned entries, lowest level first so object entries land
	// before subtree entries that may need a taller tree.
	for lvl := 0; ; lvl++ {
		any := false
		for _, o := range orphans {
			if o.level != lvl {
				if o.level > lvl {
					any = true
				}
				continue
			}
			for _, e := range o.entries {
				if err := t.reinsert(e, o.level); err != nil {
					return err
				}
			}
		}
		if !any {
			break
		}
	}
	return nil
}

// reinsert places an orphaned entry back into the tree. Entries from an
// orphaned node at level L describe subtrees rooted at level L-1 (objects
// when L = 0) and must re-enter a node at level L. If the tree has shrunk
// below that height, the subtree is dissolved: its objects are reinserted
// individually.
func (t *Tree) reinsert(e entry, level int) error {
	if t.root == storage.NilBlock {
		if level == 0 {
			root := t.allocNode(0)
			root.entries = []entry{e}
			if err := t.storeNode(root); err != nil {
				return err
			}
			t.root = root.id
			t.height = 1
			return nil
		}
		return t.dissolve(e)
	}
	rootLevel := t.height - 1
	if level > 0 && rootLevel < level {
		return t.dissolve(e)
	}
	return t.insertAtLevel(e, level)
}

// dissolve reinserts every object of the subtree referenced by e one by one
// and frees the subtree's nodes.
func (t *Tree) dissolve(e entry) error {
	n, err := t.loadNode(storage.BlockID(e.ptr))
	if err != nil {
		return err
	}
	for _, child := range n.entries {
		if n.level == 0 {
			if err := t.reinsert(child, 0); err != nil {
				return err
			}
		} else {
			if err := t.dissolve(child); err != nil {
				return err
			}
		}
	}
	t.freeNode(n)
	return nil
}

// shrinkRoot collapses the root while it is an interior node with a single
// child, and resets the tree when the root is an empty leaf.
func (t *Tree) shrinkRoot(root *Node) error {
	for {
		if root.level == 0 {
			if len(root.entries) == 0 {
				t.freeNode(root)
				t.root = storage.NilBlock
				t.height = 0
			}
			return nil
		}
		if len(root.entries) > 1 {
			return nil
		}
		if len(root.entries) == 0 {
			// Unreachable through the public API (an interior root keeps at
			// least one child through CondenseTree), but guard anyway.
			t.freeNode(root)
			t.root = storage.NilBlock
			t.height = 0
			return nil
		}
		childID := storage.BlockID(root.entries[0].ptr)
		t.freeNode(root)
		child, err := t.loadNode(childID)
		if err != nil {
			return err
		}
		t.root = child.id
		t.height = child.level + 1
		root = child
	}
}
