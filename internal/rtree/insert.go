package rtree

import (
	"fmt"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

// pathStep records one level of a root-to-node descent: the node and the
// index of the entry through which the descent continued (meaningless in the
// final step).
type pathStep struct {
	node     *Node
	childIdx int
}

// Insert adds an object entry (ref, rect, aux) to the tree. This is the
// paper's Insert algorithm (Figure 5): ChooseLeaf descends by least area
// enlargement [Gut84], the leaf absorbs the entry, an overflowing node is
// split with the Quadratic Split technique, and AdjustTree propagates MBRs
// — and, through the AuxScheme, signatures — to the ancestors.
//
// aux must have the scheme's leaf-entry length (nil for a plain tree).
func (t *Tree) Insert(ref uint64, rect geo.Rect, aux []byte) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if rect.Dim() != t.dim {
		return fmt.Errorf("rtree: insert rect dimension %d, want %d", rect.Dim(), t.dim)
	}
	if want := t.scheme.EntryAuxLen(0); len(aux) != want {
		return fmt.Errorf("rtree: insert payload %d bytes, want %d", len(aux), want)
	}
	e := entry{ptr: ref, rect: rect.Clone(), aux: cloneBytes(aux)}

	if t.root == storage.NilBlock {
		root := t.allocNode(0)
		root.entries = []entry{e}
		if err := t.storeNode(root); err != nil {
			return err
		}
		t.root = root.id
		t.height = 1
		t.size = 1
		return nil
	}

	if err := t.insertAtLevel(e, 0); err != nil {
		return err
	}
	t.size++
	return nil
}

// insertAtLevel places entry e into a node at the given level (0 inserts an
// object into a leaf; higher levels reattach orphaned subtrees during
// CondenseTree). The caller holds the write lock.
func (t *Tree) insertAtLevel(e entry, level int) error {
	path, err := t.chooseNode(e.rect, level)
	if err != nil {
		return err
	}
	n := path[len(path)-1].node
	n.entries = append(n.entries, e)

	var split *Node
	if len(n.entries) > t.maxE {
		split, err = t.splitNode(n)
		if err != nil {
			return err
		}
	}
	return t.adjustTree(path, split)
}

// chooseNode descends from the root to a node at the target level, at each
// step picking the child whose MBR needs the least area enlargement to
// include rect (ties broken by smallest area, then lowest index — Guttman's
// ChooseLeaf). It returns the full descent path; the last step is the chosen
// node.
func (t *Tree) chooseNode(rect geo.Rect, level int) ([]pathStep, error) {
	n, err := t.loadNode(t.root)
	if err != nil {
		return nil, err
	}
	if n.level < level {
		return nil, fmt.Errorf("rtree: cannot place entry at level %d in tree of height %d", level, t.height)
	}
	path := []pathStep{{node: n}}
	for n.level > level {
		best, bestEnl, bestArea := -1, 0.0, 0.0
		for i := range n.entries {
			enl := n.entries[i].rect.Enlargement(rect)
			area := n.entries[i].rect.Area()
			if best == -1 || enl < bestEnl || (enl == bestEnl && area < bestArea) {
				best, bestEnl, bestArea = i, enl, area
			}
		}
		path[len(path)-1].childIdx = best
		child, err := t.loadNode(storage.BlockID(n.entries[best].ptr))
		if err != nil {
			return nil, err
		}
		path = append(path, pathStep{node: child})
		n = child
	}
	return path, nil
}

// splitNode divides an overflowing node's entries between n and a freshly
// allocated sibling using the configured split algorithm, returning the
// sibling. Both nodes end up with at least MinEntries entries.
func (t *Tree) splitNode(n *Node) (*Node, error) {
	groupA, groupB := t.splitEntries(n.entries)
	sibling := t.allocNode(n.level)
	n.entries = groupA
	sibling.entries = groupB
	return sibling, nil
}

// quadraticSplit implements [Gut84] §3.5.2: PickSeeds chooses the pair of
// entries that would waste the most area if grouped together; the rest are
// assigned one by one by PickNext (greatest difference of enlargements),
// with ties broken by smaller area, then smaller group. If one group gets
// so large that the other needs every remaining entry to reach minimum
// fill, the remainder is assigned wholesale.
func (t *Tree) quadraticSplit(entries []entry) (groupA, groupB []entry) {
	seedA, seedB := pickSeeds(entries)
	groupA = append(groupA, entries[seedA])
	groupB = append(groupB, entries[seedB])
	rectA := entries[seedA].rect.Clone()
	rectB := entries[seedB].rect.Clone()

	rest := make([]entry, 0, len(entries)-2)
	for i := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, entries[i])
		}
	}

	for len(rest) > 0 {
		// If one group must take everything left to reach minimum fill, do it.
		if len(groupA)+len(rest) == t.minE {
			groupA = append(groupA, rest...)
			return groupA, groupB
		}
		if len(groupB)+len(rest) == t.minE {
			groupB = append(groupB, rest...)
			return groupA, groupB
		}
		// PickNext: entry with maximum |d1 - d2|.
		next, bestDiff := 0, -1.0
		for i := range rest {
			d1 := rectA.Enlargement(rest[i].rect)
			d2 := rectB.Enlargement(rest[i].rect)
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				next, bestDiff = i, diff
			}
		}
		e := rest[next]
		rest = append(rest[:next], rest[next+1:]...)
		d1 := rectA.Enlargement(e.rect)
		d2 := rectB.Enlargement(e.rect)
		toA := d1 < d2
		if d1 == d2 {
			// Resolve by smaller area, then fewer entries.
			a1, a2 := rectA.Area(), rectB.Area()
			switch {
			case a1 != a2:
				toA = a1 < a2
			default:
				toA = len(groupA) <= len(groupB)
			}
		}
		if toA {
			groupA = append(groupA, e)
			rectA = rectA.Union(e.rect)
		} else {
			groupB = append(groupB, e)
			rectB = rectB.Union(e.rect)
		}
	}
	return groupA, groupB
}

// pickSeeds returns the indexes of the two entries that waste the most area
// when paired: maximize area(union) - area(e1) - area(e2).
func pickSeeds(entries []entry) (int, int) {
	bestA, bestB, bestWaste := 0, 1, 0.0
	first := true
	for i := 0; i < len(entries); i++ {
		for j := i + 1; j < len(entries); j++ {
			waste := entries[i].rect.Union(entries[j].rect).Area() -
				entries[i].rect.Area() - entries[j].rect.Area()
			if first || waste > bestWaste {
				bestA, bestB, bestWaste = i, j, waste
				first = false
			}
		}
	}
	return bestA, bestB
}

// adjustTree writes the modified node back and propagates MBR and payload
// changes to the root, splitting ancestors that overflow and growing the
// tree when the root itself splits. split is the new sibling produced by a
// split of the deepest node on the path, or nil.
//
// This is the paper's AdjustTree modification: alongside each MBR update,
// the parent entry's payload is recomputed through the AuxScheme, so
// signature bits set in a node propagate to all ancestors.
func (t *Tree) adjustTree(path []pathStep, split *Node) error {
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i].node
		if err := t.storeNode(n); err != nil {
			return err
		}
		if split != nil {
			if err := t.storeNode(split); err != nil {
				return err
			}
		}

		if i == 0 {
			// n is the root.
			if split == nil {
				return nil
			}
			return t.growRoot(n, split)
		}

		parent := path[i-1].node
		idx := path[i-1].childIdx
		aux, err := t.nodeAux(n)
		if err != nil {
			return err
		}
		parent.entries[idx] = entry{ptr: uint64(n.id), rect: n.mbr(), aux: aux}

		var nextSplit *Node
		if split != nil {
			splitAux, err := t.nodeAux(split)
			if err != nil {
				return err
			}
			parent.entries = append(parent.entries, entry{
				ptr: uint64(split.id), rect: split.mbr(), aux: splitAux,
			})
			if len(parent.entries) > t.maxE {
				nextSplit, err = t.splitNode(parent)
				if err != nil {
					return err
				}
			}
		}
		split = nextSplit
	}
	return nil
}

// growRoot replaces the root with a new node one level higher whose two
// entries are the old root and its split sibling (Figure 5 lines 5-12).
func (t *Tree) growRoot(old, sibling *Node) error {
	root := t.allocNode(old.level + 1)
	oldAux, err := t.nodeAux(old)
	if err != nil {
		return err
	}
	sibAux, err := t.nodeAux(sibling)
	if err != nil {
		return err
	}
	root.entries = []entry{
		{ptr: uint64(old.id), rect: old.mbr(), aux: oldAux},
		{ptr: uint64(sibling.id), rect: sibling.mbr(), aux: sibAux},
	}
	if err := t.storeNode(root); err != nil {
		return err
	}
	t.root = root.id
	t.height = root.level + 1
	return nil
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
