// Packed node images and the pinned decoded-node cache — the zero-allocation
// read hot path.
//
// loadNode decodes a node into pointer-rich structs: a Node, an entry slice,
// two geo.Points and an aux copy per entry — for a 102-entry node that is
// several hundred allocations, repeated on every visit. A PackedNode instead
// pins the node's trimmed on-disk image (exactly the bytes storeNode wrote)
// in a single allocation and serves pointers, rectangles, and payloads by
// offset arithmetic straight off that buffer. Decoded images live in a
// nodecache.Cache keyed by the node's first BlockID, shared by every query
// on the tree.
//
// Cache correctness does not rest on invalidation alone. A hit still pays
// the node's full modeled device I/O — ReadRunTo over the same block
// sequence loadNode would read, so the random/sequential counters that feed
// the benchmark cost model are bit-identical with and without the cache —
// and then verifies the fresh image against the pinned one, reparsing on any
// difference. The mutation path additionally invalidates rewritten and
// freed nodes (storeNode/freeNode), which keeps the verify step from ever
// wasting a reparse in normal operation; but even a hypothetical missed
// invalidation can only cost a decode, never serve stale entries. The
// header (level + count) occupies the image's first bytes, so any
// structural change to a node changes the prefix the comparison sees.
package rtree

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/nodecache"
	"spatialkeyword/internal/storage"
)

// PackedNode is a decoded node pinned in its serialized layout: one buffer
// holding exactly the bytes storeNode encodes (header + count entries), plus
// the header fields and per-level sizes needed to address entries in place.
// PackedNodes are immutable once published to the cache; accessors that
// return slices alias the buffer and must not be written through or retained
// past the next tree mutation.
type PackedNode struct {
	id     storage.BlockID
	level  int
	count  int
	dim    int
	es     int // serialized entry size at this level
	auxLen int
	buf    []byte // trimmed image: nodeHeaderSize + count*es bytes
}

// ID returns the node's first block ID.
func (p *PackedNode) ID() storage.BlockID { return p.id }

// Level returns the node's level; 0 is the leaf level.
func (p *PackedNode) Level() int { return p.level }

// NumEntries returns the number of entries in the node.
func (p *PackedNode) NumEntries() int { return p.count }

// Bytes returns the node's trimmed serialized image. Callers must not
// modify it.
func (p *PackedNode) Bytes() []byte { return p.buf }

// entryOff returns the byte offset of entry i in the image.
func (p *PackedNode) entryOff(i int) int { return nodeHeaderSize + i*p.es }

// EntryPtr returns entry i's pointer: an object reference in leaves, a
// child node block in interior nodes.
//
//skvet:hotpath
func (p *PackedNode) EntryPtr(i int) uint64 {
	return binary.LittleEndian.Uint64(p.buf[p.entryOff(i):])
}

// EntryRectInto decodes entry i's MBR into the caller-provided corner
// points (each of length dim) and returns a Rect built from them. The
// caller owns the backing arrays, so a traversal can reuse one pair of
// points for every entry it scores.
//
//skvet:hotpath
func (p *PackedNode) EntryRectInto(i int, lo, hi geo.Point) geo.Rect {
	off := p.entryOff(i) + 8
	for d := 0; d < p.dim; d++ {
		lo[d] = math.Float64frombits(binary.LittleEndian.Uint64(p.buf[off:]))
		off += 8
	}
	for d := 0; d < p.dim; d++ {
		hi[d] = math.Float64frombits(binary.LittleEndian.Uint64(p.buf[off:]))
		off += 8
	}
	return geo.Rect{Lo: lo, Hi: hi}
}

// EntryAux returns entry i's payload, aliasing the pinned image. Callers
// must treat it as read-only and not retain it.
//
//skvet:hotpath
func (p *PackedNode) EntryAux(i int) []byte {
	if p.auxLen == 0 {
		return nil
	}
	off := p.entryOff(i) + 8 + p.dim*16
	return p.buf[off : off+p.auxLen : off+p.auxLen]
}

// scratchBuf wraps a reusable block-image buffer so pooling it does not
// allocate a slice header per round trip.
type scratchBuf struct{ b []byte }

// getScratch returns a scratch buffer of at least n bytes.
func (t *Tree) getScratch(n int) *scratchBuf {
	sb := t.scratchPool.Get().(*scratchBuf)
	if cap(sb.b) < n {
		sb.b = make([]byte, n)
	}
	sb.b = sb.b[:n]
	return sb
}

func (t *Tree) putScratch(sb *scratchBuf) { t.scratchPool.Put(sb) }

// LoadPacked reads the node starting at block id as a packed image, serving
// it from the decoded-node cache when possible. The modeled device I/O is
// identical to LoadNode's: a cache hit re-reads the node's blocks to verify
// the pinned image (see the package comment), so the benchmark cost model
// cannot tell the two paths apart.
func (t *Tree) LoadPacked(id storage.BlockID) (*PackedNode, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.loadPacked(id)
}

func (t *Tree) loadPacked(id storage.BlockID) (*PackedNode, error) {
	if t.cache != nil {
		if pn, ok := t.cache.Get(id); ok {
			return t.verifyPacked(id, pn)
		}
	}
	pn, err := t.readPacked(id)
	if err != nil {
		return nil, err
	}
	if t.cache != nil {
		t.cache.Put(id, pn)
	}
	return pn, nil
}

// verifyPacked re-reads a cached node's blocks (the same accesses a cold
// load would make) and returns the pinned decode if the on-disk image is
// unchanged, reparsing and replacing it otherwise.
func (t *Tree) verifyPacked(id storage.BlockID, pn *PackedNode) (*PackedNode, error) {
	nblocks := t.blocksForLevel(pn.level)
	sb := t.getScratch(nblocks * t.dev.BlockSize())
	if err := storage.ReadRunTo(t.dev, id, nblocks, sb.b); err != nil {
		t.putScratch(sb)
		return nil, fmt.Errorf("rtree: load node %d: %w", id, err)
	}
	if bytes.Equal(sb.b[:len(pn.buf)], pn.buf) {
		t.putScratch(sb)
		return pn, nil
	}
	fresh, err := t.parsePacked(id, sb.b)
	t.putScratch(sb)
	if err != nil {
		return nil, err
	}
	t.cache.Put(id, fresh)
	return fresh, nil
}

// readPacked cold-loads a node image with the same access pattern as
// loadNode: the first block (one, typically random, access), then the
// continuation run (sequential accesses).
func (t *Tree) readPacked(id storage.BlockID) (*PackedNode, error) {
	bs := t.dev.BlockSize()
	sb := t.getScratch(bs)
	if err := storage.ReadRunTo(t.dev, id, 1, sb.b); err != nil {
		t.putScratch(sb)
		return nil, fmt.Errorf("rtree: load node %d: %w", id, err)
	}
	level := int(binary.LittleEndian.Uint32(sb.b[0:4]))
	if level < 0 || level > 64 {
		count := int(binary.LittleEndian.Uint32(sb.b[4:8]))
		t.putScratch(sb)
		return nil, fmt.Errorf("rtree: corrupt node %d: level=%d count=%d", id, level, count)
	}
	if nblocks := t.blocksForLevel(level); nblocks > 1 {
		need := nblocks * bs
		if cap(sb.b) < need {
			grown := make([]byte, need)
			copy(grown, sb.b)
			sb.b = grown
		}
		sb.b = sb.b[:need]
		if err := storage.ReadRunTo(t.dev, id+1, nblocks-1, sb.b[bs:]); err != nil {
			t.putScratch(sb)
			return nil, fmt.Errorf("rtree: load node %d continuation: %w", id, err)
		}
	}
	pn, err := t.parsePacked(id, sb.b)
	t.putScratch(sb)
	return pn, err
}

// parsePacked validates a raw node image (with loadNode's exact checks) and
// pins its trimmed prefix into a PackedNode. The returned node owns its
// buffer; img may be reused by the caller.
func (t *Tree) parsePacked(id storage.BlockID, img []byte) (*PackedNode, error) {
	level := int(binary.LittleEndian.Uint32(img[0:4]))
	count := int(binary.LittleEndian.Uint32(img[4:8]))
	if level < 0 || level > 64 || count < 0 || count > t.maxE {
		return nil, fmt.Errorf("rtree: corrupt node %d: level=%d count=%d", id, level, count)
	}
	es := t.entrySize(level)
	need := nodeHeaderSize + count*es
	if need > len(img) {
		return nil, fmt.Errorf("rtree: corrupt node %d: %d entries exceed %d bytes", id, count, len(img))
	}
	buf := make([]byte, need)
	copy(buf, img[:need])
	return &PackedNode{
		id:     id,
		level:  level,
		count:  count,
		dim:    t.dim,
		es:     es,
		auxLen: t.scheme.EntryAuxLen(level),
		buf:    buf,
	}, nil
}

// SetHotPath toggles the packed-node traversal. It exists for the hotpath
// benchmark, which measures the legacy decode-per-visit path against the
// packed path on the same tree; production trees leave it at its default
// (enabled whenever the tree has a cache). Not safe to call concurrently
// with running iterators.
func (t *Tree) SetHotPath(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hot = on && t.cache != nil
}

// HotPath reports whether traversals use the packed-node path.
func (t *Tree) HotPath() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.hot
}

// CacheStats returns the decoded-node cache counters, or zeros when the
// cache is disabled.
func (t *Tree) CacheStats() nodecache.Stats {
	if t.cache == nil {
		return nodecache.Stats{}
	}
	return t.cache.Stats()
}
