package rtree

import (
	"bytes"
	"math/rand"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

// forEachNodeID walks the tree and calls fn with every node's block ID.
func forEachNodeID(t *testing.T, tree *Tree, fn func(id storage.BlockID)) {
	t.Helper()
	root, err := tree.Root()
	if err != nil {
		t.Fatal(err)
	}
	if root == nil {
		return
	}
	var walk func(n *Node)
	walk = func(n *Node) {
		fn(n.ID())
		if n.Level() == 0 {
			return
		}
		for i := 0; i < n.NumEntries(); i++ {
			ptr, _, _ := n.Entry(i)
			child, err := tree.LoadNode(storage.BlockID(ptr))
			if err != nil {
				t.Fatal(err)
			}
			walk(child)
		}
	}
	walk(root)
}

// TestPackedMatchesLoadNode is the decode differential oracle: for every node
// of a grown tree, the packed view must agree with loadNode's pointer-rich
// decode field for field, and the pinned image must equal the persisted
// encoding byte for byte.
func TestPackedMatchesLoadNode(t *testing.T) {
	for _, tc := range []struct {
		name   string
		scheme AuxScheme
		maxE   int
	}{
		{"plain", nil, 3},
		{"aux4", orScheme{n: 4}, 3},
		{"multiblock", bigScheme{orScheme{n: 2048}}, 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			disk := storage.NewDisk(4096)
			tree, err := New(disk, Config{Dim: 2, MaxEntries: tc.maxE, Scheme: tc.scheme})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(11))
			for i := 0; i < 150; i++ {
				p := geo.NewPoint(rng.Float64()*100, rng.Float64()*100)
				var aux []byte
				if tc.scheme != nil {
					aux = make([]byte, tc.scheme.EntryAuxLen(0))
					copy(aux, refMask(uint64(i)))
				}
				if err := tree.Insert(uint64(i), geo.PointRect(p), aux); err != nil {
					t.Fatal(err)
				}
			}
			nodes := 0
			lo := make(geo.Point, 2)
			hi := make(geo.Point, 2)
			forEachNodeID(t, tree, func(id storage.BlockID) {
				nodes++
				n, err := tree.LoadNode(id)
				if err != nil {
					t.Fatal(err)
				}
				// Twice: first call decodes cold, second serves the cache hit;
				// both views must agree with the legacy decode.
				for pass := 0; pass < 2; pass++ {
					pn, err := tree.LoadPacked(id)
					if err != nil {
						t.Fatal(err)
					}
					if pn.ID() != n.ID() || pn.Level() != n.Level() || pn.NumEntries() != n.NumEntries() {
						t.Fatalf("node %d pass %d: packed header (%d,%d,%d), legacy (%d,%d,%d)",
							id, pass, pn.ID(), pn.Level(), pn.NumEntries(), n.ID(), n.Level(), n.NumEntries())
					}
					for i := 0; i < n.NumEntries(); i++ {
						ptr, rect, aux := n.Entry(i)
						if got := pn.EntryPtr(i); got != ptr {
							t.Fatalf("node %d entry %d: packed ptr %d, legacy %d", id, i, got, ptr)
						}
						prect := pn.EntryRectInto(i, lo, hi)
						if !prect.Equal(rect) {
							t.Fatalf("node %d entry %d: packed rect %v, legacy %v", id, i, prect, rect)
						}
						if !bytes.Equal(pn.EntryAux(i), aux) {
							t.Fatalf("node %d entry %d: packed aux %x, legacy %x", id, i, pn.EntryAux(i), aux)
						}
					}
					// Byte-for-byte round trip against the persisted encoding:
					// the pinned image is exactly the prefix storeNode wrote.
					img := pn.Bytes()
					raw, err := disk.ReadRun(id, tree.blocksForLevel(pn.Level()))
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(img, raw[:len(img)]) {
						t.Fatalf("node %d pass %d: pinned image diverges from device bytes", id, pass)
					}
				}
			})
			if nodes != tree.NumNodes() {
				t.Fatalf("walked %d nodes, tree reports %d", nodes, tree.NumNodes())
			}
		})
	}
}

// TestPackedVerifyReparsesAfterMissedInvalidation forces the stale-cache
// case the verify-on-hit design defends against: mutate the device image
// behind the cache's back and check the next hit reparses instead of serving
// the pinned entries.
func TestPackedVerifyReparsesAfterMissedInvalidation(t *testing.T) {
	disk := storage.NewDisk(4096)
	tree, err := New(disk, Config{Dim: 2, MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := tree.Insert(uint64(i+1), geo.PointRect(geo.NewPoint(float64(i), float64(i))), nil); err != nil {
			t.Fatal(err)
		}
	}
	root, err := tree.Root()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tree.LoadPacked(root.ID()); err != nil {
		t.Fatal(err)
	}
	// Rewrite entry 0's pointer directly on the device, bypassing storeNode
	// (and therefore the invalidation hook).
	raw, err := disk.Read(root.ID())
	if err != nil {
		t.Fatal(err)
	}
	raw[nodeHeaderSize] = 0x7f
	if err := disk.Write(root.ID(), raw); err != nil {
		t.Fatal(err)
	}
	pn, err := tree.LoadPacked(root.ID())
	if err != nil {
		t.Fatal(err)
	}
	if got := pn.EntryPtr(0); got != 0x7f {
		t.Fatalf("hit served stale pointer %d after device mutation, want reparse to 0x7f", got)
	}
}

// TestCacheInvalidatedOnMutation checks the normal invalidation path: after
// an insert rewrites nodes, a packed load sees the new entries.
func TestCacheInvalidatedOnMutation(t *testing.T) {
	tree := newTestTree(t, 8)
	for i := 0; i < 5; i++ {
		if err := tree.Insert(uint64(i+1), geo.PointRect(hotels[i]), nil); err != nil {
			t.Fatal(err)
		}
	}
	root, err := tree.Root()
	if err != nil {
		t.Fatal(err)
	}
	before, err := tree.LoadPacked(root.ID())
	if err != nil {
		t.Fatal(err)
	}
	if before.NumEntries() != 5 {
		t.Fatalf("packed root has %d entries, want 5", before.NumEntries())
	}
	if err := tree.Insert(6, geo.PointRect(hotels[5]), nil); err != nil {
		t.Fatal(err)
	}
	after, err := tree.LoadPacked(root.ID())
	if err != nil {
		t.Fatal(err)
	}
	if after.NumEntries() != 6 {
		t.Fatalf("packed root has %d entries after insert, want 6", after.NumEntries())
	}
	st := tree.CacheStats()
	if st.Invalidations == 0 {
		t.Fatalf("no cache invalidations recorded across a mutation: %+v", st)
	}
}

// TestSetHotPathRequiresCache checks the hot path cannot be enabled on a
// cache-less tree.
func TestSetHotPathRequiresCache(t *testing.T) {
	disk := storage.NewDisk(4096)
	tree, err := New(disk, Config{Dim: 2, MaxEntries: 4, CacheNodes: -1})
	if err != nil {
		t.Fatal(err)
	}
	if tree.HotPath() {
		t.Fatal("cache-less tree starts with hot path on")
	}
	tree.SetHotPath(true)
	if tree.HotPath() {
		t.Fatal("SetHotPath(true) enabled the hot path without a cache")
	}
}
