package rtree

import (
	"encoding/binary"
	"fmt"

	"spatialkeyword/internal/storage"
)

// Tree persistence: a tree's volatile state (root pointer, height, object
// and node counts) can be checkpointed into a dedicated state block on its
// device and the tree reopened later from that block — which, combined with
// storage.FileDisk, makes indexes durable across process restarts.
//
// The configuration (dimension, capacity, payload scheme) is not stored:
// like most storage engines, the caller must reopen with the same schema it
// created with; a fingerprint in the state block catches mismatches.

const treeStateMagic = 0x52545245 // "RTRE"

// stateFingerprint hashes the structural configuration so Open can reject
// a mismatched schema instead of misreading nodes.
func (t *Tree) stateFingerprint() uint32 {
	h := uint32(2166136261)
	mix := func(v uint32) {
		h ^= v
		h *= 16777619
	}
	mix(uint32(t.dim))
	mix(uint32(t.maxE))
	mix(uint32(t.minE))
	for lvl := 0; lvl < 8; lvl++ {
		mix(uint32(t.scheme.EntryAuxLen(lvl)))
	}
	return h
}

// Checkpoint writes the tree's state into the given block (allocating one
// if stateBlock is NilBlock) and returns the block ID to pass to Open
// later. Call it after mutations have quiesced; the state write is one
// block I/O.
func (t *Tree) Checkpoint(stateBlock storage.BlockID) (storage.BlockID, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if stateBlock == storage.NilBlock {
		stateBlock = t.dev.Alloc()
	}
	var buf [44]byte
	binary.LittleEndian.PutUint32(buf[0:4], treeStateMagic)
	binary.LittleEndian.PutUint32(buf[4:8], t.stateFingerprint())
	binary.LittleEndian.PutUint64(buf[8:16], uint64(t.root))
	binary.LittleEndian.PutUint32(buf[16:20], uint32(t.height))
	binary.LittleEndian.PutUint64(buf[20:28], uint64(t.size))
	binary.LittleEndian.PutUint64(buf[28:36], uint64(t.nodes))
	if err := t.dev.Write(stateBlock, buf[:]); err != nil {
		return storage.NilBlock, fmt.Errorf("rtree: checkpoint: %w", err)
	}
	return stateBlock, nil
}

// Open attaches to a previously checkpointed tree on dev. cfg must match
// the configuration the tree was created with (same dimension, capacity,
// and payload scheme); a fingerprint mismatch is an error.
func Open(dev storage.Device, cfg Config, stateBlock storage.BlockID) (*Tree, error) {
	t, err := New(dev, cfg)
	if err != nil {
		return nil, err
	}
	buf, err := dev.Read(stateBlock)
	if err != nil {
		return nil, fmt.Errorf("rtree: open: %w", err)
	}
	if len(buf) < 36 || binary.LittleEndian.Uint32(buf[0:4]) != treeStateMagic {
		return nil, fmt.Errorf("rtree: block %d is not a tree state block", stateBlock)
	}
	if got := binary.LittleEndian.Uint32(buf[4:8]); got != t.stateFingerprint() {
		return nil, fmt.Errorf("rtree: configuration fingerprint mismatch (stored %08x, given %08x)",
			got, t.stateFingerprint())
	}
	t.root = storage.BlockID(binary.LittleEndian.Uint64(buf[8:16]))
	t.height = int(binary.LittleEndian.Uint32(buf[16:20]))
	t.size = int(binary.LittleEndian.Uint64(buf[20:28]))
	t.nodes = int(binary.LittleEndian.Uint64(buf[28:36]))
	if t.height < 0 || (t.root == storage.NilBlock) != (t.height == 0) {
		return nil, fmt.Errorf("rtree: corrupt state block %d (root %d, height %d)",
			stateBlock, t.root, t.height)
	}
	// Recovery check: the checkpointed root must decode and sit at the
	// checkpointed height. This catches a state block pointing into blocks
	// that were recycled or torn after the checkpoint, before a query walks
	// into them.
	if t.root != storage.NilBlock {
		rootNode, err := t.loadNode(t.root)
		if err != nil {
			return nil, fmt.Errorf("rtree: open: root unreadable: %w", err)
		}
		if rootNode.Level() != t.height-1 {
			return nil, fmt.Errorf("rtree: corrupt root block %d: level %d does not match height %d",
				t.root, rootNode.Level(), t.height)
		}
	}
	return t, nil
}
