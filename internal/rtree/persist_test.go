package rtree

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

func TestCheckpointAndOpenInMemory(t *testing.T) {
	disk := storage.NewDisk(4096)
	cfg := Config{Dim: 2, MaxEntries: 8}
	tree, err := New(disk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(91))
	pts := make([]geo.Point, 300)
	for i := range pts {
		pts[i] = geo.NewPoint(rng.Float64()*100, rng.Float64()*100)
		if err := tree.Insert(uint64(i), geo.PointRect(pts[i]), nil); err != nil {
			t.Fatal(err)
		}
	}
	state, err := tree.Checkpoint(storage.NilBlock)
	if err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(disk, cfg, state)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 300 || reopened.Height() != tree.Height() || reopened.NumNodes() != tree.NumNodes() {
		t.Fatalf("state mismatch: len=%d height=%d nodes=%d", reopened.Len(), reopened.Height(), reopened.NumNodes())
	}
	if err := reopened.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Queries on the reopened tree agree with the original.
	q := geo.NewPoint(50, 50)
	itA := tree.NearestNeighbors(q, nil)
	itB := reopened.NearestNeighbors(q, nil)
	for i := 0; i < 300; i++ {
		a, da, okA, errA := itA.Next()
		b, db, okB, errB := itB.Next()
		if errA != nil || errB != nil || !okA || !okB || a != b || da != db {
			t.Fatalf("rank %d: (%d,%g,%v,%v) vs (%d,%g,%v,%v)", i, a, da, okA, errA, b, db, okB, errB)
		}
	}
	// Mutations keep working; re-checkpoint to the same block.
	if err := reopened.Insert(999, geo.PointRect(geo.NewPoint(1, 1)), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := reopened.Checkpoint(state); err != nil {
		t.Fatal(err)
	}
	again, err := Open(disk, cfg, state)
	if err != nil {
		t.Fatal(err)
	}
	if again.Len() != 301 {
		t.Errorf("Len after re-checkpoint = %d", again.Len())
	}
}

func TestOpenRejectsMismatchedConfig(t *testing.T) {
	disk := storage.NewDisk(4096)
	tree, err := New(disk, Config{Dim: 2, MaxEntries: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Insert(1, geo.PointRect(geo.NewPoint(0, 0)), nil); err != nil {
		t.Fatal(err)
	}
	state, err := tree.Checkpoint(storage.NilBlock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(disk, Config{Dim: 3, MaxEntries: 8}, state); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := Open(disk, Config{Dim: 2, MaxEntries: 16}, state); err == nil {
		t.Error("capacity mismatch accepted")
	}
	if _, err := Open(disk, Config{Dim: 2, MaxEntries: 8, Scheme: orScheme{n: 4}}, state); err == nil {
		t.Error("scheme mismatch accepted")
	}
	// A non-state block is rejected.
	dataBlock := disk.Alloc()
	if err := disk.Write(dataBlock, []byte("not a state block")); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(disk, Config{Dim: 2, MaxEntries: 8}, dataBlock); err == nil {
		t.Error("garbage state block accepted")
	}
}

// TestDurableTreeOnFileDisk is the end-to-end persistence test: build on a
// file, close the process's handles, reopen from disk, and query.
func TestDurableTreeOnFileDisk(t *testing.T) {
	path := filepath.Join(t.TempDir(), "tree.db")
	cfg := Config{Dim: 2, MaxEntries: 8}

	disk, err := storage.CreateFileDisk(path, 4096)
	if err != nil {
		t.Fatal(err)
	}
	tree, err := New(disk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(92))
	pts := make([]geo.Point, 500)
	for i := range pts {
		pts[i] = geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
		if err := tree.Insert(uint64(i), geo.PointRect(pts[i]), nil); err != nil {
			t.Fatal(err)
		}
	}
	state, err := tree.Checkpoint(storage.NilBlock)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := nnOrder(t, tree, geo.NewPoint(500, 500), 20)
	if err := disk.Close(); err != nil {
		t.Fatal(err)
	}

	// "New process": reopen everything from the file.
	disk2, err := storage.OpenFileDisk(path)
	if err != nil {
		t.Fatal(err)
	}
	defer disk2.Close()
	tree2, err := Open(disk2, cfg, state)
	if err != nil {
		t.Fatal(err)
	}
	if tree2.Len() != 500 {
		t.Fatalf("Len = %d", tree2.Len())
	}
	if err := tree2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	gotOrder := nnOrder(t, tree2, geo.NewPoint(500, 500), 20)
	if fmt.Sprint(gotOrder) != fmt.Sprint(wantOrder) {
		t.Errorf("NN order changed across restart: %v vs %v", gotOrder, wantOrder)
	}
	// Continue mutating the reopened tree.
	for i := 500; i < 600; i++ {
		p := geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
		if err := tree2.Insert(uint64(i), geo.PointRect(p), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func nnOrder(t *testing.T, tree *Tree, q geo.Point, n int) []uint64 {
	t.Helper()
	it := tree.NearestNeighbors(q, nil)
	out := make([]uint64, 0, n)
	for len(out) < n {
		ref, _, ok, err := it.Next()
		if err != nil || !ok {
			t.Fatalf("nnOrder: ok=%v err=%v", ok, err)
		}
		out = append(out, ref)
	}
	return out
}
