// Package rtree implements a disk-resident R-Tree (Guttman [Gut84]) with the
// Hjaltason–Samet incremental nearest-neighbor search [HS99] — the spatial
// substrate of the paper.
//
// The tree is generalized in one dimension beyond Guttman: every entry can
// carry an opaque auxiliary payload ("aux") whose length is fixed per tree
// level. A plain R-Tree uses zero-length payloads. The IR²-Tree and
// MIR²-Tree (package core) store text signatures in the payload and supply
// an AuxScheme that keeps parent payloads consistent as the tree changes —
// exactly the paper's modification of AdjustTree and CondenseTree ("if a new
// bit is set to 1 in a node N, then it must be also set to 1 for N's
// ancestors").
//
// Nodes live on a storage.Device. Node capacity is derived from the block
// size with payloads *excluded*, following the paper: "in order to have the
// same number of children as in the corresponding R-tree, we allocate
// additional disk block(s) to an IR²-Tree node when needed". A node with
// payloads therefore spans one or more consecutive blocks; loading it costs
// one random access plus sequential accesses for the continuation blocks.
package rtree

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/nodecache"
	"spatialkeyword/internal/storage"
)

// nodeHeaderSize is the serialized size of a node header: level (uint32) and
// entry count (uint32).
const nodeHeaderSize = 8

// NodeReader is the restricted tree view handed to AuxScheme.NodeAux. Its
// methods take no locks: NodeAux runs while the tree already holds its own
// lock, so implementations must use this reader rather than the public Tree
// methods (which would self-deadlock).
type NodeReader interface {
	// LoadNode reads a node (paying its I/O).
	LoadNode(id storage.BlockID) (*Node, error)
	// SubtreeObjectRefs returns every object reference under n, reading the
	// whole subtree.
	SubtreeObjectRefs(n *Node) ([]uint64, error)
}

// AuxScheme defines how auxiliary entry payloads are sized and maintained.
// Implementations must be safe for concurrent readers.
type AuxScheme interface {
	// EntryAuxLen returns the payload length in bytes for entries stored in
	// a node at the given level (level 0 = leaf, whose entries are objects).
	EntryAuxLen(level int) int

	// NodeAux computes the payload that summarizes node n in its parent's
	// entry (an entry at level n.Level()+1). The IR²-Tree superimposes n's
	// entry payloads; the MIR²-Tree re-derives the payload from all objects
	// in n's subtree, which is what makes its maintenance expensive.
	NodeAux(r NodeReader, n *Node) ([]byte, error)
}

// plainScheme is the zero-payload scheme of an ordinary R-Tree.
type plainScheme struct{}

func (plainScheme) EntryAuxLen(int) int                       { return 0 }
func (plainScheme) NodeAux(NodeReader, *Node) ([]byte, error) { return nil, nil }

// nodeReader implements NodeReader without locking. It is only handed out
// while the tree's lock is already held by the calling operation.
type nodeReader struct{ t *Tree }

func (r nodeReader) LoadNode(id storage.BlockID) (*Node, error) { return r.t.loadNode(id) }
func (r nodeReader) SubtreeObjectRefs(n *Node) ([]uint64, error) {
	return r.t.subtreeObjectRefs(n)
}

// Config parameterizes a Tree.
type Config struct {
	// Dim is the dimensionality of indexed rectangles. Required, >= 1.
	Dim int
	// MaxEntries is the node capacity M. Zero derives it from the device
	// block size with zero-length payloads, per the paper.
	MaxEntries int
	// MinFill is the minimum fill fraction m/M in (0, 0.5]. Zero means 0.4,
	// a standard choice for Guttman trees.
	MinFill float64
	// Split selects the node-split algorithm. The zero value is
	// QuadraticSplit, the paper's choice.
	Split SplitAlgorithm
	// Scheme maintains entry payloads. Nil means a plain R-Tree.
	Scheme AuxScheme
	// CacheNodes bounds the decoded-node cache behind the packed read hot
	// path. Zero means nodecache.DefaultCapacity; a negative value disables
	// the cache (and with it the packed traversal).
	CacheNodes int
}

// entry is one slot of a node: a pointer (object reference in leaves, child
// node block in interior nodes), its MBR, and the payload.
type entry struct {
	ptr  uint64
	rect geo.Rect
	aux  []byte
}

// Node is an in-memory image of an on-disk node. Nodes are value snapshots:
// mutating the tree invalidates previously loaded nodes.
type Node struct {
	id      storage.BlockID
	level   int
	entries []entry
}

// ID returns the node's first block ID.
func (n *Node) ID() storage.BlockID { return n.id }

// Level returns the node's level; 0 is the leaf level.
func (n *Node) Level() int { return n.level }

// NumEntries returns the number of entries in the node.
func (n *Node) NumEntries() int { return len(n.entries) }

// Entry returns the i-th entry: its pointer (object reference for leaves,
// child block ID for interior nodes), MBR, and payload. The returned slices
// alias the node; callers must not modify them.
func (n *Node) Entry(i int) (ptr uint64, rect geo.Rect, aux []byte) {
	e := n.entries[i]
	return e.ptr, e.rect, e.aux
}

// mbr returns the union of the node's entry rectangles.
func (n *Node) mbr() geo.Rect {
	var u geo.Rect
	for i := range n.entries {
		u = u.Union(n.entries[i].rect)
	}
	return u
}

// Tree is a disk-resident R-Tree. Concurrent readers are safe; writers
// (Insert, Delete, RebuildAux) take exclusive locks. Iterators obtained from
// Seek must not be advanced concurrently with writers.
type Tree struct {
	dev    storage.Device
	dim    int
	maxE   int
	minE   int
	scheme AuxScheme
	split  SplitAlgorithm

	mu     sync.RWMutex
	root   storage.BlockID
	height int // number of levels; 0 = empty tree
	size   int // number of object entries
	nodes  int // number of nodes
	hot    bool

	cache       *nodecache.Cache[*PackedNode]
	scratchPool sync.Pool // *scratchBuf: raw block images for loadPacked
	iterPool    sync.Pool // *iterScratch: priority queues + rect corners
}

// New creates an empty tree on dev. It returns an error for invalid
// configurations (non-positive dimension, capacity below 2, or a block size
// too small to hold even two payload-free entries).
func New(dev storage.Device, cfg Config) (*Tree, error) {
	if cfg.Dim < 1 {
		return nil, fmt.Errorf("rtree: invalid dimension %d", cfg.Dim)
	}
	scheme := cfg.Scheme
	if scheme == nil {
		scheme = plainScheme{}
	}
	maxE := cfg.MaxEntries
	if maxE == 0 {
		maxE = (dev.BlockSize() - nodeHeaderSize) / baseEntrySize(cfg.Dim)
	}
	if maxE < 2 {
		return nil, fmt.Errorf("rtree: capacity %d too small (block size %d, dim %d)",
			maxE, dev.BlockSize(), cfg.Dim)
	}
	minFill := cfg.MinFill
	if minFill == 0 {
		minFill = 0.4
	}
	if minFill < 0 || minFill > 0.5 {
		return nil, fmt.Errorf("rtree: MinFill %g outside (0, 0.5]", minFill)
	}
	minE := int(minFill * float64(maxE))
	if minE < 1 {
		minE = 1
	}
	t := &Tree{
		dev:    dev,
		dim:    cfg.Dim,
		maxE:   maxE,
		minE:   minE,
		scheme: scheme,
		split:  cfg.Split,
	}
	if cfg.CacheNodes >= 0 {
		t.cache = nodecache.New[*PackedNode](cfg.CacheNodes)
		t.hot = true
	}
	t.scratchPool.New = func() interface{} { return new(scratchBuf) }
	t.iterPool.New = func() interface{} { return new(iterScratch) }
	return t, nil
}

// baseEntrySize is the serialized entry size excluding the payload:
// an 8-byte pointer plus two corner points of dim float64s each.
func baseEntrySize(dim int) int { return 8 + dim*16 }

// entrySize is the serialized entry size at the given level.
func (t *Tree) entrySize(level int) int {
	return baseEntrySize(t.dim) + t.scheme.EntryAuxLen(level)
}

// blocksForLevel returns how many consecutive blocks a node at the given
// level occupies: capacity M entries plus the header, at this level's entry
// size.
func (t *Tree) blocksForLevel(level int) int {
	bytes := nodeHeaderSize + t.maxE*t.entrySize(level)
	bs := t.dev.BlockSize()
	return (bytes + bs - 1) / bs
}

// Dim returns the tree's dimensionality.
func (t *Tree) Dim() int { return t.dim }

// MaxEntries returns the node capacity M.
func (t *Tree) MaxEntries() int { return t.maxE }

// MinEntries returns the node minimum fill m.
func (t *Tree) MinEntries() int { return t.minE }

// Len returns the number of indexed objects.
func (t *Tree) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.size
}

// Height returns the number of levels (0 for an empty tree, 1 for a
// root-only leaf).
func (t *Tree) Height() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.height
}

// NumNodes returns the number of nodes.
func (t *Tree) NumNodes() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.nodes
}

// Device returns the tree's block device (for I/O metering and sizing).
func (t *Tree) Device() storage.Device { return t.dev }

// Root loads and returns the root node, or nil for an empty tree.
func (t *Tree) Root() (*Node, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == storage.NilBlock {
		return nil, nil
	}
	return t.loadNode(t.root)
}

// LoadNode reads the node starting at block id. It is exported for the
// search algorithms in package core that traverse the tree themselves.
func (t *Tree) LoadNode(id storage.BlockID) (*Node, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.loadNode(id)
}

// loadNode reads and decodes a node. The first block is one (typically
// random) access; continuation blocks are sequential accesses.
func (t *Tree) loadNode(id storage.BlockID) (*Node, error) {
	first, err := t.dev.Read(id)
	if err != nil {
		return nil, fmt.Errorf("rtree: load node %d: %w", id, err)
	}
	level := int(binary.LittleEndian.Uint32(first[0:4]))
	count := int(binary.LittleEndian.Uint32(first[4:8]))
	if level < 0 || level > 64 || count < 0 || count > t.maxE {
		return nil, fmt.Errorf("rtree: corrupt node %d: level=%d count=%d", id, level, count)
	}
	nblocks := t.blocksForLevel(level)
	buf := first
	if nblocks > 1 {
		rest, err := t.dev.ReadRun(id+1, nblocks-1)
		if err != nil {
			return nil, fmt.Errorf("rtree: load node %d continuation: %w", id, err)
		}
		buf = append(buf, rest...)
	}
	es := t.entrySize(level)
	need := nodeHeaderSize + count*es
	if need > len(buf) {
		return nil, fmt.Errorf("rtree: corrupt node %d: %d entries exceed %d bytes", id, count, len(buf))
	}
	n := &Node{id: id, level: level, entries: make([]entry, count)}
	auxLen := t.scheme.EntryAuxLen(level)
	off := nodeHeaderSize
	for i := 0; i < count; i++ {
		e := &n.entries[i]
		e.ptr = binary.LittleEndian.Uint64(buf[off:])
		off += 8
		lo := make(geo.Point, t.dim)
		hi := make(geo.Point, t.dim)
		for d := 0; d < t.dim; d++ {
			lo[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		for d := 0; d < t.dim; d++ {
			hi[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		e.rect = geo.Rect{Lo: lo, Hi: hi}
		if auxLen > 0 {
			e.aux = make([]byte, auxLen)
			copy(e.aux, buf[off:off+auxLen])
			off += auxLen
		}
	}
	return n, nil
}

// storeNode encodes and writes a node to its block run. Every node writer
// funnels through here, so it is also where the decoded-node cache learns
// that a pinned image is out of date.
func (t *Tree) storeNode(n *Node) error {
	if t.cache != nil {
		t.cache.Invalidate(n.id)
	}
	nblocks := t.blocksForLevel(n.level)
	es := t.entrySize(n.level)
	auxLen := t.scheme.EntryAuxLen(n.level)
	buf := make([]byte, nodeHeaderSize+len(n.entries)*es)
	binary.LittleEndian.PutUint32(buf[0:4], uint32(n.level))
	binary.LittleEndian.PutUint32(buf[4:8], uint32(len(n.entries)))
	off := nodeHeaderSize
	for i := range n.entries {
		e := &n.entries[i]
		binary.LittleEndian.PutUint64(buf[off:], e.ptr)
		off += 8
		for d := 0; d < t.dim; d++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.rect.Lo[d]))
			off += 8
		}
		for d := 0; d < t.dim; d++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.rect.Hi[d]))
			off += 8
		}
		if auxLen > 0 {
			if len(e.aux) != auxLen {
				return fmt.Errorf("rtree: node %d level %d: entry payload %d bytes, want %d",
					n.id, n.level, len(e.aux), auxLen)
			}
			copy(buf[off:], e.aux)
			off += auxLen
		}
	}
	if err := t.dev.WriteRun(n.id, nblocks, buf); err != nil {
		return fmt.Errorf("rtree: store node %d: %w", n.id, err)
	}
	return nil
}

// allocNode creates a new empty node at the given level.
func (t *Tree) allocNode(level int) *Node {
	id := t.dev.AllocRun(t.blocksForLevel(level))
	t.nodes++
	return &Node{id: id, level: level}
}

// freeNode releases a node's blocks.
func (t *Tree) freeNode(n *Node) {
	if t.cache != nil {
		t.cache.Invalidate(n.id)
	}
	nblocks := t.blocksForLevel(n.level)
	for i := 0; i < nblocks; i++ {
		t.dev.Free(n.id + storage.BlockID(i))
	}
	t.nodes--
}

// nodeAux computes a node's parent payload via the scheme. The caller must
// hold the tree lock (read or write); the scheme gets a lock-free reader.
func (t *Tree) nodeAux(n *Node) ([]byte, error) {
	aux, err := t.scheme.NodeAux(nodeReader{t}, n)
	if err != nil {
		return nil, fmt.Errorf("rtree: payload for node %d: %w", n.id, err)
	}
	want := t.scheme.EntryAuxLen(n.level + 1)
	if len(aux) != want {
		return nil, fmt.Errorf("rtree: scheme returned %d payload bytes for level %d entry, want %d",
			len(aux), n.level+1, want)
	}
	return aux, nil
}

// SubtreeObjectRefs returns the object references of every leaf entry in the
// subtree rooted at n, reading (and paying the I/O for) every node below n.
// The MIR²-Tree scheme uses it to recompute ancestor signatures from the
// underlying objects.
func (t *Tree) SubtreeObjectRefs(n *Node) ([]uint64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.subtreeObjectRefs(n)
}

func (t *Tree) subtreeObjectRefs(n *Node) ([]uint64, error) {
	if n.level == 0 {
		refs := make([]uint64, len(n.entries))
		for i := range n.entries {
			refs[i] = n.entries[i].ptr
		}
		return refs, nil
	}
	var refs []uint64
	for i := range n.entries {
		child, err := t.loadNode(storage.BlockID(n.entries[i].ptr))
		if err != nil {
			return nil, err
		}
		sub, err := t.subtreeObjectRefs(child)
		if err != nil {
			return nil, err
		}
		refs = append(refs, sub...)
	}
	return refs, nil
}

// VisitNodes walks the whole tree top-down, calling fn on every node. It
// reads every node (paying I/O); it exists for invariant checks, statistics,
// and bulk payload rebuilds.
func (t *Tree) VisitNodes(fn func(n *Node) error) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.root == storage.NilBlock {
		return nil
	}
	return t.visit(t.root, fn)
}

func (t *Tree) visit(id storage.BlockID, fn func(n *Node) error) error {
	n, err := t.loadNode(id)
	if err != nil {
		return err
	}
	if err := fn(n); err != nil {
		return err
	}
	if n.level == 0 {
		return nil
	}
	for i := range n.entries {
		if err := t.visit(storage.BlockID(n.entries[i].ptr), fn); err != nil {
			return err
		}
	}
	return nil
}
