package rtree

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

// newTestTree builds a tree with small capacity so tests exercise splits.
func newTestTree(t *testing.T, maxEntries int) *Tree {
	t.Helper()
	tree, err := New(storage.NewDisk(4096), Config{Dim: 2, MaxEntries: maxEntries})
	if err != nil {
		t.Fatal(err)
	}
	return tree
}

// hotels is the paper's Figure 1 dataset: (lat, lon) per hotel, in order
// H1..H8, using index+1 as the object reference.
var hotels = []geo.Point{
	geo.NewPoint(25.4, -80.1),  // H1
	geo.NewPoint(47.3, -122.2), // H2
	geo.NewPoint(35.5, 139.4),  // H3
	geo.NewPoint(39.5, 116.2),  // H4
	geo.NewPoint(51.3, -0.5),   // H5
	geo.NewPoint(40.4, -73.5),  // H6
	geo.NewPoint(-33.2, -70.4), // H7
	geo.NewPoint(-41.1, 174.4), // H8
}

func TestCapacityDerivedFromBlockSize(t *testing.T) {
	tree, err := New(storage.NewDisk(4096), Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	// (4096 - 8) / (8 + 2*16) = 4088/40 = 102 entries per node.
	if got := tree.MaxEntries(); got != 102 {
		t.Errorf("MaxEntries = %d, want 102", got)
	}
	if got := tree.MinEntries(); got != 40 {
		t.Errorf("MinEntries = %d, want 40 (40%% fill)", got)
	}
	if got := tree.blocksForLevel(0); got != 1 {
		t.Errorf("payload-free node spans %d blocks, want 1", got)
	}
}

func TestConfigValidation(t *testing.T) {
	d := storage.NewDisk(4096)
	if _, err := New(d, Config{Dim: 0}); err == nil {
		t.Error("dim 0 accepted")
	}
	if _, err := New(d, Config{Dim: 2, MaxEntries: 1}); err == nil {
		t.Error("capacity 1 accepted")
	}
	if _, err := New(d, Config{Dim: 2, MinFill: 0.9}); err == nil {
		t.Error("MinFill 0.9 accepted")
	}
	if _, err := New(storage.NewDisk(32), Config{Dim: 2}); err == nil {
		t.Error("block too small for two entries accepted")
	}
}

func TestInsertAndSearchSmall(t *testing.T) {
	tree := newTestTree(t, 3)
	for i, p := range hotels {
		if err := tree.Insert(uint64(i+1), geo.PointRect(p), nil); err != nil {
			t.Fatal(err)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("after insert %d: %v", i+1, err)
		}
	}
	if tree.Len() != len(hotels) {
		t.Errorf("Len = %d", tree.Len())
	}
	if tree.Height() < 2 {
		t.Errorf("height = %d, want >= 2 with capacity 3 and 8 objects", tree.Height())
	}
}

// TestPaperExample1 replays Example 1: incremental NN from [30.5, 100.0]
// must return H4, H3, H5, H8, H6, H1, H7, H2.
func TestPaperExample1(t *testing.T) {
	tree := newTestTree(t, 3)
	for i, p := range hotels {
		if err := tree.Insert(uint64(i+1), geo.PointRect(p), nil); err != nil {
			t.Fatal(err)
		}
	}
	it := tree.NearestNeighbors(geo.NewPoint(30.5, 100.0), nil)
	want := []uint64{4, 3, 5, 8, 6, 1, 7, 2}
	var got []uint64
	prev := -1.0
	for {
		ref, dist, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if dist < prev {
			t.Fatalf("distances not non-decreasing: %g after %g", dist, prev)
		}
		prev = dist
		got = append(got, ref)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("NN order = %v, want %v (paper Example 1)", got, want)
	}
}

func TestNNAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(300)
		tree := newTestTree(t, 4+rng.Intn(12))
		pts := make([]geo.Point, n)
		for i := range pts {
			pts[i] = geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
			if err := tree.Insert(uint64(i), geo.PointRect(pts[i]), nil); err != nil {
				t.Fatal(err)
			}
		}
		q := geo.NewPoint(rng.Float64()*1200-100, rng.Float64()*1200-100)
		// Brute-force order.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			da, db := q.Dist(pts[order[a]]), q.Dist(pts[order[b]])
			if da != db {
				return da < db
			}
			return order[a] < order[b]
		})
		it := tree.NearestNeighbors(q, nil)
		for rank := 0; rank < n; rank++ {
			ref, dist, ok, err := it.Next()
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("trial %d: iterator exhausted at rank %d of %d", trial, rank, n)
			}
			wantDist := q.Dist(pts[order[rank]])
			if dist != wantDist {
				t.Fatalf("trial %d rank %d: dist %g, want %g (ref %d vs %d)",
					trial, rank, dist, wantDist, ref, order[rank])
			}
		}
		if _, _, ok, _ := it.Next(); ok {
			t.Fatalf("trial %d: iterator returned more than %d objects", trial, n)
		}
	}
}

func TestInsertRectangles(t *testing.T) {
	// Non-point objects: arbitrary rectangles must work too.
	tree := newTestTree(t, 4)
	rng := rand.New(rand.NewSource(2))
	rects := make([]geo.Rect, 100)
	for i := range rects {
		x, y := rng.Float64()*100, rng.Float64()*100
		rects[i] = geo.NewRect(geo.NewPoint(x, y), geo.NewPoint(x+rng.Float64()*10, y+rng.Float64()*10))
		if err := tree.Insert(uint64(i), rects[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := geo.NewPoint(50, 50)
	it := tree.NearestNeighbors(q, nil)
	prev := -1.0
	count := 0
	for {
		ref, dist, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if want := rects[ref].MinDist(q); dist != want {
			t.Fatalf("rect %d dist %g, want %g", ref, dist, want)
		}
		if dist < prev {
			t.Fatal("order violated")
		}
		prev = dist
		count++
	}
	if count != len(rects) {
		t.Errorf("returned %d of %d rects", count, len(rects))
	}
}

func TestDeleteBasic(t *testing.T) {
	tree := newTestTree(t, 3)
	for i, p := range hotels {
		if err := tree.Insert(uint64(i+1), geo.PointRect(p), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Delete a nonexistent ref.
	ok, err := tree.Delete(99, geo.PointRect(hotels[0]))
	if err != nil || ok {
		t.Errorf("delete of missing ref: ok=%v err=%v", ok, err)
	}
	// Delete existing ref with wrong rect.
	ok, err = tree.Delete(1, geo.PointRect(geo.NewPoint(0, 0)))
	if err != nil || ok {
		t.Errorf("delete with wrong rect: ok=%v err=%v", ok, err)
	}
	// Delete every hotel.
	for i := range hotels {
		ok, err := tree.Delete(uint64(i+1), geo.PointRect(hotels[i]))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("hotel %d not found for deletion", i+1)
		}
		if err := tree.CheckInvariants(); err != nil {
			t.Fatalf("after delete %d: %v", i+1, err)
		}
	}
	if tree.Len() != 0 || tree.Height() != 0 {
		t.Errorf("tree not empty: len=%d height=%d", tree.Len(), tree.Height())
	}
	// Tree is reusable after emptying.
	if err := tree.Insert(1, geo.PointRect(hotels[0]), nil); err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 1 {
		t.Error("reinsert into emptied tree failed")
	}
}

func TestRandomInsertDeleteAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tree := newTestTree(t, 5)
	live := make(map[uint64]geo.Point)
	nextRef := uint64(0)
	for step := 0; step < 1500; step++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			p := geo.NewPoint(rng.Float64()*500, rng.Float64()*500)
			if err := tree.Insert(nextRef, geo.PointRect(p), nil); err != nil {
				t.Fatal(err)
			}
			live[nextRef] = p
			nextRef++
		} else {
			// Delete a random live object.
			var ref uint64
			for r := range live {
				ref = r
				break
			}
			ok, err := tree.Delete(ref, geo.PointRect(live[ref]))
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("step %d: live object %d not found", step, ref)
			}
			delete(live, ref)
		}
		if step%100 == 99 {
			if err := tree.CheckInvariants(); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
		}
	}
	if tree.Len() != len(live) {
		t.Fatalf("Len = %d, reference has %d", tree.Len(), len(live))
	}
	// Full NN sweep must return exactly the live set.
	it := tree.NearestNeighbors(geo.NewPoint(250, 250), nil)
	got := make(map[uint64]bool)
	for {
		ref, _, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if got[ref] {
			t.Fatalf("object %d returned twice", ref)
		}
		got[ref] = true
	}
	if len(got) != len(live) {
		t.Fatalf("NN sweep returned %d, want %d", len(got), len(live))
	}
	for ref := range live {
		if !got[ref] {
			t.Fatalf("live object %d missing from sweep", ref)
		}
	}
}

func TestInsertValidation(t *testing.T) {
	tree := newTestTree(t, 4)
	if err := tree.Insert(1, geo.PointRect(geo.NewPoint(1, 2, 3)), nil); err == nil {
		t.Error("3-d rect accepted by 2-d tree")
	}
	if err := tree.Insert(1, geo.PointRect(geo.NewPoint(1, 2)), []byte{1}); err == nil {
		t.Error("payload accepted by payload-free tree")
	}
}

func TestSeekPruneEverything(t *testing.T) {
	tree := newTestTree(t, 4)
	for i, p := range hotels {
		if err := tree.Insert(uint64(i+1), geo.PointRect(p), nil); err != nil {
			t.Fatal(err)
		}
	}
	it := tree.NearestNeighbors(geo.NewPoint(0, 0), func(bool, int, []byte) bool { return false })
	if _, _, ok, _ := it.Next(); ok {
		t.Error("pruned traversal returned an object")
	}
	// Root is expanded (never pruned), nothing else.
	if it.NodesLoaded() != 1 {
		t.Errorf("NodesLoaded = %d, want 1 (just the root)", it.NodesLoaded())
	}
}

func TestIterPushAndPeek(t *testing.T) {
	tree := newTestTree(t, 4)
	for i, p := range hotels {
		if err := tree.Insert(uint64(i+1), geo.PointRect(p), nil); err != nil {
			t.Fatal(err)
		}
	}
	it := tree.NearestNeighbors(geo.NewPoint(30.5, 100), nil)
	if _, ok := it.PeekScore(); !ok {
		t.Fatal("fresh iterator has empty queue")
	}
	ref, dist, ok, err := it.Next()
	if err != nil || !ok || ref != 4 {
		t.Fatalf("first = %d (%v, %v)", ref, ok, err)
	}
	// Push it back with a lower score; it must come out first again.
	it.Push(ref, dist-1)
	ref2, dist2, ok, err := it.Next()
	if err != nil || !ok || ref2 != ref || dist2 != dist-1 {
		t.Fatalf("pushed item: ref=%d score=%g ok=%v err=%v", ref2, dist2, ok, err)
	}
}

func TestEmptyTreeSearch(t *testing.T) {
	tree := newTestTree(t, 4)
	it := tree.NearestNeighbors(geo.NewPoint(0, 0), nil)
	if _, _, ok, _ := it.Next(); ok {
		t.Error("empty tree returned an object")
	}
	if _, ok := it.PeekScore(); ok {
		t.Error("empty tree has non-empty queue")
	}
	if root, err := tree.Root(); err != nil || root != nil {
		t.Errorf("Root = %v, %v", root, err)
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestNodeSerializationRoundTrip(t *testing.T) {
	tree := newTestTree(t, 16)
	rng := rand.New(rand.NewSource(4))
	n := tree.allocNode(0)
	for i := 0; i < 16; i++ {
		lo := geo.NewPoint(rng.NormFloat64()*1e6, rng.NormFloat64()*1e6)
		hi := geo.NewPoint(lo[0]+rng.Float64(), lo[1]+rng.Float64())
		n.entries = append(n.entries, entry{ptr: rng.Uint64(), rect: geo.Rect{Lo: lo, Hi: hi}})
	}
	if err := tree.storeNode(n); err != nil {
		t.Fatal(err)
	}
	m, err := tree.loadNode(n.id)
	if err != nil {
		t.Fatal(err)
	}
	if m.level != n.level || len(m.entries) != len(n.entries) {
		t.Fatalf("header mismatch: %+v", m)
	}
	for i := range n.entries {
		if m.entries[i].ptr != n.entries[i].ptr || !m.entries[i].rect.Equal(n.entries[i].rect) {
			t.Fatalf("entry %d mismatch", i)
		}
	}
}

func TestCorruptNodeDetected(t *testing.T) {
	tree := newTestTree(t, 4)
	if err := tree.Insert(1, geo.PointRect(geo.NewPoint(1, 1)), nil); err != nil {
		t.Fatal(err)
	}
	// Smash the root block's header.
	bad := make([]byte, 8)
	for i := range bad {
		bad[i] = 0xFF
	}
	if err := tree.dev.Write(tree.root, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := tree.LoadNode(tree.root); err == nil {
		t.Error("corrupt node loaded without error")
	}
}

func TestIOFaultPropagates(t *testing.T) {
	disk := storage.NewDisk(4096)
	tree, err := New(disk, Config{Dim: 2, MaxEntries: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := tree.Insert(uint64(i), geo.PointRect(geo.NewPoint(float64(i), 0)), nil); err != nil {
			t.Fatal(err)
		}
	}
	boom := errors.New("disk gone")
	disk.SetFault(func(storage.Op, storage.BlockID) error { return boom })
	it := tree.NearestNeighbors(geo.NewPoint(0, 0), nil)
	if _, _, _, err := it.Next(); !errors.Is(err, boom) {
		t.Errorf("search error = %v, want fault", err)
	}
	if err := tree.Insert(99, geo.PointRect(geo.NewPoint(9, 9)), nil); !errors.Is(err, boom) {
		t.Errorf("insert error = %v, want fault", err)
	}
	if _, err := tree.Delete(0, geo.PointRect(geo.NewPoint(0, 0))); !errors.Is(err, boom) {
		t.Errorf("delete error = %v, want fault", err)
	}
}

func TestQuadraticSplitFillBounds(t *testing.T) {
	tree := newTestTree(t, 10) // minE = 4
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		entries := make([]entry, 11)
		for i := range entries {
			p := geo.NewPoint(rng.Float64()*100, rng.Float64()*100)
			entries[i] = entry{ptr: uint64(i), rect: geo.PointRect(p)}
		}
		a, b := tree.quadraticSplit(entries)
		if len(a)+len(b) != len(entries) {
			t.Fatalf("split lost entries: %d + %d != %d", len(a), len(b), len(entries))
		}
		if len(a) < tree.minE || len(b) < tree.minE {
			t.Fatalf("split under min fill: %d / %d (min %d)", len(a), len(b), tree.minE)
		}
	}
}

func TestComputeStats(t *testing.T) {
	tree := newTestTree(t, 4)
	for i := 0; i < 50; i++ {
		if err := tree.Insert(uint64(i), geo.PointRect(geo.NewPoint(float64(i%10), float64(i/10))), nil); err != nil {
			t.Fatal(err)
		}
	}
	s, err := tree.ComputeStats()
	if err != nil {
		t.Fatal(err)
	}
	if s.Objects != 50 || s.Nodes != tree.NumNodes() || s.Height != tree.Height() {
		t.Errorf("stats = %+v", s)
	}
	if s.LeafNodes == 0 || s.AvgFanout <= 0 || s.SizeBytes <= 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestDuplicatePointsAndRefs(t *testing.T) {
	// Many objects at the same location must all be indexed and retrievable.
	tree := newTestTree(t, 3)
	p := geo.NewPoint(5, 5)
	for i := 0; i < 20; i++ {
		if err := tree.Insert(uint64(i), geo.PointRect(p), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	it := tree.NearestNeighbors(p, nil)
	seen := make(map[uint64]bool)
	for {
		ref, dist, ok, err := it.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
		if dist != 0 {
			t.Errorf("dist = %g", dist)
		}
		seen[ref] = true
	}
	if len(seen) != 20 {
		t.Errorf("got %d distinct refs, want 20", len(seen))
	}
	// Deleting one specific ref among identical rects removes exactly one.
	ok, err := tree.Delete(7, geo.PointRect(p))
	if err != nil || !ok {
		t.Fatalf("delete: %v %v", ok, err)
	}
	if tree.Len() != 19 {
		t.Errorf("Len = %d", tree.Len())
	}
}
