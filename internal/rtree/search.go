package rtree

import (
	"fmt"
	"math"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

// EntryScorer assigns a priority to a tree entry during best-first search
// and decides whether to keep it at all. isObject reports whether the entry
// references an object (it was read from a leaf); level is the level of the
// node the entry was read from; rect is the entry's MBR and aux its payload.
// Returning keep = false drops the entry — for the IR² algorithms this is
// the signature check "if s matches w" of Figure 8; for a plain tree it is
// always true.
//
// Lower scores are dequeued first, so a scorer implementing the paper's
// general ranking (higher f is better) should return a negated score.
//
// Scorers must not retain rect or aux past the call: on the packed hot path
// the rectangle's corner points are reused for the next entry and the
// payload aliases a pinned node image.
type EntryScorer func(isObject bool, level int, rect geo.Rect, aux []byte) (score float64, keep bool)

// DistanceScorer returns the scorer of the incremental nearest-neighbor
// algorithm (Figure 3): the priority of every entry is the minimum distance
// from the query point to its MBR, and nothing is pruned. The optional prune
// hook turns it into the distance-first IR² scorer (Figure 8): entries whose
// payload fails the hook are dropped.
func DistanceScorer(p geo.Point, prune func(isObject bool, level int, aux []byte) bool) EntryScorer {
	return func(isObject bool, level int, rect geo.Rect, aux []byte) (float64, bool) {
		if prune != nil && !prune(isObject, level, aux) {
			return 0, false
		}
		return rect.MinDist(p), true
	}
}

// queueItem is one element of the search priority queue U: either an object
// reference or a node pointer awaiting expansion.
type queueItem struct {
	isObject bool
	ref      uint64          // object reference, when isObject
	node     storage.BlockID // node pointer, when !isObject
	score    float64
	seq      uint64 // insertion order; breaks score ties deterministically
}

// itemHeap is a binary min-heap of queue items. It is managed by the push
// and pop methods below rather than container/heap: boxing a queueItem into
// an interface{} on every enqueue is exactly the kind of steady-state
// allocation the hot path exists to remove, and Less is a strict total
// order (seq breaks every tie), so the pop sequence is identical to
// container/heap's.
type itemHeap []queueItem

func (h itemHeap) less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	// Objects before nodes at equal score: an object's score is exact, so
	// it can be emitted without expanding more nodes.
	if h[i].isObject != h[j].isObject {
		return h[i].isObject
	}
	return h[i].seq < h[j].seq
}

func (h *itemHeap) push(x queueItem) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *itemHeap) pop() queueItem {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		if l >= n {
			break
		}
		c := l
		if r < n && s.less(r, l) {
			c = r
		}
		if !s.less(c, i) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	return top
}

// TraceKind classifies a traversal trace event.
type TraceKind int

// The trace event kinds, mirroring the steps of the paper's worked
// Examples 1 and 3 ("Dequeue N₁; Enqueue N₂; ...").
const (
	// TraceExpand: a node was dequeued and loaded for expansion.
	TraceExpand TraceKind = iota
	// TraceEnqueueNode: a child node entry passed the scorer and entered
	// the queue.
	TraceEnqueueNode
	// TraceEnqueueObject: an object entry passed the scorer and entered
	// the queue.
	TraceEnqueueObject
	// TracePrune: an entry failed the scorer's keep test (for the IR²
	// algorithms, its signature did not cover the query's) and was dropped
	// — the subtree or object is never visited.
	TracePrune
	// TraceEmit: an object was dequeued and returned as the next result
	// candidate.
	TraceEmit
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceExpand:
		return "expand"
	case TraceEnqueueNode:
		return "enqueue-node"
	case TraceEnqueueObject:
		return "enqueue-object"
	case TracePrune:
		return "prune"
	case TraceEmit:
		return "emit"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one step of a best-first traversal, as delivered to the
// hook installed with Iter.SetTrace.
type TraceEvent struct {
	Kind TraceKind
	// Node is the block of the node involved (the expanded node for
	// TraceExpand; the parent node for entry events).
	Node storage.BlockID
	// Child is the entry's target: a child node block or an object
	// reference, depending on Kind.
	Child uint64
	// Level is the level of the node the entry was read from (the expanded
	// node's level for TraceExpand).
	Level int
	// Score is the queue priority involved (0 for prunes).
	Score float64
}

// Iter is an incremental best-first traversal of the tree: a priority queue
// initialized with the root, where dequeuing a node expands (and pays the
// I/O for) it and dequeuing an object emits it (Figure 3 / Figure 8).
// Objects come out in non-decreasing score order provided the scorer is a
// lower bound: score(node entry) <= score of anything inside it.
//
// An Iter must not be advanced concurrently with tree mutations.
//
// Iterators draw their priority queue and rectangle scratch from a per-tree
// pool; call Close when done with an iterator to return them. Skipping
// Close is safe (the scratch is garbage collected) but forfeits the reuse.
type Iter struct {
	t      *Tree
	scorer EntryScorer
	queue  itemHeap
	seq    uint64
	stats  TraversalStats
	trace  func(TraceEvent)
	packed bool
	scr    *iterScratch
}

// iterScratch is the pooled per-traversal state: the queue's backing array
// and the corner points the packed path decodes entry MBRs into. One pair
// of points serves every entry the traversal scores, because scorers do not
// retain the rectangle (see EntryScorer).
type iterScratch struct {
	queue  []queueItem
	lo, hi geo.Point
}

// TraversalStats are the work counters of one traversal — the per-event
// totals a TraceEvent hook would accumulate, kept as plain increments on
// the iterator so observability costs nothing when no hook is installed.
type TraversalStats struct {
	// NodesLoaded is the number of nodes expanded (the "node accesses"
	// metric of the paper's evaluation).
	NodesLoaded int
	// EntriesPruned is the number of entries the scorer dropped (for the
	// IR² algorithms: signature mismatches, subtrees never visited).
	EntriesPruned int
	// NodesEnqueued and ObjectsEnqueued count entries that passed the
	// scorer and entered the queue (Push re-enqueues count as objects).
	NodesEnqueued   int
	ObjectsEnqueued int
	// ObjectsEmitted is the number of objects dequeued and returned.
	ObjectsEmitted int
}

// SetTrace installs a hook receiving every traversal step — the library's
// equivalent of the paper's Example 1/3 walk-throughs. Install before the
// first Next call; a nil hook disables tracing.
func (it *Iter) SetTrace(fn func(TraceEvent)) { it.trace = fn }

// Seek starts a best-first traversal with the given scorer. The root enters
// the queue with score -Inf: it is never pruned (the query must consider the
// whole tree before any of it is expanded), and -Inf is the one priority
// that is a sound bound for every scorer — PeekScore must never claim a
// tighter bound than the scorer itself would assign, and the root has not
// been scored yet. (Seeding with 0 would be wrong for scorers with negative
// priorities, such as the general ranked query's negated f scores: a peek
// before the first Next would report bound 0 and let a top-k merge discard
// the whole traversal.)
func (t *Tree) Seek(scorer EntryScorer) *Iter {
	it := &Iter{t: t, scorer: scorer}
	t.mu.RLock()
	root := t.root
	it.packed = t.hot
	t.mu.RUnlock()
	scr := t.iterPool.Get().(*iterScratch)
	if len(scr.lo) != t.dim {
		scr.lo = make(geo.Point, t.dim)
		scr.hi = make(geo.Point, t.dim)
	}
	it.scr = scr
	it.queue = scr.queue[:0]
	if root != storage.NilBlock {
		it.queue = append(it.queue, queueItem{node: root, score: math.Inf(-1)})
		it.seq = 1
	}
	return it
}

// Close returns the iterator's pooled scratch to the tree. Safe to call
// more than once; the iterator must not be advanced afterwards.
func (it *Iter) Close() {
	if it.scr == nil {
		return
	}
	it.scr.queue = it.queue[:0]
	it.t.iterPool.Put(it.scr)
	it.scr = nil
	it.queue = nil
}

// NearestNeighbors starts the incremental nearest-neighbor traversal from
// point p, optionally pruning entries through the hook (nil means no
// pruning: the classic [HS99] algorithm).
func (t *Tree) NearestNeighbors(p geo.Point, prune func(isObject bool, level int, aux []byte) bool) *Iter {
	return t.Seek(DistanceScorer(p, prune))
}

// Next returns the next object in score order. ok is false when the
// traversal is exhausted.
//
//skvet:hotpath
func (it *Iter) Next() (ref uint64, score float64, ok bool, err error) {
	for len(it.queue) > 0 {
		item := it.queue.pop()
		if item.isObject {
			it.stats.ObjectsEmitted++
			if it.trace != nil {
				it.trace(TraceEvent{Kind: TraceEmit, Child: item.ref, Score: item.score})
			}
			return item.ref, item.score, true, nil
		}
		if it.packed {
			if err := it.expandPacked(item.node, item.score); err != nil {
				return 0, 0, false, err
			}
			continue
		}
		n, err := it.t.LoadNode(item.node)
		if err != nil {
			return 0, 0, false, fmt.Errorf("rtree: search: %w", err)
		}
		it.stats.NodesLoaded++
		if it.trace != nil {
			it.trace(TraceEvent{Kind: TraceExpand, Node: n.id, Level: n.level, Score: item.score})
		}
		isObject := n.level == 0
		for i := range n.entries {
			e := &n.entries[i]
			it.enqueueEntry(isObject, n.level, n.id, e.ptr, e.rect, e.aux)
		}
	}
	return 0, 0, false, nil
}

// expandPacked is Next's node-expansion step on the packed hot path: the
// node comes from the decoded-node cache and its entries are scored straight
// off the pinned image, reusing the iterator's corner-point scratch.
//
//skvet:hotpath
func (it *Iter) expandPacked(id storage.BlockID, score float64) error {
	pn, err := it.t.LoadPacked(id)
	if err != nil {
		return fmt.Errorf("rtree: search: %w", err)
	}
	it.stats.NodesLoaded++
	if it.trace != nil {
		it.trace(TraceEvent{Kind: TraceExpand, Node: pn.id, Level: pn.level, Score: score})
	}
	isObject := pn.level == 0
	for i := 0; i < pn.count; i++ {
		rect := pn.EntryRectInto(i, it.scr.lo, it.scr.hi)
		it.enqueueEntry(isObject, pn.level, pn.id, pn.EntryPtr(i), rect, pn.EntryAux(i))
	}
	return nil
}

// enqueueEntry scores one entry and pushes it on the queue (or prunes it),
// with identical bookkeeping on both traversal paths.
//
//skvet:hotpath
func (it *Iter) enqueueEntry(isObject bool, level int, nodeID storage.BlockID, ptr uint64, rect geo.Rect, aux []byte) {
	score, keep := it.scorer(isObject, level, rect, aux)
	if !keep {
		it.stats.EntriesPruned++
		if it.trace != nil {
			it.trace(TraceEvent{Kind: TracePrune, Node: nodeID, Child: ptr, Level: level})
		}
		return
	}
	qi := queueItem{isObject: isObject, score: score, seq: it.seq}
	it.seq++
	if isObject {
		it.stats.ObjectsEnqueued++
		qi.ref = ptr
		if it.trace != nil {
			it.trace(TraceEvent{Kind: TraceEnqueueObject, Node: nodeID, Child: ptr, Level: level, Score: score})
		}
	} else {
		it.stats.NodesEnqueued++
		qi.node = storage.BlockID(ptr)
		if it.trace != nil {
			it.trace(TraceEvent{Kind: TraceEnqueueNode, Node: nodeID, Child: ptr, Level: level, Score: score})
		}
	}
	it.queue.push(qi)
}

// Push re-enqueues an object with a caller-computed score. The general IR²
// algorithm uses it to push a loaded candidate back with its exact f score
// when the queue may still contain something better ("U.Enqueue(T, Score)
// — to be considered later").
func (it *Iter) Push(ref uint64, score float64) {
	it.queue.push(queueItem{isObject: true, ref: ref, score: score, seq: it.seq})
	it.seq++
	it.stats.ObjectsEnqueued++
}

// PeekScore returns the score of the best queued element, or ok = false for
// an empty queue. The general IR² algorithm compares a candidate's exact
// score against it ("if Score >= Upper(U.top())").
//
//skvet:hotpath
func (it *Iter) PeekScore() (float64, bool) {
	if len(it.queue) == 0 {
		return 0, false
	}
	return it.queue[0].score, true
}

// NodesLoaded reports how many tree nodes the traversal has expanded — the
// "node accesses" metric of the evaluation.
func (it *Iter) NodesLoaded() int { return it.stats.NodesLoaded }

// TraversalStats returns all of the traversal's work counters so far.
func (it *Iter) TraversalStats() TraversalStats { return it.stats }
