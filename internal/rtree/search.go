package rtree

import (
	"container/heap"
	"fmt"
	"math"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

// EntryScorer assigns a priority to a tree entry during best-first search
// and decides whether to keep it at all. isObject reports whether the entry
// references an object (it was read from a leaf); level is the level of the
// node the entry was read from; rect is the entry's MBR and aux its payload.
// Returning keep = false drops the entry — for the IR² algorithms this is
// the signature check "if s matches w" of Figure 8; for a plain tree it is
// always true.
//
// Lower scores are dequeued first, so a scorer implementing the paper's
// general ranking (higher f is better) should return a negated score.
type EntryScorer func(isObject bool, level int, rect geo.Rect, aux []byte) (score float64, keep bool)

// DistanceScorer returns the scorer of the incremental nearest-neighbor
// algorithm (Figure 3): the priority of every entry is the minimum distance
// from the query point to its MBR, and nothing is pruned. The optional prune
// hook turns it into the distance-first IR² scorer (Figure 8): entries whose
// payload fails the hook are dropped.
func DistanceScorer(p geo.Point, prune func(isObject bool, level int, aux []byte) bool) EntryScorer {
	return func(isObject bool, level int, rect geo.Rect, aux []byte) (float64, bool) {
		if prune != nil && !prune(isObject, level, aux) {
			return 0, false
		}
		return rect.MinDist(p), true
	}
}

// queueItem is one element of the search priority queue U: either an object
// reference or a node pointer awaiting expansion.
type queueItem struct {
	isObject bool
	ref      uint64          // object reference, when isObject
	node     storage.BlockID // node pointer, when !isObject
	score    float64
	seq      uint64 // insertion order; breaks score ties deterministically
}

type itemHeap []queueItem

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].score != h[j].score {
		return h[i].score < h[j].score
	}
	// Objects before nodes at equal score: an object's score is exact, so
	// it can be emitted without expanding more nodes.
	if h[i].isObject != h[j].isObject {
		return h[i].isObject
	}
	return h[i].seq < h[j].seq
}
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(queueItem)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// TraceKind classifies a traversal trace event.
type TraceKind int

// The trace event kinds, mirroring the steps of the paper's worked
// Examples 1 and 3 ("Dequeue N₁; Enqueue N₂; ...").
const (
	// TraceExpand: a node was dequeued and loaded for expansion.
	TraceExpand TraceKind = iota
	// TraceEnqueueNode: a child node entry passed the scorer and entered
	// the queue.
	TraceEnqueueNode
	// TraceEnqueueObject: an object entry passed the scorer and entered
	// the queue.
	TraceEnqueueObject
	// TracePrune: an entry failed the scorer's keep test (for the IR²
	// algorithms, its signature did not cover the query's) and was dropped
	// — the subtree or object is never visited.
	TracePrune
	// TraceEmit: an object was dequeued and returned as the next result
	// candidate.
	TraceEmit
)

// String names the kind.
func (k TraceKind) String() string {
	switch k {
	case TraceExpand:
		return "expand"
	case TraceEnqueueNode:
		return "enqueue-node"
	case TraceEnqueueObject:
		return "enqueue-object"
	case TracePrune:
		return "prune"
	case TraceEmit:
		return "emit"
	default:
		return fmt.Sprintf("TraceKind(%d)", int(k))
	}
}

// TraceEvent is one step of a best-first traversal, as delivered to the
// hook installed with Iter.SetTrace.
type TraceEvent struct {
	Kind TraceKind
	// Node is the block of the node involved (the expanded node for
	// TraceExpand; the parent node for entry events).
	Node storage.BlockID
	// Child is the entry's target: a child node block or an object
	// reference, depending on Kind.
	Child uint64
	// Level is the level of the node the entry was read from (the expanded
	// node's level for TraceExpand).
	Level int
	// Score is the queue priority involved (0 for prunes).
	Score float64
}

// Iter is an incremental best-first traversal of the tree: a priority queue
// initialized with the root, where dequeuing a node expands (and pays the
// I/O for) it and dequeuing an object emits it (Figure 3 / Figure 8).
// Objects come out in non-decreasing score order provided the scorer is a
// lower bound: score(node entry) <= score of anything inside it.
//
// An Iter must not be advanced concurrently with tree mutations.
type Iter struct {
	t      *Tree
	scorer EntryScorer
	queue  itemHeap
	seq    uint64
	stats  TraversalStats
	trace  func(TraceEvent)
}

// TraversalStats are the work counters of one traversal — the per-event
// totals a TraceEvent hook would accumulate, kept as plain increments on
// the iterator so observability costs nothing when no hook is installed.
type TraversalStats struct {
	// NodesLoaded is the number of nodes expanded (the "node accesses"
	// metric of the paper's evaluation).
	NodesLoaded int
	// EntriesPruned is the number of entries the scorer dropped (for the
	// IR² algorithms: signature mismatches, subtrees never visited).
	EntriesPruned int
	// NodesEnqueued and ObjectsEnqueued count entries that passed the
	// scorer and entered the queue (Push re-enqueues count as objects).
	NodesEnqueued   int
	ObjectsEnqueued int
	// ObjectsEmitted is the number of objects dequeued and returned.
	ObjectsEmitted int
}

// SetTrace installs a hook receiving every traversal step — the library's
// equivalent of the paper's Example 1/3 walk-throughs. Install before the
// first Next call; a nil hook disables tracing.
func (it *Iter) SetTrace(fn func(TraceEvent)) { it.trace = fn }

// Seek starts a best-first traversal with the given scorer. The root enters
// the queue with score -Inf: it is never pruned (the query must consider the
// whole tree before any of it is expanded), and -Inf is the one priority
// that is a sound bound for every scorer — PeekScore must never claim a
// tighter bound than the scorer itself would assign, and the root has not
// been scored yet. (Seeding with 0 would be wrong for scorers with negative
// priorities, such as the general ranked query's negated f scores: a peek
// before the first Next would report bound 0 and let a top-k merge discard
// the whole traversal.)
func (t *Tree) Seek(scorer EntryScorer) *Iter {
	it := &Iter{t: t, scorer: scorer}
	t.mu.RLock()
	root := t.root
	t.mu.RUnlock()
	if root != storage.NilBlock {
		it.queue = itemHeap{{node: root, score: math.Inf(-1)}}
		it.seq = 1
	}
	return it
}

// NearestNeighbors starts the incremental nearest-neighbor traversal from
// point p, optionally pruning entries through the hook (nil means no
// pruning: the classic [HS99] algorithm).
func (t *Tree) NearestNeighbors(p geo.Point, prune func(isObject bool, level int, aux []byte) bool) *Iter {
	return t.Seek(DistanceScorer(p, prune))
}

// Next returns the next object in score order. ok is false when the
// traversal is exhausted.
func (it *Iter) Next() (ref uint64, score float64, ok bool, err error) {
	for len(it.queue) > 0 {
		item := heap.Pop(&it.queue).(queueItem)
		if item.isObject {
			it.stats.ObjectsEmitted++
			if it.trace != nil {
				it.trace(TraceEvent{Kind: TraceEmit, Child: item.ref, Score: item.score})
			}
			return item.ref, item.score, true, nil
		}
		n, err := it.t.LoadNode(item.node)
		if err != nil {
			return 0, 0, false, fmt.Errorf("rtree: search: %w", err)
		}
		it.stats.NodesLoaded++
		if it.trace != nil {
			it.trace(TraceEvent{Kind: TraceExpand, Node: n.id, Level: n.level, Score: item.score})
		}
		isObject := n.level == 0
		for i := range n.entries {
			e := &n.entries[i]
			score, keep := it.scorer(isObject, n.level, e.rect, e.aux)
			if !keep {
				it.stats.EntriesPruned++
				if it.trace != nil {
					it.trace(TraceEvent{Kind: TracePrune, Node: n.id, Child: e.ptr, Level: n.level})
				}
				continue
			}
			qi := queueItem{isObject: isObject, score: score, seq: it.seq}
			it.seq++
			if isObject {
				it.stats.ObjectsEnqueued++
				qi.ref = e.ptr
				if it.trace != nil {
					it.trace(TraceEvent{Kind: TraceEnqueueObject, Node: n.id, Child: e.ptr, Level: n.level, Score: score})
				}
			} else {
				it.stats.NodesEnqueued++
				qi.node = storage.BlockID(e.ptr)
				if it.trace != nil {
					it.trace(TraceEvent{Kind: TraceEnqueueNode, Node: n.id, Child: e.ptr, Level: n.level, Score: score})
				}
			}
			heap.Push(&it.queue, qi)
		}
	}
	return 0, 0, false, nil
}

// Push re-enqueues an object with a caller-computed score. The general IR²
// algorithm uses it to push a loaded candidate back with its exact f score
// when the queue may still contain something better ("U.Enqueue(T, Score)
// — to be considered later").
func (it *Iter) Push(ref uint64, score float64) {
	heap.Push(&it.queue, queueItem{isObject: true, ref: ref, score: score, seq: it.seq})
	it.seq++
	it.stats.ObjectsEnqueued++
}

// PeekScore returns the score of the best queued element, or ok = false for
// an empty queue. The general IR² algorithm compares a candidate's exact
// score against it ("if Score >= Upper(U.top())").
func (it *Iter) PeekScore() (float64, bool) {
	if len(it.queue) == 0 {
		return 0, false
	}
	return it.queue[0].score, true
}

// NodesLoaded reports how many tree nodes the traversal has expanded — the
// "node accesses" metric of the evaluation.
func (it *Iter) NodesLoaded() int { return it.stats.NodesLoaded }

// TraversalStats returns all of the traversal's work counters so far.
func (it *Iter) TraversalStats() TraversalStats { return it.stats }
