package rtree

import (
	"fmt"
	"sort"

	"spatialkeyword/internal/geo"
)

// SplitAlgorithm selects how an overflowing node's entries are divided.
// The paper uses Guttman's Quadratic Split; the alternatives are provided
// for the split ablation (cheaper Linear Split, better-clustering R*-style
// split) and behave identically from the caller's perspective.
type SplitAlgorithm int

// The implemented split algorithms.
const (
	// QuadraticSplit is Guttman's O(M²) heuristic [Gut84 §3.5.2]: seed the
	// two groups with the most wasteful pair, then assign by enlargement
	// difference. The paper's choice.
	QuadraticSplit SplitAlgorithm = iota
	// LinearSplit is Guttman's O(M) heuristic [Gut84 §3.5.3]: seed with
	// the pair most separated along the most spread dimension, then assign
	// in arrival order by enlargement.
	LinearSplit
	// RStarSplit is the topological split of the R*-Tree (Beckmann et al.):
	// choose the axis with the smallest margin sum over candidate
	// distributions, then the distribution with the least overlap (ties by
	// area). Slower than LinearSplit, better clustering than both Guttman
	// variants.
	RStarSplit
)

// String names the algorithm.
func (s SplitAlgorithm) String() string {
	switch s {
	case QuadraticSplit:
		return "quadratic"
	case LinearSplit:
		return "linear"
	case RStarSplit:
		return "rstar"
	default:
		return fmt.Sprintf("SplitAlgorithm(%d)", int(s))
	}
}

// splitEntries divides an overflowing entry set according to the tree's
// configured algorithm. Both groups hold at least MinEntries entries.
func (t *Tree) splitEntries(entries []entry) (groupA, groupB []entry) {
	switch t.split {
	case LinearSplit:
		return t.linearSplit(entries)
	case RStarSplit:
		return t.rstarSplit(entries)
	default:
		return t.quadraticSplit(entries)
	}
}

// linearSplit implements Guttman's linear PickSeeds: on each axis find the
// entry with the highest low side and the one with the lowest high side,
// normalize their separation by the axis width, and take the pair with the
// greatest normalized separation as seeds. Remaining entries are assigned
// in order by least enlargement, with the usual forced-assignment rule to
// respect minimum fill.
func (t *Tree) linearSplit(entries []entry) (groupA, groupB []entry) {
	seedA, seedB := linearPickSeeds(entries, t.dim)
	groupA = append(groupA, entries[seedA])
	groupB = append(groupB, entries[seedB])
	rectA := entries[seedA].rect.Clone()
	rectB := entries[seedB].rect.Clone()
	rest := make([]entry, 0, len(entries)-2)
	for i := range entries {
		if i != seedA && i != seedB {
			rest = append(rest, entries[i])
		}
	}
	for i, e := range rest {
		remaining := len(rest) - i
		if len(groupA)+remaining == t.minE {
			groupA = append(groupA, rest[i:]...)
			return groupA, groupB
		}
		if len(groupB)+remaining == t.minE {
			groupB = append(groupB, rest[i:]...)
			return groupA, groupB
		}
		d1 := rectA.Enlargement(e.rect)
		d2 := rectB.Enlargement(e.rect)
		if d1 < d2 || (d1 == d2 && len(groupA) <= len(groupB)) {
			groupA = append(groupA, e)
			rectA = rectA.Union(e.rect)
		} else {
			groupB = append(groupB, e)
			rectB = rectB.Union(e.rect)
		}
	}
	return groupA, groupB
}

// linearPickSeeds returns the indexes of the two linear-split seeds.
func linearPickSeeds(entries []entry, dim int) (int, int) {
	bestSep := -1.0
	sa, sb := 0, 1
	for d := 0; d < dim; d++ {
		lowestHi, highestLo := 0, 0
		minLo, maxHi := entries[0].rect.Lo[d], entries[0].rect.Hi[d]
		for i := range entries {
			r := entries[i].rect
			if r.Hi[d] < entries[lowestHi].rect.Hi[d] {
				lowestHi = i
			}
			if r.Lo[d] > entries[highestLo].rect.Lo[d] {
				highestLo = i
			}
			if r.Lo[d] < minLo {
				minLo = r.Lo[d]
			}
			if r.Hi[d] > maxHi {
				maxHi = r.Hi[d]
			}
		}
		width := maxHi - minLo
		if width <= 0 {
			width = 1
		}
		sep := (entries[highestLo].rect.Lo[d] - entries[lowestHi].rect.Hi[d]) / width
		if sep > bestSep && lowestHi != highestLo {
			bestSep = sep
			sa, sb = lowestHi, highestLo
		}
	}
	if sa == sb { // all entries identical on every axis
		sb = (sa + 1) % len(entries)
	}
	return sa, sb
}

// rstarSplit implements the R*-Tree split: for each axis, sort entries by
// lower then upper corner and consider every legal split position; pick the
// axis minimizing total margin, then the distribution on that axis with the
// least overlap between the two MBRs (ties by total area).
func (t *Tree) rstarSplit(entries []entry) (groupA, groupB []entry) {
	type distribution struct {
		k       int // first group size
		byUpper bool
	}
	n := len(entries)
	minK := t.minE
	maxK := n - t.minE

	sortEntries := func(axis int, byUpper bool) []entry {
		out := make([]entry, n)
		copy(out, entries)
		sort.SliceStable(out, func(i, j int) bool {
			if byUpper {
				if out[i].rect.Hi[axis] != out[j].rect.Hi[axis] {
					return out[i].rect.Hi[axis] < out[j].rect.Hi[axis]
				}
				return out[i].rect.Lo[axis] < out[j].rect.Lo[axis]
			}
			if out[i].rect.Lo[axis] != out[j].rect.Lo[axis] {
				return out[i].rect.Lo[axis] < out[j].rect.Lo[axis]
			}
			return out[i].rect.Hi[axis] < out[j].rect.Hi[axis]
		})
		return out
	}

	// prefix/suffix MBRs of a sorted order.
	bounds := func(sorted []entry) (prefix, suffix []geo.Rect) {
		prefix = make([]geo.Rect, n)
		suffix = make([]geo.Rect, n)
		var acc geo.Rect
		for i := 0; i < n; i++ {
			acc = acc.Union(sorted[i].rect)
			prefix[i] = acc
		}
		acc = geo.Rect{}
		for i := n - 1; i >= 0; i-- {
			acc = acc.Union(sorted[i].rect)
			suffix[i] = acc
		}
		return prefix, suffix
	}

	bestAxis, bestMargin := 0, -1.0
	for axis := 0; axis < t.dim; axis++ {
		var marginSum float64
		for _, byUpper := range []bool{false, true} {
			sorted := sortEntries(axis, byUpper)
			prefix, suffix := bounds(sorted)
			for k := minK; k <= maxK; k++ {
				marginSum += prefix[k-1].Margin() + suffix[k].Margin()
			}
		}
		if bestMargin < 0 || marginSum < bestMargin {
			bestMargin = marginSum
			bestAxis = axis
		}
	}

	var best distribution
	bestOverlap, bestArea := -1.0, 0.0
	for _, byUpper := range []bool{false, true} {
		sorted := sortEntries(bestAxis, byUpper)
		prefix, suffix := bounds(sorted)
		for k := minK; k <= maxK; k++ {
			a, b := prefix[k-1], suffix[k]
			overlap := intersectionArea(a, b)
			area := a.Area() + b.Area()
			if bestOverlap < 0 || overlap < bestOverlap ||
				(overlap == bestOverlap && area < bestArea) {
				bestOverlap, bestArea = overlap, area
				best = distribution{k: k, byUpper: byUpper}
			}
		}
	}
	sorted := sortEntries(bestAxis, best.byUpper)
	groupA = append(groupA, sorted[:best.k]...)
	groupB = append(groupB, sorted[best.k:]...)
	return groupA, groupB
}

// intersectionArea returns the area of the overlap of a and b (0 if
// disjoint).
func intersectionArea(a, b geo.Rect) float64 {
	area := 1.0
	for i := range a.Lo {
		lo := a.Lo[i]
		if b.Lo[i] > lo {
			lo = b.Lo[i]
		}
		hi := a.Hi[i]
		if b.Hi[i] < hi {
			hi = b.Hi[i]
		}
		if hi <= lo {
			return 0
		}
		area *= hi - lo
	}
	return area
}
