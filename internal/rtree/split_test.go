package rtree

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"spatialkeyword/internal/geo"
	"spatialkeyword/internal/storage"
)

var allSplits = []SplitAlgorithm{QuadraticSplit, LinearSplit, RStarSplit}

func TestSplitAlgorithmString(t *testing.T) {
	want := map[SplitAlgorithm]string{
		QuadraticSplit: "quadratic",
		LinearSplit:    "linear",
		RStarSplit:     "rstar",
	}
	for alg, name := range want {
		if alg.String() != name {
			t.Errorf("%d.String() = %q, want %q", alg, alg.String(), name)
		}
	}
}

func TestAllSplitsPreserveEntriesAndFill(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for _, alg := range allSplits {
		t.Run(alg.String(), func(t *testing.T) {
			tree, err := New(storage.NewDisk(4096), Config{Dim: 2, MaxEntries: 10, Split: alg})
			if err != nil {
				t.Fatal(err)
			}
			for trial := 0; trial < 200; trial++ {
				entries := make([]entry, 11)
				seen := make(map[uint64]bool)
				for i := range entries {
					x, y := rng.Float64()*100, rng.Float64()*100
					entries[i] = entry{
						ptr: uint64(trial*100 + i),
						rect: geo.NewRect(
							geo.NewPoint(x, y),
							geo.NewPoint(x+rng.Float64()*5, y+rng.Float64()*5),
						),
					}
					seen[entries[i].ptr] = true
				}
				a, b := tree.splitEntries(entries)
				if len(a)+len(b) != len(entries) {
					t.Fatalf("trial %d: lost entries %d+%d", trial, len(a), len(b))
				}
				if len(a) < tree.minE || len(b) < tree.minE {
					t.Fatalf("trial %d: under min fill %d/%d", trial, len(a), len(b))
				}
				for _, e := range append(append([]entry{}, a...), b...) {
					if !seen[e.ptr] {
						t.Fatalf("trial %d: unknown entry %d", trial, e.ptr)
					}
					delete(seen, e.ptr)
				}
				if len(seen) != 0 {
					t.Fatalf("trial %d: %d entries vanished", trial, len(seen))
				}
			}
		})
	}
}

func TestAllSplitsIdenticalRects(t *testing.T) {
	// Degenerate input: every entry identical. All algorithms must still
	// produce a legal split.
	for _, alg := range allSplits {
		tree, err := New(storage.NewDisk(4096), Config{Dim: 2, MaxEntries: 6, Split: alg})
		if err != nil {
			t.Fatal(err)
		}
		entries := make([]entry, 7)
		for i := range entries {
			entries[i] = entry{ptr: uint64(i), rect: geo.PointRect(geo.NewPoint(5, 5))}
		}
		a, b := tree.splitEntries(entries)
		if len(a)+len(b) != 7 || len(a) < tree.minE || len(b) < tree.minE {
			t.Errorf("%s: degenerate split %d/%d", alg, len(a), len(b))
		}
	}
}

func TestTreesCorrectUnderEverySplit(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	pts := make([]geo.Point, 400)
	for i := range pts {
		pts[i] = geo.NewPoint(rng.Float64()*1000, rng.Float64()*1000)
	}
	q := geo.NewPoint(500, 500)
	order := make([]int, len(pts))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := q.Dist(pts[order[a]]), q.Dist(pts[order[b]])
		if da != db {
			return da < db
		}
		return order[a] < order[b]
	})
	for _, alg := range allSplits {
		t.Run(alg.String(), func(t *testing.T) {
			tree, err := New(storage.NewDisk(4096), Config{Dim: 2, MaxEntries: 8, Split: alg})
			if err != nil {
				t.Fatal(err)
			}
			for i, p := range pts {
				if err := tree.Insert(uint64(i), geo.PointRect(p), nil); err != nil {
					t.Fatal(err)
				}
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			it := tree.NearestNeighbors(q, nil)
			for rank := 0; rank < 50; rank++ {
				ref, _, ok, err := it.Next()
				if err != nil || !ok {
					t.Fatalf("rank %d: %v %v", rank, ok, err)
				}
				if ref != uint64(order[rank]) {
					t.Fatalf("%s rank %d: %d, want %d", alg, rank, ref, order[rank])
				}
			}
			// Deletions stay correct too.
			for i := 0; i < 100; i++ {
				ok, err := tree.Delete(uint64(i), geo.PointRect(pts[i]))
				if err != nil || !ok {
					t.Fatalf("delete %d: %v %v", i, ok, err)
				}
			}
			if err := tree.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRStarSplitReducesOverlap is the quality property motivating the R*
// split: across many random overflow sets, the R* distribution's group
// overlap must be no worse on average than quadratic's.
func TestRStarSplitReducesOverlap(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	quadTree, _ := New(storage.NewDisk(4096), Config{Dim: 2, MaxEntries: 20, Split: QuadraticSplit})
	rstarTree, _ := New(storage.NewDisk(4096), Config{Dim: 2, MaxEntries: 20, Split: RStarSplit})
	var quadOverlap, rstarOverlap float64
	for trial := 0; trial < 300; trial++ {
		entries := make([]entry, 21)
		for i := range entries {
			x, y := rng.Float64()*100, rng.Float64()*100
			entries[i] = entry{
				ptr:  uint64(i),
				rect: geo.NewRect(geo.NewPoint(x, y), geo.NewPoint(x+rng.Float64()*20, y+rng.Float64()*20)),
			}
		}
		measure := func(a, b []entry) float64 {
			var ra, rb geo.Rect
			for _, e := range a {
				ra = ra.Union(e.rect)
			}
			for _, e := range b {
				rb = rb.Union(e.rect)
			}
			return intersectionArea(ra, rb)
		}
		qa, qb := quadTree.splitEntries(cloneEntries(entries))
		ra, rb := rstarTree.splitEntries(cloneEntries(entries))
		quadOverlap += measure(qa, qb)
		rstarOverlap += measure(ra, rb)
	}
	if rstarOverlap > quadOverlap {
		t.Errorf("R* split overlap %.0f exceeds quadratic's %.0f", rstarOverlap, quadOverlap)
	}
}

func cloneEntries(in []entry) []entry {
	out := make([]entry, len(in))
	copy(out, in)
	return out
}

func TestIntersectionArea(t *testing.T) {
	a := geo.NewRect(geo.NewPoint(0, 0), geo.NewPoint(10, 10))
	tests := []struct {
		name string
		b    geo.Rect
		want float64
	}{
		{"disjoint", geo.NewRect(geo.NewPoint(20, 20), geo.NewPoint(30, 30)), 0},
		{"touching", geo.NewRect(geo.NewPoint(10, 0), geo.NewPoint(20, 10)), 0},
		{"quarter", geo.NewRect(geo.NewPoint(5, 5), geo.NewPoint(15, 15)), 25},
		{"contained", geo.NewRect(geo.NewPoint(2, 2), geo.NewPoint(4, 4)), 4},
		{"identical", a, 100},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := intersectionArea(a, tt.b); got != tt.want {
				t.Errorf("intersectionArea = %g, want %g", got, tt.want)
			}
			if got := intersectionArea(tt.b, a); got != tt.want {
				t.Error("not symmetric")
			}
		})
	}
}

func TestLinearPickSeeds(t *testing.T) {
	// Two clearly separated entries must be the seeds.
	entries := []entry{
		{ptr: 0, rect: geo.PointRect(geo.NewPoint(0, 0))},
		{ptr: 1, rect: geo.PointRect(geo.NewPoint(1, 1))},
		{ptr: 2, rect: geo.PointRect(geo.NewPoint(100, 100))},
	}
	a, b := linearPickSeeds(entries, 2)
	got := fmt.Sprint(map[int]bool{a: true, b: true})
	if a == b {
		t.Fatalf("identical seeds %d", a)
	}
	if !((a == 0 && b == 2) || (a == 2 && b == 0)) {
		t.Errorf("seeds = %s, want {0,2}", got)
	}
}
