package shard

import (
	"errors"
	"fmt"
	"os"
	"reflect"
	"sort"
	"testing"

	"spatialkeyword"
)

// armShardCrash makes the sharded save die at one step: step i < shards
// kills it before shard i saves, step == shards kills it before the
// shards.json commit (after every shard advanced its own generation).
func armShardCrash(step int) (restore func()) {
	errCrash := errors.New("simulated crash")
	saveStepHook = func(s int) error {
		if s >= step {
			return errCrash
		}
		return nil
	}
	origWrite, origRename := fsWriteFile, fsRename
	if step < 0 { // crash inside the manifest write itself
		saveStepHook = nil
		fsWriteFile = func(string, []byte, os.FileMode) error { return errCrash }
		fsRename = func(string, string) error { return errCrash }
	}
	return func() {
		saveStepHook = nil
		fsWriteFile, fsRename = origWrite, origRename
	}
}

// shardedTexts collects every live object's text across all shards.
func shardedTexts(t *testing.T, s *ShardedEngine) []string {
	t.Helper()
	var texts []string
	for _, sh := range s.shards {
		if err := sh.eng.Scan(func(o spatialkeyword.Object) error {
			texts = append(texts, o.Text)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	sort.Strings(texts)
	return texts
}

// TestShardedSaveCrashReopensConsistentGeneration kills the sharded save at
// every step — before each shard's save, before the manifest commit, and
// inside the manifest write — and checks that Open always reassembles one
// mutually consistent generation: either all shards old or all shards new,
// matching what the committed shards.json pins.
func TestShardedSaveCrashReopensConsistentGeneration(t *testing.T) {
	dir := t.TempDir()
	cfg := spatialkeyword.Config{SignatureBytes: 16}
	s, err := NewDurable(cfg, dir, Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	var oracle []string
	for i := 0; i < 30; i++ {
		text := fmt.Sprintf("base %d poi", i)
		if _, err := s.Add([]float64{float64(i % 6), float64(i / 6)}, text); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, text)
	}
	sort.Strings(oracle)
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}

	// Crash steps: -1 = inside the manifest write, 0..2 = before shard i's
	// save, 3 = after all shard saves but before the manifest commit.
	steps := []int{-1, 0, 1, 2, 3}
	for iter := 0; iter < 20; iter++ {
		step := steps[iter%len(steps)]
		text := fmt.Sprintf("iter %d poi", iter)
		if _, err := s.Add([]float64{float64(iter % 6), float64(iter % 5)}, text); err != nil {
			t.Fatal(err)
		}
		restore := armShardCrash(step)
		saveErr := s.Save()
		restore()
		if saveErr == nil {
			t.Fatalf("iter %d step %d: crashed save reported success", iter, step)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("iter %d: close: %v", iter, err)
		}
		s, err = Open(dir)
		if err != nil {
			t.Fatalf("iter %d step %d: reopen after crash: %v", iter, step, err)
		}
		if got := shardedTexts(t, s); !reflect.DeepEqual(got, oracle) {
			t.Fatalf("iter %d step %d: recovered %d objects, committed %d",
				iter, step, len(got), len(oracle))
		}
		// Queries see exactly the committed set.
		res, err := s.TopK(len(oracle)+4, []float64{3, 3}, "poi")
		if err != nil {
			t.Fatalf("iter %d: query after recovery: %v", iter, err)
		}
		if len(res) != len(oracle) {
			t.Fatalf("iter %d step %d: query found %d, committed %d", iter, step, len(res), len(oracle))
		}
	}

	// One clean save commits everything added since the baseline (the
	// re-adds above were lost with each crash — re-add a marker).
	if _, err := s.Add([]float64{1, 1}, "final poi"); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(); err != nil {
		t.Fatalf("clean save after crash loop: %v", err)
	}
	oracle = append(oracle, "final poi")
	sort.Strings(oracle)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if got := shardedTexts(t, s); !reflect.DeepEqual(got, oracle) {
		t.Fatalf("clean save content mismatch: %d vs %d", len(got), len(oracle))
	}
}

// TestSaveRefusesUnhealthyShard: once a shard has degraded, Save must not
// snapshot its (suspect) working files as a new generation — it refuses with
// ErrUnhealthyShard before touching the disk, and the last committed
// manifest keeps recovery intact. Repairing the fault and calling
// ResetHealth re-enables saves.
func TestSaveRefusesUnhealthyShard(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDurable(spatialkeyword.Config{SignatureBytes: 16}, dir, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var oracle []string
	for i := 0; i < 12; i++ {
		text := fmt.Sprintf("poi %d stable", i)
		if _, err := s.Add([]float64{float64(i), float64(i % 3)}, text); err != nil {
			t.Fatal(err)
		}
		oracle = append(oracle, text)
	}
	sort.Strings(oracle)
	if err := s.Save(); err != nil {
		t.Fatal(err)
	}

	// Degrade shard 1: fault its reads and trip the fault with a query.
	if !s.InjectShardFault(1, failAllReads) {
		t.Fatal("InjectShardFault refused")
	}
	if _, qs, err := s.TopKWithStats(len(oracle), []float64{0, 0}, "stable"); err != nil {
		t.Fatalf("degraded query: %v", err)
	} else if !qs.Degraded {
		t.Fatal("fault did not degrade the query")
	}

	err = s.Save()
	if !errors.Is(err, ErrUnhealthyShard) {
		t.Fatalf("Save on unhealthy shard: got %v, want ErrUnhealthyShard", err)
	}

	// Repair + reset puts the shard back in rotation and saves work again.
	if !s.InjectShardFault(1, nil) {
		t.Fatal("InjectShardFault(nil) refused")
	}
	if n := s.ResetHealth(); n != 1 {
		t.Fatalf("ResetHealth reset %d shards, want 1", n)
	}
	if _, err := s.Add([]float64{50, 50}, "post repair"); err != nil {
		t.Fatal(err)
	}
	oracle = append(oracle, "post repair")
	sort.Strings(oracle)
	if err := s.Save(); err != nil {
		t.Fatalf("save after repair: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := shardedTexts(t, s); !reflect.DeepEqual(got, oracle) {
		t.Fatalf("reopen content mismatch: got %d objects, want %d", len(got), len(oracle))
	}
}
