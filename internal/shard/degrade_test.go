package shard

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"spatialkeyword"
	"spatialkeyword/internal/obs"
	"spatialkeyword/internal/storage"
)

// degradeFixture builds a 4-shard in-memory engine with a spread of objects
// sharing one common keyword, plus health instruments in a registry.
func degradeFixture(t *testing.T) (*ShardedEngine, *obs.Counter, *obs.Gauge, *obs.Registry) {
	t.Helper()
	s, err := New(spatialkeyword.Config{SignatureBytes: 16}, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() }) //nolint:errcheck
	for i := 0; i < 120; i++ {
		text := fmt.Sprintf("poi %d common kw%d", i, i%7)
		if _, err := s.Add([]float64{float64(i % 12), float64(i / 12)}, text); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	errs := reg.Counter("sk_shard_errors_total", "t")
	unhealthy := reg.Gauge("sk_shards_unhealthy", "t")
	s.SetHealthMetrics(errs, unhealthy)
	return s, errs, unhealthy, reg
}

// failAllReads is a fault hook that fails every read with a typed fault.
func failAllReads(op storage.Op, id storage.BlockID) error {
	if op == storage.OpRead {
		return &storage.FaultError{Kind: storage.KindReadError, Op: op, Block: id}
	}
	return nil
}

// TestShardFaultDegradesQuery is the acceptance scenario: one faulted shard
// must not fail the query — the fan-out serves partial top-k with
// Degraded=true, the shard is taken out of rotation, and the health
// instruments record it.
func TestShardFaultDegradesQuery(t *testing.T) {
	checkGoroutines(t)
	s, errs, unhealthy, _ := degradeFixture(t)

	full, st, err := s.TopKWithStats(200, []float64{5, 5}, "common")
	if err != nil {
		t.Fatal(err)
	}
	if st.Degraded {
		t.Fatal("healthy engine reported degraded")
	}
	if len(full) != 120 {
		t.Fatalf("full result count = %d, want 120", len(full))
	}

	if !s.InjectShardFault(1, failAllReads) {
		t.Fatal("InjectShardFault refused")
	}
	partial, st, err := s.TopKWithStats(200, []float64{5, 5}, "common")
	if err != nil {
		t.Fatalf("degraded query failed instead of serving partial results: %v", err)
	}
	if !st.Degraded {
		t.Fatal("QueryStats.Degraded = false after shard fault")
	}
	if len(partial) == 0 || len(partial) >= len(full) {
		t.Fatalf("partial results = %d of %d, want a proper non-empty subset", len(partial), len(full))
	}
	if errs.Value() == 0 {
		t.Error("shard error counter not incremented")
	}
	if unhealthy.Value() != 1 {
		t.Errorf("unhealthy gauge = %d, want 1", unhealthy.Value())
	}
	if !s.Degraded() {
		t.Error("Degraded() = false")
	}
	h := s.Health()
	if len(h) != 4 || h[1].Healthy || h[1].Err == "" {
		t.Errorf("health = %+v, want shard 1 unhealthy with an error", h)
	}
	for _, i := range []int{0, 2, 3} {
		if !h[i].Healthy {
			t.Errorf("shard %d marked unhealthy", i)
		}
	}

	// A later query skips the dead shard without touching it again: still
	// degraded, same partial answer, no error.
	again, st, err := s.TopKWithStats(200, []float64{5, 5}, "common")
	if err != nil || !st.Degraded || len(again) != len(partial) {
		t.Fatalf("repeat degraded query: n=%d err=%v degraded=%v", len(again), err, st.Degraded)
	}

	// Repair: clear the fault, revive the shard, and the full answer is back.
	if !s.InjectShardFault(1, nil) {
		t.Fatal("clearing fault refused")
	}
	if n := s.ResetHealth(); n != 1 {
		t.Fatalf("ResetHealth revived %d shards, want 1", n)
	}
	if unhealthy.Value() != 0 {
		t.Errorf("unhealthy gauge = %d after reset, want 0", unhealthy.Value())
	}
	recovered, st, err := s.TopKWithStats(200, []float64{5, 5}, "common")
	if err != nil || st.Degraded || len(recovered) != len(full) {
		t.Fatalf("after repair: n=%d err=%v degraded=%v", len(recovered), err, st.Degraded)
	}
}

// TestShardFaultDegradesAllQueryKinds exercises the other fan-out paths
// against a faulted shard: all serve partial answers rather than erroring.
func TestShardFaultDegradesAllQueryKinds(t *testing.T) {
	checkGoroutines(t)
	s, _, _, _ := degradeFixture(t)
	if !s.InjectShardFault(2, failAllReads) {
		t.Fatal("InjectShardFault refused")
	}
	if _, err := s.TopKRanked(10, []float64{5, 5}, "common"); err != nil {
		t.Errorf("TopKRanked on degraded engine: %v", err)
	}
	if _, err := s.TopKArea(10, []float64{0, 0}, []float64{12, 12}, "common"); err != nil {
		t.Errorf("TopKArea on degraded engine: %v", err)
	}
	if _, err := s.WithinArea([]float64{0, 0}, []float64{12, 12}, "common"); err != nil {
		t.Errorf("WithinArea on degraded engine: %v", err)
	}
	if !s.Degraded() {
		t.Error("engine not marked degraded")
	}
}

// TestDegradedQueryMetric checks the aggregate observability record: a
// degraded fan-out bumps sk_query_degraded_total.
func TestDegradedQueryMetric(t *testing.T) {
	s, _, _, reg := degradeFixture(t)
	rec := obs.NewQueryRecorder(reg)
	s.SetMetricsSink(rec)
	if !s.InjectShardFault(0, failAllReads) {
		t.Fatal("InjectShardFault refused")
	}
	if _, _, err := s.TopKWithStats(10, []float64{5, 5}, "common"); err != nil {
		t.Fatal(err)
	}
	c := reg.Counter("sk_query_degraded_total", "Queries answered partially with shards out of rotation.", obs.L("op", "topk"))
	if c.Value() != 1 {
		t.Errorf("sk_query_degraded_total = %d, want 1", c.Value())
	}
}

// TestNonStorageErrorStillFails pins the classification boundary: an error
// that is not a storage fault must fail the query, not degrade the shard.
func TestNonStorageErrorStillFails(t *testing.T) {
	s, errs, _, _ := degradeFixture(t)
	boom := errors.New("not a storage problem")
	_, err := s.fanOut(nil, func(sh *shardHandle) error {
		if sh.idx == 1 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("query error swallowed: %v", err)
	}
	if s.Degraded() {
		t.Error("non-storage error degraded a shard")
	}
	if errs.Value() != 0 {
		t.Error("non-storage error bumped the shard error counter")
	}
}

// checkGoroutines fails the test when the fan-out leaks goroutines (a
// faulted shard's worker must still exit).
func checkGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for runtime.NumGoroutine() > before {
			if time.Now().After(deadline) {
				t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}
